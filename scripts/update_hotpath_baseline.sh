#!/usr/bin/env bash
# Re-records the perf gate in bench/baselines/hotpath.json from a fresh
# `engine_hotpath --smoke` run on this machine. Run this when a deliberate
# change moves hot-path throughput (either direction) or when the CI
# reference hardware changes; commit the updated baseline with the change
# that moved the number and say why in the commit message.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
BASELINE=bench/baselines/hotpath.json

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$JOBS" --target engine_hotpath

out="$(mktemp)"
"./$BUILD_DIR/bench/engine_hotpath" --smoke --out "$out" >/dev/null

python3 - "$out" "$BASELINE" <<'EOF'
import json, sys

run_path, baseline_path = sys.argv[1], sys.argv[2]
with open(run_path) as f:
    run = json.load(f)
with open(baseline_path) as f:
    baseline = json.load(f)

eps = round(run["macro"]["events_per_sec"])
baseline["gate"]["events_per_sec"] = eps
with open(baseline_path, "w") as f:
    json.dump(baseline, f, indent=2)
    f.write("\n")
print(f"updated {baseline_path}: gate.events_per_sec = {eps}")
EOF
