#!/usr/bin/env bash
# clang-format wrapper for this repo (.clang-format at the root).
#
#   scripts/format.sh                    format every tracked C++ file
#   scripts/format.sh --check            fail if any tracked file would change
#   scripts/format.sh --check-changed R  fail only on misformatted lines
#                                        that changed since git ref R —
#                                        the CI mode, so legacy formatting
#                                        never blocks an unrelated change
#
# Exits 0 when clean, 1 on violations, 3 when clang-format is missing.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format.sh: $CLANG_FORMAT not found; skipping (install clang-format)" >&2
  exit 3
fi

tracked_sources() {
  git ls-files -- '*.cpp' '*.h' '*.cc' '*.hpp'
}

mode="${1:-}"
case "$mode" in
  "")
    tracked_sources | xargs -r "$CLANG_FORMAT" -i
    echo "format.sh: formatted $(tracked_sources | wc -l) files"
    ;;
  --check)
    tracked_sources | xargs -r "$CLANG_FORMAT" --dry-run -Werror
    echo "format.sh: all tracked files clean"
    ;;
  --check-changed)
    base="${2:?usage: scripts/format.sh --check-changed <git-ref>}"
    status=0
    while IFS= read -r file; do
      [ -f "$file" ] || continue  # deleted in this change
      # Collect the +start,count hunk headers for this file and turn them
      # into --lines=a:b flags so only touched lines are judged.
      lines=()
      while IFS= read -r hunk; do
        start="${hunk%%,*}"
        count="${hunk##*,}"
        [ "$hunk" = "$start" ] && count=1  # "@@ -x +N @@" form, no comma
        [ "$count" -eq 0 ] && continue     # pure deletion
        lines+=("--lines=${start}:$((start + count - 1))")
      done < <(git diff -U0 "$base" -- "$file" \
                 | sed -n 's/^@@ .* +\([0-9][0-9,]*\) @@.*/\1/p')
      [ "${#lines[@]}" -eq 0 ] && continue
      if ! "$CLANG_FORMAT" --dry-run -Werror "${lines[@]}" "$file"; then
        status=1
      fi
    done < <(git diff --name-only --diff-filter=d "$base" -- \
               '*.cpp' '*.h' '*.cc' '*.hpp')
    if [ "$status" -eq 0 ]; then
      echo "format.sh: changed lines since $base are clean"
    else
      echo "format.sh: formatting violations on changed lines (run" \
           "scripts/format.sh to fix)" >&2
    fi
    exit "$status"
    ;;
  *)
    echo "usage: scripts/format.sh [--check | --check-changed <git-ref>]" >&2
    exit 2
    ;;
esac
