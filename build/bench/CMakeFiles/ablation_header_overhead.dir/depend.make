# Empty dependencies file for ablation_header_overhead.
# This may be replaced when dependencies are built.
