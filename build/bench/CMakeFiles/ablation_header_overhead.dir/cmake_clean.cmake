file(REMOVE_RECURSE
  "CMakeFiles/ablation_header_overhead.dir/ablation_header_overhead.cpp.o"
  "CMakeFiles/ablation_header_overhead.dir/ablation_header_overhead.cpp.o.d"
  "ablation_header_overhead"
  "ablation_header_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_header_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
