file(REMOVE_RECURSE
  "CMakeFiles/fig3_plt_reduction.dir/fig3_plt_reduction.cpp.o"
  "CMakeFiles/fig3_plt_reduction.dir/fig3_plt_reduction.cpp.o.d"
  "fig3_plt_reduction"
  "fig3_plt_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_plt_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
