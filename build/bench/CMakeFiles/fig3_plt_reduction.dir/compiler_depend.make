# Empty compiler generated dependencies file for fig3_plt_reduction.
# This may be replaced when dependencies are built.
