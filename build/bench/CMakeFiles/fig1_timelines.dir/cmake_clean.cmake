file(REMOVE_RECURSE
  "CMakeFiles/fig1_timelines.dir/fig1_timelines.cpp.o"
  "CMakeFiles/fig1_timelines.dir/fig1_timelines.cpp.o.d"
  "fig1_timelines"
  "fig1_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
