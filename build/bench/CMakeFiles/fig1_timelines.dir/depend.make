# Empty dependencies file for fig1_timelines.
# This may be replaced when dependencies are built.
