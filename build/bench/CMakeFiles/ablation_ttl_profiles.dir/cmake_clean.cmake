file(REMOVE_RECURSE
  "CMakeFiles/ablation_ttl_profiles.dir/ablation_ttl_profiles.cpp.o"
  "CMakeFiles/ablation_ttl_profiles.dir/ablation_ttl_profiles.cpp.o.d"
  "ablation_ttl_profiles"
  "ablation_ttl_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ttl_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
