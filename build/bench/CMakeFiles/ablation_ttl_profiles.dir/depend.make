# Empty dependencies file for ablation_ttl_profiles.
# This may be replaced when dependencies are built.
