file(REMOVE_RECURSE
  "CMakeFiles/ablation_third_party.dir/ablation_third_party.cpp.o"
  "CMakeFiles/ablation_third_party.dir/ablation_third_party.cpp.o.d"
  "ablation_third_party"
  "ablation_third_party.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_third_party.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
