# Empty dependencies file for ablation_third_party.
# This may be replaced when dependencies are built.
