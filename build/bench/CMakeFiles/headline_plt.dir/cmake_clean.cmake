file(REMOVE_RECURSE
  "CMakeFiles/headline_plt.dir/headline_plt.cpp.o"
  "CMakeFiles/headline_plt.dir/headline_plt.cpp.o.d"
  "headline_plt"
  "headline_plt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_plt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
