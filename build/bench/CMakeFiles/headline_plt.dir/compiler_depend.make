# Empty compiler generated dependencies file for headline_plt.
# This may be replaced when dependencies are built.
