file(REMOVE_RECURSE
  "CMakeFiles/motivation_ttl_waste.dir/motivation_ttl_waste.cpp.o"
  "CMakeFiles/motivation_ttl_waste.dir/motivation_ttl_waste.cpp.o.d"
  "motivation_ttl_waste"
  "motivation_ttl_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_ttl_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
