# Empty compiler generated dependencies file for motivation_ttl_waste.
# This may be replaced when dependencies are built.
