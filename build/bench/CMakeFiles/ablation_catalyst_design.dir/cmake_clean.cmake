file(REMOVE_RECURSE
  "CMakeFiles/ablation_catalyst_design.dir/ablation_catalyst_design.cpp.o"
  "CMakeFiles/ablation_catalyst_design.dir/ablation_catalyst_design.cpp.o.d"
  "ablation_catalyst_design"
  "ablation_catalyst_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_catalyst_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
