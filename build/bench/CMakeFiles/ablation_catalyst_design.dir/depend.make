# Empty dependencies file for ablation_catalyst_design.
# This may be replaced when dependencies are built.
