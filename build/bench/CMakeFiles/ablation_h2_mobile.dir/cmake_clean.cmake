file(REMOVE_RECURSE
  "CMakeFiles/ablation_h2_mobile.dir/ablation_h2_mobile.cpp.o"
  "CMakeFiles/ablation_h2_mobile.dir/ablation_h2_mobile.cpp.o.d"
  "ablation_h2_mobile"
  "ablation_h2_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_h2_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
