# Empty dependencies file for ablation_h2_mobile.
# This may be replaced when dependencies are built.
