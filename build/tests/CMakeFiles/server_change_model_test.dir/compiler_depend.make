# Empty compiler generated dependencies file for server_change_model_test.
# This may be replaced when dependencies are built.
