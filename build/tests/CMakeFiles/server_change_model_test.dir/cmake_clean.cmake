file(REMOVE_RECURSE
  "CMakeFiles/server_change_model_test.dir/server_change_model_test.cpp.o"
  "CMakeFiles/server_change_model_test.dir/server_change_model_test.cpp.o.d"
  "server_change_model_test"
  "server_change_model_test.pdb"
  "server_change_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_change_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
