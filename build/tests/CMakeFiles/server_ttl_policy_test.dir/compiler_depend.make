# Empty compiler generated dependencies file for server_ttl_policy_test.
# This may be replaced when dependencies are built.
