file(REMOVE_RECURSE
  "CMakeFiles/server_ttl_policy_test.dir/server_ttl_policy_test.cpp.o"
  "CMakeFiles/server_ttl_policy_test.dir/server_ttl_policy_test.cpp.o.d"
  "server_ttl_policy_test"
  "server_ttl_policy_test.pdb"
  "server_ttl_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_ttl_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
