# Empty dependencies file for multi_origin_test.
# This may be replaced when dependencies are built.
