file(REMOVE_RECURSE
  "CMakeFiles/multi_origin_test.dir/multi_origin_test.cpp.o"
  "CMakeFiles/multi_origin_test.dir/multi_origin_test.cpp.o.d"
  "multi_origin_test"
  "multi_origin_test.pdb"
  "multi_origin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_origin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
