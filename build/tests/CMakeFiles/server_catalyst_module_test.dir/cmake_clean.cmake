file(REMOVE_RECURSE
  "CMakeFiles/server_catalyst_module_test.dir/server_catalyst_module_test.cpp.o"
  "CMakeFiles/server_catalyst_module_test.dir/server_catalyst_module_test.cpp.o.d"
  "server_catalyst_module_test"
  "server_catalyst_module_test.pdb"
  "server_catalyst_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_catalyst_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
