# Empty compiler generated dependencies file for server_catalyst_module_test.
# This may be replaced when dependencies are built.
