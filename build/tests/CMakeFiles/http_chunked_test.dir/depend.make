# Empty dependencies file for http_chunked_test.
# This may be replaced when dependencies are built.
