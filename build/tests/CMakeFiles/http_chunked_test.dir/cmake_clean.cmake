file(REMOVE_RECURSE
  "CMakeFiles/http_chunked_test.dir/http_chunked_test.cpp.o"
  "CMakeFiles/http_chunked_test.dir/http_chunked_test.cpp.o.d"
  "http_chunked_test"
  "http_chunked_test.pdb"
  "http_chunked_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_chunked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
