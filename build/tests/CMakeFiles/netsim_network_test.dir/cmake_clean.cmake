file(REMOVE_RECURSE
  "CMakeFiles/netsim_network_test.dir/netsim_network_test.cpp.o"
  "CMakeFiles/netsim_network_test.dir/netsim_network_test.cpp.o.d"
  "netsim_network_test"
  "netsim_network_test.pdb"
  "netsim_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
