# Empty dependencies file for netsim_network_test.
# This may be replaced when dependencies are built.
