file(REMOVE_RECURSE
  "CMakeFiles/http_date_test.dir/http_date_test.cpp.o"
  "CMakeFiles/http_date_test.dir/http_date_test.cpp.o.d"
  "http_date_test"
  "http_date_test.pdb"
  "http_date_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_date_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
