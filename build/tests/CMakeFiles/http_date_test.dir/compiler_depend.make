# Empty compiler generated dependencies file for http_date_test.
# This may be replaced when dependencies are built.
