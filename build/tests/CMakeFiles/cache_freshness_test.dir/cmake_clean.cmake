file(REMOVE_RECURSE
  "CMakeFiles/cache_freshness_test.dir/cache_freshness_test.cpp.o"
  "CMakeFiles/cache_freshness_test.dir/cache_freshness_test.cpp.o.d"
  "cache_freshness_test"
  "cache_freshness_test.pdb"
  "cache_freshness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_freshness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
