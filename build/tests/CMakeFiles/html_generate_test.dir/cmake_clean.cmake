file(REMOVE_RECURSE
  "CMakeFiles/html_generate_test.dir/html_generate_test.cpp.o"
  "CMakeFiles/html_generate_test.dir/html_generate_test.cpp.o.d"
  "html_generate_test"
  "html_generate_test.pdb"
  "html_generate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_generate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
