file(REMOVE_RECURSE
  "CMakeFiles/util_url_test.dir/util_url_test.cpp.o"
  "CMakeFiles/util_url_test.dir/util_url_test.cpp.o.d"
  "util_url_test"
  "util_url_test.pdb"
  "util_url_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_url_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
