# Empty compiler generated dependencies file for client_browser_test.
# This may be replaced when dependencies are built.
