file(REMOVE_RECURSE
  "CMakeFiles/client_browser_test.dir/client_browser_test.cpp.o"
  "CMakeFiles/client_browser_test.dir/client_browser_test.cpp.o.d"
  "client_browser_test"
  "client_browser_test.pdb"
  "client_browser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_browser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
