# Empty dependencies file for netsim_link_test.
# This may be replaced when dependencies are built.
