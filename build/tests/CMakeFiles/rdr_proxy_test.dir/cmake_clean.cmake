file(REMOVE_RECURSE
  "CMakeFiles/rdr_proxy_test.dir/rdr_proxy_test.cpp.o"
  "CMakeFiles/rdr_proxy_test.dir/rdr_proxy_test.cpp.o.d"
  "rdr_proxy_test"
  "rdr_proxy_test.pdb"
  "rdr_proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdr_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
