# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rdr_proxy_test.
