# Empty compiler generated dependencies file for rdr_proxy_test.
# This may be replaced when dependencies are built.
