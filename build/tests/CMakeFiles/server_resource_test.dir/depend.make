# Empty dependencies file for server_resource_test.
# This may be replaced when dependencies are built.
