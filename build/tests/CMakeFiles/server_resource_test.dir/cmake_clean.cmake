file(REMOVE_RECURSE
  "CMakeFiles/server_resource_test.dir/server_resource_test.cpp.o"
  "CMakeFiles/server_resource_test.dir/server_resource_test.cpp.o.d"
  "server_resource_test"
  "server_resource_test.pdb"
  "server_resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
