file(REMOVE_RECURSE
  "CMakeFiles/http_h2_test.dir/http_h2_test.cpp.o"
  "CMakeFiles/http_h2_test.dir/http_h2_test.cpp.o.d"
  "http_h2_test"
  "http_h2_test.pdb"
  "http_h2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_h2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
