file(REMOVE_RECURSE
  "CMakeFiles/html_link_extract_test.dir/html_link_extract_test.cpp.o"
  "CMakeFiles/html_link_extract_test.dir/html_link_extract_test.cpp.o.d"
  "html_link_extract_test"
  "html_link_extract_test.pdb"
  "html_link_extract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_link_extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
