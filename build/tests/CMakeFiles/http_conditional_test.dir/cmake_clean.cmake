file(REMOVE_RECURSE
  "CMakeFiles/http_conditional_test.dir/http_conditional_test.cpp.o"
  "CMakeFiles/http_conditional_test.dir/http_conditional_test.cpp.o.d"
  "http_conditional_test"
  "http_conditional_test.pdb"
  "http_conditional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_conditional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
