# Empty dependencies file for http_conditional_test.
# This may be replaced when dependencies are built.
