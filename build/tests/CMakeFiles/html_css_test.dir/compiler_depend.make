# Empty compiler generated dependencies file for html_css_test.
# This may be replaced when dependencies are built.
