file(REMOVE_RECURSE
  "CMakeFiles/html_css_test.dir/html_css_test.cpp.o"
  "CMakeFiles/html_css_test.dir/html_css_test.cpp.o.d"
  "html_css_test"
  "html_css_test.pdb"
  "html_css_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_css_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
