file(REMOVE_RECURSE
  "CMakeFiles/hints_digest_test.dir/hints_digest_test.cpp.o"
  "CMakeFiles/hints_digest_test.dir/hints_digest_test.cpp.o.d"
  "hints_digest_test"
  "hints_digest_test.pdb"
  "hints_digest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hints_digest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
