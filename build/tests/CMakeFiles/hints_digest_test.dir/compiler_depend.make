# Empty compiler generated dependencies file for hints_digest_test.
# This may be replaced when dependencies are built.
