# Empty dependencies file for http_mime_test.
# This may be replaced when dependencies are built.
