file(REMOVE_RECURSE
  "CMakeFiles/http_mime_test.dir/http_mime_test.cpp.o"
  "CMakeFiles/http_mime_test.dir/http_mime_test.cpp.o.d"
  "http_mime_test"
  "http_mime_test.pdb"
  "http_mime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_mime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
