# Empty dependencies file for client_page_loader_test.
# This may be replaced when dependencies are built.
