file(REMOVE_RECURSE
  "CMakeFiles/server_static_handler_test.dir/server_static_handler_test.cpp.o"
  "CMakeFiles/server_static_handler_test.dir/server_static_handler_test.cpp.o.d"
  "server_static_handler_test"
  "server_static_handler_test.pdb"
  "server_static_handler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_static_handler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
