# Empty dependencies file for server_static_handler_test.
# This may be replaced when dependencies are built.
