file(REMOVE_RECURSE
  "CMakeFiles/netsim_event_loop_test.dir/netsim_event_loop_test.cpp.o"
  "CMakeFiles/netsim_event_loop_test.dir/netsim_event_loop_test.cpp.o.d"
  "netsim_event_loop_test"
  "netsim_event_loop_test.pdb"
  "netsim_event_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_event_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
