# Empty dependencies file for netsim_event_loop_test.
# This may be replaced when dependencies are built.
