file(REMOVE_RECURSE
  "CMakeFiles/server_integration_test.dir/server_integration_test.cpp.o"
  "CMakeFiles/server_integration_test.dir/server_integration_test.cpp.o.d"
  "server_integration_test"
  "server_integration_test.pdb"
  "server_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
