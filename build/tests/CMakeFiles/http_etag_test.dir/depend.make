# Empty dependencies file for http_etag_test.
# This may be replaced when dependencies are built.
