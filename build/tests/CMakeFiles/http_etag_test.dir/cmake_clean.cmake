file(REMOVE_RECURSE
  "CMakeFiles/http_etag_test.dir/http_etag_test.cpp.o"
  "CMakeFiles/http_etag_test.dir/http_etag_test.cpp.o.d"
  "http_etag_test"
  "http_etag_test.pdb"
  "http_etag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_etag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
