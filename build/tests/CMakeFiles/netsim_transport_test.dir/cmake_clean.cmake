file(REMOVE_RECURSE
  "CMakeFiles/netsim_transport_test.dir/netsim_transport_test.cpp.o"
  "CMakeFiles/netsim_transport_test.dir/netsim_transport_test.cpp.o.d"
  "netsim_transport_test"
  "netsim_transport_test.pdb"
  "netsim_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
