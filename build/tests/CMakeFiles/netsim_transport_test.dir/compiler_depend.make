# Empty compiler generated dependencies file for netsim_transport_test.
# This may be replaced when dependencies are built.
