# Empty dependencies file for http_cache_properties_test.
# This may be replaced when dependencies are built.
