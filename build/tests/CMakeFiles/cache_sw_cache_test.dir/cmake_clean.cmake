file(REMOVE_RECURSE
  "CMakeFiles/cache_sw_cache_test.dir/cache_sw_cache_test.cpp.o"
  "CMakeFiles/cache_sw_cache_test.dir/cache_sw_cache_test.cpp.o.d"
  "cache_sw_cache_test"
  "cache_sw_cache_test.pdb"
  "cache_sw_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_sw_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
