# Empty dependencies file for http_parser_test.
# This may be replaced when dependencies are built.
