# Empty compiler generated dependencies file for http_cache_control_test.
# This may be replaced when dependencies are built.
