file(REMOVE_RECURSE
  "CMakeFiles/http_cache_control_test.dir/http_cache_control_test.cpp.o"
  "CMakeFiles/http_cache_control_test.dir/http_cache_control_test.cpp.o.d"
  "http_cache_control_test"
  "http_cache_control_test.pdb"
  "http_cache_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_cache_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
