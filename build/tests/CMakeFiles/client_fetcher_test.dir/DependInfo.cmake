
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/client_fetcher_test.cpp" "tests/CMakeFiles/client_fetcher_test.dir/client_fetcher_test.cpp.o" "gcc" "tests/CMakeFiles/client_fetcher_test.dir/client_fetcher_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/catalyst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/catalyst_client.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/catalyst_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/catalyst_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/catalyst_server.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/catalyst_html.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/catalyst_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/catalyst_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/catalyst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
