file(REMOVE_RECURSE
  "CMakeFiles/client_fetcher_test.dir/client_fetcher_test.cpp.o"
  "CMakeFiles/client_fetcher_test.dir/client_fetcher_test.cpp.o.d"
  "client_fetcher_test"
  "client_fetcher_test.pdb"
  "client_fetcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_fetcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
