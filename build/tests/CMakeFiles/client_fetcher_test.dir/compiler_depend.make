# Empty compiler generated dependencies file for client_fetcher_test.
# This may be replaced when dependencies are built.
