# Empty dependencies file for http_headers_test.
# This may be replaced when dependencies are built.
