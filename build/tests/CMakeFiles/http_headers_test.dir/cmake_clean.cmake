file(REMOVE_RECURSE
  "CMakeFiles/http_headers_test.dir/http_headers_test.cpp.o"
  "CMakeFiles/http_headers_test.dir/http_headers_test.cpp.o.d"
  "http_headers_test"
  "http_headers_test.pdb"
  "http_headers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_headers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
