file(REMOVE_RECURSE
  "CMakeFiles/html_tokenizer_test.dir/html_tokenizer_test.cpp.o"
  "CMakeFiles/html_tokenizer_test.dir/html_tokenizer_test.cpp.o.d"
  "html_tokenizer_test"
  "html_tokenizer_test.pdb"
  "html_tokenizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/html_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
