# Empty dependencies file for cache_storage_test.
# This may be replaced when dependencies are built.
