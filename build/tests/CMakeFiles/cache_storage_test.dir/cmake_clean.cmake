file(REMOVE_RECURSE
  "CMakeFiles/cache_storage_test.dir/cache_storage_test.cpp.o"
  "CMakeFiles/cache_storage_test.dir/cache_storage_test.cpp.o.d"
  "cache_storage_test"
  "cache_storage_test.pdb"
  "cache_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
