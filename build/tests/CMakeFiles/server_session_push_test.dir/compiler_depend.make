# Empty compiler generated dependencies file for server_session_push_test.
# This may be replaced when dependencies are built.
