file(REMOVE_RECURSE
  "CMakeFiles/server_session_push_test.dir/server_session_push_test.cpp.o"
  "CMakeFiles/server_session_push_test.dir/server_session_push_test.cpp.o.d"
  "server_session_push_test"
  "server_session_push_test.pdb"
  "server_session_push_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_session_push_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
