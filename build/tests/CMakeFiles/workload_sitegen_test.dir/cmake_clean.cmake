file(REMOVE_RECURSE
  "CMakeFiles/workload_sitegen_test.dir/workload_sitegen_test.cpp.o"
  "CMakeFiles/workload_sitegen_test.dir/workload_sitegen_test.cpp.o.d"
  "workload_sitegen_test"
  "workload_sitegen_test.pdb"
  "workload_sitegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_sitegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
