# Empty compiler generated dependencies file for workload_sitegen_test.
# This may be replaced when dependencies are built.
