# Empty compiler generated dependencies file for http_h2_session_test.
# This may be replaced when dependencies are built.
