file(REMOVE_RECURSE
  "CMakeFiles/http_h2_session_test.dir/http_h2_session_test.cpp.o"
  "CMakeFiles/http_h2_session_test.dir/http_h2_session_test.cpp.o.d"
  "http_h2_session_test"
  "http_h2_session_test.pdb"
  "http_h2_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_h2_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
