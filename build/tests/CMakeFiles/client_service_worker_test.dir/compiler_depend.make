# Empty compiler generated dependencies file for client_service_worker_test.
# This may be replaced when dependencies are built.
