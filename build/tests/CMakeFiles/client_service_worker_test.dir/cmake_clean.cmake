file(REMOVE_RECURSE
  "CMakeFiles/client_service_worker_test.dir/client_service_worker_test.cpp.o"
  "CMakeFiles/client_service_worker_test.dir/client_service_worker_test.cpp.o.d"
  "client_service_worker_test"
  "client_service_worker_test.pdb"
  "client_service_worker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_service_worker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
