file(REMOVE_RECURSE
  "libcatalyst_util.a"
)
