# Empty compiler generated dependencies file for catalyst_util.
# This may be replaced when dependencies are built.
