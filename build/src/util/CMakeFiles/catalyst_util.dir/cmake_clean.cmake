file(REMOVE_RECURSE
  "CMakeFiles/catalyst_util.dir/base64.cpp.o"
  "CMakeFiles/catalyst_util.dir/base64.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/bloom.cpp.o"
  "CMakeFiles/catalyst_util.dir/bloom.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/hash.cpp.o"
  "CMakeFiles/catalyst_util.dir/hash.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/json.cpp.o"
  "CMakeFiles/catalyst_util.dir/json.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/logging.cpp.o"
  "CMakeFiles/catalyst_util.dir/logging.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/rng.cpp.o"
  "CMakeFiles/catalyst_util.dir/rng.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/stats.cpp.o"
  "CMakeFiles/catalyst_util.dir/stats.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/strings.cpp.o"
  "CMakeFiles/catalyst_util.dir/strings.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/table.cpp.o"
  "CMakeFiles/catalyst_util.dir/table.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/types.cpp.o"
  "CMakeFiles/catalyst_util.dir/types.cpp.o.d"
  "CMakeFiles/catalyst_util.dir/url.cpp.o"
  "CMakeFiles/catalyst_util.dir/url.cpp.o.d"
  "libcatalyst_util.a"
  "libcatalyst_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
