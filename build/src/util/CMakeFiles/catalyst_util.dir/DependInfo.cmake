
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/base64.cpp" "src/util/CMakeFiles/catalyst_util.dir/base64.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/base64.cpp.o.d"
  "/root/repo/src/util/bloom.cpp" "src/util/CMakeFiles/catalyst_util.dir/bloom.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/bloom.cpp.o.d"
  "/root/repo/src/util/hash.cpp" "src/util/CMakeFiles/catalyst_util.dir/hash.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/hash.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/util/CMakeFiles/catalyst_util.dir/json.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/json.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/util/CMakeFiles/catalyst_util.dir/logging.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/catalyst_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/catalyst_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/catalyst_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/catalyst_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/table.cpp.o.d"
  "/root/repo/src/util/types.cpp" "src/util/CMakeFiles/catalyst_util.dir/types.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/types.cpp.o.d"
  "/root/repo/src/util/url.cpp" "src/util/CMakeFiles/catalyst_util.dir/url.cpp.o" "gcc" "src/util/CMakeFiles/catalyst_util.dir/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
