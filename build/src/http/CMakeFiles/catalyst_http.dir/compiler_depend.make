# Empty compiler generated dependencies file for catalyst_http.
# This may be replaced when dependencies are built.
