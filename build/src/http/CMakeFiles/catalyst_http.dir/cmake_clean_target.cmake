file(REMOVE_RECURSE
  "libcatalyst_http.a"
)
