
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/cache_control.cpp" "src/http/CMakeFiles/catalyst_http.dir/cache_control.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/cache_control.cpp.o.d"
  "/root/repo/src/http/conditional.cpp" "src/http/CMakeFiles/catalyst_http.dir/conditional.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/conditional.cpp.o.d"
  "/root/repo/src/http/date.cpp" "src/http/CMakeFiles/catalyst_http.dir/date.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/date.cpp.o.d"
  "/root/repo/src/http/etag.cpp" "src/http/CMakeFiles/catalyst_http.dir/etag.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/etag.cpp.o.d"
  "/root/repo/src/http/etag_config.cpp" "src/http/CMakeFiles/catalyst_http.dir/etag_config.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/etag_config.cpp.o.d"
  "/root/repo/src/http/h2/frame.cpp" "src/http/CMakeFiles/catalyst_http.dir/h2/frame.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/h2/frame.cpp.o.d"
  "/root/repo/src/http/h2/session.cpp" "src/http/CMakeFiles/catalyst_http.dir/h2/session.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/h2/session.cpp.o.d"
  "/root/repo/src/http/h2/stream.cpp" "src/http/CMakeFiles/catalyst_http.dir/h2/stream.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/h2/stream.cpp.o.d"
  "/root/repo/src/http/headers.cpp" "src/http/CMakeFiles/catalyst_http.dir/headers.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/headers.cpp.o.d"
  "/root/repo/src/http/message.cpp" "src/http/CMakeFiles/catalyst_http.dir/message.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/message.cpp.o.d"
  "/root/repo/src/http/mime.cpp" "src/http/CMakeFiles/catalyst_http.dir/mime.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/mime.cpp.o.d"
  "/root/repo/src/http/parser.cpp" "src/http/CMakeFiles/catalyst_http.dir/parser.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/parser.cpp.o.d"
  "/root/repo/src/http/serializer.cpp" "src/http/CMakeFiles/catalyst_http.dir/serializer.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/serializer.cpp.o.d"
  "/root/repo/src/http/status.cpp" "src/http/CMakeFiles/catalyst_http.dir/status.cpp.o" "gcc" "src/http/CMakeFiles/catalyst_http.dir/status.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/catalyst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
