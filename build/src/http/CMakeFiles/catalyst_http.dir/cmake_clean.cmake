file(REMOVE_RECURSE
  "CMakeFiles/catalyst_http.dir/cache_control.cpp.o"
  "CMakeFiles/catalyst_http.dir/cache_control.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/conditional.cpp.o"
  "CMakeFiles/catalyst_http.dir/conditional.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/date.cpp.o"
  "CMakeFiles/catalyst_http.dir/date.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/etag.cpp.o"
  "CMakeFiles/catalyst_http.dir/etag.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/etag_config.cpp.o"
  "CMakeFiles/catalyst_http.dir/etag_config.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/h2/frame.cpp.o"
  "CMakeFiles/catalyst_http.dir/h2/frame.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/h2/session.cpp.o"
  "CMakeFiles/catalyst_http.dir/h2/session.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/h2/stream.cpp.o"
  "CMakeFiles/catalyst_http.dir/h2/stream.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/headers.cpp.o"
  "CMakeFiles/catalyst_http.dir/headers.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/message.cpp.o"
  "CMakeFiles/catalyst_http.dir/message.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/mime.cpp.o"
  "CMakeFiles/catalyst_http.dir/mime.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/parser.cpp.o"
  "CMakeFiles/catalyst_http.dir/parser.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/serializer.cpp.o"
  "CMakeFiles/catalyst_http.dir/serializer.cpp.o.d"
  "CMakeFiles/catalyst_http.dir/status.cpp.o"
  "CMakeFiles/catalyst_http.dir/status.cpp.o.d"
  "libcatalyst_http.a"
  "libcatalyst_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
