# Empty compiler generated dependencies file for catalyst_workload.
# This may be replaced when dependencies are built.
