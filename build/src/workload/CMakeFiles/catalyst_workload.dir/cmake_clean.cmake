file(REMOVE_RECURSE
  "CMakeFiles/catalyst_workload.dir/distributions.cpp.o"
  "CMakeFiles/catalyst_workload.dir/distributions.cpp.o.d"
  "CMakeFiles/catalyst_workload.dir/profiles.cpp.o"
  "CMakeFiles/catalyst_workload.dir/profiles.cpp.o.d"
  "CMakeFiles/catalyst_workload.dir/sitegen.cpp.o"
  "CMakeFiles/catalyst_workload.dir/sitegen.cpp.o.d"
  "libcatalyst_workload.a"
  "libcatalyst_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
