file(REMOVE_RECURSE
  "libcatalyst_workload.a"
)
