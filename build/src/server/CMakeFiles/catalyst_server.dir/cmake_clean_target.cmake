file(REMOVE_RECURSE
  "libcatalyst_server.a"
)
