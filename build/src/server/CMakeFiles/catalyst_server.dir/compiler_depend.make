# Empty compiler generated dependencies file for catalyst_server.
# This may be replaced when dependencies are built.
