
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/catalyst_module.cpp" "src/server/CMakeFiles/catalyst_server.dir/catalyst_module.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/catalyst_module.cpp.o.d"
  "/root/repo/src/server/change_model.cpp" "src/server/CMakeFiles/catalyst_server.dir/change_model.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/change_model.cpp.o.d"
  "/root/repo/src/server/push_module.cpp" "src/server/CMakeFiles/catalyst_server.dir/push_module.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/push_module.cpp.o.d"
  "/root/repo/src/server/resource.cpp" "src/server/CMakeFiles/catalyst_server.dir/resource.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/resource.cpp.o.d"
  "/root/repo/src/server/server.cpp" "src/server/CMakeFiles/catalyst_server.dir/server.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/server.cpp.o.d"
  "/root/repo/src/server/session.cpp" "src/server/CMakeFiles/catalyst_server.dir/session.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/session.cpp.o.d"
  "/root/repo/src/server/site.cpp" "src/server/CMakeFiles/catalyst_server.dir/site.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/site.cpp.o.d"
  "/root/repo/src/server/static_handler.cpp" "src/server/CMakeFiles/catalyst_server.dir/static_handler.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/static_handler.cpp.o.d"
  "/root/repo/src/server/ttl_policy.cpp" "src/server/CMakeFiles/catalyst_server.dir/ttl_policy.cpp.o" "gcc" "src/server/CMakeFiles/catalyst_server.dir/ttl_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/catalyst_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/catalyst_http.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/catalyst_html.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/catalyst_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
