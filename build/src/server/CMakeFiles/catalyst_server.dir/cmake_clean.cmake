file(REMOVE_RECURSE
  "CMakeFiles/catalyst_server.dir/catalyst_module.cpp.o"
  "CMakeFiles/catalyst_server.dir/catalyst_module.cpp.o.d"
  "CMakeFiles/catalyst_server.dir/change_model.cpp.o"
  "CMakeFiles/catalyst_server.dir/change_model.cpp.o.d"
  "CMakeFiles/catalyst_server.dir/push_module.cpp.o"
  "CMakeFiles/catalyst_server.dir/push_module.cpp.o.d"
  "CMakeFiles/catalyst_server.dir/resource.cpp.o"
  "CMakeFiles/catalyst_server.dir/resource.cpp.o.d"
  "CMakeFiles/catalyst_server.dir/server.cpp.o"
  "CMakeFiles/catalyst_server.dir/server.cpp.o.d"
  "CMakeFiles/catalyst_server.dir/session.cpp.o"
  "CMakeFiles/catalyst_server.dir/session.cpp.o.d"
  "CMakeFiles/catalyst_server.dir/site.cpp.o"
  "CMakeFiles/catalyst_server.dir/site.cpp.o.d"
  "CMakeFiles/catalyst_server.dir/static_handler.cpp.o"
  "CMakeFiles/catalyst_server.dir/static_handler.cpp.o.d"
  "CMakeFiles/catalyst_server.dir/ttl_policy.cpp.o"
  "CMakeFiles/catalyst_server.dir/ttl_policy.cpp.o.d"
  "libcatalyst_server.a"
  "libcatalyst_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
