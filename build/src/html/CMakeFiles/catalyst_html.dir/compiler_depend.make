# Empty compiler generated dependencies file for catalyst_html.
# This may be replaced when dependencies are built.
