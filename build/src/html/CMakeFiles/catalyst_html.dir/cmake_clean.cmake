file(REMOVE_RECURSE
  "CMakeFiles/catalyst_html.dir/css.cpp.o"
  "CMakeFiles/catalyst_html.dir/css.cpp.o.d"
  "CMakeFiles/catalyst_html.dir/dom.cpp.o"
  "CMakeFiles/catalyst_html.dir/dom.cpp.o.d"
  "CMakeFiles/catalyst_html.dir/generate.cpp.o"
  "CMakeFiles/catalyst_html.dir/generate.cpp.o.d"
  "CMakeFiles/catalyst_html.dir/link_extract.cpp.o"
  "CMakeFiles/catalyst_html.dir/link_extract.cpp.o.d"
  "CMakeFiles/catalyst_html.dir/parser.cpp.o"
  "CMakeFiles/catalyst_html.dir/parser.cpp.o.d"
  "CMakeFiles/catalyst_html.dir/tokenizer.cpp.o"
  "CMakeFiles/catalyst_html.dir/tokenizer.cpp.o.d"
  "libcatalyst_html.a"
  "libcatalyst_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
