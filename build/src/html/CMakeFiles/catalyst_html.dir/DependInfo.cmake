
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/html/css.cpp" "src/html/CMakeFiles/catalyst_html.dir/css.cpp.o" "gcc" "src/html/CMakeFiles/catalyst_html.dir/css.cpp.o.d"
  "/root/repo/src/html/dom.cpp" "src/html/CMakeFiles/catalyst_html.dir/dom.cpp.o" "gcc" "src/html/CMakeFiles/catalyst_html.dir/dom.cpp.o.d"
  "/root/repo/src/html/generate.cpp" "src/html/CMakeFiles/catalyst_html.dir/generate.cpp.o" "gcc" "src/html/CMakeFiles/catalyst_html.dir/generate.cpp.o.d"
  "/root/repo/src/html/link_extract.cpp" "src/html/CMakeFiles/catalyst_html.dir/link_extract.cpp.o" "gcc" "src/html/CMakeFiles/catalyst_html.dir/link_extract.cpp.o.d"
  "/root/repo/src/html/parser.cpp" "src/html/CMakeFiles/catalyst_html.dir/parser.cpp.o" "gcc" "src/html/CMakeFiles/catalyst_html.dir/parser.cpp.o.d"
  "/root/repo/src/html/tokenizer.cpp" "src/html/CMakeFiles/catalyst_html.dir/tokenizer.cpp.o" "gcc" "src/html/CMakeFiles/catalyst_html.dir/tokenizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/catalyst_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/catalyst_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
