file(REMOVE_RECURSE
  "libcatalyst_html.a"
)
