file(REMOVE_RECURSE
  "libcatalyst_cache.a"
)
