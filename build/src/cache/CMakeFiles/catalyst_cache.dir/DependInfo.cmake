
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/freshness.cpp" "src/cache/CMakeFiles/catalyst_cache.dir/freshness.cpp.o" "gcc" "src/cache/CMakeFiles/catalyst_cache.dir/freshness.cpp.o.d"
  "/root/repo/src/cache/http_cache.cpp" "src/cache/CMakeFiles/catalyst_cache.dir/http_cache.cpp.o" "gcc" "src/cache/CMakeFiles/catalyst_cache.dir/http_cache.cpp.o.d"
  "/root/repo/src/cache/storage.cpp" "src/cache/CMakeFiles/catalyst_cache.dir/storage.cpp.o" "gcc" "src/cache/CMakeFiles/catalyst_cache.dir/storage.cpp.o.d"
  "/root/repo/src/cache/sw_cache.cpp" "src/cache/CMakeFiles/catalyst_cache.dir/sw_cache.cpp.o" "gcc" "src/cache/CMakeFiles/catalyst_cache.dir/sw_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/catalyst_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/catalyst_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
