# Empty dependencies file for catalyst_cache.
# This may be replaced when dependencies are built.
