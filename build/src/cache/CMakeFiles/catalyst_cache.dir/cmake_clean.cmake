file(REMOVE_RECURSE
  "CMakeFiles/catalyst_cache.dir/freshness.cpp.o"
  "CMakeFiles/catalyst_cache.dir/freshness.cpp.o.d"
  "CMakeFiles/catalyst_cache.dir/http_cache.cpp.o"
  "CMakeFiles/catalyst_cache.dir/http_cache.cpp.o.d"
  "CMakeFiles/catalyst_cache.dir/storage.cpp.o"
  "CMakeFiles/catalyst_cache.dir/storage.cpp.o.d"
  "CMakeFiles/catalyst_cache.dir/sw_cache.cpp.o"
  "CMakeFiles/catalyst_cache.dir/sw_cache.cpp.o.d"
  "libcatalyst_cache.a"
  "libcatalyst_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
