# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netsim")
subdirs("http")
subdirs("html")
subdirs("cache")
subdirs("workload")
subdirs("server")
subdirs("client")
subdirs("core")
