# Empty compiler generated dependencies file for catalyst_netsim.
# This may be replaced when dependencies are built.
