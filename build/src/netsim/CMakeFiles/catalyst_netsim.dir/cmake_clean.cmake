file(REMOVE_RECURSE
  "CMakeFiles/catalyst_netsim.dir/conditions.cpp.o"
  "CMakeFiles/catalyst_netsim.dir/conditions.cpp.o.d"
  "CMakeFiles/catalyst_netsim.dir/event_loop.cpp.o"
  "CMakeFiles/catalyst_netsim.dir/event_loop.cpp.o.d"
  "CMakeFiles/catalyst_netsim.dir/link.cpp.o"
  "CMakeFiles/catalyst_netsim.dir/link.cpp.o.d"
  "CMakeFiles/catalyst_netsim.dir/network.cpp.o"
  "CMakeFiles/catalyst_netsim.dir/network.cpp.o.d"
  "CMakeFiles/catalyst_netsim.dir/trace.cpp.o"
  "CMakeFiles/catalyst_netsim.dir/trace.cpp.o.d"
  "CMakeFiles/catalyst_netsim.dir/transport.cpp.o"
  "CMakeFiles/catalyst_netsim.dir/transport.cpp.o.d"
  "libcatalyst_netsim.a"
  "libcatalyst_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
