
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/conditions.cpp" "src/netsim/CMakeFiles/catalyst_netsim.dir/conditions.cpp.o" "gcc" "src/netsim/CMakeFiles/catalyst_netsim.dir/conditions.cpp.o.d"
  "/root/repo/src/netsim/event_loop.cpp" "src/netsim/CMakeFiles/catalyst_netsim.dir/event_loop.cpp.o" "gcc" "src/netsim/CMakeFiles/catalyst_netsim.dir/event_loop.cpp.o.d"
  "/root/repo/src/netsim/link.cpp" "src/netsim/CMakeFiles/catalyst_netsim.dir/link.cpp.o" "gcc" "src/netsim/CMakeFiles/catalyst_netsim.dir/link.cpp.o.d"
  "/root/repo/src/netsim/network.cpp" "src/netsim/CMakeFiles/catalyst_netsim.dir/network.cpp.o" "gcc" "src/netsim/CMakeFiles/catalyst_netsim.dir/network.cpp.o.d"
  "/root/repo/src/netsim/trace.cpp" "src/netsim/CMakeFiles/catalyst_netsim.dir/trace.cpp.o" "gcc" "src/netsim/CMakeFiles/catalyst_netsim.dir/trace.cpp.o.d"
  "/root/repo/src/netsim/transport.cpp" "src/netsim/CMakeFiles/catalyst_netsim.dir/transport.cpp.o" "gcc" "src/netsim/CMakeFiles/catalyst_netsim.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/catalyst_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/catalyst_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
