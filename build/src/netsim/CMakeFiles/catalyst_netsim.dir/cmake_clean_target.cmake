file(REMOVE_RECURSE
  "libcatalyst_netsim.a"
)
