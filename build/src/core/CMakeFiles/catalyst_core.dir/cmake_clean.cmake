file(REMOVE_RECURSE
  "CMakeFiles/catalyst_core.dir/experiment.cpp.o"
  "CMakeFiles/catalyst_core.dir/experiment.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/rdr_proxy.cpp.o"
  "CMakeFiles/catalyst_core.dir/rdr_proxy.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/strategy.cpp.o"
  "CMakeFiles/catalyst_core.dir/strategy.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/testbed.cpp.o"
  "CMakeFiles/catalyst_core.dir/testbed.cpp.o.d"
  "libcatalyst_core.a"
  "libcatalyst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
