file(REMOVE_RECURSE
  "CMakeFiles/catalyst_client.dir/browser.cpp.o"
  "CMakeFiles/catalyst_client.dir/browser.cpp.o.d"
  "CMakeFiles/catalyst_client.dir/fetcher.cpp.o"
  "CMakeFiles/catalyst_client.dir/fetcher.cpp.o.d"
  "CMakeFiles/catalyst_client.dir/page_loader.cpp.o"
  "CMakeFiles/catalyst_client.dir/page_loader.cpp.o.d"
  "CMakeFiles/catalyst_client.dir/service_worker.cpp.o"
  "CMakeFiles/catalyst_client.dir/service_worker.cpp.o.d"
  "libcatalyst_client.a"
  "libcatalyst_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
