# Empty dependencies file for catalyst_client.
# This may be replaced when dependencies are built.
