file(REMOVE_RECURSE
  "libcatalyst_client.a"
)
