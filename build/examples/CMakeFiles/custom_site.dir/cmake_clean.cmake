file(REMOVE_RECURSE
  "CMakeFiles/custom_site.dir/custom_site.cpp.o"
  "CMakeFiles/custom_site.dir/custom_site.cpp.o.d"
  "custom_site"
  "custom_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
