# Empty compiler generated dependencies file for custom_site.
# This may be replaced when dependencies are built.
