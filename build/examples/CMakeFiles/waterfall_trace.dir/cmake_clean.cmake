file(REMOVE_RECURSE
  "CMakeFiles/waterfall_trace.dir/waterfall_trace.cpp.o"
  "CMakeFiles/waterfall_trace.dir/waterfall_trace.cpp.o.d"
  "waterfall_trace"
  "waterfall_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waterfall_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
