# Empty compiler generated dependencies file for waterfall_trace.
# This may be replaced when dependencies are built.
