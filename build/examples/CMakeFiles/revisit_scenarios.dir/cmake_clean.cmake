file(REMOVE_RECURSE
  "CMakeFiles/revisit_scenarios.dir/revisit_scenarios.cpp.o"
  "CMakeFiles/revisit_scenarios.dir/revisit_scenarios.cpp.o.d"
  "revisit_scenarios"
  "revisit_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revisit_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
