# Empty dependencies file for revisit_scenarios.
# This may be replaced when dependencies are built.
