# Empty dependencies file for catalystsim.
# This may be replaced when dependencies are built.
