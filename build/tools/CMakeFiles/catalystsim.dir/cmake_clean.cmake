file(REMOVE_RECURSE
  "CMakeFiles/catalystsim.dir/catalystsim.cpp.o"
  "CMakeFiles/catalystsim.dir/catalystsim.cpp.o.d"
  "catalystsim"
  "catalystsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalystsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
