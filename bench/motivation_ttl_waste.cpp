// ABL-TTL — reproduces the misconfiguration statistics that motivate the
// paper (§2.2) on the live synthetic workload:
//   * Marauder [30]: 47% of resources expire in cache although their
//     content has not changed.
//   * Liu et al. [19]: 40% of resources get TTL < 1 day, and 86% of those
//     do not change within that period.
//   * Redundant transfers: bytes re-sent on a revisit although the client
//     already held identical content.
#include <cstdio>

#include "bench_common.h"
#include "cache/freshness.h"
#include "server/static_handler.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

int main() {
  const int n_sites = site_count();
  // Live workload: real change processes (a frozen clone would make the
  // "unchanged" fractions trivially 100%).
  const auto sites = make_corpus(n_sites, /*clone=*/false);

  // --- TTL distribution stats (static over the corpus) ------------------
  int cacheable = 0, with_ttl = 0, ttl_under_day = 0,
      ttl_under_day_unchanged = 0;
  for (const auto& site : sites) {
    for (const auto& [path, resource] : site->resources()) {
      const http::CacheControl cc = resource->cache_policy();
      if (cc.no_store) continue;
      ++cacheable;
      if (!cc.max_age) continue;
      ++with_ttl;
      if (*cc.max_age < hours(24)) {
        ++ttl_under_day;
        if (!resource->changes().changes_in(TimePoint{},
                                            TimePoint{} + *cc.max_age)) {
          ++ttl_under_day_unchanged;
        }
      }
    }
  }

  // --- Expire-unchanged and redundant-transfer stats per revisit delay --
  Table table(str_format(
      "Cache waste on the live workload (%d sites) — baseline caching",
      n_sites));
  table.set_header({"revisit delay", "expired unchanged",
                    "redundant bytes", "of page weight"});
  const char* names[] = {"1 min", "1 hour", "6 hours", "1 day", "1 week"};
  const auto delays = core::paper_revisit_delays();
  double expired_unchanged_at_1d = 0.0;
  for (std::size_t d = 0; d < delays.size(); ++d) {
    int stored = 0, expired_unchanged = 0;
    ByteCount redundant = 0, total_weight = 0;
    for (const auto& site : sites) {
      const TimePoint revisit = TimePoint{} + delays[d];
      for (const auto& [path, resource] : site->resources()) {
        total_weight += resource->wire_size();
        const http::CacheControl cc = resource->cache_policy();
        const bool unchanged =
            !resource->changes().changes_in(TimePoint{}, revisit);
        if (cc.no_store) {
          // Re-downloaded every visit: redundant when unchanged.
          if (unchanged) redundant += resource->wire_size();
          continue;
        }
        ++stored;
        const Duration lifetime =
            cc.max_age.value_or(Duration::zero());
        const bool expired = cc.no_cache || lifetime < delays[d];
        if (expired && unchanged) ++expired_unchanged;
      }
    }
    const double frac =
        100.0 * expired_unchanged / std::max(1, stored);
    if (delays[d] == hours(24)) expired_unchanged_at_1d = frac;
    table.add_row({names[d], str_format("%.1f%%", frac),
                   format_bytes(redundant),
                   str_format("%.1f%%",
                              100.0 * static_cast<double>(redundant) /
                                  static_cast<double>(total_weight))});
  }
  table.print();

  std::printf(
      "\nTTL assignment stats: %.1f%% of TTL'd resources get TTL < 1 day "
      "(study: ~40%%);\nof those, %.1f%% do not change within that TTL "
      "(study: 86%%).\nResources expiring unchanged at the 1-day revisit: "
      "%.1f%% (study: 47%%).\n(%d cacheable resources, %d with explicit "
      "TTLs.)\n",
      100.0 * ttl_under_day / std::max(1, with_ttl),
      100.0 * ttl_under_day_unchanged / std::max(1, ttl_under_day),
      expired_unchanged_at_1d, cacheable, with_ttl);
  return 0;
}
