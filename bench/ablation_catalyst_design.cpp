// ABL-DESIGN — ablations of CacheCatalyst's own design choices:
//   * CSS closure off  (map covers HTML-linked resources only),
//   * session learning on (paper §6 extension for JS-fetched resources),
//   * scan memoization off (server re-parses the DOM on every serve).
// Reports revisit PLT, map coverage, and modeled server compute.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

namespace {

struct Variant {
  const char* name;
  core::StrategyKind kind;
  core::StrategyOptions options;
};

}  // namespace

int main() {
  const int n_sites = site_count(30);
  const auto sites = make_corpus(n_sites, /*clone=*/true);
  const auto conditions = netsim::NetworkConditions::median_5g();
  const Duration delay = hours(6);

  core::StrategyOptions no_closure;
  no_closure.catalyst_css_closure = false;
  core::StrategyOptions no_memo;
  no_memo.catalyst_memoize = false;

  const Variant variants[] = {
      {"baseline", core::StrategyKind::Baseline, {}},
      {"catalyst (full)", core::StrategyKind::Catalyst, {}},
      {"catalyst, no css closure", core::StrategyKind::Catalyst,
       no_closure},
      {"catalyst + session learning", core::StrategyKind::CatalystLearned,
       {}},
      {"catalyst, no scan memoization", core::StrategyKind::Catalyst,
       no_memo},
  };

  Table table(str_format(
      "CacheCatalyst design ablations at %s, revisit +6 h (%d sites)",
      conditions.label().c_str(), n_sites));
  table.set_header({"variant", "revisit ms", "sw hits", "304s",
                    "server compute ms"});
  for (const Variant& v : variants) {
    Summary plt, sw_hits, not_modified, compute;
    for (const auto& site : sites) {
      core::Testbed tb = core::make_testbed(site, conditions, v.kind,
                                            v.options);
      (void)core::run_visit(tb, TimePoint{});
      const auto revisit = core::run_visit(tb, TimePoint{} + delay);
      plt.add(to_millis(revisit.plt()));
      sw_hits.add(revisit.from_sw_cache);
      not_modified.add(revisit.not_modified);
      compute.add(to_millis(tb.origin->stats().catalyst_compute));
    }
    table.add_row({v.name, ms(plt.mean()),
                   str_format("%.1f", sw_hits.mean()),
                   str_format("%.1f", not_modified.mean()),
                   str_format("%.3f", compute.mean())});
  }
  table.print();
  std::printf(
      "\nExpected: dropping the CSS closure leaves fonts/background images "
      "uncovered\n(fewer SW hits); session learning covers JS-fetched "
      "resources (more SW hits);\ndisabling memoization multiplies server "
      "compute without changing client PLT\nmaterially.\n");
  return 0;
}
