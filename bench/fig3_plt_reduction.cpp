// FIG3 — regenerates Figure 3: average % PLT reduction of CacheCatalyst
// over status-quo caching across the throughput × latency grid, averaged
// over the synthetic top-site corpus and the paper's five revisit delays
// (1 min, 1 h, 6 h, 1 d, 1 w). Workload: static clones (the paper's
// methodology). Expectation: ≈0–15% at 8 Mbps, rising with latency, with
// ~30% around the global-5G-median condition (60 Mbps / 40 ms).
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

int main() {
  const int n_sites = site_count();
  const auto sites = make_corpus(n_sites, /*clone=*/true);
  const auto delays = core::paper_revisit_delays();

  const double throughputs[] = {8, 25, 60};
  const double latencies[] = {10, 20, 40, 80};

  Table table(str_format(
      "Figure 3 — mean PLT reduction (catalyst vs baseline), %d sites x 5 "
      "revisit delays",
      n_sites));
  table.set_header({"throughput", "10 ms", "20 ms", "40 ms", "80 ms"});

  std::vector<std::vector<double>> series;
  for (const double mbps_down : throughputs) {
    std::vector<std::string> row = {str_format("%.0f Mbps", mbps_down)};
    std::vector<double> means;
    for (const double rtt_ms : latencies) {
      netsim::NetworkConditions c;
      c.downlink = mbps(mbps_down);
      c.uplink = mbps(mbps_down / 5.0);
      c.rtt = milliseconds_f(rtt_ms);
      const Summary s = core::plt_reduction_summary(
          sites, c, core::StrategyKind::Catalyst,
          core::StrategyKind::Baseline, delays);
      means.push_back(s.mean());
      row.push_back(str_format("%+.1f%% ±%.1f", s.mean(),
                               s.ci95_halfwidth()));
    }
    series.push_back(means);
    table.add_row(std::move(row));
  }
  table.print();

  // ASCII rendition of the figure: one series per throughput.
  std::printf("\nPLT reduction vs last-mile RTT (one series per "
              "throughput):\n");
  for (std::size_t t = 0; t < series.size(); ++t) {
    std::printf("  %2.0f Mbps ", throughputs[t]);
    for (std::size_t l = 0; l < series[t].size(); ++l) {
      const int bar = std::max(0, static_cast<int>(series[t][l] / 1.5));
      std::printf("| %3.0fms %-24.*s (%4.1f%%) ",
                  latencies[l], bar,
                  "########################", series[t][l]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper's qualitative claims to check: gains grow with latency at "
      "fixed\nthroughput; gains grow with throughput at fixed latency; "
      "8 Mbps shows the\nsmallest improvement (bandwidth, not latency, is "
      "the bottleneck there).\n");
  return 0;
}
