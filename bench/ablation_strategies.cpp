// ABL-PUSH — the comparison the paper defers to future work (§5/§6):
// CacheCatalyst vs HTTP/2 Server Push (push-all, push-learned), a remote-
// dependency-resolution proxy, the session-learning catalyst extension,
// and the perfect-knowledge Oracle. Reports revisit PLT, bytes on the
// wire (push's known failure mode), RTTs and cold-load PLT, at the median
// 5G condition and at low throughput (where push's waste hurts most).
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

int main() {
  const int n_sites = site_count(30);
  const auto sites = make_corpus(n_sites, /*clone=*/true);
  const Duration delay = hours(6);

  const core::StrategyKind kinds[] = {
      core::StrategyKind::Baseline,      core::StrategyKind::Catalyst,
      core::StrategyKind::CatalystLearned, core::StrategyKind::PushAll,
      core::StrategyKind::PushLearned,   core::StrategyKind::PushDigest,
      core::StrategyKind::EarlyHints,    core::StrategyKind::RdrProxy,
      core::StrategyKind::Oracle,
  };

  const netsim::NetworkConditions conditions[] = {
      netsim::NetworkConditions::median_5g(),
      netsim::NetworkConditions::low_throughput(milliseconds(40)),
  };

  for (const auto& c : conditions) {
    Table table(str_format(
        "Strategy comparison at %s, revisit +6 h over %d sites",
        c.label().c_str(), n_sites));
    table.set_header({"strategy", "cold ms", "revisit ms", "vs baseline",
                      "FCP ms", "TTI ms", "KiB down", "RTTs"});
    double baseline_revisit = 0.0;
    for (const auto kind : kinds) {
      Summary cold, revisit, fcp, tti, bytes, rtts;
      for (const auto& site : sites) {
        const auto outcome = core::run_revisit_pair(site, c, kind, delay);
        cold.add(to_millis(outcome.cold.plt()));
        revisit.add(to_millis(outcome.revisit.plt()));
        fcp.add(to_millis(outcome.revisit.fcp()));
        tti.add(to_millis(outcome.revisit.tti()));
        bytes.add(static_cast<double>(outcome.revisit.bytes_downloaded) /
                  1024.0);
        rtts.add(outcome.revisit.rtts);
      }
      if (kind == core::StrategyKind::Baseline) {
        baseline_revisit = revisit.mean();
      }
      const double vs = 100.0 * (baseline_revisit - revisit.mean()) /
                        baseline_revisit;
      table.add_row({std::string(core::to_string(kind)), ms(cold.mean()),
                     ms(revisit.mean()), pct(vs), ms(fcp.mean()),
                     ms(tti.mean()), str_format("%.0f", bytes.mean()),
                     str_format("%.1f", rtts.mean())});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Expected shape: push variants rival catalyst's revisit PLT but "
      "resend\nmany-fold more bytes (wasted bandwidth, [44, 50]); at 8 "
      "Mbps the waste\nturns into a PLT *loss*. RDR gains nothing on "
      "revisits (no client cache\nreuse). Oracle bounds all cache-based "
      "strategies from below; catalyst+learn\napproaches it by covering "
      "JS-discovered resources.\n");
  return 0;
}
