// ABL-H2 — the H2-by-default ablation grid: Baseline/Catalyst × H1/H2.
//
// PR 8's phase breakdown showed `queue` dominating the revisit tail
// (p95 seconds vs ttfb p95 ~100 ms): with HTTP/1.1, a page's fetches
// serialize behind the browser's six connections per origin, so most of
// a slow load is spent *waiting for a connection*, not on the wire. The
// push literature (Zimmermann et al.; Meireles et al.) measures exactly
// this H1-vs-H2 delivery gap. This grid quantifies how much of the
// queue tail H2 multiplexing reclaims, for the status-quo Baseline and
// for Catalyst — i.e. whether catalyst's win survives a transport that
// already removed the connection bottleneck.
//
// Each cell replays the same user population (same seed, same visit
// timelines) with the phase breakdown on; `queue share` is the fraction
// of recorded client-side virtual time spent in the queue phase. The
// breakdown histograms are integer-bucket merges, so every cell is
// bit-identical across reruns and thread counts.
//
// CATALYST_H2_USERS overrides the per-cell fleet size (default 128).
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "fleet/runner.h"
#include "netsim/transport.h"
#include "obs/phase.h"
#include "util/strings.h"
#include "util/table.h"

using namespace catalyst;

namespace {

int fleet_users() {
  if (const char* env = std::getenv("CATALYST_H2_USERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 128;
}

int bench_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw > 8 ? 8 : hw);
}

struct Cell {
  const char* name;
  core::StrategyKind strategy;
  bool h2;
};

}  // namespace

int main() {
  const auto users = static_cast<std::uint64_t>(fleet_users());
  const int threads = bench_threads();

  const Cell cells[] = {
      {"baseline x h1", core::StrategyKind::Baseline, false},
      {"baseline x h2", core::StrategyKind::Baseline, true},
      {"catalyst x h1", core::StrategyKind::Catalyst, false},
      {"catalyst x h2", core::StrategyKind::Catalyst, true},
  };

  Table table(str_format(
      "H2-by-default ablation: revisit PLT and queue phase "
      "(%llu users x 2 strategies x 2 transports)",
      static_cast<unsigned long long>(users)));
  table.set_header({"cell", "plt p50 ms", "plt p95 ms", "queue p50 ms",
                    "queue p95 ms", "queue share", "ttfb p95 ms"});

  for (const Cell& cell : cells) {
    fleet::FleetParams params;
    params.strategy = cell.strategy;
    params.baseline = cell.strategy;  // grid cells compare to each other
    params.breakdown = true;
    if (cell.h2) {
      params.options.browser_protocol = netsim::Protocol::H2;
    }

    std::fprintf(stderr, "ablation_h2_grid: %s...\n", cell.name);
    fleet::FleetRunner runner(params, users, threads);
    const fleet::FleetReport report = runner.run();

    const obs::PhaseHistogram& queue =
        report.phases.of(obs::Phase::kQueue);
    const obs::PhaseHistogram& ttfb = report.phases.of(obs::Phase::kTtfb);
    const std::int64_t client_ns = report.phases.client_total_ns();
    const double queue_share =
        client_ns > 0 ? 100.0 * static_cast<double>(queue.total_ns()) /
                            static_cast<double>(client_ns)
                      : 0.0;

    table.add_row({cell.name,
                   str_format("%.1f", report.plt_ms.percentile(50)),
                   str_format("%.1f", report.plt_ms.percentile(95)),
                   str_format("%.1f", queue.quantile_ms(50)),
                   str_format("%.1f", queue.quantile_ms(95)),
                   str_format("%.1f%%", queue_share),
                   str_format("%.1f", ttfb.quantile_ms(95))});
  }
  table.print();
  std::printf(
      "\nExpected: H2 collapses the queue tail (six-connection "
      "serialization is\nan H1 artifact), so queue p95 and queue share "
      "drop sharply for both\nstrategies. Catalyst's PLT win narrows "
      "under H2 but persists: dependency\nchains still pay per-level "
      "RTTs that only a warm cache removes.\n");
  return 0;
}
