// Shared helpers for the experiment benches.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "util/strings.h"
#include "workload/sitegen.h"

namespace catalyst::bench {

/// Number of synthetic top-sites to evaluate. The paper used 100; the
/// benches default lower to keep a full `for b in build/bench/*` sweep
/// fast. Override with CATALYST_SITES=100 for the full corpus.
inline int site_count(int fallback = 50) {
  if (const char* env = std::getenv("CATALYST_SITES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return fallback;
}

/// The synthetic top-site corpus. `clone` mirrors the paper's methodology
/// (static snapshots served from one origin; content frozen during the
/// revisit window).
inline std::vector<std::shared_ptr<server::Site>> make_corpus(
    int count, bool clone, std::uint64_t seed = 2024) {
  std::vector<std::shared_ptr<server::Site>> sites;
  sites.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workload::SitegenParams params;
    params.seed = seed;
    params.site_index = i;
    params.clone_static_snapshot = clone;
    sites.push_back(workload::generate_site(params));
  }
  return sites;
}

inline std::string pct(double value) {
  return str_format("%+.1f%%", value);
}

inline std::string ms(double value) {
  return str_format("%.1f", value);
}

}  // namespace catalyst::bench
