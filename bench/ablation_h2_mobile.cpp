// ABL-ENV — environment ablations the paper leaves open:
//   1. HTTP/2 everywhere: multiplexing already removes the 6-connection
//      bottleneck for re-validations — how much of catalyst's win
//      survives? (Each dependency level still costs an RTT.)
//   2. Mobile-class clients: slower parse/execute shifts PLT from network
//      to compute; the paper motivates with mobile web performance.
//   3. DNS lookups on first connections (cold-load realism).
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

namespace {

struct Row {
  const char* name;
  core::StrategyOptions options;
};

}  // namespace

int main() {
  const int n_sites = site_count(30);
  const auto sites = make_corpus(n_sites, /*clone=*/true);
  const auto conditions = netsim::NetworkConditions::median_5g();
  const auto delays = core::paper_revisit_delays();

  core::StrategyOptions h2;
  h2.browser_protocol = netsim::Protocol::H2;
  core::StrategyOptions mobile;
  mobile.mobile_client = true;
  core::StrategyOptions dns;
  dns.dns_lookup = milliseconds(30);

  const Row rows[] = {
      {"desktop, HTTP/1.1 x6 (default)", {}},
      {"desktop, HTTP/2 multiplexed", h2},
      {"mobile-class client, HTTP/1.1", mobile},
      {"with 30 ms DNS lookups", dns},
  };

  Table table(str_format(
      "Environment ablations at %s (%d sites x 5 delays)",
      conditions.label().c_str(), n_sites));
  table.set_header({"environment", "baseline revisit ms",
                    "catalyst revisit ms", "reduction"});
  for (const Row& row : rows) {
    Summary base, cat, reduction;
    for (const auto& site : sites) {
      for (const Duration delay : delays) {
        const auto b = core::run_revisit_pair(
            site, conditions, core::StrategyKind::Baseline, delay,
            row.options);
        const auto c = core::run_revisit_pair(
            site, conditions, core::StrategyKind::Catalyst, delay,
            row.options);
        const double bm = to_millis(b.revisit.plt());
        const double cm = to_millis(c.revisit.plt());
        base.add(bm);
        cat.add(cm);
        reduction.add(100.0 * (bm - cm) / bm);
      }
    }
    table.add_row({row.name, ms(base.mean()), ms(cat.mean()),
                   str_format("%+.1f%% ±%.1f", reduction.mean(),
                              reduction.ci95_halfwidth())});
  }
  table.print();
  std::printf(
      "\nExpected: H2 multiplexing shrinks baseline's revalidation cost "
      "(parallel\n304s), so catalyst's relative win drops but stays "
      "positive — dependency\nchains still pay per-level RTTs. Mobile "
      "compute dilutes network savings\nslightly. DNS affects both arms "
      "equally (cold connections only).\n");
  return 0;
}
