// Edge offload curves: what a shared multi-PoP edge tier buys as its
// capacity grows, for the status-quo Baseline and for Catalyst.
//
// For each (strategy, edge capacity) point the fleet replays the same user
// population (same seed, same visit timelines, same user→PoP mapping)
// through a small edge tier, and reports revisit PLT p50/p95, the
// origin-offload percentage (requests answered without an upstream fetch),
// origin bytes, and the coalesced-fetch count. A no-edge point per
// strategy anchors each curve. Output is a stable JSON document on stdout;
// progress and timing go to stderr.
//
// Determinism: users map to PoPs as a pure function of (seed, user_id),
// and shards are partitioned by PoP, so every point is bit-identical
// across reruns and thread counts.
//
// CATALYST_EDGE_USERS overrides the per-point fleet size (default 96).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "edge/node.h"
#include "fleet/runner.h"
#include "netsim/transport.h"
#include "util/json.h"

using namespace catalyst;

namespace {

int fleet_users() {
  if (const char* env = std::getenv("CATALYST_EDGE_USERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 96;
}

Json run_point(core::StrategyKind strategy, ByteCount capacity,
               bool admission, std::uint64_t users, int threads,
               ByteCount flash_capacity = 0,
               Duration flash_latency = microseconds(100), int pops = 4) {
  fleet::FleetParams params;
  params.strategy = strategy;
  params.baseline = strategy;  // no comparison replay; the curve compares
  params.shard_size = 32;
  if (capacity > 0) {
    params.edge.pops = pops;
    params.edge.capacity = capacity;
    params.edge.admission = admission;
    params.edge.flash_capacity = flash_capacity;
    params.edge.flash_read_latency = flash_latency;
  }

  fleet::FleetRunner runner(params, users, threads);
  const fleet::FleetReport report = runner.run();

  fleet::EdgePopReport edge;
  for (const auto& [pop, s] : report.edge_pops) edge.merge(s);

  Json point = Json::object();
  point.set("edge_capacity_mb",
            Json::number(static_cast<double>(capacity) / (1024.0 * 1024.0)));
  point.set("plt_p50_ms", Json::number(report.plt_ms.percentile(50)));
  point.set("plt_p95_ms", Json::number(report.plt_ms.percentile(95)));
  point.set("edge_requests",
            Json::number(static_cast<double>(edge.requests)));
  const double offload =
      edge.requests == 0
          ? 0.0
          : 100.0 *
                static_cast<double>(edge.requests - edge.origin_fetches) /
                static_cast<double>(edge.requests);
  point.set("origin_offload_pct", Json::number(offload));
  point.set("origin_fetches",
            Json::number(static_cast<double>(edge.origin_fetches)));
  point.set("origin_not_modified",
            Json::number(static_cast<double>(edge.origin_not_modified)));
  point.set("bytes_from_origin",
            Json::number(static_cast<double>(edge.bytes_from_origin)));
  point.set("coalesced", Json::number(static_cast<double>(edge.coalesced)));
  point.set("evictions", Json::number(static_cast<double>(edge.evictions)));
  point.set("admission_rejects",
            Json::number(static_cast<double>(edge.admission_rejects)));
  // Per-tier hit rates: where answered requests were actually served.
  auto pct = [&edge](std::uint64_t n) {
    return edge.requests == 0
               ? 0.0
               : 100.0 * static_cast<double>(n) /
                     static_cast<double>(edge.requests);
  };
  point.set("ram_hit_pct", Json::number(pct(edge.hits)));
  point.set("flash_hit_pct", Json::number(pct(edge.flash_hits)));
  if (flash_capacity > 0) {
    point.set("flash_capacity_mb",
              Json::number(static_cast<double>(flash_capacity) /
                           (1024.0 * 1024.0)));
    point.set("flash_read_lat_us",
              Json::number(static_cast<double>(flash_latency.count()) /
                           1000.0));
    point.set("flash_demotions",
              Json::number(static_cast<double>(edge.flash_demotions)));
    point.set("flash_promotions",
              Json::number(static_cast<double>(edge.flash_promotions)));
    point.set("flash_write_amp", Json::number(edge.flash_write_amp()));
    point.set("aio_reads", Json::number(static_cast<double>(edge.aio_reads)));
    point.set("aio_merged_reads",
              Json::number(static_cast<double>(edge.aio_merged_reads)));
    point.set("aio_queue_waits",
              Json::number(static_cast<double>(edge.aio_queue_waits)));
  }
  return point;
}

/// Fleet replay is user-major (one client at a time per PoP), so the
/// fleet-level coalesced counter is structurally zero there. This probe
/// shows the mechanism itself: N clients miss on the same resource in the
/// same instant, and the PoP issues exactly one origin fetch.
Json coalescing_probe(int clients) {
  netsim::EventLoop loop;
  netsim::Network network(loop);
  network.add_host("client");
  network.add_host("origin.example");
  edge::EdgePop pop{edge::EdgeConfig{}};
  network.add_host(pop.host_name());
  network.set_rtt("client", pop.host_name(), milliseconds(20));
  network.set_rtt(pop.host_name(), "origin.example", milliseconds(30));
  network.host("origin.example")
      .set_handler([&loop](const http::Request&,
                           std::function<void(netsim::ServerReply)> respond) {
        netsim::ServerReply reply;
        reply.response = http::Response::make(http::Status::Ok);
        reply.response.body = std::string(20000, 'x');
        reply.response.headers.set(http::kEtagHeader, "\"v1\"");
        reply.response.headers.set(http::kCacheControl, "max-age=300");
        reply.response.finalize(loop.now());
        respond(std::move(reply));
      });
  edge::EdgeNode node(pop, network, "origin.example");

  std::vector<std::unique_ptr<netsim::Connection>> conns;
  for (int i = 0; i < clients; ++i) {
    conns.push_back(std::make_unique<netsim::Connection>(
        network, "client", pop.host_name(), /*tls=*/false,
        netsim::Protocol::H1));
    conns.back()->send_request(
        http::Request::get("/hot.js", pop.host_name()),
        [](http::Response) {});
  }
  loop.run();

  const edge::EdgePopStats stats = pop.stats();
  Json probe = Json::object();
  probe.set("clients", Json::number(clients));
  probe.set("origin_fetches",
            Json::number(static_cast<double>(stats.origin_fetches)));
  probe.set("coalesced", Json::number(static_cast<double>(stats.coalesced)));
  return probe;
}

/// The flash-tier complement of the coalescing probe: N clients miss in
/// RAM on a flash-resident object in the same instant. The device reads
/// the object once — later requests merge into the pending op — and every
/// client is served from that single read.
Json flash_merge_probe(int clients) {
  netsim::EventLoop loop;
  netsim::Network network(loop);
  network.add_host("client");
  network.add_host("origin.example");
  edge::EdgeConfig ec;
  ec.flash.capacity = MiB(8);
  edge::EdgePop pop{ec};
  network.add_host(pop.host_name());
  network.set_rtt("client", pop.host_name(), milliseconds(20));
  network.set_rtt(pop.host_name(), "origin.example", milliseconds(30));
  edge::EdgeNode node(pop, network, "origin.example");

  // Plant a fresh object directly in the flash log, as if demoted there
  // by an earlier RAM eviction.
  http::Response stored = http::Response::make(http::Status::Ok);
  stored.body = std::string(20000, 'x');
  stored.headers.set(http::kEtagHeader, "\"v1\"");
  stored.headers.set(http::kCacheControl, "max-age=300");
  stored.finalize(loop.now());
  cache::CacheEntry entry;
  entry.response = std::move(stored);
  entry.request_time = loop.now();
  entry.response_time = loop.now();
  pop.flash()->put("origin.example/hot.js", std::move(entry));

  std::vector<std::unique_ptr<netsim::Connection>> conns;
  for (int i = 0; i < clients; ++i) {
    conns.push_back(std::make_unique<netsim::Connection>(
        network, "client", pop.host_name(), /*tls=*/false,
        netsim::Protocol::H1));
    conns.back()->send_request(
        http::Request::get("/hot.js", pop.host_name()),
        [](http::Response) {});
  }
  loop.run();

  const edge::EdgePopStats stats = pop.stats();
  Json probe = Json::object();
  probe.set("clients", Json::number(clients));
  probe.set("flash_hits",
            Json::number(static_cast<double>(stats.flash_hits)));
  probe.set("flash_coalesced",
            Json::number(static_cast<double>(stats.flash_coalesced)));
  probe.set("device_reads",
            Json::number(static_cast<double>(stats.aio.reads)));
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const auto users = static_cast<std::uint64_t>(
      smoke ? std::min(fleet_users(), 24) : fleet_users());
  const int threads = std::max(1u, std::thread::hardware_concurrency());
  // 0 = no edge tier (the anchor point of each curve).
  const std::vector<ByteCount> capacities =
      smoke ? std::vector<ByteCount>{0, MiB(16)}
            : std::vector<ByteCount>{0, MiB(4), MiB(16), MiB(64), MiB(256)};

  const struct {
    core::StrategyKind kind;
    const char* name;
  } strategies[] = {
      {core::StrategyKind::Baseline, "baseline"},
      {core::StrategyKind::Catalyst, "catalyst"},
  };

  const auto t0 = std::chrono::steady_clock::now();
  Json curves = Json::object();
  for (const auto& strategy : strategies) {
    Json curve = Json::array();
    for (const ByteCount capacity : capacities) {
      std::fprintf(stderr, "edge_offload: %s capacity=%lluMiB (%llu users)\n",
                   strategy.name,
                   static_cast<unsigned long long>(capacity / MiB(1)),
                   static_cast<unsigned long long>(users));
      curve.push_back(
          run_point(strategy.kind, capacity, /*admission=*/true, users,
                    threads));
    }
    curves.set(strategy.name, std::move(curve));
  }

  // FLASH sweep: two PoPs with a deliberately starved RAM tier (1 MiB,
  // evicting constantly — so demotion feeds the log a real working set)
  // backed by a growing flash capacity, at a fast-NVMe and a
  // congested-device latency. The 0 anchor per latency curve is the
  // RAM-only PoP.
  // 4 MiB sits below the demoted working set, so GC churns (write amp >
  // 1, salvage rewrites); 32+ MiB holds it whole and the curve plateaus.
  const std::vector<ByteCount> flash_caps =
      smoke ? std::vector<ByteCount>{0, MiB(4), MiB(32)}
            : std::vector<ByteCount>{0, MiB(4), MiB(32), MiB(128)};
  const std::vector<Duration> flash_lats = {microseconds(100),
                                            microseconds(2000)};
  Json flash_sweep = Json::array();
  for (const Duration lat : flash_lats) {
    for (const ByteCount fcap : flash_caps) {
      std::fprintf(stderr,
                   "edge_offload: flash=%lluMiB lat=%lldus (%llu users)\n",
                   static_cast<unsigned long long>(fcap / MiB(1)),
                   static_cast<long long>(lat.count() / 1000),
                   static_cast<unsigned long long>(users));
      Json point = run_point(core::StrategyKind::Catalyst, MiB(1),
                             /*admission=*/true, users, threads, fcap, lat,
                             /*pops=*/2);
      point.set("lat_us",
                Json::number(static_cast<double>(lat.count()) / 1000.0));
      flash_sweep.push_back(std::move(point));
    }
  }

  // Admission ablation: the mid-size tier with TinyLFU disabled, showing
  // what the doorkeeper buys against one-hit-wonder traffic.
  Json ablation = Json::array();
  if (!smoke) {
    for (const auto& strategy : strategies) {
      std::fprintf(stderr, "edge_offload: %s no-admission (%llu users)\n",
                   strategy.name, static_cast<unsigned long long>(users));
      Json point = run_point(strategy.kind, MiB(16), /*admission=*/false,
                             users, threads);
      point.set("strategy", Json::string(strategy.name));
      ablation.push_back(std::move(point));
    }
  }

  Json doc = Json::object();
  doc.set("users_per_point", Json::number(static_cast<double>(users)));
  doc.set("edge_pops", Json::number(4));
  doc.set("curves", std::move(curves));
  doc.set("flash_sweep_ram1mb", std::move(flash_sweep));
  if (!smoke) doc.set("no_admission_16mb", std::move(ablation));
  doc.set("coalescing_probe", coalescing_probe(/*clients=*/8));
  doc.set("flash_merge_probe", flash_merge_probe(/*clients=*/8));
  std::printf("%s\n", doc.dump().c_str());

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stderr, "edge_offload: %.1f s wall\n", secs);
  return 0;
}
