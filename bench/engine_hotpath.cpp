// engine_hotpath — machine-readable micro+macro benchmark of the
// simulation engine's hot path.
//
//   engine_hotpath [--smoke] [--out FILE] [--baseline FILE] [--users N]
//
// Micro section: ns/op for the structures the hot path runs on — string
// interning, open-addressing map lookups, the pooled event loop, slab
// pool cycling, batched Zipf draws, and the memoized body digest.
//
// Macro section: a fleet replay through the full engine (faults + edge
// tier on, catalyst vs baseline arms, the fleetsim reference shape) and
// its engine events/sec — the number the optimization work is gated on.
//
// --smoke       shrink the macro fleet for CI (seconds, not minutes)
// --out FILE    write the results as JSON (BENCH_hotpath.json schema)
// --baseline F  compare against a previous --out file: exit 1 when macro
//               events/sec drops below min_ratio (default 0.8) of the
//               baseline — the CI perf gate
// --users N     explicit macro fleet size (overrides --smoke default)
// --h2          run the macro fleet with HTTP/2 browsers (one multiplexed
//               connection per origin instead of six H1 connections);
//               tags the JSON with "h2":true so H2 numbers are never
//               compared against the H1 baseline
// --self-profile  enable the obs wall-clock subsystem timers; adds a
//               "self_profile" JSON section and a stderr table
// --overhead-gate  run the macro fleet with the phase breakdown off vs
//               on (best of 2 each) and exit 1 when breakdown-on drops
//               below overhead_ratio (default 0.97) of breakdown-off —
//               the observability overhead gate
//
// Timing numbers are hardware-dependent; baselines only make sense
// against runs on comparable machines (see BENCHMARKS.md).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/runner.h"
#include "netsim/event_loop.h"
#include "obs/selfprof.h"
#include "util/flat_hash.h"
#include "util/intern.h"
#include "util/json.h"
#include "util/pool.h"
#include "util/strings.h"
#include "workload/distributions.h"

using namespace catalyst;

namespace {

/// Keeps `value` observable so timed loops are not optimized away.
template <class T>
inline void keep(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median-of-3 ns/op for `op` run `iters` times per rep.
template <class Fn>
double bench_ns(std::size_t iters, Fn&& op) {
  double best = 0.0;
  std::vector<double> reps;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < iters; ++i) op(i);
    reps.push_back((now_s() - t0) * 1e9 / static_cast<double>(iters));
  }
  // median
  std::sort(reps.begin(), reps.end());
  best = reps[1];
  return best;
}

double bench_intern_hit(std::size_t iters) {
  InternTable table;
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i) {
    keys.push_back("/assets/chunk-" + std::to_string(i) + ".js");
    table.intern(keys.back());
  }
  return bench_ns(iters, [&](std::size_t i) {
    keep(table.intern(keys[i & 4095]));  // warm-hit path
  });
}

double bench_flat_hash_lookup(std::size_t iters) {
  FlatHashMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t k = 0; k < 4096; ++k) map.insert_or_assign(k * 7, k);
  return bench_ns(iters, [&](std::size_t i) {
    keep(map.find((i & 4095) * 7));
  });
}

double bench_event_loop(std::size_t iters) {
  netsim::EventLoop loop;
  std::uint64_t counter = 0;
  // Schedule/run in batches: mirrors the request/response cascades the
  // engine generates (every event may enqueue more).
  const std::size_t batch = 64;
  return bench_ns(iters / batch, [&](std::size_t) {
    for (std::size_t j = 0; j < batch; ++j) {
      loop.schedule_after(milliseconds(static_cast<int>(j & 7)),
                          [&counter] { ++counter; });
    }
    keep(loop.run());
  }) / static_cast<double>(batch);
}

double bench_pool_cycle(std::size_t iters) {
  SlabPool<std::vector<std::uint8_t>> pool;
  return bench_ns(iters, [&](std::size_t) {
    const auto h = pool.acquire();
    keep(*pool.get(h));
    pool.release(h);
  });
}

double bench_zipf_draw(std::size_t iters) {
  Rng rng(2024);
  return bench_ns(iters, [&](std::size_t) {
    keep(workload::draw_zipf_rank(40, 0.9, rng));
  });
}

double bench_digest_memo(std::size_t iters) {
  http::Response response;
  response.body = std::string(30'000, 'x');
  keep(response.body_digest());  // cold digest paid once here
  return bench_ns(iters, [&](std::size_t) {
    keep(response.body_digest());  // memo hit — the steady-state path
  });
}

struct MacroResult {
  std::uint64_t users = 0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double users_per_sec = 0.0;
  obs::ProfCounters prof;  // merged shard self-profile counters
};

/// Fleet replay shaped like the fleetsim reference config (faults + edge
/// on, catalyst vs baseline), scaled down by --smoke. `h2` swaps the
/// browsers' transport from six H1 connections to one multiplexed H2
/// connection per origin (the --h2 ablation axis).
MacroResult run_macro(std::uint64_t users, int threads, bool breakdown,
                      bool h2 = false) {
  fleet::FleetParams params;
  params.strategy = core::StrategyKind::Catalyst;
  params.baseline = core::StrategyKind::Baseline;
  params.shard_size = 256;
  params.user_model.master_seed = 2024;
  params.user_model.sitegen_seed = 2024;
  params.faults.loss_rate = 0.01;
  params.faults.stall_rate = 0.0025;
  params.faults.fault_seed = 2024;
  params.edge.pops = 4;
  params.breakdown = breakdown;
  if (h2) params.options.browser_protocol = netsim::Protocol::H2;

  fleet::FleetRunner runner(params, users, threads);
  const double t0 = now_s();
  const fleet::FleetReport report = runner.run();
  const double wall = now_s() - t0;

  MacroResult r;
  r.users = users;
  r.events = report.events_executed;
  r.wall_s = wall;
  r.events_per_sec =
      wall > 0 ? static_cast<double>(report.events_executed) / wall : 0.0;
  r.users_per_sec = wall > 0 ? static_cast<double>(users) / wall : 0.0;
  r.prof = report.prof;
  return r;
}

Json to_json(bool smoke, const Json& micro, const MacroResult& macro) {
  Json macro_json = Json::object();
  macro_json.set("users", Json::number(static_cast<double>(macro.users)));
  macro_json.set("events", Json::number(static_cast<double>(macro.events)));
  macro_json.set("wall_s", Json::number(macro.wall_s));
  macro_json.set("events_per_sec", Json::number(macro.events_per_sec));
  macro_json.set("users_per_sec", Json::number(macro.users_per_sec));

  Json out = Json::object();
  out.set("schema", Json::string("catalyst-hotpath-v1"));
  out.set("smoke", Json::boolean(smoke));
  out.set("micro", micro);
  out.set("macro", std::move(macro_json));
  return out;
}

/// Loads the macro events/sec recorded in a previous --out file.
double baseline_events_per_sec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "engine_hotpath: cannot open baseline %s\n",
                 path.c_str());
    return -1.0;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto json = Json::parse(buffer.str());
  if (!json || !json->is_object()) {
    std::fprintf(stderr, "engine_hotpath: malformed baseline %s\n",
                 path.c_str());
    return -1.0;
  }
  // Accept both a previous --out file ({"macro":{"events_per_sec":...}})
  // and the checked-in baseline pair ({"gate":{"events_per_sec":...}}).
  for (const char* section : {"gate", "macro"}) {
    if (const Json* s = json->find(section)) {
      if (const Json* v = s->find("events_per_sec")) {
        if (v->is_number()) return v->as_number();
      }
    }
  }
  std::fprintf(stderr, "engine_hotpath: no events_per_sec in %s\n",
               path.c_str());
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool self_profile = false;
  bool overhead_gate = false;
  bool h2 = false;
  std::string out_path;
  std::string baseline_path;
  std::uint64_t users = 0;
  double min_ratio = 0.8;
  double overhead_ratio = 0.97;  // breakdown-on must keep 97% throughput
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--self-profile") {
      self_profile = true;
    } else if (arg == "--overhead-gate") {
      overhead_gate = true;
    } else if (arg == "--h2") {
      h2 = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--users" && i + 1 < argc) {
      users = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--min-ratio" && i + 1 < argc) {
      min_ratio = std::atof(argv[++i]);
    } else if (arg == "--overhead-ratio" && i + 1 < argc) {
      overhead_ratio = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: engine_hotpath [--smoke] [--out FILE]\n"
                   "                      [--baseline FILE] [--users N]\n"
                   "                      [--min-ratio R] [--self-profile]\n"
                   "                      [--h2] [--overhead-gate]\n"
                   "                      [--overhead-ratio R]\n");
      return 2;
    }
  }
  if (users == 0) users = smoke ? 200 : 1000;
  obs::set_timing(self_profile);

  if (overhead_gate) {
    // Observability overhead gate: the same macro fleet with the phase
    // breakdown off vs on. Interleaved best-of-2 per arm so one noisy
    // CI neighbour can't fail (or pass) the gate by itself.
    double best_off = 0.0;
    double best_on = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      best_off = std::max(
          best_off, run_macro(users, /*threads=*/8, false).events_per_sec);
      best_on = std::max(
          best_on, run_macro(users, /*threads=*/8, true).events_per_sec);
    }
    const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;
    std::fprintf(stderr,
                 "engine_hotpath: overhead gate: breakdown off %.0f, "
                 "on %.0f events/sec (%.3fx, gate %.2fx)\n",
                 best_off, best_on, ratio, overhead_ratio);
    if (ratio < overhead_ratio) {
      std::fprintf(stderr,
                   "engine_hotpath: FAIL — --breakdown costs more than "
                   "%.0f%% of macro throughput\n",
                   (1.0 - overhead_ratio) * 100.0);
      return 1;
    }
    std::fprintf(stderr, "engine_hotpath: PASS overhead gate\n");
    return 0;
  }

  const std::size_t iters = smoke ? 200'000 : 2'000'000;
  Json micro = Json::object();
  micro.set("intern_hit_ns", Json::number(bench_intern_hit(iters)));
  micro.set("flat_hash_lookup_ns",
            Json::number(bench_flat_hash_lookup(iters)));
  micro.set("event_loop_ns_per_event",
            Json::number(bench_event_loop(iters)));
  micro.set("pool_cycle_ns", Json::number(bench_pool_cycle(iters)));
  micro.set("zipf_draw_ns", Json::number(bench_zipf_draw(iters / 10)));
  micro.set("digest_memo_hit_ns", Json::number(bench_digest_memo(iters)));

  std::fprintf(stderr, "engine_hotpath: macro fleet %llu users%s...\n",
               static_cast<unsigned long long>(users), h2 ? " (h2)" : "");
  const MacroResult macro = run_macro(users, /*threads=*/8,
                                      /*breakdown=*/false, h2);

  Json result = to_json(smoke, micro, macro);
  // Mark H2 runs so their numbers are never mistaken for (or gated
  // against) the H1 baseline; the default schema stays unchanged.
  if (h2) result.set("h2", Json::boolean(true));
  if (self_profile) {
    // Wall-clock numbers: useful to a human reading this run's JSON,
    // never compared against baselines.
    result.set("self_profile", macro.prof.to_json(macro.wall_s));
  }
  const std::string dump = result.dump();
  std::printf("%s\n", dump.c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "engine_hotpath: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    out << dump << "\n";
    std::fprintf(stderr, "engine_hotpath: wrote %s\n", out_path.c_str());
  }

  std::fprintf(stderr,
               "engine_hotpath: macro %.2f s wall, %.0f events/sec, "
               "%.1f users/sec\n",
               macro.wall_s, macro.events_per_sec, macro.users_per_sec);
  if (self_profile) {
    std::fprintf(stderr, "%s", macro.prof.render_table(macro.wall_s).c_str());
  }

  if (!baseline_path.empty()) {
    const double base = baseline_events_per_sec(baseline_path);
    if (base <= 0.0) return 1;
    const double ratio = macro.events_per_sec / base;
    std::fprintf(stderr,
                 "engine_hotpath: %.0f vs baseline %.0f events/sec "
                 "(%.2fx, gate %.2fx)\n",
                 macro.events_per_sec, base, ratio, min_ratio);
    if (ratio < min_ratio) {
      std::fprintf(stderr,
                   "engine_hotpath: FAIL — macro throughput regressed "
                   "more than %.0f%% below baseline\n",
                   (1.0 - min_ratio) * 100.0);
      return 1;
    }
    std::fprintf(stderr, "engine_hotpath: PASS perf gate\n");
  }
  return 0;
}
