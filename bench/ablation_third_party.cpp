// ABL-3P — cross-origin coverage loss (paper §6, future-work item 2):
// resources on third-party origins cannot appear in the main origin's
// X-Etag-Config map, so CacheCatalyst degrades to status-quo behaviour
// for them. Sweeps the third-party fraction and reports the reduction.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

int main() {
  const int n_sites = site_count(25);
  const auto conditions = netsim::NetworkConditions::median_5g();
  const Duration delay = hours(6);

  Table table(str_format(
      "Third-party coverage loss at %s, revisit +6 h (%d sites)",
      conditions.label().c_str(), n_sites));
  table.set_header({"third-party share", "origins", "catalyst reduction",
                    "sw hits", "map-covered share"});

  for (const double fraction : {0.0, 0.15, 0.30, 0.50}) {
    Summary reduction, sw_hits, covered_share;
    for (int i = 0; i < n_sites; ++i) {
      workload::SitegenParams params;
      params.seed = 2024;
      params.site_index = i;
      params.clone_static_snapshot = true;
      params.third_party_fraction = fraction;
      const auto bundle = workload::generate_site_bundle(params);

      const auto base = core::run_revisit_pair(
          bundle, conditions, core::StrategyKind::Baseline, delay);
      const auto cat = core::run_revisit_pair(
          bundle, conditions, core::StrategyKind::Catalyst, delay);
      const double bm = to_millis(base.revisit.plt());
      const double cm = to_millis(cat.revisit.plt());
      reduction.add(100.0 * (bm - cm) / bm);
      sw_hits.add(cat.revisit.from_sw_cache);
      covered_share.add(
          100.0 * cat.revisit.from_sw_cache /
          std::max(1u, cat.revisit.resources_total));
    }
    std::size_t tp_origins = 0;
    {
      workload::SitegenParams params;
      params.seed = 2024;
      params.clone_static_snapshot = true;
      params.third_party_fraction = fraction;
      tp_origins =
          workload::generate_site_bundle(params).third_party.size();
    }
    table.add_row({str_format("%.0f%%", fraction * 100),
                   std::to_string(tp_origins),
                   str_format("%+.1f%% ±%.1f", reduction.mean(),
                              reduction.ci95_halfwidth()),
                   str_format("%.1f", sw_hits.mean()),
                   str_format("%.1f%%", covered_share.mean())});
  }
  table.print();
  std::printf(
      "\nExpected: the reduction decays as content moves off-origin — the "
      "quantified\ncost of leaving cross-origin resources to future work. "
      "(The paper's own\nevaluation hosted everything on one origin, i.e. "
      "the 0%% row.)\n");
  return 0;
}
