// ABL-HDR — X-Etag-Config header-overhead analysis: map wire size vs
// resource count, and its PLT cost on cold loads at low vs high
// throughput. The map rides on every base-HTML response, so its bytes are
// catalyst's only recurring cost.
#include <cstdio>

#include "bench_common.h"
#include "http/etag_config.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

namespace {

http::EtagConfig synthetic_map(int entries) {
  http::EtagConfig map;
  for (int i = 0; i < entries; ++i) {
    map.add(str_format("/assets/resource-%03d.css", i),
            http::Etag{"0123456789abcdef", false});
  }
  return map;
}

}  // namespace

int main() {
  // Part 1: wire size scaling.
  Table size_table(
      "X-Etag-Config wire size vs number of mapped resources");
  size_table.set_header({"resources", "header bytes", "bytes/entry",
                         "tx @8Mbps", "tx @60Mbps"});
  for (const int n : {10, 25, 50, 100, 200, 400}) {
    const auto map = synthetic_map(n);
    const ByteCount size = map.header_wire_size();
    size_table.add_row(
        {std::to_string(n), std::to_string(size),
         str_format("%.1f", static_cast<double>(size) / n),
         format_duration(mbps(8).transmission_time(size)),
         format_duration(mbps(60).transmission_time(size))});
  }
  size_table.print();

  // Part 2: end-to-end overhead — catalyst cold loads vs baseline cold
  // loads (the map + SW snippet are pure overhead on a cold cache).
  const int n_sites = site_count(25);
  const auto sites = make_corpus(n_sites, /*clone=*/true);
  Table plt_table(str_format(
      "Cold-load overhead of the catalyst header (%d sites)", n_sites));
  plt_table.set_header(
      {"conditions", "baseline cold ms", "catalyst cold ms", "overhead"});
  for (const auto& c : {netsim::NetworkConditions::median_5g(),
                        netsim::NetworkConditions::low_throughput(
                            milliseconds(40))}) {
    Summary base, cat;
    for (const auto& site : sites) {
      base.add(to_millis(core::run_revisit_pair(
                             site, c, core::StrategyKind::Baseline,
                             minutes(1))
                             .cold.plt()));
      cat.add(to_millis(core::run_revisit_pair(
                            site, c, core::StrategyKind::Catalyst,
                            minutes(1))
                            .cold.plt()));
    }
    plt_table.add_row(
        {c.label(), ms(base.mean()), ms(cat.mean()),
         pct(100.0 * (cat.mean() - base.mean()) / base.mean())});
  }
  plt_table.print();
  std::printf(
      "\nExpected: tens of bytes per mapped resource; worst-case cold "
      "overhead\nstays in the low single-digit percent even at 8 Mbps.\n");
  return 0;
}
