// Degradation curves: how Baseline and Catalyst page loads degrade as the
// network loses responses.
//
// For each loss rate the fleet replays the same user population (same
// seed, same visit timelines, same fault schedule keying) under the plain
// Baseline strategy and under Catalyst, and reports revisit PLT p50/p95,
// the fallback-revalidation rate, and the failure tallies. The output is
// a stable JSON document on stdout (one curve per strategy); progress and
// timing go to stderr.
//
// Determinism: fault decisions are keyed (fault_seed, user_id, request
// ordinal), so each point of the curve is bit-identical across reruns and
// thread counts — the curve measures the strategy, not the scheduler.
//
// CATALYST_FAULT_USERS overrides the per-point fleet size (default 96).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fleet/runner.h"
#include "util/json.h"

using namespace catalyst;

namespace {

int fleet_users() {
  if (const char* env = std::getenv("CATALYST_FAULT_USERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 96;
}

Json run_point(core::StrategyKind strategy, double loss,
               std::uint64_t users, int threads) {
  fleet::FleetParams params;
  params.strategy = strategy;
  params.baseline = strategy;  // no comparison replay; the curve compares
  params.shard_size = 32;
  params.faults.loss_rate = loss;
  params.faults.stall_rate = loss / 4.0;

  fleet::FleetRunner runner(params, users, threads);
  const fleet::FleetReport report = runner.run();

  Json point = Json::object();
  point.set("loss_rate", Json::number(loss));
  point.set("plt_p50_ms", Json::number(report.plt_ms.percentile(50)));
  point.set("plt_p95_ms", Json::number(report.plt_ms.percentile(95)));
  const double fetches = static_cast<double>(report.counters.total());
  point.set("fallback_revalidation_rate_pct",
            Json::number(fetches > 0.0
                             ? 100.0 *
                                   static_cast<double>(
                                       report.faults.fallback_revalidations) /
                                   fetches
                             : 0.0));
  point.set("timeouts",
            Json::number(static_cast<double>(report.faults.timeouts)));
  point.set("retries",
            Json::number(static_cast<double>(report.faults.retries)));
  point.set("connection_failures",
            Json::number(
                static_cast<double>(report.faults.connection_failures)));
  point.set("failed_loads",
            Json::number(static_cast<double>(report.faults.failed_loads)));
  point.set("stale_served",
            Json::number(static_cast<double>(report.counters.stale_served)));
  return point;
}

}  // namespace

int main() {
  const auto users = static_cast<std::uint64_t>(fleet_users());
  const int threads = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<double> loss_rates = {0.0, 0.005, 0.01, 0.02, 0.05};

  const struct {
    core::StrategyKind kind;
    const char* name;
  } strategies[] = {
      {core::StrategyKind::Baseline, "baseline"},
      {core::StrategyKind::Catalyst, "catalyst"},
  };

  const auto t0 = std::chrono::steady_clock::now();
  Json curves = Json::object();
  for (const auto& strategy : strategies) {
    Json curve = Json::array();
    for (const double loss : loss_rates) {
      std::fprintf(stderr, "fault_degradation: %s loss=%.3f (%llu users)\n",
                   strategy.name, loss,
                   static_cast<unsigned long long>(users));
      curve.push_back(run_point(strategy.kind, loss, users, threads));
    }
    curves.set(strategy.name, std::move(curve));
  }

  Json doc = Json::object();
  doc.set("users_per_point", Json::number(static_cast<double>(users)));
  doc.set("curves", std::move(curves));
  std::printf("%s\n", doc.dump().c_str());

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stderr, "fault_degradation: %.1f s wall\n", secs);
  return 0;
}
