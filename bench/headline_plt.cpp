// HEADLINE — the paper's summary claim: CacheCatalyst reduces PLT by ~30%
// on average. Reproduced at the highlighted global-5G-median condition
// (60 Mbps / 40 ms) with the per-delay breakdown, plus absolute PLTs.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

int main() {
  const int n_sites = site_count();
  const auto sites = make_corpus(n_sites, /*clone=*/true);
  const auto conditions = netsim::NetworkConditions::median_5g();
  const auto delays = core::paper_revisit_delays();
  const char* delay_names[] = {"1 min", "1 hour", "6 hours", "1 day",
                               "1 week"};

  Table table(str_format(
      "Headline — PLT at %s over %d sites (paper: ~30%% mean reduction)",
      conditions.label().c_str(), n_sites));
  table.set_header({"revisit delay", "baseline ms", "catalyst ms",
                    "reduction", "RTTs saved"});

  Summary all_reductions;
  Summary per_delay_means;
  for (std::size_t d = 0; d < delays.size(); ++d) {
    Summary base_plt, cat_plt, reduction, rtts_saved;
    for (const auto& site : sites) {
      const auto base = core::run_revisit_pair(
          site, conditions, core::StrategyKind::Baseline, delays[d]);
      const auto cat = core::run_revisit_pair(
          site, conditions, core::StrategyKind::Catalyst, delays[d]);
      const double b = to_millis(base.revisit.plt());
      const double c = to_millis(cat.revisit.plt());
      base_plt.add(b);
      cat_plt.add(c);
      reduction.add(100.0 * (b - c) / b);
      all_reductions.add(100.0 * (b - c) / b);
      rtts_saved.add(static_cast<double>(base.revisit.rtts) -
                     static_cast<double>(cat.revisit.rtts));
    }
    per_delay_means.add(reduction.mean());
    table.add_row({delay_names[d], ms(base_plt.mean()),
                   ms(cat_plt.mean()),
                   str_format("%+.1f%% ±%.1f", reduction.mean(),
                              reduction.ci95_halfwidth()),
                   str_format("%.1f", rtts_saved.mean())});
  }
  table.add_separator();
  table.add_row({"mean over delays", "", "",
                 str_format("%+.1f%%", all_reductions.mean()), ""});
  table.print();

  std::printf(
      "\nmeasured: %.1f%% mean (median %.1f%%, p10 %.1f%%, p90 %.1f%%) — "
      "paper reports ~30%%\n",
      all_reductions.mean(), all_reductions.median(),
      all_reductions.percentile(10), all_reductions.percentile(90));
  return 0;
}
