// ABL-STALE — the correctness side of the paper's argument: status-quo
// caching serves *stale* content whenever a TTL outlives the real change
// (the flip side of conservative TTLs is optimistic ones), while
// CacheCatalyst's map makes every reuse decision against the origin's
// current ETags. Also contrasts the two revisit-schedule readings of the
// paper's methodology (independent pairs vs one cumulative session).
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

int main() {
  const int n_sites = site_count(40);
  // Live workload: content must actually change for staleness to exist.
  const auto sites = make_corpus(n_sites, /*clone=*/false);
  const auto conditions = netsim::NetworkConditions::median_5g();
  const auto delays = core::paper_revisit_delays();
  const char* names[] = {"1 min", "1 hour", "6 hours", "1 day", "1 week"};

  Table table(str_format(
      "Stale serves per revisit (live workload, %d sites, %s)", n_sites,
      conditions.label().c_str()));
  table.set_header({"revisit delay", "baseline stale", "catalyst stale",
                    "baseline PLT ms", "catalyst PLT ms"});
  for (std::size_t d = 0; d < delays.size(); ++d) {
    Summary base_stale, cat_stale, base_plt, cat_plt;
    for (const auto& site : sites) {
      const auto base = core::run_revisit_pair(
          site, conditions, core::StrategyKind::Baseline, delays[d]);
      const auto cat = core::run_revisit_pair(
          site, conditions, core::StrategyKind::Catalyst, delays[d]);
      base_stale.add(base.revisit.stale_served);
      cat_stale.add(cat.revisit.stale_served);
      base_plt.add(to_millis(base.revisit.plt()));
      cat_plt.add(to_millis(cat.revisit.plt()));
    }
    table.add_row({names[d], str_format("%.2f", base_stale.mean()),
                   str_format("%.2f", cat_stale.mean()),
                   ms(base_plt.mean()), ms(cat_plt.mean())});
  }
  table.print();

  // Schedule ablation: independent cold+revisit pairs (our default,
  // isolates each delay) vs one cumulative session that reloads at every
  // delay (cache state accumulates and 304s keep refreshing TTLs).
  Table sched(str_format(
      "Revisit-schedule reading: independent pairs vs cumulative session "
      "(%d sites)",
      n_sites));
  sched.set_header({"delay", "pair: base ms", "pair: cat ms",
                    "cumulative: base ms", "cumulative: cat ms"});
  std::vector<Summary> cum_base(delays.size()), cum_cat(delays.size());
  std::vector<Summary> pair_base(delays.size()), pair_cat(delays.size());
  for (const auto& site : sites) {
    const auto base_seq = core::run_visit_sequence(
        site, conditions, core::StrategyKind::Baseline, delays);
    const auto cat_seq = core::run_visit_sequence(
        site, conditions, core::StrategyKind::Catalyst, delays);
    for (std::size_t d = 0; d < delays.size(); ++d) {
      cum_base[d].add(to_millis(base_seq[d + 1].plt()));
      cum_cat[d].add(to_millis(cat_seq[d + 1].plt()));
      const auto bp = core::run_revisit_pair(
          site, conditions, core::StrategyKind::Baseline, delays[d]);
      const auto cp = core::run_revisit_pair(
          site, conditions, core::StrategyKind::Catalyst, delays[d]);
      pair_base[d].add(to_millis(bp.revisit.plt()));
      pair_cat[d].add(to_millis(cp.revisit.plt()));
    }
  }
  for (std::size_t d = 0; d < delays.size(); ++d) {
    sched.add_row({names[d], ms(pair_base[d].mean()),
                   ms(pair_cat[d].mean()), ms(cum_base[d].mean()),
                   ms(cum_cat[d].mean())});
  }
  sched.print();
  std::printf(
      "\nExpected: the baseline serves a fraction of a resource per visit "
      "stale\n(changed-but-TTL-fresh); catalyst's SW serves none — its "
      "only flagged\nserves come from plain-HTTP-cache fallbacks for "
      "uncovered resources.\nCumulative sessions flatter the baseline at "
      "long delays (each reload\nrefreshes TTLs) without changing the "
      "ordering.\n");
  return 0;
}
