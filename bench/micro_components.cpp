// MICRO — google-benchmark microbenchmarks of the substrate components:
// the HTML tokenizer/parser the server's DOM scan runs on, the HTTP
// message parser, ETag-map encode/decode, SHA-1 ETag generation, cache
// operations, and the event-driven fluid link.
#include <benchmark/benchmark.h>

#include "cache/http_cache.h"
#include "html/generate.h"
#include "html/link_extract.h"
#include "html/parser.h"
#include "http/etag_config.h"
#include "http/parser.h"
#include "http/serializer.h"
#include "netsim/link.h"
#include "util/hash.h"

namespace {

using namespace catalyst;

std::string sample_page(ByteCount size) {
  html::HtmlBuilder builder("bench page");
  for (int i = 0; i < 4; ++i) {
    builder.add_stylesheet("/assets/style" + std::to_string(i) + ".css");
  }
  for (int i = 0; i < 12; ++i) {
    builder.add_script("/assets/app" + std::to_string(i) + ".js", i % 2);
  }
  for (int i = 0; i < 30; ++i) {
    builder.add_image("/img/pic" + std::to_string(i) + ".webp");
  }
  builder.pad_to(size, 42);
  return builder.build();
}

void BM_HtmlParse(benchmark::State& state) {
  const std::string page =
      sample_page(static_cast<ByteCount>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(html::parse(page));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(page.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HtmlParse)->Arg(16 << 10)->Arg(64 << 10)->Arg(256 << 10);

void BM_LinkExtraction(benchmark::State& state) {
  const std::string page = sample_page(64 << 10);
  const auto doc = html::parse(page);
  for (auto _ : state) {
    benchmark::DoNotOptimize(html::extract_resources(*doc));
  }
}
BENCHMARK(BM_LinkExtraction);

void BM_DomScanEndToEnd(benchmark::State& state) {
  // What the CacheCatalyst module does per (uncached) HTML serve.
  const std::string page =
      sample_page(static_cast<ByteCount>(state.range(0)));
  for (auto _ : state) {
    const auto doc = html::parse(page);
    benchmark::DoNotOptimize(html::extract_resources(*doc));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(page.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DomScanEndToEnd)->Arg(64 << 10);

void BM_HttpResponseParse(benchmark::State& state) {
  http::Response resp = http::Response::make(http::Status::Ok);
  resp.headers.set(http::kContentType, "text/css");
  resp.headers.set(http::kCacheControl, "max-age=3600");
  resp.headers.set(http::kEtagHeader, "\"0123456789abcdef\"");
  resp.body = std::string(static_cast<std::size_t>(state.range(0)), 'x');
  resp.finalize(TimePoint{});
  const std::string wire = http::serialize(resp);
  for (auto _ : state) {
    http::ResponseParser parser;
    parser.feed(wire);
    benchmark::DoNotOptimize(parser.take());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(wire.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HttpResponseParse)->Arg(1 << 10)->Arg(64 << 10);

void BM_EtagConfigEncode(benchmark::State& state) {
  http::EtagConfig map;
  for (int i = 0; i < state.range(0); ++i) {
    map.add("/assets/resource-" + std::to_string(i) + ".css",
            http::Etag{"0123456789abcdef", false});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.encode());
  }
}
BENCHMARK(BM_EtagConfigEncode)->Arg(50)->Arg(200);

void BM_EtagConfigParse(benchmark::State& state) {
  http::EtagConfig map;
  for (int i = 0; i < state.range(0); ++i) {
    map.add("/assets/resource-" + std::to_string(i) + ".css",
            http::Etag{"0123456789abcdef", false});
  }
  const std::string encoded = map.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::EtagConfig::parse(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(encoded.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EtagConfigParse)->Arg(50)->Arg(200);

void BM_Sha1Etag(benchmark::State& state) {
  const std::string content(static_cast<std::size_t>(state.range(0)), 'y');
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::make_content_etag(content));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(content.size()) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Sha1Etag)->Arg(4 << 10)->Arg(256 << 10);

void BM_HttpCacheLookup(benchmark::State& state) {
  cache::HttpCache cache(MiB(64));
  for (int i = 0; i < 500; ++i) {
    http::Response resp = http::Response::make(http::Status::Ok);
    resp.body = "body";
    resp.headers.set(http::kCacheControl, "max-age=3600");
    resp.headers.set(http::kEtagHeader, "\"e\"");
    resp.finalize(TimePoint{});
    cache.store("https://h/" + std::to_string(i), std::move(resp),
                TimePoint{}, TimePoint{});
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup("https://h/" + std::to_string(i++ % 500),
                     TimePoint{} + seconds(10)));
  }
}
BENCHMARK(BM_HttpCacheLookup);

void BM_FluidLink(benchmark::State& state) {
  // Cost of simulating N concurrent flows through one link.
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    netsim::EventLoop loop;
    netsim::Link link(loop, "l", mbps(60));
    int done = 0;
    for (int i = 0; i < flows; ++i) {
      link.start_transfer(20'000 + static_cast<ByteCount>(i) * 1000,
                          [&done] { ++done; });
    }
    loop.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FluidLink)->Arg(6)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
