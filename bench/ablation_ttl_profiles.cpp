// ABL-PROF — the paper's "caching without developer interaction" argument
// quantified: how much of catalyst's advantage is really *misconfiguration
// repair*? We sweep the TTL-assignment profile of the workload:
//   conservative-cms   default CMS headers (the wild west the studies
//                      measured — the paper's implicit workload)
//   developer-tuned    a diligent developer whose TTLs track true change
//                      intervals (the best the status quo can do)
//   always-revalidate  every resource no-cache (worst case for RTTs)
// If catalyst ≈ baseline-with-perfect-TTLs, the contribution is "perfect
// caching with zero developer effort" — exactly the paper's §6 pitch.
#include <cstdio>

#include "bench_common.h"
#include "util/table.h"

using namespace catalyst;
using namespace catalyst::bench;

int main() {
  const int n_sites = site_count(30);
  const auto conditions = netsim::NetworkConditions::median_5g();
  const auto delays = core::paper_revisit_delays();

  const server::TtlProfile profiles[] = {
      server::TtlProfile::ConservativeCms,
      server::TtlProfile::DeveloperTuned,
      server::TtlProfile::AlwaysRevalidate,
  };

  Table table(str_format(
      "TTL-profile sweep at %s (%d live sites x 5 delays): revisit PLT",
      conditions.label().c_str(), n_sites));
  table.set_header({"ttl profile", "baseline ms", "catalyst ms",
                    "reduction", "baseline stale/visit"});
  for (const auto profile : profiles) {
    Summary base, cat, reduction, stale;
    for (int i = 0; i < n_sites; ++i) {
      workload::SitegenParams params;
      params.seed = 2024;
      params.site_index = i;
      params.ttl_profile = profile;
      const auto site = workload::generate_site(params);
      for (const Duration delay : delays) {
        const auto b = core::run_revisit_pair(
            site, conditions, core::StrategyKind::Baseline, delay);
        const auto c = core::run_revisit_pair(
            site, conditions, core::StrategyKind::Catalyst, delay);
        const double bm = to_millis(b.revisit.plt());
        const double cm = to_millis(c.revisit.plt());
        base.add(bm);
        cat.add(cm);
        reduction.add(100.0 * (bm - cm) / bm);
        stale.add(b.revisit.stale_served);
      }
    }
    table.add_row({std::string(server::to_string(profile)),
                   ms(base.mean()), ms(cat.mean()),
                   str_format("%+.1f%% ±%.1f", reduction.mean(),
                              reduction.ci95_halfwidth()),
                   str_format("%.2f", stale.mean())});
  }
  table.print();
  std::printf(
      "\nReading: catalyst's PLT barely depends on the TTL profile (the "
      "map replaces\nTTLs), while the baseline ranges from bad "
      "(conservative CMS, no-cache) to\ndecent (developer-tuned). The "
      "remaining catalyst-vs-tuned gap is the\nirreducible revalidation "
      "RTTs plus stale risk that even perfect TTLs carry.\n");
  return 0;
}
