// FIG1 — regenerates the request timelines of the paper's Figure 1 on the
// exact worked example site (index.html, a.css, b.js, c.js, d.jpg):
//   (a) first visit,
//   (b) revisit two hours later under status-quo caching,
//   (c) the same revisit with CacheCatalyst (the "optimized scenario").
#include <cstdio>

#include "bench_common.h"
#include "core/testbed.h"

using namespace catalyst;

namespace {

void print_visit(const char* title, const client::PageLoadResult& result) {
  std::printf("%s\n", title);
  std::printf("%s", result.trace.render_waterfall().c_str());
  std::printf(
      "  PLT %.1f ms | %u network, %u cache, %u 304, %u sw-cache | %s "
      "down, %u RTTs\n\n",
      to_millis(result.plt()), result.from_network, result.from_cache,
      result.not_modified, result.from_sw_cache,
      format_bytes(result.bytes_downloaded).c_str(), result.rtts);
}

}  // namespace

int main() {
  const auto conditions = netsim::NetworkConditions::median_5g();
  std::printf("Figure 1 — request timelines on the worked example "
              "(%s, revisit after 2 h; d.jpg changed 1 h in)\n\n",
              conditions.label().c_str());

  // (a) + (b): status-quo caching.
  auto base = core::make_testbed(workload::make_figure1_site(), conditions,
                                 core::StrategyKind::Baseline);
  print_visit("(a) first visit — cold cache",
              core::run_visit(base, TimePoint{}));
  print_visit("(b) revisit +2h — current caching "
              "(a.css fresh; b.js no-cache -> 304; d.jpg expired+changed)",
              core::run_visit(base, TimePoint{} + hours(2)));

  // (c): CacheCatalyst.
  auto cat = core::make_testbed(workload::make_figure1_site(), conditions,
                                core::StrategyKind::Catalyst);
  (void)core::run_visit(cat, TimePoint{});
  print_visit("(c) revisit +2h — CacheCatalyst "
              "(unchanged resources served instantly from the SW cache)",
              core::run_visit(cat, TimePoint{} + hours(2)));
  return 0;
}
