// Fleet scaling: single- vs multi-thread throughput (users/sec) and the
// determinism invariant.
//
// The fleet's correctness bar is that a report is a pure function of
// (users, seed, strategy) — never of the thread count — so this bench
// both measures the worker pool's speedup and asserts byte-identical
// serialized reports across thread counts (exit 1 on any mismatch).
//
// Speedup is bounded by the physical core count: on >= 8 cores the 8-thread
// row should clear 3x; on smaller machines the extra threads time-slice
// and the row reports honestly whatever the hardware gives.
//
// CATALYST_FLEET_USERS overrides the fleet size (default 384).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fleet/runner.h"
#include "util/strings.h"
#include "util/table.h"

using namespace catalyst;

namespace {

int fleet_users() {
  if (const char* env = std::getenv("CATALYST_FLEET_USERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 384;
}

}  // namespace

int main() {
  const auto users = static_cast<std::uint64_t>(fleet_users());

  fleet::FleetParams params;
  params.shard_size = 32;  // enough shards for 8 workers to stay busy

  Table table(str_format(
      "fleet scaling: %llu users, %u hardware thread(s)",
      static_cast<unsigned long long>(users),
      std::thread::hardware_concurrency()));
  table.set_header({"threads", "wall (s)", "users/sec", "speedup",
                    "report"});

  std::string reference;
  double t1 = 0.0;
  bool deterministic = true;
  for (const int threads : {1, 2, 4, 8}) {
    fleet::FleetRunner runner(params, users, threads);
    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetReport report = runner.run();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::string serialized = report.serialize();
    if (threads == 1) {
      reference = serialized;
      t1 = secs;
    }
    const bool identical = serialized == reference;
    deterministic = deterministic && identical;
    table.add_row({std::to_string(threads), str_format("%.2f", secs),
                   str_format("%.1f", static_cast<double>(users) / secs),
                   str_format("%.2fx", t1 / secs),
                   identical ? "identical" : "MISMATCH"});
  }
  table.print();

  if (!deterministic) {
    std::fprintf(stderr,
                 "fleet_scaling: FAIL — report depends on thread count\n");
    return 1;
  }
  std::printf("determinism: all thread counts produced byte-identical "
              "reports\n");
  return 0;
}
