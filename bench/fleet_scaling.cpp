// Fleet scaling: single- vs multi-thread throughput (users/sec), the
// determinism invariant, and the streaming engine's memory profile.
//
// The fleet's correctness bar is that a report is a pure function of
// (users, seed, strategy) — never of the thread count or the arena size —
// so this bench both measures the worker pool's speedup and asserts
// byte-identical serialized reports across thread counts AND across the
// legacy / streaming engines (exit 1 on any mismatch).
//
// Speedup is bounded by the physical core count: on >= 8 cores the 8-thread
// row should clear 3x; on smaller machines the extra threads time-slice
// and the row reports honestly whatever the hardware gives.
//
// The second table sweeps fleet size against a bounded live-user arena
// (fleet/shard streaming engine): each row parks users to compact blobs
// between visits and reports the peak live-testbed count and peak parked
// bytes — the numbers that make million-user fleets fit in RAM.
//
// --smoke shrinks both sweeps to seconds-scale fleets.
// CATALYST_FLEET_USERS overrides the thread-sweep fleet size.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fleet/runner.h"
#include "util/strings.h"
#include "util/table.h"

using namespace catalyst;

namespace {

int fleet_users(bool smoke) {
  if (const char* env = std::getenv("CATALYST_FLEET_USERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return smoke ? 192 : 384;
}

struct TimedRun {
  fleet::FleetReport report;
  double secs = 0.0;
};

TimedRun timed_run(const fleet::FleetParams& params, std::uint64_t users,
                   int threads) {
  fleet::FleetRunner runner(params, users, threads);
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun out{runner.run(), 0.0};
  out.secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

/// Cheap per-user knobs for the memory sweep: a single Catalyst arm with
/// short timelines, so rows stay seconds-scale while the park/revive
/// machinery still cycles every user through the arena.
fleet::FleetParams sweep_params(std::uint64_t max_live_users) {
  fleet::FleetParams params;
  params.user_model.max_visits = 3;
  params.user_model.mean_visit_gap = hours(48);
  params.user_model.site_catalog_size = 4;
  params.strategy = core::StrategyKind::Catalyst;
  params.baseline = core::StrategyKind::Catalyst;  // single arm: cost
  params.max_live_users = max_live_users;
  return params;
}

bool run_memory_sweep(bool smoke) {
  const std::vector<std::uint64_t> sweep =
      smoke ? std::vector<std::uint64_t>{400, 1600}
            : std::vector<std::uint64_t>{4000, 16000};
  const std::uint64_t arena = smoke ? 96 : 512;

  Table table("streaming memory: bounded arena vs materialise-everything");
  table.set_header({"users", "max-live", "wall (s)", "users/sec",
                    "live peak", "parked MiB peak", "report"});

  bool ok = true;
  for (const std::uint64_t users : sweep) {
    const TimedRun legacy = timed_run(sweep_params(0), users, 2);
    const std::string reference = legacy.report.serialize();
    table.add_row({std::to_string(users), "off",
                   str_format("%.2f", legacy.secs),
                   str_format("%.1f", static_cast<double>(users) /
                                          legacy.secs),
                   "-", "-", "reference"});

    const TimedRun streamed = timed_run(sweep_params(arena), users, 2);
    const bool identical = streamed.report.serialize() == reference;
    ok = ok && identical;
    const fleet::ParkStats& parking = streamed.report.parking;
    table.add_row(
        {std::to_string(users), std::to_string(arena),
         str_format("%.2f", streamed.secs),
         str_format("%.1f", static_cast<double>(users) / streamed.secs),
         std::to_string(parking.live_users_peak),
         str_format("%.2f",
                    static_cast<double>(parking.parked_bytes_peak) /
                        (1024.0 * 1024.0)),
         identical ? "identical" : "MISMATCH"});
  }
  table.print();
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const auto users = static_cast<std::uint64_t>(fleet_users(smoke));

  fleet::FleetParams params;
  params.shard_size = 32;  // enough shards for 8 workers to stay busy

  Table table(str_format(
      "fleet scaling: %llu users, %u hardware thread(s)",
      static_cast<unsigned long long>(users),
      std::thread::hardware_concurrency()));
  table.set_header({"threads", "wall (s)", "users/sec", "speedup",
                    "report"});

  std::string reference;
  double t1 = 0.0;
  bool deterministic = true;
  for (const int threads : {1, 2, 4, 8}) {
    const TimedRun run = timed_run(params, users, threads);
    const std::string serialized = run.report.serialize();
    if (threads == 1) {
      reference = serialized;
      t1 = run.secs;
    }
    const bool identical = serialized == reference;
    deterministic = deterministic && identical;
    table.add_row({std::to_string(threads), str_format("%.2f", run.secs),
                   str_format("%.1f", static_cast<double>(users) / run.secs),
                   str_format("%.2fx", t1 / run.secs),
                   identical ? "identical" : "MISMATCH"});
  }
  table.print();

  const bool streaming_ok = run_memory_sweep(smoke);

  if (!deterministic) {
    std::fprintf(stderr,
                 "fleet_scaling: FAIL — report depends on thread count\n");
    return 1;
  }
  if (!streaming_ok) {
    std::fprintf(stderr,
                 "fleet_scaling: FAIL — streaming engine diverged from the "
                 "materialise-everything report\n");
    return 1;
  }
  std::printf("determinism: all thread counts and both engines produced "
              "byte-identical reports\n");
  return 0;
}
