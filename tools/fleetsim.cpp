// fleetsim — population-scale fleet simulation driver.
//
//   fleetsim --users N [--threads T] [--seed S] [--strategy K]
//            [--baseline K] [--sites N] [--shard-size N]
//            [--horizon-days D] [--mean-gap-hours H] [--max-visits V]
//            [--loss P] [--outage F] [--fault-seed S]
//            [--edge-pops N] [--edge-capacity-mb M] [--edge-origin-rtt-ms R]
//            [--edge-flash-mb M] [--edge-flash-lat-us U] [--edge-flash-qd Q]
//            [--h2] [--breakdown] [--self-profile] [--json] [--live]
//
// Runs N independent user sessions (Zipf site popularity, Poisson revisit
// schedules, mixed access tiers) under the chosen strategy, replays the
// same users under --baseline to price RTTs/bytes saved, and prints the
// merged FleetReport. The report on stdout is byte-identical for any
// --threads value; timing goes to stderr so it never perturbs that.
//
// Strategies: baseline catalyst catalyst+learn push-all push-learned
//             push-digest early-hints rdr-proxy oracle
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <string>

#include "fleet/runner.h"
#include "obs/selfprof.h"
#include "util/strings.h"

using namespace catalyst;

namespace {

/// Minimal --flag/value parser: flags may be "--name value" or "--name".
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

std::optional<core::StrategyKind> parse_strategy(const std::string& name) {
  using core::StrategyKind;
  static const std::map<std::string, StrategyKind> kMap = {
      {"baseline", StrategyKind::Baseline},
      {"catalyst", StrategyKind::Catalyst},
      {"catalyst+learn", StrategyKind::CatalystLearned},
      {"push-all", StrategyKind::PushAll},
      {"push-learned", StrategyKind::PushLearned},
      {"push-digest", StrategyKind::PushDigest},
      {"early-hints", StrategyKind::EarlyHints},
      {"rdr-proxy", StrategyKind::RdrProxy},
      {"oracle", StrategyKind::Oracle},
  };
  const auto it = kMap.find(name);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: fleetsim --users N [--threads T] [--seed S] [--strategy K]\n"
      "                [--baseline K] [--sites N] [--shard-size N]\n"
      "                [--max-live-users N]\n"
      "                [--horizon-days D] [--mean-gap-hours H]\n"
      "                [--max-visits V] [--loss P] [--outage F]\n"
      "                [--fault-seed S] [--edge-pops N]\n"
      "                [--edge-capacity-mb M] [--edge-origin-rtt-ms R]\n"
      "                [--edge-no-admission] [--edge-flash-mb M]\n"
      "                [--edge-flash-lat-us U] [--edge-flash-qd Q]\n"
      "                [--negative-ttl-s T] [--dead-links F] [--adversary]\n"
      "                [--adversary-rate R] [--adversary-seed S]\n"
      "                [--vulnerable-keying] [--h2] [--breakdown]\n"
      "                [--self-profile] [--json]\n"
      "\n"
      "  --max-live-users N  streaming shard engine: keep at most N users\n"
      "                 materialized per shard; the rest park as compact\n"
      "                 serialized blobs between visits, so million-user\n"
      "                 fleets run in O(N) resident testbed memory. The\n"
      "                 report stays byte-identical to the default engine\n"
      "                 and to any --threads value. Incompatible with\n"
      "                 --edge-pops, --adversary, and strategies with\n"
      "                 cross-visit server state (catalyst+learn,\n"
      "                 push-learned, rdr-proxy). Default 0: off.\n"
      "  --loss P       per-request fault probability: P mid-stream drops\n"
      "                 plus P/4 silent stalls (default 0: no fault layer)\n"
      "  --outage F     fraction of each hour origins are dark (default 0)\n"
      "  --fault-seed S seed for the deterministic fault schedule (2024)\n"
      "  --edge-pops N  shared edge cache PoPs between users and origins\n"
      "                 (default 0: no edge tier, pre-edge byte-identical\n"
      "                 output; users map to PoPs by seed + user id)\n"
      "  --edge-capacity-mb M   per-PoP cache budget (default 64)\n"
      "  --edge-origin-rtt-ms R PoP-to-origin RTT (default 30)\n"
      "  --edge-no-admission    disable TinyLFU admission (plain SLRU)\n"
      "  --edge-flash-mb M      per-PoP flash tier behind the RAM cache\n"
      "                 (default 0: RAM-only PoPs; requires --edge-pops)\n"
      "  --edge-flash-lat-us U  median flash read latency (default 100)\n"
      "  --edge-flash-qd Q      flash device queue depth (default 8)\n"
      "  --oracle       audit every serve against origin ground truth\n"
      "                 (byte-equivalence oracle; adds an \"oracle\"\n"
      "                 report section; off by default)\n"
      "  --negative-ttl-s T  cache 404/410 responses for up to T seconds\n"
      "                 (RFC 9111 s4) in the browser cache, the SW and any\n"
      "                 edge PoPs (default off: errors are never cached)\n"
      "  --dead-links F site error model intensity, F in [0,1]: each image/\n"
      "                 JSON slot gains a dead (404) reference with prob. F,\n"
      "                 a retired (410) one with F/2; JSON endpoints turn\n"
      "                 soft-404 with F/4 (default 0: no broken links)\n"
      "  --adversary    scripted attacker per testbed: cache-poisoning\n"
      "                 requests (unkeyed X-Forwarded-Host) and timing\n"
      "                 probes against the edge tier; requires --edge-pops\n"
      "  --adversary-rate R   poisoning requests per strike (default 4)\n"
      "  --adversary-seed S   attacker RNG stream seed (default 0xadba5e)\n"
      "  --vulnerable-keying  PLANTED DEFECT: edge cache keys ignore\n"
      "                 X-Forwarded-Host, letting poison land; only for\n"
      "                 oracle self-tests (difftest --mutate unkeyed-header)\n"
      "  --trace-users N  record replayable JSONL traces for users 0..N-1\n"
      "  --trace-out F    write recorded traces to file F (requires\n"
      "                   --trace-users; '-' for stdout)\n"
      "  --h2           browsers speak HTTP/2 to every origin: one\n"
      "                 multiplexed connection instead of six HTTP/1.1\n"
      "                 connections per origin (default off: H1, matching\n"
      "                 the paper's testbed; push strategies always use\n"
      "                 H2 regardless). Reports stay bit-identical for\n"
      "                 any --threads value.\n"
      "  --breakdown    record per-request latency phase breakdowns (dns/\n"
      "                 connect/tls/queue/ttfb/transfer/...) and add a\n"
      "                 \"phases\" section per strategy arm to the report;\n"
      "                 virtual-time only, bit-identical for any --threads\n"
      "                 (default off: reports stay byte-identical)\n"
      "  --self-profile enable wall-clock subsystem timers and print an\n"
      "                 ops/sec + cpu-share table to stderr after the run\n"
      "                 (never touches the byte-stable report on stdout)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }

  const auto users = static_cast<std::uint64_t>(args.num("users", 1000));
  const int threads = static_cast<int>(args.num("threads", 1));
  const auto strategy = parse_strategy(args.get("strategy", "catalyst"));
  const auto baseline = parse_strategy(args.get("baseline", "baseline"));
  if (!strategy || !baseline || users == 0) {
    usage();
    return 2;
  }

  fleet::FleetParams params;
  params.strategy = *strategy;
  params.baseline = *baseline;
  params.shard_size = static_cast<std::uint64_t>(args.num("shard-size", 256));
  params.user_model.master_seed =
      static_cast<std::uint64_t>(args.num("seed", 2024));
  params.user_model.sitegen_seed = params.user_model.master_seed;
  params.user_model.site_catalog_size =
      static_cast<int>(args.num("sites", 40));
  params.user_model.horizon =
      seconds_f(args.num("horizon-days", 7) * 86400.0);
  params.user_model.mean_visit_gap =
      seconds_f(args.num("mean-gap-hours", 36) * 3600.0);
  params.user_model.max_visits = static_cast<int>(args.num("max-visits", 6));

  // Fault injection (all default-off; leaving them zero keeps the report
  // byte-identical to builds without the fault layer).
  const double loss = args.num("loss", 0.0);
  params.faults.loss_rate = loss;
  params.faults.stall_rate = loss / 4.0;
  params.faults.outage_fraction = args.num("outage", 0.0);
  params.faults.fault_seed =
      static_cast<std::uint64_t>(args.num("fault-seed", 2024));

  // Edge tier (default-off; zero PoPs leaves topology, replay and report
  // byte-identical to builds without the edge subsystem).
  params.edge.pops = static_cast<int>(args.num("edge-pops", 0));
  params.edge.capacity =
      MiB(static_cast<ByteCount>(args.num("edge-capacity-mb", 64)));
  params.edge.origin_rtt = seconds_f(args.num("edge-origin-rtt-ms", 30) /
                                     1000.0);
  params.edge.admission = !args.has("edge-no-admission");

  // Flash tier flags (default-off). Validate before touching params: a
  // flash tier with no edge tier — or a nonsense size — is a config error
  // the user should hear about, not a silently ignored flag.
  const bool any_flash_flag = args.has("edge-flash-mb") ||
                              args.has("edge-flash-lat-us") ||
                              args.has("edge-flash-qd");
  if (any_flash_flag && params.edge.pops <= 0) {
    std::fprintf(stderr,
                 "fleetsim: --edge-flash-* requires an edge tier; add "
                 "--edge-pops N\n");
    return 2;
  }
  const double flash_mb = args.num("edge-flash-mb", 0);
  const double flash_lat_us = args.num("edge-flash-lat-us", 100);
  const double flash_qd = args.num("edge-flash-qd", 8);
  if (args.has("edge-flash-mb") && flash_mb <= 0) {
    std::fprintf(stderr,
                 "fleetsim: --edge-flash-mb must be a positive capacity "
                 "(got %s)\n",
                 args.get("edge-flash-mb", "").c_str());
    return 2;
  }
  if (flash_lat_us <= 0 || flash_qd < 1) {
    std::fprintf(stderr,
                 "fleetsim: --edge-flash-lat-us must be positive and "
                 "--edge-flash-qd at least 1\n");
    return 2;
  }
  params.edge.flash_capacity = MiB(static_cast<ByteCount>(flash_mb));
  params.edge.flash_read_latency =
      Duration{static_cast<std::int64_t>(flash_lat_us * 1000.0)};
  params.edge.flash_queue_depth = static_cast<int>(flash_qd);

  // Negative caching (default-off). A zero/negative TTL is a config error,
  // not "disable": the user asked for negative caching and got none.
  if (args.has("negative-ttl-s")) {
    const double ttl_s = args.num("negative-ttl-s", 0);
    if (ttl_s <= 0) {
      std::fprintf(stderr,
                   "fleetsim: --negative-ttl-s must be a positive number "
                   "of seconds (got %s)\n",
                   args.get("negative-ttl-s", "").c_str());
      return 2;
    }
    cache::NegativePolicy negative;
    negative.enabled = true;
    negative.default_ttl = seconds_f(ttl_s);
    if (negative.default_ttl > negative.max_ttl) {
      negative.max_ttl = negative.default_ttl;
    }
    params.options.negative_cache = negative;
    params.edge.negative = negative;
  }

  // Site error model (default-off; zero fractions keep the generated
  // catalog byte-identical to pre-error-model builds).
  const double dead_links = args.num("dead-links", 0.0);
  if (args.has("dead-links") && (dead_links < 0.0 || dead_links > 1.0)) {
    std::fprintf(stderr,
                 "fleetsim: --dead-links must be a fraction in [0,1] "
                 "(got %s)\n",
                 args.get("dead-links", "").c_str());
    return 2;
  }
  params.user_model.dead_link_fraction = dead_links;
  params.user_model.gone_link_fraction = dead_links / 2.0;
  params.user_model.soft404_fraction = dead_links / 4.0;

  // Adversary (default-off). The attack needs a shared cache to poison:
  // adversary flags without an edge tier are a config error, as are
  // attack-tuning flags without --adversary.
  const bool any_adversary_flag = args.has("adversary") ||
                                  args.has("adversary-rate") ||
                                  args.has("adversary-seed") ||
                                  args.has("vulnerable-keying");
  if (any_adversary_flag && params.edge.pops <= 0) {
    std::fprintf(stderr,
                 "fleetsim: --adversary/--vulnerable-keying target the "
                 "edge tier; add --edge-pops N\n");
    return 2;
  }
  if ((args.has("adversary-rate") || args.has("adversary-seed")) &&
      !args.has("adversary")) {
    std::fprintf(stderr,
                 "fleetsim: --adversary-rate/--adversary-seed require "
                 "--adversary\n");
    return 2;
  }
  const double adversary_rate = args.num("adversary-rate", 4);
  if (args.has("adversary-rate") && adversary_rate < 1) {
    std::fprintf(stderr,
                 "fleetsim: --adversary-rate must be at least 1 request "
                 "per strike (got %s)\n",
                 args.get("adversary-rate", "").c_str());
    return 2;
  }
  if (args.has("adversary")) {
    params.options.adversary.enabled = true;
    params.options.adversary.requests_per_strike =
        static_cast<int>(adversary_rate);
    params.options.adversary.seed = static_cast<std::uint64_t>(
        args.num("adversary-seed", 0xadba5e));
  }
  params.edge.vulnerable_keying = args.has("vulnerable-keying");

  // Browser transport (default H1 — the paper's six-connection testbed).
  // --h2 pins every browser connection to one multiplexed H2 stream; it
  // takes no value.
  if (args.has("h2")) {
    if (!args.get("h2", "").empty()) {
      std::fprintf(stderr, "fleetsim: --h2 takes no value (got \"%s\")\n",
                   args.get("h2", "").c_str());
      return 2;
    }
    params.options.browser_protocol = netsim::Protocol::H2;
  }

  // Correctness oracle + trace recording (default-off; both keep the
  // default report byte-identical to pre-oracle builds).
  params.options.byte_oracle = args.has("oracle");
  params.trace_users =
      static_cast<std::uint64_t>(args.num("trace-users", 0));

  // Observability (default-off; both are pure observation). These flags
  // take no value — a trailing operand is a typo'd invocation, not config.
  for (const char* flag : {"breakdown", "self-profile"}) {
    if (args.has(flag) && !args.get(flag, "").empty()) {
      std::fprintf(stderr,
                   "fleetsim: --%s takes no value (got \"%s\")\n", flag,
                   args.get(flag, "").c_str());
      return 2;
    }
  }
  params.breakdown = args.has("breakdown");
  const bool self_profile = args.has("self-profile");
  obs::set_timing(self_profile);

  // Streaming shard engine (default-off). Parked blobs snapshot *client*
  // state only, so configurations with cross-visit state outside the
  // browser — shared edge caches, the scripted adversary, server-side
  // session learning, the RDR proxy's cache — are config errors, not
  // silently wrong runs.
  const double max_live = args.num("max-live-users", 0);
  if (args.has("max-live-users") && max_live < 1) {
    std::fprintf(stderr,
                 "fleetsim: --max-live-users must be a positive user count "
                 "(got %s)\n",
                 args.get("max-live-users", "").c_str());
    return 2;
  }
  params.max_live_users = static_cast<std::uint64_t>(max_live);
  if (params.max_live_users > 0) {
    if (params.edge.pops > 0) {
      std::fprintf(stderr,
                   "fleetsim: --max-live-users is incompatible with "
                   "--edge-pops (shared PoP caches cannot be parked "
                   "per-user)\n");
      return 2;
    }
    if (params.options.adversary.enabled) {
      std::fprintf(stderr,
                   "fleetsim: --max-live-users is incompatible with "
                   "--adversary\n");
      return 2;
    }
    for (const core::StrategyKind k : {params.strategy, params.baseline}) {
      if (k == core::StrategyKind::CatalystLearned ||
          k == core::StrategyKind::PushLearned ||
          k == core::StrategyKind::RdrProxy) {
        std::fprintf(stderr,
                     "fleetsim: --max-live-users is incompatible with "
                     "strategy %s (cross-visit server/proxy state is not "
                     "parked)\n",
                     std::string(core::to_string(k)).c_str());
        return 2;
      }
    }
  }

  fleet::FleetRunner runner(params, users, threads);
  std::fprintf(stderr, "fleetsim: %llu users, %zu shards, %d thread(s), %s vs %s\n",
               static_cast<unsigned long long>(users), runner.shard_count(),
               runner.threads(),
               std::string(core::to_string(*strategy)).c_str(),
               std::string(core::to_string(*baseline)).c_str());

  const auto t0 = std::chrono::steady_clock::now();
  const fleet::FleetReport report = runner.run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (args.has("json")) {
    std::printf("%s\n", report.serialize().c_str());
  } else {
    const std::string title = str_format(
        "fleet: %llu users, %s vs %s (seed %llu)",
        static_cast<unsigned long long>(users),
        std::string(core::to_string(*strategy)).c_str(),
        std::string(core::to_string(*baseline)).c_str(),
        static_cast<unsigned long long>(params.user_model.master_seed));
    std::printf("%s", report.render_table(title).c_str());
  }
  if (params.trace_users > 0 && args.has("trace-out")) {
    const std::string path = args.get("trace-out", "-");
    const std::string jsonl = report.traces_jsonl();
    if (path == "-" || path.empty()) {
      std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
    } else if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "fleetsim: wrote %zu trace bytes to %s\n",
                   jsonl.size(), path.c_str());
    } else {
      std::fprintf(stderr, "fleetsim: cannot open %s\n", path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "fleetsim: %.2f s wall, %.1f users/sec, %.0f events/sec\n",
               secs, secs > 0 ? static_cast<double>(users) / secs : 0.0,
               secs > 0 ? static_cast<double>(report.events_executed) / secs
                        : 0.0);
  if (params.max_live_users > 0) {
    // Streaming telemetry goes to stderr like the timing line: the stdout
    // report must stay byte-identical to the materialize-everything engine.
    std::fprintf(
        stderr,
        "fleetsim: streaming: %llu parks, %llu revives (%llu corrupt), "
        "peak %llu live users/shard, peak %.1f MiB parked\n",
        static_cast<unsigned long long>(report.parking.parks),
        static_cast<unsigned long long>(report.parking.revives),
        static_cast<unsigned long long>(report.parking.corrupt_revivals),
        static_cast<unsigned long long>(report.parking.live_users_peak),
        static_cast<double>(report.parking.parked_bytes_peak) /
            (1024.0 * 1024.0));
  }
  if (self_profile) {
    std::fprintf(stderr, "%s", report.prof.render_table(secs).c_str());
  }
  return 0;
}
