// catalystsim — command-line driver for the simulation library.
//
//   catalystsim site     --index N [--clone] [--third-party F]
//   catalystsim run      --index N --strategy S [--rtt MS] [--mbps M]
//                        [--delay-hours H] [--clone]
//   catalystsim sweep    --sites N [--rtt MS] [--mbps M] [--clone]
//   catalystsim fig1
//
// Strategies: baseline catalyst catalyst+learn push-all push-learned
//             push-digest early-hints rdr-proxy oracle
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "core/experiment.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/sitegen.h"

using namespace catalyst;

namespace {

/// Minimal --flag/value parser: flags may be "--name value" or "--name".
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

std::optional<core::StrategyKind> parse_strategy(const std::string& name) {
  using core::StrategyKind;
  static const std::map<std::string, StrategyKind> kMap = {
      {"baseline", StrategyKind::Baseline},
      {"catalyst", StrategyKind::Catalyst},
      {"catalyst+learn", StrategyKind::CatalystLearned},
      {"push-all", StrategyKind::PushAll},
      {"push-learned", StrategyKind::PushLearned},
      {"push-digest", StrategyKind::PushDigest},
      {"early-hints", StrategyKind::EarlyHints},
      {"rdr-proxy", StrategyKind::RdrProxy},
      {"oracle", StrategyKind::Oracle},
  };
  const auto it = kMap.find(name);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

workload::SitegenParams params_from(const Args& args) {
  workload::SitegenParams p;
  p.seed = static_cast<std::uint64_t>(args.num("seed", 2024));
  p.site_index = static_cast<int>(args.num("index", 0));
  p.clone_static_snapshot = args.has("clone");
  p.third_party_fraction = args.num("third-party", 0.0);
  return p;
}

netsim::NetworkConditions conditions_from(const Args& args) {
  netsim::NetworkConditions c = netsim::NetworkConditions::median_5g();
  c.rtt = milliseconds_f(args.num("rtt", 40));
  c.downlink = mbps(args.num("mbps", 60));
  c.uplink = mbps(args.num("mbps", 60) / 5.0);
  return c;
}

int cmd_site(const Args& args) {
  const auto bundle = workload::generate_site_bundle(params_from(args));
  Table table(str_format("%s — %zu resources, %s (+%zu third-party "
                         "origins)",
                         bundle.main->host().c_str(),
                         bundle.main->resource_count(),
                         format_bytes(bundle.main->total_bytes()).c_str(),
                         bundle.third_party.size()));
  table.set_header({"path", "class", "size", "cache-control",
                    "changes (30d)"});
  auto add_site = [&table](const server::Site& site) {
    for (const auto& [path, r] : site.resources()) {
      table.add_row(
          {site.host() == "" ? path : path,
           std::string(http::class_label(r->resource_class())),
           format_bytes(r->wire_size()),
           r->cache_policy().to_string().empty()
               ? "(none)"
               : r->cache_policy().to_string(),
           std::to_string(r->changes().total_changes())});
    }
  };
  add_site(*bundle.main);
  for (const auto& tp : bundle.third_party) {
    table.add_separator();
    add_site(*tp);
  }
  table.print();
  return 0;
}

int cmd_run(const Args& args) {
  const auto kind = parse_strategy(args.get("strategy", "catalyst"));
  if (!kind) {
    std::fprintf(stderr, "unknown strategy\n");
    return 2;
  }
  const auto bundle = workload::generate_site_bundle(params_from(args));
  const auto conditions = conditions_from(args);
  const Duration delay = hours(
      static_cast<std::int64_t>(args.num("delay-hours", 6)));

  auto tb = core::make_testbed(bundle, conditions, *kind);
  std::printf("%s on %s at %s, revisit after %s\n\n",
              std::string(core::to_string(*kind)).c_str(),
              bundle.main->host().c_str(), conditions.label().c_str(),
              format_duration(delay).c_str());
  const auto cold = core::run_visit(tb, TimePoint{});
  std::printf("cold load: PLT %.1f ms, FCP %.1f ms, %s down, %u RTTs\n",
              to_millis(cold.plt()), to_millis(cold.fcp()),
              format_bytes(cold.bytes_downloaded).c_str(), cold.rtts);
  const auto revisit = core::run_visit(tb, TimePoint{} + delay);
  std::printf(
      "revisit:   PLT %.1f ms, FCP %.1f ms, %s down, %u RTTs "
      "(%u net, %u cache, %u 304, %u sw, %u push, %u stale)\n\n",
      to_millis(revisit.plt()), to_millis(revisit.fcp()),
      format_bytes(revisit.bytes_downloaded).c_str(), revisit.rtts,
      revisit.from_network, revisit.from_cache, revisit.not_modified,
      revisit.from_sw_cache, revisit.from_push, revisit.stale_served);
  std::printf("%s", revisit.trace.render_waterfall(56).c_str());
  return 0;
}

int cmd_sweep(const Args& args) {
  const int n = static_cast<int>(args.num("sites", 20));
  const auto conditions = conditions_from(args);
  std::vector<std::shared_ptr<server::Site>> sites;
  for (int i = 0; i < n; ++i) {
    workload::SitegenParams p = params_from(args);
    p.site_index = i;
    sites.push_back(workload::generate_site(p));
  }
  const Summary s = core::plt_reduction_summary(
      sites, conditions, core::StrategyKind::Catalyst,
      core::StrategyKind::Baseline, core::paper_revisit_delays());
  std::printf(
      "catalyst vs baseline at %s over %d sites x 5 delays:\n"
      "  mean %+.1f%%  median %+.1f%%  p10 %+.1f%%  p90 %+.1f%%  "
      "(95%% CI ±%.1f)\n",
      conditions.label().c_str(), n, s.mean(), s.median(),
      s.percentile(10), s.percentile(90), s.ci95_halfwidth());
  return 0;
}

int cmd_fig1() {
  const auto conditions = netsim::NetworkConditions::median_5g();
  for (const auto kind :
       {core::StrategyKind::Baseline, core::StrategyKind::Catalyst}) {
    auto tb = core::make_testbed(workload::make_figure1_site(), conditions,
                                 kind);
    const auto cold = core::run_visit(tb, TimePoint{});
    const auto revisit = core::run_visit(tb, TimePoint{} + hours(2));
    std::printf("== %s: cold %.1f ms, revisit +2h %.1f ms ==\n%s\n",
                std::string(core::to_string(kind)).c_str(),
                to_millis(cold.plt()), to_millis(revisit.plt()),
                revisit.trace.render_waterfall().c_str());
  }
  return 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: catalystsim <site|run|sweep|fig1> [--flags]\n"
      "  site  --index N [--seed S] [--clone] [--third-party F]\n"
      "  run   --index N --strategy S [--rtt MS] [--mbps M]\n"
      "        [--delay-hours H] [--clone] [--third-party F]\n"
      "  sweep --sites N [--rtt MS] [--mbps M] [--clone]\n"
      "  fig1\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const Args args(argc, argv);
  const std::string cmd = argv[1];
  if (cmd == "site") return cmd_site(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "fig1") return cmd_fig1();
  usage();
  return 2;
}
