// difftest — randomized differential testing across caching strategies.
//
//   difftest --rounds N [--seed S] [--mutate stale-serve] [--verbose]
//            [--users N] [--visits N] [--no-faults] [--no-edge]
//            [--static-site] [--no-third-party]
//
// Each round draws a workload from its round seed (seed + round index):
// a generated site (sitegen × TTL profile × change model × third-party
// mix), a handful of users with randomized access tiers and visit
// schedules, an optional fault mix, and an optional edge-PoP config. The
// same workload then runs under three arms — Baseline, Catalyst, and
// Catalyst behind an edge PoP — each wired through the byte-equivalence
// oracle (check::ByteOracle). A round fails when:
//
//   1. any arm records an oracle violation (stale bytes with no RFC 9111
//      freshness justification), or
//   2. on fault-free visits, the delivered URL set diverges between
//      Baseline and a treatment arm, or
//   3. a per-URL digest divergence between arms is not oracle-excused on
//      both sides (each side fresh-at-its-own-serve-time or allowed-stale), or
//   4. the richest arm, replayed with an obs::Recorder attached, diverges
//      from its unobserved replay (phase recording must be a pure
//      observer — see src/obs/).
//
// On failure the config is minimized (drop faults → drop flash → drop
// edge → static snapshot → fewer users → fewer visits, keeping whatever
// still fails) and a single repro command line is printed.
//
// --mutate stale-serve injects the deliberately broken StaleServeStrategy
// (every cached entry treated as fresh, revalidation skipped) into every
// arm and inverts the expectation: the run passes only if the oracle
// catches the bug, and prints the first catching round as the repro seed.
// --mutate unkeyed-header plants the cache-poisoning defect instead: the
// edge arm's PoP keys entries without X-Forwarded-Host while the origin
// reflects that header, and a scripted adversary strikes before every
// visit. The run passes only when the oracle flags a poisoned-serve or
// cross-user-leak violation.
// --mutate parked-corrupt targets the streaming shard engine's blob
// codec: each round parks users between visits, corrupts the blob
// (truncation, bit flips, a version patch with a re-sealed checksum),
// and passes only if every corrupted revive fails closed
// (ReviveStatus::Corrupt) while the pristine blob still revives Ok and
// replays the remaining visits.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cache/freshness.h"
#include "core/experiment.h"
#include "core/testbed.h"
#include "edge/pop.h"
#include "fleet/parked.h"
#include "fleet/user_model.h"
#include "obs/recorder.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/strings.h"
#include "workload/sitegen.h"

using namespace catalyst;

namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  bool has(const std::string& key) const { return values_.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Deliberately planted defects for oracle self-tests. Each inverts the
/// pass criterion: the run succeeds only if the oracle catches the bug.
enum class Mutation {
  None,
  StaleServe,     // browser treats every cached entry as fresh
  UnkeyedHeader,  // edge cache key ignores X-Forwarded-Host while the
                  // origin reflects it (classic cache poisoning); the
                  // scripted adversary supplies the poison
  ParkedCorrupt,  // corrupts parked-user blobs between visits; the fleet
                  // codec must reject every one of them fail-closed
};

/// One user's place in a round: access tier + absolute visit times.
struct DiffUser {
  fleet::AccessTier tier = fleet::AccessTier::Typical4g;
  bool mobile = false;
  std::vector<TimePoint> visits;
};

/// A fully materialized round configuration. Every field is drawn from
/// Rng(round_seed) in a fixed order, then the minimizer only *truncates or
/// disables* (never redraws), so a minimized config replays the surviving
/// prefix of the original draw exactly.
struct RoundConfig {
  std::uint64_t round_seed = 0;
  server::TtlProfile ttl = server::TtlProfile::ConservativeCms;
  bool static_site = false;       // clone_static_snapshot
  double third_party_fraction = 0.0;
  bool faults = false;
  double loss_rate = 0.0;
  double outage_fraction = 0.0;
  bool edge = true;               // run the edge arm
  ByteCount edge_capacity = MiB(8);
  bool flash = false;             // give the edge arm's PoP a flash tier
  ByteCount flash_capacity = MiB(32);
  Duration flash_read_latency = microseconds(100);
  int flash_queue_depth = 8;
  std::vector<DiffUser> users;
  // Negative caching + site error model (drawn at the END of draw_round so
  // pre-existing round seeds replay their original prefix exactly).
  bool negative = false;
  Duration negative_ttl = seconds(60);
  double dead_links = 0.0;
  // Browser transport: H2 rounds run every arm over one multiplexed
  // connection per origin, so the oracle audits both transports. Appended
  // after the error-model draws (same prefix-stability rule).
  bool h2 = false;
};

RoundConfig draw_round(std::uint64_t round_seed) {
  Rng rng(round_seed);
  RoundConfig cfg;
  cfg.round_seed = round_seed;
  switch (rng.uniform_int(0, 3)) {
    case 0: cfg.ttl = server::TtlProfile::ConservativeCms; break;
    case 1: cfg.ttl = server::TtlProfile::DeveloperTuned; break;
    case 2: cfg.ttl = server::TtlProfile::AlwaysRevalidate; break;
    case 3: cfg.ttl = server::TtlProfile::ConservativeCms; break;
  }
  cfg.static_site = rng.bernoulli(0.25);
  cfg.third_party_fraction = rng.bernoulli(0.3) ? 0.2 : 0.0;
  cfg.faults = rng.bernoulli(0.4);
  cfg.loss_rate = rng.uniform(0.02, 0.08);
  cfg.outage_fraction = rng.bernoulli(0.5) ? rng.uniform(0.005, 0.03) : 0.0;
  cfg.edge_capacity = MiB(1) << rng.uniform_int(0, 6);  // 1..64 MiB
  // Flash fields are drawn unconditionally (gated by the flag afterwards)
  // so disabling flash during minimization never shifts the draw stream.
  cfg.flash = rng.bernoulli(0.5);
  cfg.flash_capacity = MiB(4) << rng.uniform_int(0, 5);  // 4..128 MiB
  cfg.flash_read_latency =
      microseconds(static_cast<std::int64_t>(rng.uniform(50.0, 4000.0)));
  cfg.flash_queue_depth = static_cast<int>(rng.uniform_int(1, 32));
  const int users = static_cast<int>(rng.uniform_int(1, 3));
  for (int u = 0; u < users; ++u) {
    DiffUser du;
    switch (rng.uniform_int(0, 3)) {
      case 0: du.tier = fleet::AccessTier::Fast5g; break;
      case 1: du.tier = fleet::AccessTier::Typical4g; break;
      case 2: du.tier = fleet::AccessTier::Slow3g; break;
      case 3: du.tier = fleet::AccessTier::Constrained; break;
    }
    du.mobile = rng.bernoulli(0.3);
    const int visits = static_cast<int>(rng.uniform_int(2, 5));
    TimePoint at = TimePoint{} + hours(1);
    for (int v = 0; v < visits; ++v) {
      du.visits.push_back(at);
      const double gap_hours = std::min(
          120.0, std::max(0.2, rng.lognormal(std::log(12.0), 1.0)));
      at += seconds_f(gap_hours * 3600.0);
    }
    cfg.users.push_back(std::move(du));
  }
  // Appended draws (never reorder or insert above: minimization and repro
  // depend on old seeds replaying the same stream prefix).
  cfg.negative = rng.bernoulli(0.3);
  cfg.negative_ttl = seconds(rng.uniform_int(30, 300));
  cfg.dead_links = rng.bernoulli(0.3) ? 0.1 : 0.0;
  cfg.h2 = rng.bernoulli(0.5);
  return cfg;
}

/// What one arm delivered, per user per visit.
struct ArmResult {
  std::vector<std::vector<client::PageLoadResult>> loads;  // [user][visit]
  check::OracleStats stats;
  std::vector<check::Violation> violations;
};

ArmResult run_arm(const RoundConfig& cfg, core::StrategyKind kind,
                  bool behind_edge, Mutation mutate,
                  obs::Recorder* recorder = nullptr) {
  // One shared site timeline per round: every arm must see identical
  // content versions (the whole point of a differential test).
  workload::SitegenParams sp;
  sp.seed = cfg.round_seed;
  sp.site_index = 0;
  sp.ttl_profile = cfg.ttl;
  sp.clone_static_snapshot = cfg.static_site;
  sp.third_party_fraction = cfg.third_party_fraction;
  sp.errors.dead_link_fraction = cfg.dead_links;
  sp.errors.gone_link_fraction = cfg.dead_links / 2.0;
  sp.errors.soft404_fraction = cfg.dead_links / 4.0;
  const workload::SiteBundle bundle = workload::generate_site_bundle(sp);

  cache::NegativePolicy negative;
  if (cfg.negative) {
    negative.enabled = true;
    negative.default_ttl = cfg.negative_ttl;
    if (negative.default_ttl > negative.max_ttl) {
      negative.max_ttl = negative.default_ttl;
    }
  }

  std::unique_ptr<edge::EdgePop> pop;
  if (behind_edge) {
    edge::EdgeConfig ec;
    ec.pop_id = 0;
    ec.capacity = cfg.edge_capacity;
    ec.negative = negative;
    // The planted poisoning defect lives in the edge arm's PoP.
    ec.vulnerable_keying = mutate == Mutation::UnkeyedHeader;
    if (cfg.flash) {
      ec.flash.capacity = cfg.flash_capacity;
      ec.flash.device.read_latency = cfg.flash_read_latency;
      ec.flash.device.queue_depth = cfg.flash_queue_depth;
      ec.flash.seed = cfg.round_seed;
    }
    pop = std::make_unique<edge::EdgePop>(ec);
  }

  ArmResult arm;
  for (std::size_t u = 0; u < cfg.users.size(); ++u) {
    const DiffUser& du = cfg.users[u];
    core::StrategyOptions opts;
    opts.byte_oracle = true;
    opts.mutate_stale_serve = mutate == Mutation::StaleServe;
    opts.negative_cache = negative;
    if (behind_edge && mutate == Mutation::UnkeyedHeader) {
      // Adversary strikes land on the shared PoP before each visit; the
      // round seed keys its draw stream so repros replay exactly.
      opts.adversary.enabled = true;
      opts.adversary.seed = cfg.round_seed;
    }
    opts.mobile_client = du.mobile;
    if (cfg.h2) opts.browser_protocol = netsim::Protocol::H2;
    opts.edge_pop = pop.get();
    opts.phase_recorder = recorder;
    netsim::NetworkConditions cond = fleet::conditions_for(du.tier);
    if (cfg.faults) {
      cond.faults.loss_rate = cfg.loss_rate;
      cond.faults.stall_rate = cfg.loss_rate / 4.0;
      cond.faults.outage_fraction = cfg.outage_fraction;
      cond.faults.fault_seed = cfg.round_seed;
      cond.faults.stream = u;
    }
    core::Testbed tb = core::make_testbed(bundle, cond, kind, opts);
    std::vector<client::PageLoadResult> loads;
    for (const TimePoint at : du.visits) {
      loads.push_back(core::run_visit(tb, at));
    }
    arm.loads.push_back(std::move(loads));
    const check::OracleStats& st = tb.byte_oracle->stats();
    arm.stats.checked += st.checked;
    arm.stats.fresh += st.fresh;
    arm.stats.allowed_stale += st.allowed_stale;
    arm.stats.violations += st.violations;
    arm.stats.poisoned_serves += st.poisoned_serves;
    arm.stats.cross_user_leaks += st.cross_user_leaks;
    arm.stats.unauditable += st.unauditable;
    for (const check::Violation& v : tb.byte_oracle->violations()) {
      arm.violations.push_back(v);
    }
  }
  return arm;
}

/// A visit whose load hit faults may legitimately drop or re-time
/// resources; content-set comparison skips it (the oracle still ran).
bool visit_faulted(const client::PageLoadResult& r) {
  return r.failed_loads != 0 || r.timeouts_fired != 0 ||
         r.connection_failures != 0;
}

/// Compares what `treat` delivered against `base`, visit by visit.
/// Returns an empty string when equivalent, else the first divergence.
std::string diff_delivered(const ArmResult& base, const ArmResult& treat,
                           const std::string& treat_name) {
  for (std::size_t u = 0; u < base.loads.size(); ++u) {
    for (std::size_t v = 0; v < base.loads[u].size(); ++v) {
      const client::PageLoadResult& rb = base.loads[u][v];
      const client::PageLoadResult& rt = treat.loads[u][v];
      if (visit_faulted(rb) || visit_faulted(rt)) continue;

      std::map<std::string, const netsim::FetchTrace*> by_url_b, by_url_t;
      for (const netsim::FetchTrace& t : rb.trace.traces()) {
        by_url_b[t.url] = &t;
      }
      for (const netsim::FetchTrace& t : rt.trace.traces()) {
        by_url_t[t.url] = &t;
      }
      for (const auto& [url, tb] : by_url_b) {
        const auto it = by_url_t.find(url);
        if (it == by_url_t.end()) {
          return str_format("user %zu visit %zu: %s did not deliver %s",
                            u, v, treat_name.c_str(), url.c_str());
        }
        const netsim::FetchTrace* tt = it->second;
        if (tb->status != 200 || tt->status != 200) continue;
        if (tb->body_digest == tt->body_digest) continue;
        // Digest divergence between arms is excused only when each side
        // is individually correct: fresh at its own serve time, or within
        // its RFC 9111 freshness allowance. (Catalyst HTML bodies carry
        // the SW-registration snippet; the oracle's ground-truth
        // transform folds that in, so a decorated-but-current HTML serve
        // classifies Fresh and lands here, excused.)
        auto excused = [](const netsim::FetchTrace* t) {
          return t->oracle_class == netsim::ServeClass::Fresh ||
                 t->oracle_class == netsim::ServeClass::AllowedStale;
        };
        if (!excused(tb) || !excused(tt)) {
          return str_format(
              "user %zu visit %zu: %s delivered different bytes for %s "
              "(%016llx vs %016llx) without a freshness excuse",
              u, v, treat_name.c_str(), url.c_str(),
              static_cast<unsigned long long>(tb->body_digest),
              static_cast<unsigned long long>(tt->body_digest));
        }
      }
      for (const auto& [url, tt] : by_url_t) {
        if (!by_url_b.contains(url)) {
          return str_format("user %zu visit %zu: %s delivered extra %s",
                            u, v, treat_name.c_str(), url.c_str());
        }
      }
    }
  }
  return {};
}

struct RoundOutcome {
  bool failed = false;
  bool violations_caught = false;  // any arm had oracle violations
  std::string detail;
  check::OracleStats totals;
};

RoundOutcome run_round(const RoundConfig& cfg, Mutation mutate) {
  RoundOutcome out;
  struct ArmSpec {
    const char* name;
    core::StrategyKind kind;
    bool edge;
  };
  std::vector<ArmSpec> arms = {
      {"baseline", core::StrategyKind::Baseline, false},
      {"catalyst", core::StrategyKind::Catalyst, false},
  };
  if (cfg.edge) {
    arms.push_back({"edge", core::StrategyKind::Catalyst, true});
  }

  std::vector<ArmResult> results;
  for (const ArmSpec& spec : arms) {
    results.push_back(run_arm(cfg, spec.kind, spec.edge, mutate));
    const ArmResult& arm = results.back();
    out.totals.checked += arm.stats.checked;
    out.totals.fresh += arm.stats.fresh;
    out.totals.allowed_stale += arm.stats.allowed_stale;
    out.totals.violations += arm.stats.violations;
    out.totals.poisoned_serves += arm.stats.poisoned_serves;
    out.totals.cross_user_leaks += arm.stats.cross_user_leaks;
    out.totals.unauditable += arm.stats.unauditable;
    if (arm.stats.violations != 0) {
      out.violations_caught = true;
      out.failed = true;
      const check::Violation& v = arm.violations.front();
      out.detail = str_format(
          "%s arm: %llu oracle violation(s); first: %s [%s] served from "
          "%s (digest %016llx, origin %016llx)",
          spec.name,
          static_cast<unsigned long long>(arm.stats.violations),
          v.url.c_str(), std::string(netsim::to_string(v.kind)).c_str(),
          std::string(netsim::to_string(v.source)).c_str(),
          static_cast<unsigned long long>(v.served_digest),
          static_cast<unsigned long long>(v.expected_digest));
    }
  }
  if (out.failed) return out;

  for (std::size_t i = 1; i < results.size(); ++i) {
    const std::string diff =
        diff_delivered(results[0], results[i], arms[i].name);
    if (!diff.empty()) {
      out.failed = true;
      out.detail = diff;
      return out;
    }
  }

  // Observer-effect check: replay the richest arm with a phase recorder
  // attached. Recording is virtual-time observation only, so every visit
  // must land bit-identical — any drift means the obs layer perturbed
  // the simulation.
  {
    obs::Recorder rec;
    const std::size_t last = results.size() - 1;
    const ArmResult observed =
        run_arm(cfg, arms[last].kind, arms[last].edge, mutate, &rec);
    for (std::size_t u = 0; u < observed.loads.size(); ++u) {
      for (std::size_t v = 0; v < observed.loads[u].size(); ++v) {
        const client::PageLoadResult& a = results[last].loads[u][v];
        const client::PageLoadResult& b = observed.loads[u][v];
        if (a.plt() != b.plt() || a.bytes_downloaded != b.bytes_downloaded ||
            a.rtts != b.rtts) {
          out.failed = true;
          out.detail = str_format(
              "observer effect: %s arm user %zu visit %zu diverged with a "
              "phase recorder attached (plt %lld vs %lld ns)",
              arms[last].name, u, v,
              static_cast<long long>(a.plt().count()),
              static_cast<long long>(b.plt().count()));
          return out;
        }
      }
    }
  }
  return out;
}

/// Shrinks a failing config: each step keeps the change only if the round
/// still fails. Order: cheapest semantic reductions first.
RoundConfig minimize(RoundConfig cfg, Mutation mutate) {
  auto still_fails = [mutate](const RoundConfig& c) {
    return run_round(c, mutate).failed;
  };
  if (cfg.faults) {
    RoundConfig c = cfg;
    c.faults = false;
    if (still_fails(c)) cfg = c;
  }
  if (cfg.negative) {
    RoundConfig c = cfg;
    c.negative = false;
    if (still_fails(c)) cfg = c;
  }
  if (cfg.dead_links > 0.0) {
    RoundConfig c = cfg;
    c.dead_links = 0.0;
    if (still_fails(c)) cfg = c;
  }
  if (cfg.h2) {
    RoundConfig c = cfg;
    c.h2 = false;
    if (still_fails(c)) cfg = c;
  }
  if (cfg.flash) {
    RoundConfig c = cfg;
    c.flash = false;
    if (still_fails(c)) cfg = c;
  }
  // The unkeyed-header defect lives in the edge arm — dropping the edge
  // would vacuously "fix" it, so skip that step under this mutation.
  if (cfg.edge && mutate != Mutation::UnkeyedHeader) {
    RoundConfig c = cfg;
    c.edge = false;
    if (still_fails(c)) cfg = c;
  }
  if (!cfg.static_site) {
    RoundConfig c = cfg;
    c.static_site = true;
    if (still_fails(c)) cfg = c;
  }
  if (cfg.third_party_fraction > 0.0) {
    RoundConfig c = cfg;
    c.third_party_fraction = 0.0;
    if (still_fails(c)) cfg = c;
  }
  while (cfg.users.size() > 1) {
    RoundConfig c = cfg;
    c.users.pop_back();
    if (!still_fails(c)) break;
    cfg = c;
  }
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (DiffUser& du : cfg.users) {
      if (du.visits.size() <= 2) continue;
      RoundConfig c = cfg;
      // Find the matching user in the copy and drop their last visit.
      c.users[static_cast<std::size_t>(&du - cfg.users.data())]
          .visits.pop_back();
      if (still_fails(c)) {
        cfg = c;
        shrunk = true;
        break;
      }
    }
  }
  return cfg;
}

/// Renders the repro command line for a (possibly minimized) config.
std::string repro_command(const RoundConfig& cfg, std::uint64_t base_seed,
                          Mutation mutate) {
  std::string cmd = str_format("tools/difftest --rounds 1 --seed %llu",
                               static_cast<unsigned long long>(
                                   cfg.round_seed));
  (void)base_seed;
  if (mutate == Mutation::StaleServe) cmd += " --mutate stale-serve";
  if (mutate == Mutation::UnkeyedHeader) cmd += " --mutate unkeyed-header";
  RoundConfig original = draw_round(cfg.round_seed);
  if (original.faults && !cfg.faults) cmd += " --no-faults";
  if (original.negative && !cfg.negative) cmd += " --no-negative";
  if (original.dead_links > 0.0 && cfg.dead_links == 0.0) {
    cmd += " --no-dead-links";
  }
  if (original.h2 && !cfg.h2) cmd += " --no-h2";
  if (original.flash && !cfg.flash) cmd += " --no-flash";
  if (original.edge && !cfg.edge) cmd += " --no-edge";
  if (!original.static_site && cfg.static_site) cmd += " --static-site";
  if (original.third_party_fraction > 0.0 &&
      cfg.third_party_fraction == 0.0) {
    cmd += " --no-third-party";
  }
  if (cfg.users.size() < original.users.size()) {
    cmd += str_format(" --users %zu", cfg.users.size());
  }
  std::size_t max_visits = 0;
  bool visits_shrunk = false;
  for (std::size_t u = 0; u < cfg.users.size(); ++u) {
    max_visits = std::max(max_visits, cfg.users[u].visits.size());
    if (cfg.users[u].visits.size() < original.users[u].visits.size()) {
      visits_shrunk = true;
    }
  }
  if (visits_shrunk) cmd += str_format(" --visits %zu", max_visits);
  return cmd;
}

/// Applies CLI overrides (used both for reproing a minimized config and
/// for narrowing exploration).
void apply_overrides(RoundConfig& cfg, const Args& args) {
  if (args.has("no-faults")) cfg.faults = false;
  if (args.has("no-negative")) cfg.negative = false;
  if (args.has("no-dead-links")) cfg.dead_links = 0.0;
  if (args.has("no-h2")) cfg.h2 = false;
  if (args.has("h2")) cfg.h2 = true;  // force the H2 transport axis on
  if (args.has("no-flash")) cfg.flash = false;
  if (args.has("no-edge")) cfg.edge = false;
  if (args.has("static-site")) cfg.static_site = true;
  if (args.has("no-third-party")) cfg.third_party_fraction = 0.0;
  if (args.has("users")) {
    const auto n = static_cast<std::size_t>(args.num("users", 1));
    if (n >= 1 && n < cfg.users.size()) cfg.users.resize(n);
  }
  if (args.has("visits")) {
    const auto n = static_cast<std::size_t>(args.num("visits", 2));
    for (DiffUser& du : cfg.users) {
      if (n >= 1 && n < du.visits.size()) du.visits.resize(n);
    }
  }
}

/// Builds the single-arm testbed used by the parked-corrupt mutation:
/// Catalyst without an edge PoP (parking snapshots client + origin state;
/// the PoP is shard-shared and never parked).
core::Testbed parked_testbed(const RoundConfig& cfg,
                             const workload::SiteBundle& bundle,
                             std::size_t u) {
  const DiffUser& du = cfg.users[u];
  core::StrategyOptions opts;
  opts.mobile_client = du.mobile;
  if (cfg.h2) opts.browser_protocol = netsim::Protocol::H2;
  if (cfg.negative) {
    opts.negative_cache.enabled = true;
    opts.negative_cache.default_ttl = cfg.negative_ttl;
    if (opts.negative_cache.default_ttl > opts.negative_cache.max_ttl) {
      opts.negative_cache.max_ttl = opts.negative_cache.default_ttl;
    }
  }
  netsim::NetworkConditions cond = fleet::conditions_for(du.tier);
  if (cfg.faults) {
    cond.faults.loss_rate = cfg.loss_rate;
    cond.faults.stall_rate = cfg.loss_rate / 4.0;
    cond.faults.outage_fraction = cfg.outage_fraction;
    cond.faults.fault_seed = cfg.round_seed;
    cond.faults.stream = u;
  }
  return core::make_testbed(bundle, cond, core::StrategyKind::Catalyst,
                            opts);
}

/// --mutate parked-corrupt: parks each user after their first visit, then
/// feeds the codec three corruptions of the blob — a truncation, a single
/// bit flip, and a version patch with the trailing checksum re-sealed so
/// only the version check can reject it. Inverted pass criterion: the run
/// passes (exit 0) only if every corrupted revive returns Corrupt AND the
/// pristine blob still revives Ok and replays the remaining visits (so a
/// codec that rejects everything cannot pass vacuously).
int run_parked_corrupt(int rounds, std::uint64_t seed, bool verbose) {
  std::uint64_t attempts = 0;
  std::uint64_t survivors = 0;
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t round_seed = seed + static_cast<std::uint64_t>(r);
    const RoundConfig cfg = draw_round(round_seed);
    workload::SitegenParams sp;
    sp.seed = cfg.round_seed;
    sp.site_index = 0;
    sp.ttl_profile = cfg.ttl;
    sp.clone_static_snapshot = cfg.static_site;
    sp.third_party_fraction = cfg.third_party_fraction;
    sp.errors.dead_link_fraction = cfg.dead_links;
    sp.errors.gone_link_fraction = cfg.dead_links / 2.0;
    sp.errors.soft404_fraction = cfg.dead_links / 4.0;
    const workload::SiteBundle bundle = workload::generate_site_bundle(sp);
    Rng rng = Rng(round_seed).fork(0x9c0442);
    for (std::size_t u = 0; u < cfg.users.size(); ++u) {
      const std::uint64_t uid = u + 1;
      core::Testbed tb = parked_testbed(cfg, bundle, u);
      core::run_visit(tb, cfg.users[u].visits.front());
      const std::uint64_t stragglers = tb.loop->run();
      const std::string blob =
          fleet::park_user(uid, tb, stragglers, nullptr, 0);

      for (int mode = 0; mode < 3; ++mode) {
        std::string bad = blob;
        const char* what = "";
        if (mode == 0) {
          what = "truncated";
          bad.resize(static_cast<std::size_t>(rng.next_u64() % bad.size()));
        } else if (mode == 1) {
          what = "bit-flipped";
          const std::size_t pos =
              static_cast<std::size_t>(rng.next_u64() % bad.size());
          bad[pos] = static_cast<char>(
              bad[pos] ^ static_cast<char>(1u << (rng.next_u64() % 8)));
        } else {
          // Version patch with a valid checksum: bytes 4..5 hold the
          // little-endian format version; re-seal the trailing fnv1a64 so
          // only the version check stands between the blob and the arena.
          what = "wrong-version";
          bad[4] = static_cast<char>(fleet::kParkedFormatVersion + 1);
          const std::uint64_t sum =
              fnv1a64(std::string_view(bad.data(), bad.size() - 8));
          for (int b = 0; b < 8; ++b) {
            bad[bad.size() - 8 + static_cast<std::size_t>(b)] =
                static_cast<char>((sum >> (8 * b)) & 0xff);
          }
        }
        core::Testbed victim = parked_testbed(cfg, bundle, u);
        ++attempts;
        if (fleet::revive_user(bad, uid, victim, nullptr).status !=
            fleet::ReviveStatus::Corrupt) {
          ++survivors;
          std::fprintf(stderr,
                       "round %d (seed %llu): %s blob for user %zu revived "
                       "without a Corrupt verdict\n",
                       r, static_cast<unsigned long long>(round_seed), what,
                       u);
        }
      }

      // The pristine blob must still work — revive and replay the rest of
      // the schedule (sanitizers watch the revived state get exercised).
      core::Testbed revived = parked_testbed(cfg, bundle, u);
      const fleet::ReviveResult rv =
          fleet::revive_user(blob, uid, revived, nullptr);
      if (rv.status != fleet::ReviveStatus::Ok) {
        std::printf("MUTATION SURVIVED: pristine parked blob rejected "
                    "(round %d, seed %llu, user %zu) — the codec fails "
                    "closed on valid input\n",
                    r, static_cast<unsigned long long>(round_seed), u);
        return 1;
      }
      for (std::size_t v = 1; v < cfg.users[u].visits.size(); ++v) {
        core::run_visit(revived, cfg.users[u].visits[v]);
      }
    }
    if (verbose) {
      std::fprintf(stderr, "round %d (seed %llu): %llu corrupt revive(s) "
                   "attempted, %llu survivor(s)\n",
                   r, static_cast<unsigned long long>(round_seed),
                   static_cast<unsigned long long>(attempts),
                   static_cast<unsigned long long>(survivors));
    }
  }
  if (survivors == 0 && attempts > 0) {
    std::printf("MUTATION CAUGHT: parked-blob corruption rejected "
                "fail-closed (%llu/%llu corrupted revives)\n",
                static_cast<unsigned long long>(attempts),
                static_cast<unsigned long long>(attempts));
    return 0;
  }
  std::printf("MUTATION SURVIVED: %llu of %llu corrupted parked blobs "
              "revived without a Corrupt verdict\n",
              static_cast<unsigned long long>(survivors),
              static_cast<unsigned long long>(attempts));
  return 1;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: difftest --rounds N [--seed S]\n"
      "                [--mutate stale-serve|unkeyed-header|parked-corrupt]\n"
      "                [--verbose] [--users N] [--visits N] [--no-faults]\n"
      "                [--no-edge] [--no-flash] [--static-site]\n"
      "                [--no-third-party] [--no-negative]\n"
      "                [--no-dead-links] [--h2] [--no-h2]\n"
      "\n"
      "Runs N rounds of randomized differential testing: each round draws\n"
      "a workload (site x TTL profile x change model x faults x edge x\n"
      "negative caching x dead links x H1/H2 transport) from seed+round\n"
      "and replays it under\n"
      "Baseline, Catalyst, and Catalyst behind an edge PoP, all through\n"
      "the byte-equivalence oracle.\n"
      "Exit 0: no violations and no unexplained content divergence.\n"
      "With --mutate stale-serve the broken StaleServeStrategy is injected\n"
      "and the run passes (exit 0) only if the oracle catches it.\n"
      "With --mutate unkeyed-header the edge PoP keys entries without\n"
      "X-Forwarded-Host while a scripted adversary poisons it; the run\n"
      "passes only if the oracle flags poisoned-serve/cross-user-leak.\n"
      "With --mutate parked-corrupt each user's parked blob is corrupted\n"
      "(truncated, bit-flipped, version-patched with a re-sealed\n"
      "checksum); the run passes only if every corrupted revive fails\n"
      "closed while the pristine blob still revives and replays.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }
  const int rounds = static_cast<int>(args.num("rounds", 20));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 1));
  const bool verbose = args.has("verbose");
  const std::string mutate_name = args.get("mutate", "");
  Mutation mutate = Mutation::None;
  if (mutate_name == "stale-serve") {
    mutate = Mutation::StaleServe;
  } else if (mutate_name == "unkeyed-header") {
    mutate = Mutation::UnkeyedHeader;
  } else if (mutate_name == "parked-corrupt") {
    mutate = Mutation::ParkedCorrupt;
  } else if (args.has("mutate")) {
    std::fprintf(stderr, "difftest: unknown mutation '%s'\n",
                 mutate_name.c_str());
    usage();
    return 2;
  }

  if (mutate == Mutation::ParkedCorrupt) {
    // Structurally different from the oracle mutations: the defect is the
    // corruption itself and the detector is the parked-blob codec, so it
    // gets a dedicated runner instead of the three-arm comparison.
    return run_parked_corrupt(rounds, seed, verbose);
  }

  int failures = 0;
  std::uint64_t first_catch_seed = 0;
  check::OracleStats totals;
  for (int r = 0; r < rounds; ++r) {
    const std::uint64_t round_seed = seed + static_cast<std::uint64_t>(r);
    RoundConfig cfg = draw_round(round_seed);
    apply_overrides(cfg, args);
    // The unkeyed-header defect is planted in the edge arm's PoP; a round
    // without that arm can never catch it.
    if (mutate == Mutation::UnkeyedHeader) cfg.edge = true;
    const RoundOutcome out = run_round(cfg, mutate);
    totals.checked += out.totals.checked;
    totals.fresh += out.totals.fresh;
    totals.allowed_stale += out.totals.allowed_stale;
    totals.violations += out.totals.violations;
    totals.poisoned_serves += out.totals.poisoned_serves;
    totals.cross_user_leaks += out.totals.cross_user_leaks;
    totals.unauditable += out.totals.unauditable;
    if (verbose || out.failed) {
      std::fprintf(stderr,
                   "round %d (seed %llu): %s — checked %llu, stale-ok "
                   "%llu, violations %llu\n",
                   r, static_cast<unsigned long long>(round_seed),
                   out.failed ? "FAIL" : "ok",
                   static_cast<unsigned long long>(out.totals.checked),
                   static_cast<unsigned long long>(
                       out.totals.allowed_stale),
                   static_cast<unsigned long long>(out.totals.violations));
    }
    if (!out.failed) continue;
    ++failures;
    if (first_catch_seed == 0) first_catch_seed = round_seed;
    std::fprintf(stderr, "  %s\n", out.detail.c_str());
    // unkeyed-header must be caught *as* poisoning, not as an incidental
    // staleness violation.
    const bool caught =
        mutate == Mutation::StaleServe
            ? out.violations_caught
            : out.totals.poisoned_serves + out.totals.cross_user_leaks != 0;
    if (mutate != Mutation::None && caught) {
      // The mutation is supposed to fail; one catching seed is the
      // deliverable. Minimize it and stop.
      const RoundConfig minimal = minimize(cfg, mutate);
      std::printf(
          "MUTATION CAUGHT: %s flagged by the oracle\n"
          "repro: %s\n",
          mutate == Mutation::StaleServe ? "StaleServeStrategy"
                                         : "unkeyed-header poisoning",
          repro_command(minimal, seed, mutate).c_str());
      return 0;
    }
    if (mutate == Mutation::None) {
      const RoundConfig minimal = minimize(cfg, mutate);
      std::printf("FAILURE (round %d)\n  %s\n  repro: %s\n", r,
                  out.detail.c_str(),
                  repro_command(minimal, seed, mutate).c_str());
    }
  }

  std::printf(
      "difftest: %d round(s), %d failure(s); oracle checked %llu "
      "(fresh %llu, allowed-stale %llu, violations %llu, poisoned %llu, "
      "leaks %llu, unauditable %llu)\n",
      rounds, failures, static_cast<unsigned long long>(totals.checked),
      static_cast<unsigned long long>(totals.fresh),
      static_cast<unsigned long long>(totals.allowed_stale),
      static_cast<unsigned long long>(totals.violations),
      static_cast<unsigned long long>(totals.poisoned_serves),
      static_cast<unsigned long long>(totals.cross_user_leaks),
      static_cast<unsigned long long>(totals.unauditable));
  if (mutate != Mutation::None) {
    std::printf("MUTATION SURVIVED: the oracle failed to catch %s "
                "in %d round(s)\n",
                mutate == Mutation::StaleServe ? "StaleServeStrategy"
                                               : "unkeyed-header poisoning",
                rounds);
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
