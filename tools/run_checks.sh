#!/usr/bin/env sh
# Verification ladder for the caching stack. Runs, in order:
#
#   1. plain build    — full ctest suite + difftest sweep (clean and
#                       mutated) + the oracle/report byte-identity checks
#   2. ASan+UBSan     — oracle- and robustness-labeled tests (fault paths
#                       are where lifetime bugs hide)
#   3. TSan           — oracle-, fleet- and edge-labeled tests (trace
#                       recording and oracle counters ride the fleet's
#                       shard merge; prove they stay race-free)
#
# Usage: tools/run_checks.sh [--fast]
#   --fast skips the sanitizer stages (plain stage only).
#
# Any failure stops the script with a non-zero exit.
set -eu

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

echo "== stage 1: plain build + full suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== stage 1b: differential harness (clean + mutation self-test) =="
./build/tools/difftest --rounds 50 --seed 1
./build/tools/difftest --rounds 50 --seed 1 --mutate stale-serve

echo "== stage 1c: oracle-off byte-identity =="
# With --oracle off the report must not grow an "oracle" section, and
# must stay bit-identical across thread counts with it on.
if ./build/tools/fleetsim --users 60 --json 2>/dev/null | grep -q '"oracle"'; then
  echo "FAIL: oracle section present in an oracle-off report" >&2
  exit 1
fi
./build/tools/fleetsim --users 60 --oracle --trace-users 2 --threads 1 \
    --json 2>/dev/null > /tmp/oracle_t1.json
./build/tools/fleetsim --users 60 --oracle --trace-users 2 --threads 8 \
    --json 2>/dev/null > /tmp/oracle_t8.json
cmp /tmp/oracle_t1.json /tmp/oracle_t8.json

if [ "$FAST" = 1 ]; then
  echo "== --fast: skipping sanitizer stages =="
  exit 0
fi

echo "== stage 2: ASan+UBSan — oracle + robustness labels =="
cmake -B build-asan -S . -DCATALYST_SANITIZE=address >/dev/null
cmake --build build-asan -j"$JOBS" --target \
    check_oracle_test check_replay_test robustness_test \
    netsim_faults_test client_retry_test
ctest --test-dir build-asan --output-on-failure -L 'oracle|robustness'

echo "== stage 3: TSan — oracle + fleet + edge labels =="
cmake -B build-tsan -S . -DCATALYST_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target \
    check_replay_test fleet_determinism_test fleet_report_test \
    fleet_user_model_test edge_tier_test edge_fleet_test
ctest --test-dir build-tsan --output-on-failure -L 'oracle|fleet|edge'

echo "== all checks passed =="
