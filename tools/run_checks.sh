#!/usr/bin/env bash
# Verification ladder for the caching stack — the single entrypoint both
# local runs and CI jobs use (each .github/workflows/ci.yml job invokes
# one stage, so passing CI and a local `tools/run_checks.sh` are the same
# checks by construction).
#
# Stages:
#
#   plain   — full build + complete ctest suite (includes oracle label)
#   diff    — differential harness sweep (clean + mutation self-tests,
#             including the parked-blob corruption arm; rounds draw the
#             browser protocol at random plus a forced --h2 sweep) and
#             the oracle-off / flash-off / breakdown-off / h2 /
#             streaming-off / cross-thread byte-identity checks
#             (feature-on runs compared across thread counts)
#   perf    — engine_hotpath --smoke gated against bench/baselines/
#             hotpath.json (fails on >20% macro throughput regression)
#             plus the edge_offload --smoke flash sweep and the
#             --breakdown overhead gate (>=97% of off-throughput).
#             Both BENCH_*.json artifacts are written before the gate
#             verdict so a regression still uploads its numbers
#   asan    — ASan+UBSan build, oracle/robustness/perf/fleet labels (the
#             fault, pooling and parked-blob-fuzz paths are where
#             lifetime bugs hide)
#   tsan    — TSan build, oracle/fleet/edge labels (trace recording and
#             oracle counters ride the fleet's shard merge; prove they
#             stay race-free)
#   scale   — streaming determinism at CI scale: 200k users through a
#             4096-slot arena, byte-compared across thread counts
#             (~tens of minutes; not part of the no-argument run — CI
#             invokes it as its own job)
#
# Usage: tools/run_checks.sh [stage ...]
#   No arguments runs every stage in the order above except scale.
#   --fast is shorthand for "plain diff" (skip sanitizers and perf).
#
# Environment:
#   BUILD_DIR       plain build tree            (default: build)
#   ASAN_BUILD_DIR  ASan+UBSan build tree       (default: build-asan)
#   TSAN_BUILD_DIR  TSan build tree             (default: build-tsan)
#   JOBS            parallel build/test width   (default: nproc)
#   CMAKE_ARGS      extra args for every cmake configure (e.g. ccache
#                   launcher flags in CI)
#
# Any failure stops the script with a non-zero exit.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
ASAN_BUILD_DIR="${ASAN_BUILD_DIR:-build-asan}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
CMAKE_ARGS="${CMAKE_ARGS:-}"

configure() {
  # $1 = build dir, rest = extra -D flags. CMAKE_ARGS is intentionally
  # word-split so CI can pass several flags in one variable.
  # shellcheck disable=SC2086
  cmake -B "$1" -S . ${CMAKE_ARGS} "${@:2}" >/dev/null
}

# Per-test ctest timeout (seconds). A hung test — a non-terminating
# event loop, a deadlocked shard merge — gets killed and named in
# Testing/Temporary/LastTest.log instead of stalling the whole job until
# the runner's 6-hour limit.
CTEST_TIMEOUT="${CTEST_TIMEOUT:-300}"

stage_plain() {
  echo "== plain build + full suite =="
  configure "$BUILD_DIR"
  cmake --build "$BUILD_DIR" -j"$JOBS"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" \
      --timeout "$CTEST_TIMEOUT"
}

stage_diff() {
  echo "== differential harness (clean + mutation self-test) =="
  configure "$BUILD_DIR"
  cmake --build "$BUILD_DIR" -j"$JOBS" --target difftest fleetsim
  "./$BUILD_DIR/tools/difftest" --rounds 50 --seed 1
  "./$BUILD_DIR/tools/difftest" --rounds 50 --seed 1 --mutate stale-serve
  "./$BUILD_DIR/tools/difftest" --rounds 10 --seed 1 --mutate unkeyed-header
  "./$BUILD_DIR/tools/difftest" --rounds 10 --seed 1 --mutate parked-corrupt

  echo "== oracle-off byte-identity =="
  # With --oracle off the report must not grow an "oracle" section, and
  # must stay bit-identical across thread counts with it on.
  if "./$BUILD_DIR/tools/fleetsim" --users 60 --json 2>/dev/null \
      | grep -q '"oracle"'; then
    echo "FAIL: oracle section present in an oracle-off report" >&2
    exit 1
  fi
  "./$BUILD_DIR/tools/fleetsim" --users 60 --oracle --trace-users 2 \
      --threads 1 --json 2>/dev/null > /tmp/oracle_t1.json
  "./$BUILD_DIR/tools/fleetsim" --users 60 --oracle --trace-users 2 \
      --threads 8 --json 2>/dev/null > /tmp/oracle_t8.json
  cmp /tmp/oracle_t1.json /tmp/oracle_t8.json

  echo "== flash-tier byte-identity =="
  # Flash-off edge reports must not grow a "flash" section, and flash-on
  # runs must stay bit-identical across thread counts (the async flash
  # reads and device-queue jitter are all on the virtual clock).
  if "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 --json \
      2>/dev/null | grep -q '"flash"'; then
    echo "FAIL: flash section present in a flash-off edge report" >&2
    exit 1
  fi
  "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 \
      --edge-capacity-mb 1 --edge-flash-mb 16 --threads 1 --json \
      2>/dev/null > /tmp/flash_t1.json
  "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 \
      --edge-capacity-mb 1 --edge-flash-mb 16 --threads 8 --json \
      2>/dev/null > /tmp/flash_t8.json
  cmp /tmp/flash_t1.json /tmp/flash_t8.json

  echo "== adversarial gate =="
  # Attack traffic against the default strict keying must audit clean,
  # and the planted vulnerability (--vulnerable-keying) must be
  # convicted with poisoning-class violations. Adversary-on runs stay
  # bit-identical across thread counts like everything else.
  "./$BUILD_DIR/tools/fleetsim" --users 40 --seed 7 --edge-pops 2 \
      --adversary --oracle --threads 1 --json 2>/dev/null \
      > /tmp/adv_strict_t1.json
  "./$BUILD_DIR/tools/fleetsim" --users 40 --seed 7 --edge-pops 2 \
      --adversary --oracle --threads 4 --json 2>/dev/null \
      > /tmp/adv_strict_t4.json
  cmp /tmp/adv_strict_t1.json /tmp/adv_strict_t4.json
  if grep -q '"poisoned_serves"' /tmp/adv_strict_t1.json; then
    echo "FAIL: strict keying reported poisoned serves" >&2
    exit 1
  fi
  "./$BUILD_DIR/tools/fleetsim" --users 40 --seed 7 --edge-pops 2 \
      --adversary --vulnerable-keying --oracle --json 2>/dev/null \
      > /tmp/adv_vuln.json
  if ! grep -q '"poisoned_serves"' /tmp/adv_vuln.json; then
    echo "FAIL: vulnerable keying escaped the oracle" >&2
    exit 1
  fi

  echo "== breakdown byte-identity =="
  # Without --breakdown the report must not grow a "phases" section, and
  # breakdown-on runs (phase histograms included) must stay bit-identical
  # across thread counts — all phase timing lives on the virtual clock.
  if "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 --json \
      2>/dev/null | grep -q '"phases"'; then
    echo "FAIL: phases section present in a breakdown-off report" >&2
    exit 1
  fi
  "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 \
      --edge-capacity-mb 1 --edge-flash-mb 16 --loss 0.01 --breakdown \
      --threads 1 --json 2>/dev/null > /tmp/breakdown_t1.json
  "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 \
      --edge-capacity-mb 1 --edge-flash-mb 16 --loss 0.01 --breakdown \
      --threads 8 --json 2>/dev/null > /tmp/breakdown_t8.json
  cmp /tmp/breakdown_t1.json /tmp/breakdown_t8.json
  grep -q '"phases"' /tmp/breakdown_t1.json

  echo "== h2 byte-identity =="
  # The --h2 ablation axis forces HTTP/2 fleet-wide; it must uphold the
  # same invariant as every other feature (bit-identical reports across
  # thread counts) and actually change the simulation (H2 reports differ
  # from H1). The forced-H2 difftest sweep keeps the oracle green on the
  # multiplexed transport specifically; the regular sweep above already
  # draws the protocol per round.
  "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 --h2 \
      --threads 1 --json 2>/dev/null > /tmp/h2_t1.json
  "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 --h2 \
      --threads 8 --json 2>/dev/null > /tmp/h2_t8.json
  cmp /tmp/h2_t1.json /tmp/h2_t8.json
  "./$BUILD_DIR/tools/fleetsim" --users 60 --edge-pops 2 \
      --threads 1 --json 2>/dev/null > /tmp/h1_ref.json
  if cmp -s /tmp/h2_t1.json /tmp/h1_ref.json; then
    echo "FAIL: --h2 produced a byte-identical report to H1" >&2
    exit 1
  fi
  "./$BUILD_DIR/tools/difftest" --rounds 10 --seed 1 --h2

  echo "== streaming byte-identity =="
  # The streaming shard engine (bounded live arena + park/revive) must be
  # pure scheduling: with --max-live-users the report stays bit-identical
  # to the materialise-everything engine and across thread counts.
  knobs=(--max-visits 2 --mean-gap-hours 120 --baseline catalyst --sites 4)
  "./$BUILD_DIR/tools/fleetsim" --users 2000 "${knobs[@]}" --json \
      2>/dev/null > /tmp/stream_legacy.json
  "./$BUILD_DIR/tools/fleetsim" --users 2000 "${knobs[@]}" \
      --max-live-users 128 --threads 1 --json 2>/dev/null \
      > /tmp/stream_t1.json
  "./$BUILD_DIR/tools/fleetsim" --users 2000 "${knobs[@]}" \
      --max-live-users 128 --threads 4 --json 2>/dev/null \
      > /tmp/stream_t4.json
  cmp /tmp/stream_legacy.json /tmp/stream_t1.json
  cmp /tmp/stream_t1.json /tmp/stream_t4.json
}

stage_perf() {
  echo "== perf smoke: engine_hotpath vs checked-in baseline =="
  configure "$BUILD_DIR"
  cmake --build "$BUILD_DIR" -j"$JOBS" --target engine_hotpath edge_offload
  # Artifact production is decoupled from the gate verdict: a gated
  # regression must still leave both BENCH_*.json files behind (CI
  # uploads them with if-no-files-found: error), because the numbers
  # that show the regression are exactly the ones worth keeping.
  hotpath_rc=0
  "./$BUILD_DIR/bench/engine_hotpath" --smoke \
      --out BENCH_hotpath.json \
      --baseline bench/baselines/hotpath.json || hotpath_rc=$?

  echo "== perf smoke: edge_offload flash sweep =="
  # Exercises the flash-enabled offload sweep end to end (RAM-only and
  # two-tier points plus the read-merge probe); no gating baseline yet.
  "./$BUILD_DIR/bench/edge_offload" --smoke > BENCH_edge_offload.json

  echo "== perf smoke: observability overhead gate =="
  # The phase breakdown must stay near-free: the same macro fleet with
  # --breakdown on must keep >=97% of breakdown-off throughput.
  "./$BUILD_DIR/bench/engine_hotpath" --smoke --overhead-gate

  if [ "$hotpath_rc" -ne 0 ]; then
    echo "FAIL: engine_hotpath smoke macro below the baseline gate" >&2
    exit "$hotpath_rc"
  fi
}

stage_asan() {
  echo "== ASan+UBSan — oracle + robustness + perf + fleet labels =="
  # Only targets built in this tree register with ctest, so the fleet
  # label here means exactly the parked-blob fuzz + streaming tests —
  # corrupted revives are decode-of-hostile-bytes and must be UB-clean.
  configure "$ASAN_BUILD_DIR" -DCATALYST_SANITIZE=address
  cmake --build "$ASAN_BUILD_DIR" -j"$JOBS" --target \
      check_oracle_test check_replay_test robustness_test \
      netsim_faults_test client_retry_test \
      util_intern_test util_flat_hash_test util_pool_test \
      fleet_parked_state_test fleet_streaming_test
  ctest --test-dir "$ASAN_BUILD_DIR" --output-on-failure \
      --timeout "$CTEST_TIMEOUT" -L 'oracle|robustness|perf|fleet'
}

stage_tsan() {
  echo "== TSan — oracle + fleet + edge labels =="
  configure "$TSAN_BUILD_DIR" -DCATALYST_SANITIZE=thread
  cmake --build "$TSAN_BUILD_DIR" -j"$JOBS" --target \
      check_replay_test fleet_determinism_test fleet_report_test \
      fleet_user_model_test fleet_streaming_test edge_tier_test \
      edge_fleet_test edge_flash_test edge_flash_fleet_test obs_fleet_test
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure \
      --timeout "$CTEST_TIMEOUT" -L 'oracle|fleet|edge'
}

stage_scale() {
  echo "== streaming determinism at scale (200k users, 4096-slot arena) =="
  # The issue-9 acceptance gate: a 200k-user fleet streamed through a
  # bounded arena must produce byte-identical reports for any --threads.
  # Cheap per-user knobs keep this to tens of minutes of virtual fleet.
  configure "$BUILD_DIR"
  cmake --build "$BUILD_DIR" -j"$JOBS" --target fleetsim
  knobs=(--max-visits 2 --mean-gap-hours 120 --baseline catalyst --sites 4)
  "./$BUILD_DIR/tools/fleetsim" --users 200000 "${knobs[@]}" \
      --max-live-users 4096 --threads 1 --json 2>/dev/null \
      > /tmp/scale_t1.json
  "./$BUILD_DIR/tools/fleetsim" --users 200000 "${knobs[@]}" \
      --max-live-users 4096 --threads 2 --json 2>/dev/null \
      > /tmp/scale_t2.json
  cmp /tmp/scale_t1.json /tmp/scale_t2.json
  echo "scale gate: reports byte-identical across thread counts"
}

stages=()
for arg in "$@"; do
  case "$arg" in
    --fast) stages+=(plain diff) ;;
    plain|diff|perf|asan|tsan|scale) stages+=("$arg") ;;
    *)
      echo "usage: tools/run_checks.sh [--fast] [plain|diff|perf|asan|tsan|scale ...]" >&2
      exit 2
      ;;
  esac
done
[ "${#stages[@]}" -eq 0 ] && stages=(plain diff perf asan tsan)

for stage in "${stages[@]}"; do
  "stage_${stage}"
done

echo "== all checks passed =="
