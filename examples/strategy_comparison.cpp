// Compare every implemented acceleration strategy on one synthetic
// homepage across the paper's revisit delays:
//   ./build/examples/strategy_comparison [site_index] [rtt_ms]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/sitegen.h"

using namespace catalyst;

int main(int argc, char** argv) {
  workload::SitegenParams params;
  params.seed = 2024;
  params.site_index = argc > 1 ? std::atoi(argv[1]) : 0;
  params.clone_static_snapshot = true;
  auto site = workload::generate_site(params);

  netsim::NetworkConditions conditions =
      netsim::NetworkConditions::median_5g();
  if (argc > 2) conditions.rtt = milliseconds(std::atoi(argv[2]));

  std::printf("site %s: %zu resources, %s | network %s\n\n",
              site->host().c_str(), site->resource_count(),
              format_bytes(site->total_bytes()).c_str(),
              conditions.label().c_str());

  const auto delays = core::paper_revisit_delays();
  const char* delay_names[] = {"1min", "1h", "6h", "1d", "1w"};

  Table table("Revisit PLT (ms) by strategy and delay");
  table.set_header({"strategy", "cold", "1min", "1h", "6h", "1d", "1w",
                    "KiB @6h"});
  for (const auto kind :
       {core::StrategyKind::Baseline, core::StrategyKind::Catalyst,
        core::StrategyKind::CatalystLearned, core::StrategyKind::PushAll,
        core::StrategyKind::PushLearned, core::StrategyKind::PushDigest,
        core::StrategyKind::EarlyHints, core::StrategyKind::RdrProxy,
        core::StrategyKind::Oracle}) {
    std::vector<std::string> row{std::string(core::to_string(kind))};
    double cold_ms = 0.0;
    double bytes_6h = 0.0;
    for (std::size_t d = 0; d < delays.size(); ++d) {
      const auto outcome =
          core::run_revisit_pair(site, conditions, kind, delays[d]);
      if (d == 0) cold_ms = to_millis(outcome.cold.plt());
      if (delays[d] == hours(6)) {
        bytes_6h =
            static_cast<double>(outcome.revisit.bytes_downloaded) / 1024.0;
      }
      row.push_back(str_format("%.0f", to_millis(outcome.revisit.plt())));
    }
    row.insert(row.begin() + 1, str_format("%.0f", cold_ms));
    row.push_back(str_format("%.0f", bytes_6h));
    table.add_row(std::move(row));
  }
  (void)delay_names;
  table.print();

  std::printf(
      "\nReading guide: catalyst tracks oracle (the lower bound) as delays "
      "grow;\npush variants trade bandwidth for latency; rdr-proxy ignores "
      "client caches\nentirely, so its revisit equals its cold load.\n");
  return 0;
}
