// Walkthrough of the paper's Figure-1 scenarios with adjustable network
// conditions:
//   ./build/examples/revisit_scenarios [rtt_ms] [downlink_mbps]
//
// Shows the worked example site (index.html -> a.css + b.js; b.js fetches
// c.js; c.js fetches d.jpg) under (a) a cold first visit, (b) a revisit
// two hours later with status-quo caching, and (c) the same revisit with
// CacheCatalyst — and explains each resource's fate.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "core/testbed.h"
#include "workload/sitegen.h"

using namespace catalyst;

namespace {

void explain(const client::PageLoadResult& result) {
  for (const auto& t : result.trace.traces()) {
    const char* why = "";
    if (t.url == "/index.html") {
      why = "base HTML: no-cache, always revalidated (carries the ETag map "
            "under CacheCatalyst)";
    } else if (t.url == "/a.css") {
      why = "stylesheet: max-age=1 week";
    } else if (t.url == "/b.js") {
      why = "script: no-cache -> a re-validation RTT on every visit under "
            "status-quo caching";
    } else if (t.url == "/c.js") {
      why = "script fetched by b.js at execution time (invisible to a "
            "static DOM scan)";
    } else if (t.url == "/d.jpg") {
      why = "image fetched by c.js; max-age=2h and it changed 1h in";
    }
    std::printf("  %-11s <- %-8s  %s\n", t.url.c_str(),
                std::string(netsim::to_string(t.source)).c_str(), why);
  }
}

}  // namespace

int main(int argc, char** argv) {
  netsim::NetworkConditions conditions =
      netsim::NetworkConditions::median_5g();
  if (argc > 1) conditions.rtt = milliseconds(std::atoi(argv[1]));
  if (argc > 2) {
    conditions.downlink = mbps(std::atof(argv[2]));
    conditions.uplink = mbps(std::atof(argv[2]) / 5.0);
  }
  std::printf("network: %s\n\n", conditions.label().c_str());

  auto site = workload::make_figure1_site();

  // Scenario (a) + (b): the status quo.
  auto baseline = core::make_testbed(site, conditions,
                                     core::StrategyKind::Baseline);
  const auto cold = core::run_visit(baseline, TimePoint{});
  std::printf("(a) first visit, cold cache — PLT %.1f ms\n",
              to_millis(cold.plt()));
  std::printf("%s\n", cold.trace.render_waterfall().c_str());

  const auto revisit = core::run_visit(baseline, TimePoint{} + hours(2));
  std::printf("(b) revisit +2h, current caching — PLT %.1f ms\n",
              to_millis(revisit.plt()));
  std::printf("%s", revisit.trace.render_waterfall().c_str());
  explain(revisit);

  // Scenario (c): CacheCatalyst.
  auto catalyst_tb = core::make_testbed(site, conditions,
                                        core::StrategyKind::Catalyst);
  (void)core::run_visit(catalyst_tb, TimePoint{});
  const auto optimized =
      core::run_visit(catalyst_tb, TimePoint{} + hours(2));
  std::printf("\n(c) revisit +2h, CacheCatalyst — PLT %.1f ms\n",
              to_millis(optimized.plt()));
  std::printf("%s", optimized.trace.render_waterfall().c_str());
  explain(optimized);

  std::printf(
      "\nCacheCatalyst removed %.1f ms (%.1f%%): the b.js re-validation "
      "RTT is gone\nbecause the X-Etag-Config map that arrived with the "
      "HTML vouched for the\ncached copy.\n",
      to_millis(revisit.plt() - optimized.plt()),
      100.0 * to_seconds(revisit.plt() - optimized.plt()) /
          to_seconds(revisit.plt()));
  return 0;
}
