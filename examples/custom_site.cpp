// Building a site by hand with the public API: resources with real
// content generators, change processes and cache policies, then measuring
// how CacheCatalyst behaves on it. This is the "adopt the library for
// your own experiments" example.
#include <cstdio>

#include "core/experiment.h"
#include "core/testbed.h"
#include "html/generate.h"
#include "server/site.h"
#include "util/strings.h"

using namespace catalyst;

int main() {
  // --- 1. Describe the site --------------------------------------------
  auto site = std::make_shared<server::Site>("shop.example");
  site->set_index_path("/");

  // A stylesheet that references a font; deployed weekly.
  site->add_resource(std::make_unique<server::Resource>(
      "/css/main.css", http::ResourceClass::Css, KiB(40),
      [](std::uint64_t version) {
        return html::make_css({}, {"/fonts/brand.woff2"}, {}, KiB(40),
                              0xC0FFEE + version);
      },
      server::ChangeProcess::periodic(days(7), days(3), days(60)),
      // The developer was conservative: one-hour TTL on a weekly asset.
      http::CacheControl::with_max_age(hours(1))));

  // The brand font: effectively immutable, but shipped with no-cache
  // because nobody dared set a TTL.
  site->add_resource(std::make_unique<server::Resource>(
      "/fonts/brand.woff2", http::ResourceClass::Font, KiB(60),
      [](std::uint64_t version) {
        return "font-bytes v" + std::to_string(version);
      },
      server::ChangeProcess::never(),
      http::CacheControl::revalidate_always()));

  // An app bundle that fetches a price feed when it runs.
  site->add_resource(std::make_unique<server::Resource>(
      "/js/app.js", http::ResourceClass::Script, KiB(120),
      [](std::uint64_t version) {
        return html::make_js({"/api/prices.json"}, KiB(120),
                             0xAB + version);
      },
      server::ChangeProcess::periodic(days(14), days(5), days(60)),
      http::CacheControl::with_max_age(hours(6))));

  // The price feed changes every few minutes and must never be cached.
  site->add_resource(std::make_unique<server::Resource>(
      "/api/prices.json", http::ResourceClass::Json, KiB(4),
      [](std::uint64_t version) {
        return "{\"rev\":" + std::to_string(version) + "}";
      },
      server::ChangeProcess::periodic(minutes(5), minutes(2), days(60)),
      http::CacheControl::never_store()));

  // Product photos: immutable.
  for (int i = 0; i < 12; ++i) {
    site->add_resource(std::make_unique<server::Resource>(
        str_format("/img/product%d.webp", i), http::ResourceClass::Image,
        KiB(45),
        [i](std::uint64_t version) {
          return str_format("photo %d v%llu", i,
                            static_cast<unsigned long long>(version));
        },
        server::ChangeProcess::never(),
        http::CacheControl::with_max_age(minutes(30))));
  }

  // The home page ties it together.
  site->add_resource(std::make_unique<server::Resource>(
      "/", http::ResourceClass::Html, KiB(30),
      [](std::uint64_t version) {
        html::HtmlBuilder page("shop.example");
        page.add_stylesheet("/css/main.css");
        page.add_script("/js/app.js");
        for (int i = 0; i < 12; ++i) {
          page.add_image(str_format("/img/product%d.webp", i));
        }
        page.add_comment(str_format(
            "rev %llu", static_cast<unsigned long long>(version)));
        page.pad_to(KiB(30), 0x5104 + version);
        return page.build();
      },
      server::ChangeProcess::periodic(hours(4), hours(1), days(60)),
      http::CacheControl::revalidate_always()));

  std::printf("site %s: %zu resources, %s\n\n", site->host().c_str(),
              site->resource_count(),
              format_bytes(site->total_bytes()).c_str());

  // --- 2. Measure both strategies over a day of revisits ----------------
  const auto conditions = netsim::NetworkConditions::median_5g();
  for (const auto kind :
       {core::StrategyKind::Baseline, core::StrategyKind::Catalyst}) {
    auto tb = core::make_testbed(site, conditions, kind);
    std::printf("%s:\n", std::string(core::to_string(kind)).c_str());
    TimePoint at{};
    const auto cold = core::run_visit(tb, at);
    std::printf("  t=0      cold   PLT %7.1f ms\n", to_millis(cold.plt()));
    for (const Duration delay : {hours(2), hours(8), hours(24)}) {
      const auto visit = core::run_visit(tb, TimePoint{} + delay);
      std::printf(
          "  t=%-5s revisit PLT %7.1f ms  (%2u net, %2u cache, %2u 304, "
          "%2u sw)\n",
          format_duration(delay).c_str(), to_millis(visit.plt()),
          visit.from_network, visit.from_cache, visit.not_modified,
          visit.from_sw_cache);
    }
    std::printf("\n");
  }

  std::printf(
      "Note how the no-cache font costs the baseline an RTT on every "
      "visit while\nCacheCatalyst serves it instantly — without anyone "
      "having to pick a TTL.\n");
  return 0;
}
