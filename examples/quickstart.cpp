// Quickstart: load one synthetic page cold and again after six hours,
// with status-quo caching vs. CacheCatalyst, and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.h"
#include "core/testbed.h"
#include "util/table.h"
#include "workload/sitegen.h"

using namespace catalyst;

namespace {

void describe(const char* label, const client::PageLoadResult& r) {
  std::printf(
      "  %-18s PLT %8.1f ms | %3u resources: %3u network, %3u cache, "
      "%3u 304, %3u sw, %2u push | %s down, %u RTTs\n",
      label, to_millis(r.plt()), r.resources_total, r.from_network,
      r.from_cache, r.not_modified, r.from_sw_cache, r.from_push,
      format_bytes(r.bytes_downloaded).c_str(), r.rtts);
}

}  // namespace

int main() {
  // A synthetic "top-100" homepage: ~100 resources, realistic sizes,
  // CMS-default cache headers.
  workload::SitegenParams params;
  params.seed = 42;
  params.site_index = 7;
  auto site = workload::generate_site(params);
  std::printf("site %s: %zu resources, %s total\n", site->host().c_str(),
              site->resource_count(),
              format_bytes(site->total_bytes()).c_str());

  // Median 5G access: 60 Mbps down, 40 ms RTT (paper §4).
  const auto conditions = netsim::NetworkConditions::median_5g();
  std::printf("network: %s\n\n", conditions.label().c_str());

  for (const auto kind :
       {core::StrategyKind::Baseline, core::StrategyKind::Catalyst}) {
    std::printf("%s:\n", std::string(core::to_string(kind)).c_str());
    const auto outcome = core::run_revisit_pair(
        site, conditions, kind, hours(6));
    describe("cold load", outcome.cold);
    describe("revisit +6h", outcome.revisit);
    std::printf("\n");
  }

  // The headline comparison.
  const auto base =
      core::run_revisit_pair(site, conditions, core::StrategyKind::Baseline,
                             hours(6));
  const auto treat =
      core::run_revisit_pair(site, conditions, core::StrategyKind::Catalyst,
                             hours(6));
  const double base_ms = to_millis(base.revisit.plt());
  const double treat_ms = to_millis(treat.revisit.plt());
  std::printf("revisit PLT: %.1f ms -> %.1f ms  (%.1f%% reduction)\n",
              base_ms, treat_ms, 100.0 * (base_ms - treat_ms) / base_ms);
  return 0;
}
