// Detailed waterfall inspection of one page load, with a JSON trace export
// (HAR-flavoured) for external tooling:
//   ./build/examples/waterfall_trace [site_index] [revisit_hours]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "util/json.h"
#include "util/strings.h"
#include "workload/sitegen.h"

using namespace catalyst;

namespace {

Json trace_to_json(const client::PageLoadResult& result) {
  Json entries = Json::array();
  for (const auto& t : result.trace.traces()) {
    Json entry = Json::object();
    entry.set("url", Json::string(t.url));
    entry.set("class",
              Json::string(std::string(http::class_label(t.resource_class))));
    entry.set("start_ms",
              Json::number(to_millis(t.start - result.start)));
    entry.set("finish_ms",
              Json::number(to_millis(t.finish - result.start)));
    entry.set("source",
              Json::string(std::string(netsim::to_string(t.source))));
    entry.set("bytes_down",
              Json::number(static_cast<double>(t.bytes_down)));
    entries.push_back(std::move(entry));
  }
  Json root = Json::object();
  root.set("plt_ms", Json::number(to_millis(result.plt())));
  root.set("rtts", Json::number(result.rtts));
  root.set("bytes_downloaded",
           Json::number(static_cast<double>(result.bytes_downloaded)));
  root.set("entries", std::move(entries));
  return root;
}

}  // namespace

int main(int argc, char** argv) {
  workload::SitegenParams params;
  params.seed = 7;
  params.site_index = argc > 1 ? std::atoi(argv[1]) : 3;
  auto site = workload::generate_site(params);
  const Duration delay = hours(argc > 2 ? std::atoi(argv[2]) : 6);

  const auto conditions = netsim::NetworkConditions::median_5g();
  auto tb = core::make_testbed(site, conditions,
                               core::StrategyKind::Catalyst);

  std::printf("== cold load of https://%s%s (%s) ==\n", site->host().c_str(),
              site->index_path().c_str(), conditions.label().c_str());
  const auto cold = core::run_visit(tb, TimePoint{});
  std::printf("%s\n", cold.trace.render_waterfall(64).c_str());

  std::printf("== revisit after %s (CacheCatalyst active) ==\n",
              format_duration(delay).c_str());
  const auto revisit = core::run_visit(tb, TimePoint{} + delay);
  std::printf("%s\n", revisit.trace.render_waterfall(64).c_str());

  std::printf("== JSON trace of the revisit ==\n%s\n",
              trace_to_json(revisit).dump().c_str());
  return 0;
}
