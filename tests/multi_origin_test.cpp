// Multi-origin (third-party) bundles and the environment knobs:
// DNS lookups, protocol override, mobile compute.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/sitegen.h"

namespace catalyst {
namespace {

using core::StrategyKind;

workload::SitegenParams bundle_params(double fraction) {
  workload::SitegenParams p;
  p.seed = 77;
  p.site_index = 2;
  p.clone_static_snapshot = true;
  p.third_party_fraction = fraction;
  return p;
}

TEST(SiteBundleTest, ZeroFractionHasNoThirdParties) {
  const auto bundle = workload::generate_site_bundle(bundle_params(0.0));
  EXPECT_TRUE(bundle.third_party.empty());
}

TEST(SiteBundleTest, FractionMovesResourcesOffOrigin) {
  const auto none = workload::generate_site_bundle(bundle_params(0.0));
  const auto some = workload::generate_site_bundle(bundle_params(0.4));
  ASSERT_FALSE(some.third_party.empty());
  std::size_t tp_resources = 0;
  for (const auto& tp : some.third_party) {
    EXPECT_NE(tp->host().find("thirdparty"), std::string::npos);
    tp_resources += tp->resource_count();
  }
  EXPECT_GT(tp_resources, 0u);
  // Total resources conserved (same seed, same plan).
  EXPECT_EQ(none.main->resource_count(),
            some.main->resource_count() + tp_resources);
}

TEST(SiteBundleTest, HtmlReferencesAbsoluteThirdPartyUrls) {
  const auto bundle = workload::generate_site_bundle(bundle_params(0.5));
  const auto& html =
      bundle.main->find("/index.html")->content_at(TimePoint{});
  EXPECT_NE(html.find("https://cdn"), std::string::npos);
}

TEST(SiteBundleTest, DeterministicAcrossCalls) {
  const auto a = workload::generate_site_bundle(bundle_params(0.3));
  const auto b = workload::generate_site_bundle(bundle_params(0.3));
  ASSERT_EQ(a.third_party.size(), b.third_party.size());
  for (std::size_t i = 0; i < a.third_party.size(); ++i) {
    EXPECT_EQ(a.third_party[i]->resource_count(),
              b.third_party[i]->resource_count());
  }
}

TEST(MultiOriginTest, ColdLoadFetchesFromAllOrigins) {
  const auto bundle = workload::generate_site_bundle(bundle_params(0.4));
  auto tb = core::make_testbed(bundle,
                               netsim::NetworkConditions::median_5g(),
                               StrategyKind::Baseline);
  const auto cold = core::run_visit(tb, TimePoint{});
  // All resources across origins got loaded.
  std::size_t total = bundle.main->resource_count();
  for (const auto& tp : bundle.third_party) total += tp->resource_count();
  EXPECT_EQ(cold.resources_total, total);
}

TEST(MultiOriginTest, ThirdPartyResourcesNeverServedBySw) {
  const auto bundle = workload::generate_site_bundle(bundle_params(0.4));
  auto tb = core::make_testbed(bundle,
                               netsim::NetworkConditions::median_5g(),
                               StrategyKind::Catalyst);
  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + hours(6));
  // SW hits happen, but never for third-party origins: those hosts have
  // no registered worker.
  EXPECT_GT(revisit.from_sw_cache, 0u);
  for (const auto& tp : bundle.third_party) {
    EXPECT_FALSE(tb.browser->sw_registered(tp->host()));
  }
}

TEST(MultiOriginTest, ThirdPartyReductionSmallerThanSingleOrigin) {
  const auto single = workload::generate_site_bundle(bundle_params(0.0));
  const auto multi = workload::generate_site_bundle(bundle_params(0.5));
  const auto c = netsim::NetworkConditions::median_5g();
  auto reduction = [&](const workload::SiteBundle& bundle) {
    const auto base = core::run_revisit_pair(bundle, c,
                                             StrategyKind::Baseline,
                                             hours(6));
    const auto cat = core::run_revisit_pair(bundle, c,
                                            StrategyKind::Catalyst,
                                            hours(6));
    return (to_millis(base.revisit.plt()) - to_millis(cat.revisit.plt())) /
           to_millis(base.revisit.plt());
  };
  EXPECT_GT(reduction(single), reduction(multi));
}

TEST(EnvironmentKnobsTest, DnsLookupSlowsColdNotRevisit) {
  workload::SitegenParams p;
  p.seed = 78;
  p.site_index = 0;
  p.clone_static_snapshot = true;
  auto site = workload::generate_site(p);
  const auto c = netsim::NetworkConditions::median_5g();
  core::StrategyOptions with_dns;
  with_dns.dns_lookup = milliseconds(50);
  const auto plain =
      core::run_revisit_pair(site, c, StrategyKind::Baseline, hours(1));
  const auto dns = core::run_revisit_pair(site, c, StrategyKind::Baseline,
                                          hours(1), with_dns);
  EXPECT_GT(dns.cold.plt(), plain.cold.plt());
  // The resolver cache covers the revisit (same session).
  EXPECT_EQ(dns.revisit.plt(), plain.revisit.plt());
}

TEST(EnvironmentKnobsTest, H2OverrideSpeedsBaselineRevisit) {
  workload::SitegenParams p;
  p.seed = 79;
  p.site_index = 1;
  p.clone_static_snapshot = true;
  auto site = workload::generate_site(p);
  const auto c = netsim::NetworkConditions::median_5g();
  core::StrategyOptions h2;
  h2.browser_protocol = netsim::Protocol::H2;
  const auto h1_run =
      core::run_revisit_pair(site, c, StrategyKind::Baseline, hours(6));
  const auto h2_run = core::run_revisit_pair(site, c,
                                             StrategyKind::Baseline,
                                             hours(6), h2);
  // Multiplexed revalidations collapse the 6-connection serialization.
  EXPECT_LT(h2_run.revisit.plt(), h1_run.revisit.plt());
}

TEST(EnvironmentKnobsTest, MobileClientIsSlower) {
  workload::SitegenParams p;
  p.seed = 80;
  p.site_index = 2;
  auto site = workload::generate_site(p);
  const auto c = netsim::NetworkConditions::median_5g();
  core::StrategyOptions mobile;
  mobile.mobile_client = true;
  const auto desktop =
      core::run_revisit_pair(site, c, StrategyKind::Baseline, hours(1));
  const auto phone = core::run_revisit_pair(site, c,
                                            StrategyKind::Baseline,
                                            hours(1), mobile);
  EXPECT_GT(phone.cold.plt(), desktop.cold.plt());
  EXPECT_GT(phone.revisit.plt(), desktop.revisit.plt());
}

}  // namespace
}  // namespace catalyst
