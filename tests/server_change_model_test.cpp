#include "server/change_model.h"

#include <gtest/gtest.h>

namespace catalyst::server {
namespace {

TEST(ChangeProcessTest, NeverChanges) {
  const ChangeProcess cp = ChangeProcess::never();
  EXPECT_EQ(cp.version_at(TimePoint{}), 0u);
  EXPECT_EQ(cp.version_at(TimePoint{} + days(365)), 0u);
  EXPECT_EQ(cp.next_change_after(TimePoint{}), TimePoint::max());
  EXPECT_EQ(cp.last_change_at(TimePoint{} + days(1)), TimePoint{});
  EXPECT_FALSE(cp.changes_in(TimePoint{}, TimePoint{} + days(100)));
}

TEST(ChangeProcessTest, PeriodicVersions) {
  const ChangeProcess cp =
      ChangeProcess::periodic(hours(2), hours(1), days(1));
  // Changes at 1h, 3h, 5h, ...
  EXPECT_EQ(cp.version_at(TimePoint{}), 0u);
  EXPECT_EQ(cp.version_at(TimePoint{} + minutes(59)), 0u);
  EXPECT_EQ(cp.version_at(TimePoint{} + hours(1)), 1u);
  EXPECT_EQ(cp.version_at(TimePoint{} + hours(4)), 2u);
  EXPECT_EQ(cp.next_change_after(TimePoint{} + hours(1)),
            TimePoint{} + hours(3));
  EXPECT_EQ(cp.last_change_at(TimePoint{} + hours(4)),
            TimePoint{} + hours(3));
  EXPECT_TRUE(cp.changes_in(TimePoint{}, TimePoint{} + hours(2)));
  EXPECT_FALSE(
      cp.changes_in(TimePoint{} + hours(1), TimePoint{} + hours(2)));
}

TEST(ChangeProcessTest, PeriodicRejectsBadPeriod) {
  EXPECT_THROW(ChangeProcess::periodic(Duration::zero(), hours(1), days(1)),
               std::invalid_argument);
}

TEST(ChangeProcessTest, PoissonDeterministicForRngState) {
  Rng a(5), b(5);
  const ChangeProcess cp1 = ChangeProcess::poisson(hours(6), days(30), a);
  const ChangeProcess cp2 = ChangeProcess::poisson(hours(6), days(30), b);
  EXPECT_EQ(cp1.total_changes(), cp2.total_changes());
  for (int h = 0; h < 30 * 24; h += 7) {
    EXPECT_EQ(cp1.version_at(TimePoint{} + hours(h)),
              cp2.version_at(TimePoint{} + hours(h)));
  }
}

TEST(ChangeProcessTest, PoissonMeanCountApproximatesRate) {
  // 30 days at mean interval 6h -> expect ~120 changes.
  Rng rng(7);
  double total = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(
        ChangeProcess::poisson(hours(6), days(30), rng).total_changes());
  }
  EXPECT_NEAR(total / trials, 120.0, 10.0);
}

TEST(ChangeProcessTest, PoissonRejectsNonPositiveInterval) {
  Rng rng(1);
  EXPECT_THROW(ChangeProcess::poisson(Duration::zero(), days(1), rng),
               std::invalid_argument);
}

TEST(ChangeProcessTest, VersionMonotoneNonDecreasing) {
  Rng rng(9);
  const ChangeProcess cp = ChangeProcess::poisson(hours(1), days(3), rng);
  std::uint64_t prev = 0;
  for (int m = 0; m < 3 * 24 * 60; m += 13) {
    const std::uint64_t v = cp.version_at(TimePoint{} + minutes(m));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(cp.version_at(TimePoint{} + days(30)), cp.total_changes());
}

}  // namespace
}  // namespace catalyst::server
