#include "cache/freshness.h"

#include <gtest/gtest.h>

#include "http/date.h"

namespace catalyst::cache {
namespace {

using http::Response;
using http::Status;

CacheEntry entry_with(const std::string& cache_control,
                      TimePoint response_time) {
  Response resp = Response::make(Status::Ok);
  if (!cache_control.empty()) {
    resp.headers.set(http::kCacheControl, cache_control);
  }
  resp.headers.set(http::kDate, http::format_http_date(response_time));
  CacheEntry entry;
  entry.response = std::move(resp);
  entry.request_time = response_time;
  entry.response_time = response_time;
  return entry;
}

TEST(FreshnessTest, MaxAgeGovernsLifetime) {
  const auto entry = entry_with("max-age=300", TimePoint{});
  EXPECT_EQ(freshness_lifetime(entry.response, false), seconds(300));
  EXPECT_TRUE(is_fresh(entry, TimePoint{} + seconds(299), false));
  EXPECT_FALSE(is_fresh(entry, TimePoint{} + seconds(300), false));
}

TEST(FreshnessTest, NoCacheAndNoStoreAreAlwaysStale) {
  EXPECT_EQ(freshness_lifetime(entry_with("no-cache", TimePoint{}).response,
                               true),
            Duration::zero());
  EXPECT_EQ(freshness_lifetime(entry_with("no-store", TimePoint{}).response,
                               true),
            Duration::zero());
  // no-cache wins even against an explicit max-age.
  EXPECT_EQ(freshness_lifetime(
                entry_with("no-cache, max-age=600", TimePoint{}).response,
                true),
            Duration::zero());
}

TEST(FreshnessTest, ExpiresMinusDate) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kDate, http::format_http_date(TimePoint{}));
  resp.headers.set(http::kExpires,
                   http::format_http_date(TimePoint{} + hours(2)));
  EXPECT_EQ(freshness_lifetime(resp, false), hours(2));
}

TEST(FreshnessTest, MaxAgeBeatsExpires) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kCacheControl, "max-age=60");
  resp.headers.set(http::kDate, http::format_http_date(TimePoint{}));
  resp.headers.set(http::kExpires,
                   http::format_http_date(TimePoint{} + hours(2)));
  EXPECT_EQ(freshness_lifetime(resp, false), seconds(60));
}

TEST(FreshnessTest, MalformedExpiresMeansExpired) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kDate, http::format_http_date(TimePoint{}));
  resp.headers.set(http::kExpires, "0");
  EXPECT_EQ(freshness_lifetime(resp, true), Duration::zero());
}

TEST(FreshnessTest, ExpiresInPastClampsToZero) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kDate,
                   http::format_http_date(TimePoint{} + hours(5)));
  resp.headers.set(http::kExpires, http::format_http_date(TimePoint{}));
  EXPECT_EQ(freshness_lifetime(resp, true), Duration::zero());
}

TEST(FreshnessTest, HeuristicTenPercentOfLastModifiedAge) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kDate,
                   http::format_http_date(TimePoint{} + days(10)));
  resp.headers.set(http::kLastModified,
                   http::format_http_date(TimePoint{}));
  // 10% of 10 days = 1 day, capped at 1 day.
  EXPECT_EQ(freshness_lifetime(resp, true), hours(24));
  EXPECT_EQ(freshness_lifetime(resp, false), Duration::zero());

  resp.headers.set(http::kLastModified,
                   http::format_http_date(TimePoint{} + days(9)));
  // 10% of 1 day = 2.4 h.
  EXPECT_EQ(freshness_lifetime(resp, true), hours(24) / 10);
}

TEST(FreshnessTest, NoValidatorsNoLifetime) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kDate, http::format_http_date(TimePoint{}));
  EXPECT_EQ(freshness_lifetime(resp, true), Duration::zero());
}

TEST(AgeTest, ResidentTimeDominates) {
  const auto entry = entry_with("max-age=100", TimePoint{} + hours(1));
  EXPECT_EQ(current_age(entry, TimePoint{} + hours(1) + seconds(30)),
            seconds(30));
}

TEST(AgeTest, ApparentAgeFromSkewedDate) {
  // The origin's Date is 10 s before the response arrived (network delay
  // or clock skew): apparent age starts at 10 s.
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kCacheControl, "max-age=100");
  resp.headers.set(http::kDate, http::format_http_date(TimePoint{}));
  CacheEntry entry;
  entry.response = std::move(resp);
  entry.response_time = TimePoint{} + seconds(10);
  EXPECT_EQ(current_age(entry, TimePoint{} + seconds(10)), seconds(10));
}

TEST(AgeTest, AgeHeaderRespected) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kDate, http::format_http_date(TimePoint{}));
  resp.headers.set(http::kAge, "50");
  CacheEntry entry;
  entry.response = std::move(resp);
  entry.response_time = TimePoint{};
  EXPECT_EQ(current_age(entry, TimePoint{} + seconds(10)), seconds(60));
}

CacheEntry negative_entry(Status status, const std::string& cache_control,
                          TimePoint response_time) {
  Response resp = Response::make(status);
  if (!cache_control.empty()) {
    resp.headers.set(http::kCacheControl, cache_control);
  }
  resp.headers.set(http::kDate, http::format_http_date(response_time));
  CacheEntry entry;
  entry.response = std::move(resp);
  entry.request_time = response_time;
  entry.response_time = response_time;
  return entry;
}

TEST(NegativeFreshnessTest, StatusClassification) {
  EXPECT_TRUE(is_negative_status(Status::NotFound));
  EXPECT_TRUE(is_negative_status(Status::Gone));
  EXPECT_FALSE(is_negative_status(Status::Ok));
  EXPECT_FALSE(is_negative_status(Status::InternalServerError));
}

TEST(NegativeFreshnessTest, DefaultTtlWithoutExplicitFreshness) {
  NegativePolicy policy;
  policy.enabled = true;
  const auto entry = negative_entry(Status::NotFound, "", TimePoint{});
  EXPECT_EQ(negative_freshness_lifetime(entry.response, policy),
            policy.default_ttl);
  EXPECT_TRUE(is_negative_fresh(entry, TimePoint{} + seconds(59), policy));
  EXPECT_FALSE(is_negative_fresh(entry, TimePoint{} + seconds(60), policy));
}

TEST(NegativeFreshnessTest, ExplicitMaxAgeHonoredWithinBound) {
  NegativePolicy policy;
  policy.enabled = true;
  const auto entry =
      negative_entry(Status::Gone, "max-age=120", TimePoint{});
  EXPECT_EQ(negative_freshness_lifetime(entry.response, policy),
            seconds(120));
  EXPECT_TRUE(is_negative_fresh(entry, TimePoint{} + seconds(119), policy));
  EXPECT_FALSE(is_negative_fresh(entry, TimePoint{} + seconds(120), policy));
}

TEST(NegativeFreshnessTest, GenerousMaxAgeClampedToPolicyBound) {
  // A misconfigured origin must not pin an error past max_ttl.
  NegativePolicy policy;
  policy.enabled = true;
  const auto entry =
      negative_entry(Status::NotFound, "max-age=31536000", TimePoint{});
  EXPECT_EQ(negative_freshness_lifetime(entry.response, policy),
            policy.max_ttl);
}

TEST(NegativeFreshnessTest, ExpiresHeaderClampedToPolicyBound) {
  NegativePolicy policy;
  policy.enabled = true;
  Response resp = Response::make(Status::NotFound);
  resp.headers.set(http::kDate, http::format_http_date(TimePoint{}));
  resp.headers.set(http::kExpires,
                   http::format_http_date(TimePoint{} + hours(48)));
  EXPECT_EQ(negative_freshness_lifetime(resp, policy), policy.max_ttl);
}

TEST(NegativeFreshnessTest, NoCacheAndNoStoreForceZero) {
  NegativePolicy policy;
  policy.enabled = true;
  EXPECT_EQ(negative_freshness_lifetime(
                negative_entry(Status::NotFound, "no-cache", TimePoint{})
                    .response,
                policy),
            Duration::zero());
  EXPECT_EQ(negative_freshness_lifetime(
                negative_entry(Status::Gone, "no-store", TimePoint{})
                    .response,
                policy),
            Duration::zero());
}

TEST(NegativeFreshnessTest, AgeHeaderShortensNegativeLifetime) {
  // A 404 relayed through an intermediary with Age: 50 has already burned
  // most of the 60 s default lifetime when it arrives.
  NegativePolicy policy;
  policy.enabled = true;
  Response resp = Response::make(Status::NotFound);
  resp.headers.set(http::kDate, http::format_http_date(TimePoint{}));
  resp.headers.set(http::kAge, "50");
  CacheEntry entry;
  entry.response = std::move(resp);
  entry.request_time = TimePoint{};
  entry.response_time = TimePoint{};
  EXPECT_TRUE(is_negative_fresh(entry, TimePoint{} + seconds(9), policy));
  EXPECT_FALSE(is_negative_fresh(entry, TimePoint{} + seconds(10), policy));
}

TEST(NegativeFreshnessTest, TightMaxTtlBoundsDefault) {
  NegativePolicy policy;
  policy.enabled = true;
  policy.default_ttl = seconds(60);
  policy.max_ttl = seconds(15);
  const auto entry = negative_entry(Status::NotFound, "", TimePoint{});
  EXPECT_EQ(negative_freshness_lifetime(entry.response, policy),
            seconds(15));
}

}  // namespace
}  // namespace catalyst::cache
