// Chunked transfer coding (RFC 9112 §7.1): serializer + incremental
// parser round trips.
#include <gtest/gtest.h>

#include "http/parser.h"
#include "http/serializer.h"

namespace catalyst::http {
namespace {

Response sample_response(std::size_t body_size) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(kContentType, "text/html");
  resp.body.reserve(body_size);
  for (std::size_t i = 0; i < body_size; ++i) {
    resp.body.push_back(static_cast<char>('a' + i % 26));
  }
  return resp;
}

TEST(ChunkedTest, RoundTripVariousChunkSizes) {
  const Response original = sample_response(10'000);
  for (const std::size_t chunk : {1u, 7u, 100u, 4096u, 20'000u}) {
    const std::string wire = serialize_chunked(original, chunk);
    ResponseParser parser;
    ASSERT_EQ(parser.feed(wire), ParseResult::Done) << "chunk=" << chunk;
    const Response parsed = parser.take();
    EXPECT_EQ(parsed.body, original.body) << "chunk=" << chunk;
    EXPECT_EQ(parsed.headers.get("Transfer-Encoding"), "chunked");
    EXPECT_FALSE(parsed.headers.contains(kContentLength));
  }
}

TEST(ChunkedTest, EmptyBody) {
  const Response original = sample_response(0);
  const std::string wire = serialize_chunked(original, 16);
  ResponseParser parser;
  ASSERT_EQ(parser.feed(wire), ParseResult::Done);
  EXPECT_TRUE(parser.take().body.empty());
}

TEST(ChunkedTest, IncrementalByteFeeding) {
  const Response original = sample_response(500);
  const std::string wire = serialize_chunked(original, 64);
  ResponseParser parser;
  ParseResult r = ParseResult::NeedMore;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    r = parser.feed(wire.substr(i, 1));
    if (i + 1 < wire.size()) {
      ASSERT_EQ(r, ParseResult::NeedMore) << "byte " << i;
    }
  }
  ASSERT_EQ(r, ParseResult::Done);
  EXPECT_EQ(parser.take().body, original.body);
}

TEST(ChunkedTest, WireFormatShape) {
  Response resp = Response::make(Status::Ok);
  resp.body = "hello world!";  // 12 bytes = 0xc
  const std::string wire = serialize_chunked(resp, 12);
  EXPECT_NE(wire.find("\r\nc\r\nhello world!\r\n0\r\n\r\n"),
            std::string::npos);
}

TEST(ChunkedTest, MalformedInputsRejected) {
  const char* head = "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
  {
    ResponseParser parser;  // non-hex chunk size
    EXPECT_EQ(parser.feed(std::string(head) + "zz\r\nhi\r\n0\r\n\r\n"),
              ParseResult::Error);
  }
  {
    ResponseParser parser;  // missing CRLF after chunk data
    EXPECT_EQ(parser.feed(std::string(head) + "2\r\nhiXX0\r\n\r\n"),
              ParseResult::Error);
  }
  {
    ResponseParser parser;  // bytes after the terminal chunk
    EXPECT_EQ(parser.feed(std::string(head) + "0\r\n\r\nextra"),
              ParseResult::Error);
  }
  {
    ResponseParser parser;  // unsupported coding
    EXPECT_EQ(parser.feed(
                  "HTTP/1.1 200 OK\r\nTransfer-Encoding: gzip\r\n\r\n"),
              ParseResult::Error);
  }
}

TEST(ChunkedTest, TruncatedStreamNeedsMore) {
  const char* head = "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
  ResponseParser parser;
  EXPECT_EQ(parser.feed(std::string(head) + "5\r\nhel"),
            ParseResult::NeedMore);
  EXPECT_EQ(parser.feed("lo\r\n"), ParseResult::NeedMore);
  EXPECT_EQ(parser.feed("0\r\n\r\n"), ParseResult::Done);
  EXPECT_EQ(parser.take().body, "hello");
}

}  // namespace
}  // namespace catalyst::http
