// End-to-end tests for the 103 Early Hints and Cache-Digest Push
// baselines — the related-work mechanisms the paper's idea refines.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/sitegen.h"

namespace catalyst::core {
namespace {

std::shared_ptr<server::Site> clone_site(int index) {
  workload::SitegenParams p;
  p.seed = 2024;
  p.site_index = index;
  p.clone_static_snapshot = true;
  return workload::generate_site(p);
}

TEST(EarlyHintsTest, SpeedsUpColdLoads) {
  const auto site = clone_site(0);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto base =
      run_revisit_pair(site, c, StrategyKind::Baseline, hours(6));
  const auto hints =
      run_revisit_pair(site, c, StrategyKind::EarlyHints, hours(6));
  // Hinted subresources start before the HTML body finishes: cold loads
  // get faster; nothing gets slower.
  EXPECT_LT(hints.cold.plt(), base.cold.plt());
  EXPECT_LE(to_millis(hints.revisit.plt()),
            to_millis(base.revisit.plt()) * 1.01);
  // Same resources fetched either way.
  EXPECT_EQ(hints.cold.resources_total, base.cold.resources_total);
}

TEST(EarlyHintsTest, StillPaysRevalidationRtts) {
  // Early Hints helps discovery, not validation: stale-but-unchanged
  // resources still produce conditional GETs on revisits, which is why
  // the paper's approach goes further.
  const auto site = clone_site(1);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto hints =
      run_revisit_pair(site, c, StrategyKind::EarlyHints, hours(6));
  const auto catalyst =
      run_revisit_pair(site, c, StrategyKind::Catalyst, hours(6));
  EXPECT_GT(hints.revisit.not_modified, catalyst.revisit.not_modified);
  EXPECT_GT(hints.revisit.plt(), catalyst.revisit.plt());
}

TEST(EarlyHintsTest, NoDuplicateFetches) {
  const auto site = clone_site(2);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto base =
      run_revisit_pair(site, c, StrategyKind::Baseline, hours(1));
  const auto hints =
      run_revisit_pair(site, c, StrategyKind::EarlyHints, hours(1));
  // Preload joining must not double-download: byte volume comparable to
  // baseline (plus the tiny 103 responses).
  EXPECT_LT(hints.cold.bytes_downloaded,
            base.cold.bytes_downloaded + KiB(8));
}

TEST(PushDigestTest, SkipsAlreadyCachedResources) {
  const auto site = clone_site(3);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto all =
      run_revisit_pair(site, c, StrategyKind::PushAll, hours(6));
  const auto digest =
      run_revisit_pair(site, c, StrategyKind::PushDigest, hours(6));
  // The digest suppresses pushes of cached content: far fewer bytes on
  // the revisit than push-all.
  EXPECT_LT(digest.revisit.bytes_downloaded,
            all.revisit.bytes_downloaded / 2);
  // Cold loads have an empty digest: both push everything.
  EXPECT_NEAR(static_cast<double>(digest.cold.bytes_downloaded),
              static_cast<double>(all.cold.bytes_downloaded),
              static_cast<double>(all.cold.bytes_downloaded) * 0.05);
}

TEST(PushDigestTest, DigestCannotExpressFreshness) {
  // The digest says "I have a copy", not "my copy is current": on a live
  // site, changed resources are NOT pushed (the client has *a* copy), so
  // the client still pays a conditional GET for them — the structural
  // weakness catalyst's ETag map fixes.
  workload::SitegenParams p;
  p.seed = 99;
  p.site_index = 4;
  p.clone_static_snapshot = false;
  const auto site = workload::generate_site(p);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto digest =
      run_revisit_pair(site, c, StrategyKind::PushDigest, days(1));
  // Some revisit traffic is revalidation/downloads despite push.
  EXPECT_GT(digest.revisit.from_network + digest.revisit.not_modified,
            0u);
}

TEST(StrategyNamesTest, NewKinds) {
  EXPECT_EQ(to_string(StrategyKind::PushDigest), "push-digest");
  EXPECT_EQ(to_string(StrategyKind::EarlyHints), "early-hints");
}

}  // namespace
}  // namespace catalyst::core
