// Edge-enabled fleet invariants: PoP partitioning is a pure function of
// the seed, the report stays bit-identical across thread counts, and an
// edge-disabled run serializes to the exact bytes it produced before the
// edge tier existed.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fleet/runner.h"
#include "fleet/user_model.h"

namespace catalyst::fleet {
namespace {

FleetParams small_fleet() {
  FleetParams params;
  params.shard_size = 4;
  params.user_model.site_catalog_size = 8;
  params.user_model.horizon = days(2);
  params.user_model.mean_visit_gap = hours(12);
  params.user_model.max_visits = 3;
  return params;
}

FleetParams edge_fleet() {
  FleetParams params = small_fleet();
  params.edge.pops = 3;
  params.edge.capacity = MiB(8);
  return params;
}

constexpr std::uint64_t kUsers = 24;

std::string run_fleet(FleetParams params, int threads) {
  return FleetRunner(std::move(params), kUsers, threads).run().serialize();
}

TEST(EdgeFleetTest, PopMappingIsAPureFunctionOfSeedAndUser) {
  std::set<int> pops_seen;
  for (std::uint64_t user = 0; user < 64; ++user) {
    const int pop = edge_pop_of(/*master_seed=*/2024, user, /*pops=*/3);
    EXPECT_GE(pop, 0);
    EXPECT_LT(pop, 3);
    EXPECT_EQ(edge_pop_of(2024, user, 3), pop);  // stable on re-query
    pops_seen.insert(pop);
  }
  // 64 users across 3 PoPs: every PoP gets somebody.
  EXPECT_EQ(pops_seen.size(), 3u);
  // The mapping keys off the seed, not just the user id.
  bool any_moved = false;
  for (std::uint64_t user = 0; user < 64; ++user) {
    any_moved |= edge_pop_of(2024, user, 3) != edge_pop_of(2025, user, 3);
  }
  EXPECT_TRUE(any_moved);
}

TEST(EdgeFleetTest, ThreadCountDoesNotChangeEdgeReportBytes) {
  const std::string one = run_fleet(edge_fleet(), 1);
  EXPECT_EQ(run_fleet(edge_fleet(), 8), one);
  // Rerunning is stable, not just coincidentally equal.
  EXPECT_EQ(run_fleet(edge_fleet(), 1), one);
}

TEST(EdgeFleetTest, DisabledEdgeLeavesReportUntouched) {
  // The "edge" section only exists on edge-enabled runs, so edge-off
  // reports keep their exact pre-edge byte layout.
  const std::string off = run_fleet(small_fleet(), 1);
  EXPECT_EQ(off.find("\"edge\""), std::string::npos);

  const std::string on = run_fleet(edge_fleet(), 1);
  EXPECT_NE(on.find("\"edge\""), std::string::npos);
  EXPECT_NE(on, off);
}

TEST(EdgeFleetTest, EdgeAccountingBalances) {
  FleetRunner runner(edge_fleet(), kUsers, 2);
  const FleetReport report = runner.run();

  ASSERT_EQ(report.edge_pops.size(), 3u);
  EdgePopReport total;
  for (const auto& [pop, stats] : report.edge_pops) {
    EXPECT_GE(pop, 0);
    EXPECT_LT(pop, 3);
    total.merge(stats);
  }
  EXPECT_GT(total.requests, 0u);
  // Every edge request resolves as exactly one of hit / revalidated / miss.
  EXPECT_EQ(total.requests,
            total.hits + total.revalidated_hits + total.misses);
  // Origin fetches only happen for requests, never spontaneously.
  EXPECT_LE(total.origin_fetches, total.requests);
  EXPECT_LE(total.origin_not_modified, total.origin_fetches);
}

TEST(EdgeFleetTest, EdgeRunsOneShardPerPop) {
  FleetRunner runner(edge_fleet(), kUsers, 2);
  EXPECT_EQ(runner.shard_count(), 3u);
  const FleetReport report = runner.run();
  EXPECT_EQ(report.users, kUsers);
}

}  // namespace
}  // namespace catalyst::fleet
