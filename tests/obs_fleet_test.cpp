// Fleet-level observability invariants:
//
//  * breakdown off: the serialized report is byte-for-byte what a
//    breakdown-on run produces minus its "phases" sections — recording
//    perturbs nothing else in the report;
//  * breakdown on: report bytes (including the phase quantiles) are
//    bit-identical for any --threads / shard split;
//  * the edge + flash server-side phases actually populate on a two-tier
//    fleet, and the self-profile op counters track engine events.
#include <gtest/gtest.h>

#include <string>

#include "fleet/runner.h"
#include "obs/phase.h"
#include "obs/selfprof.h"

namespace catalyst::fleet {
namespace {

FleetParams small_fleet() {
  FleetParams params;
  params.shard_size = 4;
  params.user_model.site_catalog_size = 8;
  params.user_model.horizon = days(2);
  params.user_model.mean_visit_gap = hours(12);
  params.user_model.max_visits = 3;
  return params;
}

FleetParams flash_fleet() {
  FleetParams params = small_fleet();
  params.edge.pops = 2;
  // RAM small enough to evict constantly: demotions feed the flash tier,
  // so flash reads (and their kFlashIo phase samples) actually happen.
  params.edge.capacity = MiB(1);
  params.edge.flash_capacity = MiB(8);
  return params;
}

constexpr std::uint64_t kUsers = 24;

FleetReport run_fleet(FleetParams params, int threads) {
  return FleetRunner(std::move(params), kUsers, threads).run();
}

TEST(ObsFleetTest, BreakdownOffReportHasNoPhasesSection) {
  const std::string off = run_fleet(small_fleet(), 2).serialize();
  EXPECT_EQ(off.find("\"phases\""), std::string::npos);
  EXPECT_EQ(off.find("\"baseline_phases\""), std::string::npos);
}

TEST(ObsFleetTest, BreakdownOnlyAddsPhasesSections) {
  const std::string off = run_fleet(small_fleet(), 2).serialize();

  FleetParams on_params = small_fleet();
  on_params.breakdown = true;
  FleetReport on = run_fleet(on_params, 2);
  EXPECT_TRUE(on.phases.any());
  EXPECT_TRUE(on.baseline_phases.any());
  EXPECT_NE(on.serialize().find("\"phases\""), std::string::npos);

  // Strip the breakdown from the on-report: everything else must
  // serialize to the exact bytes of the off-run — phase recording is a
  // pure observer.
  on.phases = obs::PhaseBreakdown{};
  on.baseline_phases = obs::PhaseBreakdown{};
  EXPECT_EQ(on.serialize(), off);
}

TEST(ObsFleetTest, BreakdownBytesAreThreadInvariant) {
  FleetParams params = small_fleet();
  params.breakdown = true;
  const std::string one = run_fleet(params, 1).serialize();
  EXPECT_EQ(run_fleet(params, 8).serialize(), one);
  // And stable across reruns, not just coincidentally equal.
  EXPECT_EQ(run_fleet(params, 1).serialize(), one);
}

TEST(ObsFleetTest, BreakdownBytesAreShardInvariant) {
  FleetParams one_each = small_fleet();
  one_each.breakdown = true;
  one_each.shard_size = 1;
  FleetParams all_in_one = small_fleet();
  all_in_one.breakdown = true;
  all_in_one.shard_size = kUsers;
  EXPECT_EQ(run_fleet(one_each, 8).serialize(),
            run_fleet(all_in_one, 1).serialize());
}

TEST(ObsFleetTest, TwoTierFleetPopulatesServerSidePhases) {
  FleetParams params = flash_fleet();
  params.breakdown = true;
  const FleetReport report = run_fleet(params, 2);
  EXPECT_GT(report.phases.of(obs::Phase::kEdgeLookup).count(), 0u);
  EXPECT_GT(report.phases.of(obs::Phase::kFlashIo).count(), 0u);
  // Bit-identical across threads with the full two-tier phase set too.
  EXPECT_EQ(run_fleet(params, 8).serialize(),
            run_fleet(params, 1).serialize());
}

TEST(ObsFleetTest, SelfProfileCountersTrackEngineEvents) {
  const FleetReport report = run_fleet(small_fleet(), 2);
  // Op counters are always on: every dispatched loop event and every
  // replayed user is tallied regardless of flags.
  EXPECT_EQ(report.prof.ops[obs::sub_index(obs::Sub::kLoop)],
            report.events_executed);
  EXPECT_EQ(report.prof.ops[obs::sub_index(obs::Sub::kFleet)], kUsers);
  // Wall-clock timers stay zero unless obs::set_timing(true) was called.
  EXPECT_EQ(report.prof.total_ns(), 0u);
}

}  // namespace
}  // namespace catalyst::fleet
