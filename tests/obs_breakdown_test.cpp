// Phase-breakdown unit + engine-integration invariants:
//
//  * PhaseHistogram folds samples into exact integer buckets and merges
//    identically for any shard split / merge order.
//  * Client-side phases partition fetch time: summed over a visit pair,
//    dns+connect+tls+queue+ttfb+transfer+sw+cache+backoff equals the sum
//    of per-fetch (finish - start) from the trace log, as exact integers.
//  * Attaching a Recorder is a pure observation: results are bit-identical
//    with and without one.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "obs/histogram.h"
#include "obs/phase.h"
#include "obs/recorder.h"
#include "workload/sitegen.h"

namespace catalyst {
namespace {

using obs::Phase;
using obs::PhaseHistogram;

TEST(PhaseHistogramTest, CountsTotalsAndQuantiles) {
  PhaseHistogram h;
  h.add(microseconds(10));
  h.add(microseconds(100));
  h.add(milliseconds(1));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.total_ns(), 10'000u + 100'000u + 1'000'000u);
  const double p50 = h.quantile_ms(50);
  const double p99 = h.quantile_ms(99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
  // The largest sample is 1 ms; its bucket's upper edge is < 1.334 ms
  // (log10 axis, 8 buckets per decade).
  EXPECT_LT(p99, 1.334);
}

TEST(PhaseHistogramTest, IgnoresNonPositiveDurations) {
  PhaseHistogram h;
  h.add(Duration::zero());
  h.add(Duration{-5});
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile_ms(50), 0.0);
}

TEST(PhaseHistogramTest, ClampsToAxisEnds) {
  PhaseHistogram h;
  h.add(Duration{1});       // 0.001 µs — below the 1 µs axis floor
  h.add(seconds(10'000));   // above the 100 s axis ceiling
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(PhaseHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(PhaseHistogramTest, MergeIsExactForAnySplitAndOrder) {
  std::vector<Duration> samples;
  for (int i = 1; i <= 500; ++i) {
    samples.push_back(microseconds((i * 37) % 100'000 + 1));
  }
  PhaseHistogram whole;
  for (const Duration d : samples) whole.add(d);

  PhaseHistogram parts[3];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    parts[i % 3].add(samples[i]);
  }
  PhaseHistogram fwd = parts[0];
  fwd.merge(parts[1]);
  fwd.merge(parts[2]);
  PhaseHistogram rev = parts[2];
  rev.merge(parts[1]);
  rev.merge(parts[0]);

  for (std::size_t b = 0; b < PhaseHistogram::kBuckets; ++b) {
    EXPECT_EQ(fwd.bucket(b), whole.bucket(b)) << "bucket " << b;
    EXPECT_EQ(rev.bucket(b), whole.bucket(b)) << "bucket " << b;
  }
  EXPECT_EQ(fwd.count(), whole.count());
  EXPECT_EQ(fwd.total_ns(), whole.total_ns());
  EXPECT_EQ(fwd.quantile_ms(95), rev.quantile_ms(95));
  EXPECT_EQ(fwd.quantile_ms(95), whole.quantile_ms(95));
}

TEST(PhaseTimelineTest, AccumulatesAndTotals) {
  obs::PhaseTimeline t;
  t.add(Phase::kConnect, milliseconds(10));
  t.add(Phase::kTtfb, milliseconds(5));
  t.add(Phase::kTtfb, milliseconds(5));
  EXPECT_EQ(t.at(Phase::kConnect), milliseconds(10));
  EXPECT_EQ(t.at(Phase::kTtfb), milliseconds(10));
  EXPECT_EQ(t.total(), milliseconds(20));
}

TEST(PhaseBreakdownTest, ClientTotalExcludesServerSidePhases) {
  obs::PhaseBreakdown b;
  b.record(Phase::kTtfb, milliseconds(4));
  b.record(Phase::kEdgeLookup, milliseconds(3));
  b.record(Phase::kFlashIo, milliseconds(2));
  // EdgeLookup/FlashIo decompose the client's Ttfb; adding them to the
  // client sum would double-count that time.
  EXPECT_EQ(b.client_total_ns(), milliseconds(4).count());
  EXPECT_TRUE(b.any());
}

TEST(RecorderTest, TimelineCommitSkipsEmptyPhases) {
  obs::Recorder rec;
  obs::PhaseTimeline t;
  t.add(Phase::kTtfb, milliseconds(1));
  rec.record(t);
  EXPECT_EQ(rec.breakdown().of(Phase::kTtfb).count(), 1u);
  for (const Phase p : obs::kAllPhases) {
    if (p == Phase::kTtfb) continue;
    EXPECT_TRUE(rec.breakdown().of(p).empty());
  }
  rec.reset();
  EXPECT_FALSE(rec.breakdown().any());
}

std::shared_ptr<server::Site> test_site(int index) {
  workload::SitegenParams p;
  p.seed = 7;
  p.site_index = index;
  p.clone_static_snapshot = true;
  return workload::generate_site(p);
}

TEST(BreakdownIntegrationTest, ClientPhasesSumToTracedFetchTime) {
  obs::Recorder rec;
  core::StrategyOptions opts;
  opts.phase_recorder = &rec;
  const auto outcome = core::run_revisit_pair(
      test_site(0), netsim::NetworkConditions::median_5g(),
      core::StrategyKind::Baseline, hours(6), opts);

  std::int64_t traced_ns = 0;
  for (const client::PageLoadResult* r : {&outcome.cold, &outcome.revisit}) {
    for (const netsim::FetchTrace& t : r->trace.traces()) {
      traced_ns += (t.finish - t.start).count();
    }
  }
  ASSERT_GT(traced_ns, 0);
  // Exact integer accounting: every nanosecond of every fetch lands in
  // exactly one client-side phase.
  EXPECT_EQ(rec.breakdown().client_total_ns(), traced_ns);
}

TEST(BreakdownIntegrationTest, RecorderIsAPureObserver) {
  const auto plain = core::run_revisit_pair(
      test_site(1), netsim::NetworkConditions::median_5g(),
      core::StrategyKind::Catalyst, hours(6));
  obs::Recorder rec;
  core::StrategyOptions opts;
  opts.phase_recorder = &rec;
  const auto observed = core::run_revisit_pair(
      test_site(1), netsim::NetworkConditions::median_5g(),
      core::StrategyKind::Catalyst, hours(6), opts);

  EXPECT_EQ(plain.cold.plt(), observed.cold.plt());
  EXPECT_EQ(plain.revisit.plt(), observed.revisit.plt());
  EXPECT_EQ(plain.revisit.rtts, observed.revisit.rtts);
  EXPECT_EQ(plain.revisit.bytes_downloaded, observed.revisit.bytes_downloaded);
  EXPECT_TRUE(rec.breakdown().any());
}

TEST(BreakdownIntegrationTest, CatalystRecordsServiceWorkerPhases) {
  obs::Recorder rec;
  core::StrategyOptions opts;
  opts.phase_recorder = &rec;
  const auto outcome = core::run_revisit_pair(
      test_site(2), netsim::NetworkConditions::median_5g(),
      core::StrategyKind::Catalyst, hours(6), opts);
  ASSERT_GT(outcome.revisit.from_sw_cache, 0u);
  // Every SW cache serve passed through the kSwDecision phase.
  EXPECT_GE(rec.breakdown().of(Phase::kSwDecision).count(),
            outcome.revisit.from_sw_cache);
}

}  // namespace
}  // namespace catalyst
