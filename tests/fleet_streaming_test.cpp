// Streaming shard engine: a bounded live-user arena with park/revive must
// (a) never exceed its occupancy limit, (b) produce a report byte-identical
// to the materialise-everything engine, and (c) stay byte-identical across
// thread counts. TSan-labeled: the incremental shard merge and the live
// progress counters ride worker threads.
//
// The default fleet is sized for sanitizer budgets (single-digit seconds
// in a Release build). Set CATALYST_STREAMING_FULL=1 to run the full
// 50 000-user / 512-arena configuration from the issue checklist — the
// same properties at the scale tools/run_checks.sh gates with fleetsim.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fleet/runner.h"

namespace catalyst::fleet {
namespace {

bool full_scale() {
  const char* env = std::getenv("CATALYST_STREAMING_FULL");
  return env != nullptr && env[0] == '1';
}

std::uint64_t fleet_users() { return full_scale() ? 50000 : 1200; }
std::uint64_t arena_limit() { return full_scale() ? 512 : 96; }

FleetParams fleet_params(std::uint64_t max_live_users) {
  FleetParams params;
  params.user_model.master_seed = 31;
  params.user_model.site_catalog_size = 3;
  params.user_model.max_visits = 3;
  params.user_model.mean_visit_gap = hours(48);
  params.strategy = core::StrategyKind::Catalyst;
  params.baseline = core::StrategyKind::Catalyst;  // single arm: cost
  params.max_live_users = max_live_users;
  return params;
}

TEST(FleetStreamingTest, ArenaOccupancyNeverExceedsLimit) {
  FleetRunner runner(fleet_params(arena_limit()), fleet_users(), 2);
  const FleetReport report = runner.run();
  ASSERT_GT(report.parking.parks, 0u)
      << "fleet too small to exercise parking";
  EXPECT_EQ(report.parking.parks, report.parking.revives)
      << "every parked user must be revived (none have visits left over)";
  EXPECT_EQ(report.parking.corrupt_revivals, 0u);
  EXPECT_GT(report.parking.live_users_peak, 0u);
  EXPECT_LE(report.parking.live_users_peak, arena_limit());
  EXPECT_GT(report.parking.parked_bytes_peak, 0u);
}

TEST(FleetStreamingTest, ReportMatchesMaterialiseEverythingEngine) {
  FleetRunner legacy(fleet_params(0), fleet_users(), 2);
  const std::string legacy_bytes = legacy.run().serialize();

  FleetRunner streaming(fleet_params(arena_limit()), fleet_users(), 2);
  const std::string streaming_bytes = streaming.run().serialize();

  EXPECT_EQ(streaming_bytes, legacy_bytes);
}

TEST(FleetStreamingTest, ReportIsThreadCountInvariant) {
  FleetRunner t1(fleet_params(arena_limit()), fleet_users(), 1);
  const std::string one = t1.run().serialize();
  FleetRunner t4(fleet_params(arena_limit()), fleet_users(), 4);
  const std::string four = t4.run().serialize();
  EXPECT_EQ(one, four);
}

TEST(FleetStreamingTest, ArenaSizeDoesNotChangeReportBytes) {
  // The arena limit is pure scheduling: any limit ≥ 1 must yield the
  // same bytes (parking cadence changes, results do not). Tiny fleet —
  // a 1-slot arena parks on every user interleave.
  FleetParams params = fleet_params(1);
  FleetRunner tight(params, 64, 2);
  const std::string one_slot = tight.run().serialize();
  params.max_live_users = 32;
  FleetRunner roomy(params, 64, 2);
  EXPECT_EQ(roomy.run().serialize(), one_slot);
}

TEST(FleetStreamingTest, IncompatibleConfigFallsBackToLegacyEngine) {
  // fleetsim rejects these combinations at the CLI, but a library caller
  // can hand Shard any FleetParams: strategies with cross-visit server
  // state must fall back to the legacy engine (no parking) instead of
  // streaming with state that park/revive cannot snapshot.
  FleetParams params = fleet_params(0);
  params.strategy = core::StrategyKind::CatalystLearned;
  params.baseline = core::StrategyKind::Baseline;
  ASSERT_FALSE(params.streaming_compatible());
  FleetRunner legacy(params, 64, 2);
  const std::string legacy_bytes = legacy.run().serialize();

  params.max_live_users = 8;
  FleetRunner guarded(params, 64, 2);
  const FleetReport report = guarded.run();
  EXPECT_EQ(report.parking.parks, 0u)
      << "incompatible config must not stream";
  EXPECT_EQ(report.serialize(), legacy_bytes);
}

}  // namespace
}  // namespace catalyst::fleet
