// Record/replay traces: bit-identical across thread counts, divergence
// detection, and checked-in golden traces for the three main arms.
//
// Golden files live in tests/golden/ (CATALYST_GOLDEN_DIR). To regenerate
// after an intentional behaviour change:
//   CATALYST_WRITE_GOLDEN=1 ./tests/check_replay_test
// then review the diff — a golden churn is a simulation-visible change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "check/replay.h"
#include "fleet/runner.h"

namespace catalyst {
namespace {

/// Small but representative fleet: live change processes (so staleness is
/// possible), multi-visit users, oracle + tracing on.
fleet::FleetParams trace_params(core::StrategyKind strategy, int edge_pops) {
  fleet::FleetParams params;
  params.user_model.master_seed = 99;
  params.user_model.site_catalog_size = 4;
  params.user_model.clone_static_snapshot = false;
  params.user_model.max_visits = 4;
  params.strategy = strategy;
  params.baseline = strategy;  // no comparison replay: traces only
  params.options.byte_oracle = true;
  params.trace_users = 4;
  params.edge.pops = edge_pops;
  return params;
}

constexpr std::uint64_t kUsers = 6;

std::string golden_path(const std::string& name) {
  return std::string(CATALYST_GOLDEN_DIR) + "/" + name + ".jsonl";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void check_against_golden(const std::string& name,
                          fleet::FleetParams params) {
  fleet::FleetRunner runner(params, kUsers, 2);
  const std::string traces = runner.run().traces_jsonl();
  ASSERT_FALSE(traces.empty());
  if (std::getenv("CATALYST_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(name), std::ios::binary);
    out << traces;
    GTEST_SKIP() << "golden rewritten: " << golden_path(name);
  }
  const std::string golden = read_file(golden_path(name));
  ASSERT_FALSE(golden.empty())
      << "missing golden " << golden_path(name)
      << " — regenerate with CATALYST_WRITE_GOLDEN=1";
  // diff_traces pinpoints the first divergent line; EXPECT_EQ on the
  // full blobs would drown the signal.
  EXPECT_EQ(check::diff_traces(golden, traces), "");
}

TEST(GoldenTraceTest, Baseline) {
  check_against_golden("baseline",
                       trace_params(core::StrategyKind::Baseline, 0));
}

TEST(GoldenTraceTest, Catalyst) {
  check_against_golden("catalyst",
                       trace_params(core::StrategyKind::Catalyst, 0));
}

TEST(GoldenTraceTest, CatalystEdge) {
  check_against_golden("catalyst_edge",
                       trace_params(core::StrategyKind::Catalyst, 2));
}

TEST(ReplayTest, TracesBitIdenticalAcrossThreadCounts) {
  const fleet::FleetParams params =
      trace_params(core::StrategyKind::Catalyst, 2);
  std::string reference;
  std::string reference_report;
  for (const int threads : {1, 2, 4, 8}) {
    fleet::FleetRunner runner(params, kUsers, threads);
    const fleet::FleetReport report = runner.run();
    const std::string traces = report.traces_jsonl();
    ASSERT_FALSE(traces.empty());
    if (reference.empty()) {
      reference = traces;
      reference_report = report.serialize();
      continue;
    }
    EXPECT_EQ(check::diff_traces(reference, traces), "")
        << "threads=" << threads;
    EXPECT_EQ(report.serialize(), reference_report)
        << "threads=" << threads;
  }
}

TEST(ReplayTest, RecordReplayIsDeterministic) {
  // The literal record/replay contract: running the identical config
  // twice produces byte-identical event streams.
  const fleet::FleetParams params =
      trace_params(core::StrategyKind::Baseline, 0);
  const std::string first =
      fleet::FleetRunner(params, kUsers, 2).run().traces_jsonl();
  const std::string second =
      fleet::FleetRunner(params, kUsers, 2).run().traces_jsonl();
  EXPECT_EQ(check::diff_traces(first, second), "");
}

TEST(ReplayTest, DiffTracesPinpointsFirstDivergence) {
  const std::string recorded = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n";
  EXPECT_EQ(check::diff_traces(recorded, recorded), "");
  const std::string diverged = "{\"a\":1}\n{\"b\":9}\n{\"c\":3}\n";
  const std::string report = check::diff_traces(recorded, diverged);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("line 2"), std::string::npos) << report;
  // Length mismatch is also a divergence.
  EXPECT_FALSE(check::diff_traces(recorded, "{\"a\":1}\n").empty());
}

TEST(ReplayTest, OracleCountersRideTheReport) {
  fleet::FleetParams params = trace_params(core::StrategyKind::Catalyst, 0);
  fleet::FleetReport report = fleet::FleetRunner(params, kUsers, 2).run();
  EXPECT_TRUE(report.oracle.any());
  EXPECT_GT(report.oracle.checked, 0u);
  EXPECT_EQ(report.oracle.violations, 0u);
  EXPECT_NE(report.serialize().find("\"oracle\""), std::string::npos);

  // Oracle off: the report must serialize to something containing no
  // oracle section at all (byte-identity with pre-oracle builds).
  params.options.byte_oracle = false;
  params.trace_users = 0;
  const fleet::FleetReport off =
      fleet::FleetRunner(params, kUsers, 2).run();
  EXPECT_FALSE(off.oracle.any());
  EXPECT_EQ(off.serialize().find("\"oracle\""), std::string::npos);
  EXPECT_TRUE(off.traces_jsonl().empty());
}

}  // namespace
}  // namespace catalyst
