#include "html/tokenizer.h"

#include <gtest/gtest.h>

namespace catalyst::html {
namespace {

TEST(TokenizerTest, SimpleDocument) {
  const auto tokens = Tokenizer::tokenize_all(
      "<!DOCTYPE html><html><body>hi</body></html>");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].type, Token::Type::Doctype);
  EXPECT_EQ(tokens[1].type, Token::Type::StartTag);
  EXPECT_EQ(tokens[1].data, "html");
  EXPECT_EQ(tokens[3].type, Token::Type::Text);
  EXPECT_EQ(tokens[3].data, "hi");
  EXPECT_EQ(tokens[5].type, Token::Type::EndTag);
}

TEST(TokenizerTest, AttributesQuotedAndUnquoted) {
  const auto tokens = Tokenizer::tokenize_all(
      "<img src=\"a.png\" alt='x y' width=10 hidden>");
  ASSERT_EQ(tokens.size(), 1u);
  const auto& attrs = tokens[0].attributes;
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_EQ(attrs[0].name, "src");
  EXPECT_EQ(attrs[0].value, "a.png");
  EXPECT_EQ(attrs[1].value, "x y");
  EXPECT_EQ(attrs[2].value, "10");
  EXPECT_EQ(attrs[3].name, "hidden");
  EXPECT_EQ(attrs[3].value, "");
}

TEST(TokenizerTest, TagAndAttributeNamesLowercased) {
  const auto tokens = Tokenizer::tokenize_all("<DIV CLASS=\"X\">");
  EXPECT_EQ(tokens[0].data, "div");
  EXPECT_EQ(tokens[0].attributes[0].name, "class");
  EXPECT_EQ(tokens[0].attributes[0].value, "X");  // values keep case
}

TEST(TokenizerTest, SelfClosingFlag) {
  const auto tokens = Tokenizer::tokenize_all("<br/><img src=x />");
  EXPECT_TRUE(tokens[0].self_closing);
  EXPECT_TRUE(tokens[1].self_closing);
  EXPECT_EQ(tokens[1].attributes[0].value, "x");
}

TEST(TokenizerTest, Comments) {
  const auto tokens =
      Tokenizer::tokenize_all("a<!-- <script>nope</script> -->b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, Token::Type::Comment);
  EXPECT_EQ(tokens[1].data, " <script>nope</script> ");
}

TEST(TokenizerTest, ScriptContentIsRawText) {
  const auto tokens = Tokenizer::tokenize_all(
      "<script>if (a < b && x > 1) { run('<div>'); }</script>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].data, "script");
  EXPECT_EQ(tokens[1].type, Token::Type::Text);
  EXPECT_EQ(tokens[1].data, "if (a < b && x > 1) { run('<div>'); }");
  EXPECT_EQ(tokens[2].type, Token::Type::EndTag);
  EXPECT_EQ(tokens[2].data, "script");
}

TEST(TokenizerTest, StyleContentIsRawText) {
  const auto tokens = Tokenizer::tokenize_all(
      "<style>a > b { color: red }</style>");
  EXPECT_EQ(tokens[1].data, "a > b { color: red }");
}

TEST(TokenizerTest, RawTextEndTagCaseInsensitive) {
  const auto tokens =
      Tokenizer::tokenize_all("<script>x</SCRIPT>after");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].data, "x");
  EXPECT_EQ(tokens[2].type, Token::Type::EndTag);
}

TEST(TokenizerTest, UnterminatedScriptConsumesRest) {
  const auto tokens = Tokenizer::tokenize_all("<script>never ends");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1].data, "never ends");
}

TEST(TokenizerTest, StrayLessThanIsText) {
  const auto tokens = Tokenizer::tokenize_all("1 < 2 and 3 > 2");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, Token::Type::Text);
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tokenizer::tokenize_all("").empty());
}

TEST(TokenizerTest, AttributeWhitespaceVariants) {
  const auto tokens =
      Tokenizer::tokenize_all("<a href = \"x\"  rel =stylesheet >");
  const auto& attrs = tokens[0].attributes;
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].value, "x");
  EXPECT_EQ(attrs[1].value, "stylesheet");
}

}  // namespace
}  // namespace catalyst::html
