#include "cache/storage.h"

#include <gtest/gtest.h>

namespace catalyst::cache {
namespace {

CacheEntry entry_of_size(std::size_t body_bytes) {
  CacheEntry entry;
  entry.response = http::Response::make(http::Status::Ok);
  entry.response.body = std::string(body_bytes, 'x');
  return entry;
}

TEST(LruStoreTest, PutGetRoundTrip) {
  LruStore store(KiB(64));
  EXPECT_TRUE(store.put("a", entry_of_size(100)));
  ASSERT_NE(store.get("a"), nullptr);
  EXPECT_EQ(store.get("a")->response.body.size(), 100u);
  EXPECT_EQ(store.get("missing"), nullptr);
  EXPECT_EQ(store.entry_count(), 1u);
}

TEST(LruStoreTest, PutReplacesExisting) {
  LruStore store(KiB(64));
  store.put("a", entry_of_size(100));
  store.put("a", entry_of_size(200));
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.get("a")->response.body.size(), 200u);
}

TEST(LruStoreTest, EvictsLeastRecentlyUsed) {
  // Each entry costs body + head + 64 bookkeeping; size the store for
  // roughly three entries.
  LruStore store(3000);
  store.put("a", entry_of_size(700));
  store.put("b", entry_of_size(700));
  store.put("c", entry_of_size(700));
  // Touch "a" so "b" becomes the LRU victim.
  ASSERT_NE(store.get("a"), nullptr);
  store.put("d", entry_of_size(700));
  EXPECT_NE(store.get("a"), nullptr);
  EXPECT_EQ(store.get("b"), nullptr);  // evicted
  EXPECT_NE(store.get("c"), nullptr);
  EXPECT_NE(store.get("d"), nullptr);
  EXPECT_GE(store.evictions(), 1u);
}

TEST(LruStoreTest, PeekDoesNotTouchRecency) {
  LruStore store(3000);
  store.put("a", entry_of_size(700));
  store.put("b", entry_of_size(700));
  store.put("c", entry_of_size(700));
  ASSERT_NE(store.peek("a"), nullptr);  // peek must NOT refresh "a"
  store.put("d", entry_of_size(700));
  EXPECT_EQ(store.get("a"), nullptr);  // still evicted as true LRU
}

TEST(LruStoreTest, OversizedEntryRejected) {
  LruStore store(100);
  EXPECT_FALSE(store.put("big", entry_of_size(500)));
  EXPECT_EQ(store.entry_count(), 0u);
}

TEST(LruStoreTest, SizeAccountingConsistent) {
  LruStore store(KiB(64));
  store.put("a", entry_of_size(100));
  store.put("b", entry_of_size(200));
  const ByteCount before = store.size_bytes();
  EXPECT_GT(before, 300u);
  store.erase("a");
  EXPECT_LT(store.size_bytes(), before);
  store.clear();
  EXPECT_EQ(store.size_bytes(), 0u);
  EXPECT_EQ(store.entry_count(), 0u);
}

TEST(LruStoreTest, EraseReturnsWhetherPresent) {
  LruStore store(KiB(4));
  store.put("a", entry_of_size(10));
  EXPECT_TRUE(store.erase("a"));
  EXPECT_FALSE(store.erase("a"));
}

TEST(LruStoreTest, MruOrderReflectsAccess) {
  LruStore store(KiB(64));
  store.put("a", entry_of_size(10));
  store.put("b", entry_of_size(10));
  store.get("a");
  const auto keys = store.keys_mru_order();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

}  // namespace
}  // namespace catalyst::cache
