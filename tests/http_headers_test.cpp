#include "http/headers.h"

#include <gtest/gtest.h>

namespace catalyst::http {
namespace {

TEST(HeadersTest, CaseInsensitiveLookup) {
  Headers h;
  h.add("Content-Type", "text/html");
  EXPECT_EQ(h.get("content-type"), "text/html");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(h.get("content-length").has_value());
}

TEST(HeadersTest, AddAllowsDuplicatesGetReturnsFirst) {
  Headers h;
  h.add("Set-Cookie", "a=1");
  h.add("Set-Cookie", "b=2");
  EXPECT_EQ(h.get("set-cookie"), "a=1");
  const auto all = h.get_all("Set-Cookie");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1], "b=2");
}

TEST(HeadersTest, SetReplacesAll) {
  Headers h;
  h.add("X", "1");
  h.add("X", "2");
  h.set("x", "3");
  EXPECT_EQ(h.get_all("X").size(), 1u);
  EXPECT_EQ(h.get("X"), "3");
}

TEST(HeadersTest, RemoveReturnsCount) {
  Headers h;
  h.add("A", "1");
  h.add("a", "2");
  h.add("B", "3");
  EXPECT_EQ(h.remove("A"), 2u);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.remove("missing"), 0u);
}

TEST(HeadersTest, InsertionOrderPreserved) {
  Headers h;
  h.add("Z", "1");
  h.add("A", "2");
  EXPECT_EQ(h.fields()[0].name, "Z");
  EXPECT_EQ(h.fields()[1].name, "A");
}

TEST(HeadersTest, WireSizeCountsNameColonSpaceValueCrlf) {
  Headers h;
  h.add("Host", "example.com");  // 4 + 2 + 11 + 2 = 19
  EXPECT_EQ(h.wire_size(), 19u);
  h.add("A", "b");  // + 1 + 2 + 1 + 2 = 6
  EXPECT_EQ(h.wire_size(), 25u);
}

TEST(HeadersTest, EqualityIsCaseInsensitiveOnNames) {
  Headers a, b;
  a.add("ETag", "\"x\"");
  b.add("etag", "\"x\"");
  EXPECT_EQ(a, b);
  b.set("etag", "\"y\"");
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace catalyst::http
