// ParkedUser codec round-trips: 1k seeded random user states snapshot to
// deterministic bytes, restore(snapshot(s)) replays the next visit
// behaviourally identically (same hits / misses / conditional GETs, same
// timings), and corrupted blobs — truncated, bit-flipped, wrong-version —
// fail closed into a cold revive without touching the testbed.
#include "fleet/parked.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "check/replay.h"
#include "core/experiment.h"
#include "core/testbed.h"
#include "fleet/user_model.h"
#include "util/hash.h"
#include "util/rng.h"
#include "workload/sitegen.h"

namespace catalyst::fleet {
namespace {

constexpr std::uint64_t kStates = 1000;

UserModelParams model_params() {
  UserModelParams params;
  params.master_seed = 0xfeed;
  params.site_catalog_size = 12;
  params.max_visits = 4;
  // Exercise content churn (revalidations / 304s on revisit).
  params.clone_static_snapshot = false;
  return params;
}

/// Site catalog shared across cases; every 4th state uses a catalog with
/// an error model so negative-cache entries land in the parked blob.
std::shared_ptr<server::Site> site_for(int site_index, bool errors) {
  static std::map<std::pair<int, bool>, std::shared_ptr<server::Site>> memo;
  auto& slot = memo[{site_index, errors}];
  if (!slot) {
    workload::SitegenParams sp;
    sp.seed = model_params().sitegen_seed;
    sp.site_index = site_index;
    sp.clone_static_snapshot = false;
    if (errors) {
      sp.errors.dead_link_fraction = 0.08;
      sp.errors.gone_link_fraction = 0.04;
      sp.errors.soft404_fraction = 0.04;
    }
    slot = workload::generate_site(sp);
  }
  return slot;
}

struct StateCase {
  UserProfile profile;
  std::shared_ptr<server::Site> site;
  core::StrategyKind kind = core::StrategyKind::Catalyst;
  netsim::FaultSpec faults;
  TimePoint probe;  // the next-visit time the behavioural probe replays
};

StateCase case_for(std::uint64_t i) {
  StateCase c;
  c.profile = make_user_profile(model_params(), i);
  c.site = site_for(c.profile.site_index, i % 4 == 0);
  // Mix of arms: Catalyst parks SW + map + negative state, Baseline only
  // the HTTP cache — both shapes of blob must round-trip.
  c.kind = i % 3 == 2 ? core::StrategyKind::Baseline
                      : core::StrategyKind::Catalyst;
  if (i % 7 == 0) {
    // A fault slice: parked blobs must carry the decision-stream ordinal
    // so revived users resume the same fault schedule.
    c.faults.loss_rate = 0.05;
    c.faults.server_error_rate = 0.05;
    c.faults.stream = i;
  }
  const auto& visits = c.profile.visits;
  c.probe = visits.size() > 1 ? visits[1] : visits[0] + hours(6);
  return c;
}

core::Testbed make_case_testbed(const StateCase& c) {
  core::StrategyOptions options;
  options.mobile_client = c.profile.mobile_client;
  netsim::NetworkConditions conditions = conditions_for(c.profile.tier);
  conditions.faults = c.faults;
  return core::make_testbed(c.site, conditions, c.kind, options);
}

/// Builds the parked state: run the cold visit, drain stragglers, park.
std::string park_state(const StateCase& c, core::Testbed& tb,
                       std::uint64_t& stragglers) {
  core::run_visit(tb, c.profile.visits.front());
  stragglers = tb.loop->run();
  return park_user(c.profile.user_id, tb, stragglers, nullptr, 0);
}

/// Probe fields that must survive a park/revive round trip: cache-path
/// counts (hits / misses / conditional GETs), bytes, timing, and the full
/// replay trace line (which captures per-fetch sources and timestamps).
void expect_same_visit(const client::PageLoadResult& a,
                       const client::PageLoadResult& b, std::uint64_t uid) {
  EXPECT_EQ(a.from_cache, b.from_cache);
  EXPECT_EQ(a.from_network, b.from_network);
  EXPECT_EQ(a.not_modified, b.not_modified);
  EXPECT_EQ(a.from_sw_cache, b.from_sw_cache);
  EXPECT_EQ(a.resources_total, b.resources_total);
  EXPECT_EQ(a.bytes_downloaded, b.bytes_downloaded);
  EXPECT_EQ(a.rtts, b.rtts);
  EXPECT_EQ(a.negative_hits, b.negative_hits);
  EXPECT_EQ(a.plt().count(), b.plt().count());
  EXPECT_EQ(check::trace_to_jsonl(a, uid, 1), check::trace_to_jsonl(b, uid, 1));
}

TEST(FleetParkedStateTest, ThousandStatesRoundTripExactly) {
  for (std::uint64_t i = 0; i < kStates; ++i) {
    const StateCase c = case_for(i);
    core::Testbed live = make_case_testbed(c);
    std::uint64_t stragglers = 0;
    const std::string blob = park_state(c, live, stragglers);
    ASSERT_FALSE(blob.empty()) << "state " << i;

    // Revive into a fresh testbed; parking it again must reproduce the
    // exact bytes (park ∘ revive is the identity on blobs).
    core::Testbed revived = make_case_testbed(c);
    const ReviveResult rv =
        revive_user(blob, c.profile.user_id, revived, nullptr);
    ASSERT_EQ(rv.status, ReviveStatus::Ok) << "state " << i;
    EXPECT_EQ(rv.treat_stragglers, stragglers) << "state " << i;
    const std::string reblob = park_user(c.profile.user_id, revived,
                                         rv.treat_stragglers, nullptr, 0);
    ASSERT_EQ(reblob, blob) << "state " << i;

    // Behavioural identity: the revived user replays its next visit
    // exactly like the never-parked one.
    const client::PageLoadResult r_live = core::run_visit(live, c.probe);
    const client::PageLoadResult r_revived = core::run_visit(revived, c.probe);
    expect_same_visit(r_live, r_revived, c.profile.user_id);
    if (::testing::Test::HasFailure()) FAIL() << "diverged at state " << i;
  }
}

TEST(FleetParkedStateTest, SnapshotBytesAreDeterministic) {
  // Rebuilding the same state from scratch yields byte-identical blobs —
  // parked bytes are a pure function of (seed, user id, visit count).
  for (std::uint64_t i = 0; i < kStates; i += 8) {
    const StateCase c = case_for(i);
    core::Testbed a = make_case_testbed(c);
    core::Testbed b = make_case_testbed(c);
    std::uint64_t sa = 0;
    std::uint64_t sb = 0;
    ASSERT_EQ(park_state(c, a, sa), park_state(c, b, sb)) << "state " << i;
    EXPECT_EQ(sa, sb);
  }
}

TEST(FleetParkedStateTest, TruncatedBlobsFailClosed) {
  // The trailing checksum covers every byte, so any truncation must come
  // back Corrupt without touching the testbed. Every length through the
  // structural prefix (magic/version/flags/user-id/table setup), the
  // boundary lengths around the checksum tail, and sampled interior
  // lengths; checksumming is O(len), so an all-lengths sweep over multi-
  // hundred-KiB blobs would be quadratic for no extra coverage.
  for (std::uint64_t i = 0; i < 64; ++i) {
    const StateCase c = case_for(i);
    core::Testbed tb = make_case_testbed(c);
    std::uint64_t stragglers = 0;
    const std::string blob = park_state(c, tb, stragglers);
    Rng rng = Rng(0x7240c4).fork(i);
    std::vector<std::size_t> lengths;
    const std::size_t prefix = i < 4 ? 256 : 24;
    for (std::size_t k = 0; k < prefix && k < blob.size(); ++k) {
      lengths.push_back(k);
    }
    for (std::size_t back = 1; back <= 9; ++back) {
      if (blob.size() >= back) lengths.push_back(blob.size() - back);
    }
    for (int k = 0; k < 32; ++k) {
      lengths.push_back(
          static_cast<std::size_t>(rng.next_u64() % blob.size()));
    }
    // One victim testbed for every truncation of this blob: a corrupt
    // revive must leave it untouched, so reuse doubles as a detector for
    // partially-applied state compounding across attempts.
    core::Testbed victim = make_case_testbed(c);
    for (const std::size_t len : lengths) {
      const ReviveResult rv = revive_user(blob.substr(0, len),
                                          c.profile.user_id, victim, nullptr);
      ASSERT_EQ(rv.status, ReviveStatus::Corrupt)
          << "state " << i << " truncated to " << len;
    }
  }
}

TEST(FleetParkedStateTest, BitFlippedBlobsFailClosed) {
  // FNV-1a threads every input bit through xor-then-odd-multiply, both
  // injective, so any single-bit flip is guaranteed to shift the
  // checksum; flips inside the checksum tail mismatch trivially.
  for (std::uint64_t i = 0; i < 64; ++i) {
    const StateCase c = case_for(i);
    core::Testbed tb = make_case_testbed(c);
    std::uint64_t stragglers = 0;
    const std::string blob = park_state(c, tb, stragglers);
    Rng rng = Rng(0xb17f11b).fork(i);
    core::Testbed victim = make_case_testbed(c);
    for (int k = 0; k < 48; ++k) {
      std::string mutated = blob;
      const std::size_t pos =
          static_cast<std::size_t>(rng.next_u64() % mutated.size());
      mutated[pos] = static_cast<char>(
          mutated[pos] ^ static_cast<char>(1u << (rng.next_u64() % 8)));
      const ReviveResult rv =
          revive_user(mutated, c.profile.user_id, victim, nullptr);
      ASSERT_EQ(rv.status, ReviveStatus::Corrupt)
          << "state " << i << " flip at " << pos;
    }
  }
}

TEST(FleetParkedStateTest, WrongVersionFailsEvenWithValidChecksum) {
  const StateCase c = case_for(1);
  core::Testbed tb = make_case_testbed(c);
  std::uint64_t stragglers = 0;
  std::string blob = park_state(c, tb, stragglers);
  ASSERT_GT(blob.size(), 16u);
  // Patch the version field (bytes 4..5, little-endian) and re-seal the
  // checksum so only the version check can reject it.
  blob[4] = static_cast<char>(kParkedFormatVersion + 1);
  const std::uint64_t sum =
      fnv1a64(std::string_view(blob.data(), blob.size() - 8));
  for (int b = 0; b < 8; ++b) {
    blob[blob.size() - 8 + static_cast<std::size_t>(b)] =
        static_cast<char>((sum >> (8 * b)) & 0xff);
  }
  core::Testbed victim = make_case_testbed(c);
  const ReviveResult rv = revive_user(blob, c.profile.user_id, victim, nullptr);
  EXPECT_EQ(rv.status, ReviveStatus::Corrupt);
}

TEST(FleetParkedStateTest, WrongUserIdFailsClosed) {
  const StateCase c = case_for(2);
  core::Testbed tb = make_case_testbed(c);
  std::uint64_t stragglers = 0;
  const std::string blob = park_state(c, tb, stragglers);
  core::Testbed victim = make_case_testbed(c);
  EXPECT_EQ(revive_user(blob, c.profile.user_id + 1, victim, nullptr).status,
            ReviveStatus::Corrupt);
}

TEST(FleetParkedStateTest, CorruptReviveLeavesTestbedCold) {
  // Fail-closed means *no* partial state lands: after a corrupt revive
  // the testbed must replay the visit exactly like a brand-new user.
  const StateCase c = case_for(3);
  core::Testbed tb = make_case_testbed(c);
  std::uint64_t stragglers = 0;
  std::string blob = park_state(c, tb, stragglers);
  blob.resize(blob.size() / 2);  // lose the tail mid-entry

  core::Testbed victim = make_case_testbed(c);
  ASSERT_EQ(revive_user(blob, c.profile.user_id, victim, nullptr).status,
            ReviveStatus::Corrupt);
  core::Testbed fresh = make_case_testbed(c);
  expect_same_visit(core::run_visit(victim, c.probe),
                    core::run_visit(fresh, c.probe), c.profile.user_id);
}

}  // namespace
}  // namespace catalyst::fleet
