#include "html/generate.h"

#include <gtest/gtest.h>

#include "html/css.h"
#include "html/link_extract.h"
#include "html/parser.h"

namespace catalyst::html {
namespace {

TEST(FillerTextTest, ExactSizeAndDeterminism) {
  const std::string a = filler_text(1000, 7);
  const std::string b = filler_text(1000, 7);
  const std::string c = filler_text(1000, 8);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(filler_text(0, 1).size(), 0u);
}

TEST(HtmlBuilderTest, GeneratedPageParsesBack) {
  HtmlBuilder builder("Test Page");
  builder.add_stylesheet("/a.css")
      .add_script("/b.js")
      .add_script("/d.js", /*deferred=*/true)
      .add_image("/pic.webp", "a picture")
      .add_paragraph("hello world");
  const std::string page = builder.build();

  const auto found = extract_resources(*parse(page));
  ASSERT_EQ(found.size(), 4u);
  EXPECT_EQ(found[0].url, "/a.css");
  EXPECT_EQ(found[1].url, "/b.js");
  EXPECT_TRUE(found[1].parser_blocking);
  EXPECT_EQ(found[2].url, "/d.js");
  EXPECT_FALSE(found[2].parser_blocking);
  EXPECT_EQ(found[3].url, "/pic.webp");
}

TEST(HtmlBuilderTest, PadToReachesApproximateSize) {
  HtmlBuilder builder("T");
  builder.add_paragraph("small");
  builder.pad_to(KiB(20), 3);
  const std::string page = builder.build();
  EXPECT_GE(page.size(), KiB(20) - 16);
  EXPECT_LE(page.size(), KiB(20) + 64);
}

TEST(HtmlBuilderTest, PadToNoOpWhenAlreadyLarger) {
  HtmlBuilder builder("T");
  builder.add_paragraph(filler_text(5000, 1));
  const std::string before = builder.build();
  builder.pad_to(100, 2);
  EXPECT_EQ(builder.build(), before);
}

TEST(HtmlBuilderTest, InlineBlocks) {
  HtmlBuilder builder("T");
  builder.add_inline_style(".x { background: url(\"/bg.png\") }");
  builder.add_inline_script("/* @fetch /api/d.json */");
  const std::string page = builder.build();
  const auto found = extract_resources(*parse(page));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].url, "/bg.png");
  // The inline script's directive is visible to the JS scanner.
  const auto doc = parse(page);
  bool saw_fetch = false;
  doc->for_each_element([&](const Node& el) {
    if (el.is_element("script") && !el.has_attr("src")) {
      const auto fetches = extract_js_fetches(el.text_content());
      if (!fetches.empty()) {
        saw_fetch = true;
        EXPECT_EQ(fetches[0], "/api/d.json");
      }
    }
  });
  EXPECT_TRUE(saw_fetch);
}

TEST(MakeCssTest, ExactSizeAndReferencesSurvive) {
  const std::string css = make_css({"/img/a.webp", "/img/b.webp"},
                                   {"/fonts/f.woff2"}, {"/base.css"},
                                   KiB(10), 42);
  EXPECT_EQ(css.size(), KiB(10));
  const auto refs = extract_css_references(css);
  // 1 import + 1 font + 2 images (padding rules carry no urls).
  ASSERT_EQ(refs.size(), 4u);
  EXPECT_TRUE(refs[0].is_import);
}

TEST(MakeCssTest, VersionSaltChangesContent) {
  const std::string v0 = make_css({}, {}, {}, 2048, 1);
  const std::string v1 = make_css({}, {}, {}, 2048, 2);
  EXPECT_EQ(v0.size(), v1.size());
  EXPECT_NE(v0, v1);
}

TEST(MakeJsTest, ExactSizeAndFetchDirectives) {
  const std::string js =
      make_js({"/api/x.json", "/assets/lazy1.js"}, KiB(8), 9);
  EXPECT_EQ(js.size(), KiB(8));
  const auto fetches = extract_js_fetches(js);
  ASSERT_EQ(fetches.size(), 2u);
  EXPECT_EQ(fetches[0], "/api/x.json");
  EXPECT_EQ(fetches[1], "/assets/lazy1.js");
}

TEST(MakeJsTest, TruncationNeverCutsDirectives) {
  // Directives are emitted first; even tiny sizes keep them intact when
  // they fit.
  const std::string js = make_js({"/a.json"}, 256, 1);
  EXPECT_EQ(js.size(), 256u);
  EXPECT_EQ(extract_js_fetches(js).size(), 1u);
}

}  // namespace
}  // namespace catalyst::html
