#include "netsim/network.h"

#include <gtest/gtest.h>

#include "netsim/conditions.h"
#include "netsim/trace.h"

namespace catalyst::netsim {
namespace {

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : net_(loop_) {
    HostSpec client;
    client.downlink = mbps(8);  // 1 MB/s
    client.uplink = mbps(4);
    net_.add_host("client", client);
    net_.add_host("origin");  // 1 Gbps default
    net_.set_rtt("client", "origin", milliseconds(40));
  }

  EventLoop loop_;
  Network net_;
};

TEST_F(NetworkFixture, SendBytesTimingIsTransmissionPlusPropagation) {
  TimePoint delivered{};
  // 1 MB downstream at 1 MB/s + 20 ms one-way = 1.02 s.
  net_.send_bytes("origin", "client", 1'000'000,
                  [&] { delivered = loop_.now(); });
  loop_.run();
  EXPECT_EQ(delivered, TimePoint{} + seconds(1) + milliseconds(20));
}

TEST_F(NetworkFixture, BottleneckPicksSlowerDirectionLink) {
  // Upstream: client uplink (0.5 MB/s) is slower than origin downlink.
  TimePoint delivered{};
  net_.send_bytes("client", "origin", 500'000,
                  [&] { delivered = loop_.now(); });
  loop_.run();
  EXPECT_EQ(delivered, TimePoint{} + seconds(1) + milliseconds(20));
}

TEST_F(NetworkFixture, ConcurrentDownloadsContendOnClientLink) {
  TimePoint a{}, b{};
  net_.send_bytes("origin", "client", 500'000, [&] { a = loop_.now(); });
  net_.send_bytes("origin", "client", 500'000, [&] { b = loop_.now(); });
  loop_.run();
  // Processor sharing: both at 1.02 s (not 0.52 s).
  EXPECT_EQ(a, TimePoint{} + seconds(1) + milliseconds(20));
  EXPECT_EQ(b, a);
}

TEST_F(NetworkFixture, TotalBytesAccounted) {
  net_.send_bytes("origin", "client", 1000, [] {});
  net_.send_bytes("client", "origin", 500, [] {});
  loop_.run();
  EXPECT_EQ(net_.total_bytes_transferred(), 1500u);
}

TEST_F(NetworkFixture, UnknownHostsThrow) {
  EXPECT_THROW(net_.host("nope"), std::out_of_range);
  EXPECT_THROW(net_.rtt("client", "nope"), std::out_of_range);
  EXPECT_THROW(net_.set_rtt("client", "nope", milliseconds(1)),
               std::out_of_range);
  EXPECT_THROW(net_.send_bytes("nope", "client", 1, [] {}),
               std::out_of_range);
}

TEST_F(NetworkFixture, DuplicateHostRejected) {
  EXPECT_THROW(net_.add_host("client"), std::invalid_argument);
}

TEST_F(NetworkFixture, RttIsSymmetricallyKeyed) {
  EXPECT_EQ(net_.rtt("origin", "client"), milliseconds(40));
  EXPECT_EQ(net_.one_way("client", "origin"), milliseconds(20));
}

TEST(ConditionsTest, LabelsAndProfiles) {
  const auto c = NetworkConditions::median_5g();
  EXPECT_EQ(c.label(), "60Mbps/40ms");
  EXPECT_DOUBLE_EQ(c.downlink.bits_per_second(), 60e6);
  EXPECT_EQ(c.rtt, milliseconds(40));
  const auto grid = NetworkConditions::figure3_grid();
  EXPECT_EQ(grid.size(), 12u);  // 3 throughputs x 4 latencies
  EXPECT_EQ(grid.front().label(), "8Mbps/10ms");
  EXPECT_EQ(grid.back().label(), "60Mbps/80ms");
}

TEST(TraceTest, WaterfallRendersAllFetches) {
  TraceLog log;
  FetchTrace t;
  t.url = "/index.html";
  t.start = TimePoint{};
  t.finish = TimePoint{} + milliseconds(80);
  t.source = FetchSource::Network;
  t.bytes_down = 1234;
  log.record(t);
  t.url = "/a.css";
  t.start = TimePoint{} + milliseconds(80);
  t.finish = TimePoint{} + milliseconds(120);
  t.source = FetchSource::SwCache;
  t.bytes_down = 0;
  log.record(t);
  const std::string waterfall = log.render_waterfall();
  EXPECT_NE(waterfall.find("/index.html"), std::string::npos);
  EXPECT_NE(waterfall.find("/a.css"), std::string::npos);
  EXPECT_NE(waterfall.find("sw-cache"), std::string::npos);
  EXPECT_NE(waterfall.find("network"), std::string::npos);
}

TEST(TraceTest, EmptyLog) {
  TraceLog log;
  EXPECT_EQ(log.render_waterfall(), "(no fetches)\n");
}

TEST(TraceTest, SourceNames) {
  EXPECT_EQ(to_string(FetchSource::Network), "network");
  EXPECT_EQ(to_string(FetchSource::BrowserCache), "cache");
  EXPECT_EQ(to_string(FetchSource::NotModified), "304");
  EXPECT_EQ(to_string(FetchSource::SwCache), "sw-cache");
  EXPECT_EQ(to_string(FetchSource::Push), "push");
}

}  // namespace
}  // namespace catalyst::netsim
