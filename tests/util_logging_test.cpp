#include "util/logging.h"

#include <gtest/gtest.h>

namespace catalyst {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(LoggingTest, CapturedStderrRespectsLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Warn);
  ::testing::internal::CaptureStderr();
  Logger logger("test");
  logger.debug() << "dropped";
  logger.info() << "dropped too";
  logger.warn() << "kept " << 42;
  logger.error() << "kept-error";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept 42"), std::string::npos);
  EXPECT_NE(out.find("kept-error"), std::string::npos);
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("test"), std::string::npos);
}

TEST(LoggingTest, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  ::testing::internal::CaptureStderr();
  Logger("x").error() << "silent";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LoggingTest, DirectLogMessage) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Info);
  ::testing::internal::CaptureStderr();
  log_message(LogLevel::Info, "comp", "hello");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("comp: hello"), std::string::npos);
}

}  // namespace
}  // namespace catalyst
