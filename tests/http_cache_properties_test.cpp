// Randomized property sweeps over the HTTP cache and header codecs:
// invariants that must hold for arbitrary generated inputs.
#include <gtest/gtest.h>

#include "cache/freshness.h"
#include "cache/http_cache.h"
#include "http/date.h"
#include "http/etag_config.h"
#include "http/parser.h"
#include "http/serializer.h"
#include "util/rng.h"

namespace catalyst {
namespace {

using cache::CacheEntry;
using cache::HttpCache;
using cache::LookupDecision;
using http::Response;
using http::Status;

class CacheProperties : public ::testing::TestWithParam<std::uint64_t> {};

/// Draws a random-but-valid response with assorted cache headers.
Response random_response(Rng& rng, TimePoint now) {
  Response resp = Response::make(Status::Ok);
  resp.body = std::string(static_cast<std::size_t>(
                              rng.uniform_int(0, 2000)),
                          'b');
  const double roll = rng.next_double();
  if (roll < 0.2) {
    resp.headers.set(http::kCacheControl, "no-store");
  } else if (roll < 0.4) {
    resp.headers.set(http::kCacheControl, "no-cache");
  } else if (roll < 0.8) {
    resp.headers.set(
        http::kCacheControl,
        "max-age=" + std::to_string(rng.uniform_int(0, 86400)));
  }  // else: no cache-control at all
  if (rng.bernoulli(0.7)) {
    resp.headers.set(http::kEtagHeader,
                     "\"e" + std::to_string(rng.next_u64() & 0xFFFF) +
                         "\"");
  }
  if (rng.bernoulli(0.5)) {
    resp.headers.set(
        http::kLastModified,
        http::format_http_date(now - hours(rng.uniform_int(0, 72))));
  }
  resp.finalize(now);
  return resp;
}

TEST_P(CacheProperties, StoreLookupInvariants) {
  Rng rng(GetParam());
  HttpCache cache(MiB(8));
  const TimePoint t0{};
  for (int i = 0; i < 300; ++i) {
    const std::string url = "https://h/" + std::to_string(i);
    Response resp = random_response(rng, t0);
    const bool no_store = resp.cache_control().no_store;
    const bool stored = cache.store(url, resp, t0, t0);

    // 1. no-store is never stored.
    if (no_store) EXPECT_FALSE(stored) << url;
    if (!stored) {
      EXPECT_FALSE(cache.contains(url));
      continue;
    }

    // 2. A lookup right now never claims a fresh hit for no-cache.
    const auto now_result = cache.lookup(url, t0);
    if (resp.cache_control().no_cache) {
      EXPECT_NE(now_result.decision, LookupDecision::FreshHit) << url;
    }

    // 3. Whatever the decision, any returned entry carries the body we
    //    stored.
    if (now_result.entry != nullptr) {
      EXPECT_EQ(now_result.entry->response.body, resp.body);
    }

    // 4. Far in the future everything is stale: either revalidate (a
    //    validator exists) or miss — never a fresh hit.
    const auto later = cache.lookup(url, t0 + days(400));
    EXPECT_NE(later.decision, LookupDecision::FreshHit) << url;
  }
  // 5. Capacity accounting is consistent.
  EXPECT_LE(cache.size_bytes(), MiB(8));
}

TEST_P(CacheProperties, FreshnessMonotoneInTime) {
  Rng rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 100; ++i) {
    CacheEntry entry;
    entry.response = random_response(rng, TimePoint{});
    entry.request_time = TimePoint{};
    entry.response_time = TimePoint{};
    bool was_fresh = true;
    for (int h = 0; h <= 48; h += 3) {
      const bool fresh =
          cache::is_fresh(entry, TimePoint{} + hours(h), true);
      // Once stale, never fresh again (no refresh happened).
      if (!was_fresh) EXPECT_FALSE(fresh);
      was_fresh = fresh;
    }
  }
}

TEST_P(CacheProperties, MessageWireRoundTripIsLossless) {
  Rng rng(GetParam() ^ 0xCAFE);
  for (int i = 0; i < 50; ++i) {
    Response original = random_response(rng, TimePoint{} + hours(1));
    const std::string wire = http::serialize(original);
    EXPECT_EQ(wire.size(), original.wire_size());
    http::ResponseParser parser;
    ASSERT_EQ(parser.feed(wire), http::ParseResult::Done);
    const Response parsed = parser.take();
    EXPECT_EQ(parsed.status, original.status);
    EXPECT_EQ(parsed.headers, original.headers);
    EXPECT_EQ(parsed.body, original.body);
  }
}

TEST_P(CacheProperties, EtagConfigRoundTripsArbitraryPaths) {
  Rng rng(GetParam() ^ 0xE7A6);
  http::EtagConfig config;
  std::map<std::string, std::string> truth;
  for (int i = 0; i < 100; ++i) {
    // Paths with awkward-but-legal characters.
    std::string path = "/p";
    const int len = static_cast<int>(rng.uniform_int(1, 40));
    static constexpr char kChars[] =
        "abcXYZ019-._~!$&'()*+,;=:@/ \"\\";
    for (int c = 0; c < len; ++c) {
      path.push_back(
          kChars[rng.uniform_int(0, sizeof(kChars) - 2)]);
    }
    const std::string etag =
        "v" + std::to_string(rng.next_u64() & 0xFFFFFF);
    config.add(path, http::Etag{etag, rng.bernoulli(0.3)});
    truth[path] = etag;
  }
  const auto parsed = http::EtagConfig::parse(config.encode());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->size(), config.size());
  for (const auto& [path, etag] : truth) {
    const auto found = parsed->find(path);
    ASSERT_TRUE(found) << path;
    EXPECT_EQ(found->value, etag) << path;
  }
}

/// Draws a CacheControl with an arbitrary directive combination (including
/// contradictory ones a buggy origin could emit — the codec must not care).
http::CacheControl random_cache_control(Rng& rng) {
  http::CacheControl cc;
  cc.no_store = rng.bernoulli(0.2);
  cc.no_cache = rng.bernoulli(0.2);
  cc.must_revalidate = rng.bernoulli(0.2);
  cc.immutable = rng.bernoulli(0.2);
  cc.is_public = rng.bernoulli(0.3);
  cc.is_private = rng.bernoulli(0.2);
  if (rng.bernoulli(0.6)) {
    cc.max_age = seconds(rng.uniform_int(0, 365LL * 24 * 3600));
  }
  return cc;
}

TEST_P(CacheProperties, CacheControlSerializeParseIsIdentity) {
  // parse ∘ to_string = id over the full directive space: every field the
  // struct can express survives a wire round trip, 1000 cases per seed.
  Rng rng(GetParam() ^ 0xCCCC);
  for (int i = 0; i < 1000; ++i) {
    const http::CacheControl original = random_cache_control(rng);
    const std::string wire = original.to_string();
    const http::CacheControl parsed = http::CacheControl::parse(wire);
    EXPECT_EQ(parsed, original) << "wire: " << wire;
    // Serialization is canonical: a second round trip is a fixed point.
    EXPECT_EQ(parsed.to_string(), wire);
  }
}

TEST_P(CacheProperties, CacheControlParseIgnoresNoiseAroundDirectives) {
  // RFC 9111 §5.2.3: unknown directives are ignored, and list syntax
  // tolerates arbitrary whitespace — neither may disturb known fields.
  const http::CacheControl parsed = http::CacheControl::parse(
      "  no-cache ,x-unknown=5,  max-age=120  , weird");
  EXPECT_TRUE(parsed.no_cache);
  ASSERT_TRUE(parsed.max_age.has_value());
  EXPECT_EQ(*parsed.max_age, seconds(120));
  EXPECT_FALSE(parsed.no_store);
}

TEST_P(CacheProperties, EtagConfigEncodeParseIsIdentity) {
  // parse ∘ encode = id over random maps, 1000 cases per seed: sizes,
  // weak flags and entry order all survive; encoding is canonical.
  Rng rng(GetParam() ^ 0xE7A7);
  for (int i = 0; i < 1000; ++i) {
    http::EtagConfig config;
    const int entries = static_cast<int>(rng.uniform_int(0, 12));
    for (int e = 0; e < entries; ++e) {
      config.add("/r" + std::to_string(e) + "-" +
                     std::to_string(rng.next_u64() & 0xFFF),
                 http::Etag{"t" + std::to_string(rng.next_u64() & 0xFFFFFF),
                            rng.bernoulli(0.3)});
    }
    const std::string wire = config.encode();
    const auto parsed = http::EtagConfig::parse(wire);
    ASSERT_TRUE(parsed) << "wire: " << wire;
    ASSERT_EQ(parsed->size(), config.size());
    for (const auto& [path, etag] : config.entries()) {
      const auto found = parsed->find(path);
      ASSERT_TRUE(found) << path;
      EXPECT_EQ(found->value, etag.value);
      EXPECT_EQ(found->weak, etag.weak);
    }
    EXPECT_EQ(parsed->encode(), wire);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperties,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace catalyst
