#include "http/etag_config.h"

#include <gtest/gtest.h>

#include "http/headers.h"

namespace catalyst::http {
namespace {

TEST(EtagConfigTest, EncodeDecodeRoundTrip) {
  EtagConfig config;
  config.add("/a.css", Etag{"abc", false});
  config.add("/b.js", Etag{"def", true});
  config.add("/img/pic one.webp", Etag{"ghi", false});
  const auto parsed = EtagConfig::parse(config.encode());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->find("/a.css"), (Etag{"abc", false}));
  EXPECT_EQ(parsed->find("/b.js"), (Etag{"def", true}));
  EXPECT_FALSE(parsed->find("/missing"));
}

TEST(EtagConfigTest, EncodedFormIsCompactJson) {
  EtagConfig config;
  config.add("/a", Etag{"x", false});
  EXPECT_EQ(config.encode(), "{\"/a\":\"\\\"x\\\"\"}");
}

TEST(EtagConfigTest, EmptyMap) {
  EtagConfig config;
  EXPECT_TRUE(config.empty());
  EXPECT_EQ(config.encode(), "{}");
  const auto parsed = EtagConfig::parse("{}");
  ASSERT_TRUE(parsed);
  EXPECT_TRUE(parsed->empty());
}

TEST(EtagConfigTest, MalformedJsonRejected) {
  EXPECT_FALSE(EtagConfig::parse(""));
  EXPECT_FALSE(EtagConfig::parse("not json"));
  EXPECT_FALSE(EtagConfig::parse("[1,2]"));
  EXPECT_FALSE(EtagConfig::parse("{\"a\":42}"));  // non-string value
}

TEST(EtagConfigTest, EntriesWithBadEtagsDroppedNotFatal) {
  const auto parsed = EtagConfig::parse(
      "{\"/good\":\"\\\"ok\\\"\",\"/bad\":\"no-quotes\"}");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_TRUE(parsed->find("/good"));
  EXPECT_FALSE(parsed->find("/bad"));
}

TEST(EtagConfigTest, HeaderWireSizeGrowsWithEntries) {
  EtagConfig small, large;
  small.add("/a", Etag{"0123456789abcdef", false});
  for (int i = 0; i < 100; ++i) {
    large.add("/assets/resource" + std::to_string(i) + ".css",
              Etag{"0123456789abcdef", false});
  }
  EXPECT_GT(large.header_wire_size(), small.header_wire_size());
  // Rough scale: each entry costs ~path + etag + JSON syntax.
  EXPECT_GT(large.header_wire_size(), 100u * 30u);
  EXPECT_LT(large.header_wire_size(), 100u * 80u);
}

TEST(EtagConfigTest, LastAddWinsForDuplicatePaths) {
  EtagConfig config;
  config.add("/a", Etag{"old", false});
  config.add("/a", Etag{"new", false});
  EXPECT_EQ(config.size(), 1u);
  EXPECT_EQ(config.find("/a")->value, "new");
}

}  // namespace
}  // namespace catalyst::http
