#include "util/types.h"

#include <gtest/gtest.h>

namespace catalyst {
namespace {

TEST(Duration, ConstructorsCompose) {
  EXPECT_EQ(microseconds(1), nanoseconds(1000));
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_EQ(minutes(2), seconds(120));
  EXPECT_EQ(hours(1), minutes(60));
  EXPECT_EQ(days(1), hours(24));
}

TEST(Duration, FractionalSeconds) {
  EXPECT_EQ(seconds_f(0.5), milliseconds(500));
  EXPECT_EQ(milliseconds_f(1.5), microseconds(1500));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(42)), 42.0);
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t0{};
  const TimePoint t1 = t0 + seconds(5);
  EXPECT_EQ(t1 - t0, seconds(5));
  EXPECT_EQ((t1 - seconds(2)) - t0, seconds(3));
  EXPECT_LT(t0, t1);
  TimePoint t2 = t0;
  t2 += milliseconds(10);
  EXPECT_EQ(t2.since_epoch(), milliseconds(10));
}

TEST(TimePointTest, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(TimePoint::max(), TimePoint{} + days(100 * 365));
}

TEST(BandwidthTest, TransmissionTime) {
  // 8 Mbps = 1 MB/s: one megabyte takes one second.
  const Bandwidth bw = mbps(8);
  EXPECT_DOUBLE_EQ(bw.bytes_per_second(), 1e6);
  EXPECT_EQ(bw.transmission_time(1'000'000), seconds(1));
  EXPECT_EQ(bw.transmission_time(0), Duration::zero());
  // 1500-byte packet at 60 Mbps: 200 microseconds.
  EXPECT_EQ(mbps(60).transmission_time(1500), microseconds(200));
}

TEST(BandwidthTest, UnitHelpers) {
  EXPECT_DOUBLE_EQ(kbps(5).bits_per_second(), 5e3);
  EXPECT_DOUBLE_EQ(gbps(1).bits_per_second(), 1e9);
  EXPECT_LT(mbps(8), mbps(60));
}

TEST(ByteCountTest, Helpers) {
  EXPECT_EQ(KiB(1), 1024u);
  EXPECT_EQ(MiB(1), 1024u * 1024u);
}

TEST(FormatTest, Duration) {
  EXPECT_EQ(format_duration(nanoseconds(500)), "500 ns");
  EXPECT_EQ(format_duration(microseconds(1500)), "1.5 ms");
  EXPECT_EQ(format_duration(seconds(2)), "2.00 s");
  EXPECT_EQ(format_duration(minutes(30)), "30 min");
  EXPECT_EQ(format_duration(hours(6)), "6 h");
  EXPECT_EQ(format_duration(days(7)), "7 d");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(KiB(2)), "2.0 KiB");
  EXPECT_EQ(format_bytes(MiB(3)), "3.00 MiB");
}

}  // namespace
}  // namespace catalyst
