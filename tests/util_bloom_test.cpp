#include "util/base64.h"
#include "util/bloom.h"

#include <gtest/gtest.h>

namespace catalyst {
namespace {

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, RoundTripBinary) {
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  const auto decoded = base64_decode(base64_encode(data));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, data);
}

TEST(Base64Test, DecodeRejectsMalformed) {
  EXPECT_FALSE(base64_decode("Zg="));       // bad length
  EXPECT_FALSE(base64_decode("Z!=="));      // invalid character
  EXPECT_FALSE(base64_decode("Zg==Zg=="));  // padding mid-stream
  EXPECT_FALSE(base64_decode("=Zg="));      // padding in front
  EXPECT_TRUE(base64_decode(""));           // empty is fine
}

TEST(BloomFilterTest, InsertedKeysAlwaysFound) {
  BloomFilter filter(1 << 12, 5);
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back("/assets/resource" + std::to_string(i) + ".css");
  }
  for (const auto& key : keys) filter.insert(key);
  for (const auto& key : keys) {
    EXPECT_TRUE(filter.may_contain(key)) << key;  // no false negatives
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  const std::size_t n = 500;
  BloomFilter filter = BloomFilter::for_entries(n, 0.01);
  for (std::size_t i = 0; i < n; ++i) {
    filter.insert("/present/" + std::to_string(i));
  }
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (filter.may_contain("/absent/" + std::to_string(i))) {
      ++false_positives;
    }
  }
  // ~1% target: accept up to 3%.
  EXPECT_LT(false_positives, probes * 3 / 100);
  EXPECT_LT(filter.fill_ratio(), 0.6);
}

TEST(BloomFilterTest, SizingFormula) {
  const BloomFilter filter = BloomFilter::for_entries(100, 0.01);
  // m = -100 ln(0.01)/ln²2 ≈ 959 bits ≈ 120 bytes; k ≈ 7.
  EXPECT_NEAR(static_cast<double>(filter.byte_size()), 120.0, 8.0);
  EXPECT_NEAR(filter.hash_count(), 7, 1);
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  BloomFilter filter = BloomFilter::for_entries(50, 0.01);
  for (int i = 0; i < 50; ++i) filter.insert("/r" + std::to_string(i));
  const auto restored = BloomFilter::deserialize(filter.serialize());
  ASSERT_TRUE(restored);
  EXPECT_EQ(restored->hash_count(), filter.hash_count());
  EXPECT_EQ(restored->byte_size(), filter.byte_size());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(restored->may_contain("/r" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(BloomFilter::deserialize(""));
  EXPECT_FALSE(BloomFilter::deserialize("no-colon"));
  EXPECT_FALSE(BloomFilter::deserialize("0:AAAA"));   // k must be >= 1
  EXPECT_FALSE(BloomFilter::deserialize("99:AAAA"));  // k too large
  EXPECT_FALSE(BloomFilter::deserialize("3:!!!!"));   // bad base64
  EXPECT_FALSE(BloomFilter::deserialize("3:"));       // empty bits
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter filter(1024, 4);
  EXPECT_FALSE(filter.may_contain("/anything"));
  EXPECT_DOUBLE_EQ(filter.fill_ratio(), 0.0);
}

}  // namespace
}  // namespace catalyst
