#include "util/table.h"

#include <gtest/gtest.h>

namespace catalyst {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t("Title");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Box-drawing present.
  EXPECT_NE(out.find("┌"), std::string::npos);
  EXPECT_NE(out.find("└"), std::string::npos);
}

TEST(TableTest, RowsMustMatchHeaderWidth) {
  Table t("");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, AllLinesEqualDisplayWidth) {
  Table t("");
  t.set_header({"col", "x"});
  t.add_row({"with unicode ±", "1.5%"});
  t.add_separator();
  t.add_row({"ascii", "200"});
  const std::string out = t.render();
  std::size_t expected = 0;
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= out.size(); ++i) {
    if (i == out.size() || out[i] == '\n') {
      std::size_t width = 0;
      for (std::size_t j = line_start; j < i; ++j) {
        if ((static_cast<unsigned char>(out[j]) & 0xC0) != 0x80) ++width;
      }
      if (width > 0) {
        if (expected == 0) expected = width;
        EXPECT_EQ(width, expected);
      }
      line_start = i + 1;
    }
  }
}

}  // namespace
}  // namespace catalyst
