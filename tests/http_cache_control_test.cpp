#include "http/cache_control.h"

#include <gtest/gtest.h>

namespace catalyst::http {
namespace {

TEST(CacheControlTest, ParseSingleDirectives) {
  EXPECT_TRUE(CacheControl::parse("no-store").no_store);
  EXPECT_TRUE(CacheControl::parse("no-cache").no_cache);
  EXPECT_TRUE(CacheControl::parse("must-revalidate").must_revalidate);
  EXPECT_TRUE(CacheControl::parse("immutable").immutable);
  EXPECT_TRUE(CacheControl::parse("public").is_public);
  EXPECT_TRUE(CacheControl::parse("private").is_private);
}

TEST(CacheControlTest, ParseMaxAge) {
  const auto cc = CacheControl::parse("max-age=3600");
  ASSERT_TRUE(cc.max_age);
  EXPECT_EQ(*cc.max_age, hours(1));
}

TEST(CacheControlTest, ParseIsCaseInsensitiveAndWhitespaceTolerant) {
  const auto cc = CacheControl::parse("  No-Cache ,  MAX-AGE=60  ");
  EXPECT_TRUE(cc.no_cache);
  ASSERT_TRUE(cc.max_age);
  EXPECT_EQ(*cc.max_age, minutes(1));
}

TEST(CacheControlTest, QuotedArgument) {
  const auto cc = CacheControl::parse("max-age=\"120\"");
  ASSERT_TRUE(cc.max_age);
  EXPECT_EQ(*cc.max_age, minutes(2));
}

TEST(CacheControlTest, MalformedMaxAgeDropped) {
  EXPECT_FALSE(CacheControl::parse("max-age=abc").max_age);
  EXPECT_FALSE(CacheControl::parse("max-age=").max_age);
  EXPECT_FALSE(CacheControl::parse("max-age=-5").max_age);
}

TEST(CacheControlTest, HugeMaxAgeClamped) {
  const auto cc = CacheControl::parse("max-age=99999999999999999");
  ASSERT_TRUE(cc.max_age);
  EXPECT_LE(*cc.max_age, days(10 * 365) + seconds(1));
}

TEST(CacheControlTest, UnknownDirectivesIgnored) {
  const auto cc = CacheControl::parse("stale-while-revalidate=30, no-cache");
  EXPECT_TRUE(cc.no_cache);
}

TEST(CacheControlTest, RoundTripThroughToString) {
  const CacheControl original = [] {
    CacheControl cc;
    cc.is_public = true;
    cc.max_age = seconds(120);
    cc.immutable = true;
    return cc;
  }();
  const CacheControl reparsed = CacheControl::parse(original.to_string());
  EXPECT_EQ(original, reparsed);
}

TEST(CacheControlTest, FactoryPolicies) {
  EXPECT_TRUE(CacheControl::never_store().no_store);
  EXPECT_TRUE(CacheControl::revalidate_always().no_cache);
  const auto forever = CacheControl::store_forever();
  EXPECT_TRUE(forever.immutable);
  ASSERT_TRUE(forever.max_age);
  EXPECT_EQ(*forever.max_age, days(365));
  EXPECT_EQ(CacheControl::with_max_age(minutes(5)).max_age, minutes(5));
}

TEST(CacheControlTest, EmptyStringParsesToDefaults) {
  EXPECT_EQ(CacheControl::parse(""), CacheControl{});
}

}  // namespace
}  // namespace catalyst::http
