#include "client/service_worker.h"

#include <gtest/gtest.h>

namespace catalyst::client {
namespace {

using http::Etag;
using http::Response;
using http::Status;

Response ok_with_etag(const std::string& etag) {
  Response resp = Response::make(Status::Ok);
  resp.body = "body-" + etag;
  resp.headers.set(http::kEtagHeader, "\"" + etag + "\"");
  resp.finalize(TimePoint{});
  return resp;
}

Response navigation_with_map(const std::string& map_json) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(http::kXEtagConfig, map_json);
  return resp;
}

TEST(ServiceWorkerTest, RegistrationLifecycle) {
  CatalystServiceWorker sw;
  EXPECT_FALSE(sw.registered());
  sw.set_registered();
  EXPECT_TRUE(sw.registered());
  sw.unregister();
  EXPECT_FALSE(sw.registered());
  EXPECT_EQ(sw.current_map(), nullptr);
}

TEST(ServiceWorkerTest, InstallsMapFromNavigationResponse) {
  CatalystServiceWorker sw;
  sw.install_map_from(
      navigation_with_map("{\"/a.css\":\"\\\"v1\\\"\"}"));
  ASSERT_NE(sw.current_map(), nullptr);
  EXPECT_EQ(sw.current_map()->size(), 1u);
  EXPECT_EQ(sw.stats().maps_installed, 1u);
}

TEST(ServiceWorkerTest, MalformedMapIgnored) {
  CatalystServiceWorker sw;
  sw.install_map_from(navigation_with_map("{not json"));
  EXPECT_EQ(sw.current_map(), nullptr);
  sw.install_map_from(Response::make(Status::Ok));  // no header
  EXPECT_EQ(sw.current_map(), nullptr);
}

TEST(ServiceWorkerTest, NewMapReplacesOld) {
  CatalystServiceWorker sw;
  sw.install_map_from(navigation_with_map("{\"/a\":\"\\\"v1\\\"\"}"));
  sw.install_map_from(navigation_with_map("{\"/b\":\"\\\"v2\\\"\"}"));
  EXPECT_FALSE(sw.current_map()->find("/a"));
  EXPECT_TRUE(sw.current_map()->find("/b"));
}

TEST(ServiceWorkerTest, ServesOnlyMapVouchedCacheHits) {
  using Decision = CatalystServiceWorker::Decision;
  CatalystServiceWorker sw;
  sw.observe_response("/a.css", ok_with_etag("v1"), TimePoint{});
  sw.observe_response("/b.js", ok_with_etag("v1"), TimePoint{});
  sw.install_map_from(navigation_with_map(
      "{\"/a.css\":\"\\\"v1\\\"\",\"/b.js\":\"\\\"v2\\\"\"}"));

  // Covered + matching: served.
  const auto hit = sw.try_serve("/a.css", TimePoint{});
  EXPECT_EQ(hit.decision, Decision::ServeFromCache);
  ASSERT_NE(hit.response, nullptr);
  EXPECT_EQ(hit.response->body, "body-v1");
  // Covered but changed on origin: forwarded with revalidation (the map
  // overrides any TTL freshness).
  EXPECT_EQ(sw.try_serve("/b.js", TimePoint{}).decision, Decision::ForwardRevalidate);
  // Not covered by the map: plain fetch semantics.
  EXPECT_EQ(sw.try_serve("/c.json", TimePoint{}).decision, Decision::ForwardDefault);
  EXPECT_EQ(sw.stats().served_from_cache, 1u);
  EXPECT_EQ(sw.stats().forwarded, 2u);
}

TEST(ServiceWorkerTest, CoveredButUncachedForwardsWithRevalidation) {
  using Decision = CatalystServiceWorker::Decision;
  CatalystServiceWorker sw;
  sw.install_map_from(navigation_with_map("{\"/a.css\":\"\\\"v1\\\"\"}"));
  EXPECT_EQ(sw.try_serve("/a.css", TimePoint{}).decision, Decision::ForwardRevalidate);
}

TEST(ServiceWorkerTest, NoMapForwardsEverything) {
  using Decision = CatalystServiceWorker::Decision;
  CatalystServiceWorker sw;
  sw.observe_response("/a.css", ok_with_etag("v1"), TimePoint{});
  const auto result = sw.try_serve("/a.css", TimePoint{});
  EXPECT_EQ(result.decision, Decision::ForwardDefault);
  EXPECT_EQ(result.response, nullptr);
}

TEST(ServiceWorkerTest, ObserveIgnoresNonOkAndNoStore) {
  CatalystServiceWorker sw;
  Response not_modified = Response::make(Status::NotModified);
  sw.observe_response("/a", not_modified, TimePoint{});
  EXPECT_FALSE(sw.cache().contains("/a"));

  Response no_store = ok_with_etag("v1");
  no_store.headers.set(http::kCacheControl, "no-store");
  sw.observe_response("/b", no_store, TimePoint{});
  EXPECT_FALSE(sw.cache().contains("/b"));
}

}  // namespace
}  // namespace catalyst::client
