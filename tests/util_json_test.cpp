#include "util/json.h"

#include <gtest/gtest.h>

namespace catalyst {
namespace {

TEST(JsonTest, ScalarsDump) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::number(42).dump(), "42");
  EXPECT_EQ(Json::number(-1.5).dump(), "-1.5");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
}

TEST(JsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(Json::string("a\"b\\c\n").dump(), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonTest, ObjectKeysSortedDeterministically) {
  Json obj = Json::object();
  obj.set("b", Json::number(2));
  obj.set("a", Json::number(1));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":2}");
}

TEST(JsonTest, NestedStructureRoundTrips) {
  Json obj = Json::object();
  Json arr = Json::array();
  arr.push_back(Json::number(1));
  arr.push_back(Json::string("two"));
  arr.push_back(Json::null());
  obj.set("list", std::move(arr));
  obj.set("flag", Json::boolean(true));
  const std::string text = obj.dump();
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(*parsed, obj);
}

TEST(JsonTest, ParseWhitespaceTolerant) {
  const auto parsed = Json::parse("  { \"a\" : [ 1 , 2 ] }  ");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->find("a")->as_array().size(), 2u);
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::parse(""));
  EXPECT_FALSE(Json::parse("{"));
  EXPECT_FALSE(Json::parse("{\"a\":}"));
  EXPECT_FALSE(Json::parse("[1,]"));
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing"));
  EXPECT_FALSE(Json::parse("\"unterminated"));
  EXPECT_FALSE(Json::parse("{'single':1}"));
  EXPECT_FALSE(Json::parse("nul"));
}

TEST(JsonTest, ParseUnicodeEscapes) {
  const auto parsed = Json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->as_string(), "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(JsonTest, ParseNumbers) {
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2")->as_number(), -1250.0);
  EXPECT_DOUBLE_EQ(Json::parse("0")->as_number(), 0.0);
}

TEST(JsonTest, TypeMismatchThrows) {
  const Json n = Json::number(1);
  EXPECT_THROW(n.as_string(), std::logic_error);
  EXPECT_THROW(n.as_object(), std::logic_error);
  Json s = Json::string("x");
  EXPECT_THROW(s.push_back(Json::null()), std::logic_error);
  EXPECT_THROW(s.set("k", Json::null()), std::logic_error);
}

TEST(JsonTest, FindOnObject) {
  Json obj = Json::object();
  obj.set("k", Json::string("v"));
  ASSERT_NE(obj.find("k"), nullptr);
  EXPECT_EQ(obj.find("k")->as_string(), "v");
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonTest, EscapedKeysRoundTrip) {
  Json obj = Json::object();
  obj.set("path \"quoted\"", Json::string("x"));
  const auto parsed = Json::parse(obj.dump());
  ASSERT_TRUE(parsed);
  EXPECT_NE(parsed->find("path \"quoted\""), nullptr);
}

}  // namespace
}  // namespace catalyst
