// The fleet's headline invariant: a FleetReport is a pure function of
// (users, seed, strategy) — independent of worker-thread count and of how
// users are batched into shards.
#include <gtest/gtest.h>

#include "fleet/runner.h"
#include "netsim/transport.h"

namespace catalyst::fleet {
namespace {

FleetParams small_fleet() {
  FleetParams params;
  params.shard_size = 4;
  params.user_model.site_catalog_size = 8;
  params.user_model.horizon = days(2);
  params.user_model.mean_visit_gap = hours(12);
  params.user_model.max_visits = 3;
  return params;
}

constexpr std::uint64_t kUsers = 24;

std::string run_fleet(FleetParams params, int threads) {
  return FleetRunner(std::move(params), kUsers, threads).run().serialize();
}

TEST(FleetDeterminismTest, ThreadCountDoesNotChangeReportBytes) {
  const std::string one = run_fleet(small_fleet(), 1);
  EXPECT_EQ(run_fleet(small_fleet(), 8), one);
  // And rerunning the same config is stable, not just coincidentally equal.
  EXPECT_EQ(run_fleet(small_fleet(), 1), one);
}

TEST(FleetDeterminismTest, ShardBoundariesDoNotChangeReportBytes) {
  // One user per shard vs all users in one shard: the extreme splits.
  FleetParams one_each = small_fleet();
  one_each.shard_size = 1;
  FleetParams all_in_one = small_fleet();
  all_in_one.shard_size = kUsers;

  const std::string split = run_fleet(one_each, 8);
  const std::string whole = run_fleet(all_in_one, 1);
  EXPECT_EQ(split, whole);
}

TEST(FleetDeterminismTest, H2TransportIsThreadInvariant) {
  // The --h2 ablation axis must uphold the same invariant as H1: forcing
  // browser_protocol changes the simulated transport, not determinism.
  FleetParams h2 = small_fleet();
  h2.options.browser_protocol = netsim::Protocol::H2;
  const std::string one = run_fleet(h2, 1);
  EXPECT_EQ(run_fleet(h2, 8), one);
  // And the axis is real: H2 reports differ from H1 reports.
  EXPECT_NE(run_fleet(small_fleet(), 1), one);
}

TEST(FleetDeterminismTest, SeedChangesReport) {
  FleetParams other_seed = small_fleet();
  other_seed.user_model.master_seed += 1;
  EXPECT_NE(run_fleet(small_fleet(), 1), run_fleet(other_seed, 1));
}

TEST(FleetDeterminismTest, SkippingBaselineHalvesWorkNotUsers) {
  FleetParams params = small_fleet();
  params.baseline = params.strategy;  // skip the comparison replay
  FleetRunner runner(params, kUsers, 2);
  const FleetReport report = runner.run();
  EXPECT_EQ(report.users, kUsers);
  EXPECT_EQ(report.baseline_rtts, 0u);
  EXPECT_EQ(report.rtts_saved(), -static_cast<std::int64_t>(report.rtts));
  EXPECT_EQ(report.plt_reduction_pct.count(), 0u);
  EXPECT_GT(report.plt_ms.count(), 0u);
}

TEST(FleetDeterminismTest, RunnerExposesProgressAfterRun) {
  FleetParams params = small_fleet();
  FleetRunner runner(params, kUsers, 4);
  EXPECT_EQ(runner.users_completed(), 0u);
  const FleetReport report = runner.run();
  EXPECT_EQ(runner.users_completed(), kUsers);
  EXPECT_EQ(runner.live_counters(), report.counters);
  EXPECT_EQ(runner.shard_count(), (kUsers + 3) / 4);
}

TEST(FleetDeterminismTest, ShardQueueDrainsAndCloses) {
  ShardQueue queue;
  ShardTask t;
  t.shard_index = 7;
  queue.push(t);
  queue.close();
  const auto got = queue.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->shard_index, 7u);
  EXPECT_FALSE(queue.pop().has_value());  // closed + empty -> exit signal
}

}  // namespace
}  // namespace catalyst::fleet
