#include "html/parser.h"

#include <gtest/gtest.h>

namespace catalyst::html {
namespace {

TEST(HtmlParserTest, BuildsTree) {
  const auto doc = parse("<html><head><title>T</title></head>"
                         "<body><p>text</p></body></html>");
  ASSERT_EQ(doc->kind(), Node::Kind::Document);
  const Node* title = doc->find_first("title");
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->text_content(), "T");
  const Node* body = doc->find_first("body");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->text_content(), "text");
}

TEST(HtmlParserTest, VoidElementsDoNotNest) {
  const auto doc = parse("<body><img src=a.png><p>after</p></body>");
  const Node* body = doc->find_first("body");
  ASSERT_NE(body, nullptr);
  // img and p are siblings, not parent/child.
  ASSERT_EQ(body->children().size(), 2u);
  EXPECT_TRUE(body->children()[0]->is_element("img"));
  EXPECT_TRUE(body->children()[1]->is_element("p"));
}

TEST(HtmlParserTest, MismatchedEndTagsRecover) {
  const auto doc = parse("<div><span>x</div><p>y</p>");
  // The unclosed span is closed by the div's end tag; p is a sibling.
  const Node* p = doc->find_first("p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->text_content(), "y");
}

TEST(HtmlParserTest, StrayEndTagIgnored) {
  const auto doc = parse("</div><p>ok</p>");
  ASSERT_NE(doc->find_first("p"), nullptr);
}

TEST(HtmlParserTest, AttributesAccessible) {
  const auto doc = parse("<link rel=\"stylesheet\" href=\"/a.css\">");
  const Node* link = doc->find_first("link");
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->attr("rel"), "stylesheet");
  EXPECT_EQ(link->attr("href"), "/a.css");
  EXPECT_FALSE(link->attr("media").has_value());
  EXPECT_TRUE(link->has_attr("rel"));
}

TEST(HtmlParserTest, ForEachElementVisitsDepthFirst) {
  const auto doc = parse("<div><p><b>x</b></p><i>y</i></div>");
  std::vector<std::string> tags;
  doc->for_each_element([&](const Node& el) { tags.push_back(el.data()); });
  EXPECT_EQ(tags, (std::vector<std::string>{"div", "p", "b", "i"}));
}

TEST(HtmlParserTest, ToHtmlRoundTripsStructure) {
  const char* input =
      "<html><head><link rel=\"stylesheet\" href=\"/a.css\"></head>"
      "<body><p>hello</p><img src=\"/x.png\"></body></html>";
  const auto doc = parse(input);
  const std::string emitted = doc->to_html();
  // Re-parsing the emission yields the same structure.
  const auto doc2 = parse(emitted);
  std::vector<std::string> tags1, tags2;
  doc->for_each_element([&](const Node& el) { tags1.push_back(el.data()); });
  doc2->for_each_element([&](const Node& el) { tags2.push_back(el.data()); });
  EXPECT_EQ(tags1, tags2);
  EXPECT_NE(emitted.find("href=\"/a.css\""), std::string::npos);
}

TEST(HtmlParserTest, SetAttrReplacesOrAdds) {
  auto el = Node::element("a", {{"href", "/old"}});
  el->set_attr("href", "/new");
  el->set_attr("target", "_blank");
  EXPECT_EQ(el->attr("href"), "/new");
  EXPECT_EQ(el->attr("target"), "_blank");
}

TEST(HtmlParserTest, EmptyInputYieldsEmptyDocument) {
  const auto doc = parse("");
  EXPECT_TRUE(doc->children().empty());
}

TEST(HtmlParserTest, CommentsPreserved) {
  const auto doc = parse("<body><!-- note --></body>");
  const Node* body = doc->find_first("body");
  ASSERT_EQ(body->children().size(), 1u);
  EXPECT_EQ(body->children()[0]->kind(), Node::Kind::Comment);
  EXPECT_EQ(body->children()[0]->data(), " note ");
}

}  // namespace
}  // namespace catalyst::html
