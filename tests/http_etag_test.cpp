#include "http/etag.h"

#include <gtest/gtest.h>

namespace catalyst::http {
namespace {

TEST(EtagTest, ParseStrong) {
  const auto tag = Etag::parse("\"abc123\"");
  ASSERT_TRUE(tag);
  EXPECT_EQ(tag->value, "abc123");
  EXPECT_FALSE(tag->weak);
}

TEST(EtagTest, ParseWeak) {
  const auto tag = Etag::parse("W/\"v1\"");
  ASSERT_TRUE(tag);
  EXPECT_EQ(tag->value, "v1");
  EXPECT_TRUE(tag->weak);
}

TEST(EtagTest, ParseTolerantOfSurroundingWhitespace) {
  const auto tag = Etag::parse("  \"x\"  ");
  ASSERT_TRUE(tag);
  EXPECT_EQ(tag->value, "x");
}

TEST(EtagTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Etag::parse(""));
  EXPECT_FALSE(Etag::parse("abc"));          // no quotes
  EXPECT_FALSE(Etag::parse("\"unterminated"));
  EXPECT_FALSE(Etag::parse("\"em\"bedded\""));
  EXPECT_FALSE(Etag::parse("w/\"x\""));      // W must be uppercase... actually
  // RFC 9110 defines the weak prefix as the two characters "W/"; lowercase
  // is invalid.
}

TEST(EtagTest, RoundTrip) {
  for (const char* text : {"\"abc\"", "W/\"abc\"", "\"\""}) {
    const auto tag = Etag::parse(text);
    ASSERT_TRUE(tag) << text;
    EXPECT_EQ(tag->to_string(), text);
  }
}

// RFC 9110 §8.8.3.2 comparison table.
TEST(EtagTest, ComparisonTable) {
  const Etag w1{"1", true}, w1b{"1", true}, w2{"2", true}, s1{"1", false};
  // W/"1" vs W/"1": weak match only.
  EXPECT_FALSE(w1.strong_equals(w1b));
  EXPECT_TRUE(w1.weak_equals(w1b));
  // W/"1" vs W/"2": no match.
  EXPECT_FALSE(w1.strong_equals(w2));
  EXPECT_FALSE(w1.weak_equals(w2));
  // W/"1" vs "1": weak match only.
  EXPECT_FALSE(w1.strong_equals(s1));
  EXPECT_TRUE(w1.weak_equals(s1));
  // "1" vs "1": both.
  EXPECT_TRUE(s1.strong_equals(Etag{"1", false}));
  EXPECT_TRUE(s1.weak_equals(Etag{"1", false}));
}

TEST(IfNoneMatchTest, Wildcard) {
  const auto inm = IfNoneMatch::parse("*");
  ASSERT_TRUE(inm);
  EXPECT_TRUE(inm->any);
  EXPECT_TRUE(inm->matches(Etag{"anything", false}));
}

TEST(IfNoneMatchTest, ListMatchingIsWeak) {
  const auto inm = IfNoneMatch::parse("\"a\", W/\"b\", \"c\"");
  ASSERT_TRUE(inm);
  ASSERT_EQ(inm->tags.size(), 3u);
  EXPECT_TRUE(inm->matches(Etag{"b", false}));  // weak compare
  EXPECT_TRUE(inm->matches(Etag{"a", true}));
  EXPECT_FALSE(inm->matches(Etag{"d", false}));
}

TEST(IfNoneMatchTest, RejectsGarbage) {
  EXPECT_FALSE(IfNoneMatch::parse(""));
  EXPECT_FALSE(IfNoneMatch::parse("not-quoted"));
}

TEST(MakeContentEtagTest, DeterministicAndContentSensitive) {
  const Etag a = make_content_etag("hello");
  const Etag b = make_content_etag("hello");
  const Etag c = make_content_etag("hello!");
  EXPECT_EQ(a, b);
  EXPECT_NE(a.value, c.value);
  EXPECT_FALSE(a.weak);
  EXPECT_EQ(a.value.size(), 16u);
}

}  // namespace
}  // namespace catalyst::http
