#include "fleet/user_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/rng.h"
#include "workload/distributions.h"

namespace catalyst::fleet {
namespace {

TEST(UserModelTest, ProfileIsPureInSeedAndUserId) {
  UserModelParams params;
  const UserProfile a = make_user_profile(params, 4711);
  const UserProfile b = make_user_profile(params, 4711);
  EXPECT_EQ(a.user_id, b.user_id);
  EXPECT_EQ(a.site_index, b.site_index);
  EXPECT_EQ(a.tier, b.tier);
  EXPECT_EQ(a.mobile_client, b.mobile_client);
  EXPECT_EQ(a.visits, b.visits);
}

TEST(UserModelTest, DifferentUsersDiffer) {
  UserModelParams params;
  // Any single pair could collide by chance; across 50 users the visit
  // timelines must not all match user 0's.
  const UserProfile first = make_user_profile(params, 0);
  int identical = 0;
  for (std::uint64_t id = 1; id <= 50; ++id) {
    if (make_user_profile(params, id).visits == first.visits) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(UserModelTest, DifferentSeedsDiffer) {
  UserModelParams a, b;
  b.master_seed = a.master_seed + 1;
  int identical = 0;
  for (std::uint64_t id = 0; id < 20; ++id) {
    if (make_user_profile(a, id).visits == make_user_profile(b, id).visits) {
      ++identical;
    }
  }
  EXPECT_LT(identical, 20);
}

TEST(UserModelTest, VisitsSortedWithinHorizonAndCapped) {
  UserModelParams params;
  params.max_visits = 4;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const UserProfile p = make_user_profile(params, id);
    ASSERT_FALSE(p.visits.empty());
    EXPECT_LE(p.visits.size(), 4u);
    EXPECT_TRUE(std::is_sorted(p.visits.begin(), p.visits.end()));
    EXPECT_LT(p.visits.back().since_epoch(), params.horizon);
    ASSERT_GE(p.site_index, 0);
    EXPECT_LT(p.site_index, params.site_catalog_size);
  }
}

TEST(UserModelTest, SitePopularityIsZipfSkewed) {
  UserModelParams params;
  std::map<int, int> by_site;
  for (std::uint64_t id = 0; id < 2000; ++id) {
    ++by_site[make_user_profile(params, id).site_index];
  }
  // Rank 0 must clearly dominate the median rank.
  EXPECT_GT(by_site[0], by_site[params.site_catalog_size / 2] * 2);
}

TEST(UserModelTest, AllTiersAppear) {
  UserModelParams params;
  std::map<AccessTier, int> by_tier;
  for (std::uint64_t id = 0; id < 500; ++id) {
    ++by_tier[make_user_profile(params, id).tier];
  }
  EXPECT_EQ(by_tier.size(), 4u);
}

TEST(UserModelTest, TierConditionsAreOrdered) {
  // Worse tiers: less bandwidth, more latency.
  const auto fast = conditions_for(AccessTier::Fast5g);
  const auto slow = conditions_for(AccessTier::Constrained);
  EXPECT_GT(fast.downlink.bits_per_second(), slow.downlink.bits_per_second());
  EXPECT_LT(fast.rtt, slow.rtt);
}

TEST(DistributionsTest, ZipfRankBoundsAndDeterminism) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t k = workload::draw_zipf_rank(10, 0.9, rng);
    EXPECT_LT(k, 10u);
  }
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(workload::draw_zipf_rank(50, 0.9, a),
              workload::draw_zipf_rank(50, 0.9, b));
  }
  EXPECT_THROW(workload::draw_zipf_rank(0, 0.9, rng),
               std::invalid_argument);
}

TEST(DistributionsTest, VisitGapFlooredAndMeanRoughlyRight) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    const Duration gap = workload::draw_visit_gap(hours(12), rng);
    EXPECT_GE(gap, minutes(1));
    total += to_seconds(gap);
  }
  const double mean_hours = total / kDraws / 3600.0;
  EXPECT_NEAR(mean_hours, 12.0, 1.0);
  EXPECT_THROW(workload::draw_visit_gap(Duration::zero(), rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace catalyst::fleet
