#include "http/parser.h"

#include <gtest/gtest.h>

#include "http/serializer.h"

namespace catalyst::http {
namespace {

TEST(RequestParserTest, ParsesSimpleGet) {
  RequestParser parser;
  const auto result = parser.feed(
      "GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n");
  ASSERT_EQ(result, ParseResult::Done);
  const Request req = parser.take();
  EXPECT_EQ(req.method, Method::Get);
  EXPECT_EQ(req.target, "/index.html");
  EXPECT_EQ(req.headers.get("host"), "example.com");
  EXPECT_TRUE(req.body.empty());
}

TEST(RequestParserTest, IncrementalFeeding) {
  const std::string wire =
      "GET /a HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
  RequestParser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.feed(wire.substr(i, 1)), ParseResult::NeedMore)
        << "at byte " << i;
  }
  ASSERT_EQ(parser.feed(wire.substr(wire.size() - 1)), ParseResult::Done);
  EXPECT_EQ(parser.take().body, "hello");
}

TEST(RequestParserTest, RoundTripThroughSerializer) {
  Request original = Request::get("/x?q=1", "host.example");
  original.headers.add("Cookie", "sid=u1");
  original.headers.add(kIfNoneMatch, "\"abc\"");
  RequestParser parser;
  ASSERT_EQ(parser.feed(serialize(original)), ParseResult::Done);
  const Request parsed = parser.take();
  EXPECT_EQ(parsed.method, original.method);
  EXPECT_EQ(parsed.target, original.target);
  EXPECT_EQ(parsed.headers, original.headers);
}

TEST(ResponseParserTest, RoundTripWithBody) {
  Response original = Response::make(Status::Ok);
  original.headers.set(kContentType, "text/css");
  original.body = "body { margin: 0 }";
  original.finalize(TimePoint{});
  ResponseParser parser;
  ASSERT_EQ(parser.feed(serialize(original)), ParseResult::Done);
  const Response parsed = parser.take();
  EXPECT_EQ(parsed.status, Status::Ok);
  EXPECT_EQ(parsed.body, original.body);
  EXPECT_EQ(parsed.headers, original.headers);
}

TEST(ResponseParserTest, Parses304WithoutContentLength) {
  ResponseParser parser;
  ASSERT_EQ(parser.feed("HTTP/1.1 304 Not Modified\r\nETag: \"x\"\r\n\r\n"),
            ParseResult::Done);
  const Response resp = parser.take();
  EXPECT_EQ(resp.status, Status::NotModified);
  EXPECT_TRUE(resp.body.empty());
}

TEST(ParserErrorTest, BytesBeyondContentLength) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\nContent-Length: 2\r\n\r\nabcd"),
            ParseResult::Error);
}

TEST(ParserErrorTest, MalformedContentLength) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            ParseResult::Error);
}

TEST(ParserErrorTest, HeaderNameWithSpace) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\nBad Name: x\r\n\r\n"),
            ParseResult::Error);
}

TEST(ParserErrorTest, MissingColon) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            ParseResult::Error);
}

TEST(ParserErrorTest, TrailingBytesAfterCompleteMessage) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\n\r\n"), ParseResult::Done);
  EXPECT_EQ(parser.feed("extra"), ParseResult::Error);
}

TEST(ParserTest, ResetAllowsReuse) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET /1 HTTP/1.1\r\n\r\n"), ParseResult::Done);
  (void)parser.take();
  ASSERT_EQ(parser.feed("GET /2 HTTP/1.1\r\n\r\n"), ParseResult::Done);
  EXPECT_EQ(parser.take().target, "/2");
}

TEST(ParserTest, HeaderValueWhitespaceTrimmed) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\nX:   padded   \r\n\r\n"),
            ParseResult::Done);
  EXPECT_EQ(parser.take().headers.get("X"), "padded");
}

}  // namespace
}  // namespace catalyst::http
