#include "netsim/event_loop.h"

#include <gtest/gtest.h>

namespace catalyst::netsim {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(milliseconds(20), [&] { order.push_back(2); });
  loop.schedule_after(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule_after(milliseconds(30), [&] { order.push_back(3); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(30));
}

TEST(EventLoopTest, EqualTimesRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_after(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_after(milliseconds(1), recurse);
  };
  loop.schedule_after(milliseconds(1), recurse);
  EXPECT_EQ(loop.run(), 5u);
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(5));
}

TEST(EventLoopTest, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.schedule_after(milliseconds(10), [] {});
  loop.run();
  bool ran = false;
  loop.schedule_after(milliseconds(-5), [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(10));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_after(milliseconds(1), [&] { ran = true; });
  loop.cancel(id);
  EXPECT_EQ(loop.run(), 0u);
  EXPECT_FALSE(ran);
  loop.cancel(id);       // double-cancel is a no-op
  loop.cancel(9999999);  // unknown id is a no-op
}

TEST(EventLoopTest, PendingCountsExcludeCancelled) {
  EventLoop loop;
  const EventId a = loop.schedule_after(milliseconds(1), [] {});
  loop.schedule_after(milliseconds(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());
  loop.run();
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule_after(milliseconds(30), [&] { order.push_back(2); });
  EXPECT_EQ(loop.run_until(TimePoint{} + milliseconds(20)), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  // Clock advanced to the deadline even though no event sat there.
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(20));
  loop.run();
  EXPECT_EQ(order.size(), 2u);
}

TEST(EventLoopTest, AdvanceToRequiresEmptyQueue) {
  EventLoop loop;
  loop.schedule_after(milliseconds(1), [] {});
  EXPECT_THROW(loop.advance_to(TimePoint{} + hours(1)), std::logic_error);
  loop.run();
  loop.advance_to(TimePoint{} + hours(1));
  EXPECT_EQ(loop.now(), TimePoint{} + hours(1));
  // Moving backwards is ignored.
  loop.advance_to(TimePoint{} + minutes(1));
  EXPECT_EQ(loop.now(), TimePoint{} + hours(1));
}

TEST(EventLoopTest, AdvanceToAllowedAfterCancellingAll) {
  EventLoop loop;
  const EventId id = loop.schedule_after(milliseconds(1), [] {});
  loop.cancel(id);
  loop.advance_to(TimePoint{} + seconds(1));  // must not throw
  EXPECT_EQ(loop.now(), TimePoint{} + seconds(1));
}

TEST(EventLoopTest, StartTimeConstructor) {
  EventLoop loop(TimePoint{} + days(3));
  EXPECT_EQ(loop.now(), TimePoint{} + days(3));
  TimePoint observed{};
  loop.schedule_after(seconds(1), [&] { observed = loop.now(); });
  loop.run();
  EXPECT_EQ(observed, TimePoint{} + days(3) + seconds(1));
}

}  // namespace
}  // namespace catalyst::netsim
