#include "netsim/event_loop.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace catalyst::netsim {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(milliseconds(20), [&] { order.push_back(2); });
  loop.schedule_after(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule_after(milliseconds(30), [&] { order.push_back(3); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(30));
}

TEST(EventLoopTest, EqualTimesRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_after(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoopTest, EventsCanScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_after(milliseconds(1), recurse);
  };
  loop.schedule_after(milliseconds(1), recurse);
  EXPECT_EQ(loop.run(), 5u);
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(5));
}

TEST(EventLoopTest, NegativeDelayClampsToNow) {
  EventLoop loop;
  loop.schedule_after(milliseconds(10), [] {});
  loop.run();
  bool ran = false;
  loop.schedule_after(milliseconds(-5), [&] { ran = true; });
  loop.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(10));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_after(milliseconds(1), [&] { ran = true; });
  loop.cancel(id);
  EXPECT_EQ(loop.run(), 0u);
  EXPECT_FALSE(ran);
  loop.cancel(id);       // double-cancel is a no-op
  loop.cancel(9999999);  // unknown id is a no-op
}

TEST(EventLoopTest, PendingCountsExcludeCancelled) {
  EventLoop loop;
  const EventId a = loop.schedule_after(milliseconds(1), [] {});
  loop.schedule_after(milliseconds(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());
  loop.run();
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule_after(milliseconds(30), [&] { order.push_back(2); });
  EXPECT_EQ(loop.run_until(TimePoint{} + milliseconds(20)), 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  // Clock advanced to the deadline even though no event sat there.
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(20));
  loop.run();
  EXPECT_EQ(order.size(), 2u);
}

TEST(EventLoopTest, AdvanceToRequiresEmptyQueue) {
  EventLoop loop;
  loop.schedule_after(milliseconds(1), [] {});
  EXPECT_THROW(loop.advance_to(TimePoint{} + hours(1)), std::logic_error);
  loop.run();
  loop.advance_to(TimePoint{} + hours(1));
  EXPECT_EQ(loop.now(), TimePoint{} + hours(1));
  // Moving backwards is ignored.
  loop.advance_to(TimePoint{} + minutes(1));
  EXPECT_EQ(loop.now(), TimePoint{} + hours(1));
}

TEST(EventLoopTest, AdvanceToAllowedAfterCancellingAll) {
  EventLoop loop;
  const EventId id = loop.schedule_after(milliseconds(1), [] {});
  loop.cancel(id);
  loop.advance_to(TimePoint{} + seconds(1));  // must not throw
  EXPECT_EQ(loop.now(), TimePoint{} + seconds(1));
}

// Unbatched reference model: executes strictly one event at a time by
// scanning for the minimum (when, seq) pair — the pre-batching dispatch
// semantics. The batched EventLoop must produce exactly the same
// execution order for any workload, including same-timestamp events
// scheduled from inside callbacks and cancels of not-yet-run events.
class RefLoop {
 public:
  std::uint64_t schedule_after(Duration delay, std::function<void()> fn) {
    TimePoint when = now_ + delay;
    if (when < now_) when = now_;
    events_.push_back(Ev{when, seq_++, std::move(fn), false, false});
    return events_.size() - 1;
  }

  void cancel(std::uint64_t id) {
    if (id < events_.size()) events_[id].cancelled = true;
  }

  std::size_t run() {
    std::size_t executed = 0;
    for (;;) {
      std::size_t best = events_.size();
      for (std::size_t i = 0; i < events_.size(); ++i) {
        const Ev& e = events_[i];
        if (e.cancelled || e.done) continue;
        if (best == events_.size() || e.when < events_[best].when ||
            (e.when == events_[best].when && e.seq < events_[best].seq)) {
          best = i;
        }
      }
      if (best == events_.size()) return executed;
      events_[best].done = true;
      now_ = events_[best].when;
      std::function<void()> fn = std::move(events_[best].fn);
      fn();
      ++executed;
    }
  }

 private:
  struct Ev {
    TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool cancelled;
    bool done;
  };
  std::vector<Ev> events_;
  std::uint64_t seq_ = 0;
  TimePoint now_{};
};

// Randomized workload: events log their logical id, sometimes schedule a
// child at the same timestamp (delay 0) or slightly later, and sometimes
// cancel a previously scheduled event. All decisions are drawn from a
// seeded Rng inside the callbacks, so any divergence in execution order
// between the two loops also diverges the draw stream and is caught.
template <class Loop>
std::vector<int> drive_scenario(Loop& loop, std::uint64_t seed) {
  // Everything is a stack local that outlives loop.run(), so the
  // scheduled closures capture by reference — no ownership cycles.
  std::vector<int> log;
  std::vector<std::uint64_t> handles;
  Rng rng(seed);
  int next_id = 0;
  std::function<void(int)> body;
  body = [&](int id) {
    log.push_back(id);
    if (log.size() >= 500) return;
    const int roll = static_cast<int>(rng.uniform_int(0, 9));
    if (roll < 6) {  // schedule a child; 0..2 => same virtual timestamp
      const int child = next_id++;
      const Duration delay = milliseconds(roll < 3 ? 0 : roll - 2);
      handles.push_back(
          loop.schedule_after(delay, [&body, child] { body(child); }));
    }
    if (roll >= 8 && !handles.empty()) {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(handles.size()) - 1));
      loop.cancel(handles[victim]);
    }
  };
  for (int i = 0; i < 40; ++i) {
    const int id = next_id++;
    handles.push_back(loop.schedule_after(
        milliseconds(rng.uniform_int(0, 4)), [&body, id] { body(id); }));
  }
  loop.run();
  return log;
}

TEST(EventLoopTest, BatchedDispatchMatchesUnbatchedReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EventLoop batched;
    RefLoop reference;
    const std::vector<int> got = drive_scenario(batched, seed);
    const std::vector<int> want = drive_scenario(reference, seed);
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(got, want) << "seed " << seed;
  }
}

TEST(EventLoopTest, IntraBatchCancelSkipsSameTimestampEvent) {
  EventLoop loop;
  std::vector<int> order;
  EventId doomed = 0;
  loop.schedule_after(milliseconds(5), [&] {
    order.push_back(1);
    loop.cancel(doomed);  // same timestamp, already in the ready batch
  });
  doomed = loop.schedule_after(milliseconds(5), [&] { order.push_back(2); });
  loop.schedule_after(milliseconds(5), [&] { order.push_back(3); });
  EXPECT_EQ(loop.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventLoopTest, ZeroDelayFromCallbackRunsAfterCurrentBatch) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_after(milliseconds(5), [&] {
    order.push_back(1);
    // Due now: must run after the rest of this batch, not before.
    loop.schedule_after(milliseconds(0), [&] { order.push_back(3); });
  });
  loop.schedule_after(milliseconds(5), [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), TimePoint{} + milliseconds(5));
}

TEST(EventLoopTest, RunUntilAtDeadlineRunsDueNowEvents) {
  EventLoop loop;
  loop.schedule_after(milliseconds(10), [&] {
    loop.schedule_after(milliseconds(0), [] {});
  });
  // Deadline exactly at the event time: both the event and the
  // zero-delay child it schedules are due, so both run.
  EXPECT_EQ(loop.run_until(TimePoint{} + milliseconds(10)), 2u);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoopTest, StartTimeConstructor) {
  EventLoop loop(TimePoint{} + days(3));
  EXPECT_EQ(loop.now(), TimePoint{} + days(3));
  TimePoint observed{};
  loop.schedule_after(seconds(1), [&] { observed = loop.now(); });
  loop.run();
  EXPECT_EQ(observed, TimePoint{} + days(3) + seconds(1));
}

}  // namespace
}  // namespace catalyst::netsim
