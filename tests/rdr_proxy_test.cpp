// RDR proxy internals: the headless page load on the proxy host and the
// bundle it assembles.
#include "core/rdr_proxy.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "util/json.h"
#include "workload/sitegen.h"

namespace catalyst::core {
namespace {

TEST(RdrProxyTest, BundleCarriesMetaAndFullWeight) {
  workload::SitegenParams p;
  p.seed = 5;
  p.site_index = 1;
  p.clone_static_snapshot = true;
  auto site = workload::generate_site(p);

  Testbed tb = make_testbed(site, netsim::NetworkConditions::median_5g(),
                            StrategyKind::RdrProxy);
  const auto result = run_visit(tb, TimePoint{});

  // One logical fetch: the bundle.
  ASSERT_EQ(result.trace.traces().size(), 1u);
  const auto& bundle = result.trace.traces().front();
  // The bundle weighs roughly the whole page (every resource was fetched
  // at the proxy and shipped down).
  EXPECT_GT(bundle.bytes_down, site->total_bytes() / 2);
  EXPECT_EQ(result.resources_total, site->resource_count());
  EXPECT_GT(result.plt(), Duration::zero());
  ASSERT_NE(tb.proxy, nullptr);
  EXPECT_EQ(tb.proxy->loads_performed(), 1u);
}

TEST(RdrProxyTest, ProxyLatencyAdvantageShowsOnColdLoads) {
  workload::SitegenParams p;
  p.seed = 5;
  p.site_index = 2;
  p.clone_static_snapshot = true;
  auto site = workload::generate_site(p);

  // At very high client-origin latency, resolving the dependency graph
  // next to the origin (6 ms RTT) beats doing it across the access link.
  netsim::NetworkConditions awful = netsim::NetworkConditions::median_5g();
  awful.rtt = milliseconds(300);
  const auto direct =
      run_revisit_pair(site, awful, StrategyKind::Baseline, hours(1));
  const auto rdr =
      run_revisit_pair(site, awful, StrategyKind::RdrProxy, hours(1));
  EXPECT_LT(rdr.cold.plt(), direct.cold.plt());
}

TEST(RdrProxyTest, EachVisitIsAFreshProxyLoad) {
  workload::SitegenParams p;
  p.seed = 5;
  p.site_index = 3;
  p.clone_static_snapshot = true;
  auto site = workload::generate_site(p);
  Testbed tb = make_testbed(site, netsim::NetworkConditions::median_5g(),
                            StrategyKind::RdrProxy);
  (void)run_visit(tb, TimePoint{});
  (void)run_visit(tb, TimePoint{} + hours(1));
  EXPECT_EQ(tb.proxy->loads_performed(), 2u);
}

TEST(RdrProxyTest, BundleMetaParses) {
  // The meta header format is load-bearing for the client's compute
  // model; lock its schema.
  workload::SitegenParams p;
  p.seed = 5;
  p.site_index = 4;
  auto site = workload::generate_site(p);
  Testbed tb = make_testbed(site, netsim::NetworkConditions::median_5g(),
                            StrategyKind::RdrProxy);

  bool checked = false;
  tb.browser->fetch(tb.fetch_url, /*is_navigation=*/true, std::nullopt,
                    [&](client::FetchOutcome outcome) {
                      const auto meta = outcome.response.headers.get(
                          kBundleMetaHeader);
                      ASSERT_TRUE(meta.has_value());
                      const auto json = Json::parse(*meta);
                      ASSERT_TRUE(json && json->is_object());
                      EXPECT_NE(json->find("resources"), nullptr);
                      EXPECT_NE(json->find("js_bytes"), nullptr);
                      EXPECT_NE(json->find("css_bytes"), nullptr);
                      EXPECT_TRUE(outcome.response.cache_control().no_store);
                      checked = true;
                    });
  tb.loop->run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace catalyst::core
