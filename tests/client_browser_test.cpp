// Browser fetch-pipeline unit tests against a single-resource origin.
#include "client/browser.h"

#include <gtest/gtest.h>

#include "server/server.h"

namespace catalyst::client {
namespace {

class BrowserFixture : public ::testing::Test {
 protected:
  BrowserFixture() : net_(loop_) {
    netsim::HostSpec client_spec;
    client_spec.downlink = mbps(60);
    client_spec.uplink = mbps(12);
    net_.add_host("client", client_spec);
    net_.add_host("origin.test");
    net_.set_rtt("client", "origin.test", milliseconds(40));

    auto site = std::make_shared<server::Site>("origin.test");
    site->add_resource(std::make_unique<server::Resource>(
        "/r.css", http::ResourceClass::Css, 2000,
        [](std::uint64_t v) {
          return ".r { /* v" + std::to_string(v) + " */ }" +
                 std::string(1960, 'x');
        },
        server::ChangeProcess::periodic(hours(10), hours(10), days(10)),
        http::CacheControl::with_max_age(minutes(10))));
    site_ = site;
    server_.emplace(net_, site, server::ServerConfig{});
  }

  Browser make_browser(bool sw_enabled = false) {
    BrowserConfig config;
    config.service_workers_enabled = sw_enabled;
    return Browser(net_, config);
  }

  FetchOutcome fetch_now(Browser& browser, TimePoint at) {
    loop_.run();
    loop_.advance_to(at);
    FetchOutcome out;
    bool done = false;
    browser.fetch(*Url::parse("https://origin.test/r.css"), false,
                  std::nullopt, [&](FetchOutcome o) {
                    out = std::move(o);
                    done = true;
                  });
    loop_.run();
    EXPECT_TRUE(done);
    return out;
  }

  netsim::EventLoop loop_;
  netsim::Network net_;
  std::shared_ptr<server::Site> site_;
  std::optional<server::Server> server_;
};

TEST_F(BrowserFixture, ColdFetchGoesToNetworkAndStores) {
  Browser browser = make_browser();
  const auto outcome = fetch_now(browser, TimePoint{});
  EXPECT_EQ(outcome.source, netsim::FetchSource::Network);
  EXPECT_EQ(outcome.response.status, http::Status::Ok);
  EXPECT_TRUE(browser.http_cache().contains("https://origin.test/r.css"));
  // TLS handshake (2 RTT) + exchange (1 RTT) + transmission.
  EXPECT_GE(outcome.finish - outcome.start, milliseconds(120));
}

TEST_F(BrowserFixture, FreshHitServedLocally) {
  Browser browser = make_browser();
  fetch_now(browser, TimePoint{});
  const auto outcome = fetch_now(browser, TimePoint{} + minutes(5));
  EXPECT_EQ(outcome.source, netsim::FetchSource::BrowserCache);
  // No network: sub-millisecond.
  EXPECT_LT(outcome.finish - outcome.start, milliseconds(1));
}

TEST_F(BrowserFixture, StaleUnchangedRevalidatesTo304) {
  Browser browser = make_browser();
  fetch_now(browser, TimePoint{});
  browser.end_visit();
  const auto outcome = fetch_now(browser, TimePoint{} + hours(1));
  EXPECT_EQ(outcome.source, netsim::FetchSource::NotModified);
  EXPECT_EQ(outcome.response.status, http::Status::Ok);  // cached body
  EXPECT_FALSE(outcome.response.body.empty());
  // The 304 refreshed freshness: immediately fresh again.
  const auto again = fetch_now(browser, TimePoint{} + hours(1) + minutes(5));
  EXPECT_EQ(again.source, netsim::FetchSource::BrowserCache);
}

TEST_F(BrowserFixture, StaleChangedDownloadsNewVersion) {
  Browser browser = make_browser();
  const auto v0 = fetch_now(browser, TimePoint{});
  browser.end_visit();
  // Content changes at +10h.
  const auto outcome = fetch_now(browser, TimePoint{} + hours(11));
  EXPECT_EQ(outcome.source, netsim::FetchSource::Network);
  EXPECT_NE(outcome.response.body, v0.response.body);
}

TEST_F(BrowserFixture, OracleValidatesWithoutNetwork) {
  Browser browser = make_browser();
  auto site = site_;
  netsim::EventLoop* loop = &loop_;
  browser.set_oracle([site, loop](const Url& url, const http::Etag& etag) {
    const server::Resource* r = site->find(url.path);
    return r != nullptr && r->etag_at(loop->now()).weak_equals(etag);
  });
  fetch_now(browser, TimePoint{});
  browser.end_visit();
  // Expired but unchanged: oracle serves instantly (no 304 round trip).
  const auto unchanged = fetch_now(browser, TimePoint{} + hours(1));
  EXPECT_EQ(unchanged.source, netsim::FetchSource::BrowserCache);
  EXPECT_LT(unchanged.finish - unchanged.start, milliseconds(1));
  browser.end_visit();
  // Changed: oracle skips the conditional request and downloads directly.
  const auto changed = fetch_now(browser, TimePoint{} + hours(11));
  EXPECT_EQ(changed.source, netsim::FetchSource::Network);
}

TEST_F(BrowserFixture, ConcurrentLoadsRejected) {
  Browser browser = make_browser();
  browser.load_page(*Url::parse("https://origin.test/r.css"),
                    [](PageLoadResult) {});
  EXPECT_THROW(browser.load_page(*Url::parse("https://origin.test/r.css"),
                                 [](PageLoadResult) {}),
               std::logic_error);
  loop_.run();
}

}  // namespace
}  // namespace catalyst::client
