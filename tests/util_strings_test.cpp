#include "util/strings.h"

#include <gtest/gtest.h>

namespace catalyst {
namespace {

TEST(StringsTest, AsciiClassifiers) {
  EXPECT_EQ(ascii_tolower('A'), 'a');
  EXPECT_EQ(ascii_tolower('z'), 'z');
  EXPECT_EQ(ascii_tolower('0'), '0');
  EXPECT_TRUE(ascii_isspace(' '));
  EXPECT_TRUE(ascii_isspace('\t'));
  EXPECT_FALSE(ascii_isspace('x'));
  EXPECT_TRUE(ascii_isdigit('5'));
  EXPECT_FALSE(ascii_isdigit('a'));
  EXPECT_TRUE(ascii_isalpha('Q'));
  EXPECT_FALSE(ascii_isalpha('!'));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("Content-TYPE"), "content-type");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringsTest, IEquals) {
  EXPECT_TRUE(iequals("ETag", "etag"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("etag", "etags"));
  EXPECT_FALSE(iequals("etag", "etah"));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nabc\n"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingle) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("/index.html", "/"));
  EXPECT_FALSE(starts_with("x", "xy"));
  EXPECT_TRUE(ends_with("style.css", ".css"));
  EXPECT_FALSE(ends_with("css", ".css"));
  EXPECT_TRUE(istarts_with("HTTP/1.1", "http/"));
}

TEST(StringsTest, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, std::uint64_t(-1));
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12x", v));
  EXPECT_FALSE(parse_u64("-3", v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%s", ""), "");
  // Long outputs are not truncated.
  const std::string big(500, 'a');
  EXPECT_EQ(str_format("%s", big.c_str()).size(), 500u);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

}  // namespace
}  // namespace catalyst
