#include "netsim/transport.h"

#include <gtest/gtest.h>

namespace catalyst::netsim {
namespace {

class TransportFixture : public ::testing::Test {
 protected:
  TransportFixture() : net_(loop_) {
    HostSpec client;
    client.downlink = mbps(80);  // 10 MB/s
    client.uplink = mbps(80);
    net_.add_host("client", client);
    net_.add_host("origin");
    net_.set_rtt("client", "origin", milliseconds(40));
    // Echo server: responds with a fixed-size body instantly.
    net_.host("origin").set_handler(
        [this](const http::Request& req, auto respond) {
          ++requests_seen_;
          last_target_ = req.target;
          ServerReply reply;
          reply.response = http::Response::make(http::Status::Ok);
          reply.response.body = std::string(response_size_, 'x');
          reply.response.finalize(loop_.now());
          respond(std::move(reply));
        });
  }

  http::Request request(const char* target = "/") {
    return http::Request::get(target, "origin");
  }

  EventLoop loop_;
  Network net_;
  int requests_seen_ = 0;
  std::string last_target_;
  std::size_t response_size_ = 1000;
};

TEST_F(TransportFixture, PlainTcpHandshakeCostsOneRtt) {
  Connection conn(net_, "client", "origin", /*tls=*/false, Protocol::H1);
  TimePoint established{};
  conn.connect([&] { established = loop_.now(); });
  loop_.run();
  EXPECT_EQ(established, TimePoint{} + milliseconds(40));
  EXPECT_TRUE(conn.established());
  EXPECT_EQ(conn.rtts_consumed(), 1);
}

TEST_F(TransportFixture, TlsHandshakeCostsTwoRtts) {
  Connection conn(net_, "client", "origin", /*tls=*/true, Protocol::H1);
  TimePoint established{};
  conn.connect([&] { established = loop_.now(); });
  loop_.run();
  EXPECT_EQ(established, TimePoint{} + milliseconds(80));
  EXPECT_EQ(conn.rtts_consumed(), 2);
}

TEST_F(TransportFixture, ConnectIsIdempotentWhileConnecting) {
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  int callbacks = 0;
  conn.connect([&] { ++callbacks; });
  conn.connect([&] { ++callbacks; });
  loop_.run();
  EXPECT_EQ(callbacks, 2);
  // Connecting again after establishment fires immediately.
  conn.connect([&] { ++callbacks; });
  loop_.run();
  EXPECT_EQ(callbacks, 3);
}

TEST_F(TransportFixture, RequestResponseTiming) {
  // Established plain connection: an exchange costs 1 RTT + transmission.
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  conn.connect([] {});
  loop_.run();

  response_size_ = 100'000;  // 10 ms at 10 MB/s
  TimePoint done{};
  http::Request req = request();
  const ByteCount req_bytes = req.wire_size();
  conn.send_request(std::move(req), [&](http::Response resp) {
    done = loop_.now();
    EXPECT_EQ(resp.status, http::Status::Ok);
    EXPECT_EQ(resp.body.size(), 100'000u);
  });
  loop_.run();
  const Duration expected =
      milliseconds(40)                              // handshake already done
      + mbps(80).transmission_time(req_bytes)       // request upload
      + milliseconds(40)                            // rtt (two one-way legs)
      + mbps(80).transmission_time(100'000 + 97);   // response + head bytes
  // Head bytes: status line + Content-Length/Date headers; compare with a
  // tolerance of the few-hundred-microsecond header transmission instead
  // of hardcoding exact header sizes.
  const double got = to_seconds(done - (TimePoint{} + milliseconds(40)));
  const double want = to_seconds(milliseconds(40)) +
                      static_cast<double>(req_bytes) / 10e6 +
                      (100'000.0 + 100.0) / 10e6;
  EXPECT_NEAR(got, want, 5e-4);
  (void)expected;
}

TEST_F(TransportFixture, H1SerializesRequests) {
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    conn.send_request(request(), [&](http::Response) {
      completions.push_back(loop_.now());
    });
  }
  EXPECT_TRUE(conn.busy() || !conn.established());
  loop_.run();
  ASSERT_EQ(completions.size(), 3u);
  // Strictly increasing: no pipelining.
  EXPECT_LT(completions[0], completions[1]);
  EXPECT_LT(completions[1], completions[2]);
  // Each exchange costs at least one RTT.
  EXPECT_GE(completions[1] - completions[0], milliseconds(40));
  EXPECT_EQ(conn.requests_completed(), 3);
}

TEST_F(TransportFixture, H2MultiplexesRequests) {
  Connection conn(net_, "client", "origin", false, Protocol::H2);
  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    conn.send_request(request(), [&](http::Response) {
      completions.push_back(loop_.now());
    });
  }
  loop_.run();
  ASSERT_EQ(completions.size(), 3u);
  // All three overlap: total wall time well under 3 serial RTTs.
  EXPECT_LT(completions.back() - TimePoint{},
            milliseconds(40) /*handshake*/ + milliseconds(60));
}

TEST_F(TransportFixture, AutoConnectOnSend) {
  Connection conn(net_, "client", "origin", true, Protocol::H1);
  bool got = false;
  conn.send_request(request(), [&](http::Response) { got = true; });
  loop_.run();
  EXPECT_TRUE(got);
  // TLS handshake + exchange RTTs.
  EXPECT_GE(conn.rtts_consumed(), 3);
}

TEST_F(TransportFixture, ByteCountersTrackBothDirections) {
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  http::Request req = request();
  const ByteCount req_size = req.wire_size();
  ByteCount resp_size = 0;
  conn.send_request(std::move(req), [&](http::Response resp) {
    resp_size = resp.wire_size();
  });
  loop_.run();
  EXPECT_EQ(conn.bytes_sent(), req_size);
  EXPECT_EQ(conn.bytes_received(), resp_size);
}

TEST_F(TransportFixture, MissingHandlerThrows) {
  net_.add_host("bare");
  net_.set_rtt("client", "bare", milliseconds(10));
  Connection conn(net_, "client", "bare", false, Protocol::H1);
  conn.send_request(request(), [](http::Response) {});
  EXPECT_THROW(loop_.run(), std::logic_error);
}

TEST_F(TransportFixture, SlowStartAddsRampUpRtts) {
  net_.set_model_slow_start(true);
  response_size_ = 200'000;  // ~14 initcwnd segments -> several rounds
  Connection fresh(net_, "client", "origin", false, Protocol::H1);
  TimePoint done_slow{};
  fresh.send_request(request(),
                     [&](http::Response) { done_slow = loop_.now(); });
  loop_.run();

  EventLoop loop2;
  Network net2(loop2);
  HostSpec client;
  client.downlink = mbps(80);
  client.uplink = mbps(80);
  net2.add_host("client", client);
  net2.add_host("origin");
  net2.set_rtt("client", "origin", milliseconds(40));
  net2.host("origin").set_handler([&](const http::Request&, auto respond) {
    ServerReply reply;
    reply.response = http::Response::make(http::Status::Ok);
    reply.response.body = std::string(200'000, 'x');
    reply.response.finalize(loop2.now());
    respond(std::move(reply));
  });
  Connection no_ss(net2, "client", "origin", false, Protocol::H1);
  TimePoint done_fast{};
  no_ss.send_request(http::Request::get("/", "origin"),
                     [&](http::Response) { done_fast = loop2.now(); });
  loop2.run();

  EXPECT_GT(done_slow - TimePoint{}, done_fast - TimePoint{});
  // Ramp-up is a whole number of RTTs.
  const Duration diff = (done_slow - TimePoint{}) - (done_fast - TimePoint{});
  EXPECT_EQ(diff.count() % milliseconds(40).count(), 0);
}

TEST_F(TransportFixture, SlowStartWindowPersistsAcrossRequests) {
  net_.set_model_slow_start(true);
  response_size_ = 200'000;
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  TimePoint first_done{}, second_start{}, second_done{};
  conn.send_request(request(), [&](http::Response) {
    first_done = loop_.now();
    second_start = loop_.now();
    conn.send_request(request(), [&](http::Response) {
      second_done = loop_.now();
    });
  });
  loop_.run();
  // The grown congestion window makes the second identical transfer
  // strictly faster.
  EXPECT_LT(second_done - second_start, first_done - TimePoint{});
}

}  // namespace
}  // namespace catalyst::netsim
