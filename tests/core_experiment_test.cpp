#include "core/experiment.h"

#include <gtest/gtest.h>

#include "workload/sitegen.h"

namespace catalyst::core {
namespace {

std::shared_ptr<server::Site> test_site(int index, bool clone = true) {
  workload::SitegenParams p;
  p.seed = 7;
  p.site_index = index;
  p.clone_static_snapshot = clone;
  return workload::generate_site(p);
}

TEST(ExperimentTest, PaperDelays) {
  const auto delays = paper_revisit_delays();
  ASSERT_EQ(delays.size(), 5u);
  EXPECT_EQ(delays[0], minutes(1));
  EXPECT_EQ(delays[4], days(7));
}

TEST(ExperimentTest, RevisitPairColdThenWarm) {
  const auto outcome = run_revisit_pair(
      test_site(0), netsim::NetworkConditions::median_5g(),
      StrategyKind::Baseline, hours(6));
  EXPECT_GT(outcome.cold.plt(), Duration::zero());
  EXPECT_LT(outcome.revisit.plt(), outcome.cold.plt());
  EXPECT_EQ(outcome.cold.from_network, outcome.cold.resources_total);
  EXPECT_LT(outcome.revisit.from_network, outcome.revisit.resources_total);
  // The revisit starts 6 simulated hours after the cold load began.
  EXPECT_GE(outcome.revisit.start, TimePoint{} + hours(6));
}

TEST(ExperimentTest, VisitSequenceRunsAllDelays) {
  const auto results = run_visit_sequence(
      test_site(1), netsim::NetworkConditions::median_5g(),
      StrategyKind::Catalyst, {minutes(1), hours(1)});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_LT(results[1].plt(), results[0].plt());
}

TEST(ExperimentTest, StrategyOrderingOnCloneRevisit) {
  // Oracle <= Catalyst <= Baseline on unchanged revisits (the DESIGN.md
  // monotonicity invariant), with a small tolerance for SW/header
  // overheads in the catalyst-vs-oracle comparison.
  for (int i = 0; i < 3; ++i) {
    const auto site = test_site(i);
    const auto c = netsim::NetworkConditions::median_5g();
    const auto base =
        run_revisit_pair(site, c, StrategyKind::Baseline, hours(6));
    const auto cat =
        run_revisit_pair(site, c, StrategyKind::Catalyst, hours(6));
    const auto oracle =
        run_revisit_pair(site, c, StrategyKind::Oracle, hours(6));
    EXPECT_LT(to_millis(cat.revisit.plt()),
              to_millis(base.revisit.plt()) * 1.001)
        << "site " << i;
    EXPECT_LT(to_millis(oracle.revisit.plt()),
              to_millis(cat.revisit.plt()) * 1.001)
        << "site " << i;
  }
}

TEST(ExperimentTest, CatalystSavesRttsNotJustTime) {
  const auto site = test_site(4);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto base =
      run_revisit_pair(site, c, StrategyKind::Baseline, hours(6));
  const auto cat =
      run_revisit_pair(site, c, StrategyKind::Catalyst, hours(6));
  EXPECT_LT(cat.revisit.rtts, base.revisit.rtts);
  EXPECT_GT(cat.revisit.from_sw_cache, 0u);
}

TEST(ExperimentTest, PushWastesBandwidthOnRevisit) {
  const auto site = test_site(2);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto base =
      run_revisit_pair(site, c, StrategyKind::Baseline, hours(6));
  const auto push =
      run_revisit_pair(site, c, StrategyKind::PushAll, hours(6));
  // The push revisit resends resources the client already has.
  EXPECT_GT(push.revisit.bytes_downloaded,
            base.revisit.bytes_downloaded * 2);
  EXPECT_GT(push.revisit.from_push, 0u);
}

TEST(ExperimentTest, RdrRevisitGainsNothing) {
  const auto site = test_site(3);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto rdr =
      run_revisit_pair(site, c, StrategyKind::RdrProxy, hours(6));
  // No client-cache reuse: the revisit costs as much as the cold load.
  EXPECT_NEAR(to_millis(rdr.revisit.plt()), to_millis(rdr.cold.plt()),
              to_millis(rdr.cold.plt()) * 0.02);
  EXPECT_GT(rdr.revisit.bytes_downloaded,
            rdr.cold.bytes_downloaded / 2);
}

TEST(ExperimentTest, ReductionSummaryPositiveAtMedian5g) {
  std::vector<std::shared_ptr<server::Site>> sites;
  for (int i = 0; i < 3; ++i) sites.push_back(test_site(i));
  const Summary s = plt_reduction_summary(
      sites, netsim::NetworkConditions::median_5g(),
      StrategyKind::Catalyst, StrategyKind::Baseline,
      {hours(1), days(1)});
  EXPECT_EQ(s.count(), 6u);
  EXPECT_GT(s.mean(), 5.0);   // solidly positive
  EXPECT_LT(s.mean(), 80.0);  // and sane
}

TEST(ExperimentTest, ImprovementGrowsWithLatency) {
  std::vector<std::shared_ptr<server::Site>> sites;
  for (int i = 0; i < 4; ++i) sites.push_back(test_site(i));
  netsim::NetworkConditions low = netsim::NetworkConditions::median_5g();
  low.rtt = milliseconds(10);
  netsim::NetworkConditions high = netsim::NetworkConditions::median_5g();
  high.rtt = milliseconds(80);
  const auto delays = std::vector<Duration>{hours(6)};
  const double low_gain =
      plt_reduction_summary(sites, low, StrategyKind::Catalyst,
                            StrategyKind::Baseline, delays)
          .mean();
  const double high_gain =
      plt_reduction_summary(sites, high, StrategyKind::Catalyst,
                            StrategyKind::Baseline, delays)
          .mean();
  EXPECT_GT(high_gain, low_gain);
}

TEST(ExperimentTest, SlowStartOptionSlowsColdLoads) {
  const auto site = test_site(5);
  const auto c = netsim::NetworkConditions::median_5g();
  StrategyOptions with_ss;
  with_ss.slow_start = true;
  const auto plain =
      run_revisit_pair(site, c, StrategyKind::Baseline, hours(1));
  const auto ss = run_revisit_pair(site, c, StrategyKind::Baseline,
                                   hours(1), with_ss);
  EXPECT_GT(ss.cold.plt(), plain.cold.plt());
}

TEST(ExperimentTest, CatalystLearnedCoversJsResourcesOnRevisit) {
  // Use a live site (dynamic fetches exist) and compare residual
  // revalidations.
  const auto site = test_site(6, /*clone=*/false);
  const auto c = netsim::NetworkConditions::median_5g();
  const auto plain =
      run_revisit_pair(site, c, StrategyKind::Catalyst, hours(1));
  const auto learned =
      run_revisit_pair(site, c, StrategyKind::CatalystLearned, hours(1));
  EXPECT_GT(learned.revisit.from_sw_cache, plain.revisit.from_sw_cache);
  EXPECT_LE(to_millis(learned.revisit.plt()),
            to_millis(plain.revisit.plt()) * 1.001);
}

TEST(StrategyTest, Names) {
  EXPECT_EQ(to_string(StrategyKind::Baseline), "baseline");
  EXPECT_EQ(to_string(StrategyKind::Catalyst), "catalyst");
  EXPECT_EQ(to_string(StrategyKind::RdrProxy), "rdr-proxy");
  EXPECT_EQ(to_string(StrategyKind::Oracle), "oracle");
}

}  // namespace
}  // namespace catalyst::core
