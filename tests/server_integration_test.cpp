// Integration tests of the composed origin server (Server class): request
// routing, catalyst decoration on the wire, SW-script serving, push
// emission, and session-learning plumbing via Cookie/Referer headers.
#include <gtest/gtest.h>

#include "netsim/transport.h"
#include "util/bloom.h"
#include "server/server.h"
#include "workload/sitegen.h"

namespace catalyst::server {
namespace {

class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture() : net_(loop_) {
    net_.add_host("client");
    net_.add_host("example.com");
    net_.set_rtt("client", "example.com", milliseconds(10));
    site_ = workload::make_figure1_site();
  }

  void start_server(ServerConfig config) {
    server_.emplace(net_, site_, config);
  }

  http::Response exchange(http::Request request,
                          netsim::Protocol protocol = netsim::Protocol::H1,
                          std::vector<netsim::PushedResponse>* pushes =
                              nullptr,
                          std::vector<std::string>* hints = nullptr) {
    netsim::Connection conn(net_, "client", "example.com", /*tls=*/false,
                            protocol);
    std::optional<http::Response> got;
    conn.send_request(
        std::move(request),
        [&](http::Response resp) { got = std::move(resp); },
        [&](netsim::PushedResponse push) {
          if (pushes) pushes->push_back(std::move(push));
        },
        /*on_promise=*/nullptr,
        [&](const std::vector<std::string>& urls) {
          if (hints) *hints = urls;
        });
    loop_.run();
    EXPECT_TRUE(got.has_value());
    return std::move(*got);
  }

  http::Request with_session(http::Request req,
                             const std::string& sid,
                             const std::string& referer = "") {
    req.headers.set("Cookie", make_session_cookie(sid));
    if (!referer.empty()) req.headers.set("Referer", referer);
    return req;
  }

  netsim::EventLoop loop_;
  netsim::Network net_;
  std::shared_ptr<Site> site_;
  std::optional<Server> server_;
};

TEST_F(ServerFixture, ServesStaticContent) {
  start_server({});
  const auto resp =
      exchange(http::Request::get("/a.css", "example.com"));
  EXPECT_EQ(resp.status, http::Status::Ok);
  EXPECT_EQ(resp.headers.get(http::kContentType), "text/css");
  EXPECT_FALSE(resp.headers.contains(http::kXEtagConfig));
}

TEST_F(ServerFixture, ProcessingDelayApplied) {
  ServerConfig config;
  config.processing_delay = milliseconds(5);
  start_server(config);
  const TimePoint t0 = loop_.now();
  exchange(http::Request::get("/a.css", "example.com"));
  // Handshake (1 RTT) + exchange (1 RTT) + processing + transmission.
  EXPECT_GE(loop_.now() - t0, milliseconds(10 + 10 + 5));
}

TEST_F(ServerFixture, CatalystDecoratesHtmlOnly) {
  ServerConfig config;
  config.enable_catalyst = true;
  start_server(config);
  const auto html =
      exchange(http::Request::get("/index.html", "example.com"));
  ASSERT_TRUE(html.headers.contains(http::kXEtagConfig));
  const auto map =
      http::EtagConfig::parse(*html.headers.get(http::kXEtagConfig));
  ASSERT_TRUE(map);
  EXPECT_TRUE(map->find("/a.css"));
  EXPECT_TRUE(map->find("/b.js"));
  EXPECT_NE(html.body.find("serviceWorker"), std::string::npos);

  const auto css = exchange(http::Request::get("/a.css", "example.com"));
  EXPECT_FALSE(css.headers.contains(http::kXEtagConfig));
}

TEST_F(ServerFixture, CatalystDecorates304) {
  ServerConfig config;
  config.enable_catalyst = true;
  start_server(config);
  const auto first =
      exchange(http::Request::get("/index.html", "example.com"));
  http::Request conditional =
      http::Request::get("/index.html", "example.com");
  // The injected snippet changes the body, so the decorated response's
  // ETag differs from the raw resource's; revalidate with the raw one.
  conditional.headers.set(http::kIfNoneMatch,
                          site_->find("/index.html")
                              ->etag_at(loop_.now())
                              .to_string());
  const auto revalidated = exchange(std::move(conditional));
  EXPECT_EQ(revalidated.status, http::Status::NotModified);
  EXPECT_TRUE(revalidated.headers.contains(http::kXEtagConfig));
  EXPECT_TRUE(revalidated.body.empty());
  (void)first;
}

TEST_F(ServerFixture, ServesSwScript) {
  ServerConfig config;
  config.enable_catalyst = true;
  start_server(config);
  const auto resp = exchange(http::Request::get(
      std::string(CatalystModule::kSwPath), "example.com"));
  EXPECT_EQ(resp.status, http::Status::Ok);
  EXPECT_EQ(resp.headers.get(http::kContentType),
            "application/javascript");
  EXPECT_TRUE(resp.cache_control().no_cache);
}

TEST_F(ServerFixture, SwPathIs404WithoutCatalyst) {
  start_server({});
  const auto resp = exchange(http::Request::get(
      std::string(CatalystModule::kSwPath), "example.com"));
  EXPECT_EQ(resp.status, http::Status::NotFound);
}

TEST_F(ServerFixture, PushAllEmitsPushesOnH2) {
  ServerConfig config;
  config.push_policy = PushPolicy::All;
  start_server(config);
  std::vector<netsim::PushedResponse> pushes;
  exchange(http::Request::get("/index.html", "example.com"),
           netsim::Protocol::H2, &pushes);
  ASSERT_EQ(pushes.size(), 2u);  // a.css + b.js (static closure)
  EXPECT_EQ(pushes[0].target, "/a.css");
}

TEST_F(ServerFixture, NoPushesOnH1) {
  ServerConfig config;
  config.push_policy = PushPolicy::All;
  start_server(config);
  std::vector<netsim::PushedResponse> pushes;
  exchange(http::Request::get("/index.html", "example.com"),
           netsim::Protocol::H1, &pushes);
  EXPECT_TRUE(pushes.empty());
}

TEST_F(ServerFixture, SessionLearningFlowsIntoMap) {
  ServerConfig config;
  config.enable_catalyst = true;
  config.catalyst.session_learning = true;
  config.track_sessions = true;
  start_server(config);

  // Visit 1: HTML, then a JS-discovered fetch attributed via Referer.
  exchange(with_session(http::Request::get("/index.html", "example.com"),
                        "u1"));
  exchange(with_session(http::Request::get("/d.jpg", "example.com"), "u1",
                        "https://example.com/index.html"));

  // Visit 2: the map now covers the learned resource.
  const auto html = exchange(with_session(
      http::Request::get("/index.html", "example.com"), "u1"));
  const auto map =
      http::EtagConfig::parse(*html.headers.get(http::kXEtagConfig));
  ASSERT_TRUE(map);
  EXPECT_TRUE(map->find("/d.jpg"));
  EXPECT_EQ(server_->sessions().session_count(), 1u);
}

TEST_F(ServerFixture, SessionsIsolatedByCookie) {
  ServerConfig config;
  config.enable_catalyst = true;
  config.catalyst.session_learning = true;
  config.track_sessions = true;
  start_server(config);
  exchange(with_session(http::Request::get("/index.html", "example.com"),
                        "u1"));
  exchange(with_session(http::Request::get("/d.jpg", "example.com"), "u1",
                        "https://example.com/index.html"));
  // A different user's map does not contain u1's learned resources.
  const auto html = exchange(with_session(
      http::Request::get("/index.html", "example.com"), "u2"));
  const auto map =
      http::EtagConfig::parse(*html.headers.get(http::kXEtagConfig));
  ASSERT_TRUE(map);
  EXPECT_FALSE(map->find("/d.jpg"));
}

TEST_F(ServerFixture, EarlyHintsAnnounceStaticClosure) {
  ServerConfig config;
  config.early_hints = true;
  start_server(config);
  std::vector<std::string> hints;
  const auto resp = exchange(
      http::Request::get("/index.html", "example.com"),
      netsim::Protocol::H1, nullptr, &hints);
  EXPECT_EQ(resp.status, http::Status::Ok);
  ASSERT_EQ(hints.size(), 2u);
  EXPECT_EQ(hints[0], "/a.css");
  EXPECT_EQ(hints[1], "/b.js");
  // Subresources carry no hints.
  hints.clear();
  exchange(http::Request::get("/a.css", "example.com"),
           netsim::Protocol::H1, nullptr, &hints);
  EXPECT_TRUE(hints.empty());
}

TEST_F(ServerFixture, DigestPolicySuppressesKnownPaths) {
  ServerConfig config;
  config.push_policy = PushPolicy::Digest;
  start_server(config);

  // Digest claiming /a.css is cached: only /b.js gets pushed.
  BloomFilter digest = BloomFilter::for_entries(4, 0.01);
  digest.insert("/a.css");
  http::Request req = http::Request::get("/index.html", "example.com");
  req.headers.set("Cache-Digest", digest.serialize());
  std::vector<netsim::PushedResponse> pushes;
  exchange(std::move(req), netsim::Protocol::H2, &pushes);
  ASSERT_EQ(pushes.size(), 1u);
  EXPECT_EQ(pushes[0].target, "/b.js");

  // No digest header: everything pushed.
  pushes.clear();
  exchange(http::Request::get("/index.html", "example.com"),
           netsim::Protocol::H2, &pushes);
  EXPECT_EQ(pushes.size(), 2u);

  // Malformed digest: treated as absent (push everything).
  pushes.clear();
  http::Request bad = http::Request::get("/index.html", "example.com");
  bad.headers.set("Cache-Digest", "garbage");
  exchange(std::move(bad), netsim::Protocol::H2, &pushes);
  EXPECT_EQ(pushes.size(), 2u);
}

TEST_F(ServerFixture, StatsAccumulate) {
  ServerConfig config;
  config.enable_catalyst = true;
  start_server(config);
  exchange(http::Request::get("/index.html", "example.com"));
  exchange(http::Request::get("/a.css", "example.com"));
  EXPECT_EQ(server_->stats().requests, 2u);
  EXPECT_EQ(server_->stats().html_serves, 1u);
  EXPECT_GT(server_->stats().catalyst_compute, Duration::zero());
  ASSERT_NE(server_->catalyst_stats(), nullptr);
  EXPECT_EQ(server_->catalyst_stats()->maps_built, 1u);
}

}  // namespace
}  // namespace catalyst::server
