#include "workload/sitegen.h"

#include <gtest/gtest.h>

#include "html/link_extract.h"
#include "html/parser.h"
#include "server/catalyst_module.h"
#include "workload/distributions.h"

namespace catalyst::workload {
namespace {

SitegenParams params_for(int index, bool clone = false) {
  SitegenParams p;
  p.seed = 99;
  p.site_index = index;
  p.clone_static_snapshot = clone;
  return p;
}

TEST(SitegenTest, DeterministicForSeed) {
  const auto a = generate_site(params_for(3));
  const auto b = generate_site(params_for(3));
  ASSERT_EQ(a->resource_count(), b->resource_count());
  EXPECT_EQ(a->total_bytes(), b->total_bytes());
  for (const auto& [path, resource] : a->resources()) {
    const server::Resource* other = b->find(path);
    ASSERT_NE(other, nullptr) << path;
    EXPECT_EQ(resource->etag_at(TimePoint{}).value,
              other->etag_at(TimePoint{}).value)
        << path;
    EXPECT_EQ(resource->cache_policy(), other->cache_policy()) << path;
  }
}

TEST(SitegenTest, DifferentIndicesDiffer) {
  const auto a = generate_site(params_for(1));
  const auto b = generate_site(params_for(2));
  EXPECT_NE(a->host(), b->host());
  EXPECT_NE(a->total_bytes(), b->total_bytes());
}

TEST(SitegenTest, RealisticComposition) {
  // Across a small corpus: page weight and resource counts in the
  // httparchive ballpark the paper cites (~2.5 MB, tens to ~150
  // same-origin resources).
  double total_bytes = 0.0, total_count = 0.0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const auto site = generate_site(params_for(i));
    total_bytes += static_cast<double>(site->total_bytes());
    total_count += static_cast<double>(site->resource_count());
    EXPECT_GE(site->resource_count(), 10u);
    EXPECT_LE(site->resource_count(), 200u);
  }
  EXPECT_GT(total_bytes / n, 1.0 * 1024 * 1024);
  EXPECT_LT(total_bytes / n, 5.0 * 1024 * 1024);
  EXPECT_GT(total_count / n, 30.0);
}

TEST(SitegenTest, IndexParsesAndLinksResolve) {
  const auto site = generate_site(params_for(4));
  const server::Resource* index = site->find(site->index_path());
  ASSERT_NE(index, nullptr);
  const auto doc = html::parse(index->content_at(TimePoint{}));
  const auto found = html::extract_resources(*doc);
  EXPECT_GT(found.size(), 5u);
  for (const auto& dr : found) {
    EXPECT_NE(site->find(dr.url), nullptr) << dr.url << " is dangling";
  }
}

TEST(SitegenTest, CssReferencesResolve) {
  const auto site = generate_site(params_for(5));
  server::CatalystModule linker(*site, {});
  const auto paths =
      linker.linked_paths(*site->find(site->index_path()), TimePoint{});
  for (const std::string& path : paths) {
    EXPECT_NE(site->find(path), nullptr) << path << " is dangling";
  }
}

TEST(SitegenTest, JsChainTargetsExist) {
  const auto site = generate_site(params_for(6));
  for (const auto& [path, resource] : site->resources()) {
    if (resource->resource_class() != http::ResourceClass::Script) continue;
    for (const std::string& url :
         html::extract_js_fetches(resource->content_at(TimePoint{}))) {
      EXPECT_NE(site->find(url), nullptr)
          << path << " fetches dangling " << url;
    }
  }
}

TEST(SitegenTest, CloneModeFreezesContent) {
  const auto site = generate_site(params_for(7, /*clone=*/true));
  for (const auto& [path, resource] : site->resources()) {
    EXPECT_EQ(resource->version_at(TimePoint{} + days(14)), 0u) << path;
  }
}

TEST(SitegenTest, CloneModeJsonIsNotNoStoreHeavy) {
  int live_no_store = 0, clone_no_store = 0, live_json = 0, clone_json = 0;
  for (int i = 0; i < 10; ++i) {
    const auto live = generate_site(params_for(i));
    const auto clone = generate_site(params_for(i, /*clone=*/true));
    for (const auto& [path, r] : live->resources()) {
      if (r->resource_class() == http::ResourceClass::Json) {
        ++live_json;
        if (r->cache_policy().no_store) ++live_no_store;
      }
    }
    for (const auto& [path, r] : clone->resources()) {
      if (r->resource_class() == http::ResourceClass::Json) {
        ++clone_json;
        if (r->cache_policy().no_store) ++clone_no_store;
      }
    }
  }
  ASSERT_GT(live_json, 0);
  ASSERT_EQ(live_json, clone_json);
  EXPECT_GT(static_cast<double>(live_no_store) / live_json, 0.5);
  EXPECT_LT(static_cast<double>(clone_no_store) / clone_json, 0.3);
}

TEST(SitegenTest, LiveModeHasChangingResources) {
  const auto site = generate_site(params_for(8));
  int changing = 0;
  for (const auto& [path, resource] : site->resources()) {
    if (resource->version_at(TimePoint{} + days(14)) > 0) ++changing;
  }
  EXPECT_GT(changing, 0);
}

TEST(Figure1SiteTest, MatchesPaperStructure) {
  const auto site = make_figure1_site();
  EXPECT_EQ(site->resource_count(), 5u);
  EXPECT_EQ(site->host(), "example.com");
  // Headers per the figure.
  EXPECT_EQ(*site->find("/a.css")->cache_policy().max_age, days(7));
  EXPECT_TRUE(site->find("/b.js")->cache_policy().no_cache);
  EXPECT_EQ(*site->find("/d.jpg")->cache_policy().max_age, hours(2));
  // d.jpg changes at one hour in; nothing else changes.
  EXPECT_EQ(site->find("/d.jpg")->version_at(TimePoint{} + hours(2)), 1u);
  EXPECT_EQ(site->find("/a.css")->version_at(TimePoint{} + days(300)), 0u);
  // b.js fetches c.js; c.js fetches d.jpg.
  EXPECT_NE(site->find("/b.js")->content_at(TimePoint{}).find("/c.js"),
            std::string::npos);
  EXPECT_NE(site->find("/c.js")->content_at(TimePoint{}).find("/d.jpg"),
            std::string::npos);
}

TEST(DistributionsTest, SizesWithinClassBounds) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(draw_size(http::ResourceClass::Css, rng), KiB(2));
    EXPECT_LE(draw_size(http::ResourceClass::Css, rng), KiB(200));
    EXPECT_LE(draw_size(http::ResourceClass::Image, rng), MiB(1));
    EXPECT_GE(draw_size(http::ResourceClass::Json, rng), 200u);
  }
}

TEST(DistributionsTest, FontsNeverChange) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(draw_change_interval(http::ResourceClass::Font, rng),
              Duration::zero());
  }
}

TEST(DistributionsTest, HtmlChangesFasterThanScripts) {
  Rng rng(13);
  double html_total = 0, js_total = 0;
  int js_changing = 0;
  for (int i = 0; i < 2000; ++i) {
    html_total += to_seconds(
        draw_change_interval(http::ResourceClass::Html, rng));
    const Duration js = draw_change_interval(
        http::ResourceClass::Script, rng);
    if (js > Duration::zero()) {
      js_total += to_seconds(js);
      ++js_changing;
    }
  }
  ASSERT_GT(js_changing, 0);
  EXPECT_LT(html_total / 2000, js_total / js_changing);
}

TEST(ProfilesTest, CompositionsAreOrdered) {
  for (const PageArchetype a :
       {PageArchetype::News, PageArchetype::Commerce, PageArchetype::Video,
        PageArchetype::SocialApp, PageArchetype::Docs}) {
    const PageComposition c = composition_for(a);
    EXPECT_LE(c.stylesheets_min, c.stylesheets_max);
    EXPECT_LE(c.scripts_min, c.scripts_max);
    EXPECT_LE(c.images_min, c.images_max);
    EXPECT_GE(c.blocking_script_fraction, 0.0);
    EXPECT_LE(c.blocking_script_fraction, 1.0);
    EXPECT_FALSE(to_string(a).empty());
  }
}

}  // namespace
}  // namespace catalyst::workload
