#include "server/static_handler.h"

#include <gtest/gtest.h>

#include "http/date.h"

namespace catalyst::server {
namespace {

std::unique_ptr<Site> make_site() {
  auto site = std::make_unique<Site>("example.com");
  site->add_resource(std::make_unique<Resource>(
      "/a.css", http::ResourceClass::Css, 50,
      [](std::uint64_t v) { return "css v" + std::to_string(v); },
      ChangeProcess::periodic(hours(1), hours(1), days(1)),
      http::CacheControl::with_max_age(minutes(10))));
  site->add_resource(std::make_unique<Resource>(
      "/big.webp", http::ResourceClass::Image, KiB(200),
      [](std::uint64_t v) { return "img v" + std::to_string(v); },
      ChangeProcess::never(), http::CacheControl::never_store()));
  return site;
}

class StaticHandlerFixture : public ::testing::Test {
 protected:
  StaticHandlerFixture() : site_(make_site()), handler_(*site_) {}
  std::unique_ptr<Site> site_;
  StaticHandler handler_;
};

TEST_F(StaticHandlerFixture, ServesFullResponseWithValidators) {
  const auto resp = handler_.handle(
      http::Request::get("/a.css", "example.com"), TimePoint{});
  EXPECT_EQ(resp.status, http::Status::Ok);
  EXPECT_EQ(resp.body, "css v0");
  EXPECT_TRUE(resp.etag());
  EXPECT_EQ(resp.headers.get(http::kCacheControl), "max-age=600");
  EXPECT_TRUE(resp.headers.contains(http::kLastModified));
  EXPECT_TRUE(resp.headers.contains(http::kDate));
  EXPECT_EQ(resp.headers.get(http::kContentType), "text/css");
  EXPECT_EQ(handler_.stats().full_responses, 1u);
}

TEST_F(StaticHandlerFixture, DeclaredSizeForOpaqueClasses) {
  const auto resp = handler_.handle(
      http::Request::get("/big.webp", "example.com"), TimePoint{});
  EXPECT_EQ(resp.body_wire_size(), KiB(200));
  EXPECT_LT(resp.body.size(), 100u);
  EXPECT_EQ(resp.headers.get(http::kContentLength),
            std::to_string(KiB(200)));
}

TEST_F(StaticHandlerFixture, NotFoundForUnknownPath) {
  const auto resp = handler_.handle(
      http::Request::get("/nope.js", "example.com"), TimePoint{});
  EXPECT_EQ(resp.status, http::Status::NotFound);
  EXPECT_EQ(handler_.stats().not_found, 1u);
}

TEST_F(StaticHandlerFixture, QueryStringIgnoredForLookup) {
  const auto resp = handler_.handle(
      http::Request::get("/a.css?v=123", "example.com"), TimePoint{});
  EXPECT_EQ(resp.status, http::Status::Ok);
}

TEST_F(StaticHandlerFixture, ConditionalGetMatchingEtagYields304) {
  const auto full = handler_.handle(
      http::Request::get("/a.css", "example.com"), TimePoint{});
  http::Request conditional = http::Request::get("/a.css", "example.com");
  conditional.headers.set(http::kIfNoneMatch, full.etag()->to_string());

  const auto resp = handler_.handle(conditional, TimePoint{} + minutes(30));
  EXPECT_EQ(resp.status, http::Status::NotModified);
  EXPECT_TRUE(resp.body.empty());
  EXPECT_EQ(*resp.etag(), *full.etag());
  // Cache-refresh headers ride along.
  EXPECT_EQ(resp.headers.get(http::kCacheControl), "max-age=600");
  EXPECT_EQ(handler_.stats().not_modified, 1u);
}

TEST_F(StaticHandlerFixture, ConditionalGetAfterChangeYields200) {
  const auto full = handler_.handle(
      http::Request::get("/a.css", "example.com"), TimePoint{});
  http::Request conditional = http::Request::get("/a.css", "example.com");
  conditional.headers.set(http::kIfNoneMatch, full.etag()->to_string());

  // Content changes at +1h.
  const auto resp =
      handler_.handle(conditional, TimePoint{} + hours(1) + minutes(1));
  EXPECT_EQ(resp.status, http::Status::Ok);
  EXPECT_EQ(resp.body, "css v1");
  EXPECT_NE(resp.etag()->value, full.etag()->value);
}

TEST_F(StaticHandlerFixture, BytesSentTracksBodies) {
  handler_.handle(http::Request::get("/big.webp", "example.com"),
                  TimePoint{});
  EXPECT_EQ(handler_.stats().body_bytes_sent, KiB(200));
}

}  // namespace
}  // namespace catalyst::server
