#include "client/fetcher.h"

#include <gtest/gtest.h>

namespace catalyst::client {
namespace {

class FetcherFixture : public ::testing::Test {
 protected:
  FetcherFixture() : net_(loop_) {
    net_.add_host("client");
    net_.add_host("origin");
    net_.set_rtt("client", "origin", milliseconds(20));
    net_.host("origin").set_handler(
        [this](const http::Request&, auto respond) {
          ++served_;
          netsim::ServerReply reply;
          reply.response = http::Response::make(http::Status::Ok);
          reply.response.body = "ok";
          reply.response.finalize(loop_.now());
          respond(std::move(reply));
        });
  }

  netsim::EventLoop loop_;
  netsim::Network net_;
  int served_ = 0;
};

TEST_F(FetcherFixture, H1PoolCapsAtSixConnections) {
  FetcherConfig config;
  config.protocol = netsim::Protocol::H1;
  Fetcher fetcher(net_, "client", config);
  int responses = 0;
  for (int i = 0; i < 20; ++i) {
    fetcher.fetch("origin", http::Request::get("/r", "origin"),
                  [&](http::Response) { ++responses; });
  }
  loop_.run();
  EXPECT_EQ(responses, 20);
  EXPECT_EQ(served_, 20);
  EXPECT_LE(fetcher.connection_count(), 6u);
  EXPECT_GE(fetcher.connection_count(), 2u);
}

TEST_F(FetcherFixture, H2UsesSingleConnection) {
  FetcherConfig config;
  config.protocol = netsim::Protocol::H2;
  Fetcher fetcher(net_, "client", config);
  int responses = 0;
  for (int i = 0; i < 20; ++i) {
    fetcher.fetch("origin", http::Request::get("/r", "origin"),
                  [&](http::Response) { ++responses; });
  }
  loop_.run();
  EXPECT_EQ(responses, 20);
  EXPECT_EQ(fetcher.connection_count(), 1u);
}

TEST_F(FetcherFixture, ParallelConnectionsOverlapRequests) {
  // 6 requests over h1: with 6 parallel connections all complete within
  // roughly one handshake + one exchange, far less than 6 serial RTTs.
  FetcherConfig config;
  config.protocol = netsim::Protocol::H1;
  config.tls = false;
  Fetcher fetcher(net_, "client", config);
  TimePoint last{};
  int responses = 0;
  for (int i = 0; i < 6; ++i) {
    fetcher.fetch("origin", http::Request::get("/r", "origin"),
                  [&](http::Response) {
                    ++responses;
                    last = loop_.now();
                  });
  }
  loop_.run();
  EXPECT_EQ(responses, 6);
  EXPECT_LT(last - TimePoint{}, milliseconds(60));  // ~2 RTTs, not 12
}

TEST_F(FetcherFixture, CountersAggregateAndResetOnClose) {
  FetcherConfig config;
  Fetcher fetcher(net_, "client", config);
  fetcher.fetch("origin", http::Request::get("/r", "origin"),
                [](http::Response) {});
  loop_.run();
  EXPECT_GT(fetcher.total_rtts(), 0);
  EXPECT_GT(fetcher.total_bytes_received(), 0u);
  fetcher.close_all();
  EXPECT_EQ(fetcher.connection_count(), 0u);
  EXPECT_EQ(fetcher.total_rtts(), 0);
}

}  // namespace
}  // namespace catalyst::client
