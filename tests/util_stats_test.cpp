#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace catalyst {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  // Sample stddev of {1,2,3,4} = sqrt(5/3).
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.median(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(SummaryTest, SingleSample) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(SummaryTest, MedianAndPercentiles) {
  Summary s;
  s.add_all({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
  // Interpolation between ranks.
  Summary two;
  two.add_all({10.0, 20.0});
  EXPECT_DOUBLE_EQ(two.percentile(50), 15.0);
}

TEST(SummaryTest, PercentileAfterLaterAdds) {
  Summary s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(3.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SummaryTest, Ci95ShrinksWithN) {
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, SparklineWidthMatchesBins) {
  Histogram h(0.0, 1.0, 8);
  h.add(0.1);
  const std::string line = h.sparkline();
  // Unicode blocks are 3 bytes each.
  std::size_t glyphs = 0;
  for (char c : line) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++glyphs;
  }
  EXPECT_EQ(glyphs, 8u);
}

}  // namespace
}  // namespace catalyst
