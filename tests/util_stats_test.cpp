#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace catalyst {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  // Sample stddev of {1,2,3,4} = sqrt(5/3).
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SummaryTest, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.median(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(SummaryTest, SingleSample) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(SummaryTest, MedianAndPercentiles) {
  Summary s;
  s.add_all({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
  // Interpolation between ranks.
  Summary two;
  two.add_all({10.0, 20.0});
  EXPECT_DOUBLE_EQ(two.percentile(50), 15.0);
}

TEST(SummaryTest, PercentileAfterLaterAdds) {
  Summary s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(3.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SummaryTest, Ci95ShrinksWithN) {
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SummaryMergeTest, MergeOfSplitsEqualsSingleAccumulation) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  Summary whole;
  whole.add_all(xs);

  Summary left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < xs.size() / 2 ? left : right).add(xs[i]);
  }
  left.merge(right);

  ASSERT_EQ(left.count(), whole.count());
  // Sample order must match exactly so floating-point accumulation is
  // bit-identical — the fleet determinism invariant rides on this.
  EXPECT_EQ(left.samples(), whole.samples());
  EXPECT_DOUBLE_EQ(left.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(left.median(), whole.median());
  EXPECT_DOUBLE_EQ(left.percentile(95), whole.percentile(95));
}

TEST(SummaryMergeTest, MergeEmptyIsNoOp) {
  Summary s;
  s.add(1.0);
  Summary empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 1u);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(SummaryMergeTest, MergeInvalidatesSortedCache) {
  Summary s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);  // populate the sorted cache
  Summary other;
  other.add(3.0);
  s.merge(other);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(BinAxisTest, IndexAndEdges) {
  const BinAxis axis(0.0, 10.0, 5);
  EXPECT_EQ(axis.index(0.0), 0u);
  EXPECT_EQ(axis.index(1.9), 0u);
  EXPECT_EQ(axis.index(5.0), 2u);
  EXPECT_EQ(axis.index(9.999), 4u);
  EXPECT_EQ(axis.index(-3.0), 0u);   // clamps below
  EXPECT_EQ(axis.index(100.0), 4u);  // clamps above
  EXPECT_DOUBLE_EQ(axis.lower_edge(0), 0.0);
  EXPECT_DOUBLE_EQ(axis.lower_edge(2), 4.0);
  EXPECT_DOUBLE_EQ(axis.upper_edge(2), 6.0);
}

TEST(BinAxisTest, EqualityAndRejection) {
  EXPECT_EQ(BinAxis(0.0, 1.0, 4), BinAxis(0.0, 1.0, 4));
  EXPECT_FALSE(BinAxis(0.0, 1.0, 4) == BinAxis(0.0, 2.0, 4));
  EXPECT_THROW(BinAxis(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(BinAxis(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(BinAxis(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(HistogramTest, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, SparklineWidthMatchesBins) {
  Histogram h(0.0, 1.0, 8);
  h.add(0.1);
  const std::string line = h.sparkline();
  // Unicode blocks are 3 bytes each.
  std::size_t glyphs = 0;
  for (char c : line) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++glyphs;
  }
  EXPECT_EQ(glyphs, 8u);
}

TEST(HistogramMergeTest, MergeOfSplitsEqualsSingleAccumulation) {
  Histogram whole(0.0, 10.0, 5);
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
  const double xs[] = {0.5, 2.5, 5.0, 7.5, 9.9, -1.0, 42.0};
  for (std::size_t i = 0; i < std::size(xs); ++i) {
    whole.add(xs[i]);
    (i % 2 == 0 ? a : b).add(xs[i]);
  }
  a.merge(b);
  ASSERT_EQ(a.total(), whole.total());
  for (std::size_t bin = 0; bin < whole.bin_count(); ++bin) {
    EXPECT_EQ(a.count(bin), whole.count(bin)) << "bin " << bin;
  }
  EXPECT_EQ(a.sparkline(), whole.sparkline());
}

TEST(HistogramMergeTest, ShapeMismatchThrows) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_THROW(h.merge(Histogram(0.0, 10.0, 6)), std::invalid_argument);
  EXPECT_THROW(h.merge(Histogram(0.0, 20.0, 5)), std::invalid_argument);
  EXPECT_THROW(h.merge(Histogram(1.0, 10.0, 5)), std::invalid_argument);
}

TEST(CacheCountersTest, MergeSumsEveryField) {
  CacheCounters a{1, 2, 3, 4, 5, 6};
  const CacheCounters b{10, 20, 30, 40, 50, 60};
  a.merge(b);
  EXPECT_EQ(a, (CacheCounters{11, 22, 33, 44, 55, 66}));
  EXPECT_EQ(a.total(), 11u + 22 + 33 + 44 + 55);
  EXPECT_EQ(a.avoided_downloads(), 22u + 33 + 44 + 55);
}

TEST(AtomicCacheCountersTest, ConcurrentRecordsAllLand) {
  AtomicCacheCounters atomic;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&atomic] {
      const CacheCounters delta{1, 2, 3, 4, 5, 6};
      for (std::uint64_t i = 0; i < kPerThread; ++i) atomic.record(delta);
    });
  }
  for (auto& t : threads) t.join();
  const CacheCounters got = atomic.snapshot();
  const std::uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(got, (CacheCounters{n, 2 * n, 3 * n, 4 * n, 5 * n, 6 * n}));
}

}  // namespace
}  // namespace catalyst
