// Byte-equivalence oracle: classification rules (fresh / allowed-stale /
// violation / unauditable), the Catalyst HTML-transform ground truth, and
// the end-to-end mutation self-test (a deliberately broken stale-serving
// cache must be flagged; the clean build must not).
#include <gtest/gtest.h>

#include "check/oracle.h"
#include "core/experiment.h"
#include "edge/pop.h"
#include "html/generate.h"
#include "http/date.h"
#include "server/catalyst_module.h"
#include "workload/sitegen.h"

namespace catalyst {
namespace {

using check::ByteOracle;
using client::FetchOutcome;
using netsim::ServeClass;

/// One-page site whose stylesheet changes every hour (first change at
/// t=30min), with a short explicit TTL so staleness is provable.
std::shared_ptr<server::Site> changing_site() {
  auto site = std::make_shared<server::Site>("osite.example");
  site->add_resource(std::make_unique<server::Resource>(
      "/index.html", http::ResourceClass::Html, 0,
      [](std::uint64_t) {
        html::HtmlBuilder page("oracle");
        page.add_stylesheet("/a.css");
        return page.build();
      },
      server::ChangeProcess::never(),
      http::CacheControl::revalidate_always()));
  site->add_resource(std::make_unique<server::Resource>(
      "/a.css", http::ResourceClass::Css, 2048,
      [](std::uint64_t v) { return html::make_css({}, {}, {}, 2048, v); },
      server::ChangeProcess::periodic(hours(1), minutes(30), hours(48)),
      http::CacheControl::with_max_age(seconds(60))));
  return site;
}

FetchOutcome outcome_with(std::string body, TimePoint at,
                          netsim::FetchSource source =
                              netsim::FetchSource::Network) {
  FetchOutcome out;
  out.response = http::Response::make(http::Status::Ok);
  out.response.body = std::move(body);
  out.response.finalize(at);  // Date: at
  out.source = source;
  out.start = at;
  out.finish = at;
  return out;
}

TEST(ByteOracleTest, MatchingBytesClassifyFresh) {
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const TimePoint t = TimePoint{} + hours(1);
  const Url url = *Url::parse("https://osite.example/a.css");
  const auto verdict = oracle.classify(
      url, outcome_with(site->find("/a.css")->content_at(t), t));
  EXPECT_EQ(verdict, ServeClass::Fresh);
  EXPECT_EQ(oracle.stats().fresh, 1u);
  EXPECT_EQ(oracle.stats().violations, 0u);
}

TEST(ByteOracleTest, MidFlightVersionFlipIsFreshAtStartTime) {
  // A fetch that started before a change legitimately delivers the
  // version current at its start.
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const Url url = *Url::parse("https://osite.example/a.css");
  FetchOutcome out = outcome_with(
      site->find("/a.css")->content_at(TimePoint{} + minutes(29)),
      TimePoint{} + minutes(29));
  out.finish = TimePoint{} + minutes(31);  // change landed at 30min
  EXPECT_EQ(oracle.classify(url, out), ServeClass::Fresh);
}

TEST(ByteOracleTest, StaleWithinTtlIsAllowedStale) {
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const Url url = *Url::parse("https://osite.example/a.css");
  // Bytes from before the 30min change, served 10s after it. The
  // response's own headers (max-age=60, Date at serve-10s) still cover
  // it: RFC 9111 permits this serve, so it is allowed-stale.
  FetchOutcome out = outcome_with(
      site->find("/a.css")->content_at(TimePoint{} + minutes(29)),
      TimePoint{} + minutes(30) + seconds(10),
      netsim::FetchSource::BrowserCache);
  out.response.headers.set(
      http::kCacheControl,
      http::CacheControl::with_max_age(seconds(60)).to_string());
  out.response.headers.set(
      http::kDate,
      http::format_http_date(TimePoint{} + minutes(30)));
  EXPECT_EQ(oracle.classify(url, out), ServeClass::AllowedStale);
  EXPECT_EQ(oracle.stats().allowed_stale, 1u);
  EXPECT_EQ(oracle.stats().violations, 0u);
}

TEST(ByteOracleTest, StalePastTtlIsViolation) {
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const Url url = *Url::parse("https://osite.example/a.css");
  // Same stale bytes, but served 10 minutes after the change: max-age=60
  // expired long ago, so nothing excuses the mismatch.
  FetchOutcome out = outcome_with(
      site->find("/a.css")->content_at(TimePoint{} + minutes(29)),
      TimePoint{} + minutes(40), netsim::FetchSource::BrowserCache);
  out.response.headers.set(
      http::kCacheControl,
      http::CacheControl::with_max_age(seconds(60)).to_string());
  out.response.headers.set(
      http::kDate, http::format_http_date(TimePoint{} + minutes(29)));
  EXPECT_EQ(oracle.classify(url, out), ServeClass::Violation);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].url, "https://osite.example/a.css");
  EXPECT_NE(oracle.violations()[0].served_digest,
            oracle.violations()[0].expected_digest);
}

TEST(ByteOracleTest, SwServeGetsNoFreshnessExcuse) {
  // Catalyst's X-Etag-Config vouches for byte-currency; a mismatching SW
  // serve is a violation even inside the TTL window.
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const Url url = *Url::parse("https://osite.example/a.css");
  FetchOutcome out = outcome_with(
      site->find("/a.css")->content_at(TimePoint{} + minutes(29)),
      TimePoint{} + minutes(30) + seconds(10),
      netsim::FetchSource::SwCache);
  out.response.headers.set(
      http::kCacheControl,
      http::CacheControl::with_max_age(seconds(60)).to_string());
  out.response.headers.set(
      http::kDate,
      http::format_http_date(TimePoint{} + minutes(30)));
  EXPECT_EQ(oracle.classify(url, out), ServeClass::Violation);
}

TEST(ByteOracleTest, UnknownOriginAndErrorsAreUnauditable) {
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const TimePoint t{};
  EXPECT_EQ(oracle.classify(*Url::parse("https://elsewhere.example/x"),
                            outcome_with("whatever", t)),
            ServeClass::Unchecked);
  FetchOutcome err = outcome_with("not found", t);
  err.response.status = http::Status::NotFound;
  EXPECT_EQ(oracle.classify(*Url::parse("https://osite.example/nope"), err),
            ServeClass::Unchecked);
  EXPECT_EQ(oracle.stats().checked, 0u);
  EXPECT_EQ(oracle.stats().unauditable, 2u);
}

TEST(ByteOracleTest, HtmlTransformFoldsOriginRewriteIntoGroundTruth) {
  // A Catalyst origin injects the SW-registration snippet into HTML; the
  // oracle's ground truth must include the same rewrite or every
  // decorated serve would misread as corruption.
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site, [](std::string& body) {
    server::CatalystModule::inject_registration(body);
  });
  const TimePoint t{};
  const Url url = *Url::parse("https://osite.example/index.html");
  std::string decorated = site->find("/index.html")->content_at(t);
  server::CatalystModule::inject_registration(decorated);
  EXPECT_EQ(oracle.classify(url, outcome_with(decorated, t)),
            ServeClass::Fresh);
  // The raw (undecorated) body no longer matches the transformed truth,
  // and revalidate_always grants no freshness — violation.
  EXPECT_EQ(oracle.classify(
                url, outcome_with(site->find("/index.html")->content_at(t),
                                  t)),
            ServeClass::Violation);
}

TEST(ByteOracleTest, EdgeAliasAuditsPopHostAgainstSite) {
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_alias("edge.pop0", site);
  const TimePoint t = TimePoint{} + hours(2);
  EXPECT_EQ(oracle.classify(
                *Url::parse("https://edge.pop0/a.css"),
                outcome_with(site->find("/a.css")->content_at(t), t)),
            ServeClass::Fresh);
}

/// End-to-end mutation self-test over the real testbed: the clean build
/// must audit clean; the deliberately broken StaleServeStrategy (cached
/// entries served without revalidation regardless of freshness) must
/// produce violations within two visits.
class OracleMutationTest : public ::testing::Test {
 protected:
  check::OracleStats run(bool mutate) {
    core::StrategyOptions opts;
    opts.byte_oracle = true;
    opts.mutate_stale_serve = mutate;
    auto tb = core::make_testbed(changing_site(),
                                 netsim::NetworkConditions::median_5g(),
                                 core::StrategyKind::Baseline, opts);
    // Visit at 1h (version 1 cached), revisit at 2h (version 2 on the
    // origin; the cached copy is stale and far past its 60s TTL).
    (void)core::run_visit(tb, TimePoint{} + hours(1));
    (void)core::run_visit(tb, TimePoint{} + hours(2));
    return tb.byte_oracle->stats();
  }
};

TEST_F(OracleMutationTest, CleanBuildAuditsClean) {
  const auto stats = run(false);
  EXPECT_GT(stats.checked, 0u);
  EXPECT_EQ(stats.violations, 0u);
}

TEST_F(OracleMutationTest, StaleServeStrategyIsCaught) {
  const auto stats = run(true);
  EXPECT_GT(stats.violations, 0u);
}

TEST(ByteOracleTest, ReflectedMarkerIsPoisonedServe) {
  // A body carrying another request's reflected X-Forwarded-Host can never
  // be legitimate: legitimate clients do not send that header, so the
  // marker proves the cache served someone else's input.
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const TimePoint t = TimePoint{} + hours(1);
  const Url url = *Url::parse("https://osite.example/a.css");
  std::string body = site->find("/a.css")->content_at(t);
  body += "\n<!--reflect:evil.example-->";
  EXPECT_EQ(oracle.classify(url, outcome_with(std::move(body), t)),
            ServeClass::PoisonedServe);
  EXPECT_EQ(oracle.stats().violations, 1u);
  EXPECT_EQ(oracle.stats().poisoned_serves, 1u);
  EXPECT_EQ(oracle.stats().cross_user_leaks, 0u);
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations().front().kind, ServeClass::PoisonedServe);
}

TEST(ByteOracleTest, UidMarkerIsCrossUserLeak) {
  // A uid-tagged reflection identifies a *specific other user's* request:
  // the victim is observing someone else's traffic, not just junk.
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const TimePoint t = TimePoint{} + hours(1);
  const Url url = *Url::parse("https://osite.example/a.css");
  std::string body = site->find("/a.css")->content_at(t);
  body += "\n<!--reflect:uid:attacker-3-->";
  EXPECT_EQ(oracle.classify(url, outcome_with(std::move(body), t)),
            ServeClass::CrossUserLeak);
  EXPECT_EQ(oracle.stats().violations, 1u);
  EXPECT_EQ(oracle.stats().cross_user_leaks, 1u);
  EXPECT_EQ(oracle.stats().poisoned_serves, 0u);
}

TEST(ByteOracleTest, PoisonMarkerBeatsFreshnessExcuse) {
  // A poisoned entry is typically *fresh by its own headers* — that is
  // what makes poisoning durable. The marker scan must run before the
  // RFC 9111 freshness excuse or every poisoned serve would classify
  // AllowedStale.
  auto site = changing_site();
  ByteOracle oracle;
  oracle.add_site(site);
  const TimePoint t = TimePoint{} + hours(1);
  const Url url = *Url::parse("https://osite.example/a.css");
  std::string body = site->find("/a.css")->content_at(t);
  body += "\n<!--reflect:evil.example-->";
  FetchOutcome out = outcome_with(std::move(body), t,
                                  netsim::FetchSource::BrowserCache);
  out.response.headers.set(
      http::kCacheControl,
      http::CacheControl::with_max_age(seconds(3600)).to_string());
  EXPECT_EQ(oracle.classify(url, out), ServeClass::PoisonedServe);
}

/// End-to-end poisoning self-test: a scripted adversary striking an edge
/// PoP with unkeyed X-Forwarded-Host requests. With the planted
/// vulnerable keying the oracle must flag poisoned serves; with strict
/// (header-partitioned) keys the same attack must bounce off.
class AdversaryPoisoningTest : public ::testing::Test {
 protected:
  check::OracleStats run(bool vulnerable_keying) {
    edge::EdgeConfig ec;
    ec.pop_id = 0;
    ec.capacity = MiB(8);
    ec.vulnerable_keying = vulnerable_keying;
    edge::EdgePop pop(ec);
    core::StrategyOptions opts;
    opts.byte_oracle = true;
    opts.edge_pop = &pop;
    opts.adversary.enabled = true;
    auto tb = core::make_testbed(changing_site(),
                                 netsim::NetworkConditions::median_5g(),
                                 core::StrategyKind::Catalyst, opts);
    (void)core::run_visit(tb, TimePoint{} + hours(1));
    (void)core::run_visit(tb, TimePoint{} + hours(1) + minutes(5));
    return tb.byte_oracle->stats();
  }
};

TEST_F(AdversaryPoisoningTest, VulnerableKeyingIsCaught) {
  const auto stats = run(true);
  EXPECT_GT(stats.poisoned_serves + stats.cross_user_leaks, 0u);
  EXPECT_GT(stats.violations, 0u);
}

TEST_F(AdversaryPoisoningTest, StrictKeyingDefendsAgainstTheSameAttack) {
  const auto stats = run(false);
  EXPECT_GT(stats.checked, 0u);
  EXPECT_EQ(stats.violations, 0u);
}

TEST(OracleTestbedTest, GeneratedSiteCatalystAuditsClean) {
  // A full generated site with live change processes under Catalyst: the
  // strictest configuration (SW serves held to byte-equivalence) must
  // stay violation-free across revisits spanning content changes.
  workload::SitegenParams params;
  params.seed = 7;
  params.site_index = 0;
  params.clone_static_snapshot = false;
  auto site = workload::generate_site(params);

  core::StrategyOptions opts;
  opts.byte_oracle = true;
  auto tb = core::make_testbed(site, netsim::NetworkConditions::median_5g(),
                               core::StrategyKind::Catalyst, opts);
  for (int h : {1, 13, 25, 49}) {
    (void)core::run_visit(tb, TimePoint{} + hours(h));
  }
  EXPECT_GT(tb.byte_oracle->stats().checked, 0u);
  EXPECT_EQ(tb.byte_oracle->stats().violations, 0u);
}

}  // namespace
}  // namespace catalyst
