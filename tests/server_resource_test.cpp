#include "server/resource.h"
#include "server/site.h"

#include <gtest/gtest.h>

namespace catalyst::server {
namespace {

std::unique_ptr<Resource> versioned_resource(const std::string& path) {
  return std::make_unique<Resource>(
      path, http::ResourceClass::Css, 100,
      [path](std::uint64_t version) {
        return path + " content v" + std::to_string(version);
      },
      ChangeProcess::periodic(hours(1), hours(1), days(1)),
      http::CacheControl::with_max_age(minutes(5)));
}

TEST(ResourceTest, ContentFollowsVersion) {
  const auto r = versioned_resource("/a.css");
  EXPECT_EQ(r->version_at(TimePoint{}), 0u);
  EXPECT_EQ(r->content_at(TimePoint{}), "/a.css content v0");
  EXPECT_EQ(r->content_at(TimePoint{} + hours(2)), "/a.css content v2");
}

TEST(ResourceTest, EtagChangesExactlyWithContent) {
  const auto r = versioned_resource("/a.css");
  const auto e0 = r->etag_at(TimePoint{});
  const auto e0b = r->etag_at(TimePoint{} + minutes(30));
  const auto e1 = r->etag_at(TimePoint{} + hours(1));
  EXPECT_EQ(e0, e0b);
  EXPECT_NE(e0.value, e1.value);
}

TEST(ResourceTest, MemoizationReturnsSameBuffer) {
  const auto r = versioned_resource("/a.css");
  const std::string* p1 = &r->content_at(TimePoint{});
  const std::string* p2 = &r->content_at(TimePoint{} + minutes(1));
  EXPECT_EQ(p1, p2);
}

TEST(ResourceTest, LastModifiedTracksChanges) {
  const auto r = versioned_resource("/a.css");
  EXPECT_EQ(r->last_modified_at(TimePoint{}), TimePoint{});
  EXPECT_EQ(r->last_modified_at(TimePoint{} + hours(3) + minutes(30)),
            TimePoint{} + hours(3));
}

TEST(ResourceTest, RequiresGenerator) {
  EXPECT_THROW(Resource("/x", http::ResourceClass::Other, 1, nullptr,
                        ChangeProcess::never(), http::CacheControl{}),
               std::invalid_argument);
}

TEST(SiteTest, AddAndFind) {
  Site site("example.com");
  site.add_resource(versioned_resource("/a.css"));
  site.add_resource(versioned_resource("/b.css"));
  EXPECT_NE(site.find("/a.css"), nullptr);
  EXPECT_EQ(site.find("/missing"), nullptr);
  EXPECT_EQ(site.resource_count(), 2u);
  EXPECT_EQ(site.total_bytes(), 200u);
}

TEST(SiteTest, DuplicatePathRejected) {
  Site site("example.com");
  site.add_resource(versioned_resource("/a.css"));
  EXPECT_THROW(site.add_resource(versioned_resource("/a.css")),
               std::invalid_argument);
}

TEST(SiteTest, IndexPathDefaultsAndOverrides) {
  Site site("example.com");
  EXPECT_EQ(site.index_path(), "/index.html");
  site.set_index_path("/");
  EXPECT_EQ(site.index_path(), "/");
}

}  // namespace
}  // namespace catalyst::server
