// AioEngine unit tests: bounded queue depth, FIFO slot handoff, read
// merging, and — the property everything else leans on — seeded
// determinism: the completion sequence is a pure function of (seed,
// submission order).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "io/aio.h"
#include "netsim/event_loop.h"
#include "util/rng.h"

namespace catalyst::io {
namespace {

AioDeviceConfig no_jitter(int queue_depth = 8) {
  AioDeviceConfig cfg;
  cfg.queue_depth = queue_depth;
  cfg.jitter_sigma = 0.0;  // exact service times
  return cfg;
}

/// Runs `submit` against a fresh loop/engine and returns the completion
/// log: (tag, virtual completion time) in completion order.
using Log = std::vector<std::pair<std::string, Duration>>;
template <typename SubmitFn>
Log run_engine(const AioDeviceConfig& cfg, std::uint64_t seed,
               SubmitFn submit) {
  netsim::EventLoop loop;
  Rng rng(seed);
  AioStats stats;
  AioEngine engine(loop, cfg, rng, stats);
  Log log;
  submit(engine, [&log, &loop](std::string tag) {
    log.emplace_back(std::move(tag), loop.now() - TimePoint{});
  });
  loop.run();
  return log;
}

TEST(AioEngineTest, SameSeedSameSubmissionsSameCompletionSequence) {
  AioDeviceConfig cfg;  // jitter on: the interesting case
  auto submit = [](AioEngine& engine, auto note) {
    for (int i = 0; i < 32; ++i) {
      const std::string key = "key" + std::to_string(i % 7);
      engine.submit_read(key, 4096 + 512 * i,
                         [note, key]() { note("r:" + key); });
      if (i % 3 == 0) {
        engine.submit_write(8192, [note]() { note("w"); });
      }
    }
  };
  const Log a = run_engine(cfg, 42, submit);
  const Log b = run_engine(cfg, 42, submit);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // identical order AND identical virtual times

  // A different seed draws a different jitter stream: same ops, but the
  // timeline must not be byte-for-byte identical.
  const Log c = run_engine(cfg, 43, submit);
  EXPECT_NE(a, c);
}

TEST(AioEngineTest, QueueDepthBoundsInflightAndExcessWaits) {
  netsim::EventLoop loop;
  Rng rng(1);
  AioStats stats;
  AioEngine engine(loop, no_jitter(/*queue_depth=*/4), rng, stats);
  for (int i = 0; i < 10; ++i) {
    engine.submit_read("k" + std::to_string(i), 1024, []() {});
  }
  EXPECT_EQ(engine.inflight(), 4);
  EXPECT_EQ(engine.queued(), 6u);
  loop.run();
  EXPECT_EQ(engine.inflight(), 0);
  EXPECT_EQ(engine.queued(), 0u);
  EXPECT_EQ(stats.reads, 10u);
  EXPECT_EQ(stats.queue_waits, 6u);
  EXPECT_EQ(stats.peak_inflight, 4u);
}

TEST(AioEngineTest, WaitingOpsStartInSubmissionOrder) {
  netsim::EventLoop loop;
  Rng rng(1);
  AioStats stats;
  // Depth 1 device: completions strictly serialize in submission order.
  AioEngine engine(loop, no_jitter(/*queue_depth=*/1), rng, stats);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    engine.submit_read("k" + std::to_string(i), 1024,
                       [&order, i]() { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(AioEngineTest, ReadsForSameKeyMergeIntoOneDeviceOp) {
  netsim::EventLoop loop;
  Rng rng(1);
  AioStats stats;
  AioEngine engine(loop, no_jitter(), rng, stats);
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    engine.submit_read("hot", 2048, [&completions]() { ++completions; });
  }
  engine.submit_read("cold", 2048, [&completions]() { ++completions; });
  loop.run();
  EXPECT_EQ(completions, 6);       // every caller hears back
  EXPECT_EQ(stats.reads, 2u);      // but the device read twice, not six times
  EXPECT_EQ(stats.merged_reads, 4u);
  EXPECT_EQ(stats.bytes_read, 2u * 2048u);
}

TEST(AioEngineTest, ReadAfterCompletionIsAFreshDeviceOp) {
  netsim::EventLoop loop;
  Rng rng(1);
  AioStats stats;
  AioEngine engine(loop, no_jitter(), rng, stats);
  engine.submit_read("hot", 1024, []() {});
  loop.run();
  // The first op retired; the same key must not merge into a ghost.
  engine.submit_read("hot", 1024, []() {});
  loop.run();
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.merged_reads, 0u);
}

TEST(AioEngineTest, TransferCostScalesServiceTimeWithBytes) {
  auto submit_of = [](ByteCount bytes) {
    return [bytes](AioEngine& engine, auto note) {
      engine.submit_read("k", bytes, [note]() { note("done"); });
    };
  };
  const Log small = run_engine(no_jitter(), 1, submit_of(KiB(4)));
  const Log large = run_engine(no_jitter(), 1, submit_of(MiB(4)));
  ASSERT_EQ(small.size(), 1u);
  ASSERT_EQ(large.size(), 1u);
  EXPECT_GT(large[0].second, small[0].second);
}

TEST(AioEngineTest, WritesAccountButNeverMerge) {
  netsim::EventLoop loop;
  Rng rng(1);
  AioStats stats;
  AioEngine engine(loop, no_jitter(), rng, stats);
  engine.submit_write(4096);
  engine.submit_write(4096);
  loop.run();
  EXPECT_EQ(stats.writes, 2u);
  EXPECT_EQ(stats.bytes_written, 2u * 4096u);
  EXPECT_EQ(stats.merged_reads, 0u);
}

TEST(AioStatsTest, MergeSumsCountersAndMaxesPeak) {
  AioStats a;
  a.reads = 3;
  a.peak_inflight = 2;
  a.bytes_read = 100;
  AioStats b;
  b.reads = 4;
  b.peak_inflight = 7;
  b.queue_waits = 1;
  a.merge(b);
  EXPECT_EQ(a.reads, 7u);
  EXPECT_EQ(a.peak_inflight, 7u);  // high-water mark, not a sum
  EXPECT_EQ(a.queue_waits, 1u);
  EXPECT_EQ(a.bytes_read, 100u);
}

}  // namespace
}  // namespace catalyst::io
