// Failure injection: the system must degrade gracefully, never hang, and
// never serve wrong bytes — under missing resources, hostile headers and
// cache-capacity pressure.
#include <gtest/gtest.h>

#include "client/browser.h"
#include "core/experiment.h"
#include "html/generate.h"
#include "workload/sitegen.h"

namespace catalyst {
namespace {

using core::StrategyKind;

std::shared_ptr<server::Site> site_with_dangling_links() {
  auto site = std::make_shared<server::Site>("broken.example");
  site->add_resource(std::make_unique<server::Resource>(
      "/index.html", http::ResourceClass::Html, 0,
      [](std::uint64_t) {
        html::HtmlBuilder page("broken");
        page.add_stylesheet("/exists.css");
        page.add_stylesheet("/missing.css");   // 404
        page.add_image("/gone.webp");          // 404
        page.add_script("/no-such.js");        // 404, parser-blocking
        return page.build();
      },
      server::ChangeProcess::never(),
      http::CacheControl::revalidate_always()));
  site->add_resource(std::make_unique<server::Resource>(
      "/exists.css", http::ResourceClass::Css, 2048,
      [](std::uint64_t v) { return html::make_css({}, {}, {}, 2048, v); },
      server::ChangeProcess::never(),
      http::CacheControl::with_max_age(hours(1))));
  return site;
}

TEST(RobustnessTest, DanglingLinksComplete) {
  auto tb = core::make_testbed(site_with_dangling_links(),
                               netsim::NetworkConditions::median_5g(),
                               StrategyKind::Baseline);
  const auto result = core::run_visit(tb, TimePoint{});
  EXPECT_EQ(result.resources_total, 5u);  // html + 4 subresources
  EXPECT_GT(result.plt(), Duration::zero());
  // 404s are not cached (no validators/freshness on our 404s).
  EXPECT_FALSE(
      tb.browser->http_cache().contains("https://broken.example/gone.webp"));
}

TEST(RobustnessTest, DanglingLinksUnderCatalyst) {
  auto tb = core::make_testbed(site_with_dangling_links(),
                               netsim::NetworkConditions::median_5g(),
                               StrategyKind::Catalyst);
  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + hours(1));
  EXPECT_EQ(revisit.resources_total, 5u);
  // The one real resource is served by the SW; the 404s re-fetch.
  EXPECT_EQ(revisit.from_sw_cache, 1u);
}

TEST(RobustnessTest, MalformedEtagConfigHeaderIsIgnored) {
  // A buggy/hostile origin sends garbage in X-Etag-Config: the Service
  // Worker must keep working as a transparent proxy.
  netsim::EventLoop loop;
  netsim::Network net(loop);
  net.add_host("client");
  net.add_host("evil.example");
  net.set_rtt("client", "evil.example", milliseconds(20));
  net.host("evil.example")
      .set_handler([&](const http::Request& req, auto respond) {
        netsim::ServerReply reply;
        reply.response = http::Response::make(http::Status::Ok);
        if (req.target == "/index.html") {
          html::HtmlBuilder page("evil");
          page.add_stylesheet("/a.css");
          reply.response.body = page.build();
          reply.response.headers.set(http::kXEtagConfig,
                                     "{{{{not json at all");
          reply.response.headers.set(http::kContentType, "text/html");
        } else {
          reply.response.body = "css";
          reply.response.headers.set(
              http::kEtagHeader,
              http::make_content_etag("css").to_string());
        }
        reply.response.finalize(loop.now());
        respond(std::move(reply));
      });

  client::BrowserConfig bc;
  bc.service_workers_enabled = true;
  client::Browser browser(net, bc);
  // Pre-register a worker with an (empty) state for the origin.
  browser.register_service_worker("evil.example", {});

  bool done = false;
  browser.load_page(*Url::parse("https://evil.example/index.html"),
                    [&](client::PageLoadResult result) {
                      done = true;
                      EXPECT_EQ(result.resources_total, 2u);
                    });
  loop.run();
  EXPECT_TRUE(done);
  // The malformed map was rejected; no map installed.
  EXPECT_EQ(browser.service_worker("evil.example").current_map(), nullptr);
}

TEST(RobustnessTest, TinyHttpCacheEvictsButStaysCorrect) {
  workload::SitegenParams params;
  params.seed = 31;
  params.site_index = 0;
  auto site = workload::generate_site(params);

  auto tb = core::make_testbed(site, netsim::NetworkConditions::median_5g(),
                               StrategyKind::Baseline);
  // Shrink the cache far below the page weight by replacing the browser.
  client::BrowserConfig bc;
  bc.http_cache_capacity = KiB(64);
  tb.browser = std::make_unique<client::Browser>(*tb.network, bc);

  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + minutes(1));
  // Mostly evicted: the revisit re-downloads most bytes, but completes.
  EXPECT_GT(revisit.from_network, revisit.resources_total / 2);
  EXPECT_GT(tb.browser->http_cache().stats().misses, 0u);
}

TEST(RobustnessTest, TinySwCacheFallsBackToRevalidation) {
  workload::SitegenParams params;
  params.seed = 32;
  params.site_index = 1;
  params.clone_static_snapshot = true;
  auto site = workload::generate_site(params);

  auto tb = core::make_testbed(site, netsim::NetworkConditions::median_5g(),
                               StrategyKind::Catalyst);
  client::BrowserConfig bc;
  bc.service_workers_enabled = true;
  bc.sw_cache_capacity = KiB(32);  // holds almost nothing
  tb.browser = std::make_unique<client::Browser>(*tb.network, bc);

  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + hours(1));
  // Few/no SW hits, but the page still loads fully and correctly (map-
  // covered-but-evicted resources revalidate).
  EXPECT_LT(revisit.from_sw_cache, 10u);
  EXPECT_EQ(revisit.resources_total,
            core::run_revisit_pair(site,
                                   netsim::NetworkConditions::median_5g(),
                                   StrategyKind::Baseline, hours(1))
                .revisit.resources_total);
}

TEST(RobustnessTest, NoStoreNeverLandsInAnyCache) {
  workload::SitegenParams params;
  params.seed = 33;
  params.site_index = 2;
  auto site = workload::generate_site(params);
  auto tb = core::make_testbed(site, netsim::NetworkConditions::median_5g(),
                               StrategyKind::Catalyst);
  (void)core::run_visit(tb, TimePoint{});
  tb.loop->run();
  for (const auto& [path, resource] : site->resources()) {
    if (!resource->cache_policy().no_store) continue;
    const std::string url = "https://" + site->host() + path;
    EXPECT_FALSE(tb.browser->http_cache().contains(url)) << path;
    EXPECT_FALSE(
        tb.browser->service_worker(site->host()).cache().contains(path))
        << path;
  }
}

TEST(RobustnessTest, ZeroDelayRevisitWorks) {
  workload::SitegenParams params;
  params.seed = 34;
  params.site_index = 3;
  auto site = workload::generate_site(params);
  const auto outcome = core::run_revisit_pair(
      site, netsim::NetworkConditions::median_5g(),
      StrategyKind::Catalyst, Duration::zero());
  EXPECT_GT(outcome.revisit.resources_total, 0u);
  EXPECT_LE(outcome.revisit.plt(), outcome.cold.plt());
}

}  // namespace
}  // namespace catalyst
