// Failure injection: the system must degrade gracefully, never hang, and
// never serve wrong bytes — under missing resources, hostile headers and
// cache-capacity pressure.
#include <gtest/gtest.h>

#include "check/oracle.h"
#include "client/browser.h"
#include "core/experiment.h"
#include "html/generate.h"
#include "workload/sitegen.h"

namespace catalyst {
namespace {

using core::StrategyKind;

std::shared_ptr<server::Site> site_with_dangling_links() {
  auto site = std::make_shared<server::Site>("broken.example");
  site->add_resource(std::make_unique<server::Resource>(
      "/index.html", http::ResourceClass::Html, 0,
      [](std::uint64_t) {
        html::HtmlBuilder page("broken");
        page.add_stylesheet("/exists.css");
        page.add_stylesheet("/missing.css");   // 404
        page.add_image("/gone.webp");          // 404
        page.add_script("/no-such.js");        // 404, parser-blocking
        return page.build();
      },
      server::ChangeProcess::never(),
      http::CacheControl::revalidate_always()));
  site->add_resource(std::make_unique<server::Resource>(
      "/exists.css", http::ResourceClass::Css, 2048,
      [](std::uint64_t v) { return html::make_css({}, {}, {}, 2048, v); },
      server::ChangeProcess::never(),
      http::CacheControl::with_max_age(hours(1))));
  return site;
}

TEST(RobustnessTest, DanglingLinksComplete) {
  auto tb = core::make_testbed(site_with_dangling_links(),
                               netsim::NetworkConditions::median_5g(),
                               StrategyKind::Baseline);
  const auto result = core::run_visit(tb, TimePoint{});
  EXPECT_EQ(result.resources_total, 5u);  // html + 4 subresources
  EXPECT_GT(result.plt(), Duration::zero());
  // 404s are not cached (no validators/freshness on our 404s).
  EXPECT_FALSE(
      tb.browser->http_cache().contains("https://broken.example/gone.webp"));
}

TEST(RobustnessTest, DanglingLinksUnderCatalyst) {
  auto tb = core::make_testbed(site_with_dangling_links(),
                               netsim::NetworkConditions::median_5g(),
                               StrategyKind::Catalyst);
  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + hours(1));
  EXPECT_EQ(revisit.resources_total, 5u);
  // The one real resource is served by the SW; the 404s re-fetch.
  EXPECT_EQ(revisit.from_sw_cache, 1u);
}

TEST(RobustnessTest, MalformedEtagConfigHeaderIsIgnored) {
  // A buggy/hostile origin sends garbage in X-Etag-Config: the Service
  // Worker must keep working as a transparent proxy.
  netsim::EventLoop loop;
  netsim::Network net(loop);
  net.add_host("client");
  net.add_host("evil.example");
  net.set_rtt("client", "evil.example", milliseconds(20));
  net.host("evil.example")
      .set_handler([&](const http::Request& req, auto respond) {
        netsim::ServerReply reply;
        reply.response = http::Response::make(http::Status::Ok);
        if (req.target == "/index.html") {
          html::HtmlBuilder page("evil");
          page.add_stylesheet("/a.css");
          reply.response.body = page.build();
          reply.response.headers.set(http::kXEtagConfig,
                                     "{{{{not json at all");
          reply.response.headers.set(http::kContentType, "text/html");
        } else {
          reply.response.body = "css";
          reply.response.headers.set(
              http::kEtagHeader,
              http::make_content_etag("css").to_string());
        }
        reply.response.finalize(loop.now());
        respond(std::move(reply));
      });

  client::BrowserConfig bc;
  bc.service_workers_enabled = true;
  client::Browser browser(net, bc);
  // Pre-register a worker with an (empty) state for the origin.
  browser.register_service_worker("evil.example", {});

  bool done = false;
  browser.load_page(*Url::parse("https://evil.example/index.html"),
                    [&](client::PageLoadResult result) {
                      done = true;
                      EXPECT_EQ(result.resources_total, 2u);
                    });
  loop.run();
  EXPECT_TRUE(done);
  // The malformed map was rejected; no map installed.
  EXPECT_EQ(browser.service_worker("evil.example").current_map(), nullptr);
}

TEST(RobustnessTest, TinyHttpCacheEvictsButStaysCorrect) {
  workload::SitegenParams params;
  params.seed = 31;
  params.site_index = 0;
  auto site = workload::generate_site(params);

  auto tb = core::make_testbed(site, netsim::NetworkConditions::median_5g(),
                               StrategyKind::Baseline);
  // Shrink the cache far below the page weight by replacing the browser.
  client::BrowserConfig bc;
  bc.http_cache_capacity = KiB(64);
  tb.browser = std::make_unique<client::Browser>(*tb.network, bc);

  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + minutes(1));
  // Mostly evicted: the revisit re-downloads most bytes, but completes.
  EXPECT_GT(revisit.from_network, revisit.resources_total / 2);
  EXPECT_GT(tb.browser->http_cache().stats().misses, 0u);
}

TEST(RobustnessTest, TinySwCacheFallsBackToRevalidation) {
  workload::SitegenParams params;
  params.seed = 32;
  params.site_index = 1;
  params.clone_static_snapshot = true;
  auto site = workload::generate_site(params);

  auto tb = core::make_testbed(site, netsim::NetworkConditions::median_5g(),
                               StrategyKind::Catalyst);
  client::BrowserConfig bc;
  bc.service_workers_enabled = true;
  bc.sw_cache_capacity = KiB(32);  // holds almost nothing
  tb.browser = std::make_unique<client::Browser>(*tb.network, bc);

  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + hours(1));
  // Few/no SW hits, but the page still loads fully and correctly (map-
  // covered-but-evicted resources revalidate).
  EXPECT_LT(revisit.from_sw_cache, 10u);
  EXPECT_EQ(revisit.resources_total,
            core::run_revisit_pair(site,
                                   netsim::NetworkConditions::median_5g(),
                                   StrategyKind::Baseline, hours(1))
                .revisit.resources_total);
}

TEST(RobustnessTest, NoStoreNeverLandsInAnyCache) {
  workload::SitegenParams params;
  params.seed = 33;
  params.site_index = 2;
  auto site = workload::generate_site(params);
  auto tb = core::make_testbed(site, netsim::NetworkConditions::median_5g(),
                               StrategyKind::Catalyst);
  (void)core::run_visit(tb, TimePoint{});
  tb.loop->run();
  for (const auto& [path, resource] : site->resources()) {
    if (!resource->cache_policy().no_store) continue;
    const std::string url = "https://" + site->host() + path;
    EXPECT_FALSE(tb.browser->http_cache().contains(url)) << path;
    EXPECT_FALSE(
        tb.browser->service_worker(site->host()).cache().contains(path))
        << path;
  }
}

/// A hand-scripted Catalyst origin whose X-Etag-Config the test controls:
/// the map can be omitted, list extra paths, or go stale relative to the
/// content — the degradation scenarios a real CDN tier produces.
class CatalystDegradationFixture : public ::testing::Test {
 protected:
  static constexpr const char* kHost = "degraded.example";

  CatalystDegradationFixture() : net_(loop_) {
    net_.add_host("client");
    net_.add_host(kHost);
    net_.set_rtt("client", kHost, milliseconds(20));
    net_.host(kHost).set_handler(
        [this](const http::Request& req, auto respond) {
          respond(handle(req));
        });
    client::BrowserConfig bc;
    bc.service_workers_enabled = true;
    browser_ = std::make_unique<client::Browser>(net_, bc);
    browser_->register_service_worker(kHost, {});
  }

  netsim::ServerReply handle(const http::Request& req) {
    ++requests_[req.target];
    netsim::ServerReply reply;
    if (req.target == "/index.html") {
      html::HtmlBuilder page("degraded");
      page.add_stylesheet("/a.css");
      page.add_image("/b.webp");
      reply.response = http::Response::make(http::Status::Ok);
      reply.response.body = page.build();
      reply.response.headers.set(http::kContentType, "text/html");
      if (malformed_map_) {
        reply.response.headers.set(http::kXEtagConfig,
                                   "%%%not-a-map%%%");
      } else if (send_map_) {
        http::EtagConfig map;
        map.add("/a.css", http::make_content_etag(css_body_));
        map.add("/b.webp", http::make_content_etag(webp_body_));
        for (const auto& [path, etag] : extra_map_entries_) {
          map.add(path, etag);
        }
        reply.response.headers.set(http::kXEtagConfig, map.encode());
      }
    } else {
      const std::string& body =
          req.target == "/a.css" ? css_body_ : webp_body_;
      const http::Etag etag = http::make_content_etag(body);
      const auto inm = req.if_none_match();
      if (inm && inm->matches(etag)) {
        reply.response = http::Response::make(http::Status::NotModified);
      } else {
        reply.response = http::Response::make(http::Status::Ok);
        reply.response.body = body;
      }
      reply.response.headers.set(http::kEtagHeader, etag.to_string());
    }
    reply.response.finalize(loop_.now());
    return reply;
  }

  client::PageLoadResult load() {
    std::optional<client::PageLoadResult> result;
    browser_->load_page(
        *Url::parse(std::string("https://") + kHost + "/index.html"),
        [&](client::PageLoadResult r) { result = std::move(r); });
    loop_.run();
    browser_->end_visit();
    EXPECT_TRUE(result.has_value()) << "page load did not complete";
    return std::move(*result);
  }

  client::CatalystServiceWorker& sw() {
    return browser_->service_worker(kHost);
  }

  /// Wires a byte-equivalence oracle against this fixture's scripted
  /// origin: ground truth is whatever the handler would serve right now.
  void attach_oracle(check::ByteOracle& oracle) {
    oracle.add_origin(
        kHost,
        [this](const std::string& path, TimePoint) -> const std::string* {
          if (path == "/index.html") {
            html::HtmlBuilder page("degraded");
            page.add_stylesheet("/a.css");
            page.add_image("/b.webp");
            html_truth_ = page.build();
            return &html_truth_;
          }
          if (path == "/a.css") return &css_body_;
          if (path == "/b.webp") return &webp_body_;
          return nullptr;
        });
    browser_->set_serve_classifier(
        [&oracle](const Url& url, const client::FetchOutcome& outcome) {
          return oracle.classify(url, outcome);
        });
  }

  netsim::EventLoop loop_;
  netsim::Network net_;
  std::unique_ptr<client::Browser> browser_;
  std::map<std::string, int> requests_;
  bool send_map_ = true;
  bool malformed_map_ = false;
  std::string css_body_ = std::string(4096, 'c');
  std::string webp_body_ = std::string(9000, 'w');
  std::string html_truth_;
  std::vector<std::pair<std::string, http::Etag>> extra_map_entries_;
};

TEST_F(CatalystDegradationFixture, MissingMapEntersDegradedModeThenRecovers) {
  const auto cold = load();
  EXPECT_EQ(cold.resources_total, 3u);
  EXPECT_FALSE(sw().degraded());

  // The origin stops sending X-Etag-Config (stripped by a middlebox, CDN
  // misconfiguration). The previous map's tokens expired with their page
  // load, so the SW must not trust any cached copy: every subresource
  // forwards as a forced conditional GET — and the load still completes
  // with correct bytes (304s against the unchanged origin).
  send_map_ = false;
  const auto degraded = load();
  EXPECT_EQ(degraded.resources_total, 3u);
  EXPECT_TRUE(sw().degraded());
  EXPECT_EQ(sw().stats().maps_missing, 1u);
  EXPECT_EQ(degraded.from_sw_cache, 0u);
  EXPECT_EQ(degraded.fallback_revalidations, 2u);
  EXPECT_EQ(degraded.not_modified, 2u);
  EXPECT_EQ(degraded.failed_loads, 0u);

  // A fresh map clears degraded mode and zero-RTT serving resumes.
  send_map_ = true;
  const auto recovered = load();
  EXPECT_FALSE(sw().degraded());
  EXPECT_EQ(recovered.from_sw_cache, 2u);
  EXPECT_EQ(recovered.fallback_revalidations, 0u);
}

TEST_F(CatalystDegradationFixture, MapEntriesForUnreferencedUrlsAreHarmless) {
  // The map lists a path the page no longer references (stale config
  // pushed ahead of the HTML rollout). It must neither trigger a fetch
  // nor disturb the load.
  extra_map_entries_.emplace_back("/ghost.css",
                                  http::make_content_etag("ghost"));
  const auto cold = load();
  EXPECT_EQ(cold.resources_total, 3u);
  const auto revisit = load();
  EXPECT_EQ(revisit.resources_total, 3u);
  EXPECT_EQ(revisit.from_sw_cache, 2u);
  EXPECT_EQ(requests_["/ghost.css"], 0);
  ASSERT_NE(sw().current_map(), nullptr);
  EXPECT_EQ(sw().current_map()->size(), 3u);
}

TEST_F(CatalystDegradationFixture, MapEtagMismatchRevalidatesToFreshBytes) {
  (void)load();
  // The stylesheet changes on the origin: the new map vouches for bytes
  // the SW does not hold, so the cached copy must NOT be served — the
  // fetch goes to the network and brings back the new version.
  css_body_ = std::string(5000, 'C');
  const auto revisit = load();
  EXPECT_EQ(revisit.resources_total, 3u);
  EXPECT_EQ(revisit.from_sw_cache, 1u);   // the unchanged image
  EXPECT_GE(revisit.from_network, 1u);    // the changed stylesheet
  EXPECT_EQ(revisit.fallback_revalidations, 0u);  // normal op, not fallback
  // The SW cache now holds the fresh bytes, keyed by the new ETag.
  EXPECT_NE(sw().cache().match("/a.css", http::make_content_etag(css_body_)),
            nullptr);
}

TEST_F(CatalystDegradationFixture, CorruptedSwEntryFallsBackToConditionalGet) {
  (void)load();
  // Storage corruption: the stored body no longer matches its digest. The
  // integrity check must catch it at match time — the entry is evicted
  // and the fetch falls back to a conditional GET instead of serving the
  // damaged bytes.
  sw().cache().corrupt("/a.css");
  const auto revisit = load();
  EXPECT_EQ(revisit.resources_total, 3u);
  EXPECT_EQ(sw().cache().stats().integrity_failures, 1u);
  EXPECT_EQ(revisit.fallback_revalidations, 1u);
  EXPECT_EQ(revisit.not_modified, 1u);    // origin confirms the HTTP copy
  EXPECT_EQ(revisit.from_sw_cache, 1u);   // the intact image still serves
  EXPECT_EQ(revisit.failed_loads, 0u);
  EXPECT_FALSE(sw().cache().contains("/a.css"));
}

TEST_F(CatalystDegradationFixture, DegradedModeNeverServesWrongBytes) {
  // The oracle audits every serve while the origin degrades: the map
  // disappears mid-session AND the content changes underneath the caches.
  // Degraded mode must answer with forced conditional GETs that bring
  // back current bytes — zero violations through the whole episode.
  check::ByteOracle oracle;
  attach_oracle(oracle);

  (void)load();                      // cold, map present
  send_map_ = false;
  css_body_ = std::string(5000, 'D');  // changes while the map is gone
  const auto degraded = load();
  EXPECT_TRUE(sw().degraded());
  EXPECT_EQ(degraded.failed_loads, 0u);

  send_map_ = true;                  // recovery, plus another change
  webp_body_ = std::string(7000, 'W');
  const auto recovered = load();
  EXPECT_FALSE(sw().degraded());
  EXPECT_EQ(recovered.failed_loads, 0u);

  EXPECT_GE(oracle.stats().checked, 9u);  // 3 loads x 3 resources
  EXPECT_EQ(oracle.stats().violations, 0u)
      << "first: "
      << (oracle.violations().empty() ? "" : oracle.violations()[0].url);
}

TEST_F(CatalystDegradationFixture, MalformedMapWithOracleStaysClean) {
  // Garbage X-Etag-Config (hostile middlebox): the SW rejects the map and
  // falls back — and the bytes it forwards must still audit clean even
  // as the content changes between loads.
  check::ByteOracle oracle;
  attach_oracle(oracle);
  (void)load();
  malformed_map_ = true;
  css_body_ = std::string(4500, 'M');
  const auto broken = load();
  EXPECT_EQ(broken.failed_loads, 0u);
  EXPECT_EQ(sw().current_map(), nullptr);
  EXPECT_EQ(oracle.stats().violations, 0u);
  EXPECT_GE(oracle.stats().checked, 6u);
}

TEST(RobustnessTest, MidStreamDropsWithRetriesAuditClean) {
  // Aggressive fault injection (mid-stream drops, stalls, an outage
  // window) over a live-changing site under Catalyst: retries must
  // complete every visit and no fault path may leak stale bytes — the
  // oracle stays at zero violations across visits spanning changes.
  workload::SitegenParams params;
  params.seed = 35;
  params.site_index = 4;
  params.clone_static_snapshot = false;
  auto site = workload::generate_site(params);

  netsim::NetworkConditions cond = netsim::NetworkConditions::median_5g();
  cond.faults.loss_rate = 0.08;
  cond.faults.stall_rate = 0.02;
  cond.faults.outage_fraction = 0.02;
  cond.faults.fault_seed = 35;

  core::StrategyOptions opts;
  opts.byte_oracle = true;
  auto tb = core::make_testbed(site, cond, StrategyKind::Catalyst, opts);
  for (int h : {1, 9, 26, 50}) {
    const auto result = core::run_visit(tb, TimePoint{} + hours(h));
    EXPECT_GT(result.resources_total, 0u);
  }
  EXPECT_GT(tb.byte_oracle->stats().checked, 0u);
  EXPECT_EQ(tb.byte_oracle->stats().violations, 0u);
}

TEST(RobustnessTest, ZeroDelayRevisitWorks) {
  workload::SitegenParams params;
  params.seed = 34;
  params.site_index = 3;
  auto site = workload::generate_site(params);
  const auto outcome = core::run_revisit_pair(
      site, netsim::NetworkConditions::median_5g(),
      StrategyKind::Catalyst, Duration::zero());
  EXPECT_GT(outcome.revisit.resources_total, 0u);
  EXPECT_LE(outcome.revisit.plt(), outcome.cold.plt());
}

}  // namespace
}  // namespace catalyst
