// SmallFn is the event loop's callback type: every scheduled closure on
// the fetch path flows through it, so the tests pin the properties the
// dispatcher relies on — inline storage for small captures, the boxed
// fallback for large ones, move-only ownership, and destruction exactly
// once.
#include "util/smallfn.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>

namespace catalyst {
namespace {

using VoidFn = SmallFn<void()>;
using IntFn = SmallFn<int(int)>;

TEST(SmallFnTest, DefaultAndNullptrAreEmpty) {
  VoidFn empty;
  EXPECT_FALSE(empty);
  VoidFn null = nullptr;
  EXPECT_FALSE(null);
  empty.reset();  // resetting an empty fn is a no-op
  EXPECT_FALSE(empty);
}

TEST(SmallFnTest, InvokesAndForwardsArguments) {
  IntFn twice = [](int x) { return 2 * x; };
  ASSERT_TRUE(twice);
  EXPECT_EQ(twice(21), 42);
}

TEST(SmallFnTest, SmallCapturesStayInline) {
  // A `this`-pointer-plus-handles capture: the fetch-path common case.
  struct Capture {
    void* self;
    std::uint64_t a, b, c;
  };
  static_assert(sizeof(Capture) <= kSmallFnInlineBytes);
  int sink = 0;
  auto small = [&sink, pad = Capture{}] { (void)pad, ++sink; };
  EXPECT_TRUE(VoidFn::stores_inline<decltype(small)>());
  VoidFn fn = small;
  fn();
  EXPECT_EQ(sink, 1);
}

TEST(SmallFnTest, OversizedCapturesAreBoxedButStillWork) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > 48-byte buffer
  big[7] = 99;
  auto large = [big] { return big[7]; };
  EXPECT_FALSE(SmallFn<std::uint64_t()>::stores_inline<decltype(large)>());
  SmallFn<std::uint64_t()> fn = large;
  EXPECT_EQ(fn(), 99u);
  // Boxed payloads survive moves: the box pointer transfers.
  SmallFn<std::uint64_t()> moved = std::move(fn);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move): asserting the state
  EXPECT_EQ(moved(), 99u);
}

TEST(SmallFnTest, AcceptsMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(7);
  SmallFn<int()> fn = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(fn(), 7);
  SmallFn<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 7);
}

TEST(SmallFnTest, MoveTransfersStateAndEmptiesSource) {
  int calls = 0;
  VoidFn a = [&calls] { ++calls; };
  VoidFn b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): asserting the state
  ASSERT_TRUE(b);
  b();
  EXPECT_EQ(calls, 1);

  // Move-assign over a live target destroys the old payload first.
  VoidFn c = [&calls] { calls += 10; };
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);

  // Move-assign from empty leaves the target empty (the SlabPool reset
  // idiom: `value = T{}`).
  c = VoidFn{};
  EXPECT_FALSE(c);
}

TEST(SmallFnTest, NonTrivialInlineCaptureDestroysExactlyOnce) {
  // shared_ptr capture: inline (16 bytes) but not trivially copyable, so
  // the manage_ path handles moves and destruction.
  auto token = std::make_shared<int>(0);
  auto capture = [token] {};
  EXPECT_TRUE(VoidFn::stores_inline<decltype(capture)>());
  {
    VoidFn fn = std::move(capture);
    EXPECT_EQ(token.use_count(), 2);
    VoidFn moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);  // moved, not copied
    moved.reset();
    EXPECT_EQ(token.use_count(), 1);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallFnTest, BoxedCaptureDestroysExactlyOnce) {
  auto token = std::make_shared<int>(0);
  std::array<char, 64> pad{};
  {
    VoidFn fn = [token, pad] { (void)pad; };
    EXPECT_EQ(token.use_count(), 2);
    VoidFn moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);
    // Destructor of `moved` at scope exit frees the box.
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallFnTest, MutableLambdaKeepsStateAcrossCalls) {
  SmallFn<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  SmallFn<int()> moved = std::move(counter);
  EXPECT_EQ(moved(), 3);  // state moved with the closure
}

TEST(SmallFnTest, WrapsStdFunctionByValue) {
  // Call sites sometimes hand the loop a std::function (e.g. a stored
  // recursive callback); SmallFn must wrap it like any other callable.
  int calls = 0;
  std::function<void()> fn = [&calls] { ++calls; };
  VoidFn wrapped = fn;
  wrapped();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bool(fn), true);  // source untouched: wrapped a copy
}

}  // namespace
}  // namespace catalyst
