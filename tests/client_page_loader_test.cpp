// End-to-end page-load behaviour on the paper's Figure-1 example site.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.h"
#include "core/testbed.h"
#include "workload/sitegen.h"

namespace catalyst::client {
namespace {

using core::StrategyKind;

const netsim::FetchTrace* find_trace(const PageLoadResult& result,
                                     std::string_view url) {
  for (const auto& t : result.trace.traces()) {
    if (t.url == url) return &t;
  }
  return nullptr;
}

class Figure1Fixture : public ::testing::Test {
 protected:
  core::Testbed testbed(StrategyKind kind) {
    return core::make_testbed(workload::make_figure1_site(),
                              netsim::NetworkConditions::median_5g(), kind);
  }
};

TEST_F(Figure1Fixture, ColdLoadFetchesAllFiveResources) {
  auto tb = testbed(StrategyKind::Baseline);
  const auto result = core::run_visit(tb, TimePoint{});
  EXPECT_EQ(result.resources_total, 5u);
  EXPECT_EQ(result.from_network, 5u);
  for (const char* url :
       {"/index.html", "/a.css", "/b.js", "/c.js", "/d.jpg"}) {
    EXPECT_NE(find_trace(result, url), nullptr) << url;
  }
}

TEST_F(Figure1Fixture, DependencyChainOrdering) {
  auto tb = testbed(StrategyKind::Baseline);
  const auto result = core::run_visit(tb, TimePoint{});
  const auto* html = find_trace(result, "/index.html");
  const auto* a = find_trace(result, "/a.css");
  const auto* b = find_trace(result, "/b.js");
  const auto* c = find_trace(result, "/c.js");
  const auto* d = find_trace(result, "/d.jpg");
  ASSERT_TRUE(html && a && b && c && d);
  // a.css and b.js discovered after HTML parse.
  EXPECT_GE(a->start, html->finish);
  EXPECT_GE(b->start, html->finish);
  // c.js only requested after b.js arrived (and executed).
  EXPECT_GT(c->start, b->finish);
  // d.jpg only requested after c.js arrived (and executed).
  EXPECT_GT(d->start, c->finish);
  // OnLoad fires at the end of the last fetch (plus compute).
  EXPECT_GE(result.onload, d->finish);
}

TEST_F(Figure1Fixture, BaselineRevisitMatchesFigure1b) {
  auto tb = testbed(StrategyKind::Baseline);
  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + hours(2));
  // index.html: no-cache -> 304. a.css: fresh (1 week). b.js: no-cache ->
  // 304. c.js: fresh. d.jpg: expired (2h) AND changed (at 1h) -> 200.
  EXPECT_EQ(find_trace(revisit, "/index.html")->source,
            netsim::FetchSource::NotModified);
  EXPECT_EQ(find_trace(revisit, "/a.css")->source,
            netsim::FetchSource::BrowserCache);
  EXPECT_EQ(find_trace(revisit, "/b.js")->source,
            netsim::FetchSource::NotModified);
  EXPECT_EQ(find_trace(revisit, "/c.js")->source,
            netsim::FetchSource::BrowserCache);
  EXPECT_EQ(find_trace(revisit, "/d.jpg")->source,
            netsim::FetchSource::Network);
  EXPECT_EQ(revisit.not_modified, 2u);
  EXPECT_EQ(revisit.from_cache, 2u);
  EXPECT_EQ(revisit.from_network, 1u);
}

TEST_F(Figure1Fixture, CatalystRevisitMatchesFigure1c) {
  auto tb = testbed(StrategyKind::Catalyst);
  (void)core::run_visit(tb, TimePoint{});
  const auto revisit = core::run_visit(tb, TimePoint{} + hours(2));
  // Optimized: a.css and b.js served by the SW with zero RTTs; d.jpg
  // changed so it must be fetched (it is map-covered... d.jpg is only
  // discovered through JS, so the SW forwards it with revalidation and
  // the origin answers 200 with the new bytes).
  EXPECT_EQ(find_trace(revisit, "/a.css")->source,
            netsim::FetchSource::SwCache);
  EXPECT_EQ(find_trace(revisit, "/b.js")->source,
            netsim::FetchSource::SwCache);
  EXPECT_EQ(find_trace(revisit, "/d.jpg")->source,
            netsim::FetchSource::Network);
  EXPECT_EQ(revisit.from_sw_cache, 2u);
}

TEST_F(Figure1Fixture, CatalystRevisitFasterThanBaseline) {
  auto base_tb = testbed(StrategyKind::Baseline);
  auto cat_tb = testbed(StrategyKind::Catalyst);
  (void)core::run_visit(base_tb, TimePoint{});
  (void)core::run_visit(cat_tb, TimePoint{});
  const auto base = core::run_visit(base_tb, TimePoint{} + hours(2));
  const auto cat = core::run_visit(cat_tb, TimePoint{} + hours(2));
  EXPECT_LT(cat.plt(), base.plt());
  EXPECT_LT(cat.rtts, base.rtts);
}

TEST_F(Figure1Fixture, ColdLoadsEquivalentAcrossStrategies) {
  auto base_tb = testbed(StrategyKind::Baseline);
  auto cat_tb = testbed(StrategyKind::Catalyst);
  const auto base = core::run_visit(base_tb, TimePoint{});
  const auto cat = core::run_visit(cat_tb, TimePoint{});
  // Catalyst adds only header overhead + injection bytes on a cold load.
  EXPECT_NEAR(to_millis(cat.plt()), to_millis(base.plt()),
              to_millis(base.plt()) * 0.05);
}

TEST_F(Figure1Fixture, ServiceWorkerRegistersAfterFirstVisit) {
  auto tb = testbed(StrategyKind::Catalyst);
  (void)core::run_visit(tb, TimePoint{});
  EXPECT_TRUE(tb.browser->sw_registered("example.com"));
  // The SW cache holds the first visit's cacheable responses.
  const auto& sw = tb.browser->service_worker("example.com");
  EXPECT_GE(sw.cache().entry_count(), 4u);
}

TEST_F(Figure1Fixture, BaselineNeverRegistersServiceWorker) {
  auto tb = testbed(StrategyKind::Baseline);
  (void)core::run_visit(tb, TimePoint{});
  EXPECT_FALSE(tb.browser->sw_registered("example.com"));
}

TEST_F(Figure1Fixture, DeterministicAcrossRuns) {
  auto tb1 = testbed(StrategyKind::Catalyst);
  auto tb2 = testbed(StrategyKind::Catalyst);
  const auto r1 = core::run_visit(tb1, TimePoint{});
  const auto r2 = core::run_visit(tb2, TimePoint{});
  EXPECT_EQ(r1.plt(), r2.plt());
  const auto v1 = core::run_visit(tb1, TimePoint{} + hours(2));
  const auto v2 = core::run_visit(tb2, TimePoint{} + hours(2));
  EXPECT_EQ(v1.plt(), v2.plt());
  EXPECT_EQ(v1.bytes_downloaded, v2.bytes_downloaded);
}

}  // namespace
}  // namespace catalyst::client
