#include "util/pool.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace catalyst {
namespace {

TEST(SlabPool, AcquireGetRelease) {
  SlabPool<std::string> pool;
  const auto h = pool.acquire();
  ASSERT_NE(pool.get(h), nullptr);
  *pool.get(h) = "payload";
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_TRUE(pool.release(h));
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.get(h), nullptr) << "released handle must go stale";
}

TEST(SlabPool, HandlesAreNeverNull) {
  SlabPool<int> pool;
  for (int i = 0; i < 100; ++i) {
    const auto h = pool.acquire();
    EXPECT_NE(h, SlabPool<int>::kNull);
    pool.release(h);
  }
}

TEST(SlabPool, ReusesSlotsInsteadOfGrowing) {
  SlabPool<std::vector<int>> pool;
  for (int round = 0; round < 1000; ++round) {
    const auto a = pool.acquire();
    const auto b = pool.acquire();
    pool.get(a)->assign(16, round);
    pool.get(b)->assign(16, -round);
    pool.release(a);
    pool.release(b);
  }
  EXPECT_EQ(pool.capacity(), 2u) << "steady-state churn must not grow slab";
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, DoubleReleaseIsSafeNoOp) {
  SlabPool<int> pool;
  const auto h = pool.acquire();
  EXPECT_TRUE(pool.release(h));
  EXPECT_FALSE(pool.release(h)) << "second release must report stale";
  // The slot was recycled exactly once: the next acquire reuses it and a
  // third release of the old handle must not free the new occupant.
  const auto h2 = pool.acquire();
  EXPECT_FALSE(pool.release(h));
  ASSERT_NE(pool.get(h2), nullptr);
  EXPECT_EQ(pool.live(), 1u);
  pool.release(h2);
}

TEST(SlabPool, StaleHandleCannotReachRecycledSlot) {
  SlabPool<std::string> pool;
  const auto old = pool.acquire();
  *pool.get(old) = "first occupant";
  pool.release(old);
  const auto fresh = pool.acquire();  // same slot, new generation
  *pool.get(fresh) = "second occupant";
  EXPECT_EQ(pool.get(old), nullptr)
      << "stale handle aliased the recycled slot";
  EXPECT_EQ(*pool.get(fresh), "second occupant");
  pool.release(fresh);
}

TEST(SlabPool, ReleaseResetsObjectState) {
  // Objects holding resources (closures, buffers) must drop them at
  // release, not at pool destruction — under ASan a leaked capture shows
  // up as a leak, and a dangling one as use-after-free.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  SlabPool<std::function<void()>> pool;
  const auto h = pool.acquire();
  *pool.get(h) = [token] { (void)*token; };
  token.reset();
  EXPECT_FALSE(watch.expired()) << "closure must keep its capture alive";
  pool.release(h);
  EXPECT_TRUE(watch.expired()) << "release must drop the stored closure";
}

TEST(SlabPool, ManyLiveObjectsGetDistinctStorage) {
  SlabPool<int> pool;
  std::vector<SlabPool<int>::Handle> handles;
  for (int i = 0; i < 2000; ++i) {
    handles.push_back(pool.acquire());
    *pool.get(handles.back()) = i;
  }
  EXPECT_EQ(pool.live(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_NE(pool.get(handles[i]), nullptr);
    EXPECT_EQ(*pool.get(handles[i]), i);
  }
  for (const auto h : handles) EXPECT_TRUE(pool.release(h));
  EXPECT_EQ(pool.live(), 0u);
}

}  // namespace
}  // namespace catalyst
