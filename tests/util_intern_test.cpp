#include "util/intern.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace catalyst {
namespace {

TEST(InternTable, AssignsDenseIdsInFirstInternOrder) {
  InternTable table;
  EXPECT_EQ(table.intern("/index.html"), 0u);
  EXPECT_EQ(table.intern("a.example"), 1u);
  EXPECT_EQ(table.intern("/app.js"), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(InternTable, SameStringSameId) {
  InternTable table;
  const InternId a = table.intern("/styles/main.css");
  const InternId b = table.intern(std::string("/styles/main.css"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(InternTable, StrRoundTrips) {
  InternTable table;
  const InternId id = table.intern("b.example");
  EXPECT_EQ(table.str(id), "b.example");
  EXPECT_EQ(table.view(id), "b.example");
  EXPECT_EQ(table.hash_of(id), fnv1a64("b.example"));
}

TEST(InternTable, FindDoesNotIntern) {
  InternTable table;
  EXPECT_EQ(table.find("/missing"), kNoIntern);
  EXPECT_EQ(table.size(), 0u);
  const InternId id = table.intern("/missing");
  EXPECT_EQ(table.find("/missing"), id);
}

TEST(InternTable, EmptyStringIsAValidKey) {
  InternTable table;
  const InternId id = table.intern("");
  EXPECT_NE(id, kNoIntern);
  EXPECT_EQ(table.intern(""), id);
  EXPECT_EQ(table.str(id), "");
}

TEST(InternTable, SurvivesRehashWithStableIdsAndReferences) {
  InternTable table;
  std::vector<const std::string*> refs;
  std::vector<InternId> ids;
  // Far beyond the initial slot count to force several growth rounds.
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "/resource/" + std::to_string(i) + ".bin";
    ids.push_back(table.intern(key));
    refs.push_back(&table.str(ids.back()));
  }
  ASSERT_EQ(table.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "/resource/" + std::to_string(i) + ".bin";
    // Ids are dense first-intern order and stable across rehash.
    EXPECT_EQ(ids[i], static_cast<InternId>(i));
    EXPECT_EQ(table.intern(key), ids[i]);
    // Arena references taken before growth still point at live strings.
    EXPECT_EQ(*refs[i], key);
  }
}

TEST(InternTable, CollidingHashesResolveToDistinctIds) {
  // FNV-1a collisions are hard to construct, but equal (hash % slots)
  // probe collisions happen constantly; sanity-check a batch of short
  // keys all lands on distinct ids that round-trip.
  InternTable table;
  std::vector<InternId> ids;
  for (int i = 0; i < 512; ++i) {
    ids.push_back(table.intern(std::string(1, static_cast<char>(i % 256)) +
                               std::to_string(i)));
  }
  std::vector<InternId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "duplicate id issued for distinct strings";
}

TEST(InternTable, IdsAreDeterministicForAGivenInsertionOrder) {
  // Same insertion order → same ids, independent of any global state.
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) keys.push_back("/k" + std::to_string(i));
  InternTable a;
  InternTable b;
  for (const auto& k : keys) EXPECT_EQ(a.intern(k), b.intern(k));
}

TEST(InternTable, DifferentInsertionOrdersStillRoundTrip) {
  // Ids differ across insertion orders (they are dense first-seen
  // indices) but every id must keep mapping to its own string. This is
  // the property the engine relies on: ids are shard-local handles, never
  // compared across tables.
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) keys.push_back("/k" + std::to_string(i));
  std::vector<std::string> shuffled = keys;
  std::mt19937 rng(7);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  InternTable a;
  InternTable b;
  for (const auto& k : keys) a.intern(k);
  for (const auto& k : shuffled) b.intern(k);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& k : keys) {
    EXPECT_EQ(a.str(a.find(k)), k);
    EXPECT_EQ(b.str(b.find(k)), k);
  }
}

TEST(InternTable, TlsTablesAreIndependentPerThread) {
  const InternId main_id = tls_intern().intern("tls-probe-main");
  InternId worker_id = kNoIntern;
  std::size_t worker_size = 0;
  std::thread worker([&] {
    worker_id = tls_intern().intern("tls-probe-worker");
    worker_size = tls_intern().size();
  });
  worker.join();
  // The worker's table never saw "tls-probe-main".
  EXPECT_EQ(worker_size, 1u);
  EXPECT_EQ(worker_id, 0u);
  EXPECT_EQ(tls_intern().str(main_id), "tls-probe-main");
  EXPECT_EQ(tls_intern().find("tls-probe-worker"), kNoIntern);
}

}  // namespace
}  // namespace catalyst
