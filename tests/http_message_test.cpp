#include "http/message.h"

#include <gtest/gtest.h>

#include "http/serializer.h"

namespace catalyst::http {
namespace {

TEST(RequestTest, GetConvenience) {
  const Request req = Request::get("/a.css", "example.com");
  EXPECT_EQ(req.method, Method::Get);
  EXPECT_EQ(req.target, "/a.css");
  EXPECT_EQ(req.headers.get(kHost), "example.com");
}

TEST(RequestTest, WireSizeMatchesSerializedBytes) {
  Request req = Request::get("/path/to/thing?q=1", "h.example");
  req.headers.add("If-None-Match", "\"abcdef\"");
  req.body = "payload";
  EXPECT_EQ(req.wire_size(), serialize(req).size());
}

TEST(ResponseTest, WireSizeMatchesSerializedBytes) {
  Response resp = Response::make(Status::Ok);
  resp.headers.add(kContentType, "text/html");
  resp.body = "<html></html>";
  resp.finalize(TimePoint{} + seconds(5));
  EXPECT_EQ(resp.wire_size(), serialize(resp).size());
}

TEST(ResponseTest, DeclaredBodySizeGovernsWireSize) {
  Response resp = Response::make(Status::Ok);
  resp.body = "tiny stand-in";
  resp.declared_body_size = 50000;
  EXPECT_EQ(resp.body_wire_size(), 50000u);
  // Wire size = head + declared body.
  Response same_head = resp;
  same_head.declared_body_size = 0;
  EXPECT_EQ(resp.wire_size(),
            same_head.wire_size() - same_head.body.size() + 50000u);
}

TEST(ResponseTest, FinalizeSetsContentLengthAndDate) {
  Response resp = Response::make(Status::Ok);
  resp.body = "12345";
  resp.finalize(TimePoint{});
  EXPECT_EQ(resp.headers.get(kContentLength), "5");
  EXPECT_EQ(resp.headers.get(kDate), "Thu, 01 Jan 2026 00:00:00 GMT");
}

TEST(ResponseTest, CacheControlAccessor) {
  Response resp = Response::make(Status::Ok);
  EXPECT_EQ(resp.cache_control(), CacheControl{});
  resp.headers.set(kCacheControl, "no-store");
  EXPECT_TRUE(resp.cache_control().no_store);
}

TEST(ResponseTest, EtagAccessor) {
  Response resp = Response::make(Status::Ok);
  EXPECT_FALSE(resp.etag());
  resp.headers.set(kEtagHeader, "W/\"v3\"");
  const auto tag = resp.etag();
  ASSERT_TRUE(tag);
  EXPECT_TRUE(tag->weak);
  EXPECT_EQ(tag->value, "v3");
  resp.headers.set(kEtagHeader, "garbage");
  EXPECT_FALSE(resp.etag());
}

TEST(RequestTest, IfNoneMatchAccessor) {
  Request req = Request::get("/", "h");
  EXPECT_FALSE(req.if_none_match());
  req.headers.set(kIfNoneMatch, "\"a\"");
  const auto inm = req.if_none_match();
  ASSERT_TRUE(inm);
  EXPECT_EQ(inm->tags.size(), 1u);
}

TEST(StatusTest, Properties) {
  EXPECT_TRUE(is_success(Status::Ok));
  EXPECT_FALSE(is_success(Status::NotModified));
  EXPECT_TRUE(is_cacheable_status(Status::Ok));
  EXPECT_TRUE(is_cacheable_status(Status::NotFound));
  EXPECT_FALSE(is_cacheable_status(Status::NotModified));
  EXPECT_FALSE(is_cacheable_status(Status::InternalServerError));
  EXPECT_EQ(reason_phrase(Status::NotModified), "Not Modified");
  EXPECT_EQ(code(Status::NotFound), 404);
}

TEST(MethodTest, RoundTrip) {
  for (const Method m : {Method::Get, Method::Head, Method::Post,
                         Method::Put, Method::Delete, Method::Options}) {
    EXPECT_EQ(parse_method(to_string(m)), m);
  }
  EXPECT_FALSE(parse_method("BREW"));
}

}  // namespace
}  // namespace catalyst::http
