// Property-based sweeps over seeds and network conditions: the system-wide
// invariants from DESIGN.md §5, checked on many generated sites.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "workload/sitegen.h"

namespace catalyst::core {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  int site_index;
  bool clone;
  double down_mbps;
  double rtt_ms;
  Duration delay;
};

void PrintTo(const PropertyCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " site=" << c.site_index
      << (c.clone ? " clone" : " live") << " " << c.down_mbps << "Mbps/"
      << c.rtt_ms << "ms delay=" << to_seconds(c.delay) << "s";
}

class StrategyProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  std::shared_ptr<server::Site> make_site() const {
    workload::SitegenParams p;
    p.seed = GetParam().seed;
    p.site_index = GetParam().site_index;
    p.clone_static_snapshot = GetParam().clone;
    return workload::generate_site(p);
  }

  netsim::NetworkConditions conditions() const {
    netsim::NetworkConditions c;
    c.downlink = mbps(GetParam().down_mbps);
    c.uplink = mbps(GetParam().down_mbps / 5.0);
    c.rtt = milliseconds_f(GetParam().rtt_ms);
    return c;
  }
};

// --- Staleness safety (the paper's correctness claim) ------------------
// Everything the Service Worker served from its cache carries the ETag the
// origin had when the page load began: catalyst never shows stale bytes.
TEST_P(StrategyProperties, CatalystNeverServesStaleBytes) {
  const auto site = make_site();
  Testbed tb = make_testbed(site, conditions(), StrategyKind::Catalyst);
  (void)run_visit(tb, TimePoint{});
  const TimePoint revisit_at = TimePoint{} + GetParam().delay;
  const auto revisit = run_visit(tb, revisit_at);

  const auto& sw = tb.browser->service_worker(site->host());
  for (const auto& trace : revisit.trace.traces()) {
    if (trace.source != netsim::FetchSource::SwCache) continue;
    const auto stored = sw.cache().stored_etag(trace.url);
    ASSERT_TRUE(stored) << trace.url;
    const server::Resource* origin = site->find(trace.url);
    ASSERT_NE(origin, nullptr) << trace.url;
    EXPECT_TRUE(stored->weak_equals(origin->etag_at(revisit_at)))
        << trace.url << " served stale content";
  }
}

// --- Completeness: every site resource reachable from the page loads ---
TEST_P(StrategyProperties, ColdLoadTouchesOnlyKnownResources) {
  const auto site = make_site();
  Testbed tb = make_testbed(site, conditions(), StrategyKind::Baseline);
  const auto cold = run_visit(tb, TimePoint{});
  EXPECT_GT(cold.resources_total, 0u);
  for (const auto& trace : cold.trace.traces()) {
    EXPECT_NE(site->find(trace.url), nullptr)
        << trace.url << " fetched but not on the site";
  }
}

// --- Determinism: same inputs, identical outputs to the nanosecond -----
TEST_P(StrategyProperties, DeterministicPlt) {
  const auto site = make_site();
  const auto a = run_revisit_pair(site, conditions(),
                                  StrategyKind::Catalyst, GetParam().delay);
  const auto b = run_revisit_pair(site, conditions(),
                                  StrategyKind::Catalyst, GetParam().delay);
  EXPECT_EQ(a.cold.plt(), b.cold.plt());
  EXPECT_EQ(a.revisit.plt(), b.revisit.plt());
  EXPECT_EQ(a.revisit.bytes_downloaded, b.revisit.bytes_downloaded);
  EXPECT_EQ(a.revisit.rtts, b.revisit.rtts);
}

// --- Monotonicity: Catalyst never loses to Baseline on revisits --------
TEST_P(StrategyProperties, CatalystBeatsOrTiesBaselineOnRevisit) {
  const auto site = make_site();
  const auto base = run_revisit_pair(site, conditions(),
                                     StrategyKind::Baseline,
                                     GetParam().delay);
  const auto cat = run_revisit_pair(site, conditions(),
                                    StrategyKind::Catalyst,
                                    GetParam().delay);
  // Allow 2% for header overhead + SW interception latency.
  EXPECT_LT(to_millis(cat.revisit.plt()),
            to_millis(base.revisit.plt()) * 1.02);
}

// --- Oracle is the floor ------------------------------------------------
TEST_P(StrategyProperties, OracleLowerBoundsCacheStrategies) {
  const auto site = make_site();
  const auto oracle = run_revisit_pair(site, conditions(),
                                       StrategyKind::Oracle,
                                       GetParam().delay);
  const auto cat = run_revisit_pair(site, conditions(),
                                    StrategyKind::Catalyst,
                                    GetParam().delay);
  EXPECT_LT(to_millis(oracle.revisit.plt()),
            to_millis(cat.revisit.plt()) * 1.02);
}

// --- Paint/interactivity metrics are well-ordered -----------------------
TEST_P(StrategyProperties, PaintMetricsOrdered) {
  const auto site = make_site();
  for (const StrategyKind kind :
       {StrategyKind::Baseline, StrategyKind::Catalyst}) {
    const auto outcome =
        run_revisit_pair(site, conditions(), kind, GetParam().delay);
    for (const auto* r : {&outcome.cold, &outcome.revisit}) {
      EXPECT_GE(r->first_paint, r->start) << to_string(kind);
      EXPECT_LE(r->first_paint, r->onload) << to_string(kind);
      EXPECT_GE(r->interactive, r->first_paint) << to_string(kind);
      EXPECT_LE(r->interactive, r->onload) << to_string(kind);
    }
  }
}

// --- Staleness: catalyst never serves more stale bytes than baseline ---
TEST_P(StrategyProperties, CatalystStaleServesBoundedByBaseline) {
  const auto site = make_site();
  const auto base = run_revisit_pair(site, conditions(),
                                     StrategyKind::Baseline,
                                     GetParam().delay);
  const auto cat = run_revisit_pair(site, conditions(),
                                    StrategyKind::Catalyst,
                                    GetParam().delay);
  EXPECT_LE(cat.revisit.stale_served, base.revisit.stale_served);
  if (GetParam().clone) {
    // Frozen content: nothing can be stale for anyone.
    EXPECT_EQ(base.revisit.stale_served, 0u);
    EXPECT_EQ(cat.revisit.stale_served, 0u);
  }
}

// --- Byte accounting: revisits never download more than cold loads -----
TEST_P(StrategyProperties, CacheStrategiesNeverIncreaseBytes) {
  const auto site = make_site();
  for (const StrategyKind kind :
       {StrategyKind::Baseline, StrategyKind::Catalyst,
        StrategyKind::Oracle}) {
    const auto outcome =
        run_revisit_pair(site, conditions(), kind, GetParam().delay);
    EXPECT_LE(outcome.revisit.bytes_downloaded,
              outcome.cold.bytes_downloaded)
        << to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyProperties,
    ::testing::Values(
        PropertyCase{11, 0, true, 60, 40, hours(6)},
        PropertyCase{11, 1, true, 8, 40, minutes(1)},
        PropertyCase{12, 2, false, 60, 10, hours(1)},
        PropertyCase{13, 3, false, 25, 80, days(1)},
        PropertyCase{14, 4, true, 60, 80, days(7)},
        PropertyCase{15, 5, false, 8, 20, hours(6)},
        PropertyCase{16, 6, true, 25, 20, days(1)},
        PropertyCase{17, 7, false, 60, 40, minutes(1)}));

}  // namespace
}  // namespace catalyst::core
