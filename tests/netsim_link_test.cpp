#include "netsim/link.h"

#include <gtest/gtest.h>

namespace catalyst::netsim {
namespace {

TEST(LinkTest, SingleTransferTakesClosedFormTime) {
  EventLoop loop;
  Link link(loop, "l", mbps(8));  // 1 MB/s
  TimePoint done{};
  link.start_transfer(500'000, [&] { done = loop.now(); });
  loop.run();
  EXPECT_EQ(done, TimePoint{} + milliseconds(500));
  EXPECT_EQ(link.bytes_delivered(), 500'000u);
}

TEST(LinkTest, ZeroByteTransferCompletesImmediately) {
  EventLoop loop;
  Link link(loop, "l", mbps(10));
  TimePoint done = TimePoint::max();
  link.start_transfer(0, [&] { done = loop.now(); });
  loop.run();
  EXPECT_EQ(done, TimePoint{});
}

TEST(LinkTest, TwoEqualFlowsShareCapacity) {
  EventLoop loop;
  Link link(loop, "l", mbps(8));  // 1 MB/s
  TimePoint done_a{}, done_b{};
  // Two 500 KB flows started together: each sees 0.5 MB/s, both finish at
  // t = 1 s (processor sharing), not 0.5 s.
  link.start_transfer(500'000, [&] { done_a = loop.now(); });
  link.start_transfer(500'000, [&] { done_b = loop.now(); });
  loop.run();
  EXPECT_EQ(done_a, TimePoint{} + seconds(1));
  EXPECT_EQ(done_b, TimePoint{} + seconds(1));
}

TEST(LinkTest, UnequalFlowsClosedForm) {
  EventLoop loop;
  Link link(loop, "l", mbps(8));  // 1 MB/s
  TimePoint done_small{}, done_big{};
  // 250 KB and 750 KB started together. Shared phase: both at 0.5 MB/s
  // until the small one finishes at t=0.5s (having moved 250 KB each).
  // The big one then has 500 KB left at full rate: done at t=1.0s.
  link.start_transfer(250'000, [&] { done_small = loop.now(); });
  link.start_transfer(750'000, [&] { done_big = loop.now(); });
  loop.run();
  EXPECT_EQ(done_small, TimePoint{} + milliseconds(500));
  EXPECT_EQ(done_big, TimePoint{} + seconds(1));
}

TEST(LinkTest, LateArrivalSlowsExistingFlow) {
  EventLoop loop;
  Link link(loop, "l", mbps(8));  // 1 MB/s
  TimePoint done_first{}, done_second{};
  // Flow A: 1 MB at t=0. Flow B: 600 KB at t=0.5s.
  // A alone for 0.5s -> 500 KB left. Then shared 0.5 MB/s each.
  // Both have 500/600... A: 500KB left, B: 600KB. A finishes after
  // another 1.0s (t=1.5s, having 500KB at 0.5MB/s). At t=1.5 B has
  // 600-500=100 KB left at full rate -> t=1.6s.
  link.start_transfer(1'000'000, [&] { done_first = loop.now(); });
  loop.schedule_after(milliseconds(500), [&] {
    link.start_transfer(600'000, [&] { done_second = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(done_first, TimePoint{} + milliseconds(1500));
  EXPECT_EQ(done_second, TimePoint{} + milliseconds(1600));
}

TEST(LinkTest, AbortRemovesFlowAndSpeedsOthers) {
  EventLoop loop;
  Link link(loop, "l", mbps(8));  // 1 MB/s
  TimePoint done{};
  bool aborted_ran = false;
  link.start_transfer(1'000'000, [&] { done = loop.now(); });
  const TransferId victim =
      link.start_transfer(1'000'000, [&] { aborted_ran = true; });
  loop.schedule_after(milliseconds(500), [&] {
    // Each flow has moved 250 KB so far.
    link.abort_transfer(victim);
  });
  loop.run();
  EXPECT_FALSE(aborted_ran);
  // 750 KB left at full rate after t=0.5s -> done at 1.25s.
  EXPECT_EQ(done, TimePoint{} + milliseconds(1250));
}

TEST(LinkTest, AbortSettlesElapsedProgressExactly) {
  // Regression: abort_transfer must settle elapsed progress *before*
  // removing the victim. If it removed the flow first, the survivors
  // would retroactively absorb the victim's share of the elapsed window,
  // finishing early and corrupting the busy-time integral.
  EventLoop loop;
  Link link(loop, "l", mbps(24));  // 3 MB/s
  TimePoint done_a{}, done_b{};
  bool aborted_ran = false;
  // Three 1.25 MB flows started together: each sees 1 MB/s.
  link.start_transfer(1'250'000, [&] { done_a = loop.now(); });
  link.start_transfer(1'250'000, [&] { done_b = loop.now(); });
  const TransferId victim =
      link.start_transfer(1'250'000, [&] { aborted_ran = true; });
  loop.schedule_after(milliseconds(500), [&] {
    // Each flow has moved exactly 500 KB so far.
    link.abort_transfer(victim);
  });
  loop.run();
  EXPECT_FALSE(aborted_ran);
  // Survivors: 750 KB left each at 1.5 MB/s -> 500 ms more -> t = 1 s,
  // exactly. Early completion here means the abort leaked the victim's
  // share of the first 500 ms back to the survivors.
  EXPECT_EQ(done_a, TimePoint{} + seconds(1));
  EXPECT_EQ(done_b, TimePoint{} + seconds(1));
  // The link was busy the whole second; the victim's elapsed progress was
  // settled (consumed), not redistributed, so the integral stays exact.
  EXPECT_NEAR(link.busy_seconds(), 1.0, 1e-9);
  // Only completed flows count as delivered.
  EXPECT_EQ(link.bytes_delivered(), 2'500'000u);
}

TEST(LinkTest, ManyFlowsConserveCapacity) {
  EventLoop loop;
  Link link(loop, "l", mbps(80));  // 10 MB/s
  const int n = 20;
  const ByteCount each = 100'000;
  int completed = 0;
  TimePoint last{};
  for (int i = 0; i < n; ++i) {
    link.start_transfer(each, [&] {
      ++completed;
      last = loop.now();
    });
  }
  loop.run();
  EXPECT_EQ(completed, n);
  // Total 2 MB at 10 MB/s = 200 ms regardless of sharing.
  EXPECT_EQ(last, TimePoint{} + milliseconds(200));
  EXPECT_EQ(link.bytes_delivered(), each * n);
  // Busy-time integral: the link was busy exactly 200 ms.
  EXPECT_NEAR(link.busy_seconds(), 0.2, 1e-9);
}

TEST(LinkTest, SequentialTransfersDoNotOverlap) {
  EventLoop loop;
  Link link(loop, "l", mbps(8));
  TimePoint done2{};
  link.start_transfer(100'000, [&] {
    link.start_transfer(100'000, [&] { done2 = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(done2, TimePoint{} + milliseconds(200));
}

TEST(LinkTest, RejectsNonPositiveCapacity) {
  EventLoop loop;
  EXPECT_THROW(Link(loop, "l", bps(0)), std::invalid_argument);
  EXPECT_THROW(Link(loop, "l", bps(-5)), std::invalid_argument);
}

TEST(LinkTest, TinyResidualsTerminate) {
  // Regression: fractional residual bytes used to reschedule zero-delay
  // completions forever.
  EventLoop loop;
  Link link(loop, "l", mbps(60));
  int completed = 0;
  for (int i = 0; i < 7; ++i) {
    link.start_transfer(333 + static_cast<ByteCount>(i) * 7919,
                        [&] { ++completed; });
  }
  const std::size_t events = loop.run();
  EXPECT_EQ(completed, 7);
  EXPECT_LT(events, 100u);  // termination, not spinning
}

}  // namespace
}  // namespace catalyst::netsim
