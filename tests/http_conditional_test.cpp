#include "http/conditional.h"

#include <gtest/gtest.h>

#include "http/date.h"

namespace catalyst::http {
namespace {

Request conditional_request(std::string_view inm) {
  Request req = Request::get("/r", "h");
  req.headers.set(kIfNoneMatch, inm);
  return req;
}

TEST(ConditionalTest, NoValidatorsMeansNotConditional) {
  const Request req = Request::get("/r", "h");
  EXPECT_EQ(evaluate_conditional(req, Etag{"x", false}, std::nullopt),
            ConditionalOutcome::NotConditional);
}

TEST(ConditionalTest, MatchingEtagIsNotModified) {
  EXPECT_EQ(evaluate_conditional(conditional_request("\"x\""),
                                 Etag{"x", false}, std::nullopt),
            ConditionalOutcome::NotModified);
}

TEST(ConditionalTest, MismatchedEtagIsModified) {
  EXPECT_EQ(evaluate_conditional(conditional_request("\"y\""),
                                 Etag{"x", false}, std::nullopt),
            ConditionalOutcome::Modified);
}

TEST(ConditionalTest, WeakComparisonUsed) {
  // A weak client tag matches a strong current tag with equal value.
  EXPECT_EQ(evaluate_conditional(conditional_request("W/\"x\""),
                                 Etag{"x", false}, std::nullopt),
            ConditionalOutcome::NotModified);
}

TEST(ConditionalTest, WildcardMatches) {
  EXPECT_EQ(evaluate_conditional(conditional_request("*"),
                                 Etag{"anything", false}, std::nullopt),
            ConditionalOutcome::NotModified);
}

TEST(ConditionalTest, MalformedIfNoneMatchTreatedAsModified) {
  EXPECT_EQ(evaluate_conditional(conditional_request("garbage"),
                                 Etag{"x", false}, std::nullopt),
            ConditionalOutcome::Modified);
}

TEST(ConditionalTest, IfModifiedSinceHonored) {
  const TimePoint last_modified = TimePoint{} + hours(10);
  Request req = Request::get("/r", "h");
  req.headers.set(kIfModifiedSince,
                  format_http_date(TimePoint{} + hours(12)));
  EXPECT_EQ(evaluate_conditional(req, Etag{"x", false}, last_modified),
            ConditionalOutcome::NotModified);
  req.headers.set(kIfModifiedSince,
                  format_http_date(TimePoint{} + hours(8)));
  EXPECT_EQ(evaluate_conditional(req, Etag{"x", false}, last_modified),
            ConditionalOutcome::Modified);
}

TEST(ConditionalTest, IfNoneMatchTakesPrecedenceOverIms) {
  Request req = conditional_request("\"stale\"");
  req.headers.set(kIfModifiedSince,
                  format_http_date(TimePoint{} + hours(12)));
  // The ETag mismatches, so the resource counts as modified even though
  // the IMS date alone would say otherwise.
  EXPECT_EQ(evaluate_conditional(req, Etag{"fresh", false},
                                 TimePoint{} + hours(10)),
            ConditionalOutcome::Modified);
}

TEST(MakeNotModifiedTest, CarriesValidatorsAndCacheHeaders) {
  Headers cache_headers;
  cache_headers.set(kCacheControl, "max-age=60");
  cache_headers.set(kLastModified, "Thu, 01 Jan 2026 00:00:00 GMT");
  cache_headers.set("X-Unrelated", "dropped");
  const Response resp =
      make_not_modified(Etag{"v2", false}, cache_headers);
  EXPECT_EQ(resp.status, Status::NotModified);
  EXPECT_EQ(resp.headers.get(kEtagHeader), "\"v2\"");
  EXPECT_EQ(resp.headers.get(kCacheControl), "max-age=60");
  EXPECT_TRUE(resp.headers.contains(kLastModified));
  EXPECT_FALSE(resp.headers.contains("X-Unrelated"));
  EXPECT_TRUE(resp.body.empty());
}

}  // namespace
}  // namespace catalyst::http
