#include "util/url.h"

#include <gtest/gtest.h>

namespace catalyst {
namespace {

TEST(UrlParseTest, AbsoluteUrl) {
  const auto url = Url::parse("https://www.example.com/a/b.css?v=2");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "https");
  EXPECT_EQ(url->host, "www.example.com");
  EXPECT_EQ(url->port, 0);
  EXPECT_EQ(url->path, "/a/b.css");
  EXPECT_EQ(url->query, "v=2");
  EXPECT_TRUE(url->is_absolute());
}

TEST(UrlParseTest, HostCaseFoldedPathPreserved) {
  const auto url = Url::parse("HTTPS://WWW.Example.COM/CaseSensitive");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "https");
  EXPECT_EQ(url->host, "www.example.com");
  EXPECT_EQ(url->path, "/CaseSensitive");
}

TEST(UrlParseTest, ExplicitPort) {
  const auto url = Url::parse("http://host:8080/x");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->port, 8080);
  EXPECT_EQ(url->effective_port(), 8080);
}

TEST(UrlParseTest, DefaultPorts) {
  EXPECT_EQ(Url::parse("https://h/")->effective_port(), 443);
  EXPECT_EQ(Url::parse("http://h/")->effective_port(), 80);
}

TEST(UrlParseTest, BadPortRejected) {
  EXPECT_FALSE(Url::parse("http://host:99999/"));
  EXPECT_FALSE(Url::parse("http://host:abc/"));
}

TEST(UrlParseTest, NoPathMeansRoot) {
  const auto url = Url::parse("https://example.com");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->path, "/");
  EXPECT_EQ(url->path_and_query(), "/");
}

TEST(UrlParseTest, RelativeReference) {
  const auto url = Url::parse("img/pic.webp?x=1");
  ASSERT_TRUE(url);
  EXPECT_FALSE(url->is_absolute());
  EXPECT_EQ(url->path, "img/pic.webp");
  EXPECT_EQ(url->query, "x=1");
}

TEST(UrlParseTest, FragmentsDropped) {
  const auto url = Url::parse("https://h/p#section");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->path, "/p");
}

TEST(UrlParseTest, RejectsWhitespaceAndEmpty) {
  EXPECT_FALSE(Url::parse(""));
  EXPECT_FALSE(Url::parse("https://h/a b"));
}

TEST(RemoveDotSegmentsTest, Rfc3986Examples) {
  EXPECT_EQ(remove_dot_segments("/a/b/c/./../../g"), "/a/g");
  EXPECT_EQ(remove_dot_segments("mid/content=5/../6"), "mid/6");
  EXPECT_EQ(remove_dot_segments("/../x"), "/x");
  EXPECT_EQ(remove_dot_segments("/a/.."), "/");
  EXPECT_EQ(remove_dot_segments("/a/b/"), "/a/b/");
}

TEST(UrlResolveTest, AbsolutePathReference) {
  const Url base = *Url::parse("https://h.com/dir/page.html");
  const Url resolved = base.resolve(*Url::parse("/root.css"));
  EXPECT_EQ(resolved.to_string(), "https://h.com/root.css");
}

TEST(UrlResolveTest, RelativePathReference) {
  const Url base = *Url::parse("https://h.com/dir/page.html");
  EXPECT_EQ(base.resolve(*Url::parse("style.css")).path, "/dir/style.css");
  EXPECT_EQ(base.resolve(*Url::parse("../up.css")).path, "/up.css");
  EXPECT_EQ(base.resolve(*Url::parse("./same.css")).path, "/dir/same.css");
}

TEST(UrlResolveTest, AbsoluteReferenceWins) {
  const Url base = *Url::parse("https://h.com/dir/page.html");
  const Url resolved = base.resolve(*Url::parse("https://other.com/x"));
  EXPECT_EQ(resolved.host, "other.com");
}

TEST(UrlResolveTest, NetworkPathReference) {
  const Url base = *Url::parse("https://h.com/a");
  const Url resolved = base.resolve(*Url::parse("//cdn.com/lib.js"));
  EXPECT_EQ(resolved.scheme, "https");  // inherited
  EXPECT_EQ(resolved.host, "cdn.com");
  EXPECT_EQ(resolved.path, "/lib.js");
}

TEST(UrlResolveTest, EmptyPathKeepsBase) {
  const Url base = *Url::parse("https://h.com/a/b?q=1");
  const Url resolved = base.resolve(*Url::parse("?q=2"));
  EXPECT_EQ(resolved.path, "/a/b");
  EXPECT_EQ(resolved.query, "q=2");
}

TEST(UrlOriginTest, OmitsDefaultPort) {
  EXPECT_EQ(Url::parse("https://h.com:443/x")->origin(), "https://h.com");
  EXPECT_EQ(Url::parse("https://h.com:8443/x")->origin(),
            "https://h.com:8443");
}

TEST(UrlOriginTest, SameOrigin) {
  const Url a = *Url::parse("https://h.com/x");
  const Url b = *Url::parse("https://h.com:443/y?z");
  const Url c = *Url::parse("http://h.com/x");
  const Url d = *Url::parse("https://other.com/x");
  EXPECT_TRUE(a.same_origin(b));
  EXPECT_FALSE(a.same_origin(c));  // scheme differs
  EXPECT_FALSE(a.same_origin(d));  // host differs
}

TEST(UrlToStringTest, RoundTrips) {
  for (const char* text :
       {"https://h.com/a/b.css?v=2", "https://h.com/",
        "http://h.com:8080/x"}) {
    const auto url = Url::parse(text);
    ASSERT_TRUE(url) << text;
    EXPECT_EQ(url->to_string(), text);
  }
}

}  // namespace
}  // namespace catalyst
