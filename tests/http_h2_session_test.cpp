#include "http/h2/session.h"

#include <gtest/gtest.h>

namespace catalyst::http::h2 {
namespace {

Request sample_request() {
  Request req = Request::get("/a.css?v=2", "example.com");
  req.headers.add("Cookie", "sid=u1");
  req.headers.add(kIfNoneMatch, "\"abc\"");
  return req;
}

Response sample_response(std::size_t body_size) {
  Response resp = Response::make(Status::Ok);
  resp.headers.set(kContentType, "text/css");
  resp.headers.set(kEtagHeader, "\"abc\"");
  resp.body = std::string(body_size, 'q');
  return resp;
}

TEST(H2SessionTest, RequestRoundTrip) {
  const Request original = sample_request();
  const auto frames = MessageCodec::encode_request(original, 1);
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.front().type, FrameType::Headers);
  EXPECT_TRUE(frames.front().end_stream());  // no body
  const auto decoded = MessageCodec::decode_request(frames);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->method, Method::Get);
  EXPECT_EQ(decoded->target, "/a.css?v=2");
  EXPECT_EQ(decoded->headers.get(kHost), "example.com");
  EXPECT_EQ(decoded->headers.get("cookie"), "sid=u1");
  EXPECT_EQ(decoded->headers.get("if-none-match"), "\"abc\"");
}

TEST(H2SessionTest, ResponseRoundTripWithBody) {
  const Response original = sample_response(1000);
  const auto frames = MessageCodec::encode_response(original, 1);
  ASSERT_EQ(frames.size(), 2u);  // HEADERS + one DATA
  EXPECT_FALSE(frames[0].end_stream());
  EXPECT_TRUE(frames[1].end_stream());
  const auto decoded = MessageCodec::decode_response(frames);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->status, Status::Ok);
  EXPECT_EQ(decoded->body, original.body);
  EXPECT_EQ(decoded->headers.get("etag"), "\"abc\"");
}

TEST(H2SessionTest, LargeBodySplitsAtMaxFrameSize) {
  const Response original =
      sample_response(MessageCodec::kMaxDataFrame * 2 + 100);
  const auto frames = MessageCodec::encode_response(original, 3);
  ASSERT_EQ(frames.size(), 4u);  // HEADERS + 3 DATA
  EXPECT_EQ(frames[1].payload.size(), MessageCodec::kMaxDataFrame);
  EXPECT_EQ(frames[3].payload.size(), 100u);
  EXPECT_TRUE(frames[3].end_stream());
  const auto decoded = MessageCodec::decode_response(frames);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->body.size(), original.body.size());
}

TEST(H2SessionTest, PushSequence) {
  const Response pushed = sample_response(256);
  const auto frames =
      MessageCodec::encode_push("/a.css", pushed, /*assoc=*/1,
                                /*promised=*/2);
  ASSERT_GE(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::PushPromise);
  EXPECT_EQ(frames[0].stream_id, 1u);
  const auto promise = decode_push_promise_payload(frames[0].payload);
  ASSERT_TRUE(promise);
  EXPECT_EQ(promise->first, 2u);
  // Remaining frames carry the response on the promised stream.
  std::vector<Frame> response_frames(frames.begin() + 1, frames.end());
  EXPECT_EQ(response_frames[0].stream_id, 2u);
  const auto decoded = MessageCodec::decode_response(response_frames);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->body.size(), 256u);
}

TEST(H2SessionTest, TransportPushCostModelIsConservative) {
  // The netsim transport charges a pushed response as
  //   (9 + 4 + 32 + target.size()) + response.wire_size()
  // where wire_size() is the h1 serialization. Framing must not exceed
  // that model by more than a few percent (h2 framing is cheaper than the
  // h1 head for realistic messages because of the compact header block).
  const std::string target = "/assets/style7.css";
  Response resp = sample_response(20'000);
  resp.finalize(TimePoint{});
  const auto frames = MessageCodec::encode_push(target, resp, 1, 2);
  const std::size_t framed = MessageCodec::wire_size(frames);
  const std::size_t modeled = 9 + 4 + 32 + target.size() + resp.wire_size();
  EXPECT_LE(framed, modeled + modeled / 20);
  EXPECT_GE(framed, modeled - modeled / 10);
}

TEST(H2SessionTest, DecodeRejectsMalformedSequences) {
  EXPECT_FALSE(MessageCodec::decode_response({}));
  // DATA before HEADERS.
  Frame data;
  data.type = FrameType::Data;
  data.stream_id = 1;
  EXPECT_FALSE(MessageCodec::decode_response({data}));
  // Missing :status.
  Frame headers;
  headers.type = FrameType::Headers;
  headers.stream_id = 1;
  headers.payload = encode_header_block({{"x", "y"}});
  EXPECT_FALSE(MessageCodec::decode_response({headers}));
  // Stream-id mismatch between HEADERS and DATA.
  Frame good_headers;
  good_headers.type = FrameType::Headers;
  good_headers.stream_id = 1;
  good_headers.payload = encode_header_block({{":status", "200"}});
  Frame wrong_stream = data;
  wrong_stream.stream_id = 3;
  EXPECT_FALSE(
      MessageCodec::decode_response({good_headers, wrong_stream}));
  // Missing :method / :path on requests.
  Frame req_headers;
  req_headers.type = FrameType::Headers;
  req_headers.stream_id = 1;
  req_headers.payload = encode_header_block({{":method", "GET"}});
  EXPECT_FALSE(MessageCodec::decode_request({req_headers}));
}

TEST(H2SessionTest, FramesSurviveWireSerialization) {
  const auto frames =
      MessageCodec::encode_response(sample_response(5000), 5);
  std::string wire;
  for (const Frame& f : frames) wire += serialize_frame(f);
  FrameReader reader;
  reader.feed(wire);
  std::vector<Frame> parsed;
  while (auto f = reader.next()) parsed.push_back(std::move(*f));
  ASSERT_EQ(parsed.size(), frames.size());
  const auto decoded = MessageCodec::decode_response(parsed);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->body.size(), 5000u);
}

}  // namespace
}  // namespace catalyst::http::h2
