#include "http/mime.h"

#include <gtest/gtest.h>

namespace catalyst::http {
namespace {

TEST(MimeTest, ClassifyMimeStripsParameters) {
  EXPECT_EQ(classify_mime("text/html; charset=utf-8"), ResourceClass::Html);
  EXPECT_EQ(classify_mime("text/css"), ResourceClass::Css);
  EXPECT_EQ(classify_mime("application/javascript"),
            ResourceClass::Script);
  EXPECT_EQ(classify_mime("text/javascript"), ResourceClass::Script);
  EXPECT_EQ(classify_mime("image/png"), ResourceClass::Image);
  EXPECT_EQ(classify_mime("font/woff2"), ResourceClass::Font);
  EXPECT_EQ(classify_mime("application/json"), ResourceClass::Json);
  EXPECT_EQ(classify_mime("application/wasm"), ResourceClass::Other);
}

TEST(MimeTest, ClassifyPathByExtension) {
  EXPECT_EQ(classify_path("/index.html"), ResourceClass::Html);
  EXPECT_EQ(classify_path("/"), ResourceClass::Html);
  EXPECT_EQ(classify_path("/dir/"), ResourceClass::Html);
  EXPECT_EQ(classify_path("/a.css"), ResourceClass::Css);
  EXPECT_EQ(classify_path("/app.mjs"), ResourceClass::Script);
  EXPECT_EQ(classify_path("/pic.webp"), ResourceClass::Image);
  EXPECT_EQ(classify_path("/f.woff2"), ResourceClass::Font);
  EXPECT_EQ(classify_path("/api/data.json"), ResourceClass::Json);
  EXPECT_EQ(classify_path("/blob.bin"), ResourceClass::Other);
}

TEST(MimeTest, ClassifyPathIgnoresQuery) {
  EXPECT_EQ(classify_path("/a.css?v=123"), ResourceClass::Css);
  EXPECT_EQ(classify_path("/pic.jpg?size=large"), ResourceClass::Image);
}

TEST(MimeTest, MimeTypeRoundTripsThroughClassify) {
  for (const ResourceClass rc :
       {ResourceClass::Html, ResourceClass::Css, ResourceClass::Script,
        ResourceClass::Image, ResourceClass::Font, ResourceClass::Json}) {
    EXPECT_EQ(classify_mime(mime_type(rc)), rc);
  }
}

TEST(MimeTest, Labels) {
  EXPECT_EQ(class_label(ResourceClass::Script), "js");
  EXPECT_EQ(class_label(ResourceClass::Image), "img");
}

}  // namespace
}  // namespace catalyst::http
