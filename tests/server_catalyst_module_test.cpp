#include "server/catalyst_module.h"

#include <gtest/gtest.h>

#include "html/parser.h"
#include "server/static_handler.h"

namespace catalyst::server {
namespace {

/// index.html -> a.css (+ hero.webp via HTML), a.css -> f.woff2 + bg.webp
/// and @imports sub.css; app.js is linked from HTML; lazy.json only ever
/// fetched by JS (not statically discoverable).
std::unique_ptr<Site> make_site() {
  auto site = std::make_unique<Site>("example.com");
  auto add = [&](const std::string& path, http::ResourceClass rc,
                 std::string content) {
    site->add_resource(std::make_unique<Resource>(
        path, rc, content.size(),
        [content = std::move(content)](std::uint64_t version) {
          return content + "<!-- v" + std::to_string(version) + " -->";
        },
        ChangeProcess::never(), http::CacheControl::revalidate_always()));
  };
  add("/index.html", http::ResourceClass::Html,
      "<html><head><link rel=\"stylesheet\" href=\"/a.css\"></head>"
      "<body><script src=\"/app.js\"></script>"
      "<img src=\"/hero.webp\">"
      "<img src=\"https://cdn.other.com/x.png\">"
      "</body></html>");
  add("/a.css", http::ResourceClass::Css,
      "@import \"/sub.css\";\n"
      "@font-face { src: url(\"/f.woff2\") }\n"
      ".bg { background: url(\"/bg.webp\") }\n");
  add("/sub.css", http::ResourceClass::Css, ".x { color: red }\n");
  add("/app.js", http::ResourceClass::Script,
      "/* @fetch /lazy.json */\n");
  add("/hero.webp", http::ResourceClass::Image, "hero");
  add("/bg.webp", http::ResourceClass::Image, "bg");
  add("/f.woff2", http::ResourceClass::Font, "font");
  add("/lazy.json", http::ResourceClass::Json, "{}");
  return site;
}

TEST(ResolveSameOriginTest, Cases) {
  EXPECT_EQ(resolve_same_origin("h.com", "/dir/page.html", "/abs.css"),
            "/abs.css");
  EXPECT_EQ(resolve_same_origin("h.com", "/dir/page.html", "rel.css"),
            "/dir/rel.css");
  EXPECT_EQ(resolve_same_origin("h.com", "/p", "https://h.com/x.css"),
            "/x.css");
  EXPECT_EQ(resolve_same_origin("h.com", "/p", "https://other.com/x.css"),
            "");
  EXPECT_EQ(resolve_same_origin("h.com", "/p", "//cdn.com/x.css"), "");
  EXPECT_EQ(resolve_same_origin("h.com", "/p", ""), "");
}

class CatalystModuleFixture : public ::testing::Test {
 protected:
  CatalystModuleFixture() : site_(make_site()) {}

  CatalystModule module(CatalystConfig config = {}) {
    return CatalystModule(*site_, config);
  }

  std::unique_ptr<Site> site_;
};

TEST_F(CatalystModuleFixture, MapCoversStaticClosureOnly) {
  CatalystModule mod = module();
  const Resource* html = site_->find("/index.html");
  const auto map = mod.build_map(*html, TimePoint{}, {});
  // HTML links + CSS closure, same-origin only; JS-fetched lazy.json and
  // the cross-origin image are absent.
  EXPECT_TRUE(map.find("/a.css"));
  EXPECT_TRUE(map.find("/app.js"));
  EXPECT_TRUE(map.find("/hero.webp"));
  EXPECT_TRUE(map.find("/sub.css"));
  EXPECT_TRUE(map.find("/f.woff2"));
  EXPECT_TRUE(map.find("/bg.webp"));
  EXPECT_FALSE(map.find("/lazy.json"));
  EXPECT_FALSE(map.find("/index.html"));
  EXPECT_EQ(map.size(), 6u);
}

TEST_F(CatalystModuleFixture, MapEtagsMatchCurrentResourceEtags) {
  CatalystModule mod = module();
  const auto map =
      mod.build_map(*site_->find("/index.html"), TimePoint{}, {});
  for (const auto& [path, etag] : map.entries()) {
    const Resource* r = site_->find(path);
    ASSERT_NE(r, nullptr) << path;
    EXPECT_TRUE(etag.weak_equals(r->etag_at(TimePoint{}))) << path;
  }
}

TEST_F(CatalystModuleFixture, CssClosureToggle) {
  CatalystConfig config;
  config.css_closure = false;
  CatalystModule mod = module(config);
  const auto map =
      mod.build_map(*site_->find("/index.html"), TimePoint{}, {});
  EXPECT_TRUE(map.find("/a.css"));
  EXPECT_FALSE(map.find("/f.woff2"));
  EXPECT_FALSE(map.find("/sub.css"));
}

TEST_F(CatalystModuleFixture, SessionLearningMergesJsResources) {
  CatalystConfig config;
  config.session_learning = true;
  CatalystModule mod = module(config);
  const auto map = mod.build_map(*site_->find("/index.html"), TimePoint{},
                                 {"/lazy.json", "/unknown.bin",
                                  "https://other.com/x.png"});
  EXPECT_TRUE(map.find("/lazy.json"));
  EXPECT_FALSE(map.find("/unknown.bin"));     // not a real resource
  EXPECT_EQ(map.size(), 7u);
}

TEST_F(CatalystModuleFixture, SessionLearningOffIgnoresLearnedUrls) {
  CatalystModule mod = module();
  const auto map = mod.build_map(*site_->find("/index.html"), TimePoint{},
                                 {"/lazy.json"});
  EXPECT_FALSE(map.find("/lazy.json"));
}

TEST_F(CatalystModuleFixture, DecorateHtmlAddsHeaderAndSwSnippet) {
  CatalystModule mod = module();
  StaticHandler handler(*site_);
  http::Response resp = handler.handle(
      http::Request::get("/index.html", "example.com"), TimePoint{});
  const ByteCount before = resp.body.size();
  const Duration cost = mod.decorate_html(
      http::Request::get("/index.html", "example.com"), resp,
      *site_->find("/index.html"), TimePoint{}, {});
  EXPECT_GT(cost, Duration::zero());
  ASSERT_TRUE(resp.headers.contains(http::kXEtagConfig));
  const auto map = http::EtagConfig::parse(
      *resp.headers.get(http::kXEtagConfig));
  ASSERT_TRUE(map);
  EXPECT_EQ(map->size(), 6u);
  // SW registration injected before </body>, Content-Length refreshed.
  EXPECT_GT(resp.body.size(), before);
  EXPECT_NE(resp.body.find("serviceWorker"), std::string::npos);
  EXPECT_NE(resp.body.find(CatalystModule::kSwPath), std::string::npos);
  EXPECT_LT(resp.body.find("serviceWorker"), resp.body.rfind("</body>"));
  EXPECT_EQ(resp.headers.get(http::kContentLength),
            std::to_string(resp.body.size()));
}

TEST_F(CatalystModuleFixture, Decorate304CarriesMapWithoutBody) {
  CatalystModule mod = module();
  http::Response resp = http::Response::make(http::Status::NotModified);
  mod.decorate_html(http::Request::get("/index.html", "example.com"), resp,
                    *site_->find("/index.html"), TimePoint{}, {});
  EXPECT_TRUE(resp.headers.contains(http::kXEtagConfig));
  EXPECT_TRUE(resp.body.empty());
}

TEST_F(CatalystModuleFixture, ScanMemoizationAvoidsRescans) {
  CatalystModule mod = module();
  const Resource* html = site_->find("/index.html");
  mod.build_map(*html, TimePoint{}, {});
  const auto scans_after_first = mod.stats().scans_performed;
  mod.build_map(*html, TimePoint{}, {});
  EXPECT_EQ(mod.stats().scans_performed, scans_after_first);
  EXPECT_GT(mod.stats().scan_memo_hits, 0u);
}

TEST_F(CatalystModuleFixture, MemoizationOffRescansEveryServe) {
  CatalystConfig config;
  config.memoize_scans = false;
  CatalystModule mod = module(config);
  const Resource* html = site_->find("/index.html");
  mod.build_map(*html, TimePoint{}, {});
  const auto first = mod.stats().scans_performed;
  mod.build_map(*html, TimePoint{}, {});
  EXPECT_GT(mod.stats().scans_performed, first);
}

TEST_F(CatalystModuleFixture, SwScriptServedWithRevalidationPolicy) {
  CatalystModule mod = module();
  const auto resp = mod.serve_sw_script(TimePoint{});
  EXPECT_EQ(resp.status, http::Status::Ok);
  EXPECT_EQ(resp.body.size(), CatalystConfig{}.sw_script_size);
  EXPECT_TRUE(resp.etag());
  EXPECT_TRUE(resp.cache_control().no_cache);
}

}  // namespace
}  // namespace catalyst::server
