// Fault-injection layer: decisions must be deterministic pure functions
// of (fault_seed, stream, ordinal), rates must partition correctly, and
// the transport must express each fault with the documented semantics —
// detectable error for drops, silence for stalls and blackholes, a 503
// that never reaches the origin handler for server errors.
#include "netsim/faults.h"

#include <gtest/gtest.h>

#include "netsim/transport.h"

namespace catalyst::netsim {
namespace {

TEST(FaultPlanTest, ZeroSpecIsInert) {
  FaultSpec spec;
  EXPECT_FALSE(spec.any());
  FaultPlan plan(spec);
  for (int i = 0; i < 100; ++i) {
    const FaultDecision d = plan.next_request();
    EXPECT_FALSE(d.drop_mid_stream);
    EXPECT_FALSE(d.stall);
    EXPECT_FALSE(d.server_error);
    EXPECT_EQ(d.extra_latency, Duration::zero());
    EXPECT_EQ(d.progress_fraction, 1.0);
  }
  EXPECT_EQ(plan.requests_decided(), 100u);
  EXPECT_FALSE(plan.origin_dark(TimePoint{} + hours(3)));
}

FaultSpec mixed_spec() {
  FaultSpec spec;
  spec.loss_rate = 0.3;
  spec.stall_rate = 0.2;
  spec.server_error_rate = 0.1;
  spec.latency_spike_rate = 0.15;
  spec.fault_seed = 77;
  spec.stream = 5;
  return spec;
}

bool same_decision(const FaultDecision& a, const FaultDecision& b) {
  return a.drop_mid_stream == b.drop_mid_stream && a.stall == b.stall &&
         a.server_error == b.server_error &&
         a.extra_latency == b.extra_latency &&
         a.progress_fraction == b.progress_fraction;
}

TEST(FaultPlanTest, DecisionsArePureFunctionsOfKeys) {
  // Two independent plans over the same spec must agree request for
  // request — this is what makes faulty fleet runs bit-identical across
  // thread counts and repeat runs.
  FaultPlan a(mixed_spec());
  FaultPlan b(mixed_spec());
  for (int i = 0; i < 512; ++i) {
    EXPECT_TRUE(same_decision(a.next_request(), b.next_request())) << i;
  }
}

TEST(FaultPlanTest, StreamsDecorrelate) {
  FaultSpec spec = mixed_spec();
  FaultPlan a(spec);
  spec.stream = 6;
  FaultPlan b(spec);
  bool differed = false;
  for (int i = 0; i < 256 && !differed; ++i) {
    differed = !same_decision(a.next_request(), b.next_request());
  }
  EXPECT_TRUE(differed);
}

TEST(FaultPlanTest, RatesPartitionOneUniform) {
  FaultPlan plan(mixed_spec());
  const int n = 20'000;
  int drops = 0, stalls = 0, errors = 0, spikes = 0;
  for (int i = 0; i < n; ++i) {
    const FaultDecision d = plan.next_request();
    // The primary faults are mutually exclusive by construction.
    EXPECT_LE(int(d.drop_mid_stream) + int(d.stall) + int(d.server_error), 1);
    drops += d.drop_mid_stream;
    stalls += d.stall;
    errors += d.server_error;
    spikes += d.extra_latency > Duration::zero();
    EXPECT_GE(d.progress_fraction, 0.05);
    EXPECT_LE(d.progress_fraction, 0.95);
  }
  EXPECT_NEAR(drops / double(n), 0.3, 0.02);
  EXPECT_NEAR(stalls / double(n), 0.2, 0.02);
  EXPECT_NEAR(errors / double(n), 0.1, 0.02);
  EXPECT_NEAR(spikes / double(n), 0.15, 0.02);
}

TEST(FaultPlanTest, OutageWindowsCoverTheConfiguredFraction) {
  FaultSpec spec;
  spec.outage_fraction = 0.25;
  spec.outage_period = hours(1);
  FaultPlan plan(spec);
  FaultPlan twin(spec);
  int dark = 0;
  const int samples = 4 * 3600;  // four periods at 1 s resolution
  for (int s = 0; s < samples; ++s) {
    const TimePoint t = TimePoint{} + seconds(s);
    const bool d = plan.origin_dark(t);
    // Pure in (spec, now): every plan of the seed sees the same schedule.
    EXPECT_EQ(d, twin.origin_dark(t));
    dark += d;
  }
  EXPECT_NEAR(dark / double(samples), 0.25, 0.01);
}

/// Transport fixture with a live fault plan wired into the network.
class FaultTransportFixture : public ::testing::Test {
 protected:
  FaultTransportFixture() : net_(loop_) {
    HostSpec client;
    client.downlink = mbps(80);
    client.uplink = mbps(80);
    net_.add_host("client", client);
    net_.add_host("origin");
    net_.set_rtt("client", "origin", milliseconds(40));
    net_.host("origin").set_handler(
        [this](const http::Request&, auto respond) {
          ++handler_calls_;
          ServerReply reply;
          reply.response = http::Response::make(http::Status::Ok);
          reply.response.body = std::string(50'000, 'x');
          reply.response.finalize(loop_.now());
          respond(std::move(reply));
        });
  }

  void use_plan(const FaultSpec& spec) {
    plan_ = std::make_unique<FaultPlan>(spec);
    net_.set_fault_plan(plan_.get());
  }

  EventLoop loop_;
  Network net_;
  std::unique_ptr<FaultPlan> plan_;
  int handler_calls_ = 0;
};

TEST_F(FaultTransportFixture, ServerErrorShortCircuitsHandler) {
  FaultSpec spec;
  spec.server_error_rate = 1.0;
  use_plan(spec);
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  http::Status got{};
  conn.send_request(http::Request::get("/", "origin"),
                    [&](http::Response resp) { got = resp.status; });
  loop_.run();
  // The 503 comes from the load balancer; the application never runs.
  EXPECT_EQ(got, http::Status::ServiceUnavailable);
  EXPECT_EQ(handler_calls_, 0);
  EXPECT_FALSE(conn.broken());
}

TEST_F(FaultTransportFixture, MidStreamDropErrorsAndBreaksH1) {
  FaultSpec spec;
  spec.loss_rate = 1.0;
  use_plan(spec);
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  bool got_response = false, got_error = false;
  conn.send_request(
      http::Request::get("/", "origin"),
      [&](http::Response) { got_response = true; }, nullptr, nullptr,
      nullptr, [&] { got_error = true; });
  loop_.run();
  EXPECT_FALSE(got_response);
  EXPECT_TRUE(got_error);
  // H1 framing broke mid-message: the whole connection is unusable.
  EXPECT_TRUE(conn.broken());
  EXPECT_EQ(conn.requests_completed(), 0);
  // A fraction of the doomed response's bytes still crossed the wire.
  EXPECT_GT(conn.bytes_received(), 0u);
  EXPECT_LT(conn.bytes_received(), 50'000u);
}

TEST_F(FaultTransportFixture, MidStreamDropOnH2LosesOnlyTheStream) {
  FaultSpec spec;
  spec.loss_rate = 1.0;
  use_plan(spec);
  Connection conn(net_, "client", "origin", false, Protocol::H2);
  bool got_error = false;
  conn.send_request(
      http::Request::get("/", "origin"), [](http::Response) {}, nullptr,
      nullptr, nullptr, [&] { got_error = true; });
  loop_.run();
  EXPECT_TRUE(got_error);
  // RST_STREAM, not a connection teardown.
  EXPECT_FALSE(conn.broken());
}

TEST_F(FaultTransportFixture, StallDeliversNothingAndRaisesNoError) {
  FaultSpec spec;
  spec.stall_rate = 1.0;
  use_plan(spec);
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  bool got_response = false, got_error = false;
  conn.send_request(
      http::Request::get("/", "origin"),
      [&](http::Response) { got_response = true; }, nullptr, nullptr,
      nullptr, [&] { got_error = true; });
  loop_.run();  // drains — a stall schedules nothing further
  EXPECT_FALSE(got_response);
  EXPECT_FALSE(got_error);
  // The exchange is wedged in flight; only a client deadline recovers it.
  EXPECT_EQ(conn.inflight(), 1u);
  EXPECT_FALSE(conn.broken());
}

TEST_F(FaultTransportFixture, DarkOriginBlackholesAtArrival) {
  FaultSpec spec;
  spec.outage_fraction = 1.0;  // dark for the whole period
  use_plan(spec);
  Connection conn(net_, "client", "origin", false, Protocol::H1);
  bool got_response = false, got_error = false;
  conn.send_request(
      http::Request::get("/", "origin"),
      [&](http::Response) { got_response = true; }, nullptr, nullptr,
      nullptr, [&] { got_error = true; });
  loop_.run();
  EXPECT_FALSE(got_response);
  EXPECT_FALSE(got_error);
  EXPECT_EQ(handler_calls_, 0);
  EXPECT_EQ(plan_->blackholed(), 1u);
}

TEST_F(FaultTransportFixture, LatencySpikeShiftsResponseExactly) {
  TimePoint clean_done{};
  {
    Connection conn(net_, "client", "origin", false, Protocol::H1);
    conn.send_request(http::Request::get("/", "origin"),
                      [&](http::Response) { clean_done = loop_.now(); });
    loop_.run();
  }
  const Duration clean = clean_done - TimePoint{};

  EventLoop loop2;
  Network net2(loop2);
  HostSpec client;
  client.downlink = mbps(80);
  client.uplink = mbps(80);
  net2.add_host("client", client);
  net2.add_host("origin");
  net2.set_rtt("client", "origin", milliseconds(40));
  net2.host("origin").set_handler([&](const http::Request&, auto respond) {
    ServerReply reply;
    reply.response = http::Response::make(http::Status::Ok);
    reply.response.body = std::string(50'000, 'x');
    reply.response.finalize(loop2.now());
    respond(std::move(reply));
  });
  FaultSpec spec;
  spec.latency_spike_rate = 1.0;
  spec.latency_spike = milliseconds(400);
  FaultPlan plan(spec);
  net2.set_fault_plan(&plan);
  Connection conn(net2, "client", "origin", false, Protocol::H1);
  TimePoint spiked_done{};
  conn.send_request(http::Request::get("/", "origin"),
                    [&](http::Response) { spiked_done = loop2.now(); });
  loop2.run();
  // The spike delays the response transfer start and nothing else.
  EXPECT_EQ((spiked_done - TimePoint{}) - clean, milliseconds(400));
}

}  // namespace
}  // namespace catalyst::netsim
