#include "http/date.h"

#include <gtest/gtest.h>

namespace catalyst::http {
namespace {

TEST(HttpDateTest, EpochFormatsToKnownInstant) {
  // Simulation epoch = 2026-01-01 00:00:00 GMT, a Thursday.
  EXPECT_EQ(format_http_date(TimePoint{}), "Thu, 01 Jan 2026 00:00:00 GMT");
}

TEST(HttpDateTest, OffsetsFormat) {
  EXPECT_EQ(format_http_date(TimePoint{} + days(1) + hours(13) +
                             minutes(59) + seconds(7)),
            "Fri, 02 Jan 2026 13:59:07 GMT");
  // End of January -> February.
  EXPECT_EQ(format_http_date(TimePoint{} + days(31)),
            "Sun, 01 Feb 2026 00:00:00 GMT");
}

TEST(HttpDateTest, LeapYearHandling) {
  // 2028 is a leap year: day 59 of 2028 is Feb 29.
  const TimePoint t =
      TimePoint{} + days(365 + 365 + 31 + 28);  // 2026, 2027, Jan28+Feb28
  EXPECT_EQ(format_http_date(t), "Tue, 29 Feb 2028 00:00:00 GMT");
}

TEST(HttpDateTest, RoundTrip) {
  for (const Duration offset :
       {Duration::zero(), seconds(1), hours(7) + minutes(31),
        days(100) + seconds(59), days(3650)}) {
    const TimePoint t = TimePoint{} + offset;
    const auto parsed = parse_http_date(format_http_date(t));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, t);
  }
}

TEST(HttpDateTest, ParseKnownString) {
  const auto t = parse_http_date("Thu, 01 Jan 2026 00:00:01 GMT");
  ASSERT_TRUE(t);
  EXPECT_EQ(*t, TimePoint{} + seconds(1));
}

TEST(HttpDateTest, ParsePre2026DatesAreNegativeSimTime) {
  const auto t = parse_http_date("Wed, 31 Dec 2025 23:59:59 GMT");
  ASSERT_TRUE(t);
  EXPECT_EQ(*t, TimePoint{} - seconds(1));
}

TEST(HttpDateTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_http_date(""));
  EXPECT_FALSE(parse_http_date("not a date"));
  EXPECT_FALSE(parse_http_date("Thu, 01 Jan 2026 00:00:00 UTC"));
  EXPECT_FALSE(parse_http_date("Thu, 32 Jan 2026 00:00:00 GMT"));
  EXPECT_FALSE(parse_http_date("Thu, 01 Foo 2026 00:00:00 GMT"));
  EXPECT_FALSE(parse_http_date("Thu, 30 Feb 2026 00:00:00 GMT"));
  // Wrong separators.
  EXPECT_FALSE(parse_http_date("Thu, 01 Jan 2026 00-00-00 GMT"));
}

}  // namespace
}  // namespace catalyst::http
