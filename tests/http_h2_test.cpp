#include "http/h2/frame.h"
#include "http/h2/stream.h"

#include <gtest/gtest.h>

namespace catalyst::http::h2 {
namespace {

TEST(FrameTest, SerializeParseRoundTrip) {
  Frame original;
  original.type = FrameType::Headers;
  original.flags = kFlagEndHeaders | kFlagEndStream;
  original.stream_id = 5;
  original.payload = "header-block-bytes";

  FrameReader reader;
  reader.feed(serialize_frame(original));
  const auto parsed = reader.next();
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->type, FrameType::Headers);
  EXPECT_EQ(parsed->flags, original.flags);
  EXPECT_EQ(parsed->stream_id, 5u);
  EXPECT_EQ(parsed->payload, original.payload);
  EXPECT_TRUE(parsed->end_stream());
  EXPECT_TRUE(parsed->end_headers());
  EXPECT_FALSE(reader.next());
}

TEST(FrameTest, WireSizeIsNinePlusPayload) {
  Frame f;
  f.payload = "abc";
  EXPECT_EQ(f.wire_size(), 12u);
  EXPECT_EQ(serialize_frame(f).size(), 12u);
}

TEST(FrameTest, IncrementalFeeding) {
  Frame f;
  f.type = FrameType::Data;
  f.stream_id = 3;
  f.payload = std::string(100, 'x');
  const std::string wire = serialize_frame(f);
  FrameReader reader;
  for (std::size_t i = 0; i < wire.size(); i += 7) {
    reader.feed(wire.substr(i, 7));
  }
  const auto parsed = reader.next();
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->payload.size(), 100u);
}

TEST(FrameTest, MultipleFramesInOneBuffer) {
  Frame a, b;
  a.type = FrameType::Settings;
  b.type = FrameType::Ping;
  b.flags = kFlagAck;
  FrameReader reader;
  reader.feed(serialize_frame(a) + serialize_frame(b));
  EXPECT_EQ(reader.next()->type, FrameType::Settings);
  EXPECT_EQ(reader.next()->type, FrameType::Ping);
  EXPECT_FALSE(reader.next());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameTest, ReservedBitMaskedOffStreamId) {
  Frame f;
  f.stream_id = 0xFFFFFFFFu;
  FrameReader reader;
  reader.feed(serialize_frame(f));
  EXPECT_EQ(reader.next()->stream_id, 0x7FFFFFFFu);
}

TEST(PushPromiseTest, PayloadRoundTrip) {
  const std::string block = encode_header_block(
      {{":method", "GET"}, {":path", "/a.css"}});
  const std::string payload = encode_push_promise_payload(4, block);
  const auto decoded = decode_push_promise_payload(payload);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->first, 4u);
  const auto fields = decode_header_block(decoded->second);
  ASSERT_TRUE(fields);
  ASSERT_EQ(fields->size(), 2u);
  EXPECT_EQ((*fields)[1].second, "/a.css");
}

TEST(PushPromiseTest, TruncatedPayloadRejected) {
  EXPECT_FALSE(decode_push_promise_payload("ab"));
}

TEST(HeaderBlockTest, TruncatedBlockRejected) {
  const std::string block = encode_header_block({{"name", "value"}});
  EXPECT_FALSE(decode_header_block(block.substr(0, block.size() - 1)));
  EXPECT_FALSE(decode_header_block(std::string_view("\x00", 1)));
}

TEST(HeaderBlockTest, EmptyBlock) {
  const auto fields = decode_header_block("");
  ASSERT_TRUE(fields);
  EXPECT_TRUE(fields->empty());
}

TEST(StreamTableTest, ClientStreamsAreOdd) {
  StreamTable table(/*is_client=*/true);
  EXPECT_EQ(table.open_next(), 1u);
  EXPECT_EQ(table.open_next(), 3u);
  EXPECT_EQ(table.state(1), StreamState::Open);
}

TEST(StreamTableTest, ServerStreamsAreEven) {
  StreamTable table(/*is_client=*/false);
  EXPECT_EQ(table.open_next(), 2u);
  EXPECT_EQ(table.open_next(), 4u);
}

TEST(StreamTableTest, PushReservationRules) {
  StreamTable table(/*is_client=*/true);
  EXPECT_TRUE(table.reserve_pushed(2));
  EXPECT_EQ(table.state(2), StreamState::ReservedRemote);
  EXPECT_FALSE(table.reserve_pushed(2));  // ids must grow
  EXPECT_FALSE(table.reserve_pushed(3));  // odd id cannot be pushed
  EXPECT_FALSE(table.reserve_pushed(0));
  EXPECT_TRUE(table.reserve_pushed(4));
}

TEST(StreamTableTest, LifecycleTransitions) {
  StreamTable table(/*is_client=*/true);
  const auto id = table.open_next();
  table.half_close_local(id);
  EXPECT_EQ(table.state(id), StreamState::HalfClosedLocal);
  table.half_close_remote(id);
  EXPECT_EQ(table.state(id), StreamState::Closed);

  table.reserve_pushed(2);
  table.half_close_remote(2);  // pushed response completed
  EXPECT_EQ(table.state(2), StreamState::Closed);
  EXPECT_EQ(table.state(999), StreamState::Idle);
}

TEST(StreamTableTest, OpenCount) {
  StreamTable table(/*is_client=*/true);
  const auto a = table.open_next();
  table.open_next();
  table.reserve_pushed(2);
  EXPECT_EQ(table.open_count(), 3u);
  table.close(a);
  EXPECT_EQ(table.open_count(), 2u);
}

}  // namespace
}  // namespace catalyst::http::h2
