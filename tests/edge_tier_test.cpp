// Edge tier unit + data-path tests: SLRU segmentation, TinyLFU admission,
// shared-cache policy, Catalyst map refresh on 304, request coalescing.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "edge/node.h"
#include "edge/pop.h"
#include "edge/slru.h"
#include "edge/tinylfu.h"
#include "http/headers.h"
#include "netsim/transport.h"

namespace catalyst::edge {
namespace {

http::Response cacheable_response(std::string etag, std::size_t body_bytes,
                                  const std::string& cache_control =
                                      "max-age=60") {
  http::Response resp = http::Response::make(http::Status::Ok);
  resp.body = std::string(body_bytes, 'x');
  resp.headers.set(http::kEtagHeader, std::move(etag));
  resp.headers.set(http::kCacheControl, cache_control);
  return resp;
}

cache::CacheEntry entry_of(std::size_t body_bytes) {
  cache::CacheEntry entry;
  entry.response = cacheable_response("\"e\"", body_bytes);
  return entry;
}

TEST(SlruStoreTest, PromotesOnSecondReferenceAndEvictsColdTail) {
  SlruStore store(10 * 1024, /*protected_fraction=*/0.8);
  ASSERT_TRUE(store.put("a", entry_of(2000)));
  ASSERT_TRUE(store.put("b", entry_of(2000)));
  EXPECT_EQ(store.probation().entry_count(), 2u);

  // First re-reference moves "a" to the protected segment.
  ASSERT_NE(store.get("a"), nullptr);
  EXPECT_EQ(store.protected_segment().entry_count(), 1u);
  EXPECT_EQ(store.promotions(), 1u);

  // The eviction victim is probation's tail ("b"), never the promoted "a".
  ASSERT_TRUE(store.victim_key().has_value());
  EXPECT_EQ(*store.victim_key(), "b");
  EXPECT_TRUE(store.evict_victim());
  EXPECT_TRUE(store.contains("a"));
  EXPECT_FALSE(store.contains("b"));
  EXPECT_EQ(store.evictions(), 1u);
}

TEST(SlruStoreTest, PutRequiresRoomAndRejectsOversized) {
  SlruStore store(4096);
  EXPECT_FALSE(store.put("huge", entry_of(8192)));
  ASSERT_TRUE(store.put("a", entry_of(1500)));
  ASSERT_TRUE(store.put("b", entry_of(1500)));
  // A third entry would overflow: put refuses until the caller makes room.
  EXPECT_FALSE(store.put("c", entry_of(1500)));
  EXPECT_TRUE(store.evict_victim());
  EXPECT_TRUE(store.put("c", entry_of(1500)));
}

TEST(TinyLfuTest, SketchCountsAndAges) {
  FrequencySketch sketch(64);
  for (int i = 0; i < 5; ++i) sketch.record("hot");
  EXPECT_GE(sketch.estimate("hot"), 5u);
  EXPECT_EQ(sketch.estimate("never-seen"), 0u);
  sketch.age();
  EXPECT_GE(sketch.estimate("hot"), 2u);
  EXPECT_LT(sketch.estimate("hot"), 5u);
}

TEST(TinyLfuTest, AdmitsFrequentOverRare) {
  TinyLfuAdmission admission(/*expected_entries=*/128);
  for (int i = 0; i < 4; ++i) admission.record("hot");
  admission.record("one-hit");
  admission.record("one-hit-2");
  EXPECT_TRUE(admission.admit("hot", "one-hit"));
  EXPECT_FALSE(admission.admit("one-hit", "hot"));
  // Equal frequency does not displace (the incumbent wins ties).
  EXPECT_FALSE(admission.admit("one-hit", "one-hit-2"));
}

TEST(EdgePopTest, TinyLfuKeepsHotObjectAgainstScan) {
  EdgeConfig config;
  config.capacity = 8 * 1024;  // fits roughly three ~2 KiB entries
  EdgePop pop(config);
  const TimePoint t0{};

  const std::string hot = "origin/hot.css";
  pop.note_request(hot);
  ASSERT_TRUE(pop.admit_and_store(hot, cacheable_response("\"h\"", 2000),
                                  t0, t0));
  // Re-references build the hot object's frequency history (and promote
  // it out of probation).
  for (int i = 0; i < 5; ++i) {
    pop.note_request(hot);
    EXPECT_EQ(pop.lookup(hot, t0).decision, EdgeLookupDecision::Fresh);
  }

  // A one-touch scan of 20 distinct objects cannot flush it.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "origin/scan-" + std::to_string(i);
    pop.note_request(key);
    pop.admit_and_store(key, cacheable_response("\"s\"", 2000), t0, t0);
  }

  EXPECT_EQ(pop.lookup(hot, t0).decision, EdgeLookupDecision::Fresh);
  EXPECT_GT(pop.stats().admission_rejects, 0u);
}

TEST(EdgePopTest, SharedCacheRefusesPrivateAndNoStore) {
  EdgePop pop(EdgeConfig{});
  const TimePoint t0{};
  EXPECT_FALSE(pop.admit_and_store(
      "k1", cacheable_response("\"a\"", 100, "private, max-age=60"), t0, t0));
  EXPECT_FALSE(pop.admit_and_store(
      "k2", cacheable_response("\"b\"", 100, "no-store"), t0, t0));
  EXPECT_EQ(pop.stats().rejected_no_store, 2u);
  EXPECT_EQ(pop.entry_count(), 0u);
}

TEST(EdgePopTest, FutureEntriesRevalidateInsteadOfServingFresh) {
  // User-major fleet replay: a later user's clock restarts behind shared
  // state another user filled "in the future".
  EdgePop pop(EdgeConfig{});
  const TimePoint t0{};
  const TimePoint later = t0 + hours(12);
  ASSERT_TRUE(pop.admit_and_store("k", cacheable_response("\"v\"", 100),
                                  later, later));
  EXPECT_EQ(pop.lookup("k", t0).decision, EdgeLookupDecision::Stale);
  EXPECT_EQ(pop.lookup("k", later).decision, EdgeLookupDecision::Fresh);
}

TEST(EdgePopTest, NotModifiedRefreshesEtagConfigMap) {
  EdgePop pop(EdgeConfig{});
  const TimePoint t0{};
  http::Response html = cacheable_response("\"v1\"", 500, "no-cache");
  html.headers.set(http::kXEtagConfig, "{\"/a.css\":\"\\\"1\\\"\"}");
  ASSERT_TRUE(pop.admit_and_store("origin/", html, t0, t0));

  http::Response not_modified =
      http::Response::make(http::Status::NotModified);
  not_modified.headers.set(http::kEtagHeader, "\"v2\"");
  not_modified.headers.set(http::kXEtagConfig, "{\"/a.css\":\"\\\"2\\\"\"}");
  const cache::CacheEntry* entry =
      pop.refresh_not_modified("origin/", not_modified, t0 + hours(1),
                               t0 + hours(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->response.headers.get(http::kEtagHeader), "\"v2\"");
  EXPECT_EQ(entry->response.headers.get(http::kXEtagConfig),
            "{\"/a.css\":\"\\\"2\\\"\"}");
  // The stored body is untouched: 304 refreshes metadata only.
  EXPECT_EQ(entry->response.body.size(), 500u);
}

// ---------------------------------------------------------------------------
// Data-path tests: an EdgeNode between raw client connections and a
// scripted origin host.

class EdgeNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_.add_host("client");
    network_.add_host("origin.example");
    pop_ = std::make_unique<EdgePop>(EdgeConfig{});
    network_.add_host(pop_->host_name());
    network_.set_rtt("client", pop_->host_name(), milliseconds(20));
    network_.set_rtt(pop_->host_name(), "origin.example", milliseconds(30));
    node_ = std::make_unique<EdgeNode>(*pop_, network_, "origin.example");
    install_origin("\"v1\"");
  }

  /// Origin serving one cacheable resource with the given ETag; counts
  /// requests and answers conditionals.
  void install_origin(std::string etag) {
    origin_etag_ = std::move(etag);
    network_.host("origin.example")
        .set_handler([this](const http::Request& request,
                            std::function<void(netsim::ServerReply)>
                                respond) {
          ++origin_requests_;
          netsim::ServerReply reply;
          const auto inm = request.headers.get(http::kIfNoneMatch);
          if (inm && *inm == origin_etag_) {
            ++origin_304s_;
            reply.response =
                http::Response::make(http::Status::NotModified);
            reply.response.headers.set(http::kEtagHeader, origin_etag_);
            reply.response.headers.set(http::kXEtagConfig, "{\"v\":2}");
          } else {
            reply.response = cacheable_response(origin_etag_, 3000);
            reply.response.headers.set(http::kXEtagConfig, "{\"v\":1}");
            reply.response.finalize(loop_.now());
          }
          respond(std::move(reply));
        });
  }

  /// Fires one GET from a fresh client connection; returns the slot the
  /// response lands in after loop_.run().
  std::size_t send_get(const std::string& target,
                       const std::string& if_none_match = "") {
    conns_.push_back(std::make_unique<netsim::Connection>(
        network_, "client", pop_->host_name(), /*tls=*/false,
        netsim::Protocol::H1));
    http::Request request = http::Request::get(target, pop_->host_name());
    if (!if_none_match.empty()) {
      request.headers.set(http::kIfNoneMatch, if_none_match);
    }
    const std::size_t slot = responses_.size();
    responses_.emplace_back();
    conns_.back()->send_request(
        std::move(request), [this, slot](http::Response response) {
          responses_[slot] = std::move(response);
        });
    return slot;
  }

  netsim::EventLoop loop_;
  netsim::Network network_{loop_};
  std::unique_ptr<EdgePop> pop_;
  std::unique_ptr<EdgeNode> node_;
  std::vector<std::unique_ptr<netsim::Connection>> conns_;
  std::vector<std::optional<http::Response>> responses_;
  std::string origin_etag_;
  int origin_requests_ = 0;
  int origin_304s_ = 0;
};

TEST_F(EdgeNodeTest, ConcurrentMissesCoalesceToOneOriginFetch) {
  constexpr int kClients = 5;
  for (int i = 0; i < kClients; ++i) send_get("/app.js");
  loop_.run();

  EXPECT_EQ(origin_requests_, 1);
  const EdgePopStats stats = pop_->stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(stats.origin_fetches, 1u);
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kClients));
  for (const auto& response : responses_) {
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, http::Status::Ok);
  }
}

TEST_F(EdgeNodeTest, SecondRequestIsServedFromTheEdge) {
  send_get("/app.js");
  loop_.run();
  ASSERT_EQ(origin_requests_, 1);

  const std::size_t slot = send_get("/app.js");
  loop_.run();
  EXPECT_EQ(origin_requests_, 1);  // no second origin touch
  ASSERT_TRUE(responses_[slot].has_value());
  EXPECT_EQ(responses_[slot]->status, http::Status::Ok);
  const EdgePopStats stats = pop_->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.requests, stats.hits + stats.revalidated_hits +
                                stats.misses);
}

TEST_F(EdgeNodeTest, ClientRevalidationAnsweredAtTheEdgeWithEtagConfig) {
  send_get("/index.html");
  loop_.run();
  ASSERT_EQ(origin_requests_, 1);

  // A revisiting client revalidates; the edge holds the entry fresh and
  // answers 304 itself — carrying the Catalyst map, exactly what the
  // Service Worker needs, with zero origin cost.
  const std::size_t slot = send_get("/index.html", "\"v1\"");
  loop_.run();
  EXPECT_EQ(origin_requests_, 1);
  ASSERT_TRUE(responses_[slot].has_value());
  EXPECT_EQ(responses_[slot]->status, http::Status::NotModified);
  EXPECT_EQ(responses_[slot]->headers.get(http::kXEtagConfig), "{\"v\":1}");
}

TEST_F(EdgeNodeTest, StaleEntryRevalidatesUpstreamAndRefreshesMap) {
  send_get("/index.html");
  loop_.run();
  ASSERT_EQ(origin_requests_, 1);

  // Age the entry past max-age=60: the next request must cost exactly one
  // conditional origin exchange, and the refreshed entry carries the
  // origin's new map.
  loop_.advance_to(loop_.now() + hours(1));
  const std::size_t slot = send_get("/index.html");
  loop_.run();
  EXPECT_EQ(origin_requests_, 2);
  EXPECT_EQ(origin_304s_, 1);
  ASSERT_TRUE(responses_[slot].has_value());
  EXPECT_EQ(responses_[slot]->status, http::Status::Ok);
  const EdgePopStats stats = pop_->stats();
  EXPECT_EQ(stats.revalidated_hits, 1u);
  EXPECT_EQ(stats.origin_not_modified, 1u);
  const cache::CacheEntry* entry =
      pop_->store().peek("origin.example/index.html");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->response.headers.get(http::kXEtagConfig), "{\"v\":2}");
}

TEST_F(EdgeNodeTest, EveryRequestResolvesExactlyOnce) {
  for (int i = 0; i < 3; ++i) send_get("/a.css");
  send_get("/b.css");
  loop_.run();
  send_get("/a.css");
  loop_.run();

  const EdgePopStats stats = pop_->stats();
  EXPECT_EQ(stats.requests,
            stats.hits + stats.revalidated_hits + stats.misses);
  EXPECT_EQ(stats.requests, 5u);
}

TEST_F(EdgeNodeTest, ServerErrorReachesCoalescedWaitersButIsNeverAdmitted) {
  // Regression: a transient 5xx fill used to be a store candidate. Every
  // coalesced waiter must see the error, but the next request after the
  // origin recovers must refetch — a cached 500 would pin the outage.
  network_.host("origin.example")
      .set_handler([this](const http::Request&,
                          std::function<void(netsim::ServerReply)> respond) {
        ++origin_requests_;
        netsim::ServerReply reply;
        reply.response =
            http::Response::make(http::Status::InternalServerError);
        reply.response.body = "boom";
        reply.response.headers.set(http::kCacheControl, "max-age=300");
        reply.response.finalize(loop_.now());
        respond(std::move(reply));
      });

  constexpr int kClients = 4;
  for (int i = 0; i < kClients; ++i) send_get("/app.js");
  loop_.run();

  EXPECT_EQ(origin_requests_, 1);  // one fill serves every waiter
  for (const auto& response : responses_) {
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, http::Status::InternalServerError);
  }
  const EdgePopStats after_error = pop_->stats();
  EXPECT_EQ(after_error.coalesced, static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(after_error.stores, 0u);
  EXPECT_EQ(pop_->entry_count(), 0u);

  // Origin recovers: the next request must go upstream and succeed.
  install_origin("\"v2\"");
  const std::size_t slot = send_get("/app.js");
  loop_.run();
  EXPECT_EQ(origin_requests_, 2);
  ASSERT_TRUE(responses_[slot].has_value());
  EXPECT_EQ(responses_[slot]->status, http::Status::Ok);
}

TEST_F(EdgeNodeTest, StrictKeyingPartitionsByForwardedHost) {
  // An attacker request carrying X-Forwarded-Host must not share a cache
  // entry with clean traffic: the header selects a different (reflected)
  // representation at the origin.
  send_get("/app.js");
  loop_.run();
  ASSERT_EQ(origin_requests_, 1);

  conns_.push_back(std::make_unique<netsim::Connection>(
      network_, "client", pop_->host_name(), /*tls=*/false,
      netsim::Protocol::H1));
  http::Request poisoned = http::Request::get("/app.js", pop_->host_name());
  poisoned.headers.set(http::kXForwardedHost, "evil.example");
  conns_.back()->send_request(std::move(poisoned), [](http::Response) {});
  loop_.run();

  // Partitioned key: the poisoned request missed and went upstream.
  EXPECT_EQ(origin_requests_, 2);
  EXPECT_EQ(pop_->stats().hits, 0u);
}

TEST(EdgePopTest, NegativeEntriesStoreAndExpireUnderPolicy) {
  EdgeConfig config;
  config.negative.enabled = true;
  config.negative.default_ttl = seconds(60);
  EdgePop pop(config);
  const TimePoint t0 = TimePoint{} + hours(1);

  http::Response miss = http::Response::make(http::Status::NotFound);
  miss.body = "not found";
  miss.finalize(t0);
  ASSERT_TRUE(pop.admit_and_store("origin/gone.css", miss, t0, t0));
  EXPECT_EQ(pop.stats().negative_stores, 1u);

  // Fresh within the bounded TTL, gone after it (no revalidation: an
  // expired error has nothing to validate).
  EXPECT_EQ(pop.lookup("origin/gone.css", t0 + seconds(30)).decision,
            EdgeLookupDecision::Fresh);
  EXPECT_EQ(pop.stats().negative_hits, 1u);
  EXPECT_EQ(pop.lookup("origin/gone.css", t0 + seconds(90)).decision,
            EdgeLookupDecision::Miss);
  EXPECT_FALSE(pop.store().contains("origin/gone.css"));
}

TEST(EdgePopTest, NegativeCachingOffRefusesErrorResponses) {
  EdgePop pop(EdgeConfig{});  // negative caching defaults off
  const TimePoint t0 = TimePoint{} + hours(1);
  http::Response miss = http::Response::make(http::Status::NotFound);
  miss.body = "not found";
  miss.finalize(t0);
  EXPECT_FALSE(pop.admit_and_store("origin/gone.css", miss, t0, t0));
  EXPECT_EQ(pop.stats().negative_stores, 0u);
  EXPECT_EQ(pop.entry_count(), 0u);
}

}  // namespace
}  // namespace catalyst::edge
