#include <gtest/gtest.h>

#include "server/push_module.h"
#include "server/session.h"

namespace catalyst::server {
namespace {

TEST(SessionStoreTest, LearnsAcrossVisitWindows) {
  SessionStore store;
  // Visit 1 of session s1 on /index.html.
  store.begin_visit("s1", "/index.html");
  store.record_fetch("s1", "/index.html", "/a.css");
  store.record_fetch("s1", "/index.html", "/lazy.json");
  // Nothing learned yet (the window has not closed).
  EXPECT_TRUE(store.learned_urls("s1", "/index.html").empty());

  // Visit 2 starts: visit 1's fetches become the learned set.
  store.begin_visit("s1", "/index.html");
  const auto learned = store.learned_urls("s1", "/index.html");
  ASSERT_EQ(learned.size(), 2u);
  EXPECT_EQ(learned[0], "/a.css");
  EXPECT_EQ(learned[1], "/lazy.json");
}

TEST(SessionStoreTest, ReplacesOnNextWindow) {
  SessionStore store;
  store.begin_visit("s1", "/p");
  store.record_fetch("s1", "/p", "/old.js");
  store.begin_visit("s1", "/p");
  store.record_fetch("s1", "/p", "/new.js");
  store.begin_visit("s1", "/p");
  const auto learned = store.learned_urls("s1", "/p");
  ASSERT_EQ(learned.size(), 1u);
  EXPECT_EQ(learned[0], "/new.js");
}

TEST(SessionStoreTest, EmptyObservationKeepsPreviousCommit) {
  SessionStore store;
  store.begin_visit("s1", "/p");
  store.record_fetch("s1", "/p", "/a.js");
  store.begin_visit("s1", "/p");  // commits {a.js}
  store.begin_visit("s1", "/p");  // nothing observed: keep {a.js}
  EXPECT_EQ(store.learned_urls("s1", "/p").size(), 1u);
}

TEST(SessionStoreTest, SessionsAndPagesIsolated) {
  SessionStore store;
  store.begin_visit("s1", "/p");
  store.record_fetch("s1", "/p", "/x");
  store.begin_visit("s1", "/p");
  EXPECT_TRUE(store.learned_urls("s2", "/p").empty());
  EXPECT_TRUE(store.learned_urls("s1", "/q").empty());
  EXPECT_EQ(store.session_count(), 1u);
}

TEST(SessionStoreTest, MemoryFootprintGrowsWithRecords) {
  SessionStore store;
  const ByteCount empty = store.memory_footprint();
  for (int i = 0; i < 100; ++i) {
    store.record_fetch("s1", "/p", "/res" + std::to_string(i) + ".js");
  }
  EXPECT_GT(store.memory_footprint(), empty + 100 * 32);
}

TEST(SessionCookieTest, RoundTrip) {
  EXPECT_EQ(parse_session_cookie(make_session_cookie("user-42")),
            "user-42");
  EXPECT_EQ(parse_session_cookie("theme=dark; sid=u9; lang=en"), "u9");
  EXPECT_EQ(parse_session_cookie("theme=dark"), "");
  EXPECT_EQ(parse_session_cookie(""), "");
}

TEST(PushPolicyTest, Names) {
  EXPECT_EQ(to_string(PushPolicy::None), "none");
  EXPECT_EQ(to_string(PushPolicy::All), "push-all");
  EXPECT_EQ(to_string(PushPolicy::Learned), "push-learned");
}

std::unique_ptr<Site> push_site() {
  auto site = std::make_unique<Site>("example.com");
  auto add = [&](const std::string& path, http::ResourceClass rc,
                 const std::string& content) {
    site->add_resource(std::make_unique<Resource>(
        path, rc, content.size(),
        [content](std::uint64_t) { return content; },
        ChangeProcess::never(), http::CacheControl::with_max_age(hours(1))));
  };
  add("/index.html", http::ResourceClass::Html,
      "<html><link rel=\"stylesheet\" href=\"/a.css\">"
      "<img src=\"/b.webp\"></html>");
  add("/a.css", http::ResourceClass::Css, ".x{}");
  add("/b.webp", http::ResourceClass::Image, "img");
  add("/lazy.json", http::ResourceClass::Json, "{}");
  return site;
}

TEST(PushModuleTest, PushAllPushesStaticClosure) {
  auto site = push_site();
  CatalystModule linker(*site, {});
  StaticHandler handler(*site);
  PushModule push(*site, PushPolicy::All);
  const auto pushes = push.build_pushes(
      http::Request::get("/index.html", "example.com"),
      *site->find("/index.html"), TimePoint{}, linker, {}, handler);
  ASSERT_EQ(pushes.size(), 2u);
  EXPECT_EQ(pushes[0].target, "/a.css");
  EXPECT_EQ(pushes[1].target, "/b.webp");
  EXPECT_EQ(pushes[0].response.status, http::Status::Ok);
  EXPECT_GT(push.bytes_pushed(), 0u);
}

TEST(PushModuleTest, LearnedPolicyUsesSessionList) {
  auto site = push_site();
  CatalystModule linker(*site, {});
  StaticHandler handler(*site);
  PushModule push(*site, PushPolicy::Learned);
  const auto pushes = push.build_pushes(
      http::Request::get("/index.html", "example.com"),
      *site->find("/index.html"), TimePoint{}, linker,
      {"/a.css", "/lazy.json", "/missing.js"}, handler);
  ASSERT_EQ(pushes.size(), 2u);  // missing.js skipped
  EXPECT_EQ(pushes[0].target, "/a.css");
  EXPECT_EQ(pushes[1].target, "/lazy.json");
}

TEST(PushModuleTest, NonePushesNothing) {
  auto site = push_site();
  CatalystModule linker(*site, {});
  StaticHandler handler(*site);
  PushModule push(*site, PushPolicy::None);
  EXPECT_TRUE(push.build_pushes(
                  http::Request::get("/index.html", "example.com"),
                  *site->find("/index.html"), TimePoint{}, linker,
                  {"/a.css"}, handler)
                  .empty());
}

}  // namespace
}  // namespace catalyst::server
