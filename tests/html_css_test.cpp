#include "html/css.h"

#include <gtest/gtest.h>

namespace catalyst::html {
namespace {

TEST(CssTest, ExtractsUrlFunctions) {
  const auto refs = extract_css_references(
      ".a { background: url(\"/img/a.png\") }\n"
      ".b { background: url('/img/b.png') }\n"
      ".c { background: url(/img/c.png) }\n");
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0].url, "/img/a.png");
  EXPECT_EQ(refs[1].url, "/img/b.png");
  EXPECT_EQ(refs[2].url, "/img/c.png");
  for (const auto& r : refs) EXPECT_FALSE(r.is_import);
}

TEST(CssTest, ExtractsImports) {
  const auto refs = extract_css_references(
      "@import \"base.css\";\n"
      "@import url(\"theme.css\");\n"
      "@import url(print.css);\n");
  ASSERT_EQ(refs.size(), 3u);
  for (const auto& r : refs) EXPECT_TRUE(r.is_import);
  EXPECT_EQ(refs[0].url, "base.css");
  EXPECT_EQ(refs[1].url, "theme.css");
  EXPECT_EQ(refs[2].url, "print.css");
}

TEST(CssTest, SkipsComments) {
  const auto refs = extract_css_references(
      "/* url(\"/commented.png\") */ .a { background: url(\"/real.png\") }");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].url, "/real.png");
}

TEST(CssTest, IgnoresDataUrls) {
  const auto refs = extract_css_references(
      ".a { background: url(data:image/png;base64,AAAA) }\n"
      ".b { background: url(/keep.png) }");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].url, "/keep.png");
}

TEST(CssTest, FontFaceSources) {
  const auto refs = extract_css_references(
      "@font-face { font-family: F; src: url(\"/fonts/f.woff2\") "
      "format(\"woff2\"); }");
  // format("woff2") is a url-less function; only the font URL extracted.
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].url, "/fonts/f.woff2");
}

TEST(CssTest, CaseInsensitiveKeywords) {
  const auto refs = extract_css_references(
      "@IMPORT \"a.css\"; .x { background: URL(/b.png) }");
  ASSERT_EQ(refs.size(), 2u);
}

TEST(CssTest, EmptyAndMalformed) {
  EXPECT_TRUE(extract_css_references("").empty());
  EXPECT_TRUE(extract_css_references(".a { color: red }").empty());
  // Unterminated url( at EOF must not crash or loop.
  const auto refs = extract_css_references(".a { background: url(/x");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].url, "/x");
  EXPECT_TRUE(extract_css_references("/* unterminated comment").empty());
}

TEST(CssTest, WhitespaceInsideUrl) {
  const auto refs =
      extract_css_references(".a { background: url(  \"/padded.png\"  ) }");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].url, "/padded.png");
}

}  // namespace
}  // namespace catalyst::html
