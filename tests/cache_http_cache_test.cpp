#include "cache/http_cache.h"

#include <gtest/gtest.h>

#include "http/date.h"

namespace catalyst::cache {
namespace {

using http::Response;
using http::Status;

Response ok_response(const std::string& cache_control,
                     const std::string& etag, TimePoint now) {
  Response resp = Response::make(Status::Ok);
  resp.body = "content";
  if (!cache_control.empty()) {
    resp.headers.set(http::kCacheControl, cache_control);
  }
  if (!etag.empty()) resp.headers.set(http::kEtagHeader, etag);
  resp.finalize(now);
  return resp;
}

TEST(HttpCacheTest, MissWhenEmpty) {
  HttpCache cache;
  const auto result = cache.lookup("u", TimePoint{});
  EXPECT_EQ(result.decision, LookupDecision::Miss);
  EXPECT_EQ(result.entry, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(HttpCacheTest, FreshHitWithinMaxAge) {
  HttpCache cache;
  ASSERT_TRUE(cache.store("u", ok_response("max-age=60", "\"e\"",
                                           TimePoint{}),
                          TimePoint{}, TimePoint{}));
  const auto hit = cache.lookup("u", TimePoint{} + seconds(30));
  EXPECT_EQ(hit.decision, LookupDecision::FreshHit);
  ASSERT_NE(hit.entry, nullptr);
  EXPECT_EQ(hit.entry->response.body, "content");

  const auto stale = cache.lookup("u", TimePoint{} + seconds(61));
  EXPECT_EQ(stale.decision, LookupDecision::NeedsRevalidation);
}

TEST(HttpCacheTest, NoCacheAlwaysRevalidates) {
  HttpCache cache;
  ASSERT_TRUE(cache.store("u", ok_response("no-cache", "\"e\"",
                                           TimePoint{}),
                          TimePoint{}, TimePoint{}));
  const auto result = cache.lookup("u", TimePoint{} + seconds(1));
  EXPECT_EQ(result.decision, LookupDecision::NeedsRevalidation);
  ASSERT_NE(result.entry, nullptr);
}

TEST(HttpCacheTest, MustRevalidateForcesRevalidationWhenStale) {
  HttpCache cache;
  ASSERT_TRUE(cache.store(
      "u", ok_response("max-age=10, must-revalidate", "\"e\"", TimePoint{}),
      TimePoint{}, TimePoint{}));
  EXPECT_EQ(cache.lookup("u", TimePoint{} + seconds(60)).decision,
            LookupDecision::NeedsRevalidation);
}

TEST(HttpCacheTest, NoStoreNeverStored) {
  HttpCache cache;
  EXPECT_FALSE(cache.store("u", ok_response("no-store", "\"e\"",
                                            TimePoint{}),
                           TimePoint{}, TimePoint{}));
  EXPECT_FALSE(cache.contains("u"));
  EXPECT_EQ(cache.stats().rejected_no_store, 1u);
}

TEST(HttpCacheTest, UncacheableStatusRejected) {
  HttpCache cache;
  Response resp = Response::make(Status::InternalServerError);
  resp.headers.set(http::kCacheControl, "max-age=60");
  resp.finalize(TimePoint{});
  EXPECT_FALSE(cache.store("u", std::move(resp), TimePoint{}, TimePoint{}));
}

TEST(HttpCacheTest, UnreusableResponseNotStored) {
  HttpCache cache;
  // No freshness info and no validators: cannot ever be reused.
  Response resp = Response::make(Status::Ok);
  resp.body = "x";
  EXPECT_FALSE(cache.store("u", std::move(resp), TimePoint{}, TimePoint{}));
}

TEST(HttpCacheTest, StaleWithoutValidatorIsMiss) {
  HttpCache cache(MiB(1), /*allow_heuristic=*/false);
  // max-age but no ETag / Last-Modified: after expiry there is nothing to
  // revalidate with.
  ASSERT_TRUE(cache.store("u", ok_response("max-age=10", "", TimePoint{}),
                          TimePoint{}, TimePoint{}));
  EXPECT_EQ(cache.lookup("u", TimePoint{} + seconds(60)).decision,
            LookupDecision::Miss);
}

TEST(HttpCacheTest, ApplyNotModifiedRefreshesMetadata) {
  HttpCache cache;
  ASSERT_TRUE(cache.store("u", ok_response("max-age=10", "\"v1\"",
                                           TimePoint{}),
                          TimePoint{}, TimePoint{}));
  // Stale at +60 s.
  ASSERT_EQ(cache.lookup("u", TimePoint{} + seconds(60)).decision,
            LookupDecision::NeedsRevalidation);

  Response not_modified = Response::make(Status::NotModified);
  not_modified.headers.set(http::kEtagHeader, "\"v1\"");
  not_modified.headers.set(http::kCacheControl, "max-age=10");
  not_modified.headers.set(
      http::kDate, http::format_http_date(TimePoint{} + seconds(60)));
  const CacheEntry* refreshed = cache.apply_not_modified(
      "u", not_modified, TimePoint{} + seconds(60),
      TimePoint{} + seconds(60));
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(refreshed->response.body, "content");  // body kept

  // Fresh again for another 10 s window.
  EXPECT_EQ(cache.lookup("u", TimePoint{} + seconds(65)).decision,
            LookupDecision::FreshHit);
}

TEST(HttpCacheTest, ApplyNotModifiedOnMissingEntry) {
  HttpCache cache;
  Response not_modified = Response::make(Status::NotModified);
  EXPECT_EQ(cache.apply_not_modified("u", not_modified, TimePoint{},
                                     TimePoint{}),
            nullptr);
}

TEST(HttpCacheTest, HeuristicFreshnessToggle) {
  Response resp = Response::make(Status::Ok);
  resp.body = "x";
  resp.headers.set(http::kLastModified,
                   http::format_http_date(TimePoint{}));
  resp.finalize(TimePoint{} + days(10));

  HttpCache heuristic(MiB(1), /*allow_heuristic=*/true);
  ASSERT_TRUE(heuristic.store("u", resp, TimePoint{} + days(10),
                              TimePoint{} + days(10)));
  EXPECT_EQ(heuristic.lookup("u", TimePoint{} + days(10) + hours(1))
                .decision,
            LookupDecision::FreshHit);

  HttpCache strict(MiB(1), /*allow_heuristic=*/false);
  ASSERT_TRUE(strict.store("u", resp, TimePoint{} + days(10),
                           TimePoint{} + days(10)));
  EXPECT_EQ(
      strict.lookup("u", TimePoint{} + days(10) + hours(1)).decision,
      LookupDecision::NeedsRevalidation);
}

TEST(HttpCacheTest, StatsAccumulate) {
  HttpCache cache;
  cache.store("u", ok_response("max-age=60", "\"e\"", TimePoint{}),
              TimePoint{}, TimePoint{});
  cache.lookup("u", TimePoint{} + seconds(1));   // fresh hit
  cache.lookup("u", TimePoint{} + seconds(90));  // revalidation
  cache.lookup("v", TimePoint{});                // miss
  EXPECT_EQ(cache.stats().lookups, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().revalidations, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
}

}  // namespace
}  // namespace catalyst::cache
