#include "util/hash.h"

#include <gtest/gtest.h>

#include <string>

namespace catalyst {
namespace {

// RFC 3174 / FIPS-180 known answers.
TEST(Sha1Test, KnownVectors) {
  EXPECT_EQ(Sha1::hex_digest("abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::hex_digest(""),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(
      Sha1::hex_digest(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(Sha1::hex_digest(input),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog, repeatedly, in chunks";
  Sha1 incremental;
  // Feed in awkward chunk sizes straddling the 64-byte block boundary.
  std::size_t pos = 0;
  const std::size_t chunks[] = {1, 3, 7, 13, 63, 64, 65};
  std::size_t idx = 0;
  while (pos < data.size()) {
    const std::size_t take =
        std::min(chunks[idx++ % 7], data.size() - pos);
    incremental.update(std::string_view(data).substr(pos, take));
    pos += take;
  }
  const auto inc = incremental.finalize();
  const auto oneshot = Sha1::digest(data);
  EXPECT_EQ(inc, oneshot);
}

TEST(Sha1Test, BoundaryLengths) {
  // Lengths around the padding boundary (55/56/63/64) are the classic
  // off-by-one traps.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    std::string input(len, 'x');
    Sha1 s;
    s.update(input);
    EXPECT_EQ(s.finalize(), Sha1::digest(input)) << "len=" << len;
  }
}

TEST(Fnv1aTest, KnownValuesAndDistinctness) {
  // FNV-1a standard test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(fnv1a64("/a.css"), fnv1a64("/b.css"));
}

TEST(Fnv1aTest, Constexpr) {
  static_assert(fnv1a64("abc") != fnv1a64("abd"));
  SUCCEED();
}

TEST(ToHexTest, RendersLowercase) {
  const std::uint8_t bytes[] = {0x00, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(bytes, 3), "00abff");
  EXPECT_EQ(to_hex(bytes, 0), "");
}

}  // namespace
}  // namespace catalyst
