#include "html/link_extract.h"

#include <gtest/gtest.h>

#include "html/parser.h"

namespace catalyst::html {
namespace {

std::vector<DiscoveredResource> extract(std::string_view input) {
  return extract_resources(*parse(input));
}

TEST(LinkExtractTest, Stylesheets) {
  const auto found =
      extract("<link rel=\"stylesheet\" href=\"/a.css\">"
              "<link rel=\"preload\" as=\"style\" href=\"/b.css\">");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].url, "/a.css");
  EXPECT_EQ(found[0].resource_class, http::ResourceClass::Css);
  EXPECT_TRUE(found[0].render_blocking);
  EXPECT_FALSE(found[0].parser_blocking);
  EXPECT_EQ(found[1].resource_class, http::ResourceClass::Css);
}

TEST(LinkExtractTest, ScriptsAndBlockingSemantics) {
  const auto found =
      extract("<script src=\"/block.js\"></script>"
              "<script src=\"/async.js\" async></script>"
              "<script src=\"/defer.js\" defer></script>"
              "<script src=\"/mod.js\" type=\"module\"></script>");
  ASSERT_EQ(found.size(), 4u);
  EXPECT_TRUE(found[0].parser_blocking);
  EXPECT_FALSE(found[1].parser_blocking);
  EXPECT_FALSE(found[2].parser_blocking);
  EXPECT_FALSE(found[3].parser_blocking);
  for (const auto& f : found) {
    EXPECT_EQ(f.resource_class, http::ResourceClass::Script);
  }
}

TEST(LinkExtractTest, InlineScriptNotAResource) {
  EXPECT_TRUE(extract("<script>var x = 1;</script>").empty());
}

TEST(LinkExtractTest, ImagesAndSources) {
  const auto found =
      extract("<img src=\"/pic.webp\" alt=\"x\">"
              "<picture><source srcset=\"/big.webp 2x, /small.webp\">"
              "</picture>"
              "<link rel=\"icon\" href=\"/favicon.ico\">");
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0].url, "/pic.webp");
  EXPECT_EQ(found[1].url, "/big.webp");  // first srcset candidate
  EXPECT_EQ(found[2].url, "/favicon.ico");
  for (const auto& f : found) {
    EXPECT_EQ(f.resource_class, http::ResourceClass::Image);
    EXPECT_FALSE(f.parser_blocking);
  }
}

TEST(LinkExtractTest, PreloadAsClasses) {
  const auto found =
      extract("<link rel=\"preload\" as=\"font\" href=\"/f.woff2\">"
              "<link rel=\"preload\" as=\"script\" href=\"/p.js\">"
              "<link rel=\"preload\" as=\"fetch\" href=\"/d.json\">");
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0].resource_class, http::ResourceClass::Font);
  EXPECT_EQ(found[1].resource_class, http::ResourceClass::Script);
  EXPECT_EQ(found[2].resource_class, http::ResourceClass::Json);
}

TEST(LinkExtractTest, InlineStyleUrls) {
  const auto found =
      extract("<style>.h { background: url(\"/hero.webp\") } "
              "@import \"/extra.css\";</style>");
  ASSERT_EQ(found.size(), 2u);
  // Document order of the extractor: url() assets and imports.
  bool saw_img = false, saw_css = false;
  for (const auto& f : found) {
    if (f.url == "/hero.webp") {
      saw_img = true;
      EXPECT_EQ(f.resource_class, http::ResourceClass::Image);
    }
    if (f.url == "/extra.css") {
      saw_css = true;
      EXPECT_EQ(f.resource_class, http::ResourceClass::Css);
    }
  }
  EXPECT_TRUE(saw_img);
  EXPECT_TRUE(saw_css);
}

TEST(LinkExtractTest, IgnoresAnchorsDataAndJavascriptUrls) {
  const auto found =
      extract("<a href=\"/page2.html\">link</a>"
              "<img src=\"data:image/png;base64,AA\">"
              "<script src=\"javascript:void(0)\"></script>"
              "<img src=\"\">");
  EXPECT_TRUE(found.empty());
}

TEST(LinkExtractTest, DocumentOrderPreserved) {
  const auto found =
      extract("<link rel=stylesheet href=/1.css>"
              "<script src=/2.js></script>"
              "<img src=/3.png>");
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0].url, "/1.css");
  EXPECT_EQ(found[1].url, "/2.js");
  EXPECT_EQ(found[2].url, "/3.png");
}

TEST(JsFetchTest, ExtractsDirectives) {
  const auto urls = extract_js_fetches(
      "/* @fetch /api/a.json */ fetch(\"/api/a.json\");\n"
      "let x = 1;\n"
      "/* @fetch /assets/lazy0.js */ fetch(\"/assets/lazy0.js\");\n");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "/api/a.json");
  EXPECT_EQ(urls[1], "/assets/lazy0.js");
}

TEST(JsFetchTest, NoDirectives) {
  EXPECT_TRUE(extract_js_fetches("function f() { return 1; }").empty());
  EXPECT_TRUE(extract_js_fetches("").empty());
}

TEST(JsFetchTest, DirectiveAtEndOfInput) {
  const auto urls = extract_js_fetches("// @fetch /tail.json");
  ASSERT_EQ(urls.size(), 1u);
  EXPECT_EQ(urls[0], "/tail.json");
}

}  // namespace
}  // namespace catalyst::html
