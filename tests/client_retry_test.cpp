// Client resilience: deadline timers recover silent faults, retries are
// budgeted and GET-only, exhausted budgets settle with a synthesized 504
// (never a hang), and attempt tokens make late responses from abandoned
// attempts harmless.
#include "client/fetcher.h"

#include <gtest/gtest.h>

namespace catalyst::client {
namespace {

class RetryFixture : public ::testing::Test {
 protected:
  RetryFixture() : net_(loop_) {
    netsim::HostSpec client;
    client.downlink = mbps(80);
    client.uplink = mbps(80);
    net_.add_host("client", client);
    net_.add_host("origin");
    net_.set_rtt("client", "origin", milliseconds(40));
  }

  /// Fetcher with resilience on and a short deadline so tests stay fast.
  Fetcher make_fetcher() {
    FetcherConfig config;
    config.tls = false;
    config.resilience.enabled = true;
    config.resilience.request_timeout = seconds(1);
    config.resilience.max_retries = 2;
    config.resilience.backoff_base = milliseconds(200);
    return Fetcher(net_, "client", config);
  }

  void respond_ok(std::function<void(netsim::ServerReply)> respond) {
    netsim::ServerReply reply;
    reply.response = http::Response::make(http::Status::Ok);
    reply.response.body = "payload";
    reply.response.finalize(loop_.now());
    respond(std::move(reply));
  }

  netsim::EventLoop loop_;
  netsim::Network net_;
  int requests_seen_ = 0;
};

using netsim::ServerReply;

TEST_F(RetryFixture, StalledAttemptTimesOutAndRetrySucceeds) {
  // The first request hangs forever (the handler swallows it); the
  // deadline must fire, break the wedged connection, and the retry must
  // land on a fresh one and succeed.
  net_.host("origin").set_handler([this](const http::Request&, auto respond) {
    if (++requests_seen_ == 1) return;  // swallowed: silent stall
    respond_ok(respond);
  });
  Fetcher fetcher = make_fetcher();
  int responses = 0;
  http::Status status{};
  fetcher.fetch("origin", http::Request::get("/", "origin"),
                [&](http::Response resp) {
                  ++responses;
                  status = resp.status;
                });
  loop_.run();
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(status, http::Status::Ok);
  EXPECT_EQ(requests_seen_, 2);
  EXPECT_EQ(fetcher.stats().timeouts_fired, 1u);
  EXPECT_EQ(fetcher.stats().retries, 1u);
  EXPECT_EQ(fetcher.stats().failed_requests, 0u);
  // The wedged connection stays in the pool (broken, reaped by
  // close_all) and the retry opened a replacement around it.
  EXPECT_EQ(fetcher.connection_count(), 2u);
}

TEST_F(RetryFixture, ExhaustedRetryBudgetSettlesWith504) {
  // The origin never answers: every attempt must time out, and after the
  // budget runs out the caller gets a synthesized 504 — the load records
  // a failure instead of hanging the event loop.
  net_.host("origin").set_handler(
      [this](const http::Request&, auto) { ++requests_seen_; });
  Fetcher fetcher = make_fetcher();
  int responses = 0;
  http::Status status{};
  fetcher.fetch("origin", http::Request::get("/", "origin"),
                [&](http::Response resp) {
                  ++responses;
                  status = resp.status;
                });
  loop_.run();  // must drain: the 504 settles everything
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(status, http::Status::GatewayTimeout);
  EXPECT_EQ(requests_seen_, 3);  // initial attempt + 2 retries
  EXPECT_EQ(fetcher.stats().timeouts_fired, 3u);
  EXPECT_EQ(fetcher.stats().retries, 2u);
  EXPECT_EQ(fetcher.stats().failed_requests, 1u);
}

TEST_F(RetryFixture, NonIdempotentRequestsAreNeverRetried) {
  net_.host("origin").set_handler(
      [this](const http::Request&, auto) { ++requests_seen_; });
  Fetcher fetcher = make_fetcher();
  http::Request post;
  post.method = http::Method::Post;
  post.target = "/submit";
  post.body = "form data";
  http::Status status{};
  fetcher.fetch("origin", std::move(post),
                [&](http::Response resp) { status = resp.status; });
  loop_.run();
  // One attempt, one timeout, straight to 504 — replaying a POST could
  // duplicate a side effect.
  EXPECT_EQ(status, http::Status::GatewayTimeout);
  EXPECT_EQ(requests_seen_, 1);
  EXPECT_EQ(fetcher.stats().timeouts_fired, 1u);
  EXPECT_EQ(fetcher.stats().retries, 0u);
  EXPECT_EQ(fetcher.stats().failed_requests, 1u);
}

TEST_F(RetryFixture, LateResponseFromAbandonedAttemptIsIgnored) {
  // The first response arrives long after its deadline fired. The attempt
  // token must discard it: the caller sees exactly one response — the
  // retry's — and the late delivery on the broken connection is harmless.
  net_.host("origin").set_handler([this](const http::Request&, auto respond) {
    if (++requests_seen_ == 1) {
      loop_.schedule_after(seconds(5), [this, respond]() mutable {
        netsim::ServerReply reply;
        reply.response = http::Response::make(http::Status::Ok);
        reply.response.body = "stale attempt";
        reply.response.finalize(loop_.now());
        respond(std::move(reply));
      });
      return;
    }
    respond_ok(respond);
  });
  Fetcher fetcher = make_fetcher();
  int responses = 0;
  std::string body;
  fetcher.fetch("origin", http::Request::get("/", "origin"),
                [&](http::Response resp) {
                  ++responses;
                  body = resp.body;
                });
  loop_.run();
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(body, "payload");  // the retry's body, not the stale one
  EXPECT_EQ(fetcher.stats().timeouts_fired, 1u);
  EXPECT_EQ(fetcher.stats().retries, 1u);
}

TEST_F(RetryFixture, QueuedRequestsRerouteWhenTheirConnectionBreaks) {
  // H1 serializes requests per connection. When the in-flight request
  // stalls and its deadline breaks the connection, requests queued behind
  // it get a connection error and must retry on a fresh connection.
  net_.host("origin").set_handler([this](const http::Request& req,
                                         auto respond) {
    ++requests_seen_;
    if (req.target == "/stalls" && requests_seen_ == 1) return;
    respond_ok(respond);
  });
  FetcherConfig config;
  config.tls = false;
  config.max_connections_per_origin = 1;  // force queueing behind the stall
  config.resilience.enabled = true;
  config.resilience.request_timeout = seconds(1);
  config.resilience.max_retries = 2;
  config.resilience.backoff_base = milliseconds(200);
  Fetcher fetcher(net_, "client", config);

  int ok = 0;
  fetcher.fetch("origin", http::Request::get("/stalls", "origin"),
                [&](http::Response resp) {
                  if (resp.status == http::Status::Ok) ++ok;
                });
  // Issued after the stalling request is in flight, so its own deadline
  // (t=1.1s) is still pending when the stall's deadline (t=1.0s) breaks
  // the shared connection — the queued request must recover via the
  // connection-error path, not its timer.
  loop_.schedule_after(milliseconds(100), [&] {
    fetcher.fetch("origin", http::Request::get("/queued", "origin"),
                  [&](http::Response resp) {
                    if (resp.status == http::Status::Ok) ++ok;
                  });
  });
  loop_.run();
  // Both eventually succeed on a replacement connection.
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(requests_seen_, 3);  // stall + two successful retries
  EXPECT_EQ(fetcher.stats().timeouts_fired, 1u);       // the stall only
  EXPECT_EQ(fetcher.stats().connection_failures, 1u);  // the queued one
  EXPECT_EQ(fetcher.stats().retries, 2u);  // one per request
}

}  // namespace
}  // namespace catalyst::client
