// Flash tier unit + EdgePop two-tier data-path tests: log-structured
// supersede/GC accounting, admission-by-demotion, promotion back to RAM
// (and the TinyLFU veto that keeps cold reads on flash), and the
// completion-time re-classification of records that aged while queued.
#include <gtest/gtest.h>

#include <string>

#include "edge/flash.h"
#include "edge/pop.h"
#include "http/headers.h"

namespace catalyst::edge {
namespace {

http::Response response_with(std::size_t body_bytes,
                             const std::string& cache_control,
                             const std::string& etag = "") {
  http::Response resp = http::Response::make(http::Status::Ok);
  resp.body = std::string(body_bytes, 'x');
  resp.headers.set(http::kCacheControl, cache_control);
  if (!etag.empty()) resp.headers.set(http::kEtagHeader, etag);
  return resp;
}

cache::CacheEntry entry_with(std::size_t body_bytes,
                             const std::string& cache_control = "max-age=60",
                             const std::string& etag = "\"f\"",
                             TimePoint stored_at = TimePoint{}) {
  cache::CacheEntry entry;
  entry.response = response_with(body_bytes, cache_control, etag);
  entry.request_time = stored_at;
  entry.response_time = stored_at;
  return entry;
}

FlashConfig small_flash(ByteCount capacity = KiB(16)) {
  FlashConfig config;
  config.capacity = capacity;  // segment auto-clamps to capacity/4
  return config;
}

TEST(FlashTierTest, PutGetEraseAccountLiveAndLogBytes) {
  FlashTier tier(small_flash(MiB(1)));
  ASSERT_TRUE(tier.put("a", entry_with(1000)));
  ASSERT_TRUE(tier.put("b", entry_with(1000)));
  EXPECT_EQ(tier.entry_count(), 2u);
  EXPECT_TRUE(tier.contains("a"));
  ASSERT_NE(tier.get("a"), nullptr);
  EXPECT_EQ(tier.peek("a")->response.body.size(), 1000u);
  EXPECT_EQ(tier.live_bytes(), tier.log_bytes());

  // Erase marks the record dead in place: the index forgets it but the
  // log keeps its bytes until GC reclaims the segment.
  const ByteCount log_before = tier.log_bytes();
  EXPECT_TRUE(tier.erase("a"));
  EXPECT_FALSE(tier.contains("a"));
  EXPECT_EQ(tier.get("a"), nullptr);
  EXPECT_EQ(tier.entry_count(), 1u);
  EXPECT_LT(tier.live_bytes(), log_before);
  EXPECT_EQ(tier.log_bytes(), log_before);
  EXPECT_FALSE(tier.erase("a"));  // already dead
}

TEST(FlashTierTest, PutSupersedesDeadInPlace) {
  FlashTier tier(small_flash(MiB(1)));
  ASSERT_TRUE(tier.put("k", entry_with(1000)));
  const ByteCount log_one = tier.log_bytes();
  ASSERT_TRUE(tier.put("k", entry_with(2000)));
  EXPECT_EQ(tier.entry_count(), 1u);
  EXPECT_EQ(tier.stats().superseded, 1u);
  EXPECT_EQ(tier.peek("k")->response.body.size(), 2000u);
  // Log caches never update in place: the old record's bytes stay on the
  // log, only the new record counts as live.
  EXPECT_GT(tier.log_bytes(), log_one);
  EXPECT_LT(tier.live_bytes(), tier.log_bytes());
}

TEST(FlashTierTest, RejectsEntryLargerThanCapacity) {
  FlashTier tier(small_flash(KiB(16)));
  EXPECT_FALSE(tier.put("huge", entry_with(64 * 1024)));
  EXPECT_EQ(tier.entry_count(), 0u);
  EXPECT_EQ(tier.stats().stores, 0u);
}

TEST(FlashTierTest, GcSalvagesReferencedRecordsAndAmplifiesWrites) {
  FlashTier tier(small_flash(KiB(16)));
  ASSERT_TRUE(tier.put("hot", entry_with(1000)));
  // Fill past capacity with one-touch records, re-referencing "hot" so
  // every GC round salvages it instead of evicting it.
  for (int i = 0; i < 40; ++i) {
    ASSERT_NE(tier.get("hot"), nullptr) << "lost at record " << i;
    ASSERT_TRUE(tier.put("cold-" + std::to_string(i), entry_with(1000)));
  }
  EXPECT_LE(tier.log_bytes(), tier.capacity());
  EXPECT_TRUE(tier.contains("hot"));

  const FlashStats& stats = tier.stats();
  EXPECT_GT(stats.gc_segments, 0u);
  EXPECT_GT(stats.gc_rewrites, 0u);   // "hot" was salvaged at least once
  EXPECT_GT(stats.evictions, 0u);     // unreferenced cold records died
  // Salvages are device writes with no host write behind them.
  EXPECT_GT(stats.device_bytes_written, stats.host_bytes_written);
  EXPECT_GT(stats.write_amp(), 1.0);
}

// ---- EdgePop two-tier data path ----

EdgeConfig two_tier_config(bool tinylfu = false) {
  EdgeConfig config;
  config.capacity = 8 * 1024;  // fits roughly three ~2 KiB entries
  config.tinylfu_admission = tinylfu;
  config.flash.capacity = MiB(1);
  return config;
}

TEST(EdgePopFlashTest, RamEvictionDemotesVictimToFlash) {
  EdgePop pop(two_tier_config());
  const TimePoint t0{};
  ASSERT_TRUE(pop.flash_enabled());

  for (int i = 0; i < 6; ++i) {
    const std::string key = "origin/asset-" + std::to_string(i);
    pop.note_request(key);
    ASSERT_TRUE(pop.admit_and_store(
        key, response_with(2000, "max-age=60", "\"e\""), t0, t0));
  }
  const EdgePopStats stats = pop.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.flash_demotions, stats.evictions);
  EXPECT_EQ(stats.flash_stores, stats.flash_demotions);
  EXPECT_GT(stats.flash_host_bytes, 0u);

  // The early victims now live in flash — and ONLY in flash (tier
  // exclusivity): anything still in RAM must be absent from the log.
  EXPECT_TRUE(pop.flash_has("origin/asset-0"));
  EXPECT_GT(pop.flash_entry_cost("origin/asset-0"), 0u);
  for (int i = 0; i < 6; ++i) {
    const std::string key = "origin/asset-" + std::to_string(i);
    EXPECT_NE(pop.store().contains(key), pop.flash_has(key)) << key;
  }
}

TEST(EdgePopFlashTest, FreshFlashReadPromotesToRam) {
  EdgePop pop(two_tier_config());
  const TimePoint t0{};
  ASSERT_TRUE(pop.flash()->put("origin/warm.js", entry_with(2000)));

  const FlashReadResult rr =
      pop.complete_flash_read("origin/warm.js", t0, /*aio=*/nullptr);
  EXPECT_EQ(rr.outcome, FlashReadOutcome::Fresh);
  ASSERT_NE(rr.entry, nullptr);
  EXPECT_EQ(rr.entry->response.body.size(), 2000u);

  // Promoted: the next lookup is a plain RAM hit, the flash copy is gone.
  EXPECT_EQ(pop.lookup("origin/warm.js", t0).decision,
            EdgeLookupDecision::Fresh);
  EXPECT_FALSE(pop.flash_has("origin/warm.js"));
  EXPECT_EQ(pop.stats().flash_promotions, 1u);
}

TEST(EdgePopFlashTest, TinyLfuVetoServesFromFlashWithoutPromoting) {
  EdgePop pop(two_tier_config(/*tinylfu=*/true));
  const TimePoint t0{};

  // Fill RAM with objects the admission filter has seen repeatedly.
  for (int i = 0; i < 3; ++i) {
    const std::string key = "origin/hot-" + std::to_string(i);
    for (int r = 0; r < 5; ++r) pop.note_request(key);
    ASSERT_TRUE(pop.admit_and_store(
        key, response_with(2000, "max-age=60", "\"h\""), t0, t0));
  }
  // A flash record the filter has never heard of cannot displace them.
  ASSERT_TRUE(pop.flash()->put("origin/cold.js", entry_with(2000)));

  const FlashReadResult rr =
      pop.complete_flash_read("origin/cold.js", t0, /*aio=*/nullptr);
  EXPECT_EQ(rr.outcome, FlashReadOutcome::Fresh);
  ASSERT_NE(rr.entry, nullptr);  // bytes still get served — from flash
  EXPECT_TRUE(pop.flash_has("origin/cold.js"));
  EXPECT_EQ(pop.lookup("origin/cold.js", t0).decision,
            EdgeLookupDecision::Miss);
  const EdgePopStats stats = pop.stats();
  EXPECT_EQ(stats.flash_promotions, 0u);
  EXPECT_EQ(stats.flash_promotion_rejects, 1u);
  // The RAM residents survived the attempted promotion.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(pop.store().contains("origin/hot-" + std::to_string(i)));
  }
}

TEST(EdgePopFlashTest, ExpiredValidatableFlashRecordIsStale) {
  EdgePop pop(two_tier_config());
  const TimePoint t0{};
  ASSERT_TRUE(pop.flash()->put(
      "origin/old.css", entry_with(1500, "max-age=60", "\"v1\"", t0)));

  const FlashReadResult rr =
      pop.complete_flash_read("origin/old.css", t0 + hours(1), nullptr);
  EXPECT_EQ(rr.outcome, FlashReadOutcome::Stale);
  ASSERT_NE(rr.entry, nullptr);  // validators ride the conditional GET
  EXPECT_TRUE(pop.flash_has("origin/old.css"));  // kept pending the 304
}

TEST(EdgePopFlashTest, ExpiredUnvalidatableFlashRecordIsDropped) {
  EdgePop pop(two_tier_config());
  const TimePoint t0{};
  ASSERT_TRUE(pop.flash()->put(
      "origin/junk.bin", entry_with(1500, "max-age=60", /*etag=*/"", t0)));

  const FlashReadResult rr =
      pop.complete_flash_read("origin/junk.bin", t0 + hours(1), nullptr);
  EXPECT_EQ(rr.outcome, FlashReadOutcome::Miss);
  // Expired with nothing to revalidate: dead weight, erased from the log.
  EXPECT_FALSE(pop.flash_has("origin/junk.bin"));
}

TEST(EdgePopFlashTest, AbsentRecordCompletesAsGone) {
  EdgePop pop(two_tier_config());
  const FlashReadResult rr =
      pop.complete_flash_read("origin/nope.js", TimePoint{}, nullptr);
  EXPECT_EQ(rr.outcome, FlashReadOutcome::Gone);
  EXPECT_EQ(rr.entry, nullptr);
}

TEST(EdgePopFlashTest, RefreshNotModifiedReachesFlashRecords) {
  EdgePop pop(two_tier_config());
  const TimePoint t0{};
  ASSERT_TRUE(pop.flash()->put(
      "origin/page.html", entry_with(1500, "max-age=60", "\"v1\"", t0)));

  http::Response not_modified = http::Response::make(http::Status::NotModified);
  not_modified.headers.set(http::kEtagHeader, "\"v2\"");
  not_modified.headers.set(http::kCacheControl, "max-age=120");
  cache::CacheEntry* refreshed = pop.refresh_not_modified(
      "origin/page.html", not_modified, t0 + hours(1), t0 + hours(1));
  ASSERT_NE(refreshed, nullptr);
  EXPECT_EQ(refreshed->etag()->value, "v2");
  // Refreshed in place on flash: now fresh again for a later read.
  const FlashReadResult rr =
      pop.complete_flash_read("origin/page.html", t0 + hours(1), nullptr);
  EXPECT_EQ(rr.outcome, FlashReadOutcome::Fresh);
}

TEST(EdgePopFlashTest, DisabledFlashKeepsPopInert) {
  EdgePop pop(EdgeConfig{});  // flash.capacity == 0
  EXPECT_FALSE(pop.flash_enabled());
  EXPECT_EQ(pop.flash(), nullptr);
  EXPECT_FALSE(pop.flash_has("anything"));
  EXPECT_EQ(pop.flash_entry_cost("anything"), 0u);
  EXPECT_EQ(pop.complete_flash_read("anything", TimePoint{}, nullptr).outcome,
            FlashReadOutcome::Gone);
  const EdgePopStats stats = pop.stats();
  EXPECT_EQ(stats.flash_demotions, 0u);
  EXPECT_EQ(stats.flash_stores, 0u);
  EXPECT_EQ(stats.aio.reads, 0u);
}

}  // namespace
}  // namespace catalyst::edge
