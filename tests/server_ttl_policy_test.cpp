#include "server/ttl_policy.h"

#include <gtest/gtest.h>

namespace catalyst::server {
namespace {

TEST(TtlPolicyTest, DegenerateProfiles) {
  Rng rng(1);
  EXPECT_TRUE(assign_cache_policy(TtlProfile::NeverCache,
                                  http::ResourceClass::Css, hours(1), rng)
                  .no_store);
  EXPECT_TRUE(assign_cache_policy(TtlProfile::AlwaysRevalidate,
                                  http::ResourceClass::Css, hours(1), rng)
                  .no_cache);
}

TEST(TtlPolicyTest, ConservativeCmsHtmlNeverGetsTtl) {
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto cc = assign_cache_policy(TtlProfile::ConservativeCms,
                                        http::ResourceClass::Html,
                                        hours(6), rng);
    EXPECT_TRUE(cc.no_cache || cc.no_store);
    EXPECT_FALSE(cc.max_age.has_value());
  }
}

TEST(TtlPolicyTest, ConservativeCmsMixForStaticClasses) {
  Rng rng(3);
  int no_store = 0, no_cache = 0, short_ttl = 0, longer_ttl = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto cc = assign_cache_policy(TtlProfile::ConservativeCms,
                                        http::ResourceClass::Css,
                                        days(20), rng);
    if (cc.no_store) {
      ++no_store;
    } else if (cc.no_cache) {
      ++no_cache;
    } else if (cc.max_age && *cc.max_age < hours(24)) {
      ++short_ttl;
    } else {
      ++longer_ttl;
    }
  }
  // The calibrated mix: ~5% no-store (css), ~30% no-cache, ~40% short
  // TTLs, remainder >= 1 day.
  EXPECT_NEAR(no_store / double(n), 0.05, 0.02);
  EXPECT_NEAR(no_cache / double(n), 0.30, 0.03);
  EXPECT_NEAR(short_ttl / double(n), 0.26, 0.03);
  EXPECT_GT(longer_ttl, 0);
}

TEST(TtlPolicyTest, NoStoreSkewsTowardImages) {
  Rng rng(4);
  const int n = 5000;
  int img_no_store = 0, font_no_store = 0;
  for (int i = 0; i < n; ++i) {
    if (assign_cache_policy(TtlProfile::ConservativeCms,
                            http::ResourceClass::Image, days(20), rng)
            .no_store) {
      ++img_no_store;
    }
    if (assign_cache_policy(TtlProfile::ConservativeCms,
                            http::ResourceClass::Font, days(20), rng)
            .no_store) {
      ++font_no_store;
    }
  }
  EXPECT_GT(img_no_store, 4 * font_no_store);
}

TEST(TtlPolicyTest, DeveloperTunedTracksChangeInterval) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto cc = assign_cache_policy(TtlProfile::DeveloperTuned,
                                        http::ResourceClass::Script,
                                        days(10), rng);
    ASSERT_TRUE(cc.max_age);
    // Hedged to 25-75% of the true mean interval.
    EXPECT_GE(*cc.max_age, days(10) / 4 - seconds(1));
    EXPECT_LE(*cc.max_age, days(10) * 3 / 4 + seconds(1));
  }
}

TEST(TtlPolicyTest, DeveloperTunedImmutableGetsLongTtl) {
  Rng rng(6);
  const auto cc = assign_cache_policy(TtlProfile::DeveloperTuned,
                                      http::ResourceClass::Font,
                                      Duration::zero(), rng);
  EXPECT_TRUE(cc.immutable);
  ASSERT_TRUE(cc.max_age);
  EXPECT_EQ(*cc.max_age, days(365));
}

TEST(TtlPolicyTest, Names) {
  EXPECT_EQ(to_string(TtlProfile::ConservativeCms), "conservative-cms");
  EXPECT_EQ(to_string(TtlProfile::DeveloperTuned), "developer-tuned");
}

}  // namespace
}  // namespace catalyst::server
