// Flash-enabled fleet invariants: the two-tier edge report stays
// bit-identical across thread counts, flash-off runs keep their exact
// RAM-only byte layout, and per-tier accounting balances — every edge
// request resolves as exactly one of hit / flash hit / revalidated / miss.
#include <gtest/gtest.h>

#include <string>

#include "fleet/runner.h"

namespace catalyst::fleet {
namespace {

FleetParams flash_fleet() {
  FleetParams params;
  params.shard_size = 4;
  params.user_model.site_catalog_size = 8;
  params.user_model.horizon = days(2);
  params.user_model.mean_visit_gap = hours(12);
  params.user_model.max_visits = 3;
  params.edge.pops = 2;
  // RAM small enough to evict constantly: demotions feed the flash tier.
  params.edge.capacity = MiB(1);
  params.edge.flash_capacity = MiB(8);
  return params;
}

constexpr std::uint64_t kUsers = 24;

std::string run_fleet(FleetParams params, int threads) {
  return FleetRunner(std::move(params), kUsers, threads).run().serialize();
}

TEST(EdgeFlashFleetTest, ThreadCountDoesNotChangeFlashReportBytes) {
  const std::string one = run_fleet(flash_fleet(), 1);
  EXPECT_EQ(run_fleet(flash_fleet(), 8), one);
  // Rerunning is stable, not just coincidentally equal.
  EXPECT_EQ(run_fleet(flash_fleet(), 1), one);
}

TEST(EdgeFlashFleetTest, FlashSectionOnlyExistsWhenEnabled) {
  FleetParams ram_only = flash_fleet();
  ram_only.edge.flash_capacity = 0;
  const std::string off = run_fleet(ram_only, 1);
  EXPECT_EQ(off.find("\"flash\""), std::string::npos);

  const std::string on = run_fleet(flash_fleet(), 1);
  EXPECT_NE(on.find("\"flash\""), std::string::npos);
  EXPECT_NE(on, off);
}

TEST(EdgeFlashFleetTest, TwoTierAccountingBalances) {
  FleetRunner runner(flash_fleet(), kUsers, 2);
  const FleetReport report = runner.run();

  ASSERT_EQ(report.edge_pops.size(), 2u);
  EdgePopReport total;
  for (const auto& [pop, stats] : report.edge_pops) {
    total.merge(stats);
  }
  EXPECT_TRUE(total.flash_enabled);
  EXPECT_GT(total.requests, 0u);
  // Every request resolves as exactly one outcome across both tiers.
  EXPECT_EQ(total.requests, total.hits + total.flash_hits +
                                total.revalidated_hits + total.misses);
  // The flash tier actually ran: the tiny RAM store demoted victims, and
  // every promotion back started as a demotion.
  EXPECT_GT(total.flash_demotions, 0u);
  EXPECT_EQ(total.flash_stores, total.flash_demotions);
  EXPECT_LE(total.flash_promotions, total.flash_demotions);
  // Device-queue accounting: each flash hit or coalesced join traces back
  // to a submitted read; merges never exceed submissions.
  EXPECT_GT(total.aio_writes, 0u);
  EXPECT_GE(total.flash_write_amp(), 1.0);
}

}  // namespace
}  // namespace catalyst::fleet
