#include "fleet/report.h"

#include <gtest/gtest.h>

namespace catalyst::fleet {
namespace {

FleetReport sample_report(double plt_base) {
  FleetReport r;
  r.users = 2;
  r.visits = 5;
  r.revisits = 3;
  r.counters = CacheCounters{10, 5, 3, 20, 0, 1};
  r.bytes_on_wire = 1000;
  r.baseline_bytes_on_wire = 1500;
  r.rtts = 40;
  r.baseline_rtts = 90;
  r.plt_ms.add(plt_base);
  r.plt_ms.add(plt_base + 10.0);
  r.plt_reduction_pct.add(25.0);
  r.per_user_plt_reduction_pct.add(25.0);
  r.per_user_hit_rate_pct.add(80.0);
  return r;
}

TEST(FleetReportTest, SavedDeltasCanGoNegative) {
  FleetReport r;
  r.rtts = 100;
  r.baseline_rtts = 60;
  r.bytes_on_wire = 500;
  r.baseline_bytes_on_wire = 200;
  EXPECT_EQ(r.rtts_saved(), -40);
  EXPECT_EQ(r.bytes_saved(), -300);
}

TEST(FleetReportTest, MergeOfSplitsEqualsSingleAccumulation) {
  FleetReport whole = sample_report(100.0);
  whole.merge(sample_report(200.0));

  FleetReport again = sample_report(100.0);
  FleetReport other = sample_report(200.0);
  again.merge(other);

  EXPECT_EQ(again.serialize(), whole.serialize());
  EXPECT_EQ(again.users, 4u);
  EXPECT_EQ(again.visits, 10u);
  EXPECT_EQ(again.counters.total(), 2u * (10 + 5 + 3 + 20));
  EXPECT_EQ(again.rtts_saved(), 100);
  EXPECT_EQ(again.plt_ms.count(), 4u);
}

TEST(FleetReportTest, MergeIsAssociative) {
  // The runner folds shard reports incrementally as they complete:
  // ((a+b)+c) must equal (a+(b+c)) byte-for-byte, or the streaming merge
  // would leak scheduling into the report.
  FleetReport a = sample_report(100.0);
  FleetReport b = sample_report(200.0);
  FleetReport c = sample_report(300.0);
  a.parking = ParkStats{3, 2, 1, 40, 1000};
  b.parking = ParkStats{5, 5, 0, 10, 9000};
  c.parking = ParkStats{0, 1, 0, 60, 500};

  FleetReport left = a;  // ((a+b)+c)
  left.merge(b);
  left.merge(c);

  FleetReport bc = b;  // (a+(b+c))
  bc.merge(c);
  FleetReport right = a;
  right.merge(bc);

  EXPECT_EQ(left.serialize(), right.serialize());
  EXPECT_EQ(left.users, right.users);
  EXPECT_EQ(left.plt_ms.count(), right.plt_ms.count());
  EXPECT_EQ(left.parking.parks, right.parking.parks);
  EXPECT_EQ(left.parking.live_users_peak, right.parking.live_users_peak);
  EXPECT_EQ(left.parking.parked_bytes_peak, right.parking.parked_bytes_peak);
}

TEST(FleetReportTest, ParkStatsMergeSumsCountsAndMaxesPeaks) {
  ParkStats a{3, 2, 1, 40, 1000};
  a.merge(ParkStats{5, 5, 0, 10, 9000});
  EXPECT_EQ(a.parks, 8u);
  EXPECT_EQ(a.revives, 7u);
  EXPECT_EQ(a.corrupt_revivals, 1u);
  EXPECT_EQ(a.live_users_peak, 40u);   // max, not sum: peaks are per-shard
  EXPECT_EQ(a.parked_bytes_peak, 9000u);
  EXPECT_TRUE(a.any());
  EXPECT_FALSE(ParkStats{}.any());
}

TEST(FleetReportTest, ParkStatsNeverSerialized) {
  // Streaming report bytes must be identical to the legacy engine's for
  // any arena size, so parking telemetry (like prof/events_executed)
  // stays out of serialize() — fleetsim prints it to stderr instead.
  FleetReport plain = sample_report(100.0);
  FleetReport parked = sample_report(100.0);
  parked.parking = ParkStats{100, 100, 2, 512, 1 << 20};
  EXPECT_EQ(plain.serialize(), parked.serialize());
}

TEST(FleetReportTest, MergeIsOrderSensitiveInSampleOrderOnly) {
  // a.merge(b) and b.merge(a) hold the same multiset of samples — every
  // aggregate agrees — but the canonical byte-stable serialization is
  // defined by merge order, which is why the runner merges by shard index.
  FleetReport ab = sample_report(100.0);
  ab.merge(sample_report(200.0));
  FleetReport ba = sample_report(200.0);
  ba.merge(sample_report(100.0));
  EXPECT_DOUBLE_EQ(ab.plt_ms.median(), ba.plt_ms.median());
  EXPECT_DOUBLE_EQ(ab.plt_ms.sum(), ba.plt_ms.sum());
}

TEST(FleetReportTest, SerializeIsStableAndParseable) {
  const FleetReport r = sample_report(100.0);
  const std::string s1 = r.serialize();
  const std::string s2 = r.serialize();
  EXPECT_EQ(s1, s2);

  const auto parsed = Json::parse(s1);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->find("users")->as_number(), 2.0);
  EXPECT_EQ(parsed->find("rtts_saved")->as_number(), 50.0);
  const Json* plt = parsed->find("revisit_plt_ms");
  ASSERT_NE(plt, nullptr);
  EXPECT_EQ(plt->find("count")->as_number(), 2.0);
  EXPECT_EQ(plt->find("p50")->as_number(), 105.0);
}

TEST(FleetReportTest, EmptySummariesSerializeWithoutStats) {
  const FleetReport r;  // no baseline run, no samples anywhere
  const auto parsed = Json::parse(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  const Json* reduction = parsed->find("plt_reduction_pct");
  ASSERT_NE(reduction, nullptr);
  EXPECT_EQ(reduction->find("count")->as_number(), 0.0);
  EXPECT_EQ(reduction->find("mean"), nullptr);
}

TEST(FleetReportTest, RenderTableMentionsKeyRows) {
  const std::string table = sample_report(100.0).render_table("t");
  EXPECT_NE(table.find("users"), std::string::npos);
  EXPECT_NE(table.find("rtts saved vs baseline"), std::string::npos);
  EXPECT_NE(table.find("per-user hit rate"), std::string::npos);
}

}  // namespace
}  // namespace catalyst::fleet
