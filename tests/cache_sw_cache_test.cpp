#include "cache/sw_cache.h"

#include <gtest/gtest.h>

namespace catalyst::cache {
namespace {

using http::Etag;
using http::Response;
using http::Status;

Response response_with_etag(const std::string& etag,
                            const std::string& cache_control = "") {
  Response resp = Response::make(Status::Ok);
  resp.body = "payload-" + etag;
  resp.headers.set(http::kEtagHeader, "\"" + etag + "\"");
  if (!cache_control.empty()) {
    resp.headers.set(http::kCacheControl, cache_control);
  }
  resp.finalize(TimePoint{});
  return resp;
}

TEST(SwCacheTest, MatchRequiresEqualEtag) {
  SwCache cache;
  ASSERT_TRUE(cache.put("/a.css", response_with_etag("v1")));
  const Response* hit = cache.match("/a.css", Etag{"v1", false});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->body, "payload-v1");
  EXPECT_EQ(cache.stats().hits, 1u);

  EXPECT_EQ(cache.match("/a.css", Etag{"v2", false}), nullptr);
  EXPECT_EQ(cache.stats().etag_mismatches, 1u);
}

TEST(SwCacheTest, WeakComparisonUsed) {
  SwCache cache;
  cache.put("/a", response_with_etag("v1"));
  EXPECT_NE(cache.match("/a", Etag{"v1", true}), nullptr);
}

TEST(SwCacheTest, MissOnUnknownPath) {
  SwCache cache;
  EXPECT_EQ(cache.match("/nope", Etag{"v", false}), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SwCacheTest, NoStoreRespected) {
  SwCache cache;
  EXPECT_FALSE(cache.put("/secret", response_with_etag("v1", "no-store")));
  EXPECT_FALSE(cache.contains("/secret"));
  EXPECT_EQ(cache.stats().rejected_no_store, 1u);
}

TEST(SwCacheTest, NoCacheIsStoredAnyway) {
  // The paper's point: no-cache resources are cacheable; the map decides
  // validity, not the TTL headers.
  SwCache cache;
  EXPECT_TRUE(cache.put("/nc", response_with_etag("v1", "no-cache")));
  EXPECT_NE(cache.match("/nc", Etag{"v1", false}), nullptr);
}

TEST(SwCacheTest, ResponseWithoutEtagRejected) {
  SwCache cache;
  Response resp = Response::make(Status::Ok);
  resp.body = "x";
  EXPECT_FALSE(cache.put("/no-etag", std::move(resp)));
}

TEST(SwCacheTest, PutReplacesVersion) {
  SwCache cache;
  cache.put("/a", response_with_etag("v1"));
  cache.put("/a", response_with_etag("v2"));
  EXPECT_EQ(cache.match("/a", Etag{"v1", false}), nullptr);
  EXPECT_NE(cache.match("/a", Etag{"v2", false}), nullptr);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(SwCacheTest, StoredEtagAccessor) {
  SwCache cache;
  cache.put("/a", response_with_etag("v7"));
  const auto etag = cache.stored_etag("/a");
  ASSERT_TRUE(etag);
  EXPECT_EQ(etag->value, "v7");
  EXPECT_FALSE(cache.stored_etag("/missing"));
}

TEST(SwCacheTest, EntriesNeverExpireByTime) {
  // No TTL: a year-old entry still matches if the ETag agrees.
  SwCache cache;
  cache.put("/old", response_with_etag("v1"));
  EXPECT_NE(cache.match("/old", Etag{"v1", false}), nullptr);
}

}  // namespace
}  // namespace catalyst::cache
