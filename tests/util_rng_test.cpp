#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace catalyst {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(10);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_int(8, 3), std::invalid_argument);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  Rng rng(15);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, ParetoBoundedBelowByScale) {
  Rng rng(16);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
  }
}

TEST(RngTest, LognormalPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, WeightedIndexRespectsZeros) {
  Rng rng(18);
  const std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) {
    const std::size_t idx = rng.weighted_index(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(weights) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedIndexRejectsAllZero) {
  Rng rng(20);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(21);
  Rng a = parent.fork(1);
  Rng b = parent.fork(1);
  Rng c = parent.fork(2);
  EXPECT_EQ(a.next_u64(), b.next_u64());  // same stream: identical
  Rng a2 = parent.fork(1);
  EXPECT_NE(a2.next_u64(), c.next_u64());  // different streams diverge
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng p1(22), p2(22);
  (void)p1.fork(5);
  EXPECT_EQ(p1.next_u64(), p2.next_u64());
}

}  // namespace
}  // namespace catalyst
