#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace catalyst {
namespace {

TEST(FlatHashMap, InsertFindErase) {
  FlatHashMap<std::uint32_t, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.insert_or_assign(7, "seven"));
  EXPECT_FALSE(m.insert_or_assign(7, "SEVEN"));  // overwrite, not insert
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), "SEVEN");
  EXPECT_EQ(m.find(8), nullptr);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST(FlatHashMap, SubscriptDefaultConstructs) {
  FlatHashMap<std::uint32_t, std::uint64_t> m;
  EXPECT_EQ(m[42], 0u);
  m[42] += 5;
  EXPECT_EQ(m[42], 5u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMap, SurvivesGrowthAndMatchesStdMap) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> ref;
  std::mt19937_64 rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng() % 4096;
    switch (rng() % 3) {
      case 0:
        m.insert_or_assign(k, static_cast<std::uint64_t>(i));
        ref[k] = static_cast<std::uint64_t>(i);
        break;
      case 1: {
        const bool erased_flat = m.erase(k);
        const bool erased_ref = ref.erase(k) > 0;
        EXPECT_EQ(erased_flat, erased_ref);
        break;
      }
      default: {
        const auto* v = m.find(k);
        const auto it = ref.find(k);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v != nullptr) EXPECT_EQ(*v, it->second);
      }
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  std::size_t visited = 0;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ++visited;
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatHashMap, TombstoneChurnDoesNotGrowUnbounded) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  // Insert/erase the same small working set far more times than any
  // reasonable capacity: tombstone recycling must keep the table small.
  for (std::uint64_t round = 0; round < 10000; ++round) {
    for (std::uint64_t k = 0; k < 8; ++k) m.insert_or_assign(k, round);
    for (std::uint64_t k = 0; k < 8; ++k) m.erase(k);
  }
  EXPECT_TRUE(m.empty());
  EXPECT_LE(m.capacity(), 64u);
}

TEST(FlatHashMap, ReserveAvoidsRehash) {
  FlatHashMap<std::uint32_t, std::uint32_t> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  for (std::uint32_t i = 0; i < 1000; ++i) m.insert_or_assign(i, i);
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatHashMap, StringKeysWork) {
  FlatHashMap<std::string, int> m;
  m.insert_or_assign("/index.html", 1);
  m.insert_or_assign("/app.js", 2);
  ASSERT_NE(m.find("/index.html"), nullptr);
  EXPECT_EQ(*m.find("/index.html"), 1);
  EXPECT_FALSE(m.contains("/missing"));
}

TEST(FlatHashMap, ClearReleasesEntries) {
  FlatHashMap<int, std::string> m;
  for (int i = 0; i < 100; ++i) m.insert_or_assign(i, "v");
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(5), nullptr);
  m.insert_or_assign(5, "again");
  EXPECT_EQ(m.size(), 1u);
}

}  // namespace
}  // namespace catalyst
