// Deterministic cache adversary: a scripted attacker client parked on the
// testbed network that (a) tries to poison the shared edge tier through
// requests carrying unkeyed input (X-Forwarded-Host, which a vulnerable
// origin reflects into bodies — the classic unkeyed-header poisoning of
// web-cache-poisoning literature), and (b) runs timing probes that infer
// cache occupancy from response latency (an edge PoP shared across users
// is a cross-user side channel).
//
// The adversary is measurement/attack traffic only: whether a strike
// *lands* depends entirely on the defenses under test (edge cache keying,
// origin reflection) — the module itself never touches cache state.
// Everything it does is driven by its own seeded RNG stream, so
// adversary-off runs are byte-identical and adversary-on runs replay
// exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "edge/pop.h"
#include "netsim/transport.h"
#include "util/rng.h"

namespace catalyst::workload {

struct AdversaryParams {
  bool enabled = false;
  std::uint64_t seed = 0xadba5e;

  /// Poisoning requests per strike, each carrying an X-Forwarded-Host
  /// payload. The first always targets the page entry point (the serve a
  /// victim is guaranteed to consume); the rest pick random site paths.
  int requests_per_strike = 4;

  /// Fraction of poisoning payloads that self-identify as a user
  /// ("uid:attacker-N" — the confidentiality probe the oracle classifies
  /// as cross-user-leak); the rest carry a host payload ("evil.example",
  /// classified as poisoned-serve).
  double leak_payload_fraction = 0.5;

  /// Plain timing probes per strike (no payload): each is classified
  /// hit/miss by elapsed virtual time against `probe_hit_threshold`.
  int timing_probes_per_strike = 2;

  /// Latency below which a probe response is counted as a cache hit.
  /// Zero = auto: the testbed fills in 3×(attacker-PoP RTT) + half the
  /// PoP-origin RTT (handshake + exchange vs. the extra origin leg).
  Duration probe_hit_threshold = Duration::zero();
};

struct AdversaryStats {
  std::uint64_t strikes = 0;
  std::uint64_t requests = 0;    // poisoning requests sent
  std::uint64_t probes = 0;      // timing probes sent
  std::uint64_t probe_hits = 0;  // probes classified as cache hits
  std::uint64_t responses = 0;   // any response received
  std::uint64_t reflected = 0;   // responses echoing our own payload back
};

class Adversary {
 public:
  /// Network host name the adversary connects from (registered by the
  /// testbed, parked close to the PoP).
  static constexpr const char* kHost = "attacker";

  /// `target_paths` must be non-empty; index 0 is the page entry point.
  /// The PoP reference is for attack telemetry only (note_adversary_*).
  Adversary(netsim::Network& network, edge::EdgePop& pop,
            std::vector<std::string> target_paths, AdversaryParams params);

  /// Fires one strike: poisoning requests issued at the current virtual
  /// time, then timing probes once every poison response has landed (a
  /// probe measures whether the *poisoned* entry is resident — and firing
  /// it concurrently would race the poison for the coalesced fill).
  /// Callers drain the event loop; responses update stats as they arrive.
  void strike();

  const AdversaryStats& stats() const { return stats_; }
  const AdversaryParams& params() const { return params_; }

 private:
  void send_poison(const std::string& path, const std::string& payload);
  void send_probe(const std::string& path);
  void flush_probes();
  netsim::Connection& fresh_connection();

  netsim::Network& network_;
  edge::EdgePop& pop_;
  std::vector<std::string> paths_;
  AdversaryParams params_;
  Rng rng_;
  AdversaryStats stats_;
  // Probe paths drawn at strike time (fixed draw order) but sent only
  // after the strike's poison responses return.
  int pending_poisons_ = 0;
  std::vector<std::string> queued_probes_;
  // One connection per request: probe latency must not include another
  // request's H1 queueing. Kept alive for the adversary's lifetime so
  // in-flight callbacks never dangle.
  std::vector<std::unique_ptr<netsim::Connection>> connections_;
};

}  // namespace catalyst::workload
