// Calibrated distributions for synthetic page composition.
//
// Targets (httparchive "State of the Web" 2024, cited by the paper §2.2):
// pages carry on the order of a hundred resources totalling ~2.5 MB, with
// KB-scale medians and heavy upper tails — small enough that download time
// is comparable to an RTT, which is the regime the paper's argument needs.
#pragma once

#include "http/mime.h"
#include "util/rng.h"
#include "util/types.h"

namespace catalyst::workload {

/// Draws a resource body size for a class (lognormal with class-specific
/// location/shape, clamped to sane bounds).
ByteCount draw_size(http::ResourceClass resource_class, Rng& rng);

/// Draws the mean content-change interval for a class. Duration::zero()
/// means the resource effectively never changes (versioned assets).
Duration draw_change_interval(http::ResourceClass resource_class, Rng& rng);

}  // namespace catalyst::workload
