// Calibrated distributions for synthetic page composition.
//
// Targets (httparchive "State of the Web" 2024, cited by the paper §2.2):
// pages carry on the order of a hundred resources totalling ~2.5 MB, with
// KB-scale medians and heavy upper tails — small enough that download time
// is comparable to an RTT, which is the regime the paper's argument needs.
#pragma once

#include "http/mime.h"
#include "util/rng.h"
#include "util/types.h"

namespace catalyst::workload {

/// Draws a resource body size for a class (lognormal with class-specific
/// location/shape, clamped to sane bounds).
ByteCount draw_size(http::ResourceClass resource_class, Rng& rng);

/// Draws the mean content-change interval for a class. Duration::zero()
/// means the resource effectively never changes (versioned assets).
Duration draw_change_interval(http::ResourceClass resource_class, Rng& rng);

/// Zipf-distributed popularity rank in [0, n): P(k) ∝ 1/(k+1)^s. Rank 0 is
/// the most popular item. Site-visit frequency across a user population is
/// classically Zipfian; `s` near 0.9 matches web-trace fits. O(n) per draw
/// by CDF inversion — fine for catalog-sized n. Requires n > 0.
std::size_t draw_zipf_rank(std::size_t n, double s, Rng& rng);

/// Draws one inter-visit gap for a user whose visits form a Poisson
/// process with the given mean gap (⇒ exponential gaps), floored at one
/// minute so that a revisit never lands inside the previous page load.
/// Requires mean_gap > 0.
Duration draw_visit_gap(Duration mean_gap, Rng& rng);

}  // namespace catalyst::workload
