#include "workload/profiles.h"

namespace catalyst::workload {

std::string_view to_string(PageArchetype archetype) {
  switch (archetype) {
    case PageArchetype::News:
      return "news";
    case PageArchetype::Commerce:
      return "commerce";
    case PageArchetype::Video:
      return "video";
    case PageArchetype::SocialApp:
      return "social-app";
    case PageArchetype::Docs:
      return "docs";
  }
  return "?";
}

PageComposition composition_for(PageArchetype archetype) {
  switch (archetype) {
    case PageArchetype::News:
      // Image- and ad-script-heavy.
      return PageComposition{3, 6, 12, 24, 35, 70, 2, 4, 3, 8, 2, 0.35};
    case PageArchetype::Commerce:
      return PageComposition{3, 5, 10, 20, 25, 55, 2, 3, 3, 6, 2, 0.30};
    case PageArchetype::Video:
      // Fewer images, heavier scripts and dynamic JSON.
      return PageComposition{2, 4, 10, 18, 10, 25, 1, 2, 4, 9, 3, 0.40};
    case PageArchetype::SocialApp:
      // App shell: scripts dominate, long JS chains.
      return PageComposition{1, 3, 14, 28, 8, 20, 1, 3, 5, 10, 3, 0.45};
    case PageArchetype::Docs:
      // Lean pages.
      return PageComposition{1, 2, 2, 6, 4, 12, 1, 2, 0, 2, 1, 0.50};
  }
  return PageComposition{2, 4, 6, 12, 10, 30, 1, 2, 1, 4, 1, 0.4};
}

PageArchetype draw_archetype(Rng& rng) {
  const double roll = rng.next_double();
  if (roll < 0.30) return PageArchetype::News;
  if (roll < 0.55) return PageArchetype::Commerce;
  if (roll < 0.70) return PageArchetype::Video;
  if (roll < 0.90) return PageArchetype::SocialApp;
  return PageArchetype::Docs;
}

}  // namespace catalyst::workload
