// Synthetic website generation: builds Site objects whose HTML/CSS/JS
// bodies genuinely cross-reference each other, with per-resource change
// processes and cache-header policies.
//
// This is the stand-in for the paper's clones of the 100 most-visited
// homepages: the same code paths (DOM scan on the server, dependency
// resolution in the browser) run on this content as would run on the real
// pages.
#pragma once

#include <memory>

#include "server/site.h"
#include "server/ttl_policy.h"
#include "workload/profiles.h"

namespace catalyst::workload {

struct SitegenParams {
  std::uint64_t seed = 1;
  int site_index = 0;

  /// How cache headers get assigned (the paper's motivation assumes
  /// ConservativeCms-like behaviour in the wild).
  server::TtlProfile ttl_profile = server::TtlProfile::ConservativeCms;

  /// Change processes are materialized over [0, horizon).
  Duration change_horizon = days(30);

  /// Force a specific archetype (nullopt = draw from the mix).
  std::optional<PageArchetype> archetype;

  /// Static-clone hosting, mirroring the paper's methodology (§4): the
  /// 100 homepages were saved and served as files from one Caddy server,
  /// so even API-ish JSON payloads become static files with CMS-default
  /// headers rather than live no-store endpoints. Default off (live-site
  /// semantics); the Figure-3 benches turn it on to match the paper.
  bool clone_static_snapshot = false;

  /// Fraction of images/scripts/fonts hosted on third-party origins
  /// (CDNs, ad networks). Cross-origin resources are outside the
  /// X-Etag-Config map (explicitly future work in the paper §6), so this
  /// knob measures the coverage loss. 0 reproduces the paper's
  /// single-origin clone hosting.
  double third_party_fraction = 0.0;

  /// Number of distinct third-party origins to spread those over.
  int third_party_origins = 3;

  /// Broken-link / error-response model. Real homepages reference dead
  /// resources (link rot) and retired endpoints; the fractions below make
  /// the synthetic sites do the same so negative caching has something to
  /// cache. All draws come from a dedicated RNG stream, so all-zero
  /// fractions leave the generated site byte-identical to a build without
  /// the error model.
  struct ErrorModel {
    /// Per existing image/JSON slot: probability of an *additional*
    /// reference to an unregistered path (origin answers 404).
    double dead_link_fraction = 0.0;
    /// Per existing image slot: probability of an additional reference to
    /// a retired path (origin answers 410 Gone).
    double gone_link_fraction = 0.0;
    /// Per JSON endpoint: probability it serves an error-page body with a
    /// 200 status (a "soft 404" — poison for naive caches, invisible to
    /// status-based negative caching).
    double soft404_fraction = 0.0;

    bool any() const {
      return dead_link_fraction > 0.0 || gone_link_fraction > 0.0 ||
             soft404_fraction > 0.0;
    }
  };
  ErrorModel errors;
};

/// A main site plus the third-party origins its page references.
struct SiteBundle {
  std::shared_ptr<server::Site> main;
  std::vector<std::shared_ptr<server::Site>> third_party;
};

/// Generates a site together with its third-party origins (empty when
/// third_party_fraction == 0).
SiteBundle generate_site_bundle(const SitegenParams& params);

/// Generates one deterministic synthetic site ("siteNN.example").
std::shared_ptr<server::Site> generate_site(const SitegenParams& params);

/// The exact worked example of the paper's Figure 1: index.html linking
/// a.css and b.js; b.js fetches c.js when executed; c.js fetches d.jpg.
/// Headers per the figure: a.css max-age=1week, b.js no-cache, d.jpg
/// max-age=2h with a content change 1h in, c.js max-age=1week.
std::shared_ptr<server::Site> make_figure1_site();

}  // namespace catalyst::workload
