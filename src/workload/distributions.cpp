#include "workload/distributions.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/flat_hash.h"

namespace catalyst::workload {

namespace {

ByteCount clamp_size(double bytes, ByteCount lo, ByteCount hi) {
  const double clamped =
      std::clamp(bytes, static_cast<double>(lo), static_cast<double>(hi));
  return static_cast<ByteCount>(clamped);
}

/// Precomputed Zipf weight table for one (n, s) pair. `weights[k]` and
/// `total` hold the exact doubles the original per-draw loop produced
/// (same pow calls, same ascending-k summation order), so draws against
/// the table are bit-identical to recomputing from scratch.
struct ZipfTable {
  std::vector<double> weights;
  double total = 0.0;
};

const ZipfTable& zipf_table(std::size_t n, double s) {
  // Keyed by (n, exact bits of s). Thread-local like every other engine
  // cache: sharded fleet replay never shares workload state across
  // threads, and the table contents are a pure function of (n, s) so
  // per-thread duplicates cannot diverge.
  thread_local FlatHashMap<std::uint64_t, ZipfTable> tables;
  const std::uint64_t key =
      mix_u64(static_cast<std::uint64_t>(n)) ^ std::bit_cast<std::uint64_t>(s);
  ZipfTable& table = tables[key];
  if (table.weights.empty()) {
    table.weights.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      table.weights[k] = std::pow(static_cast<double>(k + 1), -s);
      table.total += table.weights[k];
    }
  }
  return table;
}

}  // namespace

ByteCount draw_size(http::ResourceClass resource_class, Rng& rng) {
  switch (resource_class) {
    case http::ResourceClass::Html:
      // Homepages: tens of KB of markup.
      return clamp_size(rng.lognormal(std::log(45e3), 0.5), KiB(8),
                        KiB(300));
    case http::ResourceClass::Css:
      return clamp_size(rng.lognormal(std::log(20e3), 0.8), KiB(2),
                        KiB(200));
    case http::ResourceClass::Script:
      return clamp_size(rng.lognormal(std::log(35e3), 0.9), KiB(2),
                        KiB(400));
    case http::ResourceClass::Image:
      // Heavy tail: a few hero images dominate page weight.
      return clamp_size(rng.lognormal(std::log(18e3), 1.1), 500,
                        MiB(1));
    case http::ResourceClass::Font:
      return clamp_size(rng.lognormal(std::log(30e3), 0.4), KiB(10),
                        KiB(120));
    case http::ResourceClass::Json:
      return clamp_size(rng.lognormal(std::log(3e3), 0.8), 200, KiB(64));
    case http::ResourceClass::Other:
      return clamp_size(rng.lognormal(std::log(8e3), 1.0), 200, KiB(256));
  }
  return KiB(8);
}

Duration draw_change_interval(http::ResourceClass resource_class,
                              Rng& rng) {
  switch (resource_class) {
    case http::ResourceClass::Html:
      // Homepages churn: minutes to a day.
      return seconds_f(rng.lognormal(std::log(6.0 * 3600), 1.0));
    case http::ResourceClass::Css:
    case http::ResourceClass::Script:
      // Mostly stable deploy artifacts; ~35% effectively immutable, a
      // small fast-churn tail (A/B configs, live bundles).
      if (rng.bernoulli(0.35)) return Duration::zero();
      if (rng.bernoulli(0.16)) {
        return seconds_f(rng.lognormal(std::log(4.0 * 3600), 0.8));
      }
      return seconds_f(rng.lognormal(std::log(20.0 * 86400), 1.0));
    case http::ResourceClass::Image:
      // Most images never change; some rotate with content, a few churn
      // within hours (hero/campaign rotations).
      if (rng.bernoulli(0.6)) return Duration::zero();
      if (rng.bernoulli(0.16)) {
        return seconds_f(rng.lognormal(std::log(8.0 * 3600), 0.8));
      }
      return seconds_f(rng.lognormal(std::log(7.0 * 86400), 1.2));
    case http::ResourceClass::Font:
      return Duration::zero();
    case http::ResourceClass::Json:
      // Dynamic payloads: seconds to hours.
      return seconds_f(rng.lognormal(std::log(600.0), 1.5));
    case http::ResourceClass::Other:
      if (rng.bernoulli(0.5)) return Duration::zero();
      return seconds_f(rng.lognormal(std::log(10.0 * 86400), 1.0));
  }
  return Duration::zero();
}

std::size_t draw_zipf_rank(std::size_t n, double s, Rng& rng) {
  if (n == 0) throw std::invalid_argument("draw_zipf_rank: n == 0");
  // One pow() per rank per (n, s) pair for the whole run, instead of 2n
  // pow() calls per draw. The linear subtraction scan is kept as-is
  // (same doubles, same order) so every drawn rank is bit-identical to
  // the unbatched implementation.
  const ZipfTable& table = zipf_table(n, s);
  double target = rng.next_double() * table.total;
  for (std::size_t k = 0; k < n; ++k) {
    const double w = table.weights[k];
    if (target < w) return k;
    target -= w;
  }
  return n - 1;  // numeric edge: land on the least popular rank
}

Duration draw_visit_gap(Duration mean_gap, Rng& rng) {
  if (mean_gap <= Duration::zero()) {
    throw std::invalid_argument("draw_visit_gap: mean_gap <= 0");
  }
  const Duration gap = seconds_f(rng.exponential(1.0 / to_seconds(mean_gap)));
  return std::max(gap, minutes(1));
}

}  // namespace catalyst::workload
