#include "workload/adversary.h"

#include <stdexcept>

#include "http/headers.h"
#include "util/strings.h"

namespace catalyst::workload {

Adversary::Adversary(netsim::Network& network, edge::EdgePop& pop,
                     std::vector<std::string> target_paths,
                     AdversaryParams params)
    : network_(network),
      pop_(pop),
      paths_(std::move(target_paths)),
      params_(params),
      rng_(params.seed) {
  if (paths_.empty()) {
    throw std::invalid_argument("Adversary: target_paths must be non-empty");
  }
}

netsim::Connection& Adversary::fresh_connection() {
  connections_.push_back(std::make_unique<netsim::Connection>(
      network_, kHost, pop_.host_name(), /*tls=*/true,
      netsim::Protocol::H1));
  return *connections_.back();
}

void Adversary::send_poison(const std::string& path,
                            const std::string& payload) {
  ++stats_.requests;
  pop_.note_adversary_request();
  http::Request request = http::Request::get(path, pop_.host_name());
  request.headers.set(http::kXForwardedHost, payload);
  ++pending_poisons_;
  fresh_connection().send_request(
      std::move(request),
      [this, payload](http::Response response) {
        ++stats_.responses;
        if (response.body.find(payload) != std::string::npos) {
          ++stats_.reflected;
        }
        if (--pending_poisons_ == 0) flush_probes();
      },
      /*on_push=*/nullptr, /*on_promise=*/nullptr, /*on_hints=*/nullptr,
      // A faulted poison still releases its probes — they must never
      // stall on a lost response.
      [this]() {
        if (--pending_poisons_ == 0) flush_probes();
      });
}

void Adversary::flush_probes() {
  std::vector<std::string> probes = std::move(queued_probes_);
  queued_probes_.clear();
  for (const std::string& path : probes) send_probe(path);
}

void Adversary::send_probe(const std::string& path) {
  ++stats_.probes;
  http::Request request = http::Request::get(path, pop_.host_name());
  const TimePoint sent = network_.loop().now();
  fresh_connection().send_request(
      std::move(request), [this, sent](http::Response) {
        ++stats_.responses;
        const Duration elapsed = network_.loop().now() - sent;
        const bool hit = elapsed <= params_.probe_hit_threshold;
        if (hit) ++stats_.probe_hits;
        pop_.note_adversary_probe(hit);
      });
}

void Adversary::strike() {
  ++stats_.strikes;
  for (int i = 0; i < params_.requests_per_strike; ++i) {
    // The first request of every strike poisons the entry point — the one
    // path a subsequent victim visit is guaranteed to consume.
    const std::string& path =
        i == 0 ? paths_.front()
               : paths_[static_cast<std::size_t>(rng_.uniform_int(
                     0, static_cast<std::int64_t>(paths_.size() - 1)))];
    const bool leak = rng_.bernoulli(params_.leak_payload_fraction);
    const std::string payload =
        leak ? str_format("uid:attacker-%llu",
                          static_cast<unsigned long long>(stats_.strikes))
             : "evil.example";
    send_poison(path, payload);
  }
  // Probes check residency of what the poisons just planted, so they wait
  // for the poison responses; drawn now to keep the RNG stream fixed.
  for (int i = 0; i < params_.timing_probes_per_strike; ++i) {
    queued_probes_.push_back(paths_[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(paths_.size() - 1)))]);
  }
  if (pending_poisons_ == 0) flush_probes();
}

}  // namespace catalyst::workload
