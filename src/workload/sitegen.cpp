#include "workload/sitegen.h"

#include <algorithm>

#include "html/generate.h"
#include "util/hash.h"
#include "util/strings.h"
#include "workload/distributions.h"

namespace catalyst::workload {

namespace {

using server::ChangeProcess;
using server::Resource;
using server::Site;

/// Stand-in content for opaque classes (images/fonts/json): small, unique
/// per (path, version) so ETags change exactly when the version does.
server::ContentGenerator opaque_generator(std::string path,
                                          std::uint64_t salt) {
  return [path = std::move(path), salt](std::uint64_t version) {
    return str_format("binary-stand-in %s v%llu salt %016llx", path.c_str(),
                      static_cast<unsigned long long>(version),
                      static_cast<unsigned long long>(salt));
  };
}

/// A "soft 404": the endpoint answers 200 with an error-page body. Caches
/// treat it as ordinary content — exactly the failure mode that makes
/// status-code-based negative caching insufficient on its own.
server::ContentGenerator soft404_generator(std::string path,
                                           std::uint64_t salt) {
  return [path = std::move(path), salt](std::uint64_t version) {
    return str_format(
        "{\"error\":\"not found\",\"path\":\"%s\",\"v\":%llu,"
        "\"salt\":\"%016llx\"}",
        path.c_str(), static_cast<unsigned long long>(version),
        static_cast<unsigned long long>(salt));
  };
}

ChangeProcess make_changes(Duration mean_interval, Duration horizon,
                           Rng& rng) {
  if (mean_interval <= Duration::zero()) return ChangeProcess::never();
  return ChangeProcess::poisson(mean_interval, horizon, rng);
}

struct ResourcePlan {
  std::string path;
  http::ResourceClass rc = http::ResourceClass::Other;
  ByteCount size = 0;
  Duration mean_change = Duration::zero();
  int tp_origin = -1;  // >= 0: hosted on third-party origin #N
};

std::string third_party_host(int origin) {
  return str_format("cdn%d.thirdparty", origin);
}

/// How the resource is referenced from the main site's content: a
/// same-origin path, or an absolute cross-origin URL.
std::string reference_url(const ResourcePlan& plan) {
  if (plan.tp_origin < 0) return plan.path;
  return "https://" + third_party_host(plan.tp_origin) + plan.path;
}

}  // namespace

std::shared_ptr<server::Site> generate_site(const SitegenParams& params) {
  return generate_site_bundle(params).main;
}

SiteBundle generate_site_bundle(const SitegenParams& params) {
  Rng rng(params.seed ^
          (0x5174e5ull * static_cast<std::uint64_t>(params.site_index + 1)));
  const PageArchetype archetype =
      params.archetype ? *params.archetype : draw_archetype(rng);
  const PageComposition comp = composition_for(archetype);

  const std::string host =
      str_format("site%02d.example", params.site_index);
  auto site = std::make_shared<Site>(host);
  site->set_index_path("/index.html");

  auto count = [&rng](int lo, int hi) {
    return static_cast<int>(rng.uniform_int(lo, hi));
  };
  const int n_css = count(comp.stylesheets_min, comp.stylesheets_max);
  const int n_js = count(comp.scripts_min, comp.scripts_max);
  const int n_img = count(comp.images_min, comp.images_max);
  const int n_font = count(comp.fonts_min, comp.fonts_max);
  const int n_json = count(comp.json_fetches_min, comp.json_fetches_max);
  const int n_lazy = std::max(0, comp.script_chain_depth - 1) * 2;

  std::vector<ResourcePlan> css(static_cast<std::size_t>(n_css));
  std::vector<ResourcePlan> js(static_cast<std::size_t>(n_js));
  std::vector<ResourcePlan> img(static_cast<std::size_t>(n_img));
  std::vector<ResourcePlan> font(static_cast<std::size_t>(n_font));
  std::vector<ResourcePlan> json(static_cast<std::size_t>(n_json));
  std::vector<ResourcePlan> lazy(static_cast<std::size_t>(n_lazy));

  auto plan = [&rng, &params](std::vector<ResourcePlan>& out,
                              http::ResourceClass rc, const char* pattern) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].path = str_format(pattern, i);
      out[i].rc = rc;
      out[i].size = draw_size(rc, rng);
      out[i].mean_change = draw_change_interval(rc, rng);
      (void)params;
    }
  };
  plan(css, http::ResourceClass::Css, "/assets/style%zu.css");
  plan(js, http::ResourceClass::Script, "/assets/app%zu.js");
  plan(img, http::ResourceClass::Image, "/img/pic%zu.webp");
  plan(font, http::ResourceClass::Font, "/fonts/face%zu.woff2");
  plan(json, http::ResourceClass::Json, "/api/data%zu.json");
  plan(lazy, http::ResourceClass::Script, "/assets/lazy%zu.js");

  // Spread the configured fraction of images/scripts/fonts over the
  // third-party origins (ad/CDN content). HTML, CSS, JSON and lazy-chain
  // scripts stay first-party.
  if (params.third_party_fraction > 0.0 &&
      params.third_party_origins > 0) {
    auto maybe_externalize = [&](std::vector<ResourcePlan>& plans) {
      for (ResourcePlan& r : plans) {
        if (rng.bernoulli(params.third_party_fraction)) {
          r.tp_origin = static_cast<int>(
              rng.uniform_int(0, params.third_party_origins - 1));
        }
      }
    };
    maybe_externalize(img);
    maybe_externalize(js);
    maybe_externalize(font);
  }

  // --- Reference wiring -------------------------------------------------
  // ~20% of images live in stylesheets (backgrounds), the rest in HTML.
  std::vector<std::string> css_images, html_images;
  for (const ResourcePlan& r : img) {
    (rng.bernoulli(0.2) && n_css > 0 ? css_images : html_images)
        .push_back(reference_url(r));
  }
  // JSON fetches and lazy scripts are reached through JS execution only.
  // Round-robin them over the *first-party* top-level scripts (ad/CDN
  // scripts do not call back into the site's APIs).
  std::vector<std::size_t> fp_js;
  for (std::size_t i = 0; i < js.size(); ++i) {
    if (js[i].tp_origin < 0) fp_js.push_back(i);
  }
  std::vector<std::vector<std::string>> js_fetches(
      static_cast<std::size_t>(std::max(1, n_js)));
  auto fp_slot = [&fp_js, &js_fetches](std::size_t i) -> auto& {
    if (fp_js.empty()) return js_fetches[i % js_fetches.size()];
    return js_fetches[fp_js[i % fp_js.size()]];
  };
  for (std::size_t i = 0; i < json.size(); ++i) {
    fp_slot(i).push_back(json[i].path);
  }
  std::vector<std::vector<std::string>> lazy_fetches(lazy.size());
  for (std::size_t i = 0; i < lazy.size(); ++i) {
    // First-level lazies hang off top-level scripts; deeper ones chain.
    if (i < lazy.size() / 2 || lazy.size() < 2) {
      fp_slot(i).push_back(lazy[i].path);
    } else {
      lazy_fetches[i - lazy.size() / 2].push_back(lazy[i].path);
    }
  }
  // Give half the lazy scripts a trailing asset fetch (Fig. 1's d.jpg):
  // dedicated images only reachable through the JS chain.
  std::vector<ResourcePlan> chain_img;
  for (std::size_t i = 0; i < lazy.size(); i += 2) {
    ResourcePlan r;
    r.path = str_format("/img/lazy%zu.webp", i / 2);
    r.rc = http::ResourceClass::Image;
    r.size = draw_size(r.rc, rng);
    r.mean_change = draw_change_interval(r.rc, rng);
    lazy_fetches[i].push_back(r.path);
    chain_img.push_back(std::move(r));
  }

  // --- Error model ------------------------------------------------------
  // Dead links (404), retired paths (410), and soft-404 JSON endpoints.
  // All draws come from a dedicated stream keyed off the seed — never from
  // `rng` — so an all-zero error model leaves every downstream draw, and
  // therefore the generated site, byte-identical to a build without it.
  std::vector<bool> json_soft404(json.size(), false);
  if (params.errors.any()) {
    Rng error_rng(params.seed ^ 0xdead404ull ^
                  (0x51e5ull *
                   static_cast<std::uint64_t>(params.site_index + 1)));
    int dead = 0;
    for (std::size_t i = 0; i < img.size(); ++i) {
      if (error_rng.bernoulli(params.errors.dead_link_fraction)) {
        html_images.push_back(str_format("/img/missing%d.webp", dead++));
      }
    }
    for (std::size_t i = 0; i < json.size(); ++i) {
      if (error_rng.bernoulli(params.errors.dead_link_fraction)) {
        fp_slot(json.size() + i)
            .push_back(str_format("/api/missing%d.json", dead++));
      }
    }
    int gone = 0;
    for (std::size_t i = 0; i < img.size(); ++i) {
      if (error_rng.bernoulli(params.errors.gone_link_fraction)) {
        std::string path = str_format("/img/retired%d.webp", gone++);
        html_images.push_back(path);
        site->add_gone_path(std::move(path));
      }
    }
    for (std::size_t i = 0; i < json.size(); ++i) {
      json_soft404[i] =
          error_rng.bernoulli(params.errors.soft404_fraction);
    }
  }

  // --- Materialize resources --------------------------------------------
  const std::uint64_t site_salt = rng.next_u64();
  Rng policy_rng = rng.fork(1);
  Rng change_rng = rng.fork(2);

  // Third-party origins referenced by this page.
  std::vector<std::shared_ptr<Site>> tp_sites;
  for (int k = 0; k < params.third_party_origins; ++k) {
    tp_sites.push_back(std::make_shared<Site>(third_party_host(k)));
  }

  auto add = [&](const ResourcePlan& r, server::ContentGenerator gen) {
    // In clone mode a JSON payload is just another saved file: it gets
    // static-file cache headers instead of live no-store semantics.
    const http::ResourceClass policy_class =
        (params.clone_static_snapshot &&
         r.rc == http::ResourceClass::Json)
            ? http::ResourceClass::Other
            : r.rc;
    auto policy = server::assign_cache_policy(params.ttl_profile,
                                              policy_class, r.mean_change,
                                              policy_rng);
    // A cloned snapshot's files never change during the experiment (the
    // paper advances the clock against a frozen copy); live mode runs the
    // real change processes.
    ChangeProcess changes =
        params.clone_static_snapshot
            ? ChangeProcess::never()
            : make_changes(r.mean_change, params.change_horizon,
                           change_rng);
    Site& target =
        r.tp_origin < 0 ? *site
                        : *tp_sites[static_cast<std::size_t>(r.tp_origin)];
    target.add_resource(std::make_unique<Resource>(
        r.path, r.rc, r.size, std::move(gen), std::move(changes),
        std::move(policy)));
  };

  // Opaque classes.
  for (const auto& r : img) add(r, opaque_generator(r.path, site_salt));
  for (const auto& r : chain_img) {
    add(r, opaque_generator(r.path, site_salt));
  }
  for (const auto& r : font) add(r, opaque_generator(r.path, site_salt));
  for (std::size_t i = 0; i < json.size(); ++i) {
    add(json[i], json_soft404[i]
                     ? soft404_generator(json[i].path, site_salt)
                     : opaque_generator(json[i].path, site_salt));
  }

  // Stylesheets: distribute css_images and fonts across files.
  for (std::size_t i = 0; i < css.size(); ++i) {
    std::vector<std::string> my_images, my_fonts;
    for (std::size_t k = i; k < css_images.size();
         k += std::max<std::size_t>(1, css.size())) {
      my_images.push_back(css_images[k]);
    }
    for (std::size_t k = i; k < font.size();
         k += std::max<std::size_t>(1, css.size())) {
      my_fonts.push_back(reference_url(font[k]));
    }
    const ByteCount size = css[i].size;
    const std::uint64_t seed = site_salt ^ fnv1a64(css[i].path);
    add(css[i],
        [my_images, my_fonts, size, seed](std::uint64_t version) {
          return html::make_css(my_images, my_fonts, {}, size,
                                seed + version * 0x9e37ull);
        });
  }

  // Scripts.
  auto script_generator = [site_salt](std::vector<std::string> fetches,
                                      ByteCount size, std::string path) {
    const std::uint64_t seed = site_salt ^ fnv1a64(path);
    return [fetches = std::move(fetches), size,
            seed](std::uint64_t version) {
      return html::make_js(fetches, size, seed + version * 0x9e37ull);
    };
  };
  for (std::size_t i = 0; i < js.size(); ++i) {
    add(js[i], script_generator(js_fetches[i], js[i].size, js[i].path));
  }
  for (std::size_t i = 0; i < lazy.size(); ++i) {
    add(lazy[i],
        script_generator(lazy_fetches[i], lazy[i].size, lazy[i].path));
  }

  // The base HTML.
  ResourcePlan html_plan;
  html_plan.path = "/index.html";
  html_plan.rc = http::ResourceClass::Html;
  html_plan.size = draw_size(http::ResourceClass::Html, rng);
  html_plan.mean_change =
      draw_change_interval(http::ResourceClass::Html, rng);

  std::vector<std::string> css_paths, js_paths;
  std::vector<bool> js_blocking;
  for (const auto& r : css) css_paths.push_back(r.path);
  for (const auto& r : js) {
    js_paths.push_back(reference_url(r));
    // Third-party scripts ship async (ads/analytics best practice).
    js_blocking.push_back(r.tp_origin < 0 &&
                          rng.next_double() <
                              comp.blocking_script_fraction);
  }
  const std::string title =
      str_format("%s — %s homepage", host.c_str(),
                 std::string(to_string(archetype)).c_str());
  const ByteCount html_size = html_plan.size;
  add(html_plan, [css_paths, js_paths, js_blocking, html_images, title,
                  html_size, site_salt](std::uint64_t version) {
    html::HtmlBuilder builder(title);
    for (const std::string& path : css_paths) builder.add_stylesheet(path);
    for (std::size_t i = 0; i < js_paths.size(); ++i) {
      builder.add_script(js_paths[i], /*deferred=*/!js_blocking[i]);
    }
    for (const std::string& path : html_images) builder.add_image(path);
    builder.add_comment(str_format(
        "content revision %llu", static_cast<unsigned long long>(version)));
    builder.pad_to(html_size, site_salt ^ (version * 0x517cull));
    return builder.build();
  });

  // Drop third-party origins the page never ended up referencing.
  std::vector<std::shared_ptr<Site>> used_tp;
  for (auto& tp : tp_sites) {
    if (tp->resource_count() > 0) used_tp.push_back(std::move(tp));
  }
  return SiteBundle{std::move(site), std::move(used_tp)};
}

std::shared_ptr<server::Site> make_figure1_site() {
  auto site = std::make_shared<Site>("example.com");
  site->set_index_path("/index.html");

  // a.css: max-age = 1 week, never changes in the window.
  site->add_resource(std::make_unique<Resource>(
      "/a.css", http::ResourceClass::Css, KiB(30),
      [](std::uint64_t version) {
        return html::make_css({}, {}, {}, KiB(30), 0xA0 + version);
      },
      ChangeProcess::never(),
      http::CacheControl::with_max_age(days(7))));

  // b.js: no-cache (must revalidate every use); fetches c.js when run.
  site->add_resource(std::make_unique<Resource>(
      "/b.js", http::ResourceClass::Script, KiB(40),
      [](std::uint64_t version) {
        return html::make_js({"/c.js"}, KiB(40), 0xB0 + version);
      },
      ChangeProcess::never(), http::CacheControl::revalidate_always()));

  // c.js: cacheable for a week; fetches d.jpg when run.
  site->add_resource(std::make_unique<Resource>(
      "/c.js", http::ResourceClass::Script, KiB(25),
      [](std::uint64_t version) {
        return html::make_js({"/d.jpg"}, KiB(25), 0xC0 + version);
      },
      ChangeProcess::never(),
      http::CacheControl::with_max_age(days(7))));

  // d.jpg: max-age = 2 hours; its content changes 1 hour in, so a revisit
  // 2+ hours later finds it both expired *and* changed (Fig. 1b).
  site->add_resource(std::make_unique<Resource>(
      "/d.jpg", http::ResourceClass::Image, KiB(80),
      [](std::uint64_t version) {
        return str_format("jpeg-stand-in /d.jpg v%llu",
                          static_cast<unsigned long long>(version));
      },
      ChangeProcess::periodic(days(365), hours(1), days(365)),
      http::CacheControl::with_max_age(hours(2))));

  // index.html: no-cache; links a.css and b.js.
  site->add_resource(std::make_unique<Resource>(
      "/index.html", http::ResourceClass::Html, KiB(12),
      [](std::uint64_t version) {
        html::HtmlBuilder builder("Figure 1 example");
        builder.add_stylesheet("/a.css");
        builder.add_script("/b.js");
        builder.add_comment(str_format(
            "revision %llu", static_cast<unsigned long long>(version)));
        builder.pad_to(KiB(12), 0xF16);
        return builder.build();
      },
      ChangeProcess::never(), http::CacheControl::revalidate_always()));

  return site;
}

}  // namespace catalyst::workload
