// Page archetypes: the top-100 homepages are not homogeneous, so sites are
// drawn from a mix of composition profiles (news-heavy image counts,
// script-heavy app shells, lean documentation pages, ...).
#pragma once

#include <string_view>

#include "util/rng.h"

namespace catalyst::workload {

enum class PageArchetype { News, Commerce, Video, SocialApp, Docs };

std::string_view to_string(PageArchetype archetype);

/// Resource-count ranges for one archetype.
struct PageComposition {
  int stylesheets_min, stylesheets_max;
  int scripts_min, scripts_max;      // top-level <script src>
  int images_min, images_max;
  int fonts_min, fonts_max;          // referenced from CSS
  int json_fetches_min, json_fetches_max;  // issued by JS
  int script_chain_depth;            // js -> js -> asset chains (Fig. 1)
  double blocking_script_fraction;   // parser-blocking share of scripts
};

PageComposition composition_for(PageArchetype archetype);

/// Archetype mix for the synthetic "top 100" (weighted draw).
PageArchetype draw_archetype(Rng& rng);

}  // namespace catalyst::workload
