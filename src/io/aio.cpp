#include "io/aio.h"

#include <cmath>
#include <utility>

#include "obs/recorder.h"
#include "obs/selfprof.h"

namespace catalyst::io {

AioEngine::AioEngine(netsim::EventLoop& loop, const AioDeviceConfig& config,
                     Rng& rng, AioStats& stats)
    : loop_(loop), config_(config), rng_(rng), stats_(stats) {
  if (config_.queue_depth < 1) config_.queue_depth = 1;
}

void AioEngine::submit_read(const std::string& key, ByteCount bytes,
                            Completion done) {
  const InternId key_id = tls_intern().intern(key);
  if (std::uint64_t* pending = read_by_key_.find(key_id)) {
    // Merge: the device will read these bytes once; everyone interested
    // completes together.
    ++stats_.merged_reads;
    ops_.find(*pending)->completions.push_back(std::move(done));
    return;
  }
  Op op;
  op.read = true;
  op.key = key_id;
  op.bytes = bytes;
  op.completions.push_back(std::move(done));
  const std::uint64_t id = enqueue(std::move(op));
  read_by_key_.insert_or_assign(key_id, id);
}

void AioEngine::submit_write(ByteCount bytes, Completion done) {
  Op op;
  op.bytes = bytes;
  if (done) op.completions.push_back(std::move(done));
  enqueue(std::move(op));
}

std::uint64_t AioEngine::enqueue(Op op) {
  const std::uint64_t id = next_id_++;
  op.submitted = loop_.now();
  ops_.insert_or_assign(id, std::move(op));
  if (inflight_ < config_.queue_depth) {
    start_op(id);
  } else {
    ++stats_.queue_waits;
    waiting_.push_back(id);
  }
  return id;
}

void AioEngine::start_op(std::uint64_t id) {
  ++inflight_;
  if (static_cast<std::uint64_t>(inflight_) > stats_.peak_inflight) {
    stats_.peak_inflight = static_cast<std::uint64_t>(inflight_);
  }
  const Duration service = service_time(*ops_.find(id));
  loop_.schedule_after(service, [this, id]() { finish_op(id); });
}

void AioEngine::finish_op(std::uint64_t id) {
  Op op = std::move(*ops_.find(id));
  ops_.erase(id);
  obs::count(obs::Sub::kFlash);
  if (auto* rec = loop_.recorder()) {
    // Device-level decomposition: queue wait + service per op (merged
    // readers share the op, so it is charged once).
    rec->record(obs::Phase::kFlashIo, loop_.now() - op.submitted);
  }
  if (op.read) {
    // Unregister before running completions: a completion may submit a
    // fresh read for the same key, which must become a new device op.
    read_by_key_.erase(op.key);
    ++stats_.reads;
    stats_.bytes_read += op.bytes;
  } else {
    ++stats_.writes;
    stats_.bytes_written += op.bytes;
  }
  --inflight_;
  // Fill the freed slot from the FIFO before running completions, so ops
  // submitted by a completion queue behind everything already waiting.
  while (inflight_ < config_.queue_depth && waiting_head_ < waiting_.size()) {
    const std::uint64_t next = waiting_[waiting_head_++];
    if (waiting_head_ == waiting_.size()) {
      waiting_.clear();
      waiting_head_ = 0;
    }
    start_op(next);
  }
  for (Completion& done : op.completions) {
    if (done) done();
  }
}

Duration AioEngine::service_time(const Op& op) {
  const Duration base = op.read ? config_.read_latency : config_.write_latency;
  double scale = 1.0;
  if (config_.jitter_sigma > 0.0) {
    scale = rng_.lognormal(0.0, config_.jitter_sigma);
    // Clamp the tail: a device stall, not a pathological outlier that
    // would make one unlucky draw dominate a whole sweep point.
    if (scale > 8.0) scale = 8.0;
  }
  const double base_ns =
      static_cast<double>(base.count()) * scale;
  const double transfer_ns =
      static_cast<double>(config_.per_mib.count()) *
      (static_cast<double>(op.bytes) / static_cast<double>(MiB(1)));
  return Duration{static_cast<std::int64_t>(base_ns + transfer_ns)};
}

}  // namespace catalyst::io
