// Asynchronous-I/O device model — the cost model under the edge flash
// tier.
//
// A real CDN PoP serves its long tail from NVMe flash through an async
// I/O engine (io_uring / Linux AIO): requests are submitted into a
// bounded device queue, each op takes a service time that depends on the
// device and the transfer size, and completions arrive out of band. This
// module reproduces that shape inside the simulator's virtual clock:
//
//   - bounded queue depth: at most `queue_depth` ops are in service;
//     later submissions wait in a FIFO until a slot frees, so a burst of
//     reads sees realistic queueing delay, not a flat per-op latency;
//   - seeded service latency: each op draws base-latency × lognormal
//     jitter + a per-byte transfer cost from a caller-owned Rng, so the
//     latency stream is a pure function of (seed, submission order);
//   - read merging: a read submitted for a key that already has a read
//     queued or in service joins that op and shares its completion — the
//     request-merging trick of flash KV stores, and the device-level
//     complement of the edge tier's request coalescing;
//   - completions delivered through the owning testbed's netsim
//     EventLoop, so flash I/O interleaves deterministically with network
//     events and reports stay byte-identical for any --threads.
//
// The engine is a per-testbed binding (like edge::EdgeNode); the Rng and
// AioStats it draws from and accounts into are owned by the long-lived
// EdgePop, so latency streams and telemetry persist across the testbeds
// that replay one PoP's users.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netsim/event_loop.h"
#include "util/flat_hash.h"
#include "util/intern.h"
#include "util/rng.h"
#include "util/types.h"

namespace catalyst::io {

struct AioDeviceConfig {
  /// Ops concurrently in service (NVMe-style submission queue depth).
  int queue_depth = 8;

  /// Median service time of a small read (flash page read + kernel
  /// round-trip). The axis the FLASH sweeps move against origin RTT.
  Duration read_latency = microseconds(100);

  /// Median service time of a small write (program into the device
  /// buffer; sustained GC cost is accounted by the tier, not here).
  Duration write_latency = microseconds(250);

  /// Transfer cost per MiB moved (~2.5 GiB/s device).
  Duration per_mib = microseconds(400);

  /// Lognormal sigma applied to the base latency (0 = deterministic
  /// service times; jitter stays seeded and reproducible either way).
  double jitter_sigma = 0.25;
};

/// Engine telemetry. Plain sums (and one high-water mark) so per-PoP
/// stats merge into fleet reports without the report layer knowing
/// anything about the engine.
struct AioStats {
  std::uint64_t reads = 0;         // read ops serviced by the device
  std::uint64_t writes = 0;        // write ops serviced by the device
  std::uint64_t merged_reads = 0;  // reads absorbed into a pending op
  std::uint64_t queue_waits = 0;   // ops that waited for a device slot
  std::uint64_t peak_inflight = 0; // max ops concurrently in service
  ByteCount bytes_read = 0;
  ByteCount bytes_written = 0;

  void merge(const AioStats& other) {
    reads += other.reads;
    writes += other.writes;
    merged_reads += other.merged_reads;
    queue_waits += other.queue_waits;
    peak_inflight = peak_inflight > other.peak_inflight
                        ? peak_inflight
                        : other.peak_inflight;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
  }
};

/// Deterministic async-I/O engine bound to one EventLoop. Submission is
/// immediate; completion callbacks fire as loop events after the op's
/// queue wait + service time. Completion order is a pure function of the
/// submission sequence and the Rng state, never of wall-clock anything.
class AioEngine {
 public:
  using Completion = netsim::EventFn;

  /// `rng` supplies the jitter stream and `stats` receives telemetry;
  /// both must outlive the engine (they live in the EdgePop so they
  /// persist across per-testbed engine bindings).
  AioEngine(netsim::EventLoop& loop, const AioDeviceConfig& config,
            Rng& rng, AioStats& stats);

  AioEngine(const AioEngine&) = delete;
  AioEngine& operator=(const AioEngine&) = delete;

  /// Submits a read of `bytes` for `key`. If a read for the same key is
  /// already queued or in service, `done` joins that op (merged read)
  /// and fires at its completion.
  void submit_read(const std::string& key, ByteCount bytes, Completion done);

  /// Submits a write of `bytes`. Writes never merge; `done` may be
  /// empty when the caller only wants the queue-pressure side effect.
  void submit_write(ByteCount bytes, Completion done = nullptr);

  int inflight() const { return inflight_; }
  std::size_t queued() const { return waiting_.size() - waiting_head_; }

 private:
  struct Op {
    bool read = false;
    InternId key = kNoIntern;  // merge identity (reads only)
    ByteCount bytes = 0;
    TimePoint submitted{};  // queue wait + service = FlashIo obs phase
    std::vector<Completion> completions;
  };

  std::uint64_t enqueue(Op op);
  void start_op(std::uint64_t id);
  void finish_op(std::uint64_t id);
  Duration service_time(const Op& op);

  netsim::EventLoop& loop_;
  AioDeviceConfig config_;
  Rng& rng_;
  AioStats& stats_;

  std::uint64_t next_id_ = 1;
  int inflight_ = 0;
  FlatHashMap<std::uint64_t, Op> ops_;
  // FIFO of ops waiting for a device slot (drained from waiting_head_).
  std::vector<std::uint64_t> waiting_;
  std::size_t waiting_head_ = 0;
  // Pending (queued or in-service) read per key, for merging.
  FlatHashMap<InternId, std::uint64_t> read_by_key_;
};

}  // namespace catalyst::io
