// Per-request latency phase taxonomy.
//
// The paper's argument is about *where* page-load time goes on
// latency-constrained links; this enum names the phases the simulator can
// attribute virtual time to. Client-side phases (Dns..Backoff) partition a
// fetch's wall time exactly: for a network fetch,
//   dns + connect + tls + queue + ttfb + transfer == finish - start,
// and for a cache-served fetch the single SwDecision / CacheLookup sample
// is the whole duration. Server-side phases (EdgeLookup, FlashIo) are
// decompositions that overlap the client's Ttfb — they explain it, they do
// not add to it, so sum-over-phases checks must exclude them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace catalyst::obs {

enum class Phase : std::uint8_t {
  // Client-side partition of a fetch.
  kDns,          // resolver lookup (first connection per origin)
  kConnect,      // TCP handshake (one RTT)
  kTls,          // TLS handshake (one extra RTT when the origin uses TLS)
  kQueue,        // waiting for a free slot on an http/1.1 connection, or
                 // for an in-progress handshake the request rides on
  kTtfb,         // request upload + server think time, to first reply byte
  kTransfer,     // reply bytes on the wire, incl. slow-start ramp
  kSwDecision,   // Service-Worker interception pipeline on an SW serve
  kCacheLookup,  // HTTP-cache / push-claim / oracle-hit lookup overhead
  kBackoff,      // retry backoff delay on the resilient fetch path
  // Server-side decompositions of the client's Ttfb.
  kEdgeLookup,   // edge-PoP arrival to reply dispatch (hit or fill)
  kFlashIo,      // flash read, AioEngine submit to completion
};

inline constexpr std::size_t kPhaseCount = 11;

inline constexpr std::array<Phase, kPhaseCount> kAllPhases = {
    Phase::kDns,        Phase::kConnect,     Phase::kTls,
    Phase::kQueue,      Phase::kTtfb,        Phase::kTransfer,
    Phase::kSwDecision, Phase::kCacheLookup, Phase::kBackoff,
    Phase::kEdgeLookup, Phase::kFlashIo,
};

/// Phases that overlap the client's Ttfb instead of partitioning the
/// fetch; excluded from sum-to-total accounting.
constexpr bool is_server_side(Phase p) {
  return p == Phase::kEdgeLookup || p == Phase::kFlashIo;
}

constexpr std::size_t phase_index(Phase p) {
  return static_cast<std::size_t>(p);
}

constexpr std::string_view to_string(Phase p) {
  switch (p) {
    case Phase::kDns: return "dns";
    case Phase::kConnect: return "connect";
    case Phase::kTls: return "tls";
    case Phase::kQueue: return "queue";
    case Phase::kTtfb: return "ttfb";
    case Phase::kTransfer: return "transfer";
    case Phase::kSwDecision: return "sw_decision";
    case Phase::kCacheLookup: return "cache_lookup";
    case Phase::kBackoff: return "backoff";
    case Phase::kEdgeLookup: return "edge_lookup";
    case Phase::kFlashIo: return "flash_io";
  }
  return "unknown";
}

}  // namespace catalyst::obs
