#include "obs/selfprof.h"

#include <chrono>
#include <cstdio>

namespace catalyst::obs {
namespace {

std::atomic<bool> g_timing{false};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread attribution state: the innermost open subsystem scope and
// when its current exclusive segment started.
struct TimingState {
  Sub cur{};
  std::uint64_t seg_start = 0;
  int depth = 0;
};

TimingState& tls_timing() {
  thread_local TimingState state;
  return state;
}

}  // namespace

ProfCounters& tls_prof() {
  thread_local ProfCounters prof;
  return prof;
}

void set_timing(bool enabled) {
  g_timing.store(enabled, std::memory_order_relaxed);
}

bool timing_enabled() { return g_timing.load(std::memory_order_relaxed); }

ScopedTimer::ScopedTimer(Sub sub) {
  if (!timing_enabled()) return;
  active_ = true;
  auto& st = tls_timing();
  const std::uint64_t now = now_ns();
  if (st.depth > 0) {
    // Close out the parent's exclusive segment before nesting.
    tls_prof().ns[sub_index(st.cur)] += now - st.seg_start;
  }
  prev_ = st.cur;
  st.cur = sub;
  st.seg_start = now;
  ++st.depth;
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  auto& st = tls_timing();
  const std::uint64_t now = now_ns();
  tls_prof().ns[sub_index(st.cur)] += now - st.seg_start;
  st.cur = prev_;
  st.seg_start = now;
  --st.depth;
}

void ProfCounters::merge(const ProfCounters& other) {
  for (std::size_t i = 0; i < kSubCount; ++i) {
    ops[i] += other.ops[i];
    ns[i] += other.ns[i];
  }
}

ProfCounters ProfCounters::delta(const ProfCounters& since) const {
  ProfCounters d;
  for (std::size_t i = 0; i < kSubCount; ++i) {
    d.ops[i] = ops[i] - since.ops[i];
    d.ns[i] = ns[i] - since.ns[i];
  }
  return d;
}

bool ProfCounters::any() const { return total_ops() != 0; }

std::uint64_t ProfCounters::total_ops() const {
  std::uint64_t sum = 0;
  for (std::uint64_t n : ops) sum += n;
  return sum;
}

std::uint64_t ProfCounters::total_ns() const {
  std::uint64_t sum = 0;
  for (std::uint64_t n : ns) sum += n;
  return sum;
}

std::string ProfCounters::render_table(double wall_s) const {
  const double timed_ns = static_cast<double>(total_ns());
  std::string out;
  out += "  subsystem        ops      ops/sec    cpu_ms   share\n";
  char line[128];
  for (Sub s : kAllSubs) {
    const std::size_t i = sub_index(s);
    const double rate =
        wall_s > 0.0 ? static_cast<double>(ops[i]) / wall_s : 0.0;
    const double cpu_ms = static_cast<double>(ns[i]) / 1e6;
    const double share =
        timed_ns > 0.0 ? 100.0 * static_cast<double>(ns[i]) / timed_ns : 0.0;
    std::snprintf(line, sizeof(line),
                  "  %-9s %10llu %12.0f %9.1f %6.1f%%\n",
                  std::string(to_string(s)).c_str(),
                  static_cast<unsigned long long>(ops[i]), rate, cpu_ms,
                  share);
    out += line;
  }
  return out;
}

Json ProfCounters::to_json(double wall_s) const {
  Json obj = Json::object();
  for (Sub s : kAllSubs) {
    const std::size_t i = sub_index(s);
    Json entry = Json::object();
    entry.set("ops", Json::number(static_cast<double>(ops[i])));
    entry.set("ops_per_sec",
              Json::number(wall_s > 0.0
                               ? static_cast<double>(ops[i]) / wall_s
                               : 0.0));
    entry.set("cpu_ms", Json::number(static_cast<double>(ns[i]) / 1e6));
    obj.set(std::string(to_string(s)), std::move(entry));
  }
  return obj;
}

}  // namespace catalyst::obs
