// Wall-clock self-profile: where does the *simulator's* CPU time go?
//
// Two layers, both thread-local so the hot path never touches shared
// state:
//
//  * op counters — always on. One thread-local increment per dispatched
//    event / exchange / fetch / edge request / flash op; the cost is a
//    TLS load and an add, which is what the <3% engine_hotpath overhead
//    gate budgets for.
//  * exclusive cycle timers — off by default, enabled process-wide with
//    set_timing(true) (fleetsim --self-profile, engine_hotpath
//    --self-profile). A ScopedTimer charges elapsed wall time to the
//    innermost open subsystem scope only (entering a nested scope first
//    charges the parent for the segment so far), so shares sum to ~100%
//    of instrumented time instead of double-counting nesting.
//
// Shards snapshot the thread-local counters around their run and publish
// the delta through FleetReport::prof (merged at shard join, deliberately
// never serialized — wall-clock numbers must not touch byte-stable
// reports).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"

namespace catalyst::obs {

enum class Sub : std::uint8_t {
  kLoop,       // EventLoop dispatch
  kTransport,  // Connection exchanges
  kClient,     // Browser fetch pipeline
  kSw,         // Service-Worker interceptions
  kEdge,       // edge-PoP request handling
  kFlash,      // AioEngine flash ops
  kFleet,      // shard user replay
};

inline constexpr std::size_t kSubCount = 7;

inline constexpr std::array<Sub, kSubCount> kAllSubs = {
    Sub::kLoop, Sub::kTransport, Sub::kClient, Sub::kSw,
    Sub::kEdge, Sub::kFlash,     Sub::kFleet,
};

constexpr std::size_t sub_index(Sub s) { return static_cast<std::size_t>(s); }

constexpr std::string_view to_string(Sub s) {
  switch (s) {
    case Sub::kLoop: return "loop";
    case Sub::kTransport: return "transport";
    case Sub::kClient: return "client";
    case Sub::kSw: return "sw";
    case Sub::kEdge: return "edge";
    case Sub::kFlash: return "flash";
    case Sub::kFleet: return "fleet";
  }
  return "unknown";
}

/// Plain mergeable value type: per-subsystem op counts and exclusive
/// wall-clock nanoseconds (zero unless timing was enabled).
struct ProfCounters {
  std::array<std::uint64_t, kSubCount> ops{};
  std::array<std::uint64_t, kSubCount> ns{};

  void merge(const ProfCounters& other);

  /// Counters accumulated since `since` (element-wise subtraction).
  ProfCounters delta(const ProfCounters& since) const;

  bool any() const;
  std::uint64_t total_ops() const;
  std::uint64_t total_ns() const;

  /// Multi-line human table (ops, ops/sec over `wall_s`, exclusive cpu
  /// share) for stderr emission.
  std::string render_table(double wall_s) const;

  /// {"loop": {"ops": N, "cpu_ms": M}, ...} for bench JSON output.
  Json to_json(double wall_s) const;

  bool operator==(const ProfCounters& other) const = default;
};

/// This thread's live counters.
ProfCounters& tls_prof();

/// Always-on op tally; the hot-path instrumentation primitive.
inline void count(Sub s) { ++tls_prof().ops[sub_index(s)]; }

/// Process-wide switch for the wall-clock timers. Flip before running a
/// workload; toggling inside an open ScopedTimer scope is unsupported.
void set_timing(bool enabled);
bool timing_enabled();

/// RAII exclusive-attribution timer. No-op (one relaxed atomic load) when
/// timing is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Sub sub);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Sub prev_{};
  bool active_ = false;
};

}  // namespace catalyst::obs
