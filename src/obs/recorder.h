// Phase recording: per-fetch timelines folded into per-arm breakdowns.
//
// A Recorder is owned by whoever wants a breakdown (a fleet Shard owns one
// per strategy arm; difftest owns one per differential arm) and is handed
// to the engine as a non-owning pointer on the EventLoop. Instrumentation
// sites do `if (auto* rec = loop.recorder()) rec->record(...)`, so a null
// recorder — the default — costs one pointer load per site and records
// nothing. All recording is in virtual time: attaching a recorder can
// never perturb the simulation.
#pragma once

#include <array>
#include <cstdint>

#include "obs/histogram.h"
#include "obs/phase.h"
#include "util/types.h"

namespace catalyst::obs {

/// Accumulates the phase durations of one in-flight fetch so they can be
/// committed to the recorder in a single call when the fetch completes.
/// Plain int64 nanoseconds per phase; cheap to copy into completion
/// callbacks.
class PhaseTimeline {
 public:
  void add(Phase p, Duration d) { ns_[phase_index(p)] += d.count(); }

  Duration at(Phase p) const { return Duration{ns_[phase_index(p)]}; }

  /// Sum over every phase (the caller controls which phases it filled).
  Duration total() const {
    std::int64_t sum = 0;
    for (std::int64_t n : ns_) sum += n;
    return Duration{sum};
  }

  const std::array<std::int64_t, kPhaseCount>& raw() const { return ns_; }

 private:
  std::array<std::int64_t, kPhaseCount> ns_{};
};

/// One histogram per phase; the per-arm aggregate that rides FleetReport.
struct PhaseBreakdown {
  std::array<PhaseHistogram, kPhaseCount> phases;

  void record(Phase p, Duration d) { phases[phase_index(p)].add(d); }

  void merge(const PhaseBreakdown& other) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      phases[i].merge(other.phases[i]);
    }
  }

  bool any() const {
    for (const auto& h : phases) {
      if (!h.empty()) return true;
    }
    return false;
  }

  const PhaseHistogram& of(Phase p) const { return phases[phase_index(p)]; }

  /// Sum of recorded virtual time across client-side phases only (the
  /// phases that partition fetch durations; see phase.h).
  std::int64_t client_total_ns() const {
    std::int64_t sum = 0;
    for (Phase p : kAllPhases) {
      if (!is_server_side(p)) {
        sum += static_cast<std::int64_t>(of(p).total_ns());
      }
    }
    return sum;
  }
};

class Recorder {
 public:
  void record(Phase p, Duration d) { breakdown_.record(p, d); }

  void record(const PhaseTimeline& t) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (t.raw()[i] > 0) {
        breakdown_.phases[i].add(Duration{t.raw()[i]});
      }
    }
  }

  const PhaseBreakdown& breakdown() const { return breakdown_; }
  void reset() { breakdown_ = PhaseBreakdown{}; }

 private:
  PhaseBreakdown breakdown_;
};

}  // namespace catalyst::obs
