// Mergeable fixed-bucket log-scale latency histogram.
//
// The fleet needs per-phase p50/p95/p99 that are bit-identical for any
// --threads value, which rules out Summary's keep-every-sample approach
// for per-fetch phase data (millions of samples per arm). Instead each
// shard folds samples into 64 fixed log10-spaced buckets (8 per decade,
// 1 µs .. 100 s) with integer counts; merging shards is integer addition,
// so it is commutative and exact, and quantiles computed from the merged
// counts are a pure function of the totals. The bucket->index mapping is
// the shared BinAxis core from util/stats applied in log10(µs) space.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/stats.h"
#include "util/types.h"

namespace catalyst::obs {

class PhaseHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// log10(µs) axis: bucket i covers [10^(i/8), 10^((i+1)/8)) µs.
  static const BinAxis& axis();

  /// Folds one sample. Zero and negative durations are ignored — a phase
  /// that took no time contributes nothing to where time went.
  void add(Duration d);

  /// Integer bucket addition; commutative and exact, so any merge order
  /// over per-shard histograms yields identical bytes downstream.
  void merge(const PhaseHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t total_ns() const { return total_ns_; }
  bool empty() const { return count_ == 0; }

  /// Quantile in milliseconds, p in [0, 100]. Rank interpolation matches
  /// Summary::percentile; within a bucket the value is geometrically
  /// interpolated between the bucket edges (log-scale axis). Deterministic
  /// given the integer bucket counts. Returns 0 when empty.
  double quantile_ms(double p) const;

  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
};

}  // namespace catalyst::obs
