#include "obs/histogram.h"

#include <cmath>

namespace catalyst::obs {

const BinAxis& PhaseHistogram::axis() {
  // 0..8 in log10(µs): 1 µs up to 100 s, 8 buckets per decade.
  static const BinAxis kAxis(0.0, 8.0, kBuckets);
  return kAxis;
}

void PhaseHistogram::add(Duration d) {
  if (d.count() <= 0) return;
  const double us = static_cast<double>(d.count()) / 1e3;
  ++counts_[axis().index(std::log10(us))];
  ++count_;
  total_ns_ += static_cast<std::uint64_t>(d.count());
}

void PhaseHistogram::merge(const PhaseHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  total_ns_ += other.total_ns_;
}

double PhaseHistogram::quantile_ms(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Same rank convention as Summary::percentile: rank over count-1 slots.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    const auto in_bucket = static_cast<double>(counts_[i]);
    const double first = static_cast<double>(seen);
    if (rank < first + in_bucket) {
      // Geometric interpolation between the bucket's µs edges; sample
      // positions spread evenly through the bucket.
      const double frac = (rank - first + 0.5) / in_bucket;
      const double lo_us = std::pow(10.0, axis().lower_edge(i));
      const double hi_us = std::pow(10.0, axis().upper_edge(i));
      return lo_us * std::pow(hi_us / lo_us, frac) / 1e3;
    }
    seen += counts_[i];
  }
  const double top_us = std::pow(10.0, axis().upper_edge(kBuckets - 1));
  return top_us / 1e3;
}

}  // namespace catalyst::obs
