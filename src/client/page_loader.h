// The dependency-resolution engine: parse HTML, discover subresources,
// fetch them with realistic blocking semantics, fire OnLoad.
//
// Modeled semantics (matching how Chrome loads the paper's Figure-1 page):
//   * After the base HTML arrives and parses, all statically declared
//     resources start fetching in parallel (preload-scanner behaviour).
//   * Scripts execute in document order, each after its bytes arrive and
//     all known stylesheets have arrived (CSS blocks execution).
//   * Script execution may trigger further fetches (`@fetch` directives):
//     fetched scripts execute on arrival and may recurse — the b.js →
//     c.js → d.jpg chain of Figure 1.
//   * Stylesheets parse on arrival and fetch their url()/@import
//     references.
//   * OnLoad fires when no fetch, parse or execution work remains.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/metrics.h"
#include "http/mime.h"
#include "util/url.h"

namespace catalyst::client {

class Browser;

class PageLoader : public std::enable_shared_from_this<PageLoader> {
 public:
  PageLoader(Browser& browser, Url page_url);

  /// Begins the load; `on_done` fires at OnLoad (post-onload SW
  /// registration continues afterwards, outside the measured window).
  void start(std::function<void(PageLoadResult)> on_done);

  /// 103 Early Hints arrived for `origin_host`: start preloading the
  /// hinted URLs. Later document discoveries of the same URLs consume the
  /// preloaded bytes instead of refetching.
  void on_preload_hints(const std::string& origin_host,
                        const std::vector<std::string>& urls);

 private:
  struct ScriptSlot {
    Url url;
    bool arrived = false;
    bool executed = false;
    std::string content;
  };

  void begin_task() { ++active_; }
  void end_task();

  /// Deduplicating fetch wrapper; updates metrics and the trace.
  /// Returns false when the URL was already requested this load.
  bool fetch_subresource(const Url& url, http::ResourceClass rc,
                         std::function<void(const FetchOutcome&)> then);

  void on_html(const FetchOutcome& outcome);
  void handle_discovered(const std::string& raw_url,
                         http::ResourceClass rc, bool ordered_script);
  void handle_css_arrival(const Url& url, const std::string& content);
  void handle_dynamic_fetch(const Url& base, const std::string& raw_url);
  void try_execute_scripts();
  void execute_script_content(const Url& url, const std::string& content);
  /// Marks first paint once the HTML is parsed and no render-blocking
  /// stylesheet remains outstanding.
  void maybe_mark_first_paint();
  void record(const Url& url, http::ResourceClass rc,
              const FetchOutcome& outcome);
  void finish();
  void post_onload_sw_registration();

  Browser& browser_;
  Url page_url_;
  std::function<void(PageLoadResult)> on_done_;
  PageLoadResult result_;

  int active_ = 0;
  bool finished_ = false;
  std::set<std::string> requested_;
  std::vector<ScriptSlot> ordered_scripts_;
  std::size_t next_script_ = 0;
  int pending_css_ = 0;
  bool executing_ = false;  // re-entrancy guard for try_execute_scripts
  bool parse_done_ = false;
  bool first_paint_marked_ = false;
  TimePoint last_script_end_{};

  // Observed 200 responses by path — seeds the SW cache at registration.
  std::map<std::string, http::Response> observed_;
  bool saw_etag_config_ = false;

  // Early-Hints preload state: URLs being preloaded, completed preloads
  // awaiting their document discovery, and discoveries waiting on an
  // in-flight preload.
  std::set<std::string> preload_requested_;
  std::map<std::string, FetchOutcome> preloaded_;
  std::map<std::string,
           std::vector<std::function<void(const FetchOutcome&)>>>
      preload_waiters_;
};

}  // namespace catalyst::client
