#include "client/browser.h"

#include <stdexcept>

#include "client/page_loader.h"
#include "obs/recorder.h"
#include "obs/selfprof.h"
#include "server/session.h"
#include "util/bloom.h"

namespace catalyst::client {

Browser::Browser(netsim::Network& network, BrowserConfig config)
    : network_(network),
      config_(std::move(config)),
      http_cache_(config_.http_cache_capacity, /*allow_heuristic=*/true,
                  config_.negative),
      fetcher_(network, config_.client_host, config_.fetcher) {
  fetcher_.set_push_handler(
      [this](const std::string& origin, netsim::PushedResponse push) {
        on_push(origin, std::move(push));
      });
  fetcher_.set_promise_handler(
      [this](const std::string& origin, const std::string& target) {
        on_promise(origin, target);
      });
  fetcher_.set_hints_handler(
      [this](const std::string& origin,
             const std::vector<std::string>& urls) {
        if (current_loader_) current_loader_->on_preload_hints(origin, urls);
      });
}

Browser::~Browser() = default;

CatalystServiceWorker& Browser::service_worker(const std::string& host) {
  auto& slot = workers_[host];
  if (!slot) {
    slot = std::make_unique<CatalystServiceWorker>(
        config_.sw_cache_capacity, config_.negative);
  }
  return *slot;
}

bool Browser::sw_registered(const std::string& host) {
  if (!config_.service_workers_enabled) return false;
  const auto it = workers_.find(host);
  return it != workers_.end() && it->second->registered();
}

void Browser::register_service_worker(
    const std::string& host,
    const std::map<std::string, http::Response>& observed) {
  if (!config_.service_workers_enabled) return;
  CatalystServiceWorker& sw = service_worker(host);
  for (const auto& [path, response] : observed) {
    sw.observe_response(path, response, loop().now());
  }
  sw.set_registered();
}

std::string Browser::push_key(const std::string& origin_host,
                              const std::string& target) const {
  Url url;
  url.scheme = config_.fetcher.tls ? "https" : "http";
  url.host = origin_host;
  url.path = target;
  return url.to_string();
}

void Browser::on_promise(const std::string& origin_host,
                         const std::string& target) {
  promised_.insert(push_key(origin_host, target));
}

void Browser::on_push(const std::string& origin_host,
                      netsim::PushedResponse push) {
  const std::string key = push_key(origin_host, push.target);
  promised_.erase(key);
  // Pushed responses are cacheable like any other (claimed or not).
  http_cache_.store(key, push.response, loop().now(), loop().now());

  // Satisfy fetches that were parked on the promise.
  if (const auto waiters = promise_waiters_.find(key);
      waiters != promise_waiters_.end()) {
    auto parked = std::move(waiters->second);
    promise_waiters_.erase(waiters);
    for (auto& [start, on_done] : parked) {
      FetchOutcome outcome;
      outcome.response = push.response;
      outcome.source = netsim::FetchSource::Push;
      if (auto* rec = loop().recorder()) {
        rec->record(obs::Phase::kCacheLookup,
                    config_.processing.cache_hit_overhead);
      }
      deliver(start, config_.processing.cache_hit_overhead,
              std::move(outcome), std::move(on_done));
    }
    return;  // claimed; nothing left to park
  }
  pending_pushes_[key] = std::move(push.response);
}

http::Request Browser::build_request(
    const Url& url, bool is_navigation,
    const std::optional<Url>& referer) const {
  http::Request req = http::Request::get(url.path_and_query(), url.host);
  req.headers.set("Cookie",
                  server::make_session_cookie(config_.browser_id));
  if (!is_navigation && referer) {
    req.headers.set("Referer", referer->to_string());
  }
  req.headers.set("User-Agent", "catalyst-sim/1.0");

  // Cache digest (push-digest baseline): a bloom filter over this
  // origin's cached paths rides on the navigation request so the server
  // can skip pushing what we already hold.
  if (is_navigation && config_.send_cache_digest) {
    std::vector<std::string> paths;
    const std::string prefix = url.origin();
    for (const std::string& stored : http_cache_.stored_urls()) {
      if (const auto parsed = Url::parse(stored);
          parsed && parsed->host == url.host) {
        paths.push_back(parsed->path);
      }
    }
    if (!paths.empty()) {
      BloomFilter digest =
          BloomFilter::for_entries(paths.size(), 0.01);
      for (const std::string& path : paths) digest.insert(path);
      req.headers.set("Cache-Digest", digest.serialize());
    }
    (void)prefix;
  }
  return req;
}

void Browser::deliver(TimePoint start, Duration extra_delay,
                      FetchOutcome outcome,
                      std::function<void(FetchOutcome)> on_done) {
  outcome.start = start;
  loop().schedule_after(
      extra_delay,
      [this, outcome = std::move(outcome),
       on_done = std::move(on_done)]() mutable {
        outcome.finish = loop().now();
        on_done(std::move(outcome));
      });
}

void Browser::fetch(const Url& url, bool is_navigation,
                    const std::optional<Url>& referer,
                    std::function<void(FetchOutcome)> on_done) {
  const TimePoint start = loop().now();
  obs::count(obs::Sub::kClient);
  obs::ScopedTimer prof_timer(obs::Sub::kClient);
  Duration pipeline_delay = Duration::zero();

  // 1. Service Worker interception.
  const bool through_sw = sw_registered(url.host);
  bool force_revalidate = false;
  if (through_sw) {
    obs::count(obs::Sub::kSw);
    pipeline_delay += config_.processing.sw_interception_overhead;
    CatalystServiceWorker& sw = service_worker(url.host);
    if (is_navigation) {
      // The base HTML always goes to the origin (it carries the fresh
      // map); its no-cache headers already force revalidation, but the SW
      // never trusts a stale map's world view either.
      force_revalidate = true;
    } else {
      const auto intercept = sw.try_serve(url.path, loop().now());
      switch (intercept.decision) {
        case CatalystServiceWorker::Decision::ServeFromCache: {
          FetchOutcome outcome;
          outcome.response = *intercept.response;
          outcome.source = netsim::FetchSource::SwCache;
          if (audit_) {
            const auto etag = outcome.response.etag();
            outcome.stale = etag && !audit_(url, *etag);
          }
          if (auto* rec = loop().recorder()) {
            rec->record(obs::Phase::kSwDecision, pipeline_delay);
          }
          deliver(start, pipeline_delay, std::move(outcome),
                  std::move(on_done));
          return;
        }
        case CatalystServiceWorker::Decision::ForwardRevalidate:
          // Map-covered but changed: the HTTP cache's TTL must not serve
          // the stale copy.
          force_revalidate = true;
          if (intercept.fallback) {
            // Degradation fallback (untrusted map / integrity failure):
            // tag the outcome so the page load records it.
            on_done = [cb = std::move(on_done)](FetchOutcome outcome) mutable {
              outcome.sw_fallback = true;
              cb(std::move(outcome));
            };
          }
          break;
        case CatalystServiceWorker::Decision::ForwardDefault:
          // Uncovered: plain fetch() — status-quo cache semantics.
          break;
      }
    }
  }

  // 2–4. HTTP cache, push store, network.
  network_fetch(url, is_navigation, referer, force_revalidate, start,
                std::move(on_done));
}

void Browser::network_fetch(const Url& url, bool is_navigation,
                            const std::optional<Url>& referer,
                            bool force_revalidate, TimePoint start,
                            std::function<void(FetchOutcome)> on_done) {
  const std::string key = url.to_string();
  const cache::LookupResult lookup = http_cache_.lookup(key, loop().now());

  // Oracle short-circuit: perfect validation knowledge, zero RTTs.
  if (oracle_ && lookup.entry != nullptr) {
    const auto cached_etag = lookup.entry->etag();
    if (cached_etag && oracle_(url, *cached_etag)) {
      FetchOutcome outcome;
      outcome.response = lookup.entry->response;
      outcome.source = netsim::FetchSource::BrowserCache;
      if (auto* rec = loop().recorder()) {
        rec->record(obs::Phase::kCacheLookup,
                    config_.processing.cache_hit_overhead);
      }
      deliver(start, config_.processing.cache_hit_overhead,
              std::move(outcome), std::move(on_done));
      return;
    }
    // Changed on origin: a plain fetch (the oracle knows a conditional
    // request would miss anyway).
    http::Request req = build_request(url, is_navigation, referer);
    fetcher_.fetch(url.host, std::move(req),
                   [this, key, url, start, on_done = std::move(on_done)](
                       http::Response response) mutable {
                     const TimePoint now = loop().now();
                     http_cache_.store(key, response, start, now);
                     FetchOutcome outcome;
                     outcome.response = std::move(response);
                     outcome.source = netsim::FetchSource::Network;
                     deliver(start, Duration::zero(), std::move(outcome),
                             std::move(on_done));
                   });
    return;
  }

  const bool have_entry = lookup.entry != nullptr;
  // mutate_serve_stale is the StaleServeStrategy oracle self-test: any
  // cached entry counts as fresh, skipping the revalidation RFC 9111
  // requires once the freshness lifetime has lapsed.
  const bool fresh_hit =
      lookup.decision == cache::LookupDecision::FreshHit ||
      (config_.mutate_serve_stale && have_entry);

  if (fresh_hit && !force_revalidate) {
    FetchOutcome outcome;
    outcome.response = lookup.entry->response;
    outcome.source = netsim::FetchSource::BrowserCache;
    if (audit_) {
      const auto etag = outcome.response.etag();
      // Entries without validators cannot be audited; count them as
      // suspect only when an ETag exists and mismatches.
      outcome.stale = etag && !audit_(url, *etag);
    }
    if (auto* rec = loop().recorder()) {
      rec->record(obs::Phase::kCacheLookup,
                  config_.processing.cache_hit_overhead);
    }
    deliver(start, config_.processing.cache_hit_overhead,
            std::move(outcome), std::move(on_done));
    return;
  }

  // Pushed resources: claim a completed push, or park the fetch on an
  // outstanding PUSH_PROMISE instead of requesting a duplicate.
  if (const auto it = pending_pushes_.find(key);
      it != pending_pushes_.end()) {
    FetchOutcome outcome;
    outcome.response = std::move(it->second);
    outcome.source = netsim::FetchSource::Push;
    pending_pushes_.erase(it);
    if (auto* rec = loop().recorder()) {
      rec->record(obs::Phase::kCacheLookup,
                  config_.processing.cache_hit_overhead);
    }
    deliver(start, config_.processing.cache_hit_overhead,
            std::move(outcome), std::move(on_done));
    return;
  }
  if (promised_.contains(key)) {
    promise_waiters_[key].emplace_back(start, std::move(on_done));
    return;
  }

  http::Request req = build_request(url, is_navigation, referer);
  bool conditional = false;
  if (have_entry) {
    if (const auto etag = lookup.entry->etag()) {
      req.headers.set(http::kIfNoneMatch, etag->to_string());
      conditional = true;
    } else if (const auto lm = lookup.entry->response.headers.get(
                   http::kLastModified)) {
      req.headers.set(http::kIfModifiedSince, *lm);
      conditional = true;
    }
  }

  fetcher_.fetch(
      url.host, std::move(req),
      [this, key, url, is_navigation, start, conditional,
       on_done = std::move(on_done)](http::Response response) mutable {
        const TimePoint now = loop().now();
        FetchOutcome outcome;
        if (conditional &&
            response.status == http::Status::NotModified) {
          const cache::CacheEntry* refreshed =
              http_cache_.apply_not_modified(key, response, start, now);
          if (refreshed != nullptr) {
            outcome.response = refreshed->response;
            // Hand the map header through to the caller (a 304 on the
            // base HTML still carries a fresh X-Etag-Config).
            if (const auto map =
                    response.headers.get(http::kXEtagConfig)) {
              outcome.response.headers.set(http::kXEtagConfig, *map);
            }
            outcome.source = netsim::FetchSource::NotModified;
          } else {
            // Entry vanished (evicted mid-flight): degrade to the 304
            // itself; callers treat an empty body as a failed load.
            outcome.response = std::move(response);
            outcome.source = netsim::FetchSource::NotModified;
          }
        } else {
          http_cache_.store(key, response, start, now);
          if (sw_registered(url.host)) {
            service_worker(url.host).observe_response(url.path, response,
                                                      now);
          }
          outcome.response = std::move(response);
          outcome.source = netsim::FetchSource::Network;
        }
        deliver(start, Duration::zero(), std::move(outcome),
                std::move(on_done));
      });
}

void Browser::load_page(const Url& page_url,
                        std::function<void(PageLoadResult)> on_done) {
  if (current_loader_) {
    throw std::logic_error("Browser: concurrent page loads not supported");
  }
  current_loader_ = std::make_shared<PageLoader>(*this, page_url);
  current_loader_->start(
      [this, on_done = std::move(on_done)](PageLoadResult result) {
        current_loader_.reset();
        on_done(std::move(result));
      });
}

void Browser::end_visit() {
  fetcher_.close_all();
  pending_pushes_.clear();
  promised_.clear();
  promise_waiters_.clear();
}

}  // namespace catalyst::client
