// Page-load measurement types (the paper's metric is OnLoad PLT).
#pragma once

#include <cstdint>

#include "http/message.h"
#include "netsim/trace.h"
#include "util/types.h"

namespace catalyst::client {

/// Outcome of one resource fetch through the browser's pipeline.
struct FetchOutcome {
  http::Response response;
  netsim::FetchSource source = netsim::FetchSource::Network;
  TimePoint start{};
  TimePoint finish{};
  /// Set by the (measurement-only) staleness audit: the bytes served from
  /// a cache differ from the origin's current content.
  bool stale = false;
  /// The fetch went to the network as a degradation fallback: the SW's
  /// map was untrustworthy or the cached body failed its integrity check.
  bool sw_fallback = false;
};

/// Result of one full page load.
struct PageLoadResult {
  TimePoint start{};
  TimePoint onload{};
  /// First-paint approximation: base HTML parsed and every render-blocking
  /// stylesheet known at that point loaded (paper §6 defers FCP/SI/TTI to
  /// future work; this is the FCP half).
  TimePoint first_paint{};
  /// Interactivity approximation: first paint plus all synchronous script
  /// execution finished.
  TimePoint interactive{};

  Duration plt() const { return onload - start; }
  Duration fcp() const { return first_paint - start; }
  Duration tti() const { return interactive - start; }

  std::uint32_t resources_total = 0;
  std::uint32_t from_network = 0;      // full downloads
  std::uint32_t from_cache = 0;        // fresh browser-cache hits
  std::uint32_t not_modified = 0;      // revalidated 304s
  std::uint32_t from_sw_cache = 0;     // CacheCatalyst hits
  std::uint32_t from_push = 0;         // server-push deliveries

  ByteCount bytes_downloaded = 0;      // wire bytes received during load
  std::uint32_t rtts = 0;              // round trips consumed during load

  /// Resources served from a cache whose bytes no longer match the
  /// origin (only counted when the testbed installs the staleness audit).
  /// The paper's correctness claim: this is always 0 for CacheCatalyst's
  /// SW-served resources; status-quo caching can serve stale within TTL.
  std::uint32_t stale_served = 0;

  /// Byte-equivalence oracle tallies (check::ByteOracle verdicts; all zero
  /// unless the testbed installs a serve classifier). checked counts
  /// auditable serves: fresh + allowed_stale + violations.
  std::uint32_t oracle_checked = 0;
  std::uint32_t oracle_allowed_stale = 0;
  std::uint32_t oracle_violations = 0;
  /// Security subclasses of oracle_violations (included in its count):
  /// serves carrying another request's reflected unkeyed input, and the
  /// subset identifying a different user's request.
  std::uint32_t oracle_poisoned = 0;
  std::uint32_t oracle_leaks = 0;

  /// Negative-caching telemetry: error responses (404/410) answered from
  /// a client-side cache without contacting the origin (RFC 9111 §4).
  std::uint32_t negative_hits = 0;

  /// Simulation-engine events executed to produce this load (perf
  /// telemetry for bench/engine_hotpath; never serialized into reports).
  std::uint64_t loop_events = 0;

  /// Fault/degradation telemetry — all zero on clean runs.
  std::uint32_t fallback_revalidations = 0;  // SW degraded-mode cond. GETs
  std::uint32_t timeouts_fired = 0;          // request deadlines that fired
  std::uint32_t retries = 0;                 // re-dispatched attempts
  std::uint32_t connection_failures = 0;     // detectable mid-stream errors
  std::uint32_t failed_loads = 0;            // resources finishing with 5xx

  netsim::TraceLog trace;
};

/// Modeled client-side compute costs. Values are deliberately small next
/// to network time (the paper's effect is a network effect) but non-zero,
/// so compute-heavy baselines (e.g. push floods) pay realistically.
struct ProcessingModel {
  Duration html_parse_per_kib = microseconds(50);
  Duration css_parse_per_kib = microseconds(20);
  Duration js_exec_per_kib = microseconds(100);
  Duration sw_interception_overhead = microseconds(200);
  Duration cache_hit_overhead = microseconds(100);

  Duration html_parse_cost(ByteCount bytes) const {
    return scale(html_parse_per_kib, bytes);
  }
  Duration css_parse_cost(ByteCount bytes) const {
    return scale(css_parse_per_kib, bytes);
  }
  Duration js_exec_cost(ByteCount bytes) const {
    return scale(js_exec_per_kib, bytes);
  }

  /// Mobile-class device: parsing and script execution run several times
  /// slower than on desktop (the regime of the paper's motivation [21-23,
  /// 30, 47, 48]).
  static ProcessingModel mobile() {
    ProcessingModel pm;
    pm.html_parse_per_kib = microseconds(200);
    pm.css_parse_per_kib = microseconds(80);
    pm.js_exec_per_kib = microseconds(450);
    pm.sw_interception_overhead = microseconds(600);
    pm.cache_hit_overhead = microseconds(300);
    return pm;
  }

 private:
  static Duration scale(Duration per_kib, ByteCount bytes) {
    return seconds_f(to_seconds(per_kib) *
                     (static_cast<double>(bytes) / 1024.0));
  }
};

}  // namespace catalyst::client
