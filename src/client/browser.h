// The browser emulator: HTTP cache + Service Workers + connection pools
// composed into the fetch pipeline, plus the page-load entry point.
//
// Pipeline per resource (the order mirrors Chrome):
//   1. Service Worker interception (when registered for the origin):
//      a CacheCatalyst map hit serves cached bytes with zero RTTs; a miss
//      forwards with revalidate semantics (the SW never trusts max-age —
//      the map is the freshness authority, so forwarded fetches carry
//      If-None-Match instead of serving possibly-stale fresh hits).
//   2. Same-visit push store (HTTP/2 pushed responses awaiting a claim).
//   3. HTTP cache (RFC 9111): fresh hit / revalidate / miss.
//   4. Network via per-origin connection pools.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "cache/http_cache.h"
#include "client/fetcher.h"
#include "client/metrics.h"
#include "client/service_worker.h"
#include "netsim/network.h"
#include "util/url.h"

namespace catalyst::client {

/// Oracle hook (perfect-knowledge lower bound): given a URL and the cached
/// ETag, returns whether the cached copy is current — with zero network
/// cost. Unset for all realistic configurations.
using OracleValidator =
    std::function<bool(const Url& url, const http::Etag& cached_etag)>;

/// Byte-equivalence serve classifier (check::ByteOracle::classify bound by
/// the testbed). Measurement-only: called once per recorded resource with
/// the delivered outcome; returns the oracle's verdict.
using ServeClassifier =
    std::function<netsim::ServeClass(const Url& url,
                                     const FetchOutcome& outcome)>;

struct BrowserConfig {
  std::string client_host = "client";
  std::string browser_id = "client-0";  // session cookie value
  FetcherConfig fetcher;
  ProcessingModel processing;
  ByteCount http_cache_capacity = MiB(256);
  ByteCount sw_cache_capacity = MiB(256);
  /// Master switch for Service Worker support (CacheCatalyst requires it;
  /// baselines run with it off so registration snippets are inert).
  bool service_workers_enabled = false;

  /// Negative caching of 404/410 responses at the HTTP cache and SW
  /// (off by default — zero-config runs stay byte-identical).
  cache::NegativePolicy negative;

  /// Attach a Cache-Digest header (bloom filter over cached same-origin
  /// paths) to navigation requests — the cache-digest push baseline.
  bool send_cache_digest = false;

  /// Deliberate bug for oracle self-tests (StaleServeStrategy): treat any
  /// cached entry as a fresh hit, skipping revalidation past its freshness
  /// lifetime. The byte-equivalence oracle must flag the resulting serves.
  bool mutate_serve_stale = false;
};

class PageLoader;

class Browser {
 public:
  Browser(netsim::Network& network, BrowserConfig config);
  ~Browser();

  Browser(const Browser&) = delete;
  Browser& operator=(const Browser&) = delete;

  /// Loads a page to OnLoad; the result is delivered via the event loop.
  /// One load at a time. Post-onload work (SW registration) continues
  /// after the callback.
  void load_page(const Url& page_url,
                 std::function<void(PageLoadResult)> on_done);

  /// Single-resource fetch through the full pipeline.
  void fetch(const Url& url, bool is_navigation,
             const std::optional<Url>& referer,
             std::function<void(FetchOutcome)> on_done);

  /// Ends the current visit: drops connections and unclaimed pushes
  /// (browser caches and Service Workers persist).
  void end_visit();

  netsim::Network& network() { return network_; }
  netsim::EventLoop& loop() { return network_.loop(); }
  const BrowserConfig& config() const { return config_; }
  const ProcessingModel& processing() const { return config_.processing; }

  cache::HttpCache& http_cache() { return http_cache_; }
  Fetcher& fetcher() { return fetcher_; }

  /// Service worker for an origin host (created on demand, initially
  /// unregistered).
  CatalystServiceWorker& service_worker(const std::string& host);
  bool sw_registered(const std::string& host);

  /// Hosts with an instantiated service worker, in map (ascending host)
  /// order. Parked-state snapshots serialize workers in this order so the
  /// blob bytes are canonical.
  std::vector<std::string> service_worker_hosts() const {
    std::vector<std::string> hosts;
    hosts.reserve(workers_.size());
    for (const auto& [host, worker] : workers_) hosts.push_back(host);
    return hosts;
  }

  void set_oracle(OracleValidator oracle) { oracle_ = std::move(oracle); }

  /// Measurement-only staleness audit: when set, every response served
  /// from a cache is checked against the origin's current ETag and
  /// FetchOutcome::stale is flagged on mismatch. Unlike the oracle this
  /// never changes behaviour — it only observes.
  void set_staleness_audit(OracleValidator audit) {
    audit_ = std::move(audit);
  }

  /// Byte-equivalence oracle hook; measurement-only like the audit.
  void set_serve_classifier(ServeClassifier classifier) {
    classifier_ = std::move(classifier);
  }

  /// Runs the installed serve classifier (Unchecked when none is set).
  netsim::ServeClass classify_serve(const Url& url,
                                    const FetchOutcome& outcome) const {
    return classifier_ ? classifier_(url, outcome)
                       : netsim::ServeClass::Unchecked;
  }

  /// Seeds an origin's SW cache from responses observed in the completing
  /// page load (install-time precache; served from browser memory, no
  /// network) and marks it registered.
  void register_service_worker(
      const std::string& host,
      const std::map<std::string, http::Response>& observed);

 private:
  friend class PageLoader;

  std::string push_key(const std::string& origin_host,
                       const std::string& target) const;
  void on_push(const std::string& origin_host, netsim::PushedResponse push);
  void on_promise(const std::string& origin_host, const std::string& target);
  http::Request build_request(const Url& url, bool is_navigation,
                              const std::optional<Url>& referer) const;
  void network_fetch(const Url& url, bool is_navigation,
                     const std::optional<Url>& referer,
                     bool force_revalidate, TimePoint start,
                     std::function<void(FetchOutcome)> on_done);
  void deliver(TimePoint start, Duration extra_delay, FetchOutcome outcome,
               std::function<void(FetchOutcome)> on_done);

  netsim::Network& network_;
  BrowserConfig config_;
  cache::HttpCache http_cache_;
  Fetcher fetcher_;
  std::map<std::string, std::unique_ptr<CatalystServiceWorker>> workers_;
  std::map<std::string, http::Response> pending_pushes_;  // by full URL
  // Promised-but-not-yet-arrived push targets, and fetches waiting on them.
  std::set<std::string> promised_;
  std::map<std::string,
           std::vector<std::pair<TimePoint, std::function<void(FetchOutcome)>>>>
      promise_waiters_;
  OracleValidator oracle_;
  OracleValidator audit_;
  ServeClassifier classifier_;
  std::shared_ptr<PageLoader> current_loader_;
};

}  // namespace catalyst::client
