// Per-origin connection pools — the browser's network stack.
//
// HTTP/1.1 mode opens up to six parallel connections per origin (Chrome's
// limit) and serializes requests on each; HTTP/2 mode multiplexes one
// connection and receives server pushes. Connections do not survive
// between page visits (the revisit delays in the evaluation are minutes to
// a week — far beyond keep-alive).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "netsim/transport.h"

namespace catalyst::client {

/// Client-side resilience knobs. Disabled by default, in which case the
/// fetcher behaves exactly as it always has — no timers, no retries, no
/// extra events — so zero-fault runs stay byte-identical.
struct ResilienceConfig {
  bool enabled = false;

  /// Per-request deadline. Silent faults (stalled transfers, blackholed
  /// origins) raise no error; this timer is the only recovery path.
  Duration request_timeout = seconds(15);

  /// Retry budget per request after the first attempt. Only idempotent
  /// GETs are retried; anything else fails straight to a 504.
  int max_retries = 2;

  /// Capped exponential backoff between attempts.
  Duration backoff_base = milliseconds(200);
  double backoff_multiplier = 2.0;
  Duration backoff_cap = seconds(5);
};

/// Per-visit resilience telemetry (reset by close_all, like the RTT and
/// byte aggregates).
struct FetcherStats {
  std::uint64_t timeouts_fired = 0;
  std::uint64_t retries = 0;
  std::uint64_t connection_failures = 0;
  /// Requests that exhausted their retry budget; the caller saw a
  /// synthesized 504 Gateway Timeout.
  std::uint64_t failed_requests = 0;
};

struct FetcherConfig {
  netsim::Protocol protocol = netsim::Protocol::H1;
  bool tls = true;
  std::size_t max_connections_per_origin = 6;
  ResilienceConfig resilience;
};

class Fetcher {
 public:
  using ResponseCallback = std::function<void(http::Response)>;
  /// Receives (origin host, pushed response).
  using PushCallback =
      std::function<void(const std::string&, netsim::PushedResponse)>;

  Fetcher(netsim::Network& network, std::string client_host,
          FetcherConfig config);

  /// Dispatches a request to `origin_host`, creating/reusing pooled
  /// connections. Responses arrive via the event loop.
  void fetch(const std::string& origin_host, http::Request request,
             ResponseCallback on_response);

  /// Receives HTTP/2 server pushes from any connection.
  void set_push_handler(PushCallback handler) {
    push_handler_ = std::move(handler);
  }

  /// Receives (origin host, promised target) when a PUSH_PROMISE lands.
  using PromiseCallback =
      std::function<void(const std::string&, const std::string&)>;
  void set_promise_handler(PromiseCallback handler) {
    promise_handler_ = std::move(handler);
  }

  /// Receives (origin host, hinted URLs) when a 103 Early Hints lands.
  using HintsCallback = std::function<void(const std::string&,
                                           const std::vector<std::string>&)>;
  void set_hints_handler(HintsCallback handler) {
    hints_handler_ = std::move(handler);
  }

  /// Drops all connections (between visits).
  void close_all();

  /// Aggregate over all current connections (reset by close_all — callers
  /// snapshot per visit).
  int total_rtts() const;
  ByteCount total_bytes_received() const;
  std::size_t connection_count() const;

  const FetcherStats& stats() const { return stats_; }

  /// Origins whose DNS lookup cost has been paid. Unlike connections and
  /// per-visit stats this set persists across visits (a user does not
  /// re-resolve a host they visited yesterday), so parked-state snapshots
  /// must carry it: a revived user skipping/paying the wrong DNS delay
  /// would shift every subsequent fetch time. std::set — canonical order.
  const std::set<std::string>& dns_resolved() const { return dns_resolved_; }
  void restore_dns_resolved(const std::string& origin_host) {
    dns_resolved_.insert(origin_host);
  }

 private:
  struct PendingFetch;

  netsim::Connection& pick_connection(const std::string& origin_host);

  /// Resilient path: dispatches one attempt with a deadline timer and
  /// attempt-token guards against late responses/errors.
  void dispatch(const std::shared_ptr<PendingFetch>& fetch);
  void retry_or_fail(const std::shared_ptr<PendingFetch>& fetch);

  netsim::Network& network_;
  std::string client_host_;
  FetcherConfig config_;
  std::map<std::string, std::vector<std::unique_ptr<netsim::Connection>>>
      pools_;
  PushCallback push_handler_;
  PromiseCallback promise_handler_;
  HintsCallback hints_handler_;
  std::set<std::string> dns_resolved_;  // origins already resolved
  FetcherStats stats_;
};

}  // namespace catalyst::client
