// Per-origin connection pools — the browser's network stack.
//
// HTTP/1.1 mode opens up to six parallel connections per origin (Chrome's
// limit) and serializes requests on each; HTTP/2 mode multiplexes one
// connection and receives server pushes. Connections do not survive
// between page visits (the revisit delays in the evaluation are minutes to
// a week — far beyond keep-alive).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "netsim/transport.h"

namespace catalyst::client {

struct FetcherConfig {
  netsim::Protocol protocol = netsim::Protocol::H1;
  bool tls = true;
  std::size_t max_connections_per_origin = 6;
};

class Fetcher {
 public:
  using ResponseCallback = std::function<void(http::Response)>;
  /// Receives (origin host, pushed response).
  using PushCallback =
      std::function<void(const std::string&, netsim::PushedResponse)>;

  Fetcher(netsim::Network& network, std::string client_host,
          FetcherConfig config);

  /// Dispatches a request to `origin_host`, creating/reusing pooled
  /// connections. Responses arrive via the event loop.
  void fetch(const std::string& origin_host, http::Request request,
             ResponseCallback on_response);

  /// Receives HTTP/2 server pushes from any connection.
  void set_push_handler(PushCallback handler) {
    push_handler_ = std::move(handler);
  }

  /// Receives (origin host, promised target) when a PUSH_PROMISE lands.
  using PromiseCallback =
      std::function<void(const std::string&, const std::string&)>;
  void set_promise_handler(PromiseCallback handler) {
    promise_handler_ = std::move(handler);
  }

  /// Receives (origin host, hinted URLs) when a 103 Early Hints lands.
  using HintsCallback = std::function<void(const std::string&,
                                           const std::vector<std::string>&)>;
  void set_hints_handler(HintsCallback handler) {
    hints_handler_ = std::move(handler);
  }

  /// Drops all connections (between visits).
  void close_all();

  /// Aggregate over all current connections (reset by close_all — callers
  /// snapshot per visit).
  int total_rtts() const;
  ByteCount total_bytes_received() const;
  std::size_t connection_count() const;

 private:
  netsim::Connection& pick_connection(const std::string& origin_host);

  netsim::Network& network_;
  std::string client_host_;
  FetcherConfig config_;
  std::map<std::string, std::vector<std::unique_ptr<netsim::Connection>>>
      pools_;
  PushCallback push_handler_;
  PromiseCallback promise_handler_;
  HintsCallback hints_handler_;
  std::set<std::string> dns_resolved_;  // origins already resolved
};

}  // namespace catalyst::client
