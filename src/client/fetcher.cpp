#include "client/fetcher.h"

#include "obs/recorder.h"

namespace catalyst::client {

/// One logical request moving through the resilient path. Attempt tokens
/// guard every callback: a late response, error, or deadline from an
/// abandoned attempt compares its captured token against `attempt` and
/// bails, so exactly one outcome settles the request.
struct Fetcher::PendingFetch {
  std::string origin;
  http::Request request;  // kept so retries resend the original
  ResponseCallback on_response;
  int attempt = 1;
  int retries_left = 0;
  bool settled = false;
  netsim::Connection* conn = nullptr;  // carries the current attempt
  netsim::EventId deadline = 0;
};

Fetcher::Fetcher(netsim::Network& network, std::string client_host,
                 FetcherConfig config)
    : network_(network),
      client_host_(std::move(client_host)),
      config_(config) {}

netsim::Connection& Fetcher::pick_connection(
    const std::string& origin_host) {
  auto& pool = pools_[origin_host];
  const std::size_t limit = config_.protocol == netsim::Protocol::H2
                                ? 1
                                : config_.max_connections_per_origin;
  // Prefer an idle connection; otherwise open a new one while under the
  // limit; otherwise queue on the least-loaded. Broken connections stay
  // in the pool (scheduled callbacks still reference them; close_all
  // reaps them between visits) but count toward nothing.
  netsim::Connection* least_loaded = nullptr;
  std::size_t live = 0;
  for (auto& conn : pool) {
    if (conn->broken()) continue;
    ++live;
    if (conn->pending() == 0) return *conn;
    if (least_loaded == nullptr ||
        conn->pending() < least_loaded->pending()) {
      least_loaded = conn.get();
    }
  }
  if (live < limit) {
    // Only the first-ever connection to an origin resolves DNS; later
    // ones (and later visits within the session) use the resolver cache.
    const bool resolve_dns = dns_resolved_.insert(origin_host).second;
    pool.push_back(std::make_unique<netsim::Connection>(
        network_, client_host_, origin_host, config_.tls,
        config_.protocol, resolve_dns));
    return *pool.back();
  }
  return *least_loaded;
}

void Fetcher::fetch(const std::string& origin_host, http::Request request,
                    ResponseCallback on_response) {
  if (config_.resilience.enabled) {
    auto pending = std::make_shared<PendingFetch>();
    pending->origin = origin_host;
    pending->request = std::move(request);
    pending->on_response = std::move(on_response);
    pending->retries_left = config_.resilience.max_retries;
    dispatch(pending);
    return;
  }
  netsim::Connection& conn = pick_connection(origin_host);
  netsim::Connection::PushCallback push_cb;
  if (push_handler_) {
    push_cb = [this, origin_host](netsim::PushedResponse push) {
      if (push_handler_) push_handler_(origin_host, std::move(push));
    };
  }
  netsim::Connection::PromiseCallback promise_cb;
  if (promise_handler_) {
    promise_cb = [this, origin_host](const std::string& target) {
      if (promise_handler_) promise_handler_(origin_host, target);
    };
  }
  netsim::Connection::HintsCallback hints_cb;
  if (hints_handler_) {
    hints_cb = [this, origin_host](const std::vector<std::string>& urls) {
      if (hints_handler_) hints_handler_(origin_host, urls);
    };
  }
  conn.send_request(std::move(request), std::move(on_response),
                    std::move(push_cb), std::move(promise_cb),
                    std::move(hints_cb));
}

void Fetcher::dispatch(const std::shared_ptr<PendingFetch>& fetch) {
  netsim::Connection& conn = pick_connection(fetch->origin);
  fetch->conn = &conn;
  const int attempt = fetch->attempt;

  netsim::Connection::PushCallback push_cb;
  if (push_handler_) {
    push_cb = [this, origin = fetch->origin](netsim::PushedResponse push) {
      if (push_handler_) push_handler_(origin, std::move(push));
    };
  }
  netsim::Connection::PromiseCallback promise_cb;
  if (promise_handler_) {
    promise_cb = [this, origin = fetch->origin](const std::string& target) {
      if (promise_handler_) promise_handler_(origin, target);
    };
  }
  netsim::Connection::HintsCallback hints_cb;
  if (hints_handler_) {
    hints_cb = [this,
                origin = fetch->origin](const std::vector<std::string>& urls) {
      if (hints_handler_) hints_handler_(origin, urls);
    };
  }

  auto self = fetch;
  conn.send_request(
      fetch->request,
      [this, self, attempt](http::Response response) {
        if (self->settled || self->attempt != attempt) return;
        self->settled = true;
        network_.loop().cancel(self->deadline);
        self->on_response(std::move(response));
      },
      std::move(push_cb), std::move(promise_cb), std::move(hints_cb),
      [this, self, attempt] {
        if (self->settled || self->attempt != attempt) return;
        ++stats_.connection_failures;
        retry_or_fail(self);
      });
  fetch->deadline = network_.loop().schedule_after(
      config_.resilience.request_timeout, [this, self, attempt] {
        if (self->settled || self->attempt != attempt) return;
        ++stats_.timeouts_fired;
        // The connection carrying the attempt is wedged (stall or
        // blackholed origin): break it so queued requests re-route and
        // the pool opens a replacement.
        if (self->conn != nullptr) self->conn->fail();
        retry_or_fail(self);
      });
}

void Fetcher::retry_or_fail(const std::shared_ptr<PendingFetch>& fetch) {
  ++fetch->attempt;  // invalidate any callbacks from the dead attempt
  network_.loop().cancel(fetch->deadline);
  const ResilienceConfig& r = config_.resilience;
  if (fetch->request.method != http::Method::Get || fetch->retries_left <= 0) {
    // Budget exhausted (or non-idempotent request): settle with a
    // synthesized 504 so the page load completes and records the failure
    // instead of hanging.
    fetch->settled = true;
    ++stats_.failed_requests;
    http::Response response = http::Response::make(http::Status::GatewayTimeout);
    response.finalize(network_.loop().now());
    network_.loop().schedule_after(
        Duration::zero(), [cb = std::move(fetch->on_response),
                           resp = std::move(response)]() mutable {
          cb(std::move(resp));
        });
    return;
  }
  --fetch->retries_left;
  ++stats_.retries;
  const int retries_done = r.max_retries - fetch->retries_left;
  double scale = 1.0;
  for (int i = 1; i < retries_done; ++i) scale *= r.backoff_multiplier;
  Duration delay = seconds_f(to_seconds(r.backoff_base) * scale);
  if (delay > r.backoff_cap) delay = r.backoff_cap;
  if (auto* rec = network_.loop().recorder()) {
    rec->record(obs::Phase::kBackoff, delay);
  }
  auto self = fetch;
  network_.loop().schedule_after(delay, [this, self] {
    if (self->settled) return;
    dispatch(self);
  });
}

void Fetcher::close_all() {
  pools_.clear();
  stats_ = FetcherStats{};
}

int Fetcher::total_rtts() const {
  int total = 0;
  for (const auto& [host, pool] : pools_) {
    for (const auto& conn : pool) total += conn->rtts_consumed();
  }
  return total;
}

ByteCount Fetcher::total_bytes_received() const {
  ByteCount total = 0;
  for (const auto& [host, pool] : pools_) {
    for (const auto& conn : pool) total += conn->bytes_received();
  }
  return total;
}

std::size_t Fetcher::connection_count() const {
  std::size_t total = 0;
  for (const auto& [host, pool] : pools_) total += pool.size();
  return total;
}

}  // namespace catalyst::client
