#include "client/fetcher.h"

namespace catalyst::client {

Fetcher::Fetcher(netsim::Network& network, std::string client_host,
                 FetcherConfig config)
    : network_(network),
      client_host_(std::move(client_host)),
      config_(config) {}

netsim::Connection& Fetcher::pick_connection(
    const std::string& origin_host) {
  auto& pool = pools_[origin_host];
  const std::size_t limit = config_.protocol == netsim::Protocol::H2
                                ? 1
                                : config_.max_connections_per_origin;
  // Prefer an idle connection; otherwise open a new one while under the
  // limit; otherwise queue on the least-loaded.
  netsim::Connection* least_loaded = nullptr;
  for (auto& conn : pool) {
    if (conn->pending() == 0) return *conn;
    if (least_loaded == nullptr ||
        conn->pending() < least_loaded->pending()) {
      least_loaded = conn.get();
    }
  }
  if (pool.size() < limit) {
    // Only the first-ever connection to an origin resolves DNS; later
    // ones (and later visits within the session) use the resolver cache.
    const bool resolve_dns = dns_resolved_.insert(origin_host).second;
    pool.push_back(std::make_unique<netsim::Connection>(
        network_, client_host_, origin_host, config_.tls,
        config_.protocol, resolve_dns));
    return *pool.back();
  }
  return *least_loaded;
}

void Fetcher::fetch(const std::string& origin_host, http::Request request,
                    ResponseCallback on_response) {
  netsim::Connection& conn = pick_connection(origin_host);
  netsim::Connection::PushCallback push_cb;
  if (push_handler_) {
    push_cb = [this, origin_host](netsim::PushedResponse push) {
      if (push_handler_) push_handler_(origin_host, std::move(push));
    };
  }
  netsim::Connection::PromiseCallback promise_cb;
  if (promise_handler_) {
    promise_cb = [this, origin_host](const std::string& target) {
      if (promise_handler_) promise_handler_(origin_host, target);
    };
  }
  netsim::Connection::HintsCallback hints_cb;
  if (hints_handler_) {
    hints_cb = [this, origin_host](const std::vector<std::string>& urls) {
      if (hints_handler_) hints_handler_(origin_host, urls);
    };
  }
  conn.send_request(std::move(request), std::move(on_response),
                    std::move(push_cb), std::move(promise_cb),
                    std::move(hints_cb));
}

void Fetcher::close_all() { pools_.clear(); }

int Fetcher::total_rtts() const {
  int total = 0;
  for (const auto& [host, pool] : pools_) {
    for (const auto& conn : pool) total += conn->rtts_consumed();
  }
  return total;
}

ByteCount Fetcher::total_bytes_received() const {
  ByteCount total = 0;
  for (const auto& [host, pool] : pools_) {
    for (const auto& conn : pool) total += conn->bytes_received();
  }
  return total;
}

std::size_t Fetcher::connection_count() const {
  std::size_t total = 0;
  for (const auto& [host, pool] : pools_) total += pool.size();
  return total;
}

}  // namespace catalyst::client
