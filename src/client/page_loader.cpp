#include "client/page_loader.h"

#include <algorithm>

#include "client/browser.h"
#include "html/css.h"
#include "obs/recorder.h"
#include "util/hash.h"
#include "html/link_extract.h"
#include "html/parser.h"

namespace catalyst::client {

PageLoader::PageLoader(Browser& browser, Url page_url)
    : browser_(browser), page_url_(std::move(page_url)) {}

void PageLoader::start(std::function<void(PageLoadResult)> on_done) {
  on_done_ = std::move(on_done);
  result_.start = browser_.loop().now();
  begin_task();
  requested_.insert(page_url_.to_string());
  auto self = shared_from_this();
  browser_.fetch(page_url_, /*is_navigation=*/true, std::nullopt,
                 [self](FetchOutcome outcome) {
                   self->on_html(outcome);
                   self->end_task();
                 });
}

void PageLoader::record(const Url& url, http::ResourceClass rc,
                        const FetchOutcome& outcome) {
  ++result_.resources_total;
  switch (outcome.source) {
    case netsim::FetchSource::Network:
      ++result_.from_network;
      break;
    case netsim::FetchSource::BrowserCache:
      ++result_.from_cache;
      break;
    case netsim::FetchSource::NotModified:
      ++result_.not_modified;
      break;
    case netsim::FetchSource::SwCache:
      ++result_.from_sw_cache;
      break;
    case netsim::FetchSource::Push:
      ++result_.from_push;
      break;
  }
  const netsim::ServeClass verdict = browser_.classify_serve(url, outcome);
  switch (verdict) {
    case netsim::ServeClass::Unchecked:
      break;
    case netsim::ServeClass::Fresh:
      ++result_.oracle_checked;
      break;
    case netsim::ServeClass::AllowedStale:
      ++result_.oracle_checked;
      ++result_.oracle_allowed_stale;
      break;
    case netsim::ServeClass::Violation:
      ++result_.oracle_checked;
      ++result_.oracle_violations;
      break;
    case netsim::ServeClass::PoisonedServe:
      ++result_.oracle_checked;
      ++result_.oracle_violations;
      ++result_.oracle_poisoned;
      break;
    case netsim::ServeClass::CrossUserLeak:
      ++result_.oracle_checked;
      ++result_.oracle_violations;
      ++result_.oracle_leaks;
      break;
  }
  netsim::FetchTrace& trace = result_.trace.append();
  url.append_path_and_query(trace.url);
  trace.resource_class = rc;
  trace.start = outcome.start;
  trace.finish = outcome.finish;
  trace.source = outcome.source;
  trace.bytes_down =
      (outcome.source == netsim::FetchSource::Network ||
       outcome.source == netsim::FetchSource::Push)
          ? outcome.response.wire_size()
          : (outcome.source == netsim::FetchSource::NotModified
                 ? outcome.response.headers.wire_size() + 19
                 : 0);
  trace.status = http::code(outcome.response.status);
  trace.body_digest = outcome.response.body_digest();
  trace.oracle_class = verdict;
  if (outcome.stale) ++result_.stale_served;
  if (outcome.sw_fallback) ++result_.fallback_revalidations;
  if (http::code(outcome.response.status) >= 500) ++result_.failed_loads;
  // Negative-cache hit: an error answered from a client-side cache (the
  // only way a 404/410 arrives with a cache source).
  if ((outcome.response.status == http::Status::NotFound ||
       outcome.response.status == http::Status::Gone) &&
      (outcome.source == netsim::FetchSource::BrowserCache ||
       outcome.source == netsim::FetchSource::SwCache)) {
    ++result_.negative_hits;
  }
  // This load's responses seed the Service Worker's install-time precache
  // (post_onload_sw_registration). Copy them only when registration can
  // still happen — SW support on and no worker yet — which skips the
  // per-resource Response copy on baseline runs and on every revisit
  // after the worker registered, i.e. the vast majority of fetches.
  if (outcome.response.status == http::Status::Ok &&
      browser_.config().service_workers_enabled &&
      !browser_.sw_registered(page_url_.host)) {
    observed_.emplace(url.path, outcome.response);
  }
}

void PageLoader::on_html(const FetchOutcome& outcome) {
  record(page_url_, http::ResourceClass::Html, outcome);
  saw_etag_config_ =
      outcome.response.headers.contains(http::kXEtagConfig);

  // A registered Service Worker ingests the fresh ETag map (200 or 304).
  if (browser_.sw_registered(page_url_.host)) {
    browser_.service_worker(page_url_.host)
        .install_map_from(outcome.response);
  }

  if (outcome.response.status != http::Status::Ok) {
    return;  // navigation failed; onload fires with what we have
  }

  const std::string body = outcome.response.body;
  begin_task();
  auto self = shared_from_this();
  browser_.loop().schedule_after(
      browser_.processing().html_parse_cost(body.size()), [self, body] {
        const auto document = html::parse(body);
        const auto discovered = html::extract_resources(*document);
        for (const html::DiscoveredResource& dr : discovered) {
          const bool ordered_script =
              dr.resource_class == http::ResourceClass::Script &&
              dr.parser_blocking;
          self->handle_discovered(dr.url, dr.resource_class,
                                  ordered_script);
        }
        // Inline scripts can also carry @fetch directives.
        document->for_each_element([&](const html::Node& el) {
          if (el.is_element("script") && !el.has_attr("src")) {
            for (const std::string& raw :
                 html::extract_js_fetches(el.text_content())) {
              self->handle_dynamic_fetch(self->page_url_, raw);
            }
          }
        });
        self->parse_done_ = true;
        self->maybe_mark_first_paint();
        self->try_execute_scripts();
        self->end_task();
      });
}

void PageLoader::maybe_mark_first_paint() {
  if (first_paint_marked_ || !parse_done_ || pending_css_ > 0) return;
  first_paint_marked_ = true;
  result_.first_paint = browser_.loop().now();
}

void PageLoader::on_preload_hints(const std::string& origin_host,
                                  const std::vector<std::string>& urls) {
  auto self = shared_from_this();
  for (const std::string& raw : urls) {
    const auto parsed = Url::parse(raw);
    if (!parsed) continue;
    Url url = page_url_.resolve(*parsed);
    if (url.host != origin_host) continue;  // hints are same-origin
    const std::string key = url.to_string();
    if (requested_.contains(key)) continue;  // already fetched normally
    if (!preload_requested_.insert(key).second) continue;
    begin_task();
    browser_.fetch(url, /*is_navigation=*/false, page_url_,
                   [self, key](FetchOutcome outcome) {
                     auto waiters =
                         std::move(self->preload_waiters_[key]);
                     self->preload_waiters_.erase(key);
                     if (waiters.empty()) {
                       self->preloaded_.emplace(key, std::move(outcome));
                     } else {
                       for (auto& waiter : waiters) waiter(outcome);
                     }
                     self->end_task();
                   });
  }
}

bool PageLoader::fetch_subresource(
    const Url& url, http::ResourceClass rc,
    std::function<void(const FetchOutcome&)> then) {
  const std::string key = url.to_string();
  if (!requested_.insert(key).second) return false;  // dedup
  begin_task();
  auto self = shared_from_this();
  auto deliver = [self, url, rc, then = std::move(then)](
                     FetchOutcome outcome) {
    self->record(url, rc, outcome);
    if (then) then(outcome);
    self->end_task();
  };

  // A completed preload satisfies the discovery instantly.
  if (const auto it = preloaded_.find(key); it != preloaded_.end()) {
    FetchOutcome outcome = std::move(it->second);
    preloaded_.erase(it);
    outcome.start = browser_.loop().now();
    if (auto* rec = browser_.loop().recorder()) {
      rec->record(obs::Phase::kCacheLookup,
                  browser_.processing().cache_hit_overhead);
    }
    browser_.loop().schedule_after(
        browser_.processing().cache_hit_overhead,
        [deliver = std::move(deliver), outcome = std::move(outcome),
         self]() mutable {
          outcome.finish = self->browser_.loop().now();
          deliver(std::move(outcome));
        });
    return true;
  }
  // An in-flight preload: join it rather than double-fetching.
  if (preload_requested_.contains(key)) {
    const TimePoint needed_at = browser_.loop().now();
    preload_waiters_[key].push_back(
        [deliver = std::move(deliver), needed_at, self](
            const FetchOutcome& ready) {
          FetchOutcome outcome = ready;
          outcome.start = needed_at;
          outcome.finish = self->browser_.loop().now();
          deliver(std::move(outcome));
        });
    return true;
  }

  browser_.fetch(url, /*is_navigation=*/false, page_url_,
                 std::move(deliver));
  return true;
}

void PageLoader::handle_discovered(const std::string& raw_url,
                                   http::ResourceClass rc,
                                   bool ordered_script) {
  const auto ref = Url::parse(raw_url);
  if (!ref) return;
  const Url url = page_url_.resolve(*ref);
  auto self = shared_from_this();

  if (rc == http::ResourceClass::Css) {
    if (fetch_subresource(url, rc,
                          [self, url](const FetchOutcome& outcome) {
                            self->handle_css_arrival(
                                url, outcome.response.body);
                          })) {
      ++pending_css_;
    }
    return;
  }
  if (rc == http::ResourceClass::Script) {
    if (ordered_script) {
      ordered_scripts_.push_back(ScriptSlot{url, false, false, {}});
      const std::size_t index = ordered_scripts_.size() - 1;
      fetch_subresource(url, rc,
                        [self, index](const FetchOutcome& outcome) {
                          ScriptSlot& slot = self->ordered_scripts_[index];
                          slot.arrived = true;
                          slot.content = outcome.response.body;
                          self->try_execute_scripts();
                        });
    } else {
      // async/defer-like: execute on arrival, out of order.
      fetch_subresource(url, rc, [self, url](const FetchOutcome& outcome) {
        self->execute_script_content(url, outcome.response.body);
      });
    }
    return;
  }
  fetch_subresource(url, rc, nullptr);
}

void PageLoader::handle_css_arrival(const Url& url,
                                    const std::string& content) {
  begin_task();
  auto self = shared_from_this();
  browser_.loop().schedule_after(
      browser_.processing().css_parse_cost(content.size()),
      [self, url, content] {
        for (const html::CssReference& ref :
             html::extract_css_references(content)) {
          const auto parsed = Url::parse(ref.url);
          if (!parsed) continue;
          const Url sub = url.resolve(*parsed);
          if (ref.is_import) {
            if (self->fetch_subresource(
                    sub, http::ResourceClass::Css,
                    [self, sub](const FetchOutcome& outcome) {
                      self->handle_css_arrival(sub,
                                               outcome.response.body);
                    })) {
              ++self->pending_css_;
            }
          } else {
            self->fetch_subresource(sub,
                                    http::classify_path(sub.path),
                                    nullptr);
          }
        }
        --self->pending_css_;
        self->maybe_mark_first_paint();
        self->try_execute_scripts();
        self->end_task();
      });
}

void PageLoader::handle_dynamic_fetch(const Url& base,
                                      const std::string& raw_url) {
  const auto parsed = Url::parse(raw_url);
  if (!parsed) return;
  const Url url = base.resolve(*parsed);
  const http::ResourceClass rc = http::classify_path(url.path);
  auto self = shared_from_this();
  if (rc == http::ResourceClass::Script) {
    fetch_subresource(url, rc, [self, url](const FetchOutcome& outcome) {
      self->execute_script_content(url, outcome.response.body);
    });
  } else if (rc == http::ResourceClass::Css) {
    if (fetch_subresource(url, rc,
                          [self, url](const FetchOutcome& outcome) {
                            self->handle_css_arrival(
                                url, outcome.response.body);
                          })) {
      ++pending_css_;
    }
  } else {
    fetch_subresource(url, rc, nullptr);
  }
}

void PageLoader::try_execute_scripts() {
  if (executing_) return;
  executing_ = true;
  while (next_script_ < ordered_scripts_.size() &&
         ordered_scripts_[next_script_].arrived && pending_css_ == 0) {
    ScriptSlot& slot = ordered_scripts_[next_script_];
    ++next_script_;
    slot.executed = true;
    execute_script_content(slot.url, slot.content);
    slot.content.clear();
  }
  executing_ = false;
}

void PageLoader::execute_script_content(const Url& url,
                                        const std::string& content) {
  begin_task();
  auto self = shared_from_this();
  const auto fetches = html::extract_js_fetches(content);
  browser_.loop().schedule_after(
      browser_.processing().js_exec_cost(content.size()),
      [self, url, fetches] {
        for (const std::string& raw : fetches) {
          self->handle_dynamic_fetch(url, raw);
        }
        self->last_script_end_ = self->browser_.loop().now();
        // This script may have been the barrier for the next ordered one.
        self->try_execute_scripts();
        self->end_task();
      });
}

void PageLoader::end_task() {
  --active_;
  if (active_ == 0 && !finished_) finish();
}

void PageLoader::finish() {
  finished_ = true;
  result_.onload = browser_.loop().now();
  if (!first_paint_marked_) result_.first_paint = result_.onload;
  result_.interactive =
      std::max({result_.first_paint, last_script_end_, result_.start});
  result_.rtts =
      static_cast<std::uint32_t>(browser_.fetcher().total_rtts());
  result_.bytes_downloaded = browser_.fetcher().total_bytes_received();
  const FetcherStats& fs = browser_.fetcher().stats();
  result_.timeouts_fired = static_cast<std::uint32_t>(fs.timeouts_fired);
  result_.retries = static_cast<std::uint32_t>(fs.retries);
  result_.connection_failures =
      static_cast<std::uint32_t>(fs.connection_failures);

  post_onload_sw_registration();

  // Deliver via the loop so the loader can be torn down safely.
  auto self = shared_from_this();
  browser_.loop().schedule_after(Duration::zero(), [self] {
    if (self->on_done_) {
      auto cb = std::move(self->on_done_);
      cb(std::move(self->result_));
    }
  });
}

void PageLoader::post_onload_sw_registration() {
  // The injected snippet registers the Service Worker after onload: fetch
  // the SW script, then seed the SW cache from this load's responses
  // (install-time precache out of browser memory).
  if (!saw_etag_config_ ||
      !browser_.config().service_workers_enabled ||
      browser_.sw_registered(page_url_.host)) {
    return;
  }
  Url sw_url = page_url_;
  sw_url.path = "/cc-sw.js";
  sw_url.query.clear();
  auto self = shared_from_this();
  browser_.fetch(sw_url, /*is_navigation=*/false, page_url_,
                 [self](FetchOutcome outcome) {
                   if (outcome.response.status != http::Status::Ok) return;
                   self->browser_.register_service_worker(
                       self->page_url_.host, self->observed_);
                 });
}

}  // namespace catalyst::client
