#include "client/service_worker.h"

#include "http/headers.h"

namespace catalyst::client {

CatalystServiceWorker::MapInstall CatalystServiceWorker::install_map_from(
    const http::Response& navigation_response) {
  const auto header =
      navigation_response.headers.get(http::kXEtagConfig);
  if (!header) {
    // Lost or stripped in transit. Any previous map's tokens expired with
    // the page load they arrived on, so drop it and run degraded.
    map_.reset();
    degraded_ = true;
    ++stats_.maps_missing;
    return MapInstall::Missing;
  }
  auto parsed = http::EtagConfig::parse(*header);
  if (!parsed) {
    // Truncated/garbled map: worse than none — never trust it.
    map_.reset();
    degraded_ = true;
    ++stats_.maps_rejected;
    return MapInstall::Malformed;
  }
  map_ = std::move(*parsed);
  degraded_ = false;
  ++stats_.maps_installed;
  return MapInstall::Installed;
}

CatalystServiceWorker::InterceptResult CatalystServiceWorker::try_serve(
    const std::string& path, TimePoint now) {
  ++stats_.intercepted;
  // A remembered 404/410 answers before the map is consulted: the map
  // only vouches for resources that exist.
  if (const auto it = negative_entries_.find(path);
      it != negative_entries_.end()) {
    if (negative_.enabled &&
        cache::is_negative_fresh(it->second, now, negative_)) {
      ++stats_.served_from_cache;
      ++stats_.negative_hits;
      return {Decision::ServeFromCache, &it->second.response, false};
    }
    negative_entries_.erase(it);
  }
  if (!map_) {
    ++stats_.forwarded;
    if (degraded_) {
      // Degraded mode: with no trustworthy map, forward as a conditional
      // GET — correctness must not rest on the HTTP cache's TTLs.
      ++stats_.fallback_revalidations;
      return {Decision::ForwardRevalidate, nullptr, true};
    }
    return {Decision::ForwardDefault, nullptr, false};
  }
  const auto expected = map_->find(path);
  if (!expected) {
    ++stats_.forwarded;
    return {Decision::ForwardDefault, nullptr, false};
  }
  const std::uint64_t integrity_before = cache_.stats().integrity_failures;
  const http::Response* cached = cache_.match(path, *expected);
  if (cached == nullptr) {
    // Covered but changed (or never cached): the map is authoritative
    // that our copy is unusable. A body that failed its integrity check
    // lands here too — that one counts as a degradation fallback.
    ++stats_.forwarded;
    const bool integrity_fallback =
        cache_.stats().integrity_failures > integrity_before;
    if (integrity_fallback) ++stats_.fallback_revalidations;
    return {Decision::ForwardRevalidate, nullptr, integrity_fallback};
  }
  ++stats_.served_from_cache;
  return {Decision::ServeFromCache, cached, false};
}

void CatalystServiceWorker::observe_response(
    const std::string& path, const http::Response& response,
    TimePoint response_time) {
  if (response.status != http::Status::Ok) {
    if (negative_.enabled && cache::is_negative_status(response.status) &&
        !response.cache_control().no_store &&
        !response.cache_control().no_cache) {
      cache::CacheEntry entry;
      entry.response = response;
      entry.request_time = response_time;
      entry.response_time = response_time;
      negative_entries_.insert_or_assign(path, std::move(entry));
      ++stats_.negative_stores;
    }
    return;
  }
  // A path that exists again supersedes any remembered error.
  negative_entries_.erase(path);
  cache_.put(path, response);
}

}  // namespace catalyst::client
