#include "client/service_worker.h"

#include "http/headers.h"

namespace catalyst::client {

CatalystServiceWorker::MapInstall CatalystServiceWorker::install_map_from(
    const http::Response& navigation_response) {
  const auto header =
      navigation_response.headers.get(http::kXEtagConfig);
  if (!header) {
    // Lost or stripped in transit. Any previous map's tokens expired with
    // the page load they arrived on, so drop it and run degraded.
    map_.reset();
    degraded_ = true;
    ++stats_.maps_missing;
    return MapInstall::Missing;
  }
  auto parsed = http::EtagConfig::parse(*header);
  if (!parsed) {
    // Truncated/garbled map: worse than none — never trust it.
    map_.reset();
    degraded_ = true;
    ++stats_.maps_rejected;
    return MapInstall::Malformed;
  }
  map_ = std::move(*parsed);
  degraded_ = false;
  ++stats_.maps_installed;
  return MapInstall::Installed;
}

CatalystServiceWorker::InterceptResult CatalystServiceWorker::try_serve(
    const std::string& path) {
  ++stats_.intercepted;
  if (!map_) {
    ++stats_.forwarded;
    if (degraded_) {
      // Degraded mode: with no trustworthy map, forward as a conditional
      // GET — correctness must not rest on the HTTP cache's TTLs.
      ++stats_.fallback_revalidations;
      return {Decision::ForwardRevalidate, nullptr, true};
    }
    return {Decision::ForwardDefault, nullptr, false};
  }
  const auto expected = map_->find(path);
  if (!expected) {
    ++stats_.forwarded;
    return {Decision::ForwardDefault, nullptr, false};
  }
  const std::uint64_t integrity_before = cache_.stats().integrity_failures;
  const http::Response* cached = cache_.match(path, *expected);
  if (cached == nullptr) {
    // Covered but changed (or never cached): the map is authoritative
    // that our copy is unusable. A body that failed its integrity check
    // lands here too — that one counts as a degradation fallback.
    ++stats_.forwarded;
    const bool integrity_fallback =
        cache_.stats().integrity_failures > integrity_before;
    if (integrity_fallback) ++stats_.fallback_revalidations;
    return {Decision::ForwardRevalidate, nullptr, integrity_fallback};
  }
  ++stats_.served_from_cache;
  return {Decision::ServeFromCache, cached, false};
}

void CatalystServiceWorker::observe_response(
    const std::string& path, const http::Response& response) {
  if (response.status != http::Status::Ok) return;
  cache_.put(path, response);
}

}  // namespace catalyst::client
