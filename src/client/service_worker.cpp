#include "client/service_worker.h"

#include "http/headers.h"

namespace catalyst::client {

void CatalystServiceWorker::install_map_from(
    const http::Response& navigation_response) {
  const auto header =
      navigation_response.headers.get(http::kXEtagConfig);
  if (!header) return;
  auto parsed = http::EtagConfig::parse(*header);
  if (!parsed) return;  // malformed map: keep forwarding, never break pages
  map_ = std::move(*parsed);
  ++stats_.maps_installed;
}

CatalystServiceWorker::InterceptResult CatalystServiceWorker::try_serve(
    const std::string& path) {
  ++stats_.intercepted;
  if (!map_) {
    ++stats_.forwarded;
    return {Decision::ForwardDefault, nullptr};
  }
  const auto expected = map_->find(path);
  if (!expected) {
    ++stats_.forwarded;
    return {Decision::ForwardDefault, nullptr};
  }
  const http::Response* cached = cache_.match(path, *expected);
  if (cached == nullptr) {
    // Covered but changed (or never cached): the map is authoritative
    // that our copy is unusable.
    ++stats_.forwarded;
    return {Decision::ForwardRevalidate, nullptr};
  }
  ++stats_.served_from_cache;
  return {Decision::ServeFromCache, cached};
}

void CatalystServiceWorker::observe_response(
    const std::string& path, const http::Response& response) {
  if (response.status != http::Status::Ok) return;
  cache_.put(path, response);
}

}  // namespace catalyst::client
