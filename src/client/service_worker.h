// The CacheCatalyst Service Worker (paper §3, client side).
//
// A domain-scoped interception layer: once registered (by the snippet the
// server injects), it sees every request for its origin. On each base-HTML
// response it ingests the fresh X-Etag-Config map; for subresources it
// compares the map's ETag with its cached copy's ETag and either serves
// the cached bytes immediately (zero RTTs) or forwards the request and
// re-caches the new version.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cache/freshness.h"
#include "cache/sw_cache.h"
#include "http/etag_config.h"
#include "http/message.h"

namespace catalyst::client {

struct ServiceWorkerStats {
  std::uint64_t intercepted = 0;
  std::uint64_t served_from_cache = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t maps_installed = 0;
  /// Navigation responses that should have carried an X-Etag-Config but
  /// did not (lost/truncated in transit, origin degraded).
  std::uint64_t maps_missing = 0;
  /// Headers present but unparseable.
  std::uint64_t maps_rejected = 0;
  /// Requests forwarded as forced conditional GETs because the map was
  /// untrustworthy or a cached body failed its integrity check.
  std::uint64_t fallback_revalidations = 0;
  /// Negative caching (404/410 under a bounded TTL).
  std::uint64_t negative_stores = 0;
  std::uint64_t negative_hits = 0;
};

class CatalystServiceWorker {
 public:
  explicit CatalystServiceWorker(
      ByteCount cache_capacity = MiB(256),
      cache::NegativePolicy negative = cache::NegativePolicy{})
      : cache_(cache_capacity), negative_(negative) {}

  /// Registration lifecycle: the browser registers the worker after the
  /// first visit delivers the registration snippet + SW script.
  bool registered() const { return registered_; }
  void set_registered() { registered_ = true; }
  void unregister() {
    registered_ = false;
    map_.reset();
    degraded_ = false;
  }

  enum class MapInstall { Installed, Missing, Malformed };

  /// Ingests the X-Etag-Config header from a base-HTML response (200 or
  /// 304). Replaces any previous map — tokens are only trusted for the
  /// page load they arrived with. A missing or malformed header drops the
  /// previous map too (its tokens are just as expired) and enters
  /// degraded mode: subresources forward as conditional GETs until a
  /// fresh map arrives, so correctness never rests on TTL heuristics.
  MapInstall install_map_from(const http::Response& navigation_response);

  /// True while operating without a trustworthy map (see install_map_from).
  bool degraded() const { return degraded_; }

  /// The currently installed map, if any.
  const http::EtagConfig* current_map() const {
    return map_ ? &*map_ : nullptr;
  }

  /// Interception decision for a subresource request.
  enum class Decision {
    /// The map vouches for the cached copy: serve it, zero RTTs.
    ServeFromCache,
    /// The map covers the path but the cached copy is absent or outdated:
    /// the resource changed on the origin, so the fetch must revalidate /
    /// download — the HTTP cache's TTL opinion must NOT be trusted.
    ForwardRevalidate,
    /// Not covered by the map (JS-discovered, cross-origin, or no map):
    /// CacheCatalyst has no authority here; plain fetch() semantics (the
    /// status-quo HTTP cache decides).
    ForwardDefault,
  };

  struct InterceptResult {
    Decision decision = Decision::ForwardDefault;
    /// Set for ServeFromCache; owned by the SW cache and invalidated by
    /// subsequent stores.
    const http::Response* response = nullptr;
    /// The forward is a degradation fallback (untrustworthy map or a
    /// cached body that failed its integrity check), not a normal miss.
    bool fallback = false;
  };

  /// `now` bounds the negative-cache check; the Catalyst map path is
  /// time-independent (validity comes from ETag comparison, not TTLs).
  InterceptResult try_serve(const std::string& path, TimePoint now);

  /// Stores a network response passing through the worker (honors
  /// no-store; requires an ETag to be useful — both checked by SwCache).
  /// With negative caching enabled, 404/410 responses are remembered under
  /// the policy's bounded TTL (`response_time` anchors their age).
  void observe_response(const std::string& path,
                        const http::Response& response,
                        TimePoint response_time);

  const cache::SwCache& cache() const { return cache_; }
  cache::SwCache& cache() { return cache_; }
  const ServiceWorkerStats& stats() const { return stats_; }

  /// Negative entries (read by parked-state snapshots; std::map, so the
  /// iteration order is canonical).
  const std::map<std::string, cache::CacheEntry>& negative_entries() const {
    return negative_entries_;
  }

  /// Parked-state revival (fleet/parked): reinstates the registration
  /// lifecycle flags and the installed map exactly as parked — including
  /// the registered-but-degraded and registered-without-map states that
  /// set_registered()/install_map_from() cannot reproduce directly.
  void restore_lifecycle(bool registered, bool degraded,
                         std::optional<http::EtagConfig> map) {
    registered_ = registered;
    degraded_ = degraded;
    map_ = std::move(map);
  }
  void restore_negative_entry(std::string path, cache::CacheEntry entry) {
    negative_entries_.insert_or_assign(std::move(path), std::move(entry));
  }
  void restore_stats(const ServiceWorkerStats& snapshot) {
    stats_ = snapshot;
  }

 private:
  bool registered_ = false;
  bool degraded_ = false;
  std::optional<http::EtagConfig> map_;
  cache::SwCache cache_;
  cache::NegativePolicy negative_;
  /// Negative entries live outside the SwCache: they have no ETag to
  /// compare against the map, only a bounded lifetime.
  std::map<std::string, cache::CacheEntry> negative_entries_;
  ServiceWorkerStats stats_;
};

}  // namespace catalyst::client
