#include "fleet/user_model.h"

#include <stdexcept>

#include "util/rng.h"
#include "workload/distributions.h"

namespace catalyst::fleet {

std::string_view to_string(AccessTier tier) {
  switch (tier) {
    case AccessTier::Fast5g:
      return "fast-5g";
    case AccessTier::Typical4g:
      return "typical-4g";
    case AccessTier::Slow3g:
      return "slow-3g";
    case AccessTier::Constrained:
      return "constrained";
  }
  return "?";
}

netsim::NetworkConditions conditions_for(AccessTier tier) {
  netsim::NetworkConditions c;
  switch (tier) {
    case AccessTier::Fast5g:
      return netsim::NetworkConditions::median_5g();
    case AccessTier::Typical4g:
      c.downlink = mbps(20);
      c.uplink = mbps(6);
      c.rtt = milliseconds(60);
      return c;
    case AccessTier::Slow3g:
      c.downlink = mbps(8);
      c.uplink = mbps(2);
      c.rtt = milliseconds(120);
      return c;
    case AccessTier::Constrained:
      c.downlink = mbps(2);
      c.uplink = kbps(500);
      c.rtt = milliseconds(300);
      return c;
  }
  return c;
}

UserProfile make_user_profile(const UserModelParams& params,
                              std::uint64_t user_id) {
  if (params.site_catalog_size <= 0) {
    throw std::invalid_argument("make_user_profile: empty site catalog");
  }
  if (params.max_visits < 1) {
    throw std::invalid_argument("make_user_profile: max_visits < 1");
  }
  // All randomness flows from this fork: stable for (master_seed, user_id)
  // no matter which shard or thread evaluates it.
  Rng rng = Rng(params.master_seed).fork(user_id);

  UserProfile profile;
  profile.user_id = user_id;
  profile.site_index = static_cast<int>(workload::draw_zipf_rank(
      static_cast<std::size_t>(params.site_catalog_size),
      params.zipf_exponent, rng));

  // Access-tier mix: mostly well-served users, with a real tail on the
  // latency-constrained links the paper targets.
  static const std::vector<double> kTierWeights = {0.35, 0.35, 0.20, 0.10};
  profile.tier = static_cast<AccessTier>(rng.weighted_index(kTierWeights));

  // Mobile share grows as the access network worsens (the constrained
  // tail is overwhelmingly mobile).
  static constexpr double kMobileShare[] = {0.45, 0.55, 0.75, 0.90};
  profile.mobile_client =
      rng.bernoulli(kMobileShare[static_cast<int>(profile.tier)]);

  // Per-user activity factor: heavy daily visitors to occasional ones.
  const double activity = rng.lognormal(0.0, 0.6);
  const Duration user_mean_gap =
      seconds_f(to_seconds(params.mean_visit_gap) * activity);

  // Poisson visit process over [0, horizon), capped at max_visits. The
  // first visit lands one gap in (a user "arrives" mid-process rather
  // than everyone piling onto t=0).
  TimePoint t = TimePoint{} + workload::draw_visit_gap(user_mean_gap, rng);
  while (t.since_epoch() < params.horizon &&
         profile.visits.size() <
             static_cast<std::size_t>(params.max_visits)) {
    profile.visits.push_back(t);
    t += workload::draw_visit_gap(user_mean_gap, rng);
  }
  if (profile.visits.empty()) {
    // Horizon shorter than the first drawn gap: the user still shows up
    // once so every user contributes a cold load.
    profile.visits.push_back(TimePoint{});
  }
  return profile;
}

int edge_pop_of(std::uint64_t master_seed, std::uint64_t user_id, int pops) {
  if (pops <= 0) return 0;
  // Forked off the same per-user stream as the profile draw, on a salt of
  // its own so it never perturbs (or is perturbed by) profile sampling.
  constexpr std::uint64_t kEdgeStream = 0xed6eull;
  Rng rng = Rng(master_seed).fork(user_id).fork(kEdgeStream);
  return static_cast<int>(rng.uniform_int(0, pops - 1));
}

}  // namespace catalyst::fleet
