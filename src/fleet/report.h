// Mergeable fleet-wide aggregates.
//
// Every shard produces one FleetReport for its batch of users; the runner
// folds them together in canonical shard order. All fields are either
// plain sums (order-independent) or Summary sample lists (merged in
// canonical order so floating-point accumulation is bit-identical to a
// single-threaded run). serialize() is the byte-stable form the
// determinism tests and the `fleetsim --json` output compare.
#pragma once

#include <map>
#include <string>

#include "obs/recorder.h"
#include "obs/selfprof.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/types.h"

namespace catalyst::fleet {

/// Telemetry of one edge PoP's shared cache over the whole run (treatment
/// arm only). Plain sums so the report layer stays independent of the
/// edge module; invariant: requests == hits + flash_hits +
/// revalidated_hits + misses (flash_hits is zero without a flash tier).
struct EdgePopReport {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t revalidated_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t origin_fetches = 0;
  std::uint64_t origin_not_modified = 0;
  std::uint64_t origin_errors = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  ByteCount bytes_served = 0;
  ByteCount bytes_from_origin = 0;

  /// Negative caching (RFC 9111 §4) + adversary telemetry. Serialized
  /// only when non-zero so runs without either feature stay byte-identical.
  std::uint64_t negative_stores = 0;
  std::uint64_t negative_hits = 0;
  std::uint64_t adversary_requests = 0;   // poisoning requests seen
  std::uint64_t adversary_probes = 0;     // timing probes classified
  std::uint64_t adversary_probe_hits = 0; // probes that read as hits

  /// Flash tier + async-I/O device telemetry. Serialized only when
  /// flash_enabled, so RAM-only edge reports stay byte-identical to
  /// pre-flash builds.
  bool flash_enabled = false;
  std::uint64_t flash_hits = 0;
  std::uint64_t flash_coalesced = 0;
  std::uint64_t flash_demotions = 0;
  std::uint64_t flash_promotions = 0;
  std::uint64_t flash_promotion_rejects = 0;
  std::uint64_t flash_stores = 0;
  std::uint64_t flash_evictions = 0;
  std::uint64_t flash_gc_rewrites = 0;
  ByteCount flash_bytes_served = 0;
  ByteCount flash_host_bytes = 0;
  ByteCount flash_device_bytes = 0;
  std::uint64_t aio_reads = 0;
  std::uint64_t aio_writes = 0;
  std::uint64_t aio_merged_reads = 0;
  std::uint64_t aio_queue_waits = 0;
  std::uint64_t aio_peak_inflight = 0;  // merged as a max, not a sum

  double flash_write_amp() const {
    return flash_host_bytes == 0
               ? 1.0
               : static_cast<double>(flash_device_bytes) /
                     static_cast<double>(flash_host_bytes);
  }

  void merge(const EdgePopReport& other);
};

/// Streaming-engine telemetry: how often users were parked to blobs and
/// revived, and the resident high-water marks. Counts merge as sums,
/// peaks as maxes — both associative, so partial merges compose.
struct ParkStats {
  std::uint64_t parks = 0;
  std::uint64_t revives = 0;
  /// Revive attempts whose blob failed validation (the user restarted
  /// cold). Always zero outside corruption-injection tests.
  std::uint64_t corrupt_revivals = 0;
  std::uint64_t live_users_peak = 0;    // max concurrently live per shard
  std::uint64_t parked_bytes_peak = 0;  // max resident parked-blob bytes

  void merge(const ParkStats& other);

  bool any() const { return parks != 0 || revives != 0; }
};

struct FleetReport {
  std::uint64_t users = 0;
  std::uint64_t visits = 0;    // all measured page loads (treatment)
  std::uint64_t revisits = 0;  // visits beyond each user's cold load

  /// Fetch outcomes across all treatment revisits (cold loads excluded:
  /// they are all-network by construction and would drown the signal the
  /// related work measures — what happens when a cache is warm).
  CacheCounters counters;

  /// Fault/degradation tallies across ALL treatment visits (cold loads
  /// included — faults do not spare them). Serialized only when non-zero
  /// so clean-run reports stay byte-identical to pre-fault builds.
  FaultCounters faults;

  /// Byte-equivalence oracle tallies across ALL treatment visits (cold
  /// loads audited too — a wrong byte is wrong on any visit). Serialized
  /// only when any() so oracle-off reports stay byte-identical.
  OracleCounters oracle;

  /// Client-side negative-cache hits (404/410 answered from the browser
  /// HTTP cache or the SW) across all treatment visits. Serialized only
  /// when non-zero so negative-caching-off reports stay byte-identical.
  std::uint64_t negative_hits = 0;

  /// Recorded page-load traces (check::trace_to_jsonl), keyed by user id:
  /// only users below FleetParams::trace_users record. A std::map keyed by
  /// user id merges canonically, so the concatenation is bit-identical for
  /// any --threads/--shard-size. Deliberately NOT part of to_json()/
  /// serialize(): traces export via traces_jsonl() (fleetsim --trace-out).
  std::map<std::uint64_t, std::string> traces;

  /// Per-PoP edge tier telemetry, keyed by PoP id. Empty on edge-disabled
  /// runs and then serialized to nothing, keeping those reports
  /// byte-identical to pre-edge builds.
  std::map<int, EdgePopReport> edge_pops;

  /// Simulation-engine events executed across every replayed visit (both
  /// arms). Perf telemetry for bench/engine_hotpath: merged, but
  /// deliberately NOT serialized, so reports stay byte-identical across
  /// builds with different engine internals.
  std::uint64_t events_executed = 0;

  /// Per-phase virtual-time latency breakdowns (FleetParams::breakdown),
  /// one per strategy arm. Integer-bucket histograms merge exactly, so
  /// the "phases" JSON section is bit-identical for any --threads; empty
  /// (breakdown off) serializes to nothing, keeping default reports
  /// byte-identical to pre-obs builds.
  obs::PhaseBreakdown phases;           // treatment arm
  obs::PhaseBreakdown baseline_phases;  // baseline arm

  /// Wall-clock self-profile counters captured around each shard's run
  /// (obs::tls_prof deltas). Merged at shard join, deliberately NOT
  /// serialized — wall-clock numbers must never touch byte-stable
  /// reports; fleetsim --self-profile prints them to stderr.
  obs::ProfCounters prof;

  /// Streaming-engine park/revive telemetry. Merged, but deliberately NOT
  /// serialized (like prof/events_executed): parking is an execution
  /// detail, and streaming reports must stay byte-identical to the
  /// materialize-everything engine for any --max-live-users. fleetsim
  /// prints these to stderr; tests read the struct directly.
  ParkStats parking;

  /// Wire totals across all treatment visits, and the same users replayed
  /// under the baseline strategy (zero when no baseline was run).
  ByteCount bytes_on_wire = 0;
  ByteCount baseline_bytes_on_wire = 0;
  std::uint64_t rtts = 0;
  std::uint64_t baseline_rtts = 0;

  /// Revisit PLTs (ms) under the treatment strategy.
  Summary plt_ms;
  /// Per-revisit PLT reduction vs baseline (%), Figure-3 style.
  Summary plt_reduction_pct;
  /// Per-user mean PLT reduction (%): one sample per user, the per-user
  /// distribution Ma et al. report for redundant-transfer mitigation.
  Summary per_user_plt_reduction_pct;
  /// Per-user cache answer rate on revisits (% of resources served
  /// without a full download).
  Summary per_user_hit_rate_pct;

  /// Round trips / bytes the treatment avoided relative to baseline
  /// (negative when the treatment costs more, e.g. push floods).
  std::int64_t rtts_saved() const {
    return static_cast<std::int64_t>(baseline_rtts) -
           static_cast<std::int64_t>(rtts);
  }
  std::int64_t bytes_saved() const {
    return static_cast<std::int64_t>(baseline_bytes_on_wire) -
           static_cast<std::int64_t>(bytes_on_wire);
  }

  /// Folds `other` into this report. Merging shard reports in ascending
  /// shard order reproduces the single-threaded accumulation exactly.
  void merge(const FleetReport& other);

  /// Stable JSON document (sorted keys, fixed stat set per Summary).
  Json to_json() const;

  /// Canonical byte-stable serialization of to_json().
  std::string serialize() const;

  /// All recorded traces concatenated in ascending user-id order (one
  /// replayable JSONL stream; empty when tracing was off).
  std::string traces_jsonl() const;

  /// Human-readable console table.
  std::string render_table(const std::string& title) const;
};

}  // namespace catalyst::fleet
