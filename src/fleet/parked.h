// ParkedUser blobs: compact, versioned snapshots of a user's client-side
// state (HttpCache + Service Workers + EtagConfig + retry/negative-cache
// progress), taken between visits by the streaming shard engine.
//
// A parked user costs bytes instead of a live testbed: the blob carries
// only decisions the simulation cannot re-derive. Everything re-derivable
// is re-derived at revival — response bodies that still match the site's
// deterministic content are stored as a path reference and regenerated
// from Resource::content_at, which is what keeps blobs compact and, since
// every shard regenerates the identical catalog, shard-portable. String
// keys are remapped through a per-blob string table (no interned ids leak
// into the encoding), the second portability requirement.
//
// Decoding fails closed: a checksum is verified before any field is read,
// every read is bounds-checked, and the whole blob is decoded into plain
// structs before the first byte is applied to a testbed — a truncated,
// bit-flipped or wrong-version blob yields ReviveStatus::Corrupt and an
// untouched (cold) testbed, never a partially-restored one.
#pragma once

#include <cstdint>
#include <string>

#include "core/testbed.h"

namespace catalyst::fleet {

/// Bump when the blob layout changes; decoders reject other versions.
inline constexpr std::uint16_t kParkedFormatVersion = 1;

enum class ReviveStatus {
  Ok,
  /// The blob failed validation (checksum, bounds, version, identity);
  /// the testbeds were left untouched — the user revives cold.
  Corrupt,
};

struct ReviveResult {
  ReviveStatus status = ReviveStatus::Corrupt;
  /// Straggler events drained at park time, owed to the next visit's
  /// loop_events so streaming totals match the legacy engine.
  std::uint64_t treat_stragglers = 0;
  std::uint64_t base_stragglers = 0;
};

/// Serializes `user_id`'s client state. The testbeds' event loops must be
/// drained (run()) first; the drained event counts ride along as
/// straggler carries. `base` is the optional comparison arm (nullptr when
/// the fleet runs a single arm).
std::string park_user(std::uint64_t user_id, core::Testbed& treat,
                      std::uint64_t treat_stragglers, core::Testbed* base,
                      std::uint64_t base_stragglers);

/// Restores a blob into freshly constructed testbeds (same site/strategy/
/// conditions the user was parked with). On Corrupt nothing is applied.
/// `base` must be non-null iff the blob was parked with a baseline arm.
ReviveResult revive_user(const std::string& blob, std::uint64_t user_id,
                         core::Testbed& treat, core::Testbed* base);

}  // namespace catalyst::fleet
