#include "fleet/parked.h"

#include <limits>
#include <map>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "server/catalyst_module.h"
#include "server/server.h"
#include "server/site.h"
#include "util/hash.h"

namespace catalyst::fleet {

namespace {

// ---------------------------------------------------------------------------
// Wire primitives: LEB128 varints for counts/ids/times (small in practice),
// fixed-width little-endian for digests/checksums (uniformly random, varint
// would expand them), and a per-blob string table — the first occurrence of
// a string defines the next id, later occurrences are one-varint references.
// The table is what strips interned ids out of the encoding: blobs carry
// plain bytes and remap through whatever intern table the reviving shard
// happens to have.
// ---------------------------------------------------------------------------

class BlobWriter {
 public:
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<char>(v));
  }

  void fixed16(std::uint16_t v) {
    out_.push_back(static_cast<char>(v & 0xff));
    out_.push_back(static_cast<char>(v >> 8));
  }

  void fixed64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>(v & 0xff));
      v >>= 8;
    }
  }

  void raw(std::string_view bytes) { out_.append(bytes); }

  /// String-table write: tag 0 introduces a literal (and assigns the next
  /// id), tag k > 0 references entry k-1.
  void str(const std::string& s) {
    const auto it = table_.find(s);
    if (it != table_.end()) {
      varint(it->second + 1);
      return;
    }
    varint(0);
    varint(s.size());
    out_.append(s);
    table_.emplace(s, static_cast<std::uint32_t>(table_.size()));
  }

  std::string take() && { return std::move(out_); }
  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
  std::map<std::string, std::uint32_t> table_;
};

/// Bounds-checked reader. Any overrun, bad tag or bad reference latches
/// ok() to false; callers check once after decoding a whole section.
class BlobReader {
 public:
  explicit BlobReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= bytes_.size() || shift > 63) return fail();
      const std::uint8_t b = static_cast<std::uint8_t>(bytes_[pos_++]);
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::uint16_t fixed16() {
    if (remaining() < 2) return static_cast<std::uint16_t>(fail());
    const auto lo = static_cast<std::uint8_t>(bytes_[pos_]);
    const auto hi = static_cast<std::uint8_t>(bytes_[pos_ + 1]);
    pos_ += 2;
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint64_t fixed64() {
    if (remaining() < 8) return fail();
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | static_cast<std::uint8_t>(bytes_[pos_ + i]);
    }
    pos_ += 8;
    return v;
  }

  std::string_view raw(std::size_t n) {
    if (remaining() < n) {
      fail();
      return {};
    }
    const std::string_view s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  std::string str() {
    const std::uint64_t tag = varint();
    if (!ok_) return {};
    if (tag == 0) {
      const std::uint64_t len = varint();
      if (!ok_ || len > remaining()) {
        fail();
        return {};
      }
      std::string s(raw(static_cast<std::size_t>(len)));
      table_.push_back(s);
      return s;
    }
    if (tag - 1 >= table_.size()) {
      fail();
      return {};
    }
    return table_[static_cast<std::size_t>(tag - 1)];
  }

  /// A decoded count must be plausible against the bytes left (every
  /// element costs at least one byte) — rejects corrupt counts before any
  /// allocation sized by them.
  std::uint64_t count() {
    const std::uint64_t n = varint();
    if (n > remaining()) return fail();
    return n;
  }

 private:
  std::uint64_t fail() {
    ok_ = false;
    return 0;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::vector<std::string> table_;
};

// ---------------------------------------------------------------------------
// Blob layout (version 1):
//   "CPKU" | u16 version | u16 flags (bit0: has baseline arm) |
//   varint user_id | client(treat) [| client(base)] | u64 fnv1a64 checksum
// Each client section: loop-now, straggler carry, fault progress, DNS set,
// HTTP cache (stats + entries LRU-first), service workers (lifecycle, map,
// SW cache, negative entries, stats). Entry bodies are a site path
// reference when the bytes still equal the site's deterministic content at
// the entry's response time (regenerated at revival), raw bytes otherwise.
// ---------------------------------------------------------------------------

constexpr char kMagic[4] = {'C', 'P', 'K', 'U'};
constexpr std::uint16_t kFlagHasBase = 1u << 0;
constexpr std::uint8_t kBodyRaw = 0;
constexpr std::uint8_t kBodySiteRef = 1;

std::uint64_t ns_of(TimePoint t) {
  return static_cast<std::uint64_t>(t.since_epoch().count());
}

/// The site path for a cache key: SW keys are already paths; HTTP cache
/// keys are full URLs, whose path starts at the first '/' after "://".
std::string path_of_key(const std::string& key) {
  if (!key.empty() && key.front() == '/') return key;
  const std::size_t scheme = key.find("://");
  if (scheme == std::string::npos) return {};
  const std::size_t slash = key.find('/', scheme + 3);
  if (slash == std::string::npos) return {};
  return key.substr(slash);
}

void encode_entry(BlobWriter& w, const std::string& key,
                  const cache::CacheEntry& entry, const server::Site* site) {
  w.varint(static_cast<std::uint64_t>(http::code(entry.response.status)));
  const auto& fields = entry.response.headers.fields();
  w.varint(fields.size());
  for (const auto& f : fields) {
    w.str(f.name);
    w.str(f.value);
  }
  // Body: prefer a site reference — verified byte-for-byte against the
  // deterministic catalog before committing to it, so transformed bodies
  // (e.g. Catalyst-injected HTML) fall back to raw bytes, never to a
  // wrong regeneration.
  std::string path;
  const server::Resource* r = nullptr;
  if (site != nullptr && !entry.response.body.empty()) {
    path = path_of_key(key);
    if (!path.empty()) r = site->find(path);
    if (r != nullptr && r->content_at(entry.response_time) !=
                            entry.response.body) {
      r = nullptr;
    }
  }
  if (r != nullptr) {
    w.varint(kBodySiteRef);
    w.str(path);
  } else {
    w.varint(kBodyRaw);
    w.varint(entry.response.body.size());
    w.raw(entry.response.body);
  }
  w.varint(entry.response.declared_body_size);
  w.varint(ns_of(entry.request_time));
  w.varint(ns_of(entry.response_time));
  // Stored digest is state, not derivable: corrupt() deliberately desyncs
  // it from the body, and that desync must survive a park/revive cycle.
  w.fixed64(entry.body_digest);
}

void encode_client(BlobWriter& w, core::Testbed& tb,
                   std::uint64_t stragglers) {
  w.varint(ns_of(tb.loop->now()));
  w.varint(stragglers);
  w.varint(tb.faults ? tb.faults->requests_decided() : 0);
  w.varint(tb.faults ? tb.faults->blackholed() : 0);

  const auto& dns = tb.browser->fetcher().dns_resolved();
  w.varint(dns.size());
  for (const auto& host : dns) w.str(host);

  cache::HttpCache& hc = tb.browser->http_cache();
  const cache::HttpCacheStats hs = hc.stats();
  w.varint(hs.hits);
  w.varint(hs.misses);
  w.varint(hs.stores);
  w.varint(hs.evictions);
  w.varint(hs.rejected_no_store);
  w.varint(hs.bytes_served);
  w.varint(hs.lookups);
  w.varint(hs.revalidations);
  w.varint(hs.negative_stores);
  w.varint(hs.negative_hits);
  const std::vector<std::string> urls = hc.stored_urls();  // MRU first
  w.varint(urls.size());
  for (auto it = urls.rbegin(); it != urls.rend(); ++it) {  // LRU first
    w.str(*it);
    encode_entry(w, *it, *hc.peek(*it), tb.site.get());
  }

  const std::vector<std::string> hosts = tb.browser->service_worker_hosts();
  w.varint(hosts.size());
  for (const std::string& host : hosts) {
    const client::CatalystServiceWorker& sw = tb.browser->service_worker(host);
    w.str(host);
    const http::EtagConfig* map = sw.current_map();
    std::uint8_t flags = 0;
    if (sw.registered()) flags |= 1;
    if (sw.degraded()) flags |= 2;
    if (map != nullptr) flags |= 4;
    w.varint(flags);
    if (map != nullptr) {
      w.varint(map->entries().size());
      for (const auto& e : map->entries()) {
        w.str(e.path);
        w.str(e.etag.value);
        w.varint(e.etag.weak ? 1 : 0);
      }
    }
    const std::vector<std::string> sw_urls = sw.cache().stored_urls();
    w.varint(sw_urls.size());
    for (auto it = sw_urls.rbegin(); it != sw_urls.rend(); ++it) {
      w.str(*it);
      encode_entry(w, *it, *sw.cache().peek(*it), tb.site.get());
    }
    const cache::SwCacheStats ss = sw.cache().stats();
    w.varint(ss.hits);
    w.varint(ss.misses);
    w.varint(ss.stores);
    w.varint(ss.evictions);
    w.varint(ss.rejected_no_store);
    w.varint(ss.bytes_served);
    w.varint(ss.etag_mismatches);
    w.varint(ss.integrity_failures);
    w.varint(sw.negative_entries().size());
    for (const auto& [path, entry] : sw.negative_entries()) {
      w.str(path);
      encode_entry(w, path, entry, tb.site.get());
    }
    const client::ServiceWorkerStats& ws = sw.stats();
    w.varint(ws.intercepted);
    w.varint(ws.served_from_cache);
    w.varint(ws.forwarded);
    w.varint(ws.maps_installed);
    w.varint(ws.maps_missing);
    w.varint(ws.maps_rejected);
    w.varint(ws.fallback_revalidations);
    w.varint(ws.negative_stores);
    w.varint(ws.negative_hits);
  }

  // Origin-side scan memo: repeat HTML serves of an already-scanned
  // (resource, version) skip the modeled DOM-scan compute, so the revived
  // user's origin must remember what it scanned or revisit TTFB drifts.
  // The memo is an unordered_map; sort keys so blob bytes stay
  // deterministic.
  const server::CatalystModule* module =
      tb.origin ? tb.origin->catalyst_module() : nullptr;
  if (module == nullptr || module->scan_memo().empty()) {
    w.varint(0);
  } else {
    std::map<std::string_view, const std::vector<std::string>*> sorted;
    for (const auto& [key, links] : module->scan_memo()) {
      sorted.emplace(key, &links);
    }
    w.varint(sorted.size());
    for (const auto& [key, links] : sorted) {
      w.str(std::string(key));
      w.varint(links->size());
      for (const std::string& link : *links) w.str(link);
    }
  }
}

// --- Decoded intermediate form: the whole blob lands here before a single
// byte is applied to a testbed, which is what makes corrupt blobs a no-op.

struct DecodedEntry {
  std::string key;
  cache::CacheEntry entry;
};

struct DecodedWorker {
  std::string host;
  bool registered = false;
  bool degraded = false;
  bool has_map = false;
  std::vector<std::pair<std::string, http::Etag>> map_entries;
  std::vector<DecodedEntry> cache_entries;  // LRU first
  cache::SwCacheStats cache_stats;
  std::vector<DecodedEntry> negative_entries;
  client::ServiceWorkerStats stats;
};

struct DecodedClient {
  std::uint64_t now_ns = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t fault_ordinal = 0;
  std::uint64_t fault_blackholed = 0;
  std::vector<std::string> dns;
  cache::HttpCacheStats http_stats;
  std::vector<DecodedEntry> http_entries;  // LRU first
  std::vector<DecodedWorker> workers;
  // Origin scan memo, sorted by key: "<path>#<version>" → extracted links.
  std::vector<std::pair<std::string, std::vector<std::string>>> scan_memo;
};

bool decode_entry(BlobReader& r, const std::string& key,
                  const server::Site* site, cache::CacheEntry& out) {
  const std::uint64_t status = r.varint();
  if (!r.ok() || status > 599) return false;
  out.response.status = static_cast<http::Status>(static_cast<int>(status));
  const std::uint64_t n_headers = r.count();
  for (std::uint64_t i = 0; r.ok() && i < n_headers; ++i) {
    const std::string name = r.str();
    const std::string value = r.str();
    if (r.ok()) out.response.headers.add(name, value);
  }
  const std::uint64_t kind = r.varint();
  if (!r.ok()) return false;
  if (kind == kBodySiteRef) {
    const std::string path = r.str();
    if (!r.ok()) return false;
    if (site == nullptr) return false;
    const server::Resource* res = site->find(path);
    if (res == nullptr) return false;
    // response_time decodes below; stash the path and fill the body after.
    out.response.body = path;  // placeholder, replaced once times are read
  } else if (kind == kBodyRaw) {
    const std::uint64_t len = r.varint();
    if (!r.ok() || len > r.remaining()) return false;
    out.response.body = std::string(r.raw(static_cast<std::size_t>(len)));
  } else {
    return false;
  }
  out.response.declared_body_size = r.varint();
  out.request_time = TimePoint{Duration{static_cast<std::int64_t>(r.varint())}};
  out.response_time =
      TimePoint{Duration{static_cast<std::int64_t>(r.varint())}};
  out.body_digest = r.fixed64();
  if (!r.ok()) return false;
  if (kind == kBodySiteRef) {
    // Now that response_time is known, regenerate the referenced content.
    const server::Resource* res = site->find(out.response.body);
    if (res == nullptr) return false;
    out.response.body = res->content_at(out.response_time);
  }
  (void)key;
  return true;
}

bool decode_client(BlobReader& r, const server::Site* site,
                   DecodedClient& out) {
  out.now_ns = r.varint();
  out.stragglers = r.varint();
  out.fault_ordinal = r.varint();
  out.fault_blackholed = r.varint();
  if (!r.ok() ||
      out.now_ns >
          static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    return false;
  }
  const std::uint64_t n_dns = r.count();
  for (std::uint64_t i = 0; r.ok() && i < n_dns; ++i) {
    out.dns.push_back(r.str());
  }
  cache::HttpCacheStats& hs = out.http_stats;
  hs.hits = r.varint();
  hs.misses = r.varint();
  hs.stores = r.varint();
  hs.evictions = r.varint();
  hs.rejected_no_store = r.varint();
  hs.bytes_served = r.varint();
  hs.lookups = r.varint();
  hs.revalidations = r.varint();
  hs.negative_stores = r.varint();
  hs.negative_hits = r.varint();
  const std::uint64_t n_http = r.count();
  for (std::uint64_t i = 0; r.ok() && i < n_http; ++i) {
    DecodedEntry e;
    e.key = r.str();
    if (!r.ok() || !decode_entry(r, e.key, site, e.entry)) return false;
    out.http_entries.push_back(std::move(e));
  }
  const std::uint64_t n_workers = r.count();
  for (std::uint64_t i = 0; r.ok() && i < n_workers; ++i) {
    DecodedWorker w;
    w.host = r.str();
    const std::uint64_t flags = r.varint();
    if (!r.ok() || flags > 7) return false;
    w.registered = (flags & 1) != 0;
    w.degraded = (flags & 2) != 0;
    w.has_map = (flags & 4) != 0;
    if (w.has_map) {
      const std::uint64_t n_map = r.count();
      for (std::uint64_t k = 0; r.ok() && k < n_map; ++k) {
        http::Etag etag;
        std::string path = r.str();
        etag.value = r.str();
        const std::uint64_t weak = r.varint();
        if (!r.ok() || weak > 1) return false;
        etag.weak = weak == 1;
        w.map_entries.emplace_back(std::move(path), std::move(etag));
      }
    }
    const std::uint64_t n_cache = r.count();
    for (std::uint64_t k = 0; r.ok() && k < n_cache; ++k) {
      DecodedEntry e;
      e.key = r.str();
      if (!r.ok() || !decode_entry(r, e.key, site, e.entry)) return false;
      w.cache_entries.push_back(std::move(e));
    }
    cache::SwCacheStats& ss = w.cache_stats;
    ss.hits = r.varint();
    ss.misses = r.varint();
    ss.stores = r.varint();
    ss.evictions = r.varint();
    ss.rejected_no_store = r.varint();
    ss.bytes_served = r.varint();
    ss.etag_mismatches = r.varint();
    ss.integrity_failures = r.varint();
    const std::uint64_t n_negative = r.count();
    for (std::uint64_t k = 0; r.ok() && k < n_negative; ++k) {
      DecodedEntry e;
      e.key = r.str();
      if (!r.ok() || !decode_entry(r, e.key, site, e.entry)) return false;
      w.negative_entries.push_back(std::move(e));
    }
    client::ServiceWorkerStats& ws = w.stats;
    ws.intercepted = r.varint();
    ws.served_from_cache = r.varint();
    ws.forwarded = r.varint();
    ws.maps_installed = r.varint();
    ws.maps_missing = r.varint();
    ws.maps_rejected = r.varint();
    ws.fallback_revalidations = r.varint();
    ws.negative_stores = r.varint();
    ws.negative_hits = r.varint();
    out.workers.push_back(std::move(w));
  }
  const std::uint64_t n_memo = r.count();
  for (std::uint64_t i = 0; r.ok() && i < n_memo; ++i) {
    std::string key = r.str();
    std::vector<std::string> links;
    const std::uint64_t n_links = r.count();
    for (std::uint64_t k = 0; r.ok() && k < n_links; ++k) {
      links.push_back(r.str());
    }
    if (!r.ok()) return false;
    out.scan_memo.emplace_back(std::move(key), std::move(links));
  }
  return r.ok();
}

void apply_client(DecodedClient&& c, core::Testbed& tb) {
  tb.loop->advance_to(TimePoint{Duration{static_cast<std::int64_t>(c.now_ns)}});
  if (tb.faults) {
    tb.faults->restore_progress(c.fault_ordinal, c.fault_blackholed);
  }
  for (const std::string& host : c.dns) {
    tb.browser->fetcher().restore_dns_resolved(host);
  }
  cache::HttpCache& hc = tb.browser->http_cache();
  for (DecodedEntry& e : c.http_entries) {  // LRU first → recency preserved
    hc.restore_entry(e.key, std::move(e.entry));
  }
  hc.restore_stats(c.http_stats);  // after entries: overrides restore churn
  for (DecodedWorker& w : c.workers) {
    client::CatalystServiceWorker& sw = tb.browser->service_worker(w.host);
    std::optional<http::EtagConfig> map;
    if (w.has_map) {
      map.emplace();
      for (auto& [path, etag] : w.map_entries) {
        map->add(std::move(path), std::move(etag));
      }
    }
    sw.restore_lifecycle(w.registered, w.degraded, std::move(map));
    for (DecodedEntry& e : w.cache_entries) {
      sw.cache().restore_entry(e.key, std::move(e.entry));
    }
    sw.cache().restore_stats(w.cache_stats);
    for (DecodedEntry& e : w.negative_entries) {
      sw.restore_negative_entry(std::move(e.key), std::move(e.entry));
    }
    sw.restore_stats(w.stats);
  }
  if (!c.scan_memo.empty() && tb.origin != nullptr) {
    if (server::CatalystModule* module = tb.origin->catalyst_module()) {
      for (auto& [key, links] : c.scan_memo) {
        module->restore_scan_memo(std::move(key), std::move(links));
      }
    }
  }
}

}  // namespace

std::string park_user(std::uint64_t user_id, core::Testbed& treat,
                      std::uint64_t treat_stragglers, core::Testbed* base,
                      std::uint64_t base_stragglers) {
  BlobWriter w;
  w.raw(std::string_view(kMagic, 4));
  w.fixed16(kParkedFormatVersion);
  w.fixed16(base != nullptr ? kFlagHasBase : 0);
  w.varint(user_id);
  encode_client(w, treat, treat_stragglers);
  if (base != nullptr) encode_client(w, *base, base_stragglers);
  const std::uint64_t checksum = fnv1a64(w.bytes());
  w.fixed64(checksum);
  return std::move(w).take();
}

ReviveResult revive_user(const std::string& blob, std::uint64_t user_id,
                         core::Testbed& treat, core::Testbed* base) {
  ReviveResult result;
  // Checksum before anything else: every truncation or bit flip anywhere
  // in the blob is caught here, so the structural decode below only ever
  // sees self-consistent bytes (it still bounds-checks everything).
  if (blob.size() < 4 + 2 + 2 + 8) return result;
  const std::string_view body(blob.data(), blob.size() - 8);
  BlobReader tail(std::string_view(blob).substr(blob.size() - 8));
  if (tail.fixed64() != fnv1a64(body)) return result;

  BlobReader r(body);
  if (r.raw(4) != std::string_view(kMagic, 4)) return result;
  if (r.fixed16() != kParkedFormatVersion) return result;
  const std::uint16_t flags = r.fixed16();
  if (!r.ok() || (flags & ~kFlagHasBase) != 0) return result;
  const bool has_base = (flags & kFlagHasBase) != 0;
  if (has_base != (base != nullptr)) return result;
  if (r.varint() != user_id || !r.ok()) return result;

  DecodedClient treat_state;
  if (!decode_client(r, treat.site.get(), treat_state)) return result;
  DecodedClient base_state;
  if (has_base && !decode_client(r, base->site.get(), base_state)) {
    return result;
  }
  if (r.remaining() != 0) return result;

  result.treat_stragglers = treat_state.stragglers;
  result.base_stragglers = base_state.stragglers;
  apply_client(std::move(treat_state), treat);
  if (has_base) apply_client(std::move(base_state), *base);
  result.status = ReviveStatus::Ok;
  return result;
}

}  // namespace catalyst::fleet
