#include "fleet/report.h"

#include <algorithm>

#include "util/strings.h"
#include "util/table.h"

namespace catalyst::fleet {

namespace {

/// Fixed stat set serialized for every Summary. An empty summary emits
/// count=0 only, so "no baseline run" cannot produce NaN-dependent bytes.
Json summary_json(const Summary& s) {
  Json j = Json::object();
  j.set("count", Json::number(static_cast<double>(s.count())));
  if (!s.empty()) {
    j.set("mean", Json::number(s.mean()));
    j.set("min", Json::number(s.min()));
    j.set("p50", Json::number(s.percentile(50)));
    j.set("p95", Json::number(s.percentile(95)));
    j.set("p99", Json::number(s.percentile(99)));
    j.set("max", Json::number(s.max()));
  }
  return j;
}

std::string stat_row(const Summary& s) {
  if (s.empty()) return "(no samples)";
  return str_format("mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f", s.mean(),
                    s.percentile(50), s.percentile(95), s.percentile(99));
}

/// Per-phase quantile object: only phases with samples appear, so a run
/// that never touched flash (say) emits no "flash_io" key. Everything is
/// computed from integer bucket counts, so the bytes are a pure function
/// of the merged histograms — bit-identical for any --threads.
Json phases_json(const obs::PhaseBreakdown& b) {
  Json obj = Json::object();
  for (obs::Phase p : obs::kAllPhases) {
    const obs::PhaseHistogram& h = b.of(p);
    if (h.empty()) continue;
    Json e = Json::object();
    e.set("count", Json::number(static_cast<double>(h.count())));
    e.set("total_ms",
          Json::number(static_cast<double>(h.total_ns()) / 1e6));
    e.set("p50_ms", Json::number(h.quantile_ms(50)));
    e.set("p95_ms", Json::number(h.quantile_ms(95)));
    e.set("p99_ms", Json::number(h.quantile_ms(99)));
    obj.set(std::string(obs::to_string(p)), std::move(e));
  }
  return obj;
}

}  // namespace

void EdgePopReport::merge(const EdgePopReport& other) {
  requests += other.requests;
  hits += other.hits;
  revalidated_hits += other.revalidated_hits;
  misses += other.misses;
  coalesced += other.coalesced;
  origin_fetches += other.origin_fetches;
  origin_not_modified += other.origin_not_modified;
  origin_errors += other.origin_errors;
  admission_rejects += other.admission_rejects;
  stores += other.stores;
  evictions += other.evictions;
  bytes_served += other.bytes_served;
  bytes_from_origin += other.bytes_from_origin;
  negative_stores += other.negative_stores;
  negative_hits += other.negative_hits;
  adversary_requests += other.adversary_requests;
  adversary_probes += other.adversary_probes;
  adversary_probe_hits += other.adversary_probe_hits;
  flash_enabled = flash_enabled || other.flash_enabled;
  flash_hits += other.flash_hits;
  flash_coalesced += other.flash_coalesced;
  flash_demotions += other.flash_demotions;
  flash_promotions += other.flash_promotions;
  flash_promotion_rejects += other.flash_promotion_rejects;
  flash_stores += other.flash_stores;
  flash_evictions += other.flash_evictions;
  flash_gc_rewrites += other.flash_gc_rewrites;
  flash_bytes_served += other.flash_bytes_served;
  flash_host_bytes += other.flash_host_bytes;
  flash_device_bytes += other.flash_device_bytes;
  aio_reads += other.aio_reads;
  aio_writes += other.aio_writes;
  aio_merged_reads += other.aio_merged_reads;
  aio_queue_waits += other.aio_queue_waits;
  aio_peak_inflight = aio_peak_inflight > other.aio_peak_inflight
                          ? aio_peak_inflight
                          : other.aio_peak_inflight;
}

void ParkStats::merge(const ParkStats& other) {
  parks += other.parks;
  revives += other.revives;
  corrupt_revivals += other.corrupt_revivals;
  live_users_peak = std::max(live_users_peak, other.live_users_peak);
  parked_bytes_peak = std::max(parked_bytes_peak, other.parked_bytes_peak);
}

void FleetReport::merge(const FleetReport& other) {
  users += other.users;
  visits += other.visits;
  revisits += other.revisits;
  counters.merge(other.counters);
  faults.merge(other.faults);
  oracle.merge(other.oracle);
  negative_hits += other.negative_hits;
  for (const auto& [user, trace] : other.traces) {
    traces.emplace(user, trace);
  }
  for (const auto& [pop, stats] : other.edge_pops) {
    edge_pops[pop].merge(stats);
  }
  events_executed += other.events_executed;
  phases.merge(other.phases);
  baseline_phases.merge(other.baseline_phases);
  prof.merge(other.prof);
  parking.merge(other.parking);
  bytes_on_wire += other.bytes_on_wire;
  baseline_bytes_on_wire += other.baseline_bytes_on_wire;
  rtts += other.rtts;
  baseline_rtts += other.baseline_rtts;
  plt_ms.merge(other.plt_ms);
  plt_reduction_pct.merge(other.plt_reduction_pct);
  per_user_plt_reduction_pct.merge(other.per_user_plt_reduction_pct);
  per_user_hit_rate_pct.merge(other.per_user_hit_rate_pct);
}

Json FleetReport::to_json() const {
  Json j = Json::object();
  j.set("users", Json::number(static_cast<double>(users)));
  j.set("visits", Json::number(static_cast<double>(visits)));
  j.set("revisits", Json::number(static_cast<double>(revisits)));

  Json c = Json::object();
  c.set("from_network", Json::number(static_cast<double>(counters.from_network)));
  c.set("from_cache", Json::number(static_cast<double>(counters.from_cache)));
  c.set("not_modified", Json::number(static_cast<double>(counters.not_modified)));
  c.set("from_sw_cache", Json::number(static_cast<double>(counters.from_sw_cache)));
  c.set("from_push", Json::number(static_cast<double>(counters.from_push)));
  c.set("stale_served", Json::number(static_cast<double>(counters.stale_served)));
  j.set("revisit_fetches", std::move(c));

  // Only present on faulty runs: zero-fault reports must serialize to the
  // exact bytes they produced before the fault layer existed.
  if (faults.any()) {
    Json f = Json::object();
    f.set("timeouts", Json::number(static_cast<double>(faults.timeouts)));
    f.set("retries", Json::number(static_cast<double>(faults.retries)));
    f.set("connection_failures",
          Json::number(static_cast<double>(faults.connection_failures)));
    f.set("fallback_revalidations",
          Json::number(static_cast<double>(faults.fallback_revalidations)));
    f.set("failed_loads",
          Json::number(static_cast<double>(faults.failed_loads)));
    j.set("faults", std::move(f));
  }

  // Only present when the byte-equivalence oracle audited something:
  // oracle-off reports must serialize to their pre-oracle bytes.
  if (oracle.any()) {
    Json o = Json::object();
    o.set("checked", Json::number(static_cast<double>(oracle.checked)));
    o.set("allowed_stale",
          Json::number(static_cast<double>(oracle.allowed_stale)));
    o.set("violations",
          Json::number(static_cast<double>(oracle.violations)));
    // Security subclasses only when present, so pre-adversary oracle
    // reports keep their exact bytes.
    if (oracle.poisoned_serves != 0) {
      o.set("poisoned_serves",
            Json::number(static_cast<double>(oracle.poisoned_serves)));
    }
    if (oracle.cross_user_leaks != 0) {
      o.set("cross_user_leaks",
            Json::number(static_cast<double>(oracle.cross_user_leaks)));
    }
    j.set("oracle", std::move(o));
  }

  // Only present when negative caching answered something.
  if (negative_hits != 0) {
    j.set("negative_hits",
          Json::number(static_cast<double>(negative_hits)));
  }

  // Only present on edge-enabled runs: edge-off reports must serialize to
  // the exact bytes they produced before the edge tier existed.
  if (!edge_pops.empty()) {
    EdgePopReport total;
    Json per_pop = Json::array();
    for (const auto& [pop, s] : edge_pops) {  // std::map: ascending pop id
      total.merge(s);
      Json p = Json::object();
      p.set("pop", Json::number(static_cast<double>(pop)));
      p.set("requests", Json::number(static_cast<double>(s.requests)));
      p.set("hits", Json::number(static_cast<double>(s.hits)));
      p.set("origin_fetches",
            Json::number(static_cast<double>(s.origin_fetches)));
      p.set("evictions", Json::number(static_cast<double>(s.evictions)));
      if (s.flash_enabled) {
        p.set("flash_hits", Json::number(static_cast<double>(s.flash_hits)));
        p.set("flash_write_amp", Json::number(s.flash_write_amp()));
      }
      per_pop.push_back(std::move(p));
    }
    Json e = Json::object();
    e.set("pops", Json::number(static_cast<double>(edge_pops.size())));
    e.set("requests", Json::number(static_cast<double>(total.requests)));
    e.set("hits", Json::number(static_cast<double>(total.hits)));
    e.set("revalidated_hits",
          Json::number(static_cast<double>(total.revalidated_hits)));
    e.set("misses", Json::number(static_cast<double>(total.misses)));
    e.set("coalesced", Json::number(static_cast<double>(total.coalesced)));
    e.set("origin_fetches",
          Json::number(static_cast<double>(total.origin_fetches)));
    e.set("origin_not_modified",
          Json::number(static_cast<double>(total.origin_not_modified)));
    e.set("origin_errors",
          Json::number(static_cast<double>(total.origin_errors)));
    e.set("admission_rejects",
          Json::number(static_cast<double>(total.admission_rejects)));
    e.set("stores", Json::number(static_cast<double>(total.stores)));
    e.set("evictions", Json::number(static_cast<double>(total.evictions)));
    e.set("bytes_served",
          Json::number(static_cast<double>(total.bytes_served)));
    e.set("bytes_from_origin",
          Json::number(static_cast<double>(total.bytes_from_origin)));
    const double offload =
        total.requests == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(total.requests - total.origin_fetches) /
                  static_cast<double>(total.requests);
    e.set("origin_offload_pct", Json::number(offload));
    // Negative-cache and adversary blocks only when those features ran,
    // so pre-existing edge reports keep their exact bytes.
    if (total.negative_stores != 0 || total.negative_hits != 0) {
      Json n = Json::object();
      n.set("stores",
            Json::number(static_cast<double>(total.negative_stores)));
      n.set("hits", Json::number(static_cast<double>(total.negative_hits)));
      e.set("negative", std::move(n));
    }
    if (total.adversary_requests != 0 || total.adversary_probes != 0) {
      Json a = Json::object();
      a.set("requests",
            Json::number(static_cast<double>(total.adversary_requests)));
      a.set("probes",
            Json::number(static_cast<double>(total.adversary_probes)));
      a.set("probe_hits",
            Json::number(static_cast<double>(total.adversary_probe_hits)));
      e.set("adversary", std::move(a));
    }
    // Flash tier block only on flash-enabled runs: RAM-only edge reports
    // must serialize to the exact bytes they produced before the flash
    // tier existed.
    if (total.flash_enabled) {
      Json fl = Json::object();
      fl.set("hits", Json::number(static_cast<double>(total.flash_hits)));
      fl.set("coalesced",
             Json::number(static_cast<double>(total.flash_coalesced)));
      fl.set("demotions",
             Json::number(static_cast<double>(total.flash_demotions)));
      fl.set("promotions",
             Json::number(static_cast<double>(total.flash_promotions)));
      fl.set("promotion_rejects",
             Json::number(static_cast<double>(total.flash_promotion_rejects)));
      fl.set("stores", Json::number(static_cast<double>(total.flash_stores)));
      fl.set("evictions",
             Json::number(static_cast<double>(total.flash_evictions)));
      fl.set("gc_rewrites",
             Json::number(static_cast<double>(total.flash_gc_rewrites)));
      fl.set("bytes_served",
             Json::number(static_cast<double>(total.flash_bytes_served)));
      fl.set("host_bytes_written",
             Json::number(static_cast<double>(total.flash_host_bytes)));
      fl.set("device_bytes_written",
             Json::number(static_cast<double>(total.flash_device_bytes)));
      fl.set("write_amp", Json::number(total.flash_write_amp()));
      Json aio = Json::object();
      aio.set("reads", Json::number(static_cast<double>(total.aio_reads)));
      aio.set("writes", Json::number(static_cast<double>(total.aio_writes)));
      aio.set("merged_reads",
              Json::number(static_cast<double>(total.aio_merged_reads)));
      aio.set("queue_waits",
              Json::number(static_cast<double>(total.aio_queue_waits)));
      aio.set("peak_inflight",
              Json::number(static_cast<double>(total.aio_peak_inflight)));
      fl.set("aio", std::move(aio));
      e.set("flash", std::move(fl));
    }
    e.set("per_pop", std::move(per_pop));
    j.set("edge", std::move(e));
  }

  // Only present when --breakdown recorded something: breakdown-off
  // reports must serialize to the exact bytes they produced before the
  // obs layer existed.
  if (phases.any()) {
    j.set("phases", phases_json(phases));
  }
  if (baseline_phases.any()) {
    j.set("baseline_phases", phases_json(baseline_phases));
  }

  j.set("bytes_on_wire", Json::number(static_cast<double>(bytes_on_wire)));
  j.set("baseline_bytes_on_wire",
        Json::number(static_cast<double>(baseline_bytes_on_wire)));
  j.set("rtts", Json::number(static_cast<double>(rtts)));
  j.set("baseline_rtts", Json::number(static_cast<double>(baseline_rtts)));
  j.set("rtts_saved", Json::number(static_cast<double>(rtts_saved())));
  j.set("bytes_saved", Json::number(static_cast<double>(bytes_saved())));

  j.set("revisit_plt_ms", summary_json(plt_ms));
  j.set("plt_reduction_pct", summary_json(plt_reduction_pct));
  j.set("per_user_plt_reduction_pct",
        summary_json(per_user_plt_reduction_pct));
  j.set("per_user_hit_rate_pct", summary_json(per_user_hit_rate_pct));
  return j;
}

std::string FleetReport::serialize() const { return to_json().dump(); }

std::string FleetReport::traces_jsonl() const {
  std::string out;
  for (const auto& [user, trace] : traces) out += trace;  // ascending id
  return out;
}

std::string FleetReport::render_table(const std::string& title) const {
  Table table(title);
  table.set_header({"metric", "value"});
  table.add_row({"users", std::to_string(users)});
  table.add_row({"visits (cold + revisit)",
                 str_format("%llu (%llu + %llu)",
                            static_cast<unsigned long long>(visits),
                            static_cast<unsigned long long>(visits - revisits),
                            static_cast<unsigned long long>(revisits))});
  table.add_separator();
  const std::uint64_t fetches = counters.total();
  auto pct_of = [fetches](std::uint64_t n) {
    return fetches == 0
               ? std::string("0%")
               : str_format("%.1f%%", 100.0 * static_cast<double>(n) /
                                          static_cast<double>(fetches));
  };
  table.add_row({"revisit fetches", std::to_string(fetches)});
  table.add_row({"  full downloads", pct_of(counters.from_network)});
  table.add_row({"  cache hits", pct_of(counters.from_cache)});
  table.add_row({"  revalidated 304s", pct_of(counters.not_modified)});
  table.add_row({"  sw-cache hits", pct_of(counters.from_sw_cache)});
  table.add_row({"  push deliveries", pct_of(counters.from_push)});
  table.add_row({"  stale served", std::to_string(counters.stale_served)});
  if (oracle.any()) {
    table.add_separator();
    table.add_row({"oracle checked", std::to_string(oracle.checked)});
    table.add_row(
        {"  allowed stale", std::to_string(oracle.allowed_stale)});
    table.add_row({"  violations", std::to_string(oracle.violations)});
    if (oracle.poisoned_serves != 0) {
      table.add_row(
          {"    poisoned serves", std::to_string(oracle.poisoned_serves)});
    }
    if (oracle.cross_user_leaks != 0) {
      table.add_row(
          {"    cross-user leaks", std::to_string(oracle.cross_user_leaks)});
    }
  }
  if (negative_hits != 0) {
    table.add_separator();
    table.add_row({"negative-cache hits", std::to_string(negative_hits)});
  }
  if (faults.any()) {
    table.add_separator();
    table.add_row({"timeouts fired", std::to_string(faults.timeouts)});
    table.add_row({"retries", std::to_string(faults.retries)});
    table.add_row(
        {"connection failures", std::to_string(faults.connection_failures)});
    table.add_row({"fallback revalidations",
                   std::to_string(faults.fallback_revalidations)});
    table.add_row({"failed loads (5xx)", std::to_string(faults.failed_loads)});
  }
  if (!edge_pops.empty()) {
    EdgePopReport total;
    for (const auto& [pop, s] : edge_pops) total.merge(s);
    table.add_separator();
    table.add_row({"edge pops", std::to_string(edge_pops.size())});
    table.add_row({"edge requests", std::to_string(total.requests)});
    auto epct = [&total](std::uint64_t n) {
      return total.requests == 0
                 ? std::string("0%")
                 : str_format("%.1f%%", 100.0 * static_cast<double>(n) /
                                            static_cast<double>(
                                                total.requests));
    };
    table.add_row({"  edge hits", epct(total.hits)});
    if (total.flash_enabled) {
      table.add_row({"  flash hits", epct(total.flash_hits)});
    }
    table.add_row({"  edge revalidated", epct(total.revalidated_hits)});
    table.add_row({"  edge misses", epct(total.misses)});
    table.add_row({"  coalesced fetches", std::to_string(total.coalesced)});
    table.add_row({"origin offload",
                   epct(total.requests - total.origin_fetches)});
    table.add_row({"edge evictions", std::to_string(total.evictions)});
    table.add_row(
        {"edge admission rejects", std::to_string(total.admission_rejects)});
    if (total.negative_stores != 0 || total.negative_hits != 0) {
      table.add_row(
          {"edge negative stores", std::to_string(total.negative_stores)});
      table.add_row(
          {"edge negative hits", std::to_string(total.negative_hits)});
    }
    if (total.adversary_requests != 0 || total.adversary_probes != 0) {
      table.add_row({"adversary requests",
                     std::to_string(total.adversary_requests)});
      table.add_row({"adversary probes (hits)",
                     str_format("%llu (%llu)",
                                static_cast<unsigned long long>(
                                    total.adversary_probes),
                                static_cast<unsigned long long>(
                                    total.adversary_probe_hits))});
    }
    if (total.flash_enabled) {
      table.add_separator();
      table.add_row({"flash demotions", std::to_string(total.flash_demotions)});
      table.add_row(
          {"flash promotions", std::to_string(total.flash_promotions)});
      table.add_row({"flash coalesced reads",
                     std::to_string(total.flash_coalesced)});
      table.add_row({"flash bytes served",
                     format_bytes(total.flash_bytes_served)});
      table.add_row(
          {"flash write amp", str_format("%.2f", total.flash_write_amp())});
      table.add_row({"aio reads (merged)",
                     str_format("%llu (%llu)",
                                static_cast<unsigned long long>(
                                    total.aio_reads),
                                static_cast<unsigned long long>(
                                    total.aio_merged_reads))});
      table.add_row({"aio peak inflight",
                     std::to_string(total.aio_peak_inflight)});
    }
  }
  table.add_separator();
  table.add_row({"bytes on wire", format_bytes(bytes_on_wire)});
  table.add_row({"rtts", std::to_string(rtts)});
  if (baseline_rtts != 0 || baseline_bytes_on_wire != 0) {
    table.add_row({"rtts saved vs baseline",
                   str_format("%lld", static_cast<long long>(rtts_saved()))});
    const std::int64_t bytes = bytes_saved();
    table.add_row(
        {"bytes saved vs baseline",
         str_format("%s%s", bytes < 0 ? "-" : "",
                    format_bytes(static_cast<ByteCount>(
                                     bytes < 0 ? -bytes : bytes))
                        .c_str())});
  }
  if (phases.any()) {
    table.add_separator();
    for (obs::Phase p : obs::kAllPhases) {
      const obs::PhaseHistogram& h = phases.of(p);
      if (h.empty()) continue;
      table.add_row(
          {str_format("phase %s (ms)",
                      std::string(obs::to_string(p)).c_str()),
           str_format("n %llu  p50 %.2f  p95 %.2f  p99 %.2f",
                      static_cast<unsigned long long>(h.count()),
                      h.quantile_ms(50), h.quantile_ms(95),
                      h.quantile_ms(99))});
    }
  }
  table.add_separator();
  table.add_row({"revisit PLT (ms)", stat_row(plt_ms)});
  table.add_row({"PLT reduction (%)", stat_row(plt_reduction_pct)});
  table.add_row(
      {"per-user PLT reduction (%)", stat_row(per_user_plt_reduction_pct)});
  table.add_row({"per-user hit rate (%)", stat_row(per_user_hit_rate_pct)});
  return table.render();
}

}  // namespace catalyst::fleet
