#include "fleet/report.h"

#include "util/strings.h"
#include "util/table.h"

namespace catalyst::fleet {

namespace {

/// Fixed stat set serialized for every Summary. An empty summary emits
/// count=0 only, so "no baseline run" cannot produce NaN-dependent bytes.
Json summary_json(const Summary& s) {
  Json j = Json::object();
  j.set("count", Json::number(static_cast<double>(s.count())));
  if (!s.empty()) {
    j.set("mean", Json::number(s.mean()));
    j.set("min", Json::number(s.min()));
    j.set("p50", Json::number(s.percentile(50)));
    j.set("p95", Json::number(s.percentile(95)));
    j.set("p99", Json::number(s.percentile(99)));
    j.set("max", Json::number(s.max()));
  }
  return j;
}

std::string stat_row(const Summary& s) {
  if (s.empty()) return "(no samples)";
  return str_format("mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f", s.mean(),
                    s.percentile(50), s.percentile(95), s.percentile(99));
}

}  // namespace

void FleetReport::merge(const FleetReport& other) {
  users += other.users;
  visits += other.visits;
  revisits += other.revisits;
  counters.merge(other.counters);
  faults.merge(other.faults);
  bytes_on_wire += other.bytes_on_wire;
  baseline_bytes_on_wire += other.baseline_bytes_on_wire;
  rtts += other.rtts;
  baseline_rtts += other.baseline_rtts;
  plt_ms.merge(other.plt_ms);
  plt_reduction_pct.merge(other.plt_reduction_pct);
  per_user_plt_reduction_pct.merge(other.per_user_plt_reduction_pct);
  per_user_hit_rate_pct.merge(other.per_user_hit_rate_pct);
}

Json FleetReport::to_json() const {
  Json j = Json::object();
  j.set("users", Json::number(static_cast<double>(users)));
  j.set("visits", Json::number(static_cast<double>(visits)));
  j.set("revisits", Json::number(static_cast<double>(revisits)));

  Json c = Json::object();
  c.set("from_network", Json::number(static_cast<double>(counters.from_network)));
  c.set("from_cache", Json::number(static_cast<double>(counters.from_cache)));
  c.set("not_modified", Json::number(static_cast<double>(counters.not_modified)));
  c.set("from_sw_cache", Json::number(static_cast<double>(counters.from_sw_cache)));
  c.set("from_push", Json::number(static_cast<double>(counters.from_push)));
  c.set("stale_served", Json::number(static_cast<double>(counters.stale_served)));
  j.set("revisit_fetches", std::move(c));

  // Only present on faulty runs: zero-fault reports must serialize to the
  // exact bytes they produced before the fault layer existed.
  if (faults.any()) {
    Json f = Json::object();
    f.set("timeouts", Json::number(static_cast<double>(faults.timeouts)));
    f.set("retries", Json::number(static_cast<double>(faults.retries)));
    f.set("connection_failures",
          Json::number(static_cast<double>(faults.connection_failures)));
    f.set("fallback_revalidations",
          Json::number(static_cast<double>(faults.fallback_revalidations)));
    f.set("failed_loads",
          Json::number(static_cast<double>(faults.failed_loads)));
    j.set("faults", std::move(f));
  }

  j.set("bytes_on_wire", Json::number(static_cast<double>(bytes_on_wire)));
  j.set("baseline_bytes_on_wire",
        Json::number(static_cast<double>(baseline_bytes_on_wire)));
  j.set("rtts", Json::number(static_cast<double>(rtts)));
  j.set("baseline_rtts", Json::number(static_cast<double>(baseline_rtts)));
  j.set("rtts_saved", Json::number(static_cast<double>(rtts_saved())));
  j.set("bytes_saved", Json::number(static_cast<double>(bytes_saved())));

  j.set("revisit_plt_ms", summary_json(plt_ms));
  j.set("plt_reduction_pct", summary_json(plt_reduction_pct));
  j.set("per_user_plt_reduction_pct",
        summary_json(per_user_plt_reduction_pct));
  j.set("per_user_hit_rate_pct", summary_json(per_user_hit_rate_pct));
  return j;
}

std::string FleetReport::serialize() const { return to_json().dump(); }

std::string FleetReport::render_table(const std::string& title) const {
  Table table(title);
  table.set_header({"metric", "value"});
  table.add_row({"users", std::to_string(users)});
  table.add_row({"visits (cold + revisit)",
                 str_format("%llu (%llu + %llu)",
                            static_cast<unsigned long long>(visits),
                            static_cast<unsigned long long>(visits - revisits),
                            static_cast<unsigned long long>(revisits))});
  table.add_separator();
  const std::uint64_t fetches = counters.total();
  auto pct_of = [fetches](std::uint64_t n) {
    return fetches == 0
               ? std::string("0%")
               : str_format("%.1f%%", 100.0 * static_cast<double>(n) /
                                          static_cast<double>(fetches));
  };
  table.add_row({"revisit fetches", std::to_string(fetches)});
  table.add_row({"  full downloads", pct_of(counters.from_network)});
  table.add_row({"  cache hits", pct_of(counters.from_cache)});
  table.add_row({"  revalidated 304s", pct_of(counters.not_modified)});
  table.add_row({"  sw-cache hits", pct_of(counters.from_sw_cache)});
  table.add_row({"  push deliveries", pct_of(counters.from_push)});
  table.add_row({"  stale served", std::to_string(counters.stale_served)});
  if (faults.any()) {
    table.add_separator();
    table.add_row({"timeouts fired", std::to_string(faults.timeouts)});
    table.add_row({"retries", std::to_string(faults.retries)});
    table.add_row(
        {"connection failures", std::to_string(faults.connection_failures)});
    table.add_row({"fallback revalidations",
                   std::to_string(faults.fallback_revalidations)});
    table.add_row({"failed loads (5xx)", std::to_string(faults.failed_loads)});
  }
  table.add_separator();
  table.add_row({"bytes on wire", format_bytes(bytes_on_wire)});
  table.add_row({"rtts", std::to_string(rtts)});
  if (baseline_rtts != 0 || baseline_bytes_on_wire != 0) {
    table.add_row({"rtts saved vs baseline",
                   str_format("%lld", static_cast<long long>(rtts_saved()))});
    const std::int64_t bytes = bytes_saved();
    table.add_row(
        {"bytes saved vs baseline",
         str_format("%s%s", bytes < 0 ? "-" : "",
                    format_bytes(static_cast<ByteCount>(
                                     bytes < 0 ? -bytes : bytes))
                        .c_str())});
  }
  table.add_separator();
  table.add_row({"revisit PLT (ms)", stat_row(plt_ms)});
  table.add_row({"PLT reduction (%)", stat_row(plt_reduction_pct)});
  table.add_row(
      {"per-user PLT reduction (%)", stat_row(per_user_plt_reduction_pct)});
  table.add_row({"per-user hit rate (%)", stat_row(per_user_hit_rate_pct)});
  return table.render();
}

}  // namespace catalyst::fleet
