// Per-user behaviour sampling for population-scale fleet simulation.
//
// A fleet run replays N independent user sessions. Each user is described
// entirely by a UserProfile — which site they frequent, what access network
// they sit on, and the absolute times of their visits over the simulated
// horizon — and every field is a pure function of (master_seed, user_id).
// That keying is the root of the fleet determinism invariant: no matter how
// users are later batched into shards or spread over worker threads, user
// 4711 always behaves identically.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "netsim/conditions.h"
#include "util/types.h"

namespace catalyst::fleet {

/// Access-network tier a user lives on for the whole simulated horizon.
/// The mix spans the paper's motivating range: well-served 5G down to the
/// latency-constrained links where caching decisions dominate PLT.
enum class AccessTier {
  Fast5g,       // 60 Mbps / 40 ms — the paper's median-5G condition
  Typical4g,    // 20 Mbps / 60 ms
  Slow3g,       // 8 Mbps / 120 ms — Figure 3's low-throughput column
  Constrained,  // 2 Mbps / 300 ms — satellite / congested last mile
};

std::string_view to_string(AccessTier tier);

/// Link shape for a tier (downlink / uplink / RTT).
netsim::NetworkConditions conditions_for(AccessTier tier);

/// Knobs for the population draw. The defaults model a week of traffic
/// against a 40-site catalog with Zipfian site popularity.
struct UserModelParams {
  std::uint64_t master_seed = 2024;

  /// Distinct synthetic sites users are assigned to (Zipf over rank).
  int site_catalog_size = 40;

  /// Zipf popularity exponent; ~0.9 matches web-trace fits.
  double zipf_exponent = 0.9;

  /// Visits are materialized over [0, horizon).
  Duration horizon = days(7);

  /// Fleet-wide mean inter-visit gap. Individual users scale it by a
  /// lognormal activity factor (heavy daily visitors to occasional ones).
  Duration mean_visit_gap = hours(36);

  /// Cap on visits per user (including the cold first visit) so a single
  /// hyper-active draw cannot dominate a shard's runtime.
  int max_visits = 6;

  /// Serve sites as static snapshots (the paper's clone methodology).
  bool clone_static_snapshot = true;

  /// Seed for the site catalog itself (independent of the population
  /// draw so the same catalog can be replayed under different fleets).
  std::uint64_t sitegen_seed = 2024;

  /// Site error model (workload::SitegenParams::ErrorModel): fractions of
  /// dead links (404), retired paths (410) and soft-404 JSON endpoints in
  /// the generated catalog. All zero (the default) leaves the catalog
  /// byte-identical to pre-error-model builds.
  double dead_link_fraction = 0.0;
  double gone_link_fraction = 0.0;
  double soft404_fraction = 0.0;
};

/// One user's complete, deterministic session description.
struct UserProfile {
  std::uint64_t user_id = 0;
  int site_index = 0;          // into the fleet's site catalog
  AccessTier tier = AccessTier::Fast5g;
  bool mobile_client = false;  // slower parse/execute (paper's motivation)
  std::vector<TimePoint> visits;  // ascending; visits.front() is cold
};

/// Samples user `user_id`'s profile. Pure in (params, user_id): the Rng
/// stream is forked from the master seed by user id, so the result is
/// independent of call order, shard assignment and thread interleaving.
UserProfile make_user_profile(const UserModelParams& params,
                              std::uint64_t user_id);

/// Maps a user to an edge PoP — a pure function of (master_seed, user_id,
/// pops), like every other per-user draw. The edge-enabled fleet partitions
/// shards by PoP, so this mapping (not shard geometry) decides which users
/// share cache state; determinism survives any --threads value.
int edge_pop_of(std::uint64_t master_seed, std::uint64_t user_id, int pops);

}  // namespace catalyst::fleet
