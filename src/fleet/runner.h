// Fleet execution: a fixed worker pool draining a shard queue.
//
// Sharding is a pure function of (num_users, shard_size) — never of the
// thread count — and each shard's report lands in a slot indexed by shard
// id, merged in ascending id order after the workers join. Combined with
// per-user RNG keying (user_model) and shard-private state (shard), that
// makes the merged FleetReport bit-identical for any --threads value.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "fleet/shard.h"

namespace catalyst::fleet {

/// Mutex/condvar task queue the worker pool pulls ShardTasks from. All
/// tasks are enqueued before the workers start; close() lets idle workers
/// drain out once the queue empties.
class ShardQueue {
 public:
  void push(ShardTask task);
  void close();

  /// Blocks until a task is available or the queue is closed and empty;
  /// nullopt means "no more work, exit".
  std::optional<ShardTask> pop();

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<ShardTask> tasks_;  // drained FIFO; order is irrelevant
  std::size_t next_ = 0;
  bool closed_ = false;
};

/// Runs `num_users` user sessions across a pool of worker threads and
/// merges the per-shard reports canonically.
class FleetRunner {
 public:
  /// threads < 1 is clamped to 1. threads == 1 still goes through the
  /// pool (one worker), so the single- and multi-threaded paths are the
  /// same code.
  FleetRunner(FleetParams params, std::uint64_t num_users, int threads);

  /// Executes the whole fleet; safe to call once.
  FleetReport run();

  /// Live fleet-wide progress, readable from any thread while run() is
  /// executing (lock-free; counts completed users / their fetch totals).
  std::uint64_t users_completed() const {
    return users_completed_.load(std::memory_order_relaxed);
  }
  CacheCounters live_counters() const { return live_counters_.snapshot(); }

  std::size_t shard_count() const { return shard_count_; }
  int threads() const { return threads_; }

 private:
  FleetParams params_;
  std::uint64_t num_users_;
  int threads_;
  std::size_t shard_count_;

  std::atomic<std::uint64_t> users_completed_{0};
  AtomicCacheCounters live_counters_;
};

}  // namespace catalyst::fleet
