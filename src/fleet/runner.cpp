#include "fleet/runner.h"

#include <algorithm>
#include <thread>

namespace catalyst::fleet {

void ShardQueue::push(ShardTask task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(task);
  }
  ready_.notify_one();
}

void ShardQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::optional<ShardTask> ShardQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return next_ < tasks_.size() || closed_; });
  if (next_ < tasks_.size()) return tasks_[next_++];
  return std::nullopt;
}

FleetRunner::FleetRunner(FleetParams params, std::uint64_t num_users,
                         int threads)
    : params_(std::move(params)),
      num_users_(num_users),
      threads_(std::max(threads, 1)) {
  if (params_.edge.enabled()) {
    // Edge mode: sharding follows the PoP partition, not user-count
    // geometry — shared cache state must never cross a worker boundary.
    shard_count_ = static_cast<std::size_t>(params_.edge.pops);
    return;
  }
  const std::uint64_t shard_size = std::max<std::uint64_t>(
      params_.shard_size, 1);
  shard_count_ = static_cast<std::size_t>(
      (num_users_ + shard_size - 1) / shard_size);
}

FleetReport FleetRunner::run() {
  const std::uint64_t shard_size =
      std::max<std::uint64_t>(params_.shard_size, 1);

  ShardQueue queue;
  if (params_.edge.enabled()) {
    // One task per PoP, each spanning every user id; the shard filters to
    // the users edge_pop_of maps to its PoP. Work partitioning is a pure
    // function of (seed, pops) — never of threads or shard_size.
    for (std::size_t s = 0; s < shard_count_; ++s) {
      ShardTask task;
      task.shard_index = s;
      task.first_user = 0;
      task.user_count = num_users_;
      task.pop = static_cast<int>(s);
      queue.push(task);
    }
  } else {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      ShardTask task;
      task.shard_index = s;
      task.first_user = static_cast<std::uint64_t>(s) * shard_size;
      task.user_count = std::min(shard_size, num_users_ - task.first_user);
      queue.push(task);
    }
  }
  queue.close();

  // One report slot per shard: workers write disjoint slots, the merge
  // below reads them only after every worker has joined.
  std::vector<FleetReport> slots(shard_count_);

  auto worker = [&] {
    while (auto task = queue.pop()) {
      FleetReport report = Shard(params_, *task).run();
      users_completed_.fetch_add(report.users, std::memory_order_relaxed);
      live_counters_.record(report.counters);
      slots[task->shard_index] = std::move(report);
    }
  };

  const int pool = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(threads_), std::max<std::size_t>(
                                                shard_count_, 1)));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) workers.emplace_back(worker);
  for (auto& w : workers) w.join();

  // Canonical merge: ascending shard index == ascending user id, exactly
  // the order a single thread would have accumulated samples in.
  FleetReport merged;
  for (auto& slot : slots) merged.merge(slot);
  return merged;
}

}  // namespace catalyst::fleet
