#include "fleet/runner.h"

#include <algorithm>
#include <map>
#include <thread>

namespace catalyst::fleet {

void ShardQueue::push(ShardTask task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(task);
  }
  ready_.notify_one();
}

void ShardQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::optional<ShardTask> ShardQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return next_ < tasks_.size() || closed_; });
  if (next_ < tasks_.size()) return tasks_[next_++];
  return std::nullopt;
}

FleetRunner::FleetRunner(FleetParams params, std::uint64_t num_users,
                         int threads)
    : params_(std::move(params)),
      num_users_(num_users),
      threads_(std::max(threads, 1)) {
  if (params_.edge.enabled()) {
    // Edge mode: sharding follows the PoP partition, not user-count
    // geometry — shared cache state must never cross a worker boundary.
    shard_count_ = static_cast<std::size_t>(params_.edge.pops);
    return;
  }
  std::uint64_t shard_size = std::max<std::uint64_t>(params_.shard_size, 1);
  if (params_.max_live_users > 0) {
    // Streaming mode: oversubscribe each shard's arena 16x so parking
    // actually happens (a shard no larger than its arena never parks).
    // A pure function of max_live_users — never of the thread count — so
    // the shard geometry, and with it the report, is thread-independent;
    // report bytes are identical for any shard_size anyway (canonical
    // merge), so widening shards only changes scheduling granularity.
    shard_size = std::max(shard_size, 16 * params_.max_live_users);
    params_.shard_size = shard_size;
  }
  shard_count_ = static_cast<std::size_t>(
      (num_users_ + shard_size - 1) / shard_size);
}

FleetReport FleetRunner::run() {
  const std::uint64_t shard_size =
      std::max<std::uint64_t>(params_.shard_size, 1);

  ShardQueue queue;
  if (params_.edge.enabled()) {
    // One task per PoP, each spanning every user id; the shard filters to
    // the users edge_pop_of maps to its PoP. Work partitioning is a pure
    // function of (seed, pops) — never of threads or shard_size.
    for (std::size_t s = 0; s < shard_count_; ++s) {
      ShardTask task;
      task.shard_index = s;
      task.first_user = 0;
      task.user_count = num_users_;
      task.pop = static_cast<int>(s);
      queue.push(task);
    }
  } else {
    for (std::size_t s = 0; s < shard_count_; ++s) {
      ShardTask task;
      task.shard_index = s;
      task.first_user = static_cast<std::uint64_t>(s) * shard_size;
      task.user_count = std::min(shard_size, num_users_ - task.first_user);
      queue.push(task);
    }
  }
  queue.close();

  // Incremental canonical merge: shard reports fold into `merged` in
  // ascending shard index (== ascending user id) the moment the run
  // becomes the next expected index, exactly the order a single thread
  // would have accumulated samples in — but without holding one report
  // slot per shard for the whole run. Out-of-order completions wait in
  // `pending` (bounded by worker-count stragglers, not by shard count),
  // so resident report memory stays O(threads) instead of O(shards).
  std::mutex merge_mutex;
  FleetReport merged;
  std::map<std::size_t, FleetReport> pending;
  std::size_t next_merge = 0;

  auto worker = [&] {
    while (auto task = queue.pop()) {
      FleetReport report = Shard(params_, *task).run();
      users_completed_.fetch_add(report.users, std::memory_order_relaxed);
      live_counters_.record(report.counters);
      std::lock_guard<std::mutex> lock(merge_mutex);
      pending.emplace(task->shard_index, std::move(report));
      while (!pending.empty() && pending.begin()->first == next_merge) {
        merged.merge(pending.begin()->second);
        pending.erase(pending.begin());
        ++next_merge;
      }
    }
  };

  const int pool = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(threads_), std::max<std::size_t>(
                                                shard_count_, 1)));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(pool));
  for (int i = 0; i < pool; ++i) workers.emplace_back(worker);
  for (auto& w : workers) w.join();

  return merged;
}

}  // namespace catalyst::fleet
