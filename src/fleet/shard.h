// A shard: one worker-sized batch of users replayed sequentially on
// private state.
//
// Shards own everything they touch — site catalog, testbeds, event loops —
// so two shards never share a mutable object and can run on different
// threads without synchronization. Site content memoization (Resource's
// lazy version cache) is the reason sharing is off the table; regenerating
// the catalog per shard is deterministic and costs microseconds per site.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "core/experiment.h"
#include "edge/pop.h"
#include "fleet/report.h"
#include "fleet/user_model.h"

namespace catalyst::fleet {

/// Whole-fleet configuration shared (read-only) by every shard.
struct FleetParams {
  UserModelParams user_model;

  /// Strategy under test.
  core::StrategyKind strategy = core::StrategyKind::Catalyst;

  /// Comparison strategy replayed over the same users/timelines to price
  /// RTTs/bytes saved and PLT reduction. Set equal to `strategy` to skip
  /// the second replay (halves the work; saved/reduction stats stay 0).
  core::StrategyKind baseline = core::StrategyKind::Baseline;

  /// Per-testbed knobs; `mobile_client` is overridden per user.
  core::StrategyOptions options;

  /// Fault-injection knobs applied to every user's network (default: all
  /// zero, no fault layer). The per-user testbed keys the decision stream
  /// by user id, so fault schedules — like everything else — are a pure
  /// function of (seed, user id) and independent of sharding/threading.
  netsim::FaultSpec faults;

  /// Users per shard. Purely a scheduling granularity: results are
  /// bit-identical for any value because each user's replay is
  /// self-contained and merging is canonicalized.
  std::uint64_t shard_size = 256;

  /// Streaming shard engine: cap on concurrently materialized (live)
  /// users per shard. 0 (the default) selects the legacy engine, which
  /// replays each user's whole timeline in one testbed before moving on.
  /// > 0 switches the shard to time-ordered visit processing: a
  /// fixed-size arena holds at most this many live users, and between
  /// visits the least-soon-needed user is serialized to a compact
  /// ParkedUser blob (fleet/parked) and revived on its next arrival, so
  /// resident testbed state is O(max_live_users), not O(shard users).
  /// Reports are bit-identical to the legacy engine for any value.
  /// Incompatible with edge PoPs, the adversary, and cross-visit
  /// server-learned strategies (CatalystLearned/PushLearned/RdrProxy),
  /// whose state lives outside the parked client snapshot.
  std::uint64_t max_live_users = 0;

  /// Edge tier (pops == 0: no edge anywhere, identical to pre-edge runs).
  /// When enabled, sharding switches from contiguous user ranges to
  /// one-shard-per-PoP so cache sharing never crosses a thread boundary.
  edge::EdgeTierParams edge;

  /// Record replayable JSONL traces (check::trace_to_jsonl) for users with
  /// id < trace_users (0 = off). Keyed by user id in the report, so the
  /// exported stream is bit-identical for any --threads/--shard-size.
  std::uint64_t trace_users = 0;

  /// Per-request phase breakdown (fleetsim --breakdown). Each shard owns
  /// one obs::Recorder per strategy arm and exports the folded histograms
  /// through FleetReport::phases / baseline_phases. Off (the default)
  /// leaves the loop's recorder null and reports byte-identical to
  /// pre-obs builds.
  bool breakdown = false;

  /// True when the streaming engine reproduces this configuration
  /// bit-identically: every piece of cross-visit state lives inside the
  /// parked client snapshot. Shared edge PoPs, the scripted adversary,
  /// and server/proxy-learned strategies keep state outside it, so
  /// Shard::run falls back to the legacy engine for those even when
  /// max_live_users is set. fleetsim rejects the same combinations
  /// loudly at argument parse time; this predicate is the safety net
  /// for library callers (tests, benches, future tools).
  bool streaming_compatible() const {
    if (edge.enabled() || options.adversary.enabled) return false;
    for (const core::StrategyKind k : {strategy, baseline}) {
      if (k == core::StrategyKind::CatalystLearned ||
          k == core::StrategyKind::PushLearned ||
          k == core::StrategyKind::RdrProxy) {
        return false;
      }
    }
    return true;
  }
};

/// Contiguous user-id range [first_user, first_user + user_count). In
/// edge mode the range spans the whole fleet and `pop` selects which of
/// those users — the ones edge_pop_of maps to this PoP — the shard runs.
struct ShardTask {
  std::size_t shard_index = 0;
  std::uint64_t first_user = 0;
  std::uint64_t user_count = 0;
  int pop = -1;  // >= 0: replay only this PoP's users, sharing its cache
};

/// Replays one batch of users and accumulates their FleetReport.
class Shard {
 public:
  Shard(const FleetParams& params, ShardTask task)
      : params_(params), task_(task) {}

  /// Runs every user in the batch (ascending user id, so the report's
  /// Summary sample order is canonical) and returns the shard report.
  FleetReport run();

 private:
  std::shared_ptr<server::Site> site_for(int site_index);
  void replay_user(const UserProfile& profile, FleetReport& report);
  /// Streaming engine (params_.max_live_users > 0): time-ordered visit
  /// processing over a bounded live-user arena with park/revive.
  FleetReport run_streaming();

  const FleetParams& params_;
  ShardTask task_;
  // Lazily generated, shard-private site catalog. Users of one shard that
  // share a site share memoized content (single-threaded, safe).
  std::map<int, std::shared_ptr<server::Site>> sites_;
  // Edge mode: this shard's PoP, one cache per arm so the baseline replay
  // never warms (or is warmed by) the treatment's shared state. Only the
  // treatment PoP's stats are exported.
  std::unique_ptr<edge::EdgePop> treat_pop_;
  std::unique_ptr<edge::EdgePop> base_pop_;
  // Breakdown mode: one recorder per arm, accumulated across every user
  // in the batch (virtual time only — recording never perturbs replay).
  obs::Recorder treat_recorder_;
  obs::Recorder base_recorder_;
};

}  // namespace catalyst::fleet
