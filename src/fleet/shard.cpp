#include "fleet/shard.h"

#include "check/replay.h"
#include "obs/selfprof.h"
#include "workload/sitegen.h"

namespace catalyst::fleet {

namespace {

/// Replays one user's visit timeline under one strategy in a fresh
/// testbed (cache and Service Worker state persist across the timeline,
/// exactly like run_visit_sequence).
std::vector<client::PageLoadResult> replay_timeline(
    const std::shared_ptr<server::Site>& site, const UserProfile& profile,
    core::StrategyKind kind, core::StrategyOptions options,
    netsim::FaultSpec faults, edge::EdgePop* edge_pop,
    Duration edge_origin_rtt, obs::Recorder* recorder) {
  options.mobile_client = profile.mobile_client;
  // Bind this arm's shared PoP (if any) and phase recorder (if breakdown
  // is on) into the user's private testbed.
  options.edge_pop = edge_pop;
  options.phase_recorder = recorder;
  if (edge_pop != nullptr) options.edge_origin_rtt = edge_origin_rtt;
  netsim::NetworkConditions conditions = conditions_for(profile.tier);
  conditions.faults = faults;
  // Key the fault decision stream by user id (the fleet RNG discipline):
  // user i's faults are the same regardless of shard or thread count.
  conditions.faults.stream = profile.user_id;
  core::Testbed tb = core::make_testbed(site, conditions, kind, options);
  std::vector<client::PageLoadResult> results;
  results.reserve(profile.visits.size());
  for (const TimePoint at : profile.visits) {
    results.push_back(core::run_visit(tb, at));
  }
  return results;
}

}  // namespace

std::shared_ptr<server::Site> Shard::site_for(int site_index) {
  auto it = sites_.find(site_index);
  if (it != sites_.end()) return it->second;
  workload::SitegenParams sp;
  sp.seed = params_.user_model.sitegen_seed;
  sp.site_index = site_index;
  sp.clone_static_snapshot = params_.user_model.clone_static_snapshot;
  sp.errors.dead_link_fraction = params_.user_model.dead_link_fraction;
  sp.errors.gone_link_fraction = params_.user_model.gone_link_fraction;
  sp.errors.soft404_fraction = params_.user_model.soft404_fraction;
  auto site = workload::generate_site(sp);
  sites_.emplace(site_index, site);
  return site;
}

void Shard::replay_user(const UserProfile& profile, FleetReport& report) {
  obs::count(obs::Sub::kFleet);
  obs::ScopedTimer prof_timer(obs::Sub::kFleet);
  const auto site = site_for(profile.site_index);
  const auto treat = replay_timeline(
      site, profile, params_.strategy, params_.options, params_.faults,
      treat_pop_.get(), params_.edge.origin_rtt,
      params_.breakdown ? &treat_recorder_ : nullptr);
  const bool compare = params_.baseline != params_.strategy;
  std::vector<client::PageLoadResult> base;
  if (compare) {
    base = replay_timeline(site, profile, params_.baseline, params_.options,
                           params_.faults, base_pop_.get(),
                           params_.edge.origin_rtt,
                           params_.breakdown ? &base_recorder_ : nullptr);
  }

  report.users += 1;
  report.visits += treat.size();
  report.revisits += treat.size() - 1;

  if (profile.user_id < params_.trace_users) {
    std::string jsonl;
    for (std::size_t i = 0; i < treat.size(); ++i) {
      jsonl += check::trace_to_jsonl(treat[i], profile.user_id,
                                     static_cast<std::uint32_t>(i));
    }
    report.traces.emplace(profile.user_id, std::move(jsonl));
  }

  double user_reduction_sum = 0.0;
  std::size_t user_reduction_n = 0;
  std::uint64_t user_fetches = 0;
  std::uint64_t user_avoided = 0;

  for (std::size_t i = 0; i < treat.size(); ++i) {
    const client::PageLoadResult& r = treat[i];
    report.bytes_on_wire += r.bytes_downloaded;
    report.rtts += r.rtts;
    report.events_executed += r.loop_events;
    if (compare) {
      report.baseline_bytes_on_wire += base[i].bytes_downloaded;
      report.baseline_rtts += base[i].rtts;
      report.events_executed += base[i].loop_events;
    }
    // Fault tallies cover every treatment visit — cold loads get hit by
    // faults like any other.
    report.faults.timeouts += r.timeouts_fired;
    report.faults.retries += r.retries;
    report.faults.connection_failures += r.connection_failures;
    report.faults.fallback_revalidations += r.fallback_revalidations;
    report.faults.failed_loads += r.failed_loads;
    // Oracle tallies cover every treatment visit — a wrong byte on the
    // cold load would be just as wrong.
    report.oracle.checked += r.oracle_checked;
    report.oracle.allowed_stale += r.oracle_allowed_stale;
    report.oracle.violations += r.oracle_violations;
    report.oracle.poisoned_serves += r.oracle_poisoned;
    report.oracle.cross_user_leaks += r.oracle_leaks;
    report.negative_hits += r.negative_hits;
    if (i == 0) continue;  // cold load: all-network by construction

    CacheCounters c;
    c.from_network = r.from_network;
    c.from_cache = r.from_cache;
    c.not_modified = r.not_modified;
    c.from_sw_cache = r.from_sw_cache;
    c.from_push = r.from_push;
    c.stale_served = r.stale_served;
    report.counters.merge(c);
    user_fetches += c.total();
    user_avoided += c.avoided_downloads();

    report.plt_ms.add(to_millis(r.plt()));
    if (compare) {
      const double base_ms = to_millis(base[i].plt());
      if (base_ms > 0.0) {
        const double reduction =
            100.0 * (base_ms - to_millis(r.plt())) / base_ms;
        report.plt_reduction_pct.add(reduction);
        user_reduction_sum += reduction;
        ++user_reduction_n;
      }
    }
  }

  if (user_reduction_n > 0) {
    report.per_user_plt_reduction_pct.add(
        user_reduction_sum / static_cast<double>(user_reduction_n));
  }
  if (user_fetches > 0) {
    report.per_user_hit_rate_pct.add(100.0 *
                                     static_cast<double>(user_avoided) /
                                     static_cast<double>(user_fetches));
  }
}

FleetReport Shard::run() {
  FleetReport report;
  // Snapshot this thread's self-profile counters so the report carries
  // exactly what this shard's replay cost (threads are reused across
  // shards, so the raw thread-local totals would double-count).
  const obs::ProfCounters prof_before = obs::tls_prof();
  if (params_.edge.enabled() && task_.pop >= 0) {
    edge::EdgeConfig ec;
    ec.pop_id = task_.pop;
    ec.capacity = params_.edge.capacity;
    ec.tinylfu_admission = params_.edge.admission;
    ec.negative = params_.edge.negative;
    ec.vulnerable_keying = params_.edge.vulnerable_keying;
    if (params_.edge.flash_enabled()) {
      ec.flash.capacity = params_.edge.flash_capacity;
      ec.flash.device.read_latency = params_.edge.flash_read_latency;
      ec.flash.device.queue_depth = params_.edge.flash_queue_depth;
      // Jitter keyed off the fleet's master seed (forked per PoP inside
      // EdgePop) so runs with different seeds draw different streams.
      ec.flash.seed = params_.user_model.master_seed;
    }
    treat_pop_ = std::make_unique<edge::EdgePop>(ec);
    base_pop_ = std::make_unique<edge::EdgePop>(ec);
  }
  for (std::uint64_t i = 0; i < task_.user_count; ++i) {
    const std::uint64_t user_id = task_.first_user + i;
    // Edge mode: the task spans the whole fleet; run only this PoP's
    // users (ascending id, so sample order stays canonical).
    if (task_.pop >= 0 &&
        edge_pop_of(params_.user_model.master_seed, user_id,
                    params_.edge.pops) != task_.pop) {
      continue;
    }
    replay_user(make_user_profile(params_.user_model, user_id), report);
  }
  if (treat_pop_) {
    const edge::EdgePopStats s = treat_pop_->stats();
    EdgePopReport& e = report.edge_pops[task_.pop];
    e.requests = s.requests;
    e.hits = s.hits;
    e.revalidated_hits = s.revalidated_hits;
    e.misses = s.misses;
    e.coalesced = s.coalesced;
    e.origin_fetches = s.origin_fetches;
    e.origin_not_modified = s.origin_not_modified;
    e.origin_errors = s.origin_errors;
    e.admission_rejects = s.admission_rejects;
    e.stores = s.stores;
    e.evictions = s.evictions;
    e.bytes_served = s.bytes_served;
    e.bytes_from_origin = s.bytes_from_origin;
    e.negative_stores = s.negative_stores;
    e.negative_hits = s.negative_hits;
    e.adversary_requests = s.adversary_requests;
    e.adversary_probes = s.adversary_probes;
    e.adversary_probe_hits = s.adversary_probe_hits;
    if (params_.edge.flash_enabled()) {
      e.flash_enabled = true;
      e.flash_hits = s.flash_hits;
      e.flash_coalesced = s.flash_coalesced;
      e.flash_demotions = s.flash_demotions;
      e.flash_promotions = s.flash_promotions;
      e.flash_promotion_rejects = s.flash_promotion_rejects;
      e.flash_stores = s.flash_stores;
      e.flash_evictions = s.flash_evictions;
      e.flash_gc_rewrites = s.flash_gc_rewrites;
      e.flash_bytes_served = s.flash_bytes_served;
      e.flash_host_bytes = s.flash_host_bytes;
      e.flash_device_bytes = s.flash_device_bytes;
      e.aio_reads = s.aio.reads;
      e.aio_writes = s.aio.writes;
      e.aio_merged_reads = s.aio.merged_reads;
      e.aio_queue_waits = s.aio.queue_waits;
      e.aio_peak_inflight = s.aio.peak_inflight;
    }
  }
  if (params_.breakdown) {
    report.phases = treat_recorder_.breakdown();
    report.baseline_phases = base_recorder_.breakdown();
  }
  report.prof = obs::tls_prof().delta(prof_before);
  return report;
}

}  // namespace catalyst::fleet
