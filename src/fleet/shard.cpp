#include "fleet/shard.h"

#include <algorithm>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/replay.h"
#include "fleet/parked.h"
#include "obs/selfprof.h"
#include "util/pool.h"
#include "workload/sitegen.h"

namespace catalyst::fleet {

namespace {

/// One user's private testbed for one strategy arm: the per-user knob
/// binding shared by the legacy and streaming engines, so both replay
/// bit-identical visits.
core::Testbed make_user_testbed(const std::shared_ptr<server::Site>& site,
                                const UserProfile& profile,
                                core::StrategyKind kind,
                                core::StrategyOptions options,
                                netsim::FaultSpec faults,
                                edge::EdgePop* edge_pop,
                                Duration edge_origin_rtt,
                                obs::Recorder* recorder) {
  options.mobile_client = profile.mobile_client;
  // Bind this arm's shared PoP (if any) and phase recorder (if breakdown
  // is on) into the user's private testbed.
  options.edge_pop = edge_pop;
  options.phase_recorder = recorder;
  if (edge_pop != nullptr) options.edge_origin_rtt = edge_origin_rtt;
  netsim::NetworkConditions conditions = conditions_for(profile.tier);
  conditions.faults = faults;
  // Key the fault decision stream by user id (the fleet RNG discipline):
  // user i's faults are the same regardless of shard or thread count.
  conditions.faults.stream = profile.user_id;
  return core::make_testbed(site, conditions, kind, options);
}

/// Replays one user's visit timeline under one strategy in a fresh
/// testbed (cache and Service Worker state persist across the timeline,
/// exactly like run_visit_sequence).
std::vector<client::PageLoadResult> replay_timeline(
    const std::shared_ptr<server::Site>& site, const UserProfile& profile,
    core::StrategyKind kind, const core::StrategyOptions& options,
    const netsim::FaultSpec& faults, edge::EdgePop* edge_pop,
    Duration edge_origin_rtt, obs::Recorder* recorder) {
  core::Testbed tb = make_user_testbed(site, profile, kind, options, faults,
                                       edge_pop, edge_origin_rtt, recorder);
  std::vector<client::PageLoadResult> results;
  results.reserve(profile.visits.size());
  for (const TimePoint at : profile.visits) {
    results.push_back(core::run_visit(tb, at));
  }
  return results;
}

/// A live (materialized) streaming-engine user: its profile and one
/// testbed per strategy arm. Slot contents are reset by SlabPool release.
struct LiveUser {
  UserProfile profile;
  std::unique_ptr<core::Testbed> treat;
  std::unique_ptr<core::Testbed> base;
  /// Straggler events drained at park time (or carried from revive), owed
  /// to the next visit's loop_events so totals match the legacy engine.
  std::uint64_t carry_treat = 0;
  std::uint64_t carry_base = 0;
};

/// Per-user accumulation for the streaming engine: visits arrive in time
/// order interleaved across users, so per-visit tallies collect here and
/// fold into the FleetReport in ascending user-id order at shard end —
/// reproducing the legacy engine's accumulation order exactly.
struct UserAccum {
  std::uint64_t visits = 0;
  bool traced = false;
  std::string trace_jsonl;
  ByteCount bytes_on_wire = 0;
  ByteCount baseline_bytes_on_wire = 0;
  std::uint64_t rtts = 0;
  std::uint64_t baseline_rtts = 0;
  std::uint64_t events_executed = 0;
  FaultCounters faults;
  OracleCounters oracle;
  std::uint64_t negative_hits = 0;
  CacheCounters counters;
  std::uint64_t fetches = 0;
  std::uint64_t avoided = 0;
  /// Per-revisit samples in visit order (Summary adds are replayed from
  /// these at fold time, preserving the legacy sample sequence).
  std::vector<double> plt_ms;
  std::vector<double> reduction_pct;
  double reduction_sum = 0.0;
  std::size_t reduction_n = 0;
};

/// Tallies one visit (visit index `vi`) into the user's accumulator —
/// the per-visit body of the legacy replay_user loop.
void accumulate_visit(UserAccum& a, std::size_t vi,
                      const client::PageLoadResult& r,
                      const client::PageLoadResult* b, std::uint64_t user_id,
                      std::uint64_t trace_users) {
  a.visits += 1;
  if (user_id < trace_users) {
    a.traced = true;
    a.trace_jsonl +=
        check::trace_to_jsonl(r, user_id, static_cast<std::uint32_t>(vi));
  }
  a.bytes_on_wire += r.bytes_downloaded;
  a.rtts += r.rtts;
  a.events_executed += r.loop_events;
  if (b != nullptr) {
    a.baseline_bytes_on_wire += b->bytes_downloaded;
    a.baseline_rtts += b->rtts;
    a.events_executed += b->loop_events;
  }
  a.faults.timeouts += r.timeouts_fired;
  a.faults.retries += r.retries;
  a.faults.connection_failures += r.connection_failures;
  a.faults.fallback_revalidations += r.fallback_revalidations;
  a.faults.failed_loads += r.failed_loads;
  a.oracle.checked += r.oracle_checked;
  a.oracle.allowed_stale += r.oracle_allowed_stale;
  a.oracle.violations += r.oracle_violations;
  a.oracle.poisoned_serves += r.oracle_poisoned;
  a.oracle.cross_user_leaks += r.oracle_leaks;
  a.negative_hits += r.negative_hits;
  if (vi == 0) return;  // cold load: all-network by construction

  CacheCounters c;
  c.from_network = r.from_network;
  c.from_cache = r.from_cache;
  c.not_modified = r.not_modified;
  c.from_sw_cache = r.from_sw_cache;
  c.from_push = r.from_push;
  c.stale_served = r.stale_served;
  a.counters.merge(c);
  a.fetches += c.total();
  a.avoided += c.avoided_downloads();

  a.plt_ms.push_back(to_millis(r.plt()));
  if (b != nullptr) {
    const double base_ms = to_millis(b->plt());
    if (base_ms > 0.0) {
      const double reduction =
          100.0 * (base_ms - to_millis(r.plt())) / base_ms;
      a.reduction_pct.push_back(reduction);
      a.reduction_sum += reduction;
      ++a.reduction_n;
    }
  }
}

/// Folds one user's accumulator into the shard report. Called in
/// ascending user-id order, this replays the exact report mutations (and
/// Summary sample sequences) the legacy replay_user performs.
void fold_user(const UserAccum& a, std::uint64_t user_id,
               FleetReport& report) {
  report.users += 1;
  report.visits += a.visits;
  report.revisits += a.visits - 1;
  if (a.traced) report.traces.emplace(user_id, a.trace_jsonl);
  report.bytes_on_wire += a.bytes_on_wire;
  report.rtts += a.rtts;
  report.events_executed += a.events_executed;
  report.baseline_bytes_on_wire += a.baseline_bytes_on_wire;
  report.baseline_rtts += a.baseline_rtts;
  report.faults.merge(a.faults);
  report.oracle.merge(a.oracle);
  report.negative_hits += a.negative_hits;
  report.counters.merge(a.counters);
  for (const double v : a.plt_ms) report.plt_ms.add(v);
  for (const double v : a.reduction_pct) report.plt_reduction_pct.add(v);
  if (a.reduction_n > 0) {
    report.per_user_plt_reduction_pct.add(
        a.reduction_sum / static_cast<double>(a.reduction_n));
  }
  if (a.fetches > 0) {
    report.per_user_hit_rate_pct.add(100.0 *
                                     static_cast<double>(a.avoided) /
                                     static_cast<double>(a.fetches));
  }
}

}  // namespace

std::shared_ptr<server::Site> Shard::site_for(int site_index) {
  auto it = sites_.find(site_index);
  if (it != sites_.end()) return it->second;
  workload::SitegenParams sp;
  sp.seed = params_.user_model.sitegen_seed;
  sp.site_index = site_index;
  sp.clone_static_snapshot = params_.user_model.clone_static_snapshot;
  sp.errors.dead_link_fraction = params_.user_model.dead_link_fraction;
  sp.errors.gone_link_fraction = params_.user_model.gone_link_fraction;
  sp.errors.soft404_fraction = params_.user_model.soft404_fraction;
  auto site = workload::generate_site(sp);
  sites_.emplace(site_index, site);
  return site;
}

void Shard::replay_user(const UserProfile& profile, FleetReport& report) {
  obs::count(obs::Sub::kFleet);
  obs::ScopedTimer prof_timer(obs::Sub::kFleet);
  const auto site = site_for(profile.site_index);
  const auto treat = replay_timeline(
      site, profile, params_.strategy, params_.options, params_.faults,
      treat_pop_.get(), params_.edge.origin_rtt,
      params_.breakdown ? &treat_recorder_ : nullptr);
  const bool compare = params_.baseline != params_.strategy;
  std::vector<client::PageLoadResult> base;
  if (compare) {
    base = replay_timeline(site, profile, params_.baseline, params_.options,
                           params_.faults, base_pop_.get(),
                           params_.edge.origin_rtt,
                           params_.breakdown ? &base_recorder_ : nullptr);
  }

  report.users += 1;
  report.visits += treat.size();
  report.revisits += treat.size() - 1;

  if (profile.user_id < params_.trace_users) {
    std::string jsonl;
    for (std::size_t i = 0; i < treat.size(); ++i) {
      jsonl += check::trace_to_jsonl(treat[i], profile.user_id,
                                     static_cast<std::uint32_t>(i));
    }
    report.traces.emplace(profile.user_id, std::move(jsonl));
  }

  double user_reduction_sum = 0.0;
  std::size_t user_reduction_n = 0;
  std::uint64_t user_fetches = 0;
  std::uint64_t user_avoided = 0;

  for (std::size_t i = 0; i < treat.size(); ++i) {
    const client::PageLoadResult& r = treat[i];
    report.bytes_on_wire += r.bytes_downloaded;
    report.rtts += r.rtts;
    report.events_executed += r.loop_events;
    if (compare) {
      report.baseline_bytes_on_wire += base[i].bytes_downloaded;
      report.baseline_rtts += base[i].rtts;
      report.events_executed += base[i].loop_events;
    }
    // Fault tallies cover every treatment visit — cold loads get hit by
    // faults like any other.
    report.faults.timeouts += r.timeouts_fired;
    report.faults.retries += r.retries;
    report.faults.connection_failures += r.connection_failures;
    report.faults.fallback_revalidations += r.fallback_revalidations;
    report.faults.failed_loads += r.failed_loads;
    // Oracle tallies cover every treatment visit — a wrong byte on the
    // cold load would be just as wrong.
    report.oracle.checked += r.oracle_checked;
    report.oracle.allowed_stale += r.oracle_allowed_stale;
    report.oracle.violations += r.oracle_violations;
    report.oracle.poisoned_serves += r.oracle_poisoned;
    report.oracle.cross_user_leaks += r.oracle_leaks;
    report.negative_hits += r.negative_hits;
    if (i == 0) continue;  // cold load: all-network by construction

    CacheCounters c;
    c.from_network = r.from_network;
    c.from_cache = r.from_cache;
    c.not_modified = r.not_modified;
    c.from_sw_cache = r.from_sw_cache;
    c.from_push = r.from_push;
    c.stale_served = r.stale_served;
    report.counters.merge(c);
    user_fetches += c.total();
    user_avoided += c.avoided_downloads();

    report.plt_ms.add(to_millis(r.plt()));
    if (compare) {
      const double base_ms = to_millis(base[i].plt());
      if (base_ms > 0.0) {
        const double reduction =
            100.0 * (base_ms - to_millis(r.plt())) / base_ms;
        report.plt_reduction_pct.add(reduction);
        user_reduction_sum += reduction;
        ++user_reduction_n;
      }
    }
  }

  if (user_reduction_n > 0) {
    report.per_user_plt_reduction_pct.add(
        user_reduction_sum / static_cast<double>(user_reduction_n));
  }
  if (user_fetches > 0) {
    report.per_user_hit_rate_pct.add(100.0 *
                                     static_cast<double>(user_avoided) /
                                     static_cast<double>(user_fetches));
  }
}

FleetReport Shard::run_streaming() {
  FleetReport report;
  const obs::ProfCounters prof_before = obs::tls_prof();
  const bool compare = params_.baseline != params_.strategy;
  const std::uint64_t first = task_.first_user;
  const std::size_t n = static_cast<std::size_t>(task_.user_count);

  // Compact per-user state that stays resident for the whole shard:
  // accumulated tallies and the next-visit cursor. Everything heavy (the
  // testbeds) lives in the bounded arena below.
  std::vector<UserAccum> accums(n);
  std::vector<std::uint32_t> next_visit(n, 0);

  // Arrival queue: (visit time, user id), ties broken by user id so the
  // processing order is a pure function of the user model.
  using Arrival = std::pair<TimePoint, std::uint64_t>;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      arrivals;
  for (std::size_t i = 0; i < n; ++i) {
    const UserProfile p = make_user_profile(params_.user_model, first + i);
    if (!p.visits.empty()) arrivals.emplace(p.visits.front(), first + i);
  }

  // The live-user arena and its indexes: user id -> slot handle, plus an
  // ordered (next arrival, user id) index for O(log n) victim selection.
  SlabPool<LiveUser> arena;
  std::unordered_map<std::uint64_t, SlabPool<LiveUser>::Handle> live;
  std::set<Arrival> by_next_arrival;
  // Parked blobs: slab-stored, keyed by user id.
  SlabPool<std::string> blob_store;
  std::unordered_map<std::uint64_t, SlabPool<std::string>::Handle> parked;
  ByteCount parked_bytes = 0;

  // Parks the live user whose next visit is farthest away (lazy victim:
  // nobody needs it sooner than anyone else). Drains its event loops
  // first so the blob snapshots quiescent state; the drained event counts
  // ride along and are owed to the user's next visit.
  const auto park_victim = [&] {
    const auto victim = std::prev(by_next_arrival.end());
    const std::uint64_t vuid = victim->second;
    const SlabPool<LiveUser>::Handle h = live.find(vuid)->second;
    LiveUser* v = arena.get(h);
    const std::uint64_t treat_stragglers =
        v->carry_treat + v->treat->loop->run();
    const std::uint64_t base_stragglers =
        v->carry_base + (v->base ? v->base->loop->run() : 0);
    std::string blob = park_user(vuid, *v->treat, treat_stragglers,
                                 v->base.get(), base_stragglers);
    parked_bytes += blob.size();
    report.parking.parked_bytes_peak =
        std::max<std::uint64_t>(report.parking.parked_bytes_peak,
                                parked_bytes);
    const SlabPool<std::string>::Handle bh = blob_store.acquire();
    *blob_store.get(bh) = std::move(blob);
    parked.emplace(vuid, bh);
    ++report.parking.parks;
    by_next_arrival.erase(victim);
    live.erase(vuid);
    arena.release(h);
  };

  while (!arrivals.empty()) {
    const auto [at, uid] = arrivals.top();
    arrivals.pop();
    obs::ScopedTimer prof_timer(obs::Sub::kFleet);

    SlabPool<LiveUser>::Handle handle;
    LiveUser* lu;
    const auto lit = live.find(uid);
    if (lit != live.end()) {
      handle = lit->second;
      lu = arena.get(handle);
    } else {
      while (arena.live() >= params_.max_live_users) park_victim();
      handle = arena.acquire();
      lu = arena.get(handle);
      lu->profile = make_user_profile(params_.user_model, uid);
      const auto site = site_for(lu->profile.site_index);
      lu->treat = std::make_unique<core::Testbed>(make_user_testbed(
          site, lu->profile, params_.strategy, params_.options,
          params_.faults, nullptr, params_.edge.origin_rtt,
          params_.breakdown ? &treat_recorder_ : nullptr));
      if (compare) {
        lu->base = std::make_unique<core::Testbed>(make_user_testbed(
            site, lu->profile, params_.baseline, params_.options,
            params_.faults, nullptr, params_.edge.origin_rtt,
            params_.breakdown ? &base_recorder_ : nullptr));
      }
      const auto pit = parked.find(uid);
      if (pit != parked.end()) {
        ++report.parking.revives;
        std::string* blob = blob_store.get(pit->second);
        const ReviveResult revived =
            revive_user(*blob, uid, *lu->treat, lu->base.get());
        if (revived.status == ReviveStatus::Ok) {
          lu->carry_treat = revived.treat_stragglers;
          lu->carry_base = revived.base_stragglers;
        } else {
          // Fail closed: the blob was rejected wholesale, the freshly
          // built testbeds stand untouched — a cold restart, never a
          // partially restored user.
          ++report.parking.corrupt_revivals;
        }
        parked_bytes -= blob->size();
        blob_store.release(pit->second);
        parked.erase(pit);
      } else {
        obs::count(obs::Sub::kFleet);  // first materialization == one user
      }
      live.emplace(uid, handle);
      by_next_arrival.insert({at, uid});
      report.parking.live_users_peak = std::max<std::uint64_t>(
          report.parking.live_users_peak, arena.live());
    }

    const std::size_t idx = static_cast<std::size_t>(uid - first);
    const std::uint32_t vi = next_visit[idx];
    client::PageLoadResult r = core::run_visit(*lu->treat, at);
    r.loop_events += lu->carry_treat;
    lu->carry_treat = 0;
    std::optional<client::PageLoadResult> b;
    if (lu->base) {
      b = core::run_visit(*lu->base, at);
      b->loop_events += lu->carry_base;
      lu->carry_base = 0;
    }
    accumulate_visit(accums[idx], vi, r, b ? &*b : nullptr, uid,
                     params_.trace_users);

    next_visit[idx] = vi + 1;
    by_next_arrival.erase({at, uid});
    if (vi + 1 < lu->profile.visits.size()) {
      const TimePoint next_at = lu->profile.visits[vi + 1];
      arrivals.emplace(next_at, uid);
      by_next_arrival.insert({next_at, uid});
    } else {
      // Timeline complete: destroy without parking. Undrained events left
      // after the final visit are dropped with the testbed, exactly as
      // the legacy engine drops them at the end of replay_timeline.
      live.erase(uid);
      arena.release(handle);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    fold_user(accums[i], first + i, report);
  }
  if (params_.breakdown) {
    report.phases = treat_recorder_.breakdown();
    report.baseline_phases = base_recorder_.breakdown();
  }
  report.prof = obs::tls_prof().delta(prof_before);
  return report;
}

FleetReport Shard::run() {
  // Streaming requires every piece of cross-visit state to live in the
  // parked client snapshot; incompatible configurations (edge PoPs, the
  // adversary, server-learned strategies) fall back to the legacy engine
  // rather than silently diverging — same reports, just without the
  // memory bound.
  if (params_.max_live_users > 0 && task_.pop < 0 &&
      params_.streaming_compatible()) {
    return run_streaming();
  }
  FleetReport report;
  // Snapshot this thread's self-profile counters so the report carries
  // exactly what this shard's replay cost (threads are reused across
  // shards, so the raw thread-local totals would double-count).
  const obs::ProfCounters prof_before = obs::tls_prof();
  if (params_.edge.enabled() && task_.pop >= 0) {
    edge::EdgeConfig ec;
    ec.pop_id = task_.pop;
    ec.capacity = params_.edge.capacity;
    ec.tinylfu_admission = params_.edge.admission;
    ec.negative = params_.edge.negative;
    ec.vulnerable_keying = params_.edge.vulnerable_keying;
    if (params_.edge.flash_enabled()) {
      ec.flash.capacity = params_.edge.flash_capacity;
      ec.flash.device.read_latency = params_.edge.flash_read_latency;
      ec.flash.device.queue_depth = params_.edge.flash_queue_depth;
      // Jitter keyed off the fleet's master seed (forked per PoP inside
      // EdgePop) so runs with different seeds draw different streams.
      ec.flash.seed = params_.user_model.master_seed;
    }
    treat_pop_ = std::make_unique<edge::EdgePop>(ec);
    base_pop_ = std::make_unique<edge::EdgePop>(ec);
  }
  for (std::uint64_t i = 0; i < task_.user_count; ++i) {
    const std::uint64_t user_id = task_.first_user + i;
    // Edge mode: the task spans the whole fleet; run only this PoP's
    // users (ascending id, so sample order stays canonical).
    if (task_.pop >= 0 &&
        edge_pop_of(params_.user_model.master_seed, user_id,
                    params_.edge.pops) != task_.pop) {
      continue;
    }
    replay_user(make_user_profile(params_.user_model, user_id), report);
  }
  if (treat_pop_) {
    const edge::EdgePopStats s = treat_pop_->stats();
    EdgePopReport& e = report.edge_pops[task_.pop];
    e.requests = s.requests;
    e.hits = s.hits;
    e.revalidated_hits = s.revalidated_hits;
    e.misses = s.misses;
    e.coalesced = s.coalesced;
    e.origin_fetches = s.origin_fetches;
    e.origin_not_modified = s.origin_not_modified;
    e.origin_errors = s.origin_errors;
    e.admission_rejects = s.admission_rejects;
    e.stores = s.stores;
    e.evictions = s.evictions;
    e.bytes_served = s.bytes_served;
    e.bytes_from_origin = s.bytes_from_origin;
    e.negative_stores = s.negative_stores;
    e.negative_hits = s.negative_hits;
    e.adversary_requests = s.adversary_requests;
    e.adversary_probes = s.adversary_probes;
    e.adversary_probe_hits = s.adversary_probe_hits;
    if (params_.edge.flash_enabled()) {
      e.flash_enabled = true;
      e.flash_hits = s.flash_hits;
      e.flash_coalesced = s.flash_coalesced;
      e.flash_demotions = s.flash_demotions;
      e.flash_promotions = s.flash_promotions;
      e.flash_promotion_rejects = s.flash_promotion_rejects;
      e.flash_stores = s.flash_stores;
      e.flash_evictions = s.flash_evictions;
      e.flash_gc_rewrites = s.flash_gc_rewrites;
      e.flash_bytes_served = s.flash_bytes_served;
      e.flash_host_bytes = s.flash_host_bytes;
      e.flash_device_bytes = s.flash_device_bytes;
      e.aio_reads = s.aio.reads;
      e.aio_writes = s.aio.writes;
      e.aio_merged_reads = s.aio.merged_reads;
      e.aio_queue_waits = s.aio.queue_waits;
      e.aio_peak_inflight = s.aio.peak_inflight;
    }
  }
  if (params_.breakdown) {
    report.phases = treat_recorder_.breakdown();
    report.baseline_phases = base_recorder_.breakdown();
  }
  report.prof = obs::tls_prof().delta(prof_before);
  return report;
}

}  // namespace catalyst::fleet
