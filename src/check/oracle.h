// Byte-equivalence oracle: the correctness ground truth for every cache
// layer in the stack.
//
// The paper's claim is that CacheCatalyst serves the *same bytes* plain
// revalidation would have fetched, while skipping the round trips. With
// four interacting cache layers (HttpCache, SwCache, EdgePop, origin) a
// staleness bug would silently inflate the PLT win, so the oracle audits
// every resource a page load consumes against the origin's authoritative
// content at fetch time and classifies the serve:
//
//   fresh          delivered bytes match the origin's content at fetch time
//   allowed-stale  bytes differ, but the response is within its RFC 9111
//                  freshness lifetime — the staleness status-quo caching
//                  explicitly permits (and the paper's motivation measures)
//   violation      bytes differ with no freshness justification. Catalyst
//                  SW serves are held to the stricter byte-equivalence bar:
//                  the X-Etag-Config map vouches for currency, so a
//                  mismatching SW serve is a violation even within TTL.
//
// The oracle is measurement-only: it never changes what any cache does.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/metrics.h"
#include "netsim/trace.h"
#include "server/site.h"
#include "util/types.h"
#include "util/url.h"

namespace catalyst::check {

/// Ground truth provider for one origin: the authoritative body for a
/// path at virtual time t, or nullptr when the path is unknown (the serve
/// is then unauditable, not wrong — e.g. synthesized error bodies).
using GroundTruth =
    std::function<const std::string*(const std::string& path, TimePoint t)>;

/// In-place body transform the origin applies before serving (e.g. the
/// Catalyst server's SW-registration snippet injection into HTML). The
/// oracle applies the same transform to ground-truth content so legitimate
/// origin rewrites are not misread as corruption.
using BodyTransform = std::function<void(std::string& body)>;

/// One confirmed violation, with enough context to reproduce.
struct Violation {
  std::string url;
  netsim::FetchSource source = netsim::FetchSource::Network;
  TimePoint start{};
  TimePoint finish{};
  std::uint64_t served_digest = 0;
  std::uint64_t expected_digest = 0;
  /// Violation, PoisonedServe, or CrossUserLeak.
  netsim::ServeClass kind = netsim::ServeClass::Violation;
};

struct OracleStats {
  std::uint64_t checked = 0;        // fresh + allowed_stale + violations
  std::uint64_t fresh = 0;
  std::uint64_t allowed_stale = 0;
  std::uint64_t violations = 0;     // includes poisoned/leak subclasses
  std::uint64_t unauditable = 0;    // unknown origin/path or non-200
  std::uint64_t poisoned_serves = 0;  // of violations: reflected unkeyed input
  std::uint64_t cross_user_leaks = 0; // of violations: another user's input
};

class ByteOracle {
 public:
  /// Registers a ground-truth provider for `host`.
  void add_origin(std::string host, GroundTruth truth);

  /// Convenience: audit `site` under its own host name. `html_transform`
  /// (optional) is applied to every Html-class resource's ground truth,
  /// memoized per content version.
  void add_site(std::shared_ptr<server::Site> site,
                BodyTransform html_transform = {});

  /// Audits `host` against `site`'s content — the edge-PoP case, where
  /// main-origin traffic is addressed to the PoP's host.
  void add_alias(std::string host, std::shared_ptr<server::Site> site,
                 BodyTransform html_transform = {});

  /// Classifies one delivered serve. Called by the browser's serve
  /// classifier hook for every resource a page load records.
  netsim::ServeClass classify(const Url& url,
                              const client::FetchOutcome& outcome);

  const OracleStats& stats() const { return stats_; }

  /// First violations seen (capped; stats_.violations is the full count).
  const std::vector<Violation>& violations() const { return violations_; }

  void clear();

 private:
  static constexpr std::size_t kMaxRecordedViolations = 64;

  std::map<std::string, GroundTruth> origins_;
  OracleStats stats_;
  std::vector<Violation> violations_;
};

}  // namespace catalyst::check
