// Deterministic record/replay trace format.
//
// A page load's event-level trace (request/response/cache-decision tuples
// with virtual timestamps) serializes to compact JSON lines. Because the
// whole simulation is a pure function of (master_seed, user_id), replaying
// the same configuration must reproduce the trace bit-identically — the
// serialized form is the regression anchor (tests/golden/), and any diff
// pinpoints the first divergent event.
//
// Line format (one JSON object per line, keys in fixed order):
//   {"u":<user>,"v":<visit>,"page":...,"plt_ns":...,...}   page summary
//   {"u":<user>,"v":<visit>,"i":<n>,"url":...,...}         one fetch each
// 64-bit values (timestamps, digests) are emitted as decimal/hex *strings*
// where double precision would corrupt them.
#pragma once

#include <cstdint>
#include <string>

#include "client/metrics.h"

namespace catalyst::check {

/// Serializes one page load (summary line + one line per recorded fetch).
/// Every line ends with '\n'. `user` and `visit` label the load so traces
/// from many loads concatenate into one replayable stream.
std::string trace_to_jsonl(const client::PageLoadResult& result,
                           std::uint64_t user, std::uint32_t visit);

/// First difference between two JSONL traces: empty string when they are
/// bit-identical, otherwise a human-readable "line N" report quoting both
/// sides (or the side that ran out of lines).
std::string diff_traces(const std::string& recorded,
                        const std::string& replayed);

}  // namespace catalyst::check
