#include "check/oracle.h"

#include <algorithm>

#include "cache/freshness.h"
#include "http/date.h"
#include "http/headers.h"
#include "util/hash.h"
#include "util/strings.h"

namespace catalyst::check {
namespace {

/// The origin's unkeyed-input reflection marker (server::Server appends
/// "\n<!--reflect:<value>-->" when configured to reflect X-Forwarded-Host).
constexpr std::string_view kReflectPrefix = "<!--reflect:";

/// Would RFC 9111 have allowed serving this response without revalidation
/// at `now`? Computed from the delivered response's own headers: apparent
/// age (now − Date, floored at zero, plus any Age header) against the
/// freshness lifetime. Responses revalidated via 304 carry a refreshed
/// Date (http_cache::apply_not_modified / edge 304 forwarding), so the
/// apparent age reflects the entry's true validation recency across hops.
bool within_freshness(const http::Response& response, TimePoint now) {
  const Duration lifetime = cache::freshness_lifetime(response,
                                                      /*allow_heuristic=*/true);
  if (lifetime <= Duration::zero()) return false;
  Duration apparent_age = Duration::zero();
  if (const auto date_field = response.headers.get(http::kDate)) {
    if (const auto date = http::parse_http_date(*date_field)) {
      apparent_age = std::max(Duration::zero(), now - *date);
    }
  }
  if (const auto age_field = response.headers.get(http::kAge)) {
    std::uint64_t age_seconds = 0;
    if (parse_u64(*age_field, age_seconds)) {
      apparent_age = std::max(
          apparent_age, seconds(static_cast<std::int64_t>(age_seconds)));
    }
  }
  return lifetime > apparent_age;
}

}  // namespace

void ByteOracle::add_origin(std::string host, GroundTruth truth) {
  origins_[std::move(host)] = std::move(truth);
}

void ByteOracle::add_site(std::shared_ptr<server::Site> site,
                          BodyTransform html_transform) {
  std::string host = site->host();
  add_alias(std::move(host), std::move(site), std::move(html_transform));
}

void ByteOracle::add_alias(std::string host,
                           std::shared_ptr<server::Site> site,
                           BodyTransform html_transform) {
  // Transformed HTML is memoized per (path, version) so repeat audits of
  // the same content cost a map lookup, mirroring Resource's own memo.
  auto memo = std::make_shared<
      std::map<std::pair<std::string, std::uint64_t>, std::string>>();
  origins_[std::move(host)] =
      [site = std::move(site), html_transform = std::move(html_transform),
       memo](const std::string& path, TimePoint t) -> const std::string* {
    const server::Resource* r = site->find(path);
    if (r == nullptr) return nullptr;
    if (!html_transform ||
        r->resource_class() != http::ResourceClass::Html) {
      return &r->content_at(t);
    }
    const std::uint64_t version = r->version_at(t);
    auto [it, inserted] = memo->try_emplace({path, version});
    if (inserted) {
      it->second = r->content_at(t);
      html_transform(it->second);
    }
    return &it->second;
  };
}

netsim::ServeClass ByteOracle::classify(const Url& url,
                                        const client::FetchOutcome& outcome) {
  // Only successful serves carry content to audit; error bodies (404/5xx,
  // synthesized 504s) have no origin ground truth.
  if (outcome.response.status != http::Status::Ok) {
    ++stats_.unauditable;
    return netsim::ServeClass::Unchecked;
  }
  const auto it = origins_.find(url.host);
  if (it == origins_.end()) {
    ++stats_.unauditable;
    return netsim::ServeClass::Unchecked;
  }
  const std::string* truth = it->second(url.path, outcome.finish);
  if (truth == nullptr) {
    ++stats_.unauditable;
    return netsim::ServeClass::Unchecked;
  }

  ++stats_.checked;
  const std::uint64_t served = outcome.response.body_digest();
  if (served == fnv1a64(*truth)) {
    ++stats_.fresh;
    return netsim::ServeClass::Fresh;
  }
  // The content changed mid-flight cases: a fetch started before a version
  // flip can legitimately deliver the version current at its start time.
  if (const std::string* at_start = it->second(url.path, outcome.start)) {
    if (served == fnv1a64(*at_start)) {
      ++stats_.fresh;
      return netsim::ServeClass::Fresh;
    }
  }

  // Unkeyed-input reflection check, ahead of the freshness excuse: a
  // poisoned cache entry is typically *fresh* by its own headers, which
  // is exactly what makes poisoning worse than staleness. Legitimate
  // clients never send X-Forwarded-Host, so any reflection marker in a
  // classified body came from some other request's input. Markers whose
  // payload self-identifies as another user ("uid:...") are the
  // confidentiality flavor; everything else is integrity poisoning.
  const auto marker = outcome.response.body.find(kReflectPrefix);
  if (marker != std::string::npos) {
    const std::size_t value_begin = marker + kReflectPrefix.size();
    const std::size_t value_end =
        outcome.response.body.find("-->", value_begin);
    std::string_view value;
    if (value_end != std::string::npos) {
      value = std::string_view(outcome.response.body)
                  .substr(value_begin, value_end - value_begin);
    }
    const bool leak = value.substr(0, 4) == "uid:";
    ++stats_.violations;
    if (leak) {
      ++stats_.cross_user_leaks;
    } else {
      ++stats_.poisoned_serves;
    }
    const netsim::ServeClass kind = leak
                                        ? netsim::ServeClass::CrossUserLeak
                                        : netsim::ServeClass::PoisonedServe;
    if (violations_.size() < kMaxRecordedViolations) {
      Violation v;
      v.url = url.to_string();
      v.source = outcome.source;
      v.start = outcome.start;
      v.finish = outcome.finish;
      v.served_digest = served;
      v.expected_digest = fnv1a64(*truth);
      v.kind = kind;
      violations_.push_back(std::move(v));
    }
    return kind;
  }

  // Stale bytes. Catalyst SW serves claim byte-currency (the X-Etag-Config
  // map vouched for these exact bytes), so freshness is no excuse there.
  const bool excusable =
      outcome.source != netsim::FetchSource::SwCache &&
      within_freshness(outcome.response, outcome.finish);
  if (excusable) {
    ++stats_.allowed_stale;
    return netsim::ServeClass::AllowedStale;
  }

  ++stats_.violations;
  if (violations_.size() < kMaxRecordedViolations) {
    Violation v;
    v.url = url.to_string();
    v.source = outcome.source;
    v.start = outcome.start;
    v.finish = outcome.finish;
    v.served_digest = served;
    v.expected_digest = fnv1a64(*truth);
    violations_.push_back(std::move(v));
  }
  return netsim::ServeClass::Violation;
}

void ByteOracle::clear() {
  stats_ = OracleStats{};
  violations_.clear();
}

}  // namespace catalyst::check
