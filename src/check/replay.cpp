#include "check/replay.h"

#include <algorithm>
#include <cinttypes>
#include <string_view>
#include <vector>

#include "http/mime.h"
#include "util/json.h"
#include "util/strings.h"

namespace catalyst::check {
namespace {

std::int64_t ns(TimePoint t) { return t.since_epoch().count(); }

}  // namespace

std::string trace_to_jsonl(const client::PageLoadResult& result,
                           std::uint64_t user, std::uint32_t visit) {
  // Hand-rendered lines: util::Json stores numbers as doubles, which would
  // corrupt 64-bit timestamps and digests; strings stay exact.
  std::string out = str_format(
      "{\"u\":%" PRIu64 ",\"v\":%" PRIu32
      ",\"page\":%s,\"start_ns\":%" PRId64 ",\"plt_ns\":%" PRId64
      ",\"fcp_ns\":%" PRId64 ",\"tti_ns\":%" PRId64
      ",\"resources\":%" PRIu32 ",\"net\":%" PRIu32 ",\"cache\":%" PRIu32
      ",\"304\":%" PRIu32 ",\"sw\":%" PRIu32 ",\"push\":%" PRIu32
      ",\"bytes\":%" PRIu64 ",\"rtts\":%" PRIu32
      ",\"checked\":%" PRIu32 ",\"stale_ok\":%" PRIu32
      ",\"violations\":%" PRIu32 "}\n",
      user, visit, json_escape(result.trace.traces().empty()
                                   ? std::string()
                                   : result.trace.traces().front().url)
                       .c_str(),
      ns(result.start), result.plt().count(), result.fcp().count(),
      result.tti().count(), result.resources_total, result.from_network,
      result.from_cache, result.not_modified, result.from_sw_cache,
      result.from_push, static_cast<std::uint64_t>(result.bytes_downloaded),
      result.rtts, result.oracle_checked, result.oracle_allowed_stale,
      result.oracle_violations);

  std::uint32_t index = 0;
  for (const netsim::FetchTrace& t : result.trace.traces()) {
    out += str_format(
        "{\"u\":%" PRIu64 ",\"v\":%" PRIu32 ",\"i\":%" PRIu32
        ",\"url\":%s,\"rc\":\"%s\",\"t0\":%" PRId64 ",\"t1\":%" PRId64
        ",\"src\":\"%s\",\"bytes\":%" PRIu64 ",\"status\":%" PRIu32
        ",\"digest\":\"%016" PRIx64 "\",\"oracle\":\"%s\"}\n",
        user, visit, index++, json_escape(t.url).c_str(),
        std::string(http::class_label(t.resource_class)).c_str(),
        ns(t.start), ns(t.finish),
        std::string(netsim::to_string(t.source)).c_str(),
        static_cast<std::uint64_t>(t.bytes_down), t.status, t.body_digest,
        std::string(netsim::to_string(t.oracle_class)).c_str());
  }
  return out;
}

std::string diff_traces(const std::string& recorded,
                        const std::string& replayed) {
  if (recorded == replayed) return {};
  const std::vector<std::string_view> a = split(recorded, '\n');
  const std::vector<std::string_view> b = split(replayed, '\n');
  const std::size_t n = std::max(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view la = i < a.size() ? a[i] : "<missing>";
    const std::string_view lb = i < b.size() ? b[i] : "<missing>";
    if (la != lb) {
      return str_format("first divergence at line %zu:\n  recorded: %s\n  replayed: %s\n",
                        i + 1, std::string(la).c_str(),
                        std::string(lb).c_str());
    }
  }
  return "traces differ only in trailing whitespace\n";
}

}  // namespace catalyst::check
