#include "server/static_handler.h"

#include "http/date.h"

namespace catalyst::server {

namespace {

/// Strips the query string: the virtual filesystem is keyed by path.
std::string path_of(const std::string& target) {
  const auto q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

}  // namespace

http::Response StaticHandler::handle(const http::Request& request,
                                     TimePoint now) {
  ++stats_.requests;
  const std::string path = path_of(request.target);
  if (site_.is_gone(path)) {
    ++stats_.gone;
    http::Response resp = http::Response::make(http::Status::Gone);
    resp.body = "gone";
    if (error_cache_control_) {
      resp.headers.set(http::kCacheControl,
                       error_cache_control_->to_string());
    }
    resp.finalize(now);
    return resp;
  }
  const Resource* resource = site_.find(path);
  if (resource == nullptr) {
    ++stats_.not_found;
    http::Response resp = http::Response::make(http::Status::NotFound);
    resp.body = "not found";
    if (error_cache_control_) {
      resp.headers.set(http::kCacheControl,
                       error_cache_control_->to_string());
    }
    resp.finalize(now);
    return resp;
  }

  const http::Etag& etag = resource->etag_at(now);
  const TimePoint last_modified = resource->last_modified_at(now);

  // Cache-related headers every response variant carries.
  http::Headers cache_headers;
  const std::string cc = resource->cache_policy().to_string();
  if (!cc.empty()) cache_headers.set(http::kCacheControl, cc);
  cache_headers.set(http::kLastModified,
                    http::format_http_date(last_modified));

  const http::ConditionalOutcome outcome = http::evaluate_conditional(
      request, etag, last_modified);
  if (outcome == http::ConditionalOutcome::NotModified) {
    ++stats_.not_modified;
    http::Response resp = http::make_not_modified(etag, cache_headers);
    resp.finalize(now);
    // 304 carries no body; Content-Length: 0 is implied.
    resp.headers.remove(http::kContentLength);
    return resp;
  }

  ++stats_.full_responses;
  http::Response resp = http::Response::make(http::Status::Ok);
  resp.body = resource->content_at(now);
  resp.prime_body_digest(resource->content_digest_at(now));
  // Opaque classes declare a larger wire size than the stand-in content.
  if (resource->wire_size() > resp.body.size()) {
    resp.declared_body_size = resource->wire_size();
  }
  resp.headers.set(http::kContentType,
                   http::mime_type(resource->resource_class()));
  resp.headers.set(http::kEtagHeader, etag.to_string());
  for (const auto& field : cache_headers.fields()) {
    resp.headers.set(field.name, field.value);
  }
  resp.finalize(now);
  stats_.body_bytes_sent += resp.body_wire_size();
  return resp;
}

}  // namespace catalyst::server
