// Content-change processes for origin resources.
//
// The paper's motivation is statistical: many resources change rarely (so
// re-validation almost always answers 304), yet TTLs are set far shorter
// than real change intervals. Each resource gets a deterministic,
// pre-materialized change timeline; the resource's version (and therefore
// its content and ETag) at any simulated instant follows from it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace catalyst::server {

class ChangeProcess {
 public:
  /// Content never changes (version 0 forever).
  static ChangeProcess never();

  /// Memoryless changes with the given mean interval, materialized over
  /// [0, horizon). Deterministic for a given rng state.
  static ChangeProcess poisson(Duration mean_interval, Duration horizon,
                               Rng& rng);

  /// Fixed-period changes starting at `phase`.
  static ChangeProcess periodic(Duration period, Duration phase,
                                Duration horizon);

  /// Number of changes in [0, t] — the content version at time t.
  std::uint64_t version_at(TimePoint t) const;

  /// Time of the last change at or before t (TimePoint{} if none).
  TimePoint last_change_at(TimePoint t) const;

  /// Next change strictly after t; TimePoint::max() if none.
  TimePoint next_change_after(TimePoint t) const;

  bool changes_in(TimePoint begin, TimePoint end) const {
    return version_at(end) != version_at(begin);
  }

  std::size_t total_changes() const { return change_times_.size(); }

 private:
  explicit ChangeProcess(std::vector<TimePoint> change_times)
      : change_times_(std::move(change_times)) {}

  std::vector<TimePoint> change_times_;  // sorted, strictly increasing
};

}  // namespace catalyst::server
