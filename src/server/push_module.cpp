#include "server/push_module.h"

#include <algorithm>

#include "util/bloom.h"

namespace catalyst::server {

std::string_view to_string(PushPolicy policy) {
  switch (policy) {
    case PushPolicy::None:
      return "none";
    case PushPolicy::All:
      return "push-all";
    case PushPolicy::Learned:
      return "push-learned";
    case PushPolicy::Digest:
      return "push-digest";
  }
  return "?";
}

PushModule::PushModule(const Site& site, PushPolicy policy)
    : site_(site), policy_(policy) {}

std::vector<netsim::PushedResponse> PushModule::build_pushes(
    const http::Request& request, const Resource& html, TimePoint now,
    CatalystModule& linker, const std::vector<std::string>& learned_urls,
    StaticHandler& handler) {
  std::vector<std::string> paths;
  switch (policy_) {
    case PushPolicy::None:
      return {};
    case PushPolicy::All:
      paths = linker.linked_paths(html, now);
      break;
    case PushPolicy::Learned: {
      for (const std::string& url : learned_urls) {
        std::string path =
            resolve_same_origin(site_.host(), html.path(), url);
        if (!path.empty() &&
            std::find(paths.begin(), paths.end(), path) == paths.end()) {
          paths.push_back(std::move(path));
        }
      }
      break;
    }
    case PushPolicy::Digest: {
      // Push the static closure minus whatever the client's digest says
      // it already holds (presence, not freshness — digests cannot say
      // whether the copy is current, the weakness catalyst fixes).
      std::optional<BloomFilter> digest;
      if (const auto header = request.headers.get("Cache-Digest")) {
        digest = BloomFilter::deserialize(*header);
      }
      for (std::string& path : linker.linked_paths(html, now)) {
        if (digest && digest->may_contain(path)) continue;
        paths.push_back(std::move(path));
      }
      break;
    }
  }

  std::vector<netsim::PushedResponse> pushes;
  pushes.reserve(paths.size());
  for (const std::string& path : paths) {
    if (site_.find(path) == nullptr) continue;
    http::Request synthetic = http::Request::get(path, site_.host());
    http::Response response = handler.handle(synthetic, now);
    if (response.status != http::Status::Ok) continue;
    bytes_pushed_ += response.wire_size();
    pushes.push_back(netsim::PushedResponse{path, std::move(response)});
  }
  return pushes;
}

}  // namespace catalyst::server
