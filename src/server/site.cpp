#include "server/site.h"

#include <algorithm>
#include <stdexcept>

namespace catalyst::server {

Resource& Site::add_resource(std::unique_ptr<Resource> resource) {
  const std::string& path = resource->path();
  const InternId id = tls_intern().intern(path);
  if (index_.contains(id)) {
    throw std::invalid_argument("Site: duplicate resource " + path);
  }
  // Appending may break path order; resources() restores it lazily. The
  // returned reference is heap-stable across both growth and sorting.
  if (!entries_.empty() && path < entries_.back().path) sorted_ = false;
  index_.insert_or_assign(id, static_cast<std::uint32_t>(entries_.size()));
  entries_.push_back(Entry{path, std::move(resource)});
  return *entries_.back().resource;
}

void Site::ensure_sorted() const {
  if (sorted_) return;
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.path < b.path; });
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    index_.insert_or_assign(tls_intern().intern(entries_[i].path), i);
  }
  sorted_ = true;
}

const Resource* Site::find(const std::string& path) const {
  const InternId id = tls_intern().find(path);
  if (id == kNoIntern) return nullptr;
  const std::uint32_t* pos = index_.find(id);
  return pos == nullptr ? nullptr : entries_[*pos].resource.get();
}

Resource* Site::find(const std::string& path) {
  const InternId id = tls_intern().find(path);
  if (id == kNoIntern) return nullptr;
  const std::uint32_t* pos = index_.find(id);
  return pos == nullptr ? nullptr : entries_[*pos].resource.get();
}

ByteCount Site::total_bytes() const {
  ByteCount total = 0;
  for (const Entry& entry : entries_) {
    total += entry.resource->wire_size();
  }
  return total;
}

}  // namespace catalyst::server
