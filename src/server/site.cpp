#include "server/site.h"

#include <stdexcept>

namespace catalyst::server {

Resource& Site::add_resource(std::unique_ptr<Resource> resource) {
  const std::string path = resource->path();
  auto [it, inserted] = resources_.emplace(path, std::move(resource));
  if (!inserted) {
    throw std::invalid_argument("Site: duplicate resource " + path);
  }
  return *it->second;
}

const Resource* Site::find(const std::string& path) const {
  const auto it = resources_.find(path);
  return it == resources_.end() ? nullptr : it->second.get();
}

Resource* Site::find(const std::string& path) {
  const auto it = resources_.find(path);
  return it == resources_.end() ? nullptr : it->second.get();
}

ByteCount Site::total_bytes() const {
  ByteCount total = 0;
  for (const auto& [path, resource] : resources_) {
    total += resource->wire_size();
  }
  return total;
}

}  // namespace catalyst::server
