// Cache-header assignment models — how developers/CMSs set TTLs.
//
// The paper's motivation cites measured misconfiguration: ~50% of cacheable
// resources are not effectively cached; 47% of resources expire unchanged
// [Marauder]; 40% of resources get TTL < 1 day of which 86% do not change
// within it [Liu et al.]. `ConservativeCms` is calibrated to land near
// those numbers (verified by bench/motivation_ttl_waste); the other
// profiles are ablation points.
#pragma once

#include <string_view>

#include "http/cache_control.h"
#include "http/mime.h"
#include "util/rng.h"
#include "util/types.h"

namespace catalyst::server {

enum class TtlProfile {
  /// Default CMS behaviour: a mix of no-store, no-cache and conservative
  /// short TTLs mostly uncorrelated with real change rates.
  ConservativeCms,
  /// A diligent developer: TTLs roughly track true change intervals
  /// (still imperfect — change times cannot actually be predicted).
  DeveloperTuned,
  /// Everything revalidates every time (no-cache) — worst case for RTTs.
  AlwaysRevalidate,
  /// Nothing is cacheable at all (no-store) — worst case overall.
  NeverCache,
};

std::string_view to_string(TtlProfile profile);

/// Draws a Cache-Control policy for one resource. `mean_change_interval`
/// is the resource's true mean time between content changes (zero =
/// effectively immutable), which only DeveloperTuned gets to peek at.
http::CacheControl assign_cache_policy(TtlProfile profile,
                                       http::ResourceClass resource_class,
                                       Duration mean_change_interval,
                                       Rng& rng);

}  // namespace catalyst::server
