#include "server/session.h"

#include "util/strings.h"

namespace catalyst::server {

void SessionStore::record_fetch(const std::string& session,
                                const std::string& page_path,
                                const std::string& url) {
  sessions_[session][page_path].observing.insert(url);
}

std::vector<std::string> SessionStore::learned_urls(
    const std::string& session, const std::string& page_path) const {
  const auto session_it = sessions_.find(session);
  if (session_it == sessions_.end()) return {};
  const auto page_it = session_it->second.find(page_path);
  if (page_it == session_it->second.end()) return {};
  const PageLog& log = page_it->second;
  return {log.committed.begin(), log.committed.end()};
}

void SessionStore::begin_visit(const std::string& session,
                               const std::string& page_path) {
  PageLog& log = sessions_[session][page_path];
  if (!log.observing.empty()) {
    log.committed = std::move(log.observing);
    log.observing.clear();
  }
}

ByteCount SessionStore::memory_footprint() const {
  ByteCount total = 0;
  for (const auto& [session, pages] : sessions_) {
    total += session.size() + 48;
    for (const auto& [page, log] : pages) {
      total += page.size() + 48;
      for (const auto& url : log.committed) total += url.size() + 32;
      for (const auto& url : log.observing) total += url.size() + 32;
    }
  }
  return total;
}

std::string make_session_cookie(const std::string& session_id) {
  return "sid=" + session_id;
}

std::string parse_session_cookie(std::string_view cookie_header) {
  for (std::string_view piece : split(cookie_header, ';')) {
    piece = trim(piece);
    if (starts_with(piece, "sid=")) {
      return std::string(piece.substr(4));
    }
  }
  return {};
}

}  // namespace catalyst::server
