// Static file serving with validators and conditional-GET support — what
// a stock Caddy/nginx does before any CacheCatalyst logic is added.
#pragma once

#include <cstdint>
#include <optional>

#include "http/conditional.h"
#include "http/message.h"
#include "server/site.h"

namespace catalyst::server {

struct StaticHandlerStats {
  std::uint64_t requests = 0;
  std::uint64_t full_responses = 0;
  std::uint64_t not_modified = 0;
  std::uint64_t not_found = 0;
  std::uint64_t gone = 0;
  ByteCount body_bytes_sent = 0;
};

class StaticHandler {
 public:
  explicit StaticHandler(const Site& site) : site_(site) {}

  /// Builds the response for `request` with the site's content as of
  /// `now`: 200 with validators and Cache-Control, 304 when If-None-Match
  /// matches, 404 for unknown paths.
  http::Response handle(const http::Request& request, TimePoint now);

  /// When set, 404/410 responses carry this Cache-Control — an origin
  /// opting in to explicit negative-response freshness (RFC 9111 §4).
  /// Unset (the default), error responses are headerless as before.
  void set_error_cache_control(http::CacheControl cc) {
    error_cache_control_ = cc;
  }

  const StaticHandlerStats& stats() const { return stats_; }
  const Site& site() const { return site_; }

 private:
  const Site& site_;
  std::optional<http::CacheControl> error_cache_control_;
  StaticHandlerStats stats_;
};

}  // namespace catalyst::server
