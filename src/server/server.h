// The origin web server: binds a Site to a simulated network host and
// composes the static handler with the optional CacheCatalyst and
// Server-Push modules — the stand-in for the paper's modified Caddy.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "netsim/network.h"
#include "server/catalyst_module.h"
#include "server/push_module.h"
#include "server/session.h"
#include "server/site.h"
#include "server/static_handler.h"

namespace catalyst::server {

struct ServerConfig {
  /// Baseline request handling time (accept/parse/route/IO).
  Duration processing_delay = microseconds(500);

  bool enable_catalyst = false;
  CatalystConfig catalyst;

  PushPolicy push_policy = PushPolicy::None;

  /// Send 103 Early Hints with Link rel=preload targets (the static link
  /// closure) ahead of base-HTML responses.
  bool early_hints = false;

  /// Record per-session fetch logs (needed by catalyst session learning
  /// and the Learned push policy).
  bool track_sessions = false;

  /// Explicit Cache-Control on 404/410 responses (negative-caching
  /// origins opt in; unset keeps error responses headerless).
  std::optional<http::CacheControl> error_cache_control;

  /// Adversary testbed: reflect the X-Forwarded-Host request header into
  /// 200 bodies (origins behind proxy layers compose absolute URLs from
  /// it). Harmless end-to-end; poisonous once a shared cache keyed
  /// without the header stores the result.
  bool reflect_forwarded_host = false;
};

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t html_serves = 0;
  Duration catalyst_compute = Duration::zero();
};

class Server {
 public:
  /// Registers `site.host()` on the network and installs the handler.
  /// The host must already exist in the network.
  Server(netsim::Network& network, std::shared_ptr<Site> site,
         ServerConfig config);

  const Site& site() const { return *site_; }
  const ServerConfig& config() const { return config_; }
  const ServerStats& stats() const { return stats_; }
  const StaticHandlerStats& handler_stats() const {
    return handler_.stats();
  }
  const CatalystModuleStats* catalyst_stats() const {
    return catalyst_ ? &catalyst_->stats() : nullptr;
  }
  ByteCount bytes_pushed() const {
    return push_ ? push_->bytes_pushed() : 0;
  }
  SessionStore& sessions() { return sessions_; }
  /// Catalyst module (null when neither catalyst nor push/hints need the
  /// linker). Mutable access exists for fleet park/revive, which must
  /// carry the scan memo across a user's testbed teardown.
  CatalystModule* catalyst_module() { return catalyst_.get(); }

 private:
  void handle(const http::Request& request,
              std::function<void(netsim::ServerReply)> respond);

  netsim::Network& network_;
  std::shared_ptr<Site> site_;
  ServerConfig config_;
  StaticHandler handler_;
  std::unique_ptr<CatalystModule> catalyst_;
  std::unique_ptr<PushModule> push_;
  SessionStore sessions_;
  ServerStats stats_;
};

}  // namespace catalyst::server
