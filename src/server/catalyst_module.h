// The CacheCatalyst server module (paper §3) — the modified-Caddy logic:
//
//   * when serving a base HTML file, traverse its DOM, extract same-origin
//     subresource links (following the CSS closure: stylesheets' url() and
//     @import references),
//   * attach a path → ETag map in the X-Etag-Config response header,
//   * inject the Service Worker registration snippet into the HTML,
//   * serve the Service Worker script itself.
//
// Cross-origin resources are excluded (explicitly future work in the
// paper). With `session_learning`, URLs a client fetched on its previous
// visit (including JS-driven fetches the DOM scan cannot see) are merged
// into the map — the paper's proposed extension for dynamic resources.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "http/etag_config.h"
#include "http/message.h"
#include "server/site.h"
#include "util/types.h"

namespace catalyst::server {

struct CatalystConfig {
  /// Follow stylesheet references (fonts/images/@imports) into the map.
  bool css_closure = true;

  /// Merge session-learned URLs (covers JS-discovered resources).
  bool session_learning = false;

  /// Memoize per-(resource, version) link extraction — the DOM scan — so
  /// repeat serves skip the parse cost. Ablation knob for server overhead.
  bool memoize_scans = true;

  /// Modeled server compute cost of scanning one KiB of HTML/CSS.
  Duration scan_cost_per_kib = microseconds(20);

  /// Size of the served Service Worker script.
  ByteCount sw_script_size = KiB(2);
};

struct CatalystModuleStats {
  std::uint64_t maps_built = 0;
  std::uint64_t scan_memo_hits = 0;
  std::uint64_t scans_performed = 0;
  ByteCount map_header_bytes = 0;  // cumulative X-Etag-Config overhead
};

class CatalystModule {
 public:
  /// Path the injected registration snippet points at.
  static constexpr std::string_view kSwPath = "/cc-sw.js";

  CatalystModule(const Site& site, CatalystConfig config);

  /// Same-origin resource paths reachable from `resource` at `now`
  /// (HTML links plus, with css_closure, stylesheet references).
  std::vector<std::string> linked_paths(const Resource& resource,
                                        TimePoint now);

  /// Builds the ETag map for a base-HTML serve. `learned_urls` are merged
  /// when session learning is on (unknown/cross-origin entries skipped).
  http::EtagConfig build_map(const Resource& html, TimePoint now,
                             const std::vector<std::string>& learned_urls);

  /// Decorates an outgoing base-HTML response: sets X-Etag-Config (both
  /// 200 and 304 — subresources may have changed even when the HTML has
  /// not) and injects the SW registration into 200 bodies. Returns the
  /// modeled extra server compute time for this serve.
  Duration decorate_html(const http::Request& request,
                         http::Response& response, const Resource& html,
                         TimePoint now,
                         const std::vector<std::string>& learned_urls);

  /// The Service Worker script response (served at kSwPath).
  http::Response serve_sw_script(TimePoint now) const;

  /// Applies the registration-snippet injection decorate_html performs on
  /// 200 HTML bodies (insert before the last </body>, else append).
  /// Public and static so the byte-equivalence oracle can reproduce the
  /// origin's transform on ground-truth content.
  static void inject_registration(std::string& body);

  const CatalystModuleStats& stats() const { return stats_; }
  const CatalystConfig& config() const { return config_; }

  /// Park/revive support (fleet/parked): the scan memo is the module's
  /// only cross-visit state with timing impact — repeat serves of an
  /// already-scanned (resource, version) skip the modeled scan cost — so
  /// a revived user's origin must remember what it has scanned.
  const std::unordered_map<std::string, std::vector<std::string>>&
  scan_memo() const {
    return scan_memo_;
  }
  void restore_scan_memo(std::string key, std::vector<std::string> links) {
    scan_memo_[std::move(key)] = std::move(links);
  }

 private:
  /// Extraction of one resource's same-origin links, memoized by version.
  const std::vector<std::string>& extract_links(const Resource& resource,
                                                TimePoint now,
                                                Duration& cost_accum);

  const Site& site_;
  CatalystConfig config_;
  CatalystModuleStats stats_;
  // Memo key: "<path>#<version>".
  std::unordered_map<std::string, std::vector<std::string>> scan_memo_;
};

/// Resolves `url` against a base resource path; empty result for
/// cross-origin or unusable references.
std::string resolve_same_origin(const std::string& site_host,
                                const std::string& base_path,
                                const std::string& url);

}  // namespace catalyst::server
