#include "server/change_model.h"

#include <algorithm>
#include <stdexcept>

namespace catalyst::server {

ChangeProcess ChangeProcess::never() { return ChangeProcess({}); }

ChangeProcess ChangeProcess::poisson(Duration mean_interval,
                                     Duration horizon, Rng& rng) {
  if (mean_interval <= Duration::zero()) {
    throw std::invalid_argument("ChangeProcess: mean interval must be > 0");
  }
  std::vector<TimePoint> times;
  const double rate = 1.0 / to_seconds(mean_interval);
  double t = 0.0;
  const double end = to_seconds(horizon);
  while (true) {
    t += rng.exponential(rate);
    if (t >= end) break;
    times.push_back(TimePoint{seconds_f(t)});
  }
  return ChangeProcess(std::move(times));
}

ChangeProcess ChangeProcess::periodic(Duration period, Duration phase,
                                      Duration horizon) {
  if (period <= Duration::zero()) {
    throw std::invalid_argument("ChangeProcess: period must be > 0");
  }
  std::vector<TimePoint> times;
  for (Duration t = phase; t < horizon; t += period) {
    if (t > Duration::zero()) times.push_back(TimePoint{t});
  }
  return ChangeProcess(std::move(times));
}

std::uint64_t ChangeProcess::version_at(TimePoint t) const {
  const auto it = std::upper_bound(change_times_.begin(),
                                   change_times_.end(), t);
  return static_cast<std::uint64_t>(it - change_times_.begin());
}

TimePoint ChangeProcess::last_change_at(TimePoint t) const {
  const auto it = std::upper_bound(change_times_.begin(),
                                   change_times_.end(), t);
  if (it == change_times_.begin()) return TimePoint{};
  return *(it - 1);
}

TimePoint ChangeProcess::next_change_after(TimePoint t) const {
  const auto it = std::upper_bound(change_times_.begin(),
                                   change_times_.end(), t);
  if (it == change_times_.end()) return TimePoint::max();
  return *it;
}

}  // namespace catalyst::server
