#include "server/server.h"

#include "http/mime.h"
#include "util/strings.h"
#include "util/url.h"

namespace catalyst::server {

namespace {

std::string path_of(const std::string& target) {
  const auto q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

}  // namespace

Server::Server(netsim::Network& network, std::shared_ptr<Site> site,
               ServerConfig config)
    : network_(network),
      site_(std::move(site)),
      config_(config),
      handler_(*site_) {
  if (config_.error_cache_control) {
    handler_.set_error_cache_control(*config_.error_cache_control);
  }
  if (config_.enable_catalyst) {
    catalyst_ = std::make_unique<CatalystModule>(*site_, config_.catalyst);
  }
  if (config_.push_policy != PushPolicy::None || config_.early_hints) {
    // Push and Early Hints need the link closure; reuse a CatalystModule
    // as the linker even when the catalyst header itself is disabled.
    if (!catalyst_) {
      catalyst_ =
          std::make_unique<CatalystModule>(*site_, config_.catalyst);
    }
  }
  if (config_.push_policy != PushPolicy::None) {
    push_ = std::make_unique<PushModule>(*site_, config_.push_policy);
  }
  network_.host(site_->host())
      .set_handler([this](const http::Request& request,
                          std::function<void(netsim::ServerReply)> respond) {
        handle(request, std::move(respond));
      });
}

void Server::handle(const http::Request& request,
                    std::function<void(netsim::ServerReply)> respond) {
  ++stats_.requests;
  const TimePoint now = network_.loop().now();
  const std::string path = path_of(request.target);

  std::string session_id;
  if (const auto cookie = request.headers.get("Cookie")) {
    session_id = parse_session_cookie(*cookie);
  }

  netsim::ServerReply reply;
  Duration compute = config_.processing_delay;

  if (config_.enable_catalyst && path == CatalystModule::kSwPath) {
    reply.response = catalyst_->serve_sw_script(now);
    network_.loop().schedule_after(
        compute, [respond = std::move(respond),
                  reply = std::move(reply)]() mutable {
          respond(std::move(reply));
        });
    return;
  }

  reply.response = handler_.handle(request, now);

  const Resource* resource = site_->find(path);
  const bool is_html =
      resource != nullptr &&
      resource->resource_class() == http::ResourceClass::Html;

  if (is_html) {
    ++stats_.html_serves;
    std::vector<std::string> learned;
    if (config_.track_sessions && !session_id.empty()) {
      // A base-HTML request closes the previous observation window (its
      // fetches become the learned set) and starts a new one.
      sessions_.begin_visit(session_id, path);
      learned = sessions_.learned_urls(session_id, path);
    }
    if (config_.enable_catalyst &&
        (reply.response.status == http::Status::Ok ||
         reply.response.status == http::Status::NotModified)) {
      const Duration cost = catalyst_->decorate_html(
          request, reply.response, *resource, now, learned);
      stats_.catalyst_compute += cost;
      compute += cost;
    }
    // Pushes accompany every base-HTML serve, 304s included — the server
    // cannot know what the client still has, which is exactly the
    // wasted-bandwidth failure mode the paper (and [44, 50]) criticizes.
    // (The Digest policy narrows this with the client's Cache-Digest.)
    if (push_ && (reply.response.status == http::Status::Ok ||
                  reply.response.status == http::Status::NotModified)) {
      reply.pushes = push_->build_pushes(request, *resource, now,
                                         *catalyst_, learned, handler_);
    }
    // 103 Early Hints: announce the static closure so the client can
    // start its (cache-checked) fetches before the HTML body lands.
    if (config_.early_hints) {
      reply.early_hint_urls = catalyst_->linked_paths(*resource, now);
    }
  } else if (config_.track_sessions && !session_id.empty() &&
             resource != nullptr) {
    // Attribute this subresource fetch to the page named by Referer.
    if (const auto referer = request.headers.get("Referer")) {
      const auto base = Url::parse(*referer);
      if (base) {
        sessions_.record_fetch(session_id, base->path, path);
      }
    }
  }

  // Unkeyed-input reflection: X-Forwarded-Host lands in the body after
  // any HTML decoration so the marker survives into whatever a cache
  // stores. Content-Length is re-derived; the body-digest memo
  // invalidates itself on the size change.
  if (config_.reflect_forwarded_host &&
      reply.response.status == http::Status::Ok) {
    if (const auto xfh = request.headers.get(http::kXForwardedHost)) {
      reply.response.body += "\n<!--reflect:";
      reply.response.body += *xfh;
      reply.response.body += "-->";
      reply.response.headers.set(
          http::kContentLength,
          std::to_string(reply.response.body_wire_size()));
    }
  }

  network_.loop().schedule_after(
      compute,
      [respond = std::move(respond), reply = std::move(reply)]() mutable {
        respond(std::move(reply));
      });
}

}  // namespace catalyst::server
