// Per-client session tracking (paper §3 & §6 future work): the server
// records which URLs each client fetched during a page visit, so on a
// revisit the X-Etag-Config map can also cover resources only discovered
// by JavaScript execution ("dynamic and user-specific resources").
//
// Clients are recognized by an opaque session id the browser sends in a
// Cookie header — the "session management techniques" the paper refers to.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/types.h"

namespace catalyst::server {

class SessionStore {
 public:
  /// Records that `session` fetched `url` while loading `page_path`.
  void record_fetch(const std::string& session, const std::string& page_path,
                    const std::string& url);

  /// URLs previously observed for (session, page); empty when unknown.
  std::vector<std::string> learned_urls(const std::string& session,
                                        const std::string& page_path) const;

  /// Marks the start of a fresh observation window for (session, page):
  /// subsequent record_fetch calls replace the previous visit's list once
  /// the window closes on the next begin_visit.
  void begin_visit(const std::string& session, const std::string& page_path);

  std::size_t session_count() const { return sessions_.size(); }

  /// Approximate memory footprint in bytes (the paper flags this as the
  /// cost of session learning; bench/ablation reports it).
  ByteCount memory_footprint() const;

 private:
  struct PageLog {
    std::set<std::string> committed;  // last completed visit
    std::set<std::string> observing;  // current visit being recorded
  };

  std::map<std::string, std::map<std::string, PageLog>> sessions_;
};

/// Cookie header helpers for the opaque session id.
std::string make_session_cookie(const std::string& session_id);
std::string parse_session_cookie(std::string_view cookie_header);

}  // namespace catalyst::server
