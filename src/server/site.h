// A virtual website: a host name plus its resource tree.
//
// The workload generator assembles Sites whose HTML/CSS/JS bodies really
// reference each other; the same Site object backs every strategy's origin
// server so comparisons are apples-to-apples.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "server/resource.h"

namespace catalyst::server {

class Site {
 public:
  explicit Site(std::string host) : host_(std::move(host)) {}

  const std::string& host() const { return host_; }

  /// The page entry point ("/" or "/index.html").
  const std::string& index_path() const { return index_path_; }
  void set_index_path(std::string path) { index_path_ = std::move(path); }

  Resource& add_resource(std::unique_ptr<Resource> resource);

  /// nullptr when the path is unknown.
  const Resource* find(const std::string& path) const;
  Resource* find(const std::string& path);

  const std::map<std::string, std::unique_ptr<Resource>>& resources() const {
    return resources_;
  }
  std::size_t resource_count() const { return resources_.size(); }

  /// Total declared wire size of all resources (page weight).
  ByteCount total_bytes() const;

 private:
  std::string host_;
  std::string index_path_ = "/index.html";
  std::map<std::string, std::unique_ptr<Resource>> resources_;
};

}  // namespace catalyst::server
