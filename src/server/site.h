// A virtual website: a host name plus its resource tree.
//
// The workload generator assembles Sites whose HTML/CSS/JS bodies really
// reference each other; the same Site object backs every strategy's origin
// server so comparisons are apples-to-apples.
//
// Storage: resources live in a vector sorted by path (iteration order is
// the old std::map order, which downstream byte-identity depends on) with
// an interned-key FlatHashMap index for the per-request find() — the
// single hottest origin-side lookup. The sort is maintained lazily so
// site construction stays O(n log n).
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "server/resource.h"
#include "util/flat_hash.h"
#include "util/intern.h"

namespace catalyst::server {

class Site {
 public:
  /// One path → resource binding. Named members (not std::pair) so
  /// `for (const auto& [path, resource] : site.resources())` keeps
  /// working across the container change.
  struct Entry {
    std::string path;
    std::unique_ptr<Resource> resource;
  };

  explicit Site(std::string host) : host_(std::move(host)) {}

  const std::string& host() const { return host_; }

  /// The page entry point ("/" or "/index.html").
  const std::string& index_path() const { return index_path_; }
  void set_index_path(std::string path) { index_path_ = std::move(path); }

  Resource& add_resource(std::unique_ptr<Resource> resource);

  /// nullptr when the path is unknown.
  const Resource* find(const std::string& path) const;
  Resource* find(const std::string& path);

  /// Entries sorted by path (stable, deterministic iteration order).
  const std::vector<Entry>& resources() const {
    ensure_sorted();
    return entries_;
  }
  std::size_t resource_count() const { return entries_.size(); }

  /// Total declared wire size of all resources (page weight).
  ByteCount total_bytes() const;

  /// Registers a retired path: the origin answers 410 Gone for it (the
  /// permanent flavor of dead link, negative-cacheable like a 404).
  void add_gone_path(std::string path) {
    gone_paths_.push_back(std::move(path));
  }
  bool is_gone(const std::string& path) const {
    return std::find(gone_paths_.begin(), gone_paths_.end(), path) !=
           gone_paths_.end();
  }
  const std::vector<std::string>& gone_paths() const { return gone_paths_; }

 private:
  void ensure_sorted() const;

  std::string host_;
  std::string index_path_ = "/index.html";
  // Sorted by path once ensure_sorted() ran; appended unsorted by
  // add_resource. mutable: sorting is a cache-consistency detail.
  mutable std::vector<Entry> entries_;
  mutable FlatHashMap<InternId, std::uint32_t> index_;
  mutable bool sorted_ = true;
  std::vector<std::string> gone_paths_;
};

}  // namespace catalyst::server
