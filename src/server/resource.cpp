#include "server/resource.h"

#include <stdexcept>

#include "util/hash.h"

namespace catalyst::server {

Resource::Resource(std::string path, http::ResourceClass resource_class,
                   ByteCount wire_size, ContentGenerator generator,
                   ChangeProcess changes, http::CacheControl cache_policy)
    : path_(std::move(path)),
      class_(resource_class),
      wire_size_(wire_size),
      generator_(std::move(generator)),
      changes_(std::move(changes)),
      cache_policy_(std::move(cache_policy)) {
  if (!generator_) {
    throw std::invalid_argument("Resource: generator required");
  }
}

const Resource::VersionData& Resource::materialize(
    std::uint64_t version) const {
  const auto it = versions_.find(version);
  if (it != versions_.end()) return it->second;
  VersionData data;
  data.content = generator_(version);
  data.etag = http::make_content_etag(data.content);
  data.content_digest = fnv1a64(data.content);
  return versions_.emplace(version, std::move(data)).first->second;
}

const std::string& Resource::content_at(TimePoint t) const {
  return materialize(version_at(t)).content;
}

std::uint64_t Resource::content_digest_at(TimePoint t) const {
  return materialize(version_at(t)).content_digest;
}

const http::Etag& Resource::etag_at(TimePoint t) const {
  return materialize(version_at(t)).etag;
}

}  // namespace catalyst::server
