#include "server/catalyst_module.h"

#include <algorithm>

#include "html/css.h"
#include "html/generate.h"
#include "html/link_extract.h"
#include "html/parser.h"
#include "util/strings.h"
#include "util/url.h"

namespace catalyst::server {

namespace {

/// The registration snippet injected before </body> (byte-for-byte what a
/// real deployment would add, so its size cost is realistic).
std::string registration_snippet() {
  return std::string("<script>if('serviceWorker' in navigator)"
                     "navigator.serviceWorker.register('") +
         std::string(CatalystModule::kSwPath) + "');</script>";
}

}  // namespace

std::string resolve_same_origin(const std::string& site_host,
                                const std::string& base_path,
                                const std::string& url) {
  const auto parsed = Url::parse(url);
  if (!parsed) return {};
  if (parsed->is_absolute() || !parsed->host.empty()) {
    if (parsed->host != site_host) return {};  // cross-origin: future work
    return parsed->path;
  }
  Url base;
  base.scheme = "https";
  base.host = site_host;
  base.path = base_path;
  return base.resolve(*parsed).path;
}

CatalystModule::CatalystModule(const Site& site, CatalystConfig config)
    : site_(site), config_(config) {}

const std::vector<std::string>& CatalystModule::extract_links(
    const Resource& resource, TimePoint now, Duration& cost_accum) {
  const std::string key =
      resource.path() + "#" + std::to_string(resource.version_at(now));
  if (config_.memoize_scans) {
    if (const auto it = scan_memo_.find(key); it != scan_memo_.end()) {
      ++stats_.scan_memo_hits;
      return it->second;
    }
  }
  ++stats_.scans_performed;
  const std::string& content = resource.content_at(now);
  cost_accum += seconds_f(to_seconds(config_.scan_cost_per_kib) *
                          (static_cast<double>(content.size()) / 1024.0));

  std::vector<std::string> links;
  if (resource.resource_class() == http::ResourceClass::Html) {
    const auto document = html::parse(content);
    for (const html::DiscoveredResource& dr :
         html::extract_resources(*document)) {
      std::string path =
          resolve_same_origin(site_.host(), resource.path(), dr.url);
      if (!path.empty()) links.push_back(std::move(path));
    }
  } else if (resource.resource_class() == http::ResourceClass::Css) {
    for (const html::CssReference& ref :
         html::extract_css_references(content)) {
      std::string path =
          resolve_same_origin(site_.host(), resource.path(), ref.url);
      if (!path.empty()) links.push_back(std::move(path));
    }
  }
  // Deduplicate, preserving first-seen order.
  std::vector<std::string> unique;
  for (std::string& link : links) {
    if (std::find(unique.begin(), unique.end(), link) == unique.end()) {
      unique.push_back(std::move(link));
    }
  }
  // Always store (storage doubles as the return buffer); the memoize flag
  // only controls whether stored results are *reused* above.
  std::vector<std::string>& slot = scan_memo_[key];
  slot = std::move(unique);
  return slot;
}

std::vector<std::string> CatalystModule::linked_paths(
    const Resource& resource, TimePoint now) {
  Duration ignored = Duration::zero();
  std::vector<std::string> result = extract_links(resource, now, ignored);
  if (!config_.css_closure) return result;

  // Follow CSS resources (including @imports of @imports) breadth-first.
  std::vector<std::string> frontier = result;
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& path : frontier) {
      const Resource* linked = site_.find(path);
      if (linked == nullptr ||
          linked->resource_class() != http::ResourceClass::Css) {
        continue;
      }
      for (const std::string& sub : extract_links(*linked, now, ignored)) {
        if (std::find(result.begin(), result.end(), sub) == result.end()) {
          result.push_back(sub);
          next.push_back(sub);
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

http::EtagConfig CatalystModule::build_map(
    const Resource& html, TimePoint now,
    const std::vector<std::string>& learned_urls) {
  http::EtagConfig map;
  for (const std::string& path : linked_paths(html, now)) {
    if (const Resource* resource = site_.find(path)) {
      map.add(path, resource->etag_at(now));
    }
  }
  if (config_.session_learning) {
    for (const std::string& url : learned_urls) {
      const std::string path =
          resolve_same_origin(site_.host(), html.path(), url);
      if (path.empty() || map.find(path)) continue;
      if (const Resource* resource = site_.find(path)) {
        map.add(path, resource->etag_at(now));
      }
    }
  }
  ++stats_.maps_built;
  return map;
}

Duration CatalystModule::decorate_html(
    const http::Request& request, http::Response& response,
    const Resource& html, TimePoint now,
    const std::vector<std::string>& learned_urls) {
  (void)request;
  Duration cost = Duration::zero();
  // Charge the scan cost through extract_links' accumulator by running the
  // closure with cost tracking: first the HTML itself, then CSS children.
  extract_links(html, now, cost);
  const http::EtagConfig map = build_map(html, now, learned_urls);
  response.headers.set(http::kXEtagConfig, map.encode());
  stats_.map_header_bytes += map.header_wire_size();

  if (response.status == http::Status::Ok) {
    const std::size_t before = response.body.size();
    inject_registration(response.body);
    if (response.declared_body_size > 0) {
      response.declared_body_size += response.body.size() - before;
    }
    response.finalize(now);  // refresh Content-Length
  }
  // Map assembly cost: one ETag lookup per entry (~100ns each, modeled).
  cost += nanoseconds(static_cast<std::int64_t>(100 * map.size()));
  return cost;
}

void CatalystModule::inject_registration(std::string& body) {
  const std::string snippet = registration_snippet();
  const auto pos = body.rfind("</body>");
  if (pos != std::string::npos) {
    body.insert(pos, snippet);
  } else {
    body += snippet;
  }
}

http::Response CatalystModule::serve_sw_script(TimePoint now) const {
  http::Response resp = http::Response::make(http::Status::Ok);
  resp.body = html::make_js({}, config_.sw_script_size, /*seed=*/0xCC57);
  resp.headers.set(http::kContentType,
                   http::mime_type(http::ResourceClass::Script));
  // The SW script itself revalidates (browsers special-case SW updates).
  resp.headers.set(http::kCacheControl,
                   http::CacheControl::revalidate_always().to_string());
  resp.headers.set(http::kEtagHeader,
                   http::make_content_etag(resp.body).to_string());
  resp.finalize(now);
  return resp;
}

}  // namespace catalyst::server
