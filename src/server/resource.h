// A versioned origin resource: content generator + change process +
// cache-header policy.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "http/cache_control.h"
#include "http/etag.h"
#include "http/mime.h"
#include "server/change_model.h"
#include "util/types.h"

namespace catalyst::server {

/// Produces the resource's body text for a given content version. Output
/// must differ between versions (the version is typically salted in).
using ContentGenerator = std::function<std::string(std::uint64_t version)>;

class Resource {
 public:
  Resource(std::string path, http::ResourceClass resource_class,
           ByteCount wire_size, ContentGenerator generator,
           ChangeProcess changes, http::CacheControl cache_policy);

  const std::string& path() const { return path_; }
  http::ResourceClass resource_class() const { return class_; }

  /// Declared size on the wire. For text classes (html/css/js) this equals
  /// the generated content size; for opaque classes (img/font) the
  /// generated content is a small stand-in and this declared size rules.
  ByteCount wire_size() const { return wire_size_; }

  const http::CacheControl& cache_policy() const { return cache_policy_; }
  void set_cache_policy(http::CacheControl policy) {
    cache_policy_ = std::move(policy);
  }

  const ChangeProcess& changes() const { return changes_; }

  std::uint64_t version_at(TimePoint t) const {
    return changes_.version_at(t);
  }

  /// Body content at time t (memoized per version).
  const std::string& content_at(TimePoint t) const;

  /// FNV-1a digest of content_at(t) (memoized per version): lets serve
  /// paths prime http::Response::body_digest() so each distinct body is
  /// digested once per origin lifetime, not once per serve.
  std::uint64_t content_digest_at(TimePoint t) const;

  /// Entity tag at time t (derived from content, memoized per version).
  const http::Etag& etag_at(TimePoint t) const;

  /// Last-Modified instant at time t.
  TimePoint last_modified_at(TimePoint t) const {
    return changes_.last_change_at(t);
  }

 private:
  struct VersionData {
    std::string content;
    http::Etag etag;
    std::uint64_t content_digest = 0;
  };

  const VersionData& materialize(std::uint64_t version) const;

  std::string path_;
  http::ResourceClass class_;
  ByteCount wire_size_;
  ContentGenerator generator_;
  ChangeProcess changes_;
  http::CacheControl cache_policy_;
  mutable std::unordered_map<std::uint64_t, VersionData> versions_;
};

}  // namespace catalyst::server
