// HTTP/2 Server-Push policies (related-work baseline, paper §5).
//
// Push-all is the simple policy the paper criticizes: it avoids request
// RTTs but resends resources the client already has, wasting bandwidth.
// Push-learned uses the same session log as CacheCatalyst's extension and
// pushes only what the client fetched last visit — a strong push variant.
#pragma once

#include <string_view>
#include <vector>

#include "netsim/network.h"
#include "server/catalyst_module.h"
#include "server/session.h"
#include "server/site.h"
#include "server/static_handler.h"

namespace catalyst::server {

enum class PushPolicy {
  None,
  All,      // push every statically linked subresource
  Learned,  // push what this session fetched on its previous visit
  Digest,   // push what the client's Cache-Digest says it lacks
};

std::string_view to_string(PushPolicy policy);

class PushModule {
 public:
  PushModule(const Site& site, PushPolicy policy);

  /// Builds the pushed responses accompanying a base-HTML serve. `linker`
  /// provides the link closure (shared with CatalystModule so both see the
  /// same dependency view); `learned_urls` backs the Learned policy;
  /// `request` supplies the Cache-Digest header for the Digest policy.
  std::vector<netsim::PushedResponse> build_pushes(
      const http::Request& request, const Resource& html, TimePoint now,
      CatalystModule& linker, const std::vector<std::string>& learned_urls,
      StaticHandler& handler);

  PushPolicy policy() const { return policy_; }
  ByteCount bytes_pushed() const { return bytes_pushed_; }

 private:
  const Site& site_;
  PushPolicy policy_;
  ByteCount bytes_pushed_ = 0;
};

}  // namespace catalyst::server
