#include "server/ttl_policy.h"

#include <algorithm>

namespace catalyst::server {

std::string_view to_string(TtlProfile profile) {
  switch (profile) {
    case TtlProfile::ConservativeCms:
      return "conservative-cms";
    case TtlProfile::DeveloperTuned:
      return "developer-tuned";
    case TtlProfile::AlwaysRevalidate:
      return "always-revalidate";
    case TtlProfile::NeverCache:
      return "never-cache";
  }
  return "?";
}

namespace {

http::CacheControl conservative_cms(http::ResourceClass resource_class,
                                    Rng& rng) {
  // HTML entry points: typically not cached (fresh on every visit).
  if (resource_class == http::ResourceClass::Html) {
    return rng.bernoulli(0.7) ? http::CacheControl::revalidate_always()
                              : http::CacheControl::never_store();
  }
  // Dynamic payloads: usually uncacheable.
  if (resource_class == http::ResourceClass::Json) {
    return rng.bernoulli(0.8) ? http::CacheControl::never_store()
                              : http::CacheControl::revalidate_always();
  }
  // Mix calibrated to the misconfiguration studies the paper cites:
  // ~half of cacheable resources are not effectively cached (no-store or
  // no-cache) [Liu et al., Qian et al.], ~40% of those with TTLs get
  // TTL < 1 day [Liu et al.], and TTLs are uncorrelated with true change
  // rates. no-store skews towards images/media (ad and tracking content
  // dominates the redundant-transfer byte counts of [18, 24, 29]).
  double p_no_store = 0.08;
  switch (resource_class) {
    case http::ResourceClass::Image:
      p_no_store = 0.22;
      break;
    case http::ResourceClass::Script:
      p_no_store = 0.12;
      break;
    case http::ResourceClass::Css:
      p_no_store = 0.05;
      break;
    case http::ResourceClass::Font:
      p_no_store = 0.02;
      break;
    default:
      break;
  }
  const double roll = rng.next_double();
  if (roll < p_no_store) return http::CacheControl::never_store();
  if (roll < p_no_store + 0.30) {
    return http::CacheControl::revalidate_always();
  }
  // Of the resources that do get a TTL, ~40% land under one day (the
  // conservative bucket), ~30% at 1-7 days, the rest at weeks-to-a-year.
  if (roll < p_no_store + 0.30 + 0.26) {
    static constexpr std::int64_t kShortTtlMinutes[] = {5, 30, 60, 240,
                                                        720, 1080};
    const auto idx = static_cast<std::size_t>(rng.uniform_int(0, 5));
    return http::CacheControl::with_max_age(
        minutes(kShortTtlMinutes[idx]));
  }
  if (roll < p_no_store + 0.30 + 0.26 + 0.19) {
    return http::CacheControl::with_max_age(days(rng.uniform_int(1, 7)));
  }
  return http::CacheControl::with_max_age(days(rng.uniform_int(30, 365)));
}

http::CacheControl developer_tuned(http::ResourceClass resource_class,
                                   Duration mean_change_interval, Rng& rng) {
  if (resource_class == http::ResourceClass::Html ||
      resource_class == http::ResourceClass::Json) {
    return http::CacheControl::revalidate_always();
  }
  if (mean_change_interval <= Duration::zero()) {
    return http::CacheControl::store_forever();
  }
  // Knows the mean change interval but not actual change times, so hedges
  // to a fraction of it (under-estimation is the safe direction).
  const double fraction = rng.uniform(0.25, 0.75);
  const Duration ttl = std::max<Duration>(
      minutes(1), seconds_f(to_seconds(mean_change_interval) * fraction));
  return http::CacheControl::with_max_age(std::min(ttl, days(365)));
}

}  // namespace

http::CacheControl assign_cache_policy(TtlProfile profile,
                                       http::ResourceClass resource_class,
                                       Duration mean_change_interval,
                                       Rng& rng) {
  switch (profile) {
    case TtlProfile::ConservativeCms:
      return conservative_cms(resource_class, rng);
    case TtlProfile::DeveloperTuned:
      return developer_tuned(resource_class, mean_change_interval, rng);
    case TtlProfile::AlwaysRevalidate:
      return http::CacheControl::revalidate_always();
    case TtlProfile::NeverCache:
      return http::CacheControl::never_store();
  }
  return http::CacheControl{};
}

}  // namespace catalyst::server
