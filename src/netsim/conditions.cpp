#include "netsim/conditions.h"

#include "util/strings.h"

namespace catalyst::netsim {

std::string NetworkConditions::label() const {
  return str_format("%.0fMbps/%.0fms", downlink.bits_per_second() / 1e6,
                    to_millis(rtt));
}

NetworkConditions NetworkConditions::median_5g() {
  return NetworkConditions{mbps(60), mbps(12), milliseconds(40), false, {}};
}

NetworkConditions NetworkConditions::low_throughput(Duration rtt) {
  return NetworkConditions{mbps(8), mbps(2), rtt, false, {}};
}

std::vector<NetworkConditions> NetworkConditions::figure3_grid() {
  std::vector<NetworkConditions> grid;
  const Bandwidth downs[] = {mbps(8), mbps(25), mbps(60)};
  const Duration rtts[] = {milliseconds(10), milliseconds(20),
                           milliseconds(40), milliseconds(80)};
  for (const Bandwidth down : downs) {
    for (const Duration rtt : rtts) {
      NetworkConditions c;
      c.downlink = down;
      c.uplink = Bandwidth{down.bits_per_second() / 5.0};
      c.rtt = rtt;
      grid.push_back(c);
    }
  }
  return grid;
}

}  // namespace catalyst::netsim
