// Unidirectional fluid-flow link with processor-sharing bandwidth.
//
// Concurrent transfers (a browser opens up to six connections per origin)
// share the access-link capacity. We model the classic fluid approximation:
// at any instant each of the n active flows progresses at capacity/n. The
// event-driven solution is exact for piecewise-constant rates — on every
// arrival or departure we settle the elapsed progress and reschedule the
// next completion. This reproduces what the paper's Chrome throttling
// (token-bucket shaping) does to transfer times without simulating packets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/event_loop.h"
#include "util/types.h"

namespace catalyst::netsim {

/// Identifies an in-flight transfer on a link.
using TransferId = std::uint64_t;

class Link {
 public:
  /// `name` is used in traces; `capacity` must be positive.
  Link(EventLoop& loop, std::string name, Bandwidth capacity);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Starts transferring `bytes`; `on_done` fires on the event loop when the
  /// last byte has been clocked onto the wire. Zero-byte transfers complete
  /// on the next loop iteration at the current time.
  TransferId start_transfer(ByteCount bytes, EventFn on_done);

  /// Aborts an in-flight transfer (no callback). Unknown ids are ignored.
  void abort_transfer(TransferId id);

  std::size_t active_transfers() const { return flows_.size(); }
  Bandwidth capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

  /// Total payload bytes that have completed transfer on this link.
  ByteCount bytes_delivered() const { return bytes_delivered_; }

  /// Seconds·flows integral — used to validate capacity conservation.
  double busy_seconds() const { return busy_seconds_; }

 private:
  struct Flow {
    TransferId id;
    double remaining_bytes;
    ByteCount total_bytes;
    EventFn on_done;
  };

  /// Applies progress for the interval [last_update_, now].
  void settle();

  /// Cancels and re-arms the next-completion event.
  void reschedule();

  void on_completion();

  EventLoop& loop_;
  std::string name_;
  Bandwidth capacity_;
  std::vector<Flow> flows_;
  TimePoint last_update_{};
  EventId pending_event_ = 0;
  bool event_armed_ = false;
  TransferId next_id_ = 1;
  ByteCount bytes_delivered_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace catalyst::netsim
