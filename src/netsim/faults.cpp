#include "netsim/faults.h"

#include <cmath>

#include "util/rng.h"

namespace catalyst::netsim {

namespace {
// Stream ids for the plan-level draws, disjoint from per-request ordinals
// (which fork off `spec.stream` instead).
constexpr std::uint64_t kOutagePhaseStream = 0x07a6'e000'0001ull;
}  // namespace

FaultPlan::FaultPlan(const FaultSpec& spec) : spec_(spec) {
  // The outage window's position inside the period is a per-seed constant:
  // outages are an origin-side event, shared by every stream of the seed.
  outage_phase_seconds_ =
      Rng(spec_.fault_seed).fork(kOutagePhaseStream).next_double() *
      to_seconds(spec_.outage_period);
}

FaultDecision FaultPlan::next_request() {
  FaultDecision d;
  if (!spec_.any()) {
    ++ordinal_;
    return d;
  }
  // Fresh generator per request, keyed by (seed, stream, ordinal): the
  // decision for request i never depends on how many draws earlier
  // requests consumed, so replays stay aligned even if the fault mix
  // changes between runs.
  Rng rng = Rng(spec_.fault_seed).fork(spec_.stream).fork(ordinal_++);

  // One uniform partitions the mutually exclusive primary faults.
  const double x = rng.next_double();
  if (x < spec_.loss_rate) {
    d.drop_mid_stream = true;
  } else if (x < spec_.loss_rate + spec_.stall_rate) {
    d.stall = true;
  } else if (x < spec_.loss_rate + spec_.stall_rate +
                     spec_.server_error_rate) {
    d.server_error = true;
  }
  if (spec_.latency_spike_rate > 0.0 &&
      rng.bernoulli(spec_.latency_spike_rate)) {
    d.extra_latency = spec_.latency_spike;
  }
  // How far a cut transfer gets before dying. Drawn unconditionally so
  // the draw count per request is fixed.
  d.progress_fraction = rng.uniform(0.05, 0.95);
  return d;
}

bool FaultPlan::origin_dark(TimePoint now) const {
  if (spec_.outage_fraction <= 0.0) return false;
  const double period = to_seconds(spec_.outage_period);
  if (period <= 0.0) return false;
  const double dark = spec_.outage_fraction * period;
  double pos = std::fmod(to_seconds(now.since_epoch()) + outage_phase_seconds_,
                         period);
  if (pos < 0.0) pos += period;
  return pos < dark;
}

}  // namespace catalyst::netsim
