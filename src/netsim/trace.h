// Per-fetch waterfall traces.
//
// Figure 1 of the paper is exactly such a waterfall (index.html, a.css,
// b.js, c.js, d.jpg across three visit scenarios); bench/fig1_timelines
// renders these traces as text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/mime.h"
#include "util/types.h"

namespace catalyst::netsim {

/// Where a resource's bytes ultimately came from.
enum class FetchSource {
  Network,       // full download
  BrowserCache,  // fresh cache hit, no request sent
  NotModified,   // conditional request answered 304 (RTT paid, no body)
  SwCache,       // Service Worker served from its cache (CacheCatalyst hit)
  Push,          // arrived via HTTP/2 Server Push
};

std::string_view to_string(FetchSource source);

/// Byte-equivalence oracle verdict for one serve (check::ByteOracle).
/// Unchecked when no oracle is installed or the serve is unauditable
/// (unknown origin, non-200 status).
enum class ServeClass {
  Unchecked,
  Fresh,         // delivered bytes match the origin's content at fetch time
  AllowedStale,  // bytes differ, but within RFC 9111 freshness — the
                 // staleness the status quo explicitly permits
  Violation,     // bytes differ with no freshness justification: a bug
  PoisonedServe, // delivered bytes carry another request's unkeyed input
                 // (cache-poisoning: reflected X-Forwarded-Host stored
                 // under a key the header does not partition)
  CrossUserLeak, // poisoned bytes identify a *different user's* request —
                 // one user observing another's reflected input
};

std::string_view to_string(ServeClass cls);

struct FetchTrace {
  std::string url;
  http::ResourceClass resource_class = http::ResourceClass::Other;
  TimePoint start{};    // when the browser needed the resource
  TimePoint finish{};   // when its bytes were usable
  FetchSource source = FetchSource::Network;
  ByteCount bytes_down = 0;  // response bytes on the wire (0 for cache hits)
  std::uint32_t status = 200;     // HTTP status of the delivered response
  std::uint64_t body_digest = 0;  // FNV-1a over the delivered body bytes
  ServeClass oracle_class = ServeClass::Unchecked;

  Duration elapsed() const { return finish - start; }
};

/// Collects fetch traces for one page load.
class TraceLog {
 public:
  void record(FetchTrace trace) { traces_.push_back(std::move(trace)); }

  /// Appends a default-constructed trace and returns it for in-place
  /// fill — the hot-path form: no intermediate FetchTrace, no string
  /// moves (write `url` directly into the slot).
  FetchTrace& append() { return traces_.emplace_back(); }
  void clear() { traces_.clear(); }

  const std::vector<FetchTrace>& traces() const { return traces_; }

  /// Renders an aligned text waterfall:
  ///   index.html |############........| 0.0-82.3ms network 12.4KiB
  std::string render_waterfall(int width = 48) const;

 private:
  std::vector<FetchTrace> traces_;
};

}  // namespace catalyst::netsim
