// Network throttling profiles — the throughput × latency grid of the
// paper's Figure 3, plus the 5G-median condition it highlights
// (60 Mbps / 40 ms).
#pragma once

#include <string>
#include <vector>

#include "netsim/faults.h"
#include "util/types.h"

namespace catalyst::netsim {

struct NetworkConditions {
  Bandwidth downlink = mbps(60);
  Bandwidth uplink = mbps(12);
  Duration rtt = milliseconds(40);  // client <-> origin round trip

  /// When true, response transfers pay TCP slow-start ramp-up rounds in
  /// addition to the fluid transmission time (ablation knob; the paper's
  /// Chrome throttling shapes an underlying real TCP similarly).
  bool model_slow_start = false;

  /// Fault-injection knobs; all zero by default (no fault layer wired).
  FaultSpec faults;

  std::string label() const;

  /// Median global 5G access per the paper (§4): 60 Mbps / 40 ms.
  static NetworkConditions median_5g();

  /// The low-throughput end of Figure 3: 8 Mbps.
  static NetworkConditions low_throughput(Duration rtt);

  /// The throughput × latency grid reproduced in bench/fig3.
  static std::vector<NetworkConditions> figure3_grid();
};

}  // namespace catalyst::netsim
