#include "netsim/network.h"

#include <stdexcept>

namespace catalyst::netsim {

namespace {

/// Order-independent key for an (a, b) host pair.
std::uint64_t pair_key(InternId a, InternId b) {
  const InternId lo = a < b ? a : b;
  const InternId hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

Host::Host(EventLoop& loop, std::string name, const HostSpec& spec)
    : name_(std::move(name)),
      uplink_(std::make_unique<Link>(loop, name_ + ":up", spec.uplink)),
      downlink_(std::make_unique<Link>(loop, name_ + ":down", spec.downlink)) {
}

Host& Network::add_host(const std::string& name, const HostSpec& spec) {
  const HostId id = tls_intern().intern(name);
  if (hosts_.contains(id)) {
    throw std::invalid_argument("Network: duplicate host " + name);
  }
  auto host = std::make_unique<Host>(loop_, name, spec);
  Host& ref = *host;
  hosts_.insert_or_assign(id, std::move(host));
  return ref;
}

Host& Network::host(const std::string& name) {
  const HostId id = tls_intern().find(name);
  if (id != kNoIntern) {
    if (auto* host = hosts_.find(id)) return **host;
  }
  throw std::out_of_range("Network: unknown host " + name);
}

bool Network::has_host(const std::string& name) const {
  const HostId id = tls_intern().find(name);
  return id != kNoIntern && hosts_.contains(id);
}

void Network::set_rtt(const std::string& a, const std::string& b,
                      Duration rtt) {
  if (!has_host(a) || !has_host(b)) {
    throw std::out_of_range("Network: set_rtt on unknown host");
  }
  rtts_.insert_or_assign(
      pair_key(tls_intern().intern(a), tls_intern().intern(b)), rtt);
}

Duration Network::rtt(const std::string& a, const std::string& b) const {
  const InternId ia = tls_intern().find(a);
  const InternId ib = tls_intern().find(b);
  if (ia != kNoIntern && ib != kNoIntern) {
    if (const Duration* d = rtts_.find(pair_key(ia, ib))) return *d;
  }
  throw std::out_of_range("Network: no RTT configured for " + a + "<->" + b);
}

void Network::send_bytes(const std::string& from, const std::string& to,
                         ByteCount bytes, EventFn on_delivered) {
  Host& sender = host(from);
  Host& receiver = host(to);
  const Duration propagation = one_way(from, to);
  total_bytes_ += bytes;

  // The slower of (sender uplink, receiver downlink) is the bottleneck and
  // the contention point; ties go to the receiver's downlink so client
  // downloads always contend on the client's access link.
  Link& bottleneck =
      (sender.uplink().capacity() < receiver.downlink().capacity())
          ? sender.uplink()
          : receiver.downlink();

  bottleneck.start_transfer(bytes, [this, propagation,
                                    cb = std::move(on_delivered)]() mutable {
    loop_.schedule_after(propagation, std::move(cb));
  });
}

}  // namespace catalyst::netsim
