#include "netsim/network.h"

#include <stdexcept>

namespace catalyst::netsim {

Host::Host(EventLoop& loop, std::string name, const HostSpec& spec)
    : name_(std::move(name)),
      uplink_(std::make_unique<Link>(loop, name_ + ":up", spec.uplink)),
      downlink_(std::make_unique<Link>(loop, name_ + ":down", spec.downlink)) {
}

Host& Network::add_host(const std::string& name, const HostSpec& spec) {
  if (hosts_.contains(name)) {
    throw std::invalid_argument("Network: duplicate host " + name);
  }
  auto host = std::make_unique<Host>(loop_, name, spec);
  Host& ref = *host;
  hosts_.emplace(name, std::move(host));
  return ref;
}

Host& Network::host(const std::string& name) {
  const auto it = hosts_.find(name);
  if (it == hosts_.end()) {
    throw std::out_of_range("Network: unknown host " + name);
  }
  return *it->second;
}

bool Network::has_host(const std::string& name) const {
  return hosts_.contains(name);
}

void Network::set_rtt(const std::string& a, const std::string& b,
                      Duration rtt) {
  if (!hosts_.contains(a) || !hosts_.contains(b)) {
    throw std::out_of_range("Network: set_rtt on unknown host");
  }
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  rtts_[key] = rtt;
}

Duration Network::rtt(const std::string& a, const std::string& b) const {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  const auto it = rtts_.find(key);
  if (it == rtts_.end()) {
    throw std::out_of_range("Network: no RTT configured for " + a + "<->" + b);
  }
  return it->second;
}

void Network::send_bytes(const std::string& from, const std::string& to,
                         ByteCount bytes, std::function<void()> on_delivered) {
  Host& sender = host(from);
  Host& receiver = host(to);
  const Duration propagation = one_way(from, to);
  total_bytes_ += bytes;

  // The slower of (sender uplink, receiver downlink) is the bottleneck and
  // the contention point; ties go to the receiver's downlink so client
  // downloads always contend on the client's access link.
  Link& bottleneck =
      (sender.uplink().capacity() < receiver.downlink().capacity())
          ? sender.uplink()
          : receiver.downlink();

  bottleneck.start_transfer(bytes, [this, propagation,
                                    cb = std::move(on_delivered)]() mutable {
    loop_.schedule_after(propagation, std::move(cb));
  });
}

}  // namespace catalyst::netsim
