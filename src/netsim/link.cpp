#include "netsim/link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace catalyst::netsim {

namespace {
// Completion tolerance: fluid arithmetic leaves sub-byte residuals, and an
// ETA that rounds to zero nanoseconds must not spin the loop — anything
// closer than a millibyte is done.
constexpr double kEpsilonBytes = 1e-3;
}  // namespace

Link::Link(EventLoop& loop, std::string name, Bandwidth capacity)
    : loop_(loop), name_(std::move(name)), capacity_(capacity),
      last_update_(loop.now()) {
  if (capacity.bits_per_second() <= 0.0) {
    throw std::invalid_argument("Link: capacity must be positive");
  }
}

TransferId Link::start_transfer(ByteCount bytes, EventFn on_done) {
  settle();
  const TransferId id = next_id_++;
  flows_.push_back(
      Flow{id, static_cast<double>(bytes), bytes, std::move(on_done)});
  reschedule();
  return id;
}

void Link::abort_transfer(TransferId id) {
  settle();
  std::erase_if(flows_, [id](const Flow& f) { return f.id == id; });
  reschedule();
}

void Link::settle() {
  const TimePoint now = loop_.now();
  const double dt = to_seconds(now - last_update_);
  last_update_ = now;
  if (flows_.empty() || dt <= 0.0) return;
  busy_seconds_ += dt;
  const double per_flow_rate =
      capacity_.bytes_per_second() / static_cast<double>(flows_.size());
  for (Flow& f : flows_) {
    f.remaining_bytes = std::max(0.0, f.remaining_bytes - per_flow_rate * dt);
  }
}

void Link::reschedule() {
  if (event_armed_) {
    loop_.cancel(pending_event_);
    event_armed_ = false;
  }
  if (flows_.empty()) return;
  double min_remaining = flows_.front().remaining_bytes;
  for (const Flow& f : flows_) {
    min_remaining = std::min(min_remaining, f.remaining_bytes);
  }
  const double per_flow_rate =
      capacity_.bytes_per_second() / static_cast<double>(flows_.size());
  Duration eta = (min_remaining <= kEpsilonBytes)
                     ? Duration::zero()
                     : seconds_f(min_remaining / per_flow_rate);
  // Guarantee forward progress: a positive residual must never produce a
  // zero-delay event (it would re-settle with dt == 0 forever).
  if (min_remaining > kEpsilonBytes && eta <= Duration::zero()) {
    eta = nanoseconds(1);
  }
  pending_event_ = loop_.schedule_after(eta, [this] { on_completion(); });
  event_armed_ = true;
}

void Link::on_completion() {
  event_armed_ = false;
  settle();
  // Collect every flow that has finished (ties complete together).
  std::vector<Flow> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining_bytes <= kEpsilonBytes) {
      done.push_back(std::move(*it));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
  for (Flow& f : done) {
    bytes_delivered_ += f.total_bytes;
    if (f.on_done) f.on_done();
  }
}

}  // namespace catalyst::netsim
